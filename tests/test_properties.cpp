// Property-based test sweeps across modules: algebraic invariants that
// must hold for whole parameter families, checked with parameterized
// gtest suites (TEST_P) and seeded random inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>

#include "core/dsfa.hpp"
#include "core/e2sf.hpp"
#include "events/dvs_sensor.hpp"
#include "events/event_synth.hpp"
#include "events/scene.hpp"
#include "hw/latency_model.hpp"
#include "hw/profiler.hpp"
#include "nn/engine.hpp"
#include "nn/kernels.hpp"
#include "nn/zoo.hpp"
#include "quant/quantizer.hpp"
#include "sched/scheduler.hpp"

namespace ec = evedge::core;
namespace ee = evedge::events;
namespace eh = evedge::hw;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace es = evedge::sparse;
namespace ss = evedge::sched;

// ------------------------------------------------------ events properties

class DvsThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(DvsThresholdSweep, LowerThresholdNeverProducesFewerEvents) {
  const double theta = GetParam();
  const ee::MovingBarScene scene(ee::MovingBarScene::Params{
      ee::SensorGeometry{32, 24}, 150.0, 3, 0.1, 0.9});
  const auto coarse = ee::simulate_dvs(scene, 0, 100'000, 2000.0,
                                       ee::DvsConfig{theta * 2.0, 0.0});
  const auto fine = ee::simulate_dvs(scene, 0, 100'000, 2000.0,
                                     ee::DvsConfig{theta, 0.0});
  EXPECT_GE(fine.size(), coarse.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DvsThresholdSweep,
                         ::testing::Values(0.1, 0.2, 0.35, 0.5));

class SlicePartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(SlicePartitionSweep, SlicesPartitionTheStream) {
  const int pieces = GetParam();
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{32, 24};
  cfg.seed = 31;
  const auto stream =
      ee::PoissonEventSynthesizer(ee::DensityProfile::outdoor_day1(), cfg)
          .generate(0, 400'000);
  const ee::TimeUs span = 400'000;
  std::size_t total = 0;
  for (int i = 0; i < pieces; ++i) {
    const ee::TimeUs t0 = span * i / pieces;
    const ee::TimeUs t1 = span * (i + 1) / pieces;
    total += stream.count_in(t0, t1);
  }
  EXPECT_EQ(total, stream.size());
}

INSTANTIATE_TEST_SUITE_P(Pieces, SlicePartitionSweep,
                         ::testing::Values(1, 2, 3, 7, 16));

TEST(SynthScaling, EventCountScalesWithPixelCount) {
  // Rates are per pixel: a 4x-larger array must produce ~4x the events.
  const auto make = [](int w, int h) {
    ee::SynthConfig cfg;
    cfg.geometry = ee::SensorGeometry{w, h};
    cfg.seed = 7;
    return ee::PoissonEventSynthesizer(
               ee::DensityProfile::dense_town10(), cfg)
        .generate(0, 1'000'000)
        .size();
  };
  const double small = static_cast<double>(make(32, 24));
  const double large = static_cast<double>(make(64, 48));
  EXPECT_NEAR(large / small, 4.0, 0.5);
}

// ------------------------------------------------------ sparse properties

class MergeAssociativity : public ::testing::TestWithParam<int> {};

TEST_P(MergeAssociativity, AddMergeIsAssociative) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<int> coord(0, 11);
  const auto frame = [&rng, &coord](std::uint64_t) {
    es::SparseFrame f(12, 12);
    for (int i = 0; i < 15; ++i) {
      f.positive().accumulate(coord(rng), coord(rng), 1.0f);
    }
    f.t_end = 10;
    return f;
  };
  const auto a = frame(1);
  const auto b = frame(2);
  const auto c = frame(3);
  const auto left = es::merge_frames(
      {es::merge_frames({a, b}, es::MergeMode::kAdd), c},
      es::MergeMode::kAdd);
  const auto right = es::merge_frames({a, b, c}, es::MergeMode::kAdd);
  EXPECT_FLOAT_EQ(es::max_abs_diff(left.to_dense(), right.to_dense()),
                  0.0f);
  EXPECT_EQ(left.merged_count, right.merged_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeAssociativity,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SparseProperties, DensityChangeTriangleBound) {
  // density_change(a, c) <= d(a,b)*s + d(b,c) style sanity: at minimum,
  // it is symmetric in magnitude ordering and zero on identity.
  es::SparseFrame a(10, 10);
  a.positive().accumulate(1, 1, 1.0f);
  es::SparseFrame b = a;
  b.positive().accumulate(2, 2, 1.0f);
  EXPECT_NEAR(es::density_change(a, a), 0.0, 1e-12);
  EXPECT_GT(es::density_change(b, a), 0.0);
}

class SubmanifoldSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubmanifoldSweep, OutputNnzBoundedByActiveSitesTimesChannels) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 977);
  std::uniform_int_distribution<int> coord(0, 15);
  std::vector<es::CooEntry> pos;
  for (int i = 0; i < 20; ++i) {
    pos.push_back({coord(rng), coord(rng), 1.0f});
  }
  std::vector<es::CooChannel> in{
      es::CooChannel::from_entries(16, 16, pos), es::CooChannel(16, 16)};
  const es::Conv2dSpec spec{2, 5, 3, 1, 1};
  es::DenseTensor w(es::TensorShape{5, 2, 3, 3});
  w.fill_random(static_cast<std::uint64_t>(GetParam()));
  const auto out = es::submanifold_conv2d(in, w, {}, spec);
  std::size_t active = in[0].nnz();  // channel 1 is empty
  std::size_t out_nnz = 0;
  for (const auto& ch : out) out_nnz += ch.nnz();
  EXPECT_LE(out_nnz, active * 5u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubmanifoldSweep,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------- nn properties

class ConvShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ConvShapeSweep, OutputShapeMatchesFormulaAndKernelRuns) {
  const auto [extent, kernel, stride, padding] = GetParam();
  if (extent + 2 * padding < kernel) GTEST_SKIP();
  const es::Conv2dSpec spec{2, 3, kernel, stride, padding};
  es::DenseTensor in(es::TensorShape{1, 2, extent, extent});
  in.fill_random(5);
  es::DenseTensor w(es::TensorShape{3, 2, kernel, kernel});
  w.fill_random(6);
  const auto out = en::conv2d(in, w, {}, spec);
  EXPECT_EQ(out.shape().h,
            (extent + 2 * padding - kernel) / stride + 1);
  EXPECT_EQ(out.shape().w, out.shape().h);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConvShapeSweep,
    ::testing::Combine(::testing::Values(8, 13), ::testing::Values(1, 3, 5),
                       ::testing::Values(1, 2), ::testing::Values(0, 1, 2)));

TEST(LifProperties, FiringRateMonotoneInInputMagnitude) {
  double previous_rate = -1.0;
  for (const float scale : {0.2f, 0.5f, 1.0f, 2.0f}) {
    en::LifState lif(es::TensorShape{1, 1, 8, 8}, en::LifParams{0.9f, 1.0f});
    es::DenseTensor in(es::TensorShape{1, 1, 8, 8});
    in.fill_random(9, scale);
    for (float& v : in.data()) v = std::abs(v);
    for (int t = 0; t < 6; ++t) (void)lif.step(in);
    EXPECT_GE(lif.mean_firing_rate(), previous_rate);
    previous_rate = lif.mean_firing_rate();
  }
}

TEST(ZooProperties, ScaleChangesShapesNotStructure) {
  for (const auto id : en::table1_networks()) {
    const auto small = en::build_network(id, en::ZooConfig::test_scale());
    const auto full = en::build_network(id, en::ZooConfig::full_scale());
    ASSERT_EQ(small.graph.size(), full.graph.size()) << small.name;
    for (std::size_t i = 0; i < small.graph.size(); ++i) {
      const auto& a = small.graph.nodes()[i];
      const auto& b = full.graph.nodes()[i];
      EXPECT_EQ(a.spec.kind, b.spec.kind);
      EXPECT_EQ(a.parents, b.parents);
    }
    EXPECT_LT(small.graph.total_macs(), full.graph.total_macs());
  }
}

// ------------------------------------------------------- quant properties

class FakeQuantIdempotence : public ::testing::TestWithParam<eq::Precision> {
};

TEST_P(FakeQuantIdempotence, QuantizingTwiceEqualsOnce) {
  std::vector<float> values;
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<float> dist(-3.0f, 3.0f);
  for (int i = 0; i < 200; ++i) values.push_back(dist(rng));
  auto once = values;
  eq::fake_quantize(once, GetParam());
  auto twice = once;
  eq::fake_quantize(twice, GetParam());
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Precisions, FakeQuantIdempotence,
                         ::testing::Values(eq::Precision::kFp32,
                                           eq::Precision::kFp16,
                                           eq::Precision::kInt8));

TEST(QuantProperties, QuantizationPreservesSign) {
  std::vector<float> values{-2.0f, -0.3f, 0.0f, 0.7f, 1.9f};
  for (const auto p : eq::kAllPrecisions) {
    auto q = values;
    eq::fake_quantize(q, p);
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_GE(q[i] * values[i], 0.0f)
          << eq::to_string(p) << " flipped a sign";
    }
  }
}

// ---------------------------------------------------------- hw properties

class SparseLatencySweep : public ::testing::TestWithParam<double> {};

TEST_P(SparseLatencySweep, SparseLatencyMonotoneInDensity) {
  const auto platform = eh::xavier_agx();
  const auto& gpu = platform.pe(platform.first_pe(eh::PeKind::kGpu));
  eh::LayerWorkload w;
  w.macs = 200'000'000;
  w.input_elements = 200'000;
  w.output_elements = 200'000;
  w.input_density = GetParam();
  const double here =
      eh::layer_latency_us(gpu, eq::Precision::kFp32, w, eh::Route::kSparse);
  w.input_density = std::min(1.0, GetParam() * 2.0);
  const double denser =
      eh::layer_latency_us(gpu, eq::Precision::kFp32, w, eh::Route::kSparse);
  EXPECT_GE(denser, here);
}

INSTANTIATE_TEST_SUITE_P(Densities, SparseLatencySweep,
                         ::testing::Values(0.01, 0.05, 0.2, 0.5));

TEST(HwProperties, SparseAwareProfileNeverSlower) {
  // best_route picks min(dense, sparse): a sparse-aware profile entry can
  // only be <= the dense-only entry.
  const auto platform = eh::xavier_agx();
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::full_scale());
  std::vector<double> densities(spec.graph.size(), 0.1);
  const auto dense_profile = eh::profile_task(spec, platform);
  const auto sparse_profile = eh::profile_task(spec, platform, &densities);
  for (std::size_t n = 0; n < spec.graph.size(); ++n) {
    for (const auto& pe : platform.pes) {
      for (const auto p : eq::kAllPrecisions) {
        const double d = dense_profile.nodes[n].time(pe.id, p);
        const double s = sparse_profile.nodes[n].time(pe.id, p);
        if (std::isinf(d)) {
          EXPECT_TRUE(std::isinf(s));
        } else {
          EXPECT_LE(s, d + 1e-9);
        }
      }
    }
  }
}

TEST(HwProperties, TransferCostSymmetricInEndpoints) {
  const auto platform = eh::xavier_agx();
  EXPECT_DOUBLE_EQ(eh::transfer_time_us(platform, 0, 1, 123456.0),
                   eh::transfer_time_us(platform, 1, 0, 123456.0));
}

// --------------------------------------------------------- sched properties

TEST(SchedProperties, AddingATaskNeverReducesMakespan) {
  const auto platform = eh::xavier_agx();
  std::vector<en::NetworkSpec> one{en::build_network(
      en::NetworkId::kDotie, en::ZooConfig::test_scale())};
  std::vector<en::NetworkSpec> two = one;
  two.push_back(
      en::build_network(en::NetworkId::kEvFlowNet, en::ZooConfig::test_scale()));
  const auto p1 = eh::profile_tasks(one, platform);
  const auto p2 = eh::profile_tasks(two, platform);
  const int gpu = platform.first_pe(eh::PeKind::kGpu);
  const auto c1 = ss::uniform_candidate(one, gpu, eq::Precision::kFp32);
  const auto c2 = ss::uniform_candidate(two, gpu, eq::Precision::kFp32);
  const auto r1 = ss::schedule(one, p1, c1, platform);
  const auto r2 = ss::schedule(two, p2, c2, platform);
  EXPECT_GE(r2.makespan_us, r1.makespan_us - 1e-9);
}

TEST(SchedProperties, CommOpsMatchCrossPeEdges) {
  const auto platform = eh::xavier_agx();
  std::vector<en::NetworkSpec> specs{en::build_network(
      en::NetworkId::kHidalgoDepth, en::ZooConfig::test_scale())};
  const auto profiles = eh::profile_tasks(specs, platform);
  auto candidate = ss::uniform_candidate(
      specs, platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  // Move every third mappable node to the CPU and count crossing edges.
  int moved = 0;
  for (auto& node : candidate.tasks[0].nodes) {
    if (node.pe >= 0 && (moved++ % 3 == 0)) {
      node.pe = platform.first_pe(eh::PeKind::kCpu);
    }
  }
  std::size_t crossing = 0;
  for (const auto& node : specs[0].graph.nodes()) {
    const auto& a = candidate.tasks[0].nodes[static_cast<std::size_t>(
        node.id)];
    if (a.pe < 0) continue;
    for (const int parent : node.parents) {
      const auto& pa = candidate.tasks[0].nodes[static_cast<std::size_t>(
          parent)];
      if (pa.pe >= 0 && pa.pe != a.pe) ++crossing;
    }
  }
  const auto result = ss::schedule(specs, profiles, candidate, platform);
  std::size_t comm = 0;
  for (const auto& op : result.ops) {
    if (op.is_comm) ++comm;
  }
  EXPECT_EQ(comm, crossing);
}

// ---------------------------------------------------------- core properties

class E2sfBinSweep : public ::testing::TestWithParam<int> {};

TEST_P(E2sfBinSweep, EventConservationForAnyBinCount) {
  const int n_bins = GetParam();
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{32, 24};
  cfg.seed = 17;
  const auto stream =
      ee::PoissonEventSynthesizer(ee::DensityProfile::indoor_flying1(), cfg)
          .generate(0, 200'000);
  const ec::Event2SparseFrame e2sf(stream.geometry(),
                                   ec::E2sfConfig{n_bins});
  const auto frames = e2sf.convert(stream.slice(0, 200'000), 0, 200'000);
  ASSERT_EQ(frames.size(), static_cast<std::size_t>(n_bins));
  std::int64_t total = 0;
  for (const auto& f : frames) total += f.source_events;
  EXPECT_EQ(static_cast<std::size_t>(total), stream.size());
}

INSTANTIATE_TEST_SUITE_P(Bins, E2sfBinSweep,
                         ::testing::Values(1, 2, 5, 10, 32));

class DsfaModeSweep : public ::testing::TestWithParam<es::MergeMode> {};

TEST_P(DsfaModeSweep, NoSourceFrameVanishesBeforeQueueOverflow) {
  ec::DsfaConfig cfg;
  cfg.merge_mode = GetParam();
  cfg.event_buffer_size = 4;
  cfg.merge_bucket_capacity = 2;
  cfg.inference_queue_capacity = 64;
  cfg.max_time_delay_us = 1e9;
  cfg.max_density_change = 1e9;
  ec::DynamicSparseFrameAggregator dsfa(cfg);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<int> coord(0, 9);
  for (int i = 0; i < 17; ++i) {
    es::SparseFrame f(10, 10);
    for (int k = 0; k < 6; ++k) {
      f.positive().accumulate(coord(rng), coord(rng), 1.0f);
    }
    f.t_start = i * 100;
    f.t_end = i * 100 + 100;
    f.merged_count = 1;
    dsfa.push(std::move(f));
  }
  dsfa.dispatch_available();
  std::int64_t sources = 0;
  while (auto batch = dsfa.take_ready_batch()) {
    for (const auto& f : batch->frames) sources += f.merged_count;
  }
  EXPECT_EQ(sources, 17);
  EXPECT_EQ(dsfa.stats().frames_discarded, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, DsfaModeSweep,
                         ::testing::Values(es::MergeMode::kAdd,
                                           es::MergeMode::kAverage,
                                           es::MergeMode::kBatch));
