#include "sparse/sparse_ops.hpp"

#include <set>
#include <stdexcept>
#include <string>

namespace evedge::sparse {

void validate_conv_spec(const Conv2dSpec& spec) {
  if (spec.in_channels <= 0 || spec.out_channels <= 0) {
    throw std::invalid_argument("conv channels must be positive");
  }
  if (spec.kernel <= 0 || spec.stride <= 0 || spec.padding < 0) {
    throw std::invalid_argument("conv kernel/stride/padding invalid");
  }
}

int conv_out_extent(int in_extent, int kernel, int stride, int padding) {
  const int numerator = in_extent + 2 * padding - kernel;
  if (numerator < 0) {
    throw std::invalid_argument("conv kernel larger than padded input");
  }
  return numerator / stride + 1;
}

namespace {

void validate_conv_inputs(std::span<const CooChannel> input,
                          const DenseTensor& weights,
                          std::span<const float> bias,
                          const Conv2dSpec& spec) {
  validate_conv_spec(spec);
  if (static_cast<int>(input.size()) != spec.in_channels) {
    throw std::invalid_argument(
        "sparse conv: channel count mismatch, got " +
        std::to_string(input.size()) + " expected " +
        std::to_string(spec.in_channels));
  }
  const TensorShape& ws = weights.shape();
  if (ws.n != spec.out_channels || ws.c != spec.in_channels ||
      ws.h != spec.kernel || ws.w != spec.kernel) {
    throw std::invalid_argument("sparse conv: weight shape mismatch");
  }
  if (!bias.empty() && static_cast<int>(bias.size()) != spec.out_channels) {
    throw std::invalid_argument("sparse conv: bias size mismatch");
  }
  for (std::size_t c = 1; c < input.size(); ++c) {
    if (input[c].height() != input[0].height() ||
        input[c].width() != input[0].width()) {
      throw std::invalid_argument("sparse conv: input extents differ");
    }
  }
}

[[nodiscard]] std::size_t dense_mac_count(const Conv2dSpec& spec, int out_h,
                                          int out_w) {
  return static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w) *
         static_cast<std::size_t>(spec.out_channels) *
         static_cast<std::size_t>(spec.in_channels) *
         static_cast<std::size_t>(spec.kernel) *
         static_cast<std::size_t>(spec.kernel);
}

}  // namespace

DenseTensor sparse_conv2d(std::span<const CooChannel> input,
                          const DenseTensor& weights,
                          std::span<const float> bias, const Conv2dSpec& spec,
                          ConvWork* work) {
  validate_conv_inputs(input, weights, bias, spec);
  const int in_h = input[0].height();
  const int in_w = input[0].width();
  const int out_h = conv_out_extent(in_h, spec.kernel, spec.stride,
                                    spec.padding);
  const int out_w = conv_out_extent(in_w, spec.kernel, spec.stride,
                                    spec.padding);

  DenseTensor out(TensorShape{1, spec.out_channels, out_h, out_w});
  if (!bias.empty()) {
    for (int oc = 0; oc < spec.out_channels; ++oc) {
      for (int y = 0; y < out_h; ++y) {
        for (int x = 0; x < out_w; ++x) out.at(0, oc, y, x) = bias[
            static_cast<std::size_t>(oc)];
      }
    }
  }

  std::size_t sparse_macs = 0;
  std::size_t nnz_in = 0;
  for (int ic = 0; ic < spec.in_channels; ++ic) {
    const CooChannel& ch = input[static_cast<std::size_t>(ic)];
    nnz_in += ch.nnz();
    for (const CooEntry& e : ch.entries()) {
      // Scatter: output (oy, ox) sees input (r, c) through kernel tap
      // (ky, kx) iff oy*stride + ky - padding == r (same for x).
      for (int ky = 0; ky < spec.kernel; ++ky) {
        const int oy_num = e.row + spec.padding - ky;
        if (oy_num < 0 || oy_num % spec.stride != 0) continue;
        const int oy = oy_num / spec.stride;
        if (oy >= out_h) continue;
        for (int kx = 0; kx < spec.kernel; ++kx) {
          const int ox_num = e.col + spec.padding - kx;
          if (ox_num < 0 || ox_num % spec.stride != 0) continue;
          const int ox = ox_num / spec.stride;
          if (ox >= out_w) continue;
          for (int oc = 0; oc < spec.out_channels; ++oc) {
            out.at(0, oc, oy, ox) += weights.at(oc, ic, ky, kx) * e.value;
          }
          sparse_macs += static_cast<std::size_t>(spec.out_channels);
        }
      }
    }
  }

  if (work != nullptr) {
    work->dense_macs += dense_mac_count(spec, out_h, out_w);
    work->sparse_macs += sparse_macs;
    work->nnz_in += nnz_in;
  }
  return out;
}

std::vector<CooChannel> submanifold_conv2d(std::span<const CooChannel> input,
                                           const DenseTensor& weights,
                                           std::span<const float> bias,
                                           const Conv2dSpec& spec,
                                           ConvWork* work) {
  validate_conv_inputs(input, weights, bias, spec);
  if (spec.stride != 1) {
    throw std::invalid_argument("submanifold conv requires stride 1");
  }
  if (conv_out_extent(input[0].height(), spec.kernel, 1, spec.padding) !=
          input[0].height() ||
      conv_out_extent(input[0].width(), spec.kernel, 1, spec.padding) !=
          input[0].width()) {
    throw std::invalid_argument(
        "submanifold conv requires same-extent output (kernel = 2*padding+1)");
  }
  const int h = input[0].height();
  const int w = input[0].width();

  // Active set = union of input active sites across channels.
  std::set<std::pair<std::int32_t, std::int32_t>> active;
  for (const CooChannel& ch : input) {
    for (const CooEntry& e : ch.entries()) active.insert({e.row, e.col});
  }

  std::size_t sparse_macs = 0;
  std::size_t nnz_in = 0;
  for (const CooChannel& ch : input) nnz_in += ch.nnz();

  std::vector<std::vector<CooEntry>> out_entries(
      static_cast<std::size_t>(spec.out_channels));
  for (const auto& [row, col] : active) {
    for (int oc = 0; oc < spec.out_channels; ++oc) {
      float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc)];
      for (int ic = 0; ic < spec.in_channels; ++ic) {
        const CooChannel& ch = input[static_cast<std::size_t>(ic)];
        for (int ky = 0; ky < spec.kernel; ++ky) {
          const int iy = row - spec.padding + ky;
          if (iy < 0 || iy >= h) continue;
          for (int kx = 0; kx < spec.kernel; ++kx) {
            const int ix = col - spec.padding + kx;
            if (ix < 0 || ix >= w) continue;
            const float v = ch.at(iy, ix);
            if (v != 0.0f) {
              acc += weights.at(oc, ic, ky, kx) * v;
              ++sparse_macs;
            }
          }
        }
      }
      if (acc != 0.0f) {
        out_entries[static_cast<std::size_t>(oc)].push_back(
            CooEntry{row, col, acc});
      }
    }
  }

  std::vector<CooChannel> out;
  out.reserve(static_cast<std::size_t>(spec.out_channels));
  for (auto& entries : out_entries) {
    out.push_back(CooChannel::from_entries(h, w, std::move(entries)));
  }
  if (work != nullptr) {
    work->dense_macs += dense_mac_count(spec, h, w);
    work->sparse_macs += sparse_macs;
    work->nnz_in += nnz_in;
  }
  return out;
}

std::vector<CooChannel> dense_to_channels(const DenseTensor& dense,
                                          std::size_t* scanned_elements) {
  const TensorShape& s = dense.shape();
  if (s.n != 1) {
    throw std::invalid_argument("dense_to_channels expects batch 1");
  }
  std::vector<CooChannel> channels;
  channels.reserve(static_cast<std::size_t>(s.c));
  for (int c = 0; c < s.c; ++c) {
    std::vector<CooEntry> entries;
    for (int y = 0; y < s.h; ++y) {
      for (int x = 0; x < s.w; ++x) {
        const float v = dense.at(0, c, y, x);
        if (v != 0.0f) entries.push_back(CooEntry{y, x, v});
      }
    }
    channels.push_back(CooChannel::from_entries(s.h, s.w,
                                                std::move(entries)));
  }
  if (scanned_elements != nullptr) {
    *scanned_elements += s.element_count();
  }
  return channels;
}

DenseTensor channels_to_dense(std::span<const CooChannel> channels) {
  if (channels.empty()) {
    throw std::invalid_argument("channels_to_dense: empty input");
  }
  const int h = channels[0].height();
  const int w = channels[0].width();
  DenseTensor out(
      TensorShape{1, static_cast<int>(channels.size()), h, w});
  for (std::size_t c = 0; c < channels.size(); ++c) {
    if (channels[c].height() != h || channels[c].width() != w) {
      throw std::invalid_argument("channels_to_dense: extent mismatch");
    }
    for (const CooEntry& e : channels[c].entries()) {
      out.at(0, static_cast<int>(c), e.row, e.col) = e.value;
    }
  }
  return out;
}

}  // namespace evedge::sparse
