// Tests for the quantization substrate: fp16 rounding, symmetric INT8
// fake-quant, task metrics and the accuracy evaluator / sensitivity model.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "nn/zoo.hpp"
#include "quant/accuracy.hpp"
#include "quant/metrics.hpp"
#include "quant/precision.hpp"
#include "quant/quantizer.hpp"

namespace eq = evedge::quant;
namespace en = evedge::nn;
namespace es = evedge::sparse;

// -------------------------------------------------------------- quantizer

TEST(Fp16, ExactValuesPassThrough) {
  // Powers of two and small integers are exactly representable.
  for (float v : {0.0f, 1.0f, -2.0f, 0.5f, 1024.0f, -0.25f, 3.0f}) {
    EXPECT_FLOAT_EQ(eq::round_to_fp16(v), v);
  }
}

TEST(Fp16, RoundsMantissaBeyond10Bits) {
  // 1 + 2^-11 is not representable in half; rounds to 1 or 1+2^-10.
  const float v = 1.0f + 4.8828125e-4f;
  const float r = eq::round_to_fp16(v);
  EXPECT_TRUE(r == 1.0f || r == 1.0f + 9.765625e-4f);
  EXPECT_NE(r, v);
}

TEST(Fp16, SaturatesAtHalfMax) {
  EXPECT_FLOAT_EQ(eq::round_to_fp16(1e6f), 65504.0f);
  EXPECT_FLOAT_EQ(eq::round_to_fp16(-1e6f), -65504.0f);
}

TEST(Fp16, FlushesTinyToZero) {
  EXPECT_FLOAT_EQ(eq::round_to_fp16(1e-9f), 0.0f);
}

TEST(Fp16, ErrorBounded) {
  // Relative error of fp16 rounding is at most 2^-11 for normals.
  for (float v = 0.001f; v < 100.0f; v *= 1.37f) {
    const float r = eq::round_to_fp16(v);
    EXPECT_LE(std::abs(r - v) / v, 4.9e-4f) << v;
  }
}

TEST(Int8, RoundTripErrorBounded) {
  std::vector<float> values;
  for (int i = -50; i <= 50; ++i) {
    values.push_back(static_cast<float>(i) * 0.037f);
  }
  const float range = eq::max_abs(values);
  auto quantized = values;
  eq::fake_quantize(quantized, eq::Precision::kInt8);
  const float step = range / 127.0f;
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_LE(std::abs(quantized[i] - values[i]), 0.5f * step + 1e-6f);
  }
}

TEST(Int8, GridHas255Levels) {
  std::vector<float> values{1.0f, -1.0f, 0.3337f};
  eq::fake_quantize(values, eq::Precision::kInt8);
  const float step = 1.0f / 127.0f;
  for (float v : values) {
    const float q = v / step;
    EXPECT_NEAR(q, std::round(q), 1e-3f);
  }
}

TEST(Int8, MaxAbsIgnoresNonFiniteValues) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> values{0.5f, -2.0f, inf, -inf, nan, 1.5f};
  // Non-finite outliers must not poison the range: the grid still
  // covers every finite value.
  EXPECT_FLOAT_EQ(eq::max_abs(values), 2.0f);
  EXPECT_FLOAT_EQ(eq::max_abs(std::vector<float>{nan, inf}), 0.0f);
}

TEST(Int8, ForRangeGuardsNonFiniteAndNonPositive) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FLOAT_EQ(eq::Int8Scale::for_range(nan).scale, 1.0f);
  EXPECT_FLOAT_EQ(eq::Int8Scale::for_range(inf).scale, 1.0f);
  EXPECT_FLOAT_EQ(eq::Int8Scale::for_range(-3.0f).scale, 1.0f);
  EXPECT_FLOAT_EQ(eq::Int8Scale::for_range(0.0f).scale, 1.0f);
  EXPECT_FLOAT_EQ(eq::Int8Scale::for_range(254.0f).scale, 2.0f);
}

TEST(Int8, ApplyHandlesNonFiniteInputs) {
  const eq::Int8Scale s{0.5f};
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FLOAT_EQ(s.apply(inf), 127.0f * 0.5f);    // saturates
  EXPECT_FLOAT_EQ(s.apply(-inf), -127.0f * 0.5f);  // saturates
  EXPECT_FLOAT_EQ(s.apply(nan), 0.0f);             // maps to zero
  EXPECT_EQ(s.quantize(inf), 127);
  EXPECT_EQ(s.quantize(-inf), -127);
  EXPECT_EQ(s.quantize(nan), 0);
}

TEST(Int8, FakeQuantizeSurvivesNonFiniteElements) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> values{1.0f, -0.5f, nan, 0.25f};
  eq::fake_quantize(values, eq::Precision::kInt8);
  // Scale came from the finite values (max abs 1.0); NaN went to 0 and
  // everything else landed on the usual grid.
  EXPECT_FLOAT_EQ(values[0], 1.0f);
  EXPECT_FLOAT_EQ(values[2], 0.0f);
  for (float v : values) EXPECT_TRUE(std::isfinite(v));
}

TEST(Quantizer, Fp32IsIdentity) {
  std::vector<float> values{0.1f, -0.7f, 3.14159f};
  const auto original = values;
  eq::fake_quantize(values, eq::Precision::kFp32);
  EXPECT_EQ(values, original);
}

TEST(Quantizer, StepOrdering) {
  // INT8 is coarser than FP16 which is coarser than FP32 (zero).
  const float range = 2.0f;
  EXPECT_GT(eq::quantization_step(range, eq::Precision::kInt8),
            eq::quantization_step(range, eq::Precision::kFp16));
  EXPECT_GT(eq::quantization_step(range, eq::Precision::kFp16),
            eq::quantization_step(range, eq::Precision::kFp32));
}

TEST(Precision, BytesPerElement) {
  EXPECT_DOUBLE_EQ(eq::bytes_per_element(eq::Precision::kFp32), 4.0);
  EXPECT_DOUBLE_EQ(eq::bytes_per_element(eq::Precision::kFp16), 2.0);
  EXPECT_DOUBLE_EQ(eq::bytes_per_element(eq::Precision::kInt8), 1.0);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, AeeZeroForIdentical) {
  es::DenseTensor flow(es::TensorShape{1, 2, 4, 4});
  flow.fill_random(3);
  EXPECT_DOUBLE_EQ(eq::average_endpoint_error(flow, flow), 0.0);
}

TEST(Metrics, AeeMatchesHandComputation) {
  es::DenseTensor a(es::TensorShape{1, 2, 1, 1});
  es::DenseTensor b(es::TensorShape{1, 2, 1, 1});
  a.at(0, 0, 0, 0) = 3.0f;  // du = 3
  a.at(0, 1, 0, 0) = 4.0f;  // dv = 4 -> EPE = 5
  EXPECT_DOUBLE_EQ(eq::average_endpoint_error(a, b), 5.0);
}

TEST(Metrics, AeeRejectsNonFlowShapes) {
  es::DenseTensor bad(es::TensorShape{1, 3, 2, 2});
  EXPECT_THROW((void)eq::average_endpoint_error(bad, bad),
               std::invalid_argument);
}

TEST(Metrics, MiouPerfectAndDisjoint) {
  es::DenseTensor a(es::TensorShape{1, 2, 2, 2});
  // All pixels class 0.
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) a.at(0, 0, y, x) = 1.0f;
  }
  EXPECT_DOUBLE_EQ(eq::mean_iou(a, a), 1.0);
  // Reference: all pixels class 1 -> complete disagreement.
  es::DenseTensor b(es::TensorShape{1, 2, 2, 2});
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) b.at(0, 1, y, x) = 1.0f;
  }
  EXPECT_DOUBLE_EQ(eq::mean_iou(a, b), 0.0);
}

TEST(Metrics, DepthErrorRelative) {
  es::DenseTensor d(es::TensorShape{1, 1, 1, 2});
  es::DenseTensor r(es::TensorShape{1, 1, 1, 2});
  d.at(0, 0, 0, 0) = 1.1f;
  r.at(0, 0, 0, 0) = 1.0f;
  d.at(0, 0, 0, 1) = 2.0f;
  r.at(0, 0, 0, 1) = 2.0f;
  EXPECT_NEAR(eq::mean_depth_error(d, r), 0.05, 1e-6);
}

TEST(Metrics, ObjectnessIou) {
  es::DenseTensor a(es::TensorShape{1, 1, 1, 4});
  es::DenseTensor b(es::TensorShape{1, 1, 1, 4});
  a.at(0, 0, 0, 0) = 1.0f;
  a.at(0, 0, 0, 1) = 1.0f;
  b.at(0, 0, 0, 1) = 1.0f;
  b.at(0, 0, 0, 2) = 1.0f;
  // Intersection {1}, union {0,1,2} -> 1/3.
  EXPECT_NEAR(eq::objectness_iou(a, b), 1.0 / 3.0, 1e-9);
}

TEST(Metrics, DegradationIsZeroForIdenticalOutputs) {
  es::DenseTensor seg(es::TensorShape{1, 6, 3, 3});
  seg.fill_random(5);
  EXPECT_DOUBLE_EQ(
      eq::metric_degradation(en::TaskKind::kSegmentation, seg, seg), 0.0);
  es::DenseTensor flow(es::TensorShape{1, 2, 3, 3});
  flow.fill_random(6);
  EXPECT_DOUBLE_EQ(
      eq::metric_degradation(en::TaskKind::kOpticalFlow, flow, flow), 0.0);
}

TEST(Metrics, PaperBaselinesMatchTable2) {
  EXPECT_DOUBLE_EQ(
      eq::paper_baseline(en::TaskKind::kOpticalFlow, "SpikeFlowNet").value,
      0.93);
  EXPECT_DOUBLE_EQ(
      eq::paper_baseline(en::TaskKind::kSegmentation, "HALSIE").value,
      66.31);
  EXPECT_FALSE(
      eq::paper_baseline(en::TaskKind::kSegmentation, "HALSIE")
          .lower_is_better);
  EXPECT_DOUBLE_EQ(
      eq::paper_baseline(en::TaskKind::kDepth, "HidalgoDepth").value, 0.61);
  EXPECT_DOUBLE_EQ(
      eq::paper_baseline(en::TaskKind::kTracking, "DOTIE").value, 0.86);
}

// ----------------------------------------------------- accuracy evaluator

namespace {

eq::AccuracyEvaluator make_evaluator(en::NetworkId id, int samples = 3) {
  const auto spec = en::build_network(id, en::ZooConfig::test_scale());
  return eq::AccuracyEvaluator(
      spec, 7, eq::make_validation_set(spec, samples, 21));
}

}  // namespace

TEST(Accuracy, Fp32AssignmentHasZeroDegradation) {
  auto evaluator = make_evaluator(en::NetworkId::kEvFlowNet);
  const auto fp32 = eq::uniform_assignment(evaluator.spec(),
                                           eq::Precision::kFp32);
  EXPECT_DOUBLE_EQ(evaluator.evaluate(fp32), 0.0);
}

TEST(Accuracy, Int8DegradesMoreThanFp16) {
  auto evaluator = make_evaluator(en::NetworkId::kEvFlowNet);
  const double d16 = evaluator.evaluate(
      eq::uniform_assignment(evaluator.spec(), eq::Precision::kFp16));
  const double d8 = evaluator.evaluate(
      eq::uniform_assignment(evaluator.spec(), eq::Precision::kInt8));
  EXPECT_GE(d8, d16);
  EXPECT_GT(d8, 0.0);
}

TEST(Accuracy, EvaluateIsRepeatableAndRestoresState) {
  auto evaluator = make_evaluator(en::NetworkId::kHidalgoDepth);
  const auto int8 = eq::uniform_assignment(evaluator.spec(),
                                           eq::Precision::kInt8);
  const double first = evaluator.evaluate(int8);
  // State restoration: an FP32 run in between must still be exact, and
  // the INT8 result must reproduce.
  EXPECT_DOUBLE_EQ(
      evaluator.evaluate(eq::uniform_assignment(evaluator.spec(),
                                                eq::Precision::kFp32)),
      0.0);
  EXPECT_DOUBLE_EQ(evaluator.evaluate(int8), first);
}

TEST(Accuracy, SubsetSamplingIsDeterministic) {
  auto evaluator = make_evaluator(en::NetworkId::kEvFlowNet, 5);
  const auto int8 = eq::uniform_assignment(evaluator.spec(),
                                           eq::Precision::kInt8);
  const double a = evaluator.evaluate(int8, 2, 3);
  const double b = evaluator.evaluate(int8, 2, 3);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Accuracy, SnnOutputsAreQuantizationTolerant) {
  // Spiking layers emit binary spikes; DOTIE under INT8 should degrade
  // very little (spikes are exactly representable).
  auto evaluator = make_evaluator(en::NetworkId::kDotie);
  const double d8 = evaluator.evaluate(
      eq::uniform_assignment(evaluator.spec(), eq::Precision::kInt8));
  EXPECT_LT(d8, 0.5);
}

TEST(Sensitivity, PredictsZeroForFp32) {
  auto evaluator = make_evaluator(en::NetworkId::kSpikeFlowNet);
  eq::SensitivityModel model(evaluator, 1);
  EXPECT_DOUBLE_EQ(model.predict(eq::uniform_assignment(
                       evaluator.spec(), eq::Precision::kFp32)),
                   0.0);
}

TEST(Sensitivity, AdditiveModelTracksDirectOrdering) {
  auto evaluator = make_evaluator(en::NetworkId::kEvFlowNet);
  eq::SensitivityModel model(evaluator, 2);
  const auto fp16 = eq::uniform_assignment(evaluator.spec(),
                                           eq::Precision::kFp16);
  const auto int8 = eq::uniform_assignment(evaluator.spec(),
                                           eq::Precision::kInt8);
  // The surrogate must preserve the coarse ordering FP16 <= INT8.
  EXPECT_LE(model.predict(fp16), model.predict(int8) + 1e-12);
  EXPECT_GT(model.predict(int8), 0.0);
}

TEST(Validation, SetShapesMatchSpec) {
  const auto spec =
      en::build_network(en::NetworkId::kHalsie, en::ZooConfig::test_scale());
  const auto set = eq::make_validation_set(spec, 2, 9);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(static_cast<int>(set[0].event_steps.size()), spec.timesteps);
  ASSERT_TRUE(set[0].image.has_value());
  EXPECT_EQ(set[0].image->shape().c, 1);
}
