#pragma once

// Roofline-style layer latency model with sparsity and batching hooks.
// latency = launch_overhead
//         + max(compute_time, memory_time)            [per inference]
// where compute_time depends on the execution route:
//   dense : macs / (peak * dense_eff * spiking_penalty)
//   sparse: macs * density * sparse_overhead / (peak * dense_eff * ...)
// and memory_time moves activations + weights over the PE's bandwidth.
//
// Batched execution amortizes the launch overhead over the batch and
// adds a mild utilization bonus (larger GEMMs) — the mechanism DSFA's
// cBatch mode exploits.

#include "hw/platform.hpp"
#include "nn/graph.hpp"
#include "quant/precision.hpp"

namespace evedge::hw {

/// Execution route for a layer.
enum class Route : std::uint8_t { kDense, kSparse };

/// Workload of one layer application (one timestep, batch 1).
struct LayerWorkload {
  std::size_t macs = 0;          ///< dense multiply-accumulates
  std::size_t input_elements = 0;
  std::size_t output_elements = 0;
  std::size_t weight_elements = 0;
  nn::Domain domain = nn::Domain::kAnn;
  /// Fraction of input activations that are non-zero (drives the sparse
  /// route; 1.0 = fully dense).
  double input_density = 1.0;

  /// Derives the static part of the workload from a layer spec.
  [[nodiscard]] static LayerWorkload from_layer(const nn::LayerSpec& spec);
};

/// Latency of one layer on one PE at one precision (microseconds).
/// `batch` > 1 models DSFA-batched inference; returns the *total* time
/// for the whole batch. Throws if the PE does not support `precision`,
/// or if `route` is sparse on a PE without sparse kernels.
[[nodiscard]] double layer_latency_us(const ProcessingElement& pe,
                                      Precision precision,
                                      const LayerWorkload& workload,
                                      Route route = Route::kDense,
                                      int batch = 1);

/// Chooses the cheaper of dense / (if available) sparse for the layer.
[[nodiscard]] Route best_route(const ProcessingElement& pe,
                               Precision precision,
                               const LayerWorkload& workload);

/// Cost of converting a dense activation tensor to COO on this PE (the
/// encode overhead E2SF eliminates; charged to the dense->sparse baseline).
[[nodiscard]] double encode_to_sparse_us(const ProcessingElement& pe,
                                         std::size_t elements,
                                         Precision precision);

/// Activation bytes for a count of elements at a precision.
[[nodiscard]] double activation_bytes(std::size_t elements,
                                      Precision precision) noexcept;

}  // namespace evedge::hw
