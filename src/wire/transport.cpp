#include "wire/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace evedge::wire {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// poll() one fd for `events`; true when ready, false on timeout/error.
bool wait_fd(int fd, short events, std::chrono::milliseconds timeout) {
  pollfd pfd{fd, events, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  return rc > 0 && (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
}

}  // namespace

// ---------------------------------------------------------------- TCP

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw std::runtime_error("TcpListener: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd_, 16) != 0) {
    ::close(fd_);
    throw std::runtime_error("TcpListener: bind/listen failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  close();
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Transport> TcpListener::accept(
    std::chrono::milliseconds timeout) {
  if (closed_.load(std::memory_order_acquire)) return nullptr;
  if (!wait_fd(fd_, POLLIN, timeout)) return nullptr;
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return nullptr;
  return std::make_unique<TcpTransport>(fd);
}

void TcpListener::close() {
  if (!closed_.exchange(true, std::memory_order_acq_rel) && fd_ >= 0) {
    // shutdown (not ::close) so a concurrent accept()'s poll wakes
    // without racing fd reuse; the fd itself dies in the destructor.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

TcpTransport::TcpTransport(int fd) : fd_(fd) {
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

TcpTransport::~TcpTransport() {
  close();
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpTransport> TcpTransport::connect(
    std::uint16_t port, std::chrono::milliseconds timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr = loopback(port);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
         0) {
    if (std::chrono::steady_clock::now() >= deadline) {
      ::close(fd);
      return nullptr;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return std::make_unique<TcpTransport>(fd);
}

bool TcpTransport::send(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    if (closed()) return false;
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent > 0) {
      p += sent;
      n -= static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EINTR || errno == EAGAIN)) {
      (void)wait_fd(fd_, POLLOUT, std::chrono::milliseconds(50));
      continue;
    }
    return false;  // peer gone / reset
  }
  return true;
}

std::ptrdiff_t TcpTransport::recv_some(void* data, std::size_t n,
                                       std::chrono::milliseconds timeout) {
  if (closed()) return -1;
  if (!wait_fd(fd_, POLLIN, timeout)) return closed() ? -1 : 0;
  const ssize_t got = ::recv(fd_, data, n, 0);
  if (got > 0) return got;
  if (got == 0) return -1;  // orderly EOF
  if (errno == EINTR || errno == EAGAIN) return 0;
  return -1;
}

void TcpTransport::close() {
  if (!closed_.exchange(true, std::memory_order_acq_rel) && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

// ------------------------------------------------------ shared-memory

namespace {

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShmRing::ShmRing(std::size_t capacity)
    : buffer_(round_pow2(capacity)), mask_(buffer_.size() - 1) {}

std::size_t ShmRing::write_some(const void* data, std::size_t n) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::size_t free = buffer_.size() - static_cast<std::size_t>(head - tail);
  const std::size_t take = n < free ? n : free;
  if (take == 0) return 0;
  const auto* src = static_cast<const std::uint8_t*>(data);
  const std::size_t start = static_cast<std::size_t>(head) & mask_;
  const std::size_t first = std::min(take, buffer_.size() - start);
  std::memcpy(buffer_.data() + start, src, first);
  std::memcpy(buffer_.data(), src + first, take - first);
  head_.store(head + take, std::memory_order_release);
  return take;
}

std::size_t ShmRing::read_some(void* data, std::size_t n) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::size_t avail = static_cast<std::size_t>(head - tail);
  const std::size_t take = n < avail ? n : avail;
  if (take == 0) return 0;
  auto* dst = static_cast<std::uint8_t*>(data);
  const std::size_t start = static_cast<std::size_t>(tail) & mask_;
  const std::size_t first = std::min(take, buffer_.size() - start);
  std::memcpy(dst, buffer_.data() + start, first);
  std::memcpy(dst + first, buffer_.data(), take - first);
  tail_.store(tail + take, std::memory_order_release);
  return take;
}

std::size_t ShmRing::readable() const noexcept {
  return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                  tail_.load(std::memory_order_acquire));
}

ShmRingTransport::ShmRingTransport(std::shared_ptr<ShmRing> tx,
                                   std::shared_ptr<ShmRing> rx)
    : tx_(std::move(tx)), rx_(std::move(rx)) {}

std::pair<std::unique_ptr<ShmRingTransport>,
          std::unique_ptr<ShmRingTransport>>
ShmRingTransport::make_pair(std::size_t capacity) {
  auto a2b = std::make_shared<ShmRing>(capacity);
  auto b2a = std::make_shared<ShmRing>(capacity);
  return {std::make_unique<ShmRingTransport>(a2b, b2a),
          std::make_unique<ShmRingTransport>(b2a, a2b)};
}

bool ShmRingTransport::send(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    if (tx_->closed() || rx_->closed()) return false;
    const std::size_t wrote = tx_->write_some(p, n);
    if (wrote == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
      continue;
    }
    p += wrote;
    n -= wrote;
  }
  return true;
}

std::ptrdiff_t ShmRingTransport::recv_some(
    void* data, std::size_t n, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    // Snapshot closed BEFORE draining: if the peer wrote then closed,
    // the acquire here orders before the read below, so every byte
    // written prior to close is drained before EOF is reported.
    const bool was_closed = rx_->closed() || tx_->closed();
    const std::size_t got = rx_->read_some(data, n);
    if (got > 0) return static_cast<std::ptrdiff_t>(got);
    if (was_closed) return -1;
    if (std::chrono::steady_clock::now() >= deadline) return 0;
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

void ShmRingTransport::close() {
  tx_->close();
  rx_->close();
}

bool ShmRingTransport::closed() const {
  return tx_->closed() || rx_->closed();
}

}  // namespace evedge::wire
