#include "wire/packet.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "wire/crc32.hpp"

namespace evedge::wire {

namespace {

constexpr std::uint8_t kMagic[4] = {'E', 'V', 'W', 'P'};
constexpr std::uint8_t kMaxType =
    static_cast<std::uint8_t>(PacketType::kResume);
constexpr std::uint16_t kPolarityBit = 0x8000u;

// Little-endian scalar append/read. The repo's persistence (events/io)
// already assumes a little-endian host; the wire keeps that convention
// but goes through explicit byte packing so the format is pinned by
// construction, not by host layout.
template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(value) >> (8 * i)));
  }
}

template <typename T>
[[nodiscard]] T get(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return static_cast<T>(v);
}

/// Appends the 24-byte header (crc patched afterwards) and returns the
/// offset where it starts.
std::size_t begin_packet(std::vector<std::uint8_t>& out, PacketType type,
                         std::uint16_t event_count,
                         std::uint32_t session_id, std::uint32_t seq,
                         std::uint32_t t_base) {
  const std::size_t start = out.size();
  out.insert(out.end(), kMagic, kMagic + 4);
  put<std::uint8_t>(out, kWireVersion);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(type));
  put<std::uint16_t>(out, event_count);
  put<std::uint32_t>(out, session_id);
  put<std::uint32_t>(out, seq);
  put<std::uint32_t>(out, t_base);
  put<std::uint32_t>(out, 0);  // crc placeholder
  return start;
}

/// Computes and patches the crc of the packet starting at `start`.
void finish_packet(std::vector<std::uint8_t>& out, std::size_t start) {
  std::uint8_t* p = out.data() + start;
  std::uint32_t crc = crc32(p, kHeaderBytes - 4);
  crc = crc32(p + kHeaderBytes, out.size() - start - kHeaderBytes, crc);
  std::memcpy(p + kHeaderBytes - 4, &crc, sizeof crc);
}

/// Payload length implied by a (valid) header.
[[nodiscard]] std::size_t payload_length(PacketType type,
                                         std::uint16_t event_count) {
  switch (type) {
    case PacketType::kData:
      return static_cast<std::size_t>(event_count) * kEventBytes;
    case PacketType::kHello:
      return 24;
    case PacketType::kAck:
    case PacketType::kResume:
      return 4;
    case PacketType::kHeartbeat:
    case PacketType::kEndOfStream:
      return 0;
  }
  return 0;
}

}  // namespace

const char* to_string(PacketType type) noexcept {
  switch (type) {
    case PacketType::kHello: return "hello";
    case PacketType::kData: return "data";
    case PacketType::kEndOfStream: return "end-of-stream";
    case PacketType::kHeartbeat: return "heartbeat";
    case PacketType::kAck: return "ack";
    case PacketType::kResume: return "resume";
  }
  return "unknown";
}

const char* to_string(PacketError error) noexcept {
  switch (error) {
    case PacketError::kNone: return "none";
    case PacketError::kBadMagic: return "bad-magic";
    case PacketError::kBadVersion: return "bad-version";
    case PacketError::kBadType: return "bad-type";
    case PacketError::kBadLength: return "bad-length";
    case PacketError::kBadCrc: return "bad-crc";
    case PacketError::kMalformedEvents: return "malformed-events";
    case PacketError::kUnresolvedGap: return "unresolved-gap";
  }
  return "unknown";
}

void encode_hello(std::uint32_t session_id, const StreamHeader& header,
                  std::vector<std::uint8_t>& out) {
  const std::size_t start =
      begin_packet(out, PacketType::kHello, 0, session_id, 0,
                   static_cast<std::uint32_t>(header.epoch_us));
  put<std::uint16_t>(out, header.width);
  put<std::uint16_t>(out, header.height);
  put<std::uint64_t>(out, static_cast<std::uint64_t>(header.epoch_us));
  put<std::uint64_t>(out, static_cast<std::uint64_t>(header.t_end_us));
  put<std::uint32_t>(out, header.data_packets);
  finish_packet(out, start);
}

void encode_data(std::uint32_t session_id, std::uint32_t seq,
                 std::span<const events::Event> events,
                 std::vector<std::uint8_t>& out) {
  if (events.size() > kMaxEventsPerPacket) {
    throw std::invalid_argument("encode_data: " +
                                std::to_string(events.size()) +
                                " events exceed the per-packet cap");
  }
  const std::int64_t base = events.empty() ? 0 : events.front().t;
  const std::size_t start = begin_packet(
      out, PacketType::kData, static_cast<std::uint16_t>(events.size()),
      session_id, seq, static_cast<std::uint32_t>(base));
  std::int64_t prev = base;
  for (const events::Event& e : events) {
    if (e.y >= kPolarityBit) {
      throw std::invalid_argument(
          "encode_data: y coordinate exceeds the 15-bit wire field");
    }
    if (e.t < prev) {
      throw std::invalid_argument(
          "encode_data: events must be time-ordered");
    }
    const std::int64_t dt = e.t - base;
    if (dt > 0xFFFFFFFFll) {
      throw std::invalid_argument(
          "encode_data: packet spans >= 2^32 us — split it");
    }
    put<std::uint16_t>(out, e.x);
    put<std::uint16_t>(out,
                       static_cast<std::uint16_t>(
                           e.y | (e.p == events::Polarity::kPositive
                                      ? kPolarityBit
                                      : 0)));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(dt));
    prev = e.t;
  }
  finish_packet(out, start);
}

void encode_eos(std::uint32_t session_id, std::uint32_t seq,
                std::int64_t t_end_us, std::vector<std::uint8_t>& out) {
  const std::size_t start =
      begin_packet(out, PacketType::kEndOfStream, 0, session_id, seq,
                   static_cast<std::uint32_t>(t_end_us));
  finish_packet(out, start);
}

void encode_heartbeat(std::uint32_t session_id, std::uint32_t last_seq,
                      std::int64_t last_t_us,
                      std::vector<std::uint8_t>& out) {
  const std::size_t start =
      begin_packet(out, PacketType::kHeartbeat, 0, session_id, last_seq,
                   static_cast<std::uint32_t>(last_t_us));
  finish_packet(out, start);
}

void encode_ack(std::uint32_t session_id, std::uint32_t acked,
                std::vector<std::uint8_t>& out) {
  const std::size_t start =
      begin_packet(out, PacketType::kAck, 0, session_id, 0, 0);
  put<std::uint32_t>(out, acked);
  finish_packet(out, start);
}

void encode_resume(std::uint32_t session_id, std::uint32_t last_sent,
                   std::vector<std::uint8_t>& out) {
  const std::size_t start =
      begin_packet(out, PacketType::kResume, 0, session_id, 0, 0);
  put<std::uint32_t>(out, last_sent);
  finish_packet(out, start);
}

bool decode_hello(std::span<const std::uint8_t> payload,
                  StreamHeader& out) {
  if (payload.size() != 24) return false;
  const std::uint8_t* p = payload.data();
  out.width = get<std::uint16_t>(p);
  out.height = get<std::uint16_t>(p + 2);
  out.epoch_us = static_cast<std::int64_t>(get<std::uint64_t>(p + 4));
  out.t_end_us = static_cast<std::int64_t>(get<std::uint64_t>(p + 12));
  out.data_packets = get<std::uint32_t>(p + 20);
  return true;
}

bool decode_u32_payload(std::span<const std::uint8_t> payload,
                        std::uint32_t& out) {
  if (payload.size() != 4) return false;
  out = get<std::uint32_t>(payload.data());
  return true;
}

PacketError decode_events(std::span<const std::uint8_t> payload,
                          std::uint16_t event_count, std::int64_t base_us,
                          std::int64_t min_t_us, std::uint16_t width,
                          std::uint16_t height,
                          std::vector<events::Event>& out) {
  if (payload.size() !=
      static_cast<std::size_t>(event_count) * kEventBytes) {
    return PacketError::kBadLength;
  }
  const std::size_t mark = out.size();
  std::uint32_t prev_dt = 0;
  for (std::uint16_t i = 0; i < event_count; ++i) {
    const std::uint8_t* p = payload.data() + i * kEventBytes;
    const auto x = get<std::uint16_t>(p);
    const auto yp = get<std::uint16_t>(p + 2);
    const auto dt = get<std::uint32_t>(p + 4);
    const auto y = static_cast<std::uint16_t>(yp & ~kPolarityBit);
    const std::int64_t t = base_us + dt;
    if (x >= width || y >= height || dt < prev_dt || t < min_t_us) {
      out.resize(mark);  // reject the whole packet, keep nothing
      return PacketError::kMalformedEvents;
    }
    out.push_back(events::Event{
        x, y, t,
        (yp & kPolarityBit) != 0 ? events::Polarity::kPositive
                                 : events::Polarity::kNegative});
    prev_dt = dt;
  }
  return PacketError::kNone;
}

void PacketFramer::feed(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + n);
}

void PacketFramer::reset() noexcept {
  buffer_.clear();
  pos_ = 0;
}

void PacketFramer::compact() {
  if (pos_ == 0) return;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
  pos_ = 0;
}

std::optional<Framed> PacketFramer::next() {
  // Resynchronize: skip to the next magic. A contiguous run of garbage
  // (or an abandoned false sync) counts as ONE kBadMagic rejection so
  // hostile bytes cannot inflate counters without bound.
  std::size_t skipped = 0;
  while (buffer_.size() - pos_ >= 4 &&
         std::memcmp(buffer_.data() + pos_, kMagic, 4) != 0) {
    ++pos_;
    ++skipped;
  }
  if (buffer_.size() - pos_ < 4) {
    // Fewer than 4 bytes left: they may be a magic prefix — keep them.
    while (buffer_.size() - pos_ > 0 &&
           std::memcmp(buffer_.data() + pos_, kMagic,
                       buffer_.size() - pos_) != 0) {
      ++pos_;
      ++skipped;
    }
    compact();
    if (skipped > 0) return Framed{PacketError::kBadMagic, {}, {}};
    return std::nullopt;
  }
  if (skipped > 0) return Framed{PacketError::kBadMagic, {}, {}};

  if (buffer_.size() - pos_ < kHeaderBytes) return std::nullopt;
  const std::uint8_t* h = buffer_.data() + pos_;
  PacketHeader header;
  header.version = h[4];
  const std::uint8_t raw_type = h[5];
  header.event_count = get<std::uint16_t>(h + 6);
  header.session_id = get<std::uint32_t>(h + 8);
  header.seq = get<std::uint32_t>(h + 12);
  header.t_base = get<std::uint32_t>(h + 16);
  const auto crc_stored = get<std::uint32_t>(h + 20);

  // A bad header field: step past this magic and rescan — if this was a
  // false sync inside a payload, the scan recovers the true boundary.
  if (header.version != kWireVersion) {
    pos_ += 4;
    return Framed{PacketError::kBadVersion, header, {}};
  }
  if (raw_type > kMaxType) {
    pos_ += 4;
    return Framed{PacketError::kBadType, header, {}};
  }
  header.type = static_cast<PacketType>(raw_type);
  if (header.type == PacketType::kData &&
      header.event_count > kMaxEventsPerPacket) {
    pos_ += 4;
    return Framed{PacketError::kBadLength, header, {}};
  }
  const std::size_t body = payload_length(header.type, header.event_count);
  if (buffer_.size() - pos_ < kHeaderBytes + body) {
    compact();
    return std::nullopt;  // truncated so far; more bytes may complete it
  }

  std::uint32_t crc = crc32(h, kHeaderBytes - 4);
  crc = crc32(h + kHeaderBytes, body, crc);
  if (crc != crc_stored) {
    pos_ += 4;  // corrupted or a framing slip: rescan inside it
    return Framed{PacketError::kBadCrc, header, {}};
  }

  Framed framed;
  framed.header = header;
  framed.payload = std::span<const std::uint8_t>(h + kHeaderBytes, body);
  pos_ += kHeaderBytes + body;
  return framed;
}

}  // namespace evedge::wire
