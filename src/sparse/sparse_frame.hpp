#pragma once

// SparseFrame: the unit of data flowing through the Ev-Edge runtime — one
// event bin rendered as a two-channel (positive / negative polarity) COO
// sparse image, carrying the timing metadata DSFA's merge policy needs.

#include <cstdint>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/tensor.hpp"

namespace evedge::sparse {

/// Merge modes supported by DSFA (paper §4.2).
enum class MergeMode : std::uint8_t {
  kAdd,      ///< cAdd: accumulate pixel values across frames
  kAverage,  ///< cAverage: average pixel values across frames
  kBatch,    ///< cBatch: keep frames separate, concatenate along batch
};

/// Two-channel sparse event frame. channel(0) holds accumulated positive
/// polarity counts, channel(1) negative counts (stored positive).
class SparseFrame {
 public:
  SparseFrame() = default;
  SparseFrame(int height, int width);

  [[nodiscard]] int height() const noexcept { return pos_.height(); }
  [[nodiscard]] int width() const noexcept { return pos_.width(); }

  [[nodiscard]] const CooChannel& positive() const noexcept { return pos_; }
  [[nodiscard]] const CooChannel& negative() const noexcept { return neg_; }
  [[nodiscard]] CooChannel& positive() noexcept { return pos_; }
  [[nodiscard]] CooChannel& negative() noexcept { return neg_; }

  /// Total stored non-zeros across both channels.
  [[nodiscard]] std::size_t nnz() const noexcept {
    return pos_.nnz() + neg_.nnz();
  }

  /// Fraction of (pixel, channel) sites that are non-zero, in [0, 1].
  [[nodiscard]] double density() const noexcept;

  /// Fraction of *pixels* with at least one event in either channel —
  /// the Fig. 1 / Fig. 3 quantity.
  [[nodiscard]] double pixel_fill_ratio() const;

  /// Sum of event counts (positive channel + negative channel values).
  [[nodiscard]] double event_mass() const noexcept {
    return pos_.value_sum() + neg_.value_sum();
  }

  // --- timing metadata (microseconds) ---
  std::int64_t t_start = 0;    ///< bin start
  std::int64_t t_end = 0;      ///< bin end
  std::int64_t bin_index = 0;  ///< event-bin index within its frame interval
  std::int64_t source_events = 0;  ///< raw events accumulated into the bin
  std::int64_t merged_count = 1;   ///< source frames merged into this one

  /// Dense [1, 2, H, W] rendering (channel 0 positive, 1 negative).
  [[nodiscard]] DenseTensor to_dense() const;

  /// Builds a frame from a dense [1, 2, H, W] tensor (inverse of
  /// to_dense); used by the dense-baseline encode path.
  [[nodiscard]] static SparseFrame from_dense(const DenseTensor& dense);

  void validate() const;

 private:
  CooChannel pos_;
  CooChannel neg_;
};

/// Merges `frames` under cAdd (sum) or cAverage (mean). The result spans
/// [min t_start, max t_end] and accumulates source_events. Throws for
/// kBatch (batching concatenates instead of merging — see batch_frames)
/// and for empty input.
[[nodiscard]] SparseFrame merge_frames(const std::vector<SparseFrame>& frames,
                                       MergeMode mode);

/// Batched dense rendering [N, 2, H, W] of N sparse frames (cBatch /
/// inference-queue concatenation). All frames must share extents.
[[nodiscard]] DenseTensor batch_to_dense(
    const std::vector<SparseFrame>& frames);

/// Relative spatial-density change |d(frame) - d(ref)| / max(d(ref), eps) —
/// the quantity DSFA compares against MdTh.
[[nodiscard]] double density_change(const SparseFrame& frame,
                                    const SparseFrame& reference,
                                    double eps = 1e-9);

}  // namespace evedge::sparse
