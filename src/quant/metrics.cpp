#include "quant/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace evedge::quant {

using sparse::DenseTensor;
using sparse::TensorShape;

namespace {

void require_same_shape(const DenseTensor& a, const DenseTensor& b,
                        const char* what) {
  if (!(a.shape() == b.shape())) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
}

}  // namespace

double average_endpoint_error(const DenseTensor& flow,
                              const DenseTensor& ref) {
  require_same_shape(flow, ref, "average_endpoint_error");
  const TensorShape& s = flow.shape();
  if (s.c != 2) {
    throw std::invalid_argument("AEE expects 2-channel flow tensors");
  }
  double acc = 0.0;
  std::size_t count = 0;
  for (int n = 0; n < s.n; ++n) {
    for (int y = 0; y < s.h; ++y) {
      for (int x = 0; x < s.w; ++x) {
        const double du = static_cast<double>(flow.at(n, 0, y, x)) -
                          static_cast<double>(ref.at(n, 0, y, x));
        const double dv = static_cast<double>(flow.at(n, 1, y, x)) -
                          static_cast<double>(ref.at(n, 1, y, x));
        acc += std::sqrt(du * du + dv * dv);
        ++count;
      }
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

double mean_iou(const DenseTensor& scores, const DenseTensor& ref) {
  require_same_shape(scores, ref, "mean_iou");
  const TensorShape& s = scores.shape();
  if (s.c < 2) {
    throw std::invalid_argument("mean_iou expects >= 2 class channels");
  }
  const auto argmax = [&](const DenseTensor& t, int n, int y, int x) {
    int best = 0;
    float best_v = t.at(n, 0, y, x);
    for (int c = 1; c < s.c; ++c) {
      const float v = t.at(n, c, y, x);
      if (v > best_v) {
        best_v = v;
        best = c;
      }
    }
    return best;
  };
  std::vector<std::size_t> inter(static_cast<std::size_t>(s.c), 0);
  std::vector<std::size_t> uni(static_cast<std::size_t>(s.c), 0);
  for (int n = 0; n < s.n; ++n) {
    for (int y = 0; y < s.h; ++y) {
      for (int x = 0; x < s.w; ++x) {
        const auto a = static_cast<std::size_t>(argmax(scores, n, y, x));
        const auto b = static_cast<std::size_t>(argmax(ref, n, y, x));
        if (a == b) {
          ++inter[a];
          ++uni[a];
        } else {
          ++uni[a];
          ++uni[b];
        }
      }
    }
  }
  double iou_sum = 0.0;
  int present = 0;
  for (int c = 0; c < s.c; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    if (uni[ci] == 0) continue;
    iou_sum += static_cast<double>(inter[ci]) / static_cast<double>(uni[ci]);
    ++present;
  }
  return present > 0 ? iou_sum / present : 1.0;
}

double mean_depth_error(const DenseTensor& depth, const DenseTensor& ref,
                        double eps) {
  require_same_shape(depth, ref, "mean_depth_error");
  double acc = 0.0;
  for (std::size_t i = 0; i < depth.size(); ++i) {
    const double d = static_cast<double>(depth.data()[i]);
    const double r = static_cast<double>(ref.data()[i]);
    acc += std::abs(d - r) / std::max(std::abs(r), eps);
  }
  return depth.size() > 0 ? acc / static_cast<double>(depth.size()) : 0.0;
}

double objectness_iou(const DenseTensor& map, const DenseTensor& ref,
                      float threshold) {
  require_same_shape(map, ref, "objectness_iou");
  std::size_t inter = 0;
  std::size_t uni = 0;
  for (std::size_t i = 0; i < map.size(); ++i) {
    const bool a = map.data()[i] > threshold;
    const bool b = ref.data()[i] > threshold;
    if (a && b) ++inter;
    if (a || b) ++uni;
  }
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni)
                 : 1.0;
}

double metric_degradation(nn::TaskKind task, const DenseTensor& output,
                          const DenseTensor& reference) {
  switch (task) {
    case nn::TaskKind::kOpticalFlow:
      return average_endpoint_error(output, reference);
    case nn::TaskKind::kSegmentation:
      return 1.0 - mean_iou(output, reference);
    case nn::TaskKind::kDepth:
      return mean_depth_error(output, reference);
    case nn::TaskKind::kTracking:
      return 1.0 - objectness_iou(output, reference);
  }
  return 0.0;
}

PaperBaseline paper_baseline(nn::TaskKind task,
                             const std::string& network_name) {
  // Table 2 of the paper ("Baseline" column).
  if (network_name == "SpikeFlowNet") return {0.93, true, "AEE"};
  if (network_name == "Fusion-FlowNet") return {0.72, true, "AEE"};
  if (network_name == "Adaptive-SpikeNet") return {1.27, true, "AEE"};
  if (network_name == "HALSIE") return {66.31, false, "mIOU"};
  if (network_name == "HidalgoDepth") return {0.61, true, "Avg Error"};
  if (network_name == "DOTIE") return {0.86, false, "mIOU"};
  // Networks outside Table 2 (e.g. EV-FlowNet): anchor by task defaults.
  switch (task) {
    case nn::TaskKind::kOpticalFlow: return {0.92, true, "AEE"};
    case nn::TaskKind::kSegmentation: return {65.0, false, "mIOU"};
    case nn::TaskKind::kDepth: return {0.61, true, "Avg Error"};
    case nn::TaskKind::kTracking: return {0.86, false, "mIOU"};
  }
  return {};
}

}  // namespace evedge::quant
