// Figure 10 reproduction:
//  (a) NMP evolutionary-search fitness convergence over generations for
//      the mixed SNN-ANN multi-task configuration;
//  (b) latency of the NMP-searched configuration vs random search with
//      the same per-generation candidate budget (paper: NMP 1.42x
//      faster), plus the search-cost optimizations (fitness caching) the
//      paper describes in §4.3.1.

#include <cstdio>

#include "bench_common.hpp"
#include "hw/profiler.hpp"
#include "mapper/baselines.hpp"
#include "mapper/nmp.hpp"
#include "quant/accuracy.hpp"

namespace eb = evedge::bench;
namespace eh = evedge::hw;
namespace em = evedge::mapper;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace ss = evedge::sched;

int main() {
  eb::print_header(
      "Figure 10a: NMP fitness convergence (mixed SNN-ANN config)");
  const auto platform = eh::xavier_agx();
  const auto config = en::multi_task_mixed();

  std::vector<en::NetworkSpec> specs;
  for (const auto id : config.networks) {
    specs.push_back(en::build_network(id, en::ZooConfig::full_scale()));
  }
  const auto profiles = eh::profile_tasks(specs, platform);

  std::vector<eq::AccuracyEvaluator> evaluators;
  std::vector<eq::SensitivityModel> sensitivities;
  evaluators.reserve(config.networks.size());
  sensitivities.reserve(config.networks.size());
  for (const auto id : config.networks) {
    const auto small = en::build_network(id, en::ZooConfig::test_scale());
    evaluators.emplace_back(small, 7, eq::make_validation_set(small, 3, 21));
    sensitivities.emplace_back(evaluators.back(), 2);
  }
  em::AccuracyFn accuracy = [&sensitivities](int task,
                                             const ss::TaskMapping& m) {
    eq::PrecisionMap p;
    for (std::size_t n = 0; n < m.nodes.size(); ++n) {
      if (m.nodes[n].pe >= 0) {
        p[static_cast<int>(n)] = m.nodes[n].precision;
      }
    }
    return sensitivities[static_cast<std::size_t>(task)].predict(p);
  };

  em::NmpConfig cfg;
  cfg.population = 24;
  cfg.generations = 30;
  cfg.accuracy_threshold = 0.05;
  cfg.seed = 23;
  // Paper Fig. 10a starts from a purely random population; disable the
  // greedy/RR seeding so the convergence curve is comparable.
  cfg.seed_greedy = false;

  em::NetworkMapper mapper(specs, profiles, platform, accuracy, cfg);
  const auto result = mapper.run();

  std::printf("%-12s %-16s %-16s %s\n", "generation", "best-fitness",
              "mean-fitness", "");
  eb::print_rule();
  const double f0 = result.history.front().best_fitness;
  for (const auto& record : result.history) {
    if (record.generation % 2 != 0) continue;
    std::printf("%-12d %-16.0f %-16.0f %s\n", record.generation,
                record.best_fitness, record.mean_fitness,
                eb::bar(record.best_fitness, f0, 40).c_str());
  }
  eb::print_rule();
  std::printf(
      "convergence: %.0f -> %.0f us (%.2fx) | evaluations: %zu | cache "
      "hits: %zu (the paper's fitness-cache optimization)\n",
      f0, result.history.back().best_fitness,
      f0 / result.history.back().best_fitness, result.fitness_evaluations,
      result.cache_hits);

  eb::print_header("Figure 10b: NMP vs random search (same budget)");
  const auto random = em::random_search(mapper, cfg.population,
                                        cfg.generations, 31);
  const double nmp_latency = result.best_schedule.max_task_latency_us;
  ss::ScheduleResult random_schedule;
  (void)mapper.fitness(random.best, &random_schedule);
  const double random_latency = random_schedule.max_task_latency_us;
  std::printf(
      "NMP-searched configuration:    %8.0f us\n"
      "random-search configuration:   %8.0f us\n"
      "NMP is %.2fx faster (paper: 1.42x)\n",
      nmp_latency, random_latency, random_latency / nmp_latency);
  return 0;
}
