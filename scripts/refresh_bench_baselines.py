#!/usr/bin/env python3
"""Regenerate the checked-in BENCH_*.json baselines from a bench run.

The perf regression gate (check_bench_regression.py) compares fresh CI
runs against the baselines committed at the repo root. Whenever a change
legitimately moves a ratio — a kernel gets faster, a shared helper used
by a bench's *reference* side speeds up, a new bench is added — the
baselines must be re-recorded, at the same pinned thread counts the CI
gates use. This script runs each bench binary with its canonical
EVEDGE_THREADS setting and copies the result over the checked-in file
(also addressing the ROADMAP caveat that the 4-thread BENCH_kernels_mt /
BENCH_e2e_mt baselines go stale relative to the machine that records
them: rerun this wherever the gate runs).

Usage:
    scripts/refresh_bench_baselines.py [--build-dir build]
        [--repo-root .] [--only kernels,e2e_mt,...] [--dry-run]

Baselines and their recording configuration:
    kernels        bench_kernels        EVEDGE_THREADS=1
    kernels_mt     bench_kernels        EVEDGE_THREADS=4
    e2e            bench_e2e            EVEDGE_THREADS=1
    e2e_mt         bench_e2e            EVEDGE_THREADS=4
    quant          bench_quant          EVEDGE_THREADS=1
    sparse_engine  bench_sparse_engine  EVEDGE_THREADS=1
    serve          bench_serve          EVEDGE_THREADS=2 (worker budget
                   is pinned inside the bench; the env value only has to
                   match the recorded "threads" field)
    obs            bench_obs            EVEDGE_THREADS=2 (same: the
                   bench pins its own worker budget)

Every bench doubles as a parity smoke test and exits non-zero on
numerical failure, in which case the baseline is left untouched.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

BASELINES = {
    "kernels": ("bench_kernels", "BENCH_kernels.json", 1),
    "kernels_mt": ("bench_kernels", "BENCH_kernels_mt.json", 4),
    "e2e": ("bench_e2e", "BENCH_e2e.json", 1),
    "e2e_mt": ("bench_e2e", "BENCH_e2e_mt.json", 4),
    "quant": ("bench_quant", "BENCH_quant.json", 1),
    "sparse_engine": ("bench_sparse_engine", "BENCH_sparse_engine.json", 1),
    "serve": ("bench_serve", "BENCH_serve.json", 2),
    "obs": ("bench_obs", "BENCH_obs.json", 2),
}


def refresh(name, build_dir, repo_root, dry_run):
    binary, baseline, threads = BASELINES[name]
    bench = os.path.join(build_dir, binary)
    if not os.path.exists(bench):
        print(f"[{name}] SKIP: {bench} not built", file=sys.stderr)
        return False
    target = os.path.join(repo_root, baseline)
    env = dict(os.environ, EVEDGE_THREADS=str(threads))
    with tempfile.TemporaryDirectory() as tmp:
        fresh = os.path.join(tmp, baseline)
        print(f"[{name}] {binary} (EVEDGE_THREADS={threads}) -> {baseline}")
        proc = subprocess.run([bench, fresh], env=env)
        if proc.returncode != 0:
            print(f"[{name}] FAILED: bench exited {proc.returncode} "
                  f"(parity failure?) — baseline untouched", file=sys.stderr)
            return False
        # Sanity: the output must parse and carry the pinned thread count.
        with open(fresh) as f:
            data = json.load(f)
        if int(data.get("threads", -1)) != threads:
            print(f"[{name}] FAILED: recorded threads="
                  f"{data.get('threads')} != {threads}", file=sys.stderr)
            return False
        if dry_run:
            print(f"[{name}] dry run: would replace {target}")
        else:
            shutil.move(fresh, target)
            print(f"[{name}] wrote {target} "
                  f"({len(data.get('results', []))} records)")
    return True


def main():
    parser = argparse.ArgumentParser(
        description="Regenerate checked-in BENCH_*.json baselines")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--repo-root",
                        default=os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--only",
                        help="comma-separated subset of: " +
                             ", ".join(BASELINES))
    parser.add_argument("--dry-run", action="store_true",
                        help="run benches but do not replace baselines")
    args = parser.parse_args()

    names = list(BASELINES)
    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in BASELINES]
        if unknown:
            parser.error(f"unknown baseline(s): {', '.join(unknown)}")

    ok = True
    for name in names:
        ok = refresh(name, args.build_dir, args.repo_root,
                     args.dry_run) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
