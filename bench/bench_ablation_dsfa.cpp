// DSFA ablations (DESIGN.md D2/D3/D4): merge-bucket capacity (MBsize),
// time/density thresholds (MtTh/MdTh), merge mode and idle dispatch —
// their effect on end-to-end latency, merge behaviour, drops and the
// accuracy proxy. The paper: "It is also important to choose an optimal
// MBsize to achieve the best tradeoff between accuracy and performance"
// and "both MtTh and MdTh needs to be tuned for each task individually".

#include <cstdio>

#include "bench_common.hpp"
#include "core/e2e_accuracy.hpp"
#include "core/pipeline.hpp"
#include "events/density_profile.hpp"
#include "sched/mapping.hpp"

namespace eb = evedge::bench;
namespace ec = evedge::core;
namespace ee = evedge::events;
namespace eh = evedge::hw;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace ss = evedge::sched;

namespace {

struct Setup {
  eh::Platform platform = eh::xavier_agx();
  en::NetworkSpec spec =
      en::build_network(en::NetworkId::kSpikeFlowNet,
                        en::ZooConfig::full_scale());
  ec::ActivationDensityProfile densities = ec::measure_activation_densities(
      en::build_network(en::NetworkId::kSpikeFlowNet, eb::bench_scale()), 7);
  ss::TaskMapping mapping =
      ss::uniform_candidate({spec}, platform.first_pe(eh::PeKind::kGpu),
                            eq::Precision::kFp32)
          .tasks.front();
  ee::EventStream stream = eb::make_davis_stream(
      ee::DensityProfile::indoor_flying2(), 4'000'000, 21);

  [[nodiscard]] ec::PipelineStats run(const ec::DsfaConfig& dsfa,
                                      bool idle_dispatch,
                                      double frame_rate) const {
    ec::PipelineConfig cfg;
    cfg.use_e2sf = true;
    cfg.use_dsfa = true;
    cfg.idle_dispatch = idle_dispatch;
    cfg.dsfa = dsfa;
    cfg.frame_rate_hz = frame_rate;
    return ec::simulate_pipeline(stream, spec, mapping, platform, densities,
                                 cfg);
  }

  /// Accuracy proxy at test scale for the same DSFA configuration.
  [[nodiscard]] double accuracy_proxy(const ec::DsfaConfig& dsfa) const {
    const auto small = en::build_network(en::NetworkId::kSpikeFlowNet,
                                         en::ZooConfig::test_scale());
    const auto small_stream = eb::make_matched_stream(
        small, ee::DensityProfile::indoor_flying1(), 500'000, 39);
    ec::E2eAccuracyConfig cfg;
    cfg.apply_dsfa = true;
    cfg.dsfa = dsfa;
    cfg.max_intervals = 3;
    return ec::evaluate_e2e_accuracy(small, small_stream, cfg)
        .measured_degradation;
  }
};

}  // namespace

int main() {
  Setup setup;
  // Overloaded regime so merging decisions matter.
  const double frame_rate = 30.0;

  eb::print_header("DSFA ablation D3: merge bucket capacity (MBsize)");
  std::printf("%-8s %-14s %-10s %-10s %-12s\n", "MBsize", "latency[us]",
              "merge", "batches", "accuracy-dA");
  eb::print_rule(60);
  for (const std::size_t mbsize : {1u, 2u, 4u, 8u}) {
    ec::DsfaConfig dsfa;
    dsfa.merge_bucket_capacity = mbsize;
    dsfa.event_buffer_size = 2 * mbsize;
    const auto stats = setup.run(dsfa, true, frame_rate);
    std::printf("%-8zu %-14.0f %-10.2f %-10zu %-12.4f\n", mbsize,
                stats.mean_latency_us, stats.dsfa.mean_merge_factor(),
                stats.inferences, setup.accuracy_proxy(dsfa));
  }
  std::printf(
      "expected shape: larger buckets -> fewer inferences & lower latency "
      "but higher accuracy degradation.\n");

  eb::print_header("DSFA ablation D2a: max time delay threshold (MtTh)");
  std::printf("%-12s %-14s %-10s %-14s\n", "MtTh[ms]", "latency[us]",
              "merge", "time-closures");
  eb::print_rule(56);
  for (const double mtth : {2'000.0, 10'000.0, 40'000.0, 200'000.0}) {
    ec::DsfaConfig dsfa;
    dsfa.max_time_delay_us = mtth;
    const auto stats = setup.run(dsfa, true, frame_rate);
    std::printf("%-12.0f %-14.0f %-10.2f %-14zu\n", mtth / 1000.0,
                stats.mean_latency_us, stats.dsfa.mean_merge_factor(),
                stats.dsfa.time_threshold_closures);
  }

  eb::print_header("DSFA ablation D2b: max density change threshold (MdTh)");
  std::printf("%-12s %-14s %-10s %-16s\n", "MdTh", "latency[us]", "merge",
              "density-closures");
  eb::print_rule(56);
  for (const double mdth : {0.05, 0.25, 0.75, 5.0}) {
    ec::DsfaConfig dsfa;
    dsfa.max_density_change = mdth;
    const auto stats = setup.run(dsfa, true, frame_rate);
    std::printf("%-12.2f %-14.0f %-10.2f %-16zu\n", mdth,
                stats.mean_latency_us, stats.dsfa.mean_merge_factor(),
                stats.dsfa.density_threshold_closures);
  }

  eb::print_header("DSFA ablation: merge mode (cMode)");
  std::printf("%-10s %-14s %-10s %-10s\n", "mode", "latency[us]", "merge",
              "batch");
  eb::print_rule(48);
  const char* names[] = {"cAdd", "cAverage", "cBatch"};
  for (const auto mode :
       {evedge::sparse::MergeMode::kAdd, evedge::sparse::MergeMode::kAverage,
        evedge::sparse::MergeMode::kBatch}) {
    ec::DsfaConfig dsfa;
    dsfa.merge_mode = mode;
    const auto stats = setup.run(dsfa, true, frame_rate);
    std::printf("%-10s %-14.0f %-10.2f %-10.2f\n",
                names[static_cast<int>(mode)], stats.mean_latency_us,
                stats.dsfa.mean_merge_factor(), stats.mean_batch);
  }

  eb::print_header("DSFA ablation D4: idle dispatch on/off");
  std::printf("%-8s %-14s %-14s\n", "idle", "latency[us]", "staleness[us]");
  eb::print_rule(40);
  for (const bool idle : {true, false}) {
    ec::DsfaConfig dsfa;
    const auto stats = setup.run(dsfa, idle, 20.0);  // light load
    std::printf("%-8s %-14.0f %-14.0f\n", idle ? "on" : "off",
                stats.mean_latency_us, stats.mean_staleness_us);
  }
  std::printf(
      "expected shape: idle dispatch cuts latency when the device has "
      "headroom (paper section 4.2).\n");
  return 0;
}
