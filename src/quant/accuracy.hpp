#pragma once

// Accuracy-degradation evaluation for mixed-precision candidates
// (paper §4.3.1 "Candidate evaluation"): the pretrained network is
// linearly quantized at the candidate's per-layer bit-widths and scored
// on a validation subset against the FP32 reference output.
//
// Two evaluation paths:
//  - AccuracyEvaluator: direct — quantize, run, measure (exact but slow).
//  - SensitivityModel: additive per-layer surrogate calibrated from
//    direct measurements; the evolutionary search uses this (with the
//    evaluator's own fitness caching this mirrors the paper's
//    "inference only on a randomly sampled subset" + caching tricks).

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nn/engine.hpp"
#include "quant/metrics.hpp"
#include "quant/precision.hpp"

namespace evedge::quant {

/// Inputs for one validation inference.
struct ValidationSample {
  std::vector<sparse::DenseTensor> event_steps;
  std::optional<sparse::DenseTensor> image;
};

/// Synthesizes `n` sparse event-frame validation samples matching the
/// network's input representation (fraction `fill` of sites carry small
/// integer event counts, emulating E2SF output densities).
[[nodiscard]] std::vector<ValidationSample> make_validation_set(
    const nn::NetworkSpec& spec, int n, std::uint64_t seed,
    double fill = 0.08);

/// Per-node precision assignment. Nodes absent from the map run FP32.
using PrecisionMap = std::unordered_map<int, Precision>;

/// Uniform assignment for every weight node of the graph.
[[nodiscard]] PrecisionMap uniform_assignment(const nn::NetworkSpec& spec,
                                              Precision precision);

/// Direct quantized-accuracy evaluation against the FP32 reference.
class AccuracyEvaluator {
 public:
  /// Builds the functional network (weights from `weight_seed`) and
  /// computes FP32 reference outputs for every validation sample.
  AccuracyEvaluator(nn::NetworkSpec spec, std::uint64_t weight_seed,
                    std::vector<ValidationSample> validation);

  /// Mean task-metric degradation (metric_degradation units) of the
  /// assignment over `subset` validation samples (0 = all). The subset is
  /// drawn deterministically from `subset_seed`.
  [[nodiscard]] double evaluate(const PrecisionMap& assignment,
                                std::size_t subset = 0,
                                std::uint64_t subset_seed = 1);

  [[nodiscard]] const nn::NetworkSpec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] std::size_t validation_size() const noexcept {
    return validation_.size();
  }
  /// Ids of quantizable (weight) nodes.
  [[nodiscard]] const std::vector<int>& weight_nodes() const noexcept {
    return weight_nodes_;
  }

 private:
  [[nodiscard]] sparse::DenseTensor run_sample(std::size_t index);

  nn::NetworkSpec spec_;
  nn::FunctionalNetwork net_;
  std::vector<ValidationSample> validation_;
  std::vector<sparse::DenseTensor> reference_;  ///< FP32 outputs
  std::vector<int> weight_nodes_;
  std::unordered_map<int, sparse::DenseTensor> pristine_weights_;
};

/// Additive per-layer surrogate: dA(assignment) ~= sum_l s_l(p_l).
/// Calibrated by single-layer quantization probes through a direct
/// evaluator; evaluation is then O(#layers) table lookups.
class SensitivityModel {
 public:
  /// Probes every weight node at FP16 and INT8 using `probe_subset`
  /// validation samples per probe.
  SensitivityModel(AccuracyEvaluator& evaluator, std::size_t probe_subset,
                   std::uint64_t subset_seed = 7);

  [[nodiscard]] double predict(const PrecisionMap& assignment) const;

  /// Per-layer sensitivity s_l(p) (0 for FP32 / unknown nodes).
  [[nodiscard]] double sensitivity(int node_id, Precision p) const;

 private:
  std::unordered_map<int, double> fp16_;
  std::unordered_map<int, double> int8_;
};

}  // namespace evedge::quant
