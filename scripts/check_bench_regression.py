#!/usr/bin/env python3
"""Benchmark perf regression gate.

Compares a freshly produced benchmark JSON against the checked-in
baseline and fails (exit 1) when any record's speedup dropped by more
than the threshold. Speedup is a same-machine same-run ratio (reference
work / fast-path work), so it is largely machine-speed invariant — a
drop means the fast path itself regressed relative to the reference
work.

Five benchmark schemas are understood, auto-detected per record:

  BENCH_kernels.json / BENCH_quant.json
      records with kernel/shape/density and a single "speedup" metric
  BENCH_e2e.json
      records with density/batch and two metrics, "speedup_batched"
      and "speedup_csr"
  BENCH_sparse_engine.json
      records with network/density and a "speedup_planner" metric
      (planner-routed engine vs all-dense, same machine same run)
  BENCH_serve.json
      records with network/streams and a "speedup_serve" metric
      (concurrent serving runtime vs per-stream serial dense execution
      at the same worker budget, same machine same run)

Records are keyed by (kernel, shape, density); every metric of a record
gates independently. Keys present only in the fresh run (newly added
benches) are reported but do not gate; keys missing from the fresh run
fail the gate (a silently dropped bench must not pass as "no
regression"). Thread counts must match between baseline and fresh run —
extra fast-path threads would mask real regressions.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.20]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for r in data["results"]:
        if "kernel" in r:
            key = (r["kernel"], r["shape"], round(float(r["density"]), 6))
            metrics = {"speedup": float(r["speedup"])}
        elif "speedup_planner" in r:  # sparse engine schema
            key = ("sparse_engine", r["network"],
                   round(float(r["density"]), 6))
            metrics = {"speedup_planner": float(r["speedup_planner"])}
        elif "speedup_serve" in r:  # serving schema (keyed by streams)
            key = ("serve", r["network"], float(int(r["streams"])))
            metrics = {"speedup_serve": float(r["speedup_serve"])}
        else:  # e2e schema
            key = ("e2e", "batch=%d" % int(r["batch"]),
                   round(float(r["density"]), 6))
            metrics = {
                "speedup_batched": float(r["speedup_batched"]),
                "speedup_csr": float(r["speedup_csr"]),
            }
        out[key] = metrics
    return out, int(data.get("threads", 0))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional speedup drop")
    args = parser.parse_args()

    base, base_threads = load(args.baseline)
    fresh, fresh_threads = load(args.fresh)
    if base_threads != fresh_threads:
        print(f"thread-count mismatch: baseline ran with {base_threads} "
              f"threads, fresh run with {fresh_threads} — regenerate one "
              f"side (EVEDGE_THREADS pins the worker count)",
              file=sys.stderr)
        return 1

    failures = []
    print(f"{'kernel':<24} {'shape':<28} {'density':>8} "
          f"{'metric':<16} {'base':>8} {'fresh':>8} {'ratio':>7}")
    for key in sorted(base):
        kernel, shape, density = key
        if key not in fresh:
            failures.append(f"missing from fresh run: {key}")
            continue
        for metric in sorted(base[key]):
            b = base[key][metric]
            if metric not in fresh[key]:
                failures.append(f"missing metric {metric} for {key}")
                continue
            f = fresh[key][metric]
            ratio = f / b if b > 0 else float("inf")
            flag = "  FAIL" if ratio < 1.0 - args.threshold else ""
            print(f"{kernel:<24} {shape:<28} {density:>8.4f} "
                  f"{metric:<16} {b:>7.2f}x {f:>7.2f}x {ratio:>7.2f}{flag}")
            if ratio < 1.0 - args.threshold:
                failures.append(
                    f"{kernel} {shape} density={density} {metric}: "
                    f"{b:.2f}x -> {f:.2f}x "
                    f"({(1.0 - ratio) * 100:.0f}% drop)")
    gated = sum(len(m) for m in base.values())
    new = sorted(set(fresh) - set(base))
    for key in new:
        for metric in sorted(fresh[key]):
            print(f"{key[0]:<24} {key[1]:<28} {key[2]:>8.4f} "
                  f"{metric:<16} {'new':>8} {fresh[key][metric]:>7.2f}x")

    if failures:
        print("\nPERF REGRESSION GATE FAILED "
              f"(>{args.threshold * 100:.0f}% speedup drop):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nperf gate OK: no metric dropped more than "
          f"{args.threshold * 100:.0f}% vs baseline "
          f"({gated} gated, {len(new)} new record(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
