#pragma once

// FrameQueue: the bounded, lock-guarded hand-off between per-stream
// ingress stages and the inference worker pool. Multi-producer (one
// ingress thread per stream), multi-consumer (each worker collates from
// it). Two overflow policies:
//
//   kBlock      push() blocks until a slot frees — lossless backpressure
//               that throttles ingress to inference speed (the parity
//               configuration: every frame is served, serving output is
//               bitwise identical to per-stream serial execution).
//   kDropOldest push() displaces the oldest queued frame and returns it
//               so the producer can account the drop per stream — the
//               latency-bounded configuration (the freshest data wins,
//               mirroring DSFA's own inference-queue discard rule).
//
// close() wakes every blocked producer and consumer; consumers drain the
// remaining frames and then observe end-of-stream.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "sparse/sparse_frame.hpp"

namespace evedge::serve {

/// One merged frame ready for inference, with its provenance and the
/// timing/telemetry the collator and stats need.
struct ReadyFrame {
  int stream_id = -1;
  std::int64_t seq = -1;  ///< per-stream dispatch index (0, 1, ...)
  sparse::SparseFrame frame;
  /// DSFA's recent-density EMA at dispatch time (the drift signal).
  double ingress_density = 0.0;
  std::chrono::steady_clock::time_point enqueue_tp{};
};

enum class OverflowPolicy : std::uint8_t { kBlock, kDropOldest };

class FrameQueue {
 public:
  FrameQueue(std::size_t capacity, OverflowPolicy policy);

  /// Enqueues one frame (stamps enqueue_tp). Under kBlock, blocks while
  /// the queue is full (returns std::nullopt once pushed, or the frame
  /// itself if the queue closed while waiting — the caller owns frames
  /// the queue never accepted). Under kDropOldest, never blocks and
  /// returns the displaced oldest frame when the queue was full.
  [[nodiscard]] std::optional<ReadyFrame> push(ReadyFrame frame);

  /// Blocks until a frame is available or the queue is closed and
  /// drained (std::nullopt = end of stream).
  [[nodiscard]] std::optional<ReadyFrame> pop();

  /// Like pop(), but gives up at `deadline` (std::nullopt = no frame by
  /// then, or closed and drained). The collator's follow-up pops.
  [[nodiscard]] std::optional<ReadyFrame> pop_until(
      std::chrono::steady_clock::time_point deadline);

  /// Marks end of input: blocked producers return their frames, blocked
  /// consumers drain what is queued and then see end-of-stream.
  void close();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] OverflowPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] bool closed() const;

  /// Depth telemetry, sampled at every push: high-water mark and mean.
  [[nodiscard]] std::size_t peak_depth() const;
  [[nodiscard]] double mean_depth() const;
  /// Total frames displaced by kDropOldest.
  [[nodiscard]] std::size_t dropped() const;

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<ReadyFrame> queue_;
  bool closed_ = false;
  std::size_t peak_depth_ = 0;
  std::size_t depth_samples_ = 0;
  std::size_t depth_sum_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace evedge::serve
