// Figure 3 reproduction: average percentage of events in each event frame
// for the different networks on MVSEC-like sequences. Each network uses
// its own input representation (event bins per frame interval), so the
// same sensor stream yields different frame fill ratios per network —
// the paper reports a 0.15%-28.57% spread.

#include <cstdio>

#include "bench_common.hpp"
#include "events/stats.hpp"

namespace eb = evedge::bench;
namespace ee = evedge::events;
namespace en = evedge::nn;

namespace {

/// Event bins per frame interval per network: finer temporal resolution
/// (more bins) means sparser frames. Values follow each architecture's
/// published input representation.
struct NetRepresentation {
  en::NetworkId id;
  int n_bins;
  double frame_rate_hz;
};

}  // namespace

int main() {
  eb::print_header(
      "Figure 3: mean event-frame fill ratio per network (MVSEC-like)");

  const auto stream = eb::make_davis_stream(
      ee::DensityProfile::indoor_flying1(), 4'000'000);

  const NetRepresentation reps[] = {
      // Fine temporal discretization (many thin bins): very sparse.
      {en::NetworkId::kAdaptiveSpikeNet, 20, 45.0},
      {en::NetworkId::kSpikeFlowNet, 10, 45.0},
      {en::NetworkId::kFusionFlowNet, 5, 30.0},
      {en::NetworkId::kDotie, 3, 30.0},
      {en::NetworkId::kHalsie, 2, 20.0},
      // Coarse accumulation (full inter-frame windows at dt > 1): the
      // dense end of the paper's spread.
      {en::NetworkId::kHidalgoDepth, 1, 8.0},
      {en::NetworkId::kEvFlowNet, 1, 3.0},
  };

  std::printf("%-20s %-8s %-10s %-10s %s\n", "network", "bins",
              "frame-Hz", "fill-%", "");
  eb::print_rule();
  double min_fill = 1e9;
  double max_fill = 0.0;
  for (const auto& rep : reps) {
    const auto period =
        static_cast<ee::TimeUs>(1e6 / rep.frame_rate_hz);
    const auto clock = ee::FrameClock::uniform(
        0, period,
        1 + static_cast<std::size_t>(stream.duration() / period));
    const double fill =
        ee::mean_bin_fill_ratio(stream, clock, rep.n_bins) * 100.0;
    min_fill = std::min(min_fill, fill);
    max_fill = std::max(max_fill, fill);
    std::printf("%-20s %-8d %-10.1f %-10.3f %s\n",
                en::to_string(rep.id).c_str(), rep.n_bins,
                rep.frame_rate_hz, fill, eb::bar(fill, 30.0).c_str());
  }
  eb::print_rule();
  std::printf("spread: %.3f%% - %.3f%%  (paper: 0.15%% - 28.57%%)\n",
              min_fill, max_fill);
  return 0;
}
