#pragma once

// FaultJournal: crash-consistent, append-only on-disk record of every
// recovery action the serving runtime takes — (site, fault, action)
// per line — so a post-mortem can reconstruct what a crashed or killed
// server was doing without trusting in-memory state.
//
// Durability model: one line per incident, written with a single
// O_APPEND write(2) (atomic at this size on POSIX) and fsync'd before
// append() returns. A crash can therefore lose at most the incident
// being written, never corrupt earlier entries; a torn final line
// (power cut mid-write) is detected and skipped by the reader instead
// of poisoning the parse.
//
// Entry grammar (tab-separated, newline-terminated):
//
//   <t_ms>\t<kind>\t<detail>\n
//
// where t_ms is milliseconds since the process-wide trace epoch
// (obs::trace_epoch()) — the SAME zero point the tracer stamps events
// against, so journal entries overlay directly onto a trace timeline
// (evedge_trace export --journal) — kind is a short token (quarantine,
// degrade, inject, wire-reject, run), and detail is free-form key=value
// text.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"

namespace evedge::serve {

class FaultJournal {
 public:
  /// Opens (creating if needed) `path` for appending; throws
  /// std::runtime_error when the file cannot be opened.
  explicit FaultJournal(const std::string& path);
  ~FaultJournal();
  FaultJournal(const FaultJournal&) = delete;
  FaultJournal& operator=(const FaultJournal&) = delete;

  /// Appends one fsync'd entry. Thread-safe. Newlines and tabs inside
  /// `kind`/`detail` are replaced with spaces — one incident is always
  /// exactly one line.
  void append(const std::string& kind, const std::string& detail);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Entries appended through this handle.
  [[nodiscard]] std::size_t entries_written() const noexcept;

  struct Entry {
    double t_ms = 0.0;
    std::string kind;
    std::string detail;
  };

  /// Reads every complete entry of a journal file. Tolerates a torn
  /// final line (no trailing newline, or an unparsable tail) by
  /// skipping it; throws std::runtime_error only when the file cannot
  /// be opened.
  [[nodiscard]] static std::vector<Entry> read(const std::string& path);

 private:
  std::string path_;
  int fd_ = -1;
  std::mutex mutex_;
  std::size_t written_ = 0;
  std::chrono::steady_clock::time_point opened_;
};

/// Converts journal entries into instant events on the trace timeline —
/// the `evedge_trace export --journal` overlay. Re-basing is a unit
/// conversion only (ts_us = t_ms * 1e3): entries and trace events
/// already share the process-wide obs::trace_epoch() zero. Events come
/// back in journal order with cat "journal", the entry kind as the
/// name, and the detail text as an args object.
[[nodiscard]] std::vector<obs::ParsedEvent> journal_overlay(
    const std::vector<FaultJournal::Entry>& entries);

}  // namespace evedge::serve
