#pragma once

// Seed reference kernels, preserved verbatim from the original naive
// implementations. They are deliberately slow (checked at() per element,
// per-tap binary searches, std::set active-site union) and exist for two
// reasons only:
//  - the randomized parity suite pins the fast kernels in nn/kernels.cpp
//    and sparse/sparse_ops.cpp against them, and
//  - bench_kernels times old-vs-new on identical inputs so the perf
//    trajectory is tracked in BENCH_kernels.json from PR 1 onward.
// Do not optimize these.

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/sparse_ops.hpp"
#include "sparse/tensor.hpp"

namespace evedge::sparse::reference {

/// Direct dense convolution: the seed nn::conv2d 7-deep loop nest.
[[nodiscard]] DenseTensor conv2d(const DenseTensor& input,
                                 const DenseTensor& weights,
                                 std::span<const float> bias,
                                 const Conv2dSpec& spec);

/// The seed scatter sparse convolution (checked at() accumulation).
[[nodiscard]] DenseTensor sparse_conv2d(std::span<const CooChannel> input,
                                        const DenseTensor& weights,
                                        std::span<const float> bias,
                                        const Conv2dSpec& spec,
                                        ConvWork* work = nullptr);

/// The seed submanifold convolution (std::set active union, O(log n)
/// CooChannel::at per kernel tap per channel).
[[nodiscard]] std::vector<CooChannel> submanifold_conv2d(
    std::span<const CooChannel> input, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec,
    ConvWork* work = nullptr);

}  // namespace evedge::sparse::reference
