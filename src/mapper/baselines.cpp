#include "mapper/baselines.hpp"

#include <algorithm>
#include <stdexcept>

namespace evedge::mapper {

quant::Precision widest_precision(const hw::ProcessingElement& pe) {
  for (const quant::Precision p : quant::kAllPrecisions) {
    if (pe.supports(p)) return p;  // kAllPrecisions is widest-first
  }
  throw std::logic_error("PE supports no precision");
}

std::vector<int> capability_order(const hw::Platform& platform) {
  // Round-robin distributes over the accelerators; the host CPU is only
  // part of the cycle when it is the sole processing element.
  std::vector<int> order;
  for (const hw::ProcessingElement& pe : platform.pes) {
    if (pe.kind != hw::PeKind::kCpu) order.push_back(pe.id);
  }
  if (order.empty()) {
    for (const hw::ProcessingElement& pe : platform.pes) {
      order.push_back(pe.id);
    }
  }
  std::stable_sort(order.begin(), order.end(), [&platform](int a, int b) {
    const auto strength = [&platform](int id) {
      const hw::ProcessingElement& pe = platform.pe(id);
      double best = 0.0;
      for (const quant::Precision p : quant::kAllPrecisions) {
        best = std::max(best, pe.peak(p) * pe.dense_efficiency);
      }
      return best;
    };
    return strength(a) > strength(b);
  });
  return order;
}

MappingCandidate rr_network_candidate(
    const std::vector<nn::NetworkSpec>& specs,
    const std::vector<hw::TaskProfile>& profiles,
    const hw::Platform& platform) {
  if (specs.size() != profiles.size()) {
    throw std::invalid_argument("specs/profiles size mismatch");
  }
  const std::vector<int> order = capability_order(platform);
  // Literal cyclic assignment: network i takes the i-th accelerator in
  // capability order (network 0 gets the GPU, and so on).
  std::vector<int> task_pe(specs.size());
  for (std::size_t t = 0; t < specs.size(); ++t) {
    task_pe[t] = order[t % order.size()];
  }
  MappingCandidate candidate;
  candidate.tasks.resize(specs.size());
  for (std::size_t t = 0; t < specs.size(); ++t) {
    const int pe_id = task_pe[t];
    TaskMapping& mapping = candidate.tasks[t];
    mapping.nodes.resize(specs[t].graph.size());
    for (const nn::LayerNode& node : specs[t].graph.nodes()) {
      const hw::NodeProfile& np = profiles[t].node(node.id);
      if (!np.mappable) continue;
      // Layers the assigned PE cannot execute fall back to the GPU
      // (TensorRT's GPU-fallback behaviour for DLA-incompatible layers).
      int chosen = pe_id;
      if (!np.supported(pe_id, widest_precision(platform.pe(pe_id)))) {
        chosen = platform.first_pe(hw::PeKind::kGpu);
      }
      mapping.nodes[static_cast<std::size_t>(node.id)] =
          sched::NodeAssignment{chosen,
                                widest_precision(platform.pe(chosen))};
    }
  }
  return candidate;
}

MappingCandidate rr_layer_candidate(
    const std::vector<nn::NetworkSpec>& specs,
    const std::vector<hw::TaskProfile>& profiles,
    const hw::Platform& platform) {
  if (specs.size() != profiles.size()) {
    throw std::invalid_argument("specs/profiles size mismatch");
  }
  const std::vector<int> order = capability_order(platform);
  MappingCandidate candidate;
  candidate.tasks.resize(specs.size());
  std::size_t cursor = 0;
  for (std::size_t t = 0; t < specs.size(); ++t) {
    TaskMapping& mapping = candidate.tasks[t];
    mapping.nodes.resize(specs[t].graph.size());
    for (const nn::LayerNode& node : specs[t].graph.nodes()) {
      const hw::NodeProfile& np = profiles[t].node(node.id);
      if (!np.mappable) continue;
      int pe_id = order[cursor % order.size()];
      ++cursor;
      if (!np.supported(pe_id, widest_precision(platform.pe(pe_id)))) {
        pe_id = platform.first_pe(hw::PeKind::kGpu);  // GPU fallback
      }
      mapping.nodes[static_cast<std::size_t>(node.id)] =
          sched::NodeAssignment{pe_id,
                                widest_precision(platform.pe(pe_id))};
    }
  }
  return candidate;
}

RandomSearchResult random_search(const NetworkMapper& mapper, int population,
                                 int generations, std::uint64_t seed) {
  if (population < 1 || generations < 1) {
    throw std::invalid_argument("random search budget must be positive");
  }
  std::mt19937_64 rng(seed);
  RandomSearchResult result;
  double best = std::numeric_limits<double>::infinity();
  for (int gen = 0; gen < generations; ++gen) {
    for (int i = 0; i < population; ++i) {
      const MappingCandidate candidate = mapper.random_candidate(rng());
      const double f = mapper.fitness(candidate);
      ++result.fitness_evaluations;
      if (f < best) {
        best = f;
        result.best = candidate;
        result.best_fitness = f;
      }
    }
    GenerationRecord record;
    record.generation = gen;
    record.best_fitness = best;
    result.history.push_back(record);
  }
  return result;
}

}  // namespace evedge::mapper
