// Tests for the scheduler: mapping validation, Eq. 3 end-time semantics,
// queue exclusivity, communication-node insertion and energy coupling.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "hw/profiler.hpp"
#include "nn/zoo.hpp"
#include "sched/mapping.hpp"
#include "sched/scheduler.hpp"

namespace eh = evedge::hw;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace ss = evedge::sched;

namespace {

struct Fixture {
  eh::Platform platform = eh::xavier_agx();
  std::vector<en::NetworkSpec> specs;
  std::vector<eh::TaskProfile> profiles;

  explicit Fixture(std::vector<en::NetworkId> ids) {
    for (const auto id : ids) {
      specs.push_back(en::build_network(id, en::ZooConfig::test_scale()));
    }
    profiles = eh::profile_tasks(specs, platform);
  }
};

}  // namespace

TEST(Mapping, UniformCandidateValidates) {
  Fixture f({en::NetworkId::kEvFlowNet});
  const auto candidate = ss::uniform_candidate(
      f.specs, f.platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  EXPECT_NO_THROW(ss::validate_candidate(candidate, f.profiles, f.platform));
}

TEST(Mapping, RejectsUnsupportedPrecision) {
  Fixture f({en::NetworkId::kEvFlowNet});
  // All layers on DLA at FP32 — unsupported.
  const auto candidate = ss::uniform_candidate(
      f.specs, f.platform.first_pe(eh::PeKind::kDla), eq::Precision::kFp32);
  EXPECT_THROW(ss::validate_candidate(candidate, f.profiles, f.platform),
               std::invalid_argument);
}

TEST(Mapping, RejectsWrongShape) {
  Fixture f({en::NetworkId::kEvFlowNet});
  ss::MappingCandidate bad;  // empty
  EXPECT_THROW(ss::validate_candidate(bad, f.profiles, f.platform),
               std::invalid_argument);
}

TEST(Scheduler, SingleTaskAllGpuHasNoCommOps) {
  Fixture f({en::NetworkId::kSpikeFlowNet});
  const auto candidate = ss::uniform_candidate(
      f.specs, f.platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  const auto result =
      ss::schedule(f.specs, f.profiles, candidate, f.platform);
  for (const auto& op : result.ops) {
    EXPECT_FALSE(op.is_comm);
  }
  EXPECT_GT(result.makespan_us, 0.0);
  EXPECT_DOUBLE_EQ(result.max_task_latency_us, result.makespan_us);
}

TEST(Scheduler, CrossPeEdgesInsertCommOps) {
  Fixture f({en::NetworkId::kEvFlowNet});
  // Alternate mappable layers between CPU and GPU.
  auto candidate = ss::uniform_candidate(
      f.specs, f.platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  int flip = 0;
  for (auto& node : candidate.tasks[0].nodes) {
    if (node.pe >= 0 && (flip++ % 2 == 0)) {
      node.pe = f.platform.first_pe(eh::PeKind::kCpu);
    }
  }
  const auto result =
      ss::schedule(f.specs, f.profiles, candidate, f.platform);
  int comm = 0;
  for (const auto& op : result.ops) {
    if (op.is_comm) {
      ++comm;
      EXPECT_EQ(op.queue, f.platform.pe_count());  // memory queue
    }
  }
  EXPECT_GT(comm, 0);
}

TEST(Scheduler, EndTimesRespectDependenciesAndQueues) {
  Fixture f({en::NetworkId::kSpikeFlowNet, en::NetworkId::kDotie});
  auto candidate = ss::uniform_candidate(
      f.specs, f.platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  const auto result =
      ss::schedule(f.specs, f.profiles, candidate, f.platform);

  // Queue exclusivity: ops in the same queue never overlap.
  std::map<int, std::vector<std::pair<double, double>>> by_queue;
  for (const auto& op : result.ops) {
    by_queue[op.queue].push_back({op.start_us, op.end_us});
  }
  for (auto& [queue, spans] : by_queue) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-9)
          << "overlap in queue " << queue;
    }
  }
}

TEST(Scheduler, TwoTasksOnDistinctPesOverlap) {
  Fixture f({en::NetworkId::kDotie, en::NetworkId::kDotie});
  auto candidate = ss::uniform_candidate(
      f.specs, f.platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  // Serial: both tasks on the GPU.
  const auto serial =
      ss::schedule(f.specs, f.profiles, candidate, f.platform);
  // Parallel: task 1 moves to the CPU.
  for (auto& node : candidate.tasks[1].nodes) {
    if (node.pe >= 0) node.pe = f.platform.first_pe(eh::PeKind::kCpu);
  }
  const auto parallel =
      ss::schedule(f.specs, f.profiles, candidate, f.platform);
  // The makespan with parallel execution must beat fully serial GPU.
  EXPECT_LT(parallel.makespan_us, serial.makespan_us);
}

TEST(Scheduler, MakespanIsMaxOpEnd) {
  Fixture f({en::NetworkId::kHidalgoDepth});
  const auto candidate = ss::uniform_candidate(
      f.specs, f.profiles.size() == 1
                   ? f.platform.first_pe(eh::PeKind::kGpu)
                   : 0,
      eq::Precision::kFp32);
  const auto result =
      ss::schedule(f.specs, f.profiles, candidate, f.platform);
  double max_end = 0.0;
  for (const auto& op : result.ops) max_end = std::max(max_end, op.end_us);
  EXPECT_DOUBLE_EQ(result.makespan_us, max_end);
}

TEST(Scheduler, Int8FasterThanFp32OnGpu) {
  Fixture f({en::NetworkId::kEvFlowNet});
  const int gpu = f.platform.first_pe(eh::PeKind::kGpu);
  const auto fp32 =
      ss::uniform_candidate(f.specs, gpu, eq::Precision::kFp32);
  const auto int8 =
      ss::uniform_candidate(f.specs, gpu, eq::Precision::kInt8);
  const auto r32 = ss::schedule(f.specs, f.profiles, fp32, f.platform);
  const auto r8 = ss::schedule(f.specs, f.profiles, int8, f.platform);
  EXPECT_LT(r8.max_task_latency_us, r32.max_task_latency_us);
  EXPECT_LT(r8.energy_mj, r32.energy_mj);
}

TEST(Scheduler, EnergyPositiveAndIncludesIdle) {
  Fixture f({en::NetworkId::kDotie});
  const auto candidate = ss::uniform_candidate(
      f.specs, f.platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  const auto result =
      ss::schedule(f.specs, f.profiles, candidate, f.platform);
  EXPECT_GT(result.energy_mj, 0.0);
}

TEST(Scheduler, GanttOutputsRenderAllQueues) {
  Fixture f({en::NetworkId::kDotie});
  const auto candidate = ss::uniform_candidate(
      f.specs, f.platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  const auto result =
      ss::schedule(f.specs, f.profiles, candidate, f.platform);
  const auto gantt = ss::format_gantt(result, f.platform, 60);
  // One row per PE plus the memory queue.
  EXPECT_EQ(std::count(gantt.begin(), gantt.end(), '\n'),
            f.platform.pe_count() + 1);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  Fixture f({en::NetworkId::kFusionFlowNet, en::NetworkId::kDotie});
  const auto candidate = ss::uniform_candidate(
      f.specs, f.platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  const auto a = ss::schedule(f.specs, f.profiles, candidate, f.platform);
  const auto b = ss::schedule(f.specs, f.profiles, candidate, f.platform);
  EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
  EXPECT_DOUBLE_EQ(a.energy_mj, b.energy_mj);
  ASSERT_EQ(a.ops.size(), b.ops.size());
}
