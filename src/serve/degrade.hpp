#pragma once

// SLO enforcement and graceful degradation for the serving runtime.
//
// SloConfig carries the per-frame deadline (frames older than it when a
// worker picks them up are shed before inference — serving stale
// results wastes the inference budget twice) and the overload-response
// ladder. A monitor thread samples queue fill every eval_interval_ms
// and, with hysteresis (enter_intervals consecutive high samples to
// escalate, exit_intervals consecutive low samples to recover), walks
// the DegradationState one rung at a time:
//
//   level 0  normal       configured policy, configured batch size
//   level 1  drop-oldest  queue switches to kDropOldest (freshest wins)
//   level 2  wide-batch   collator batches widen by batch_widen_factor
//   level 3  int8         workers serve on the uniform int8 QuantPlan
//
// Every rung trades a little fidelity or fairness for throughput; each
// transition is recorded (time, levels, driving queue depth), and the
// time spent at each level is accounted, so a run's degradation history
// is fully reconstructable from the ServeReport. De-escalation restores
// the previous rung's behavior exactly — back at level 0 the queue runs
// its configured policy and outputs are again bitwise identical to the
// serial reference.

#include <array>
#include <atomic>
#include <functional>
#include <vector>

#include "serve/frame_queue.hpp"
#include "serve/serve_stats.hpp"

namespace evedge::serve {

/// Degradation-ladder rungs (DegradationState levels).
inline constexpr int kDegradeNormal = 0;
inline constexpr int kDegradeDropOldest = 1;
inline constexpr int kDegradeWideBatch = 2;
inline constexpr int kDegradeInt8 = 3;

struct SloConfig {
  /// Per-frame service deadline, measured from queue admission; frames
  /// older than this when collated are shed before inference. 0 = no
  /// deadline (nothing is ever shed).
  double deadline_ms = 0.0;
  /// Master switch for the degradation ladder (the monitor thread only
  /// runs when set).
  bool degrade = false;
  /// Queue-fill fractions driving the ladder: sustained fill >= high
  /// escalates, sustained fill <= low recovers.
  double high_watermark = 0.75;
  double low_watermark = 0.25;
  double eval_interval_ms = 2.0;  ///< monitor sampling period
  /// Hysteresis: consecutive high samples before escalating one rung,
  /// consecutive low samples before recovering one rung (recovery is
  /// deliberately slower — flapping costs more than staying degraded).
  int enter_intervals = 3;
  int exit_intervals = 8;
  /// Rung enables. A disabled rung still occupies its level (the ladder
  /// shape is fixed); it just has no effect when entered.
  bool allow_drop_oldest = true;
  int batch_widen_factor = 2;  ///< level-2 multiplier on max_batch
  bool allow_int8 = false;     ///< level 3 reachable at all
  /// Latency-driven trigger: when latency_high_ms > 0 AND a
  /// RollingLatency probe is attached, a sustained rolling completion
  /// p99 >= latency_high_ms escalates exactly like a sustained high
  /// queue watermark — so a worker stall that inflates tail latency
  /// WITHOUT queue growth (e.g. every stream paced well below
  /// capacity) still walks the ladder. Recovery then additionally
  /// requires p99 <= latency_low_ms: a drained queue with a still-hot
  /// tail stays degraded.
  double latency_high_ms = 0.0;  ///< 0 = latency trigger off
  double latency_low_ms = 0.0;   ///< recovery bound (0 = high/2)
  std::size_t latency_window = 128;  ///< rolling probe sample window
  /// SLO burn-rate accounting (active whenever deadline_ms > 0): every
  /// frame outcome is classified good (completed within the deadline)
  /// or bad (missed it, shed, or failed) into a per-stream rolling
  /// window, and the burn rate — bad fraction over the window divided
  /// by the error budget (1 - burn_good_target) — is exported as the
  /// `evedge_slo_burn_rate{stream=...}` gauge and surfaced in
  /// StreamServeStats. 1.0 means the stream consumes its error budget
  /// exactly; above it, the budget exhausts early.
  std::size_t burn_window = 256;   ///< rolling good/bad event window
  double burn_good_target = 0.99;  ///< SLO target in-deadline fraction

  /// Highest reachable ladder level under these knobs.
  [[nodiscard]] int max_level() const noexcept {
    return allow_int8 ? kDegradeInt8 : kDegradeWideBatch;
  }
};

/// The live ladder level, shared between the monitor thread (writer)
/// and the workers (readers). Relaxed atomics: the level is a hint that
/// may be observed a batch late, never a synchronization point.
class DegradationState {
 public:
  [[nodiscard]] int level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  void set_level(int level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }

 private:
  std::atomic<int> level_{kDegradeNormal};
};

/// Hysteresis ladder walker, driven by the runtime's monitor thread
/// (sample() and finish() are called from exactly one thread; the
/// accessors only after finish()). Owns the queue-policy side effect:
/// entering level >= 1 switches the queue to kDropOldest (when
/// allowed), returning to level 0 restores the configured policy.
class DegradationController {
 public:
  /// `queue` and `state` must outlive the controller; the queue's
  /// current policy is captured as the level-0 baseline.
  DegradationController(const SloConfig& slo, FrameQueue& queue,
                        DegradationState& state);

  /// Attaches the rolling completion-latency probe feeding the
  /// latency trigger (nullptr detaches; must outlive the controller).
  /// Without a probe the trigger is inert regardless of SloConfig.
  void set_latency_probe(const RollingLatency* probe) noexcept {
    latency_probe_ = probe;
  }

  /// Observer invoked (on the monitor thread) for every transition —
  /// the fault journal hooks in here.
  void set_transition_hook(
      std::function<void(const DegradationTransition&)> hook) {
    on_transition_ = std::move(hook);
  }

  /// One monitor tick at `t_ms` since run start: samples queue fill
  /// (and the latency probe when attached), updates the hysteresis
  /// counters, walks at most one rung.
  void sample(double t_ms);

  /// Closes the level-time accounting at end of run.
  void finish(double t_ms);

  [[nodiscard]] const std::vector<DegradationTransition>& transitions()
      const noexcept {
    return transitions_;
  }
  [[nodiscard]] const std::array<double, 4>& ms_at_level() const noexcept {
    return ms_at_level_;
  }
  [[nodiscard]] int max_level_reached() const noexcept {
    return max_level_reached_;
  }

 private:
  void move_to(double t_ms, int next, std::size_t depth, double p99_ms);

  SloConfig slo_;
  FrameQueue& queue_;
  DegradationState& state_;
  const RollingLatency* latency_probe_ = nullptr;
  std::function<void(const DegradationTransition&)> on_transition_;
  OverflowPolicy base_policy_;
  int above_ = 0;  ///< consecutive samples at/above the high watermark
  int below_ = 0;  ///< consecutive samples at/below the low watermark
  double last_t_ms_ = 0.0;
  int max_level_reached_ = kDegradeNormal;
  std::vector<DegradationTransition> transitions_;
  std::array<double, 4> ms_at_level_{};
};

}  // namespace evedge::serve
