// Unit and property tests for the sparse substrate: dense tensors, COO
// channels, sparse frames and the sparse convolution kernels (validated
// against the dense reference in evedge::nn via test_nn.cpp; here we pin
// the algebraic invariants).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "core/parallel.hpp"
#include "nn/kernels.hpp"
#include "sparse/coo.hpp"
#include "sparse/reference.hpp"
#include "sparse/sparse_frame.hpp"
#include "sparse/sparse_ops.hpp"
#include "sparse/tensor.hpp"

namespace es = evedge::sparse;

// ----------------------------------------------------------- DenseTensor

TEST(DenseTensor, ShapeAndIndexing) {
  es::DenseTensor t(es::TensorShape{2, 3, 4, 5}, 1.5f);
  EXPECT_EQ(t.size(), 120u);
  EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), 1.5f);
  t.at(1, 2, 3, 4) = -2.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), -2.0f);
  EXPECT_THROW((void)t.at(2, 0, 0, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 3, 0, 0), std::out_of_range);
}

TEST(DenseTensor, RejectsBadShape) {
  EXPECT_THROW(es::DenseTensor(es::TensorShape{0, 1, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(es::DenseTensor(es::TensorShape{1, -2, 1, 1}),
               std::invalid_argument);
}

TEST(DenseTensor, DensityCountsNonzeros) {
  es::DenseTensor t(es::TensorShape{1, 1, 2, 2});
  EXPECT_DOUBLE_EQ(t.density(), 0.0);
  t.at(0, 0, 0, 0) = 3.0f;
  t.at(0, 0, 1, 1) = -1.0f;
  EXPECT_DOUBLE_EQ(t.density(), 0.5);
}

TEST(DenseTensor, RandomFillDeterministic) {
  es::DenseTensor a(es::TensorShape{1, 2, 3, 3});
  es::DenseTensor b(es::TensorShape{1, 2, 3, 3});
  a.fill_random(99);
  b.fill_random(99);
  EXPECT_FLOAT_EQ(es::max_abs_diff(a, b), 0.0f);
  b.fill_random(100);
  EXPECT_GT(es::max_abs_diff(a, b), 0.0f);
}

TEST(DenseTensor, ErrorMetrics) {
  es::DenseTensor a(es::TensorShape{1, 1, 1, 4});
  es::DenseTensor b(es::TensorShape{1, 1, 1, 4});
  for (int i = 0; i < 4; ++i) {
    a.at(0, 0, 0, i) = static_cast<float>(i);
    b.at(0, 0, 0, i) = static_cast<float>(i) + 1.0f;
  }
  EXPECT_FLOAT_EQ(es::max_abs_diff(a, b), 1.0f);
  EXPECT_DOUBLE_EQ(es::mean_abs_diff(a, b), 1.0);
}

// ------------------------------------------------------------ CooChannel

TEST(CooChannel, FromEntriesSortsAndAccumulates) {
  auto ch = es::CooChannel::from_entries(
      4, 4,
      {{3, 3, 1.0f}, {0, 1, 2.0f}, {3, 3, 2.0f}, {1, 0, -1.0f}});
  EXPECT_EQ(ch.nnz(), 3u);
  EXPECT_FLOAT_EQ(ch.at(3, 3), 3.0f);
  EXPECT_FLOAT_EQ(ch.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(ch.at(1, 0), -1.0f);
  EXPECT_FLOAT_EQ(ch.at(2, 2), 0.0f);
  EXPECT_NO_THROW(ch.validate());
}

TEST(CooChannel, CancellingEntriesVanish) {
  auto ch = es::CooChannel::from_entries(2, 2,
                                         {{0, 0, 1.0f}, {0, 0, -1.0f}});
  EXPECT_EQ(ch.nnz(), 0u);
}

TEST(CooChannel, AccumulateInsertsAndErases) {
  es::CooChannel ch(4, 4);
  ch.accumulate(1, 1, 2.0f);
  ch.accumulate(1, 1, 3.0f);
  EXPECT_FLOAT_EQ(ch.at(1, 1), 5.0f);
  ch.accumulate(1, 1, -5.0f);
  EXPECT_EQ(ch.nnz(), 0u);
  EXPECT_THROW(ch.accumulate(4, 0, 1.0f), std::out_of_range);
}

TEST(CooChannel, AddIsUnionWithSum) {
  auto a = es::CooChannel::from_entries(3, 3, {{0, 0, 1.0f}, {1, 1, 2.0f}});
  auto b = es::CooChannel::from_entries(3, 3, {{1, 1, 3.0f}, {2, 2, 4.0f}});
  auto c = es::add(a, b);
  EXPECT_EQ(c.nnz(), 3u);
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 5.0f);
  EXPECT_FLOAT_EQ(c.at(2, 2), 4.0f);
  EXPECT_NO_THROW(c.validate());
}

TEST(CooChannel, AddValueSumIsLinear) {
  std::mt19937_64 rng(4);
  std::uniform_int_distribution<int> coord(0, 15);
  std::uniform_real_distribution<float> val(-2.0f, 2.0f);
  std::vector<es::CooEntry> ea, eb;
  for (int i = 0; i < 60; ++i) {
    ea.push_back({coord(rng), coord(rng), val(rng)});
    eb.push_back({coord(rng), coord(rng), val(rng)});
  }
  auto a = es::CooChannel::from_entries(16, 16, ea);
  auto b = es::CooChannel::from_entries(16, 16, eb);
  auto c = es::add(a, b, 2.0f);
  EXPECT_NEAR(c.value_sum(), a.value_sum() + 2.0 * b.value_sum(), 1e-4);
}

TEST(CooChannel, ScaleMultipliesValues) {
  auto a = es::CooChannel::from_entries(2, 2, {{0, 0, 2.0f}, {1, 1, -4.0f}});
  auto s = es::scale(a, 0.5f);
  EXPECT_FLOAT_EQ(s.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), -2.0f);
  auto z = es::scale(a, 0.0f);
  EXPECT_EQ(z.nnz(), 0u);
}

// ----------------------------------------------------------- SparseFrame

namespace {

es::SparseFrame make_frame(int h, int w, std::uint64_t seed, int nnz) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> row(0, h - 1);
  std::uniform_int_distribution<int> col(0, w - 1);
  es::SparseFrame f(h, w);
  for (int i = 0; i < nnz; ++i) {
    if (i % 2 == 0) {
      f.positive().accumulate(row(rng), col(rng), 1.0f);
    } else {
      f.negative().accumulate(row(rng), col(rng), 1.0f);
    }
  }
  f.t_start = 0;
  f.t_end = 1000;
  f.source_events = nnz;
  return f;
}

}  // namespace

TEST(SparseFrame, DenseRoundTrip) {
  const auto f = make_frame(12, 10, 3, 40);
  const auto dense = f.to_dense();
  const auto back = es::SparseFrame::from_dense(dense);
  EXPECT_EQ(back.nnz(), f.nnz());
  EXPECT_FLOAT_EQ(es::max_abs_diff(back.to_dense(), dense), 0.0f);
}

TEST(SparseFrame, MergeAddConservesEventMass) {
  const auto a = make_frame(8, 8, 1, 20);
  const auto b = make_frame(8, 8, 2, 30);
  const auto merged = es::merge_frames({a, b}, es::MergeMode::kAdd);
  EXPECT_NEAR(merged.event_mass(), a.event_mass() + b.event_mass(), 1e-5);
  EXPECT_EQ(merged.source_events, a.source_events + b.source_events);
}

TEST(SparseFrame, MergeAverageHalvesTwoEqualFrames) {
  const auto a = make_frame(8, 8, 5, 24);
  const auto merged = es::merge_frames({a, a}, es::MergeMode::kAverage);
  EXPECT_NEAR(merged.event_mass(), a.event_mass(), 1e-5);
  EXPECT_EQ(merged.nnz(), a.nnz());
}

TEST(SparseFrame, MergeSpansUnionOfTimeRanges) {
  auto a = make_frame(8, 8, 1, 10);
  a.t_start = 100;
  a.t_end = 200;
  auto b = make_frame(8, 8, 2, 10);
  b.t_start = 250;
  b.t_end = 300;
  const auto merged = es::merge_frames({a, b}, es::MergeMode::kAdd);
  EXPECT_EQ(merged.t_start, 100);
  EXPECT_EQ(merged.t_end, 300);
}

TEST(SparseFrame, MergeRejectsBatchModeAndEmpty) {
  EXPECT_THROW((void)es::merge_frames({}, es::MergeMode::kAdd),
               std::invalid_argument);
  const auto a = make_frame(4, 4, 1, 4);
  EXPECT_THROW((void)es::merge_frames({a}, es::MergeMode::kBatch),
               std::invalid_argument);
}

TEST(SparseFrame, BatchToDenseStacksFrames) {
  const auto a = make_frame(6, 6, 1, 12);
  const auto b = make_frame(6, 6, 2, 15);
  const auto batch = es::batch_to_dense({a, b});
  EXPECT_EQ(batch.shape().n, 2);
  EXPECT_EQ(batch.shape().c, 2);
  // slice 0 equals a, slice 1 equals b
  const auto da = a.to_dense();
  const auto db = b.to_dense();
  float diff = 0.0f;
  for (int c = 0; c < 2; ++c) {
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 6; ++x) {
        diff = std::max(diff,
                        std::abs(batch.at(0, c, y, x) - da.at(0, c, y, x)));
        diff = std::max(diff,
                        std::abs(batch.at(1, c, y, x) - db.at(0, c, y, x)));
      }
    }
  }
  EXPECT_FLOAT_EQ(diff, 0.0f);
}

TEST(SparseFrame, DensityChangeIsRelative) {
  const auto a = make_frame(10, 10, 1, 10);
  auto b = make_frame(10, 10, 2, 10);
  EXPECT_NEAR(es::density_change(a, a), 0.0, 1e-12);
  EXPECT_GE(es::density_change(b, a), 0.0);
}

// ------------------------------------------------------------ sparse ops

TEST(SparseOps, ConvOutExtent) {
  EXPECT_EQ(es::conv_out_extent(346, 3, 2, 1), 173);
  EXPECT_EQ(es::conv_out_extent(8, 3, 1, 1), 8);
  EXPECT_THROW((void)es::conv_out_extent(2, 5, 1, 0), std::invalid_argument);
}

TEST(SparseOps, SparseConvCostProportionalToNnz) {
  const es::Conv2dSpec spec{2, 8, 3, 1, 1};
  es::DenseTensor w(es::TensorShape{8, 2, 3, 3});
  w.fill_random(7);
  const auto sparse_in = make_frame(16, 16, 9, 8);
  const auto denser_in = make_frame(16, 16, 10, 64);

  es::ConvWork work_sparse, work_dense;
  std::vector<es::CooChannel> ch1{sparse_in.positive(), sparse_in.negative()};
  std::vector<es::CooChannel> ch2{denser_in.positive(),
                                  denser_in.negative()};
  (void)es::sparse_conv2d(ch1, w, {}, spec, &work_sparse);
  (void)es::sparse_conv2d(ch2, w, {}, spec, &work_dense);
  EXPECT_LT(work_sparse.sparse_macs, work_dense.sparse_macs);
  EXPECT_EQ(work_sparse.dense_macs, work_dense.dense_macs);
  // Sparse cost bounded by nnz * Cout * k * k.
  EXPECT_LE(work_sparse.sparse_macs, work_sparse.nnz_in * 8u * 9u);
}

TEST(SparseOps, EmptyInputGivesBiasOnlyOutput) {
  const es::Conv2dSpec spec{2, 4, 3, 1, 1};
  es::DenseTensor w(es::TensorShape{4, 2, 3, 3});
  w.fill_random(3);
  const std::vector<float> bias{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<es::CooChannel> empty{es::CooChannel(8, 8),
                                    es::CooChannel(8, 8)};
  const auto out = es::sparse_conv2d(empty, w, bias, spec);
  for (int c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(out.at(0, c, 4, 4), bias[static_cast<std::size_t>(c)]);
  }
}

TEST(SparseOps, SubmanifoldOutputConfinedToActiveSites) {
  const es::Conv2dSpec spec{2, 4, 3, 1, 1};
  es::DenseTensor w(es::TensorShape{4, 2, 3, 3});
  w.fill_random(11);
  const auto frame = make_frame(12, 12, 13, 10);
  std::vector<es::CooChannel> in{frame.positive(), frame.negative()};
  const auto out = es::submanifold_conv2d(in, w, {}, spec);
  ASSERT_EQ(out.size(), 4u);

  // Union of input active sites.
  std::set<std::pair<int, int>> active;
  for (const auto& ch : in) {
    for (const auto& e : ch.entries()) active.insert({e.row, e.col});
  }
  for (const auto& ch : out) {
    for (const auto& e : ch.entries()) {
      EXPECT_TRUE(active.contains({e.row, e.col}))
          << "output at inactive site (" << e.row << "," << e.col << ")";
    }
  }
}

TEST(SparseOps, SubmanifoldRejectsStride2) {
  const es::Conv2dSpec spec{2, 4, 3, 2, 1};
  es::DenseTensor w(es::TensorShape{4, 2, 3, 3});
  std::vector<es::CooChannel> in{es::CooChannel(8, 8), es::CooChannel(8, 8)};
  EXPECT_THROW((void)es::submanifold_conv2d(in, w, {}, spec),
               std::invalid_argument);
}

TEST(SparseOps, DenseChannelRoundTrip) {
  es::DenseTensor t(es::TensorShape{1, 3, 6, 5});
  t.fill_random(21);
  // Sparsify: zero out most entries.
  int k = 0;
  for (float& v : t.data()) {
    if (k++ % 4 != 0) v = 0.0f;
  }
  std::size_t scanned = 0;
  const auto channels = es::dense_to_channels(t, &scanned);
  EXPECT_EQ(scanned, t.size());
  const auto back = es::channels_to_dense(channels);
  EXPECT_FLOAT_EQ(es::max_abs_diff(back, t), 0.0f);
}

// Property sweep: sparse conv linearity in the input (conv(a+b) =
// conv(a) + conv(b) for bias-free convs) across kernel/stride configs.
class SparseConvProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SparseConvProperty, LinearInInput) {
  const auto [kernel, stride, padding] = GetParam();
  const es::Conv2dSpec spec{2, 3, kernel, stride, padding};
  es::DenseTensor w(es::TensorShape{3, 2, kernel, kernel});
  w.fill_random(31);
  const auto fa = make_frame(14, 14, 41, 12);
  const auto fb = make_frame(14, 14, 42, 18);
  std::vector<es::CooChannel> a{fa.positive(), fa.negative()};
  std::vector<es::CooChannel> b{fb.positive(), fb.negative()};
  std::vector<es::CooChannel> sum{es::add(fa.positive(), fb.positive()),
                                  es::add(fa.negative(), fb.negative())};
  const auto ya = es::sparse_conv2d(a, w, {}, spec);
  const auto yb = es::sparse_conv2d(b, w, {}, spec);
  const auto ysum = es::sparse_conv2d(sum, w, {}, spec);
  es::DenseTensor yab = ya;
  for (std::size_t i = 0; i < yab.size(); ++i) {
    yab.data()[i] += yb.data()[i];
  }
  EXPECT_LT(es::max_abs_diff(ysum, yab), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, SparseConvProperty,
    ::testing::Values(std::make_tuple(1, 1, 0), std::make_tuple(3, 1, 1),
                      std::make_tuple(3, 2, 1), std::make_tuple(5, 1, 2),
                      std::make_tuple(5, 2, 2), std::make_tuple(7, 4, 3)));

// ---------------------------------------------------- CSR row index

TEST(CooChannel, RowPtrDelimitsRows) {
  auto ch = es::CooChannel::from_entries(
      5, 6, {{0, 2, 1.0f}, {0, 4, 2.0f}, {2, 1, 3.0f}, {4, 5, 4.0f}});
  const auto& ptr = ch.row_ptr();
  ASSERT_EQ(ptr.size(), 6u);
  EXPECT_EQ(ptr[0], 0);
  EXPECT_EQ(ptr[1], 2);  // row 0 holds two entries
  EXPECT_EQ(ptr[2], 2);  // row 1 empty
  EXPECT_EQ(ptr[3], 3);  // row 2 holds one
  EXPECT_EQ(ptr[5], 4);  // total nnz
  const auto row0 = ch.row_span(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0].col, 2);
  EXPECT_EQ(row0[1].col, 4);
  EXPECT_TRUE(ch.row_span(1).empty());
  EXPECT_THROW((void)ch.row_span(5), std::out_of_range);
}

TEST(CooChannel, RowPtrInvalidatedByMutation) {
  auto ch = es::CooChannel::from_entries(4, 4, {{1, 1, 1.0f}});
  EXPECT_EQ(ch.row_span(2).size(), 0u);
  ch.accumulate(2, 3, 5.0f);
  const auto row2 = ch.row_span(2);
  ASSERT_EQ(row2.size(), 1u);
  EXPECT_FLOAT_EQ(row2[0].value, 5.0f);
}

TEST(CooChannel, FromSortedEntriesAdoptsVerbatim) {
  std::vector<es::CooEntry> entries{{0, 1, 1.0f}, {2, 0, -2.0f}};
  auto ch = es::CooChannel::from_sorted_entries(4, 4, entries);
  EXPECT_EQ(ch.nnz(), 2u);
  EXPECT_FLOAT_EQ(ch.at(2, 0), -2.0f);
  EXPECT_NO_THROW(ch.validate());
}

// ------------------------------------------- randomized parity suite

namespace {

// Random sparse channels at roughly `density` over an h x w extent.
std::vector<es::CooChannel> random_parity_channels(int channels, int h, int w,
                                                   double density,
                                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> val(-2.0f, 2.0f);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<es::CooChannel> out;
  for (int c = 0; c < channels; ++c) {
    std::vector<es::CooEntry> entries;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        if (coin(rng) < density) entries.push_back({y, x, val(rng)});
      }
    }
    out.push_back(es::CooChannel::from_entries(h, w, std::move(entries)));
  }
  return out;
}

}  // namespace

// (kernel, stride, padding, density-mille) sweeps pinning the fast
// kernels against the seed reference implementations.
class KernelParity
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(KernelParity, SparseConvMatchesReference) {
  const auto [kernel, stride, padding, dmille] = GetParam();
  const double density = dmille / 1000.0;
  const es::Conv2dSpec spec{3, 5, kernel, stride, padding};
  if (18 + 2 * padding < kernel) GTEST_SKIP();
  const auto input = random_parity_channels(3, 18, 22, density, 1234);
  es::DenseTensor w(es::TensorShape{5, 3, kernel, kernel});
  w.fill_random(7, 0.5f);
  const std::vector<float> bias{0.1f, -0.2f, 0.3f, -0.4f, 0.5f};

  es::ConvWork work_fast, work_ref;
  const auto fast = es::sparse_conv2d(input, w, bias, spec, &work_fast);
  const auto ref =
      es::reference::sparse_conv2d(input, w, bias, spec, &work_ref);
  EXPECT_LT(es::max_abs_diff(fast, ref), 1e-4f);
  EXPECT_EQ(work_fast.sparse_macs, work_ref.sparse_macs);
  EXPECT_EQ(work_fast.dense_macs, work_ref.dense_macs);
  EXPECT_EQ(work_fast.nnz_in, work_ref.nnz_in);
}

TEST_P(KernelParity, DenseConvBothPathsMatchReference) {
  const auto [kernel, stride, padding, dmille] = GetParam();
  const double density = dmille / 1000.0;
  const es::Conv2dSpec spec{3, 4, kernel, stride, padding};
  if (18 + 2 * padding < kernel) GTEST_SKIP();
  es::DenseTensor input(es::TensorShape{2, 3, 18, 22});
  input.fill_random(55);
  // Sparsify to the requested density so zero-skip paths are exercised.
  std::mt19937_64 rng(56);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (float& v : input.data()) {
    if (coin(rng) >= density) v = 0.0f;
  }
  es::DenseTensor w(es::TensorShape{4, 3, kernel, kernel});
  w.fill_random(57, 0.5f);
  const std::vector<float> bias{0.5f, -0.5f, 0.25f, -0.25f};

  const auto ref = es::reference::conv2d(input, w, bias, spec);
  EXPECT_LT(es::max_abs_diff(evedge::nn::conv2d_direct(input, w, bias, spec),
                             ref),
            1e-4f);
  EXPECT_LT(es::max_abs_diff(evedge::nn::conv2d_gemm(input, w, bias, spec),
                             ref),
            1e-4f);
  EXPECT_LT(es::max_abs_diff(evedge::nn::conv2d(input, w, bias, spec), ref),
            1e-4f);
}

TEST_P(KernelParity, SubmanifoldMatchesReference) {
  const auto [kernel, stride, padding, dmille] = GetParam();
  // Submanifold geometry: stride 1, same-extent output.
  if (stride != 1 || kernel != 2 * padding + 1) GTEST_SKIP();
  const double density = dmille / 1000.0;
  const es::Conv2dSpec spec{2, 6, kernel, 1, padding};
  const auto input = random_parity_channels(2, 20, 24, density, 777);
  es::DenseTensor w(es::TensorShape{6, 2, kernel, kernel});
  w.fill_random(17, 0.5f);
  const std::vector<float> bias{0.1f, 0.0f, -0.1f, 0.2f, 0.0f, -0.2f};

  es::ConvWork work_fast, work_ref;
  const auto fast = es::submanifold_conv2d(input, w, bias, spec, &work_fast);
  const auto ref =
      es::reference::submanifold_conv2d(input, w, bias, spec, &work_ref);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t c = 0; c < fast.size(); ++c) {
    EXPECT_NO_THROW(fast[c].validate());
  }
  EXPECT_LT(es::max_abs_diff(es::channels_to_dense(fast),
                             es::channels_to_dense(ref)),
            1e-4f);
  EXPECT_EQ(work_fast.sparse_macs, work_ref.sparse_macs);
  EXPECT_EQ(work_fast.dense_macs, work_ref.dense_macs);
  EXPECT_EQ(work_fast.nnz_in, work_ref.nnz_in);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelParity,
    ::testing::Values(std::make_tuple(1, 1, 0, 50),
                      std::make_tuple(3, 1, 1, 10),
                      std::make_tuple(3, 1, 1, 200),
                      std::make_tuple(3, 2, 1, 50),
                      std::make_tuple(5, 1, 2, 50),
                      std::make_tuple(5, 2, 2, 100),
                      std::make_tuple(7, 1, 3, 30),
                      std::make_tuple(7, 4, 3, 50)));

// ------------------------------------------ ConvWork MAC accounting

TEST(ConvWork, SubmanifoldMacInvariants) {
  const es::Conv2dSpec spec{2, 8, 3, 1, 1};
  const auto input = random_parity_channels(2, 16, 16, 0.1, 99);
  es::DenseTensor w(es::TensorShape{8, 2, 3, 3});
  w.fill_random(98, 0.5f);
  es::ConvWork work;
  (void)es::submanifold_conv2d(input, w, {}, spec, &work);
  std::size_t nnz = 0;
  for (const auto& ch : input) nnz += ch.nnz();
  EXPECT_EQ(work.nnz_in, nnz);
  // Every stored non-zero is visible through at most k*k active sites,
  // each MAC replicated across the 8 output channels.
  EXPECT_LE(work.sparse_macs, nnz * 9u * 8u);
  // dense_macs is the full H*W*Cout*Cin*k*k loop nest.
  EXPECT_EQ(work.dense_macs, 16u * 16u * 8u * 2u * 9u);
  EXPECT_LE(work.sparse_macs, work.dense_macs);
  // sparse_macs must count at least the self-tap of every non-zero.
  EXPECT_GE(work.sparse_macs, nnz * 8u);
}

TEST(ConvWork, SparseConvMacInvariants) {
  const es::Conv2dSpec spec{2, 4, 3, 2, 1};
  const auto input = random_parity_channels(2, 16, 16, 0.1, 101);
  es::DenseTensor w(es::TensorShape{4, 2, 3, 3});
  w.fill_random(102, 0.5f);
  es::ConvWork work;
  (void)es::sparse_conv2d(input, w, {}, spec, &work);
  std::size_t nnz = 0;
  for (const auto& ch : input) nnz += ch.nnz();
  EXPECT_EQ(work.nnz_in, nnz);
  EXPECT_LE(work.sparse_macs, nnz * 9u * 4u);
  EXPECT_GT(work.sparse_macs, 0u);
  // Accumulating across calls adds, never resets.
  es::ConvWork twice = work;
  (void)es::sparse_conv2d(input, w, {}, spec, &twice);
  EXPECT_EQ(twice.sparse_macs, 2 * work.sparse_macs);
  EXPECT_EQ(twice.dense_macs, 2 * work.dense_macs);
}

// ------------------------------------------------------- parallel_for

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    std::vector<int> hits(257, 0);
    evedge::core::parallel_for(
        0, 257, [&](int i) { ++hits[static_cast<std::size_t>(i)]; }, threads);
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, DeterministicAcrossThreadCounts) {
  // Kernels parallelize over disjoint output slices; emulate that shape
  // and require bitwise-identical results for any worker count.
  const int n = 1000;
  std::vector<double> serial(static_cast<std::size_t>(n));
  evedge::core::parallel_for(
      0, n,
      [&](int i) {
        serial[static_cast<std::size_t>(i)] = std::sqrt(i * 1.000001);
      },
      1);
  for (const int threads : {2, 5, 16}) {
    std::vector<double> parallel(static_cast<std::size_t>(n));
    evedge::core::parallel_for(
        0, n,
        [&](int i) {
          parallel[static_cast<std::size_t>(i)] = std::sqrt(i * 1.000001);
        },
        threads);
    EXPECT_EQ(parallel, serial);
  }
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int count = 0;
  evedge::core::parallel_for(3, 3, [&](int) { ++count; });
  EXPECT_EQ(count, 0);
  evedge::core::parallel_for(5, 6, [&](int i) { count += i; });
  EXPECT_EQ(count, 5);
}

// Threaded conv must equal single-threaded conv bit-for-bit.
// parallel_thread_count() re-reads EVEDGE_THREADS on every call, so the
// worker count genuinely varies between these runs.
TEST(ParallelFor, ConvResultsThreadCountInvariant) {
  const es::Conv2dSpec spec{3, 8, 3, 1, 1};
  es::DenseTensor input(es::TensorShape{1, 3, 32, 32});
  input.fill_random(5);
  es::DenseTensor w(es::TensorShape{8, 3, 3, 3});
  w.fill_random(6, 0.4f);
  const char* saved = std::getenv("EVEDGE_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";
  ASSERT_EQ(setenv("EVEDGE_THREADS", "1", 1), 0);
  const auto serial = evedge::nn::conv2d_gemm(input, w, {}, spec);
  for (const char* threads : {"2", "3", "7"}) {
    ASSERT_EQ(setenv("EVEDGE_THREADS", threads, 1), 0);
    EXPECT_EQ(evedge::core::parallel_thread_count(), std::atoi(threads));
    const auto parallel = evedge::nn::conv2d_gemm(input, w, {}, spec);
    EXPECT_FLOAT_EQ(es::max_abs_diff(parallel, serial), 0.0f)
        << "conv2d_gemm diverged at EVEDGE_THREADS=" << threads;
  }
  if (saved != nullptr) {
    setenv("EVEDGE_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("EVEDGE_THREADS");
  }
}

// A throw inside a parallel_for body must propagate to the caller (not
// std::terminate) and every thread must be joined first.
TEST(ParallelFor, PropagatesBodyExceptions) {
  EXPECT_THROW(
      evedge::core::parallel_for(
          0, 64,
          [](int i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

// ----------------------------- CSR-output and batched kernel parity

namespace {

// Channel-wise bitwise equality of two sparse samples.
void expect_samples_bitwise_equal(const es::SparseSample& a,
                                  const es::SparseSample& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].entries(), b[c].entries()) << "channel " << c;
  }
}

}  // namespace

// (kernel, stride, padding, density-mille) sweep: the CSR-output strided
// conv must match the seed reference scatter (<= 1e-4) and be bitwise
// identical to the fast dense scatter at every stored site.
class CsrParity
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(CsrParity, CsrMatchesReferenceAndScatter) {
  const auto [kernel, stride, padding, dmille] = GetParam();
  const double density = dmille / 1000.0;
  const es::Conv2dSpec spec{3, 5, kernel, stride, padding};
  if (18 + 2 * padding < kernel) GTEST_SKIP();
  const auto input = random_parity_channels(3, 18, 22, density, 4321);
  es::DenseTensor w(es::TensorShape{5, 3, kernel, kernel});
  w.fill_random(9, 0.5f);

  es::ConvWork work_csr, work_ref;
  const auto csr = es::sparse_conv2d_csr(input, w, {}, spec, &work_csr);
  for (const es::CooChannel& ch : csr) {
    EXPECT_NO_THROW(ch.validate());
  }
  const auto csr_dense = es::channels_to_dense(csr);
  EXPECT_LT(es::max_abs_diff(
                csr_dense, es::reference::sparse_conv2d(input, w, {}, spec,
                                                        &work_ref)),
            1e-4f);
  // Same tap visit order as the fast scatter: bitwise equal, not just
  // close.
  EXPECT_EQ(es::max_abs_diff(csr_dense,
                             es::sparse_conv2d(input, w, {}, spec)),
            0.0f);
  EXPECT_EQ(work_csr.dense_macs, work_ref.dense_macs);
  EXPECT_EQ(work_csr.nnz_in, work_ref.nnz_in);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CsrParity,
    ::testing::Values(std::make_tuple(1, 1, 0, 50),
                      std::make_tuple(3, 1, 1, 10),
                      std::make_tuple(3, 2, 1, 50),
                      std::make_tuple(3, 2, 0, 200),
                      std::make_tuple(3, 3, 1, 100),
                      std::make_tuple(5, 2, 2, 100),
                      std::make_tuple(7, 4, 3, 50)));

// Bias semantics: the CSR variant adds bias at active sites only, and
// matches the dense scatter exactly there; sites it leaves implicit hold
// exactly the bias value in the dense output.
TEST(SparseCsr, BiasAppliesAtActiveSitesOnly) {
  const es::Conv2dSpec spec{2, 3, 3, 2, 1};
  const auto input = random_parity_channels(2, 18, 22, 0.05, 99);
  es::DenseTensor w(es::TensorShape{3, 2, 3, 3});
  w.fill_random(11, 0.5f);
  const std::vector<float> bias{0.25f, -0.5f, 1.0f};

  const auto csr = es::sparse_conv2d_csr(input, w, bias, spec);
  const auto dense = es::sparse_conv2d(input, w, bias, spec);
  const auto no_bias = es::sparse_conv2d_csr(input, w, {}, spec);
  for (std::size_t c = 0; c < csr.size(); ++c) {
    for (const es::CooEntry& e : csr[c].entries()) {
      EXPECT_EQ(e.value, dense.at(0, static_cast<int>(c), e.row, e.col));
    }
    // Every reached site appears in the no-bias active set, so anything
    // absent from it must carry the pure bias value in the dense output.
    for (int y = 0; y < no_bias[c].height(); ++y) {
      for (int x = 0; x < no_bias[c].width(); ++x) {
        const bool reached =
            std::any_of(no_bias[c].entries().begin(),
                        no_bias[c].entries().end(),
                        [&](const es::CooEntry& e) {
                          return e.row == y && e.col == x;
                        });
        if (!reached && csr[c].at(y, x) == 0.0f) {
          EXPECT_EQ(dense.at(0, static_cast<int>(c), y, x), bias[c]);
        }
      }
    }
  }
}

// Batched kernels must be bitwise identical to per-sample batch-1 calls,
// across batch sizes and densities.
TEST(SparseBatched, GatherKernelsBitMatchPerSample) {
  const es::Conv2dSpec subm{2, 6, 3, 1, 1};
  const es::Conv2dSpec strided{2, 6, 3, 2, 1};
  es::DenseTensor w(es::TensorShape{6, 2, 3, 3});
  w.fill_random(21, 0.5f);
  const std::vector<float> bias{0.1f, 0.0f, -0.1f, 0.2f, 0.0f, -0.2f};

  for (const int batch : {1, 2, 5}) {
    std::vector<es::SparseSample> inputs;
    for (int n = 0; n < batch; ++n) {
      inputs.push_back(random_parity_channels(
          2, 20, 24, 0.01 + 0.03 * n, 500 + static_cast<std::uint64_t>(n)));
    }
    es::Workspace ws;
    es::ConvWork batch_work;
    const auto subm_batch = es::submanifold_conv2d_batch(
        inputs, w, bias, subm, &batch_work, &ws);
    const auto csr_batch =
        es::sparse_conv2d_csr_batch(inputs, w, bias, strided, nullptr, &ws);
    ASSERT_EQ(subm_batch.size(), inputs.size());
    ASSERT_EQ(csr_batch.size(), inputs.size());

    es::ConvWork single_work;
    for (int n = 0; n < batch; ++n) {
      const auto& sample = inputs[static_cast<std::size_t>(n)];
      expect_samples_bitwise_equal(
          subm_batch[static_cast<std::size_t>(n)],
          es::submanifold_conv2d(sample, w, bias, subm, &single_work));
      expect_samples_bitwise_equal(
          csr_batch[static_cast<std::size_t>(n)],
          es::sparse_conv2d_csr(sample, w, bias, strided));
    }
    // Work counters accumulate over the whole batch.
    EXPECT_EQ(batch_work.sparse_macs, single_work.sparse_macs);
    EXPECT_EQ(batch_work.nnz_in, single_work.nnz_in);
  }
  // Empty batches throw, consistently with sparse_conv2d_batch.
  EXPECT_THROW((void)es::submanifold_conv2d_batch({}, w, bias, subm),
               std::invalid_argument);
  EXPECT_THROW((void)es::sparse_conv2d_csr_batch({}, w, bias, strided),
               std::invalid_argument);
}

TEST(SparseBatched, DenseScatterBatchMatchesSlices) {
  const es::Conv2dSpec spec{3, 4, 3, 2, 1};
  es::DenseTensor w(es::TensorShape{4, 3, 3, 3});
  w.fill_random(31, 0.5f);
  const std::vector<float> bias{0.5f, -0.5f, 0.25f, -0.25f};
  std::vector<es::SparseSample> inputs;
  for (int n = 0; n < 3; ++n) {
    inputs.push_back(random_parity_channels(
        3, 18, 22, 0.02 * (n + 1), 900 + static_cast<std::uint64_t>(n)));
  }

  const auto batched = es::sparse_conv2d_batch(inputs, w, bias, spec);
  ASSERT_EQ(batched.shape().n, 3);
  for (int n = 0; n < 3; ++n) {
    const auto single =
        es::sparse_conv2d(inputs[static_cast<std::size_t>(n)], w, bias, spec);
    for (int c = 0; c < batched.shape().c; ++c) {
      for (int y = 0; y < batched.shape().h; ++y) {
        for (int x = 0; x < batched.shape().w; ++x) {
          EXPECT_EQ(batched.at(n, c, y, x), single.at(0, c, y, x));
        }
      }
    }
  }
  EXPECT_THROW((void)es::sparse_conv2d_batch({}, w, bias, spec),
               std::invalid_argument);
}

// Both threading axes of the gather reduction produce bitwise-identical
// channels (the per-(site, channel) accumulation order is the same).
TEST(SubmanifoldThreading, AxesAreBitwiseIdentical) {
  const es::Conv2dSpec spec{4, 12, 3, 1, 1};
  const auto input = random_parity_channels(4, 40, 44, 0.08, 2024);
  es::DenseTensor w(es::TensorShape{12, 4, 3, 3});
  w.fill_random(41, 0.5f);

  es::Workspace ws;
  const auto oc = es::submanifold_conv2d(
      input, w, {}, spec, nullptr, &ws,
      es::SubmanifoldThreading::kOutputChannels);
  const auto sites = es::submanifold_conv2d(
      input, w, {}, spec, nullptr, &ws,
      es::SubmanifoldThreading::kActiveSites);
  const auto autop = es::submanifold_conv2d(input, w, {}, spec, nullptr, &ws,
                                            es::SubmanifoldThreading::kAuto);
  expect_samples_bitwise_equal(oc, sites);
  expect_samples_bitwise_equal(oc, autop);

  const auto csr_oc = es::sparse_conv2d_csr(
      input, w, {}, es::Conv2dSpec{4, 12, 3, 2, 1}, nullptr, &ws,
      es::SubmanifoldThreading::kOutputChannels);
  const auto csr_sites = es::sparse_conv2d_csr(
      input, w, {}, es::Conv2dSpec{4, 12, 3, 2, 1}, nullptr, &ws,
      es::SubmanifoldThreading::kActiveSites);
  expect_samples_bitwise_equal(csr_oc, csr_sites);
}

// ----------------------------------------------------- Workspace arena

TEST(Workspace, ReuseIsStableAndStopsGrowing) {
  const es::Conv2dSpec spec{2, 8, 3, 1, 1};
  const auto input = random_parity_channels(2, 30, 34, 0.05, 777);
  es::DenseTensor w(es::TensorShape{8, 2, 3, 3});
  w.fill_random(51, 0.5f);

  es::Workspace ws;
  const auto first = es::submanifold_conv2d(input, w, {}, spec, nullptr, &ws);
  const std::size_t warm_bytes = ws.retained_bytes();
  EXPECT_GT(warm_bytes, 0u);
  for (int i = 0; i < 3; ++i) {
    const auto again =
        es::submanifold_conv2d(input, w, {}, spec, nullptr, &ws);
    expect_samples_bitwise_equal(first, again);
  }
  // Steady state: repeated identical calls allocate no new scratch.
  EXPECT_EQ(ws.retained_bytes(), warm_bytes);

  ws.clear();
  EXPECT_EQ(ws.retained_bytes(), 0u);
  const auto after_clear =
      es::submanifold_conv2d(input, w, {}, spec, nullptr, &ws);
  expect_samples_bitwise_equal(first, after_clear);
}

TEST(Workspace, SlotsAreIndependentAndStable) {
  es::Workspace ws;
  es::ConvScratch& a = ws.scratch(0);
  es::ConvScratch& b = ws.scratch(3);  // grows the pool past slot 3
  EXPECT_EQ(ws.slot_count(), 4u);
  a.sites.push_back(1);
  b.sites.push_back(2);
  EXPECT_NE(&ws.scratch(0), &ws.scratch(3));
  EXPECT_EQ(ws.scratch(0).sites.size(), 1u);
  EXPECT_EQ(ws.scratch(3).sites.size(), 1u);
  // References stay valid across further growth (deque-backed pool).
  ws.reserve_slots(16);
  EXPECT_EQ(a.sites[0], 1);
  EXPECT_EQ(b.sites[0], 2);
}
