#pragma once

// BatchExecutor: routes DSFA-dispatched merge batches through the REAL
// batched functional path (FunctionalNetwork::run_batched) instead of
// only the analytic cost model. The pipeline simulation stays the timing
// authority; attaching an executor (PipelineConfig::executor) makes every
// dispatched batch additionally execute on live kernels, so the fig8/fig9
// harnesses exercise the batched engine end to end and report measured
// wall time per batch alongside the modeled latency.
//
// Input adaptation: merged frames arrive at sensor geometry while the
// functional network usually runs at a reduced accuracy scale. Each
// frame's COO entries are integer-downsampled (coordinate division, value
// accumulation) and center-aligned to the network's event-input extent;
// the merged frame then fills every event bin slot of the input
// representation (bin-level reconstruction is e2e_accuracy's job — here
// the goal is driving the batched compute path with live merged data).

#include <cstdint>
#include <vector>

#include "core/dsfa.hpp"
#include "nn/engine.hpp"

namespace evedge::core {

/// Renders a DSFA merge batch into per-timestep network input tensors:
/// each frame becomes one batch lane, its COO entries integer-downsampled
/// and center-aligned to `event_shape` (the network's per-timestep event
/// input, n == 1), the merged frame filling every event-bin channel slot
/// and every timestep (identical event evidence per step — bin-level
/// reconstruction is e2e_accuracy's job). `steps` is resized to
/// `timesteps` tensors of [N, C, H, W] and reused across calls. Shared
/// between BatchExecutor and the serving runtime's workers so concurrent
/// serving consumes bitwise-identical inputs to the serial path.
void frames_to_event_steps(const std::vector<sparse::SparseFrame>& frames,
                           const sparse::TensorShape& event_shape,
                           int timesteps,
                           std::vector<sparse::DenseTensor>& steps);

/// Deterministic grayscale image for two-input networks (Fusion-FlowNet,
/// HALSIE): fixed-seed absolute-value noise at the image input's shape,
/// the same image BatchExecutor has always fed the fig8/fig9 harnesses.
/// Returns an empty tensor for single-input networks.
[[nodiscard]] sparse::DenseTensor make_reference_image(
    const nn::NetworkSpec& spec);

struct BatchExecutorStats {
  std::size_t batches = 0;
  std::size_t samples = 0;
  double wall_ms = 0.0;

  [[nodiscard]] double mean_batch() const noexcept {
    return batches > 0 ? static_cast<double>(samples) /
                             static_cast<double>(batches)
                       : 0.0;
  }
  [[nodiscard]] double mean_ms_per_batch() const noexcept {
    return batches > 0 ? wall_ms / static_cast<double>(batches) : 0.0;
  }
};

class BatchExecutor {
 public:
  /// The network must outlive the executor. Two-input networks get a
  /// fixed deterministic grayscale image (seeded like e2e_accuracy's).
  explicit BatchExecutor(nn::FunctionalNetwork& net);
  ~BatchExecutor();
  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Density-adaptive routing: the first dispatched batch doubles as the
  /// planner's warmup probe — its measured activation densities pick the
  /// per-layer dense/CSR routes (nn::ExecutionPlanner::calibrate) and
  /// the resulting plan, owned here, is installed on the network for
  /// every subsequent batch. Bitwise-neutral (see exec_plan.hpp); call
  /// before the first execute().
  void enable_execution_planner(const nn::PlannerOptions& options = {});
  /// The installed plan (nullptr before the first planned batch).
  [[nodiscard]] const nn::ExecutionPlan* execution_plan() const noexcept {
    return plan_ready_ ? &plan_ : nullptr;
  }

  /// Executes one dispatched batch (one sample per merged frame) through
  /// run_batched. Returns the [N, ...] output (valid until the next
  /// call).
  const sparse::DenseTensor& execute(
      const std::vector<sparse::SparseFrame>& frames);

  [[nodiscard]] const BatchExecutorStats& stats() const noexcept {
    return stats_;
  }

 private:
  nn::FunctionalNetwork& net_;
  sparse::TensorShape event_shape_;  ///< per-timestep event input (n = 1)
  bool needs_image_ = false;
  sparse::DenseTensor image_;
  sparse::DenseTensor last_output_;
  std::vector<sparse::DenseTensor> steps_;  ///< reused staging tensors
  BatchExecutorStats stats_;
  // Lazily calibrated execution plan (installed on net_ while alive).
  bool planner_enabled_ = false;
  bool plan_ready_ = false;
  nn::PlannerOptions planner_options_;
  nn::ExecutionPlan plan_;
};

}  // namespace evedge::core
