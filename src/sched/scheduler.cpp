#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace evedge::sched {

namespace {

/// Internal op node of the scheduling DAG.
struct Op {
  int task = -1;
  int node_id = -1;
  bool is_comm = false;
  int queue = -1;
  double duration_us = 0.0;
  double depth = 0.0;  ///< serialization key (data-dependency depth)
  Precision precision = Precision::kFp32;
  std::vector<int> preds;  ///< indices into the op array
  double transfer_bytes = 0.0;
};

}  // namespace

ScheduleResult schedule(const std::vector<nn::NetworkSpec>& specs,
                        const std::vector<hw::TaskProfile>& profiles,
                        const MappingCandidate& candidate,
                        const hw::Platform& platform) {
  if (specs.size() != profiles.size()) {
    throw std::invalid_argument("specs/profiles size mismatch");
  }
  validate_candidate(candidate, profiles, platform);
  const int memory_queue = platform.pe_count();

  // --- Build the op DAG: one compute op per mappable node, one comm op
  // per cross-PE producer->consumer edge.
  std::vector<Op> ops;
  // per task: node id -> index of its compute op (-1 if non-mappable).
  std::vector<std::vector<int>> node_op(specs.size());

  for (std::size_t t = 0; t < specs.size(); ++t) {
    const nn::NetworkGraph& graph = specs[t].graph;
    const hw::TaskProfile& profile = profiles[t];
    const TaskMapping& mapping = candidate.tasks[t];
    node_op[t].assign(graph.size(), -1);
    std::vector<double> node_depth(graph.size(), 0.0);

    for (const nn::LayerNode& node : graph.nodes()) {
      const auto nid = static_cast<std::size_t>(node.id);
      double depth = 0.0;
      for (int p : node.parents) {
        depth = std::max(depth,
                         node_depth[static_cast<std::size_t>(p)] + 1.0);
      }
      node_depth[nid] = depth;
      const hw::NodeProfile& np = profile.nodes[nid];
      if (!np.mappable) continue;

      const NodeAssignment& a = mapping.nodes[nid];
      Op op;
      op.task = static_cast<int>(t);
      op.node_id = node.id;
      op.queue = a.pe;
      op.duration_us = np.time(a.pe, a.precision);
      op.depth = depth;
      op.precision = a.precision;

      // Wire dependencies; insert comm ops where the producer lives on a
      // different PE (paper Fig. 7a's data-transfer nodes).
      for (int parent : node.parents) {
        const auto pid = static_cast<std::size_t>(parent);
        const int parent_op = node_op[t][pid];
        if (parent_op < 0) continue;  // parent is an input: data in DRAM
        const Op& producer = ops[static_cast<std::size_t>(parent_op)];
        if (producer.queue == a.pe) {
          op.preds.push_back(parent_op);
          continue;
        }
        Op comm;
        comm.task = static_cast<int>(t);
        comm.node_id = node.id;
        comm.is_comm = true;
        comm.queue = memory_queue;
        comm.transfer_bytes = hw::activation_bytes(
            profile.nodes[pid].output_elements, producer.precision);
        comm.duration_us = hw::transfer_time_us(
            platform, producer.queue, a.pe, comm.transfer_bytes);
        comm.depth = node_depth[pid] + 0.5;
        comm.precision = producer.precision;
        comm.preds.push_back(parent_op);
        ops.push_back(std::move(comm));
        op.preds.push_back(static_cast<int>(ops.size()) - 1);
      }
      ops.push_back(std::move(op));
      node_op[t][nid] = static_cast<int>(ops.size()) - 1;
    }
  }

  // --- Serialize within queues: stable order by (depth, task, node).
  // This realizes the paper's "serialize nodes within their respective
  // execution queues that are not already serialized by the data
  // dependencies" with a deterministic tie-break.
  std::vector<int> order(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&ops](int a, int b) {
    const Op& oa = ops[static_cast<std::size_t>(a)];
    const Op& ob = ops[static_cast<std::size_t>(b)];
    if (oa.depth != ob.depth) return oa.depth < ob.depth;
    if (oa.task != ob.task) return oa.task < ob.task;
    return oa.node_id < ob.node_id;
  });

  // --- Eq. 3 end-time computation in serialized order.
  std::vector<double> queue_time(
      static_cast<std::size_t>(platform.pe_count()) + 1, 0.0);
  std::vector<double> end_time(ops.size(), 0.0);
  hw::EnergyAccumulator energy(platform);

  ScheduleResult result;
  result.ops.reserve(ops.size());
  result.task_latency_us.assign(specs.size(), 0.0);

  for (const int oi : order) {
    const Op& op = ops[static_cast<std::size_t>(oi)];
    double ready = 0.0;
    for (int pred : op.preds) {
      ready = std::max(ready, end_time[static_cast<std::size_t>(pred)]);
    }
    const double start =
        std::max(ready, queue_time[static_cast<std::size_t>(op.queue)]);
    const double end = start + op.duration_us;
    end_time[static_cast<std::size_t>(oi)] = end;
    queue_time[static_cast<std::size_t>(op.queue)] = end;

    if (op.is_comm) {
      energy.add_transfer(op.transfer_bytes);
    } else {
      energy.add_busy(op.queue, op.precision, op.duration_us);
    }
    result.ops.push_back(ScheduledOp{op.task, op.node_id, op.is_comm,
                                     op.queue, start, end, op.precision});
    result.makespan_us = std::max(result.makespan_us, end);
    result.task_latency_us[static_cast<std::size_t>(op.task)] = std::max(
        result.task_latency_us[static_cast<std::size_t>(op.task)], end);
  }

  for (double latency : result.task_latency_us) {
    result.max_task_latency_us =
        std::max(result.max_task_latency_us, latency);
  }
  result.energy_mj = energy.total_mj(result.makespan_us);
  return result;
}

std::string format_gantt(const ScheduleResult& result,
                         const hw::Platform& platform, int columns) {
  if (columns < 20) columns = 20;
  const int rows = platform.pe_count() + 1;
  std::string out;
  const double scale =
      result.makespan_us > 0.0
          ? static_cast<double>(columns) / result.makespan_us
          : 0.0;
  for (int q = 0; q < rows; ++q) {
    std::string label =
        q < platform.pe_count() ? platform.pe(q).name : "unified-mem";
    label.resize(12, ' ');
    std::string row(static_cast<std::size_t>(columns), '.');
    for (const ScheduledOp& op : result.ops) {
      if (op.queue != q) continue;
      const int c0 = static_cast<int>(op.start_us * scale);
      const int c1 =
          std::max(c0 + 1, static_cast<int>(op.end_us * scale));
      const char mark =
          op.is_comm ? '~' : static_cast<char>('A' + (op.task % 26));
      for (int c = c0; c < c1 && c < columns; ++c) {
        row[static_cast<std::size_t>(c)] = mark;
      }
    }
    out += label + "|" + row + "|\n";
  }
  return out;
}

void write_gantt_csv(const ScheduleResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "task,node,is_comm,queue,start_us,end_us,precision\n";
  for (const ScheduledOp& op : result.ops) {
    out << op.task << ',' << op.node_id << ',' << (op.is_comm ? 1 : 0) << ','
        << op.queue << ',' << op.start_us << ',' << op.end_us << ','
        << quant::to_string(op.precision) << '\n';
  }
}

}  // namespace evedge::sched
