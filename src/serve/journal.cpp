#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "obs/trace.hpp"

namespace evedge::serve {

namespace {

void sanitize(std::string& s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
}

}  // namespace

FaultJournal::FaultJournal(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw std::runtime_error("FaultJournal: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  // Journal timestamps share the trace epoch, so journal t_ms and trace
  // ts line up on one timeline (evedge_trace export --journal overlays
  // journal entries onto the trace without any clock translation).
  opened_ = obs::trace_epoch();
}

FaultJournal::~FaultJournal() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t FaultJournal::entries_written() const noexcept {
  return written_;
}

void FaultJournal::append(const std::string& kind,
                          const std::string& detail) {
  std::string k = kind;
  std::string d = detail;
  sanitize(k);
  sanitize(d);
  const double t_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - opened_)
                          .count();
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "%.3f", t_ms);
  const std::string line = std::string(stamp) + "\t" + k + "\t" + d + "\n";

  const std::lock_guard<std::mutex> lock(mutex_);
  // One write(2) per entry: O_APPEND makes the offset update atomic, so
  // concurrent appends (or another process tailing the file) never see
  // interleaved halves of two entries.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // journal best-effort once open: do not kill serving
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd_);
  ++written_;
}

std::vector<FaultJournal::Entry> FaultJournal::read(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("FaultJournal::read: cannot open " + path);
  }
  std::vector<Entry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (in.eof()) {
      // getline hit EOF before a newline: the final line was torn by a
      // crash mid-append. Every complete entry ends in '\n'; skip it.
      break;
    }
    const std::size_t tab1 = line.find('\t');
    if (tab1 == std::string::npos) continue;  // torn / foreign line
    const std::size_t tab2 = line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) continue;
    Entry e;
    try {
      e.t_ms = std::stod(line.substr(0, tab1));
    } catch (...) {
      continue;
    }
    e.kind = line.substr(tab1 + 1, tab2 - tab1 - 1);
    e.detail = line.substr(tab2 + 1);
    entries.push_back(std::move(e));
  }
  return entries;
}

std::vector<obs::ParsedEvent> journal_overlay(
    const std::vector<FaultJournal::Entry>& entries) {
  std::vector<obs::ParsedEvent> events;
  events.reserve(entries.size());
  for (const FaultJournal::Entry& entry : entries) {
    obs::ParsedEvent e;
    e.ph = 'i';
    e.ts_us = entry.t_ms * 1e3;
    e.tid = 0;
    e.cat = "journal";
    e.name = entry.kind;
    e.args_json =
        "{\"detail\": \"" + obs::json_escape(entry.detail) + "\"}";
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace evedge::serve
