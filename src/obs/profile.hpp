#pragma once

// Per-layer execution profiles on top of the engine's ExecObserver hook:
// LayerProfiler accumulates wall time per (node, route) cell while a
// worker runs, optionally mirroring every node execution as a trace
// sub-span, and snapshots into NodeRouteProfile rows that travel in
// ServeReport. cross_check_profiles then lines the measured per-node
// times up against hw/profiler's analytic tables — the observed twin of
// the profiling pass the mapper search consumes (paper §4.3.2), and the
// first place a drifting latency model shows up.
//
// Threading: the profiler is installed on exactly one FunctionalNetwork
// and written by its run thread only (the engine calls on_node from the
// run thread); snapshot() is for after the run thread quiesced (worker
// joined), matching how ServeReport is assembled. Cells are plain
// integers — no atomics on the inference hot path.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/engine.hpp"

namespace evedge::hw {
struct Platform;
}  // namespace evedge::hw

namespace evedge::obs {

/// Accumulated wall time of one graph node on one execution route.
struct NodeRouteProfile {
  int node_id = -1;
  std::string name;
  nn::Route route = nn::Route::kDense;
  std::uint64_t runs = 0;      ///< node executions (per timestep; the
                               ///< tile fragments of a tiled chain count
                               ///< as ONE execution, with their wall
                               ///< time summed)
  std::uint64_t total_ns = 0;  ///< summed wall time
  std::uint64_t max_ns = 0;    ///< worst single execution

  [[nodiscard]] double mean_us() const noexcept {
    return runs == 0 ? 0.0
                     : static_cast<double>(total_ns) / 1e3 /
                           static_cast<double>(runs);
  }
};

/// ExecObserver that builds per-layer profiles (and, when asked, per-node
/// trace sub-spans named after the layer). Node names go through
/// obs::intern_name at construction, so span names satisfy the tracer's
/// immortal-string contract even after the profiler (and the worker
/// owning it) is destroyed — collected traces are exported at end of
/// run, which outlives the worker pool.
class LayerProfiler final : public nn::ExecObserver {
 public:
  /// `emit_spans`: also emit a "node"-category trace span per execution
  /// (timestep and route as args) — the per-node lane under the worker's
  /// inference spans. Tiled chain members emit one span per tile
  /// fragment, with the tile index as the second span arg instead of the
  /// route, so traces show the cache-blocked interleaving.
  explicit LayerProfiler(const nn::NetworkSpec& spec,
                         bool emit_spans = false);

  void on_node(int node_id, nn::Route route, int timestep,
               std::uint64_t t0_ns, std::uint64_t t1_ns, int tile,
               int tile_count) noexcept override;

  /// Rows for every (node, route) cell that ran at least once, node-id
  /// major. Call after the run thread quiesced.
  [[nodiscard]] std::vector<NodeRouteProfile> snapshot() const;

  /// Total node executions observed (all cells).
  [[nodiscard]] std::uint64_t observed() const noexcept;

  void reset() noexcept;

 private:
  struct Cell {
    std::uint64_t runs = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  static constexpr int kRoutes = 3;  // kDense, kSubmanifold, kCsr

  bool emit_spans_;
  std::vector<const char*> names_;  // interned: process-lifetime storage
  std::vector<Cell> cells_;         // [node][route]
};

/// One row of the measured-vs-analytic comparison: the profiler's mean
/// per-inference wall time on a node next to the latency model's
/// prediction for the same node on `pe` at FP32.
struct ProfileCrossCheckRow {
  int node_id = -1;
  std::string name;
  bool mappable = true;
  double measured_us = 0.0;  ///< total measured / inferences
  double analytic_us = 0.0;  ///< hw profile_task time (pe, FP32)
  double ratio = 0.0;        ///< measured / analytic (0 if no analytic)
};

struct ProfileCrossCheckReport {
  std::string network;
  std::string pe_name;
  std::uint64_t inferences = 0;
  std::vector<ProfileCrossCheckRow> rows;

  /// Fixed-width table for logs / the evedge_trace CLI.
  [[nodiscard]] std::string text() const;
};

/// Folds `measured` rows (routes summed per node) over `inferences`
/// inferences and compares each node against hw::profile_task's analytic
/// table on the platform's first GPU PE at FP32 — the same convention
/// the mapper's profiling pass records. Nodes without measurements get
/// measured_us = 0; nodes the hw model marks unmappable keep their
/// measured time with analytic_us = 0.
[[nodiscard]] ProfileCrossCheckReport cross_check_profiles(
    const nn::NetworkSpec& spec, std::span<const NodeRouteProfile> measured,
    const hw::Platform& platform, std::uint64_t inferences);

}  // namespace evedge::obs
