#include "nn/lif.hpp"

#include <stdexcept>
#include <utility>

namespace evedge::nn {

void validate_lif(const LifParams& params) {
  if (params.leak <= 0.0f || params.leak > 1.0f) {
    throw std::invalid_argument("LIF leak must be in (0, 1]");
  }
  if (params.v_threshold <= 0.0f) {
    throw std::invalid_argument("LIF threshold must be > 0");
  }
}

LifState::LifState(TensorShape shape, LifParams params,
                   std::vector<float> channel_leak,
                   std::vector<float> channel_threshold)
    : shape_(shape),
      params_(params),
      channel_leak_(std::move(channel_leak)),
      channel_threshold_(std::move(channel_threshold)),
      membrane_(shape) {
  validate_lif(params_);
  sparse::validate_shape(shape_);
  if (!channel_leak_.empty() &&
      static_cast<int>(channel_leak_.size()) != shape_.c) {
    throw std::invalid_argument("per-channel leak size mismatch");
  }
  if (!channel_threshold_.empty() &&
      static_cast<int>(channel_threshold_.size()) != shape_.c) {
    throw std::invalid_argument("per-channel threshold size mismatch");
  }
  for (float l : channel_leak_) {
    if (l <= 0.0f || l > 1.0f) {
      throw std::invalid_argument("per-channel leak out of (0, 1]");
    }
  }
  for (float v : channel_threshold_) {
    if (v <= 0.0f) {
      throw std::invalid_argument("per-channel threshold must be > 0");
    }
  }
}

DenseTensor LifState::step(const DenseTensor& current) {
  if (!(current.shape() == shape_)) {
    throw std::invalid_argument("LIF step: input shape mismatch");
  }
  DenseTensor spikes(shape_);
  const auto plane = static_cast<std::size_t>(shape_.h) *
                     static_cast<std::size_t>(shape_.w);
  for (int n = 0; n < shape_.n; ++n) {
    for (int c = 0; c < shape_.c; ++c) {
      const float leak = channel_leak_.empty()
                             ? params_.leak
                             : channel_leak_[static_cast<std::size_t>(c)];
      const float vth =
          channel_threshold_.empty()
              ? params_.v_threshold
              : channel_threshold_[static_cast<std::size_t>(c)];
      const std::size_t base =
          (static_cast<std::size_t>(n) * static_cast<std::size_t>(shape_.c) +
           static_cast<std::size_t>(c)) *
          plane;
      for (std::size_t i = 0; i < plane; ++i) {
        float u = membrane_.data()[base + i] * leak +
                  current.data()[base + i];
        if (u >= vth) {
          spikes.data()[base + i] = 1.0f;
          u = params_.soft_reset ? u - vth : 0.0f;
          ++spikes_;
        }
        membrane_.data()[base + i] = u;
      }
    }
  }
  ++steps_;
  return spikes;
}

void LifState::step_sparse(const DenseTensor& current, SpikeCoo& spikes_out) {
  if (!(current.shape() == shape_)) {
    throw std::invalid_argument("LIF step: input shape mismatch");
  }
  spikes_out.clear();
  begin_step();
  step_rows(current, 0, 0, shape_.h, spikes_out);
  end_step();
}

void LifState::begin_step() {
  // reset() reuses the buffer; contents are don't-care — every element
  // is committed by exactly one owned band before the end_step() swap.
  membrane_next_.reset(shape_);
}

void LifState::step_rows(const DenseTensor& current, int win_row0,
                         int own_row0, int own_row1, SpikeCoo& spikes_out) {
  const TensorShape& cs = current.shape();
  if (cs.n != shape_.n || cs.c != shape_.c || cs.w != shape_.w ||
      win_row0 < 0 || win_row0 + cs.h > shape_.h) {
    throw std::invalid_argument("LIF step_rows: window outside the plane");
  }
  if (own_row0 < win_row0 || own_row1 > win_row0 + cs.h) {
    throw std::invalid_argument("LIF step_rows: owned rows outside window");
  }
  const auto w = static_cast<std::size_t>(shape_.w);
  const auto plane = static_cast<std::size_t>(shape_.h) * w;
  const auto win_plane = static_cast<std::size_t>(cs.h) * w;
  if (spikes_out.size() < static_cast<std::size_t>(shape_.n)) {
    spikes_out.resize(static_cast<std::size_t>(shape_.n));
  }
  for (int n = 0; n < shape_.n; ++n) {
    auto& per_channel = spikes_out[static_cast<std::size_t>(n)];
    if (per_channel.size() < static_cast<std::size_t>(shape_.c)) {
      per_channel.resize(static_cast<std::size_t>(shape_.c));
    }
    for (int c = 0; c < shape_.c; ++c) {
      const float leak = channel_leak_.empty()
                             ? params_.leak
                             : channel_leak_[static_cast<std::size_t>(c)];
      const float vth =
          channel_threshold_.empty()
              ? params_.v_threshold
              : channel_threshold_[static_cast<std::size_t>(c)];
      const std::size_t base_full =
          (static_cast<std::size_t>(n) * static_cast<std::size_t>(shape_.c) +
           static_cast<std::size_t>(c)) *
          plane;
      const std::size_t base_win =
          (static_cast<std::size_t>(n) * static_cast<std::size_t>(shape_.c) +
           static_cast<std::size_t>(c)) *
          win_plane;
      auto& out_entries = per_channel[static_cast<std::size_t>(c)];
      for (int r = 0; r < cs.h; ++r) {
        const int gr = win_row0 + r;
        const bool owned = gr >= own_row0 && gr < own_row1;
        const float* cur_row =
            current.raw() + base_win + static_cast<std::size_t>(r) * w;
        const float* u_prev =
            membrane_.raw() + base_full + static_cast<std::size_t>(gr) * w;
        float* u_next =
            membrane_next_.raw() + base_full + static_cast<std::size_t>(gr) * w;
        for (int x = 0; x < shape_.w; ++x) {
          float u = u_prev[static_cast<std::size_t>(x)] * leak +
                    cur_row[static_cast<std::size_t>(x)];
          const bool spike = u >= vth;
          if (spike) {
            out_entries.push_back(sparse::CooEntry{gr, x, 1.0f});
            u = params_.soft_reset ? u - vth : 0.0f;
          }
          if (owned) {
            u_next[static_cast<std::size_t>(x)] = u;
            if (spike) ++spikes_;
          }
        }
      }
    }
  }
}

void LifState::end_step() {
  std::swap(membrane_, membrane_next_);
  ++steps_;
}

void LifState::reset() noexcept {
  for (float& v : membrane_.data()) v = 0.0f;
  steps_ = 0;
  spikes_ = 0;
}

double LifState::mean_firing_rate() const noexcept {
  const double sites = static_cast<double>(shape_.element_count()) *
                       static_cast<double>(steps_);
  return sites > 0.0 ? static_cast<double>(spikes_) / sites : 0.0;
}

}  // namespace evedge::nn
