// End-to-end planner benchmark: FunctionalNetwork::run() all-dense vs
// with a density-adaptive ExecutionPlan (calibrated per input density) on
// the spiking zoo networks at DAVIS346 scale (260x346 rounded to the
// 256x352 zoo geometry, base 16 channels to keep the single-core CI run
// bounded). The networks run at lif_threshold_scale = 2, which puts the
// random-weight zoo into the 0.5-5% spiking-activation band the paper
// reports for trained event networks (the regime the sparse routes
// target; the default random-weight stand-ins fire at 7-40%). The
// planner routes the sparse-input/spiking layers through the CSR gather
// kernels and chains consecutive sparse layers in COO form; the dense
// decoders stay dense, so the end-to-end speedup is the Amdahl-limited,
// honest number.
//
// The calibrated plan includes the cache-model TilePlan (streaming tile
// dataflow over the sparse chains), so speedup_planner is the shipped
// default. A forced-tile-rows sweep additionally reports the best
// measured tile geometry next to the model's pick (tile_rows vs
// best_tile_rows) — the standing check that the capacity model stays
// honest on this machine.
//
// Doubles as a parity smoke test: every configuration (planner-routed,
// every sweep geometry) must be bitwise identical to dense output
// (max_abs_diff == 0) — the bench exits non-zero otherwise. Results go
// to BENCH_sparse_engine.json and are gated in CI by
// scripts/check_bench_regression.py.
//
// Usage: bench_sparse_engine [--json] [output.json]
//   --json   write the JSON document to stdout too (the human table
//            moves to stderr, matching bench_serve)

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "nn/engine.hpp"
#include "nn/exec_plan.hpp"
#include "nn/zoo.hpp"
#include "quant/accuracy.hpp"
#include "sparse/tensor.hpp"

namespace en = evedge::nn;
namespace es = evedge::sparse;
namespace eq = evedge::quant;
using evedge::bench::time_best_ms;

namespace {

std::FILE* g_table = stdout;

struct Result {
  std::string network;
  double density = 0.0;
  double dense_ms = 0.0;
  double planner_ms = 0.0;
  int sparse_routed = 0;         ///< sparse-routed nodes in the plan
  double max_abs_diff = 0.0;     ///< planner vs dense (must be 0)
  double sparse_mac_fraction = 0.0;  ///< dense MACs replaced / total
  double firing_rate = 0.0;      ///< mean spiking rate over the run
  int tile_rows = 0;             ///< cache-model exit rows (0 = untiled)
  int best_tile_rows = 0;        ///< best measured sweep geometry
  double best_tiled_ms = 0.0;    ///< planner time at best_tile_rows

  [[nodiscard]] double speedup_planner() const {
    return planner_ms > 0.0 ? dense_ms / planner_ms : 0.0;
  }
  [[nodiscard]] double speedup_tiled_best() const {
    return best_tiled_ms > 0.0 ? dense_ms / best_tiled_ms : 0.0;
  }
};

/// Exit tile_rows of the plan's largest tiling chain (0 when no chain
/// actually tiles) — the headline geometry of the model's pick.
[[nodiscard]] int headline_tile_rows(const en::TilePlan& tiles) {
  int rows = 0;
  std::size_t best_len = 0;
  for (const en::TileChain& chain : tiles.chains) {
    if (chain.tiles > 1 && chain.nodes.size() >= best_len) {
      best_len = chain.nodes.size();
      rows = chain.tile_rows;
    }
  }
  return rows;
}

/// Geometry signature for sweep dedup (clamped forced rows can collide).
[[nodiscard]] std::vector<std::pair<int, int>> tile_signature(
    const en::TilePlan& tiles) {
  std::vector<std::pair<int, int>> sig;
  for (const en::TileChain& chain : tiles.chains) {
    sig.emplace_back(chain.tile_rows, chain.tiles);
  }
  return sig;
}

void write_json_to(std::FILE* f, const std::vector<Result>& results) {
  std::fprintf(f,
               "{\n  \"threads\": %d,\n  \"scale\": "
               "\"256x352 base16 (DAVIS346 zoo geometry), "
               "lif_threshold_scale=2\",\n"
               "  \"results\": [\n",
               evedge::core::parallel_thread_count());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"network\": \"%s\", \"density\": %.4f, \"dense_ms\": %.4f, "
        "\"planner_ms\": %.4f, \"speedup_planner\": %.2f, "
        "\"sparse_routed\": %d, \"sparse_mac_fraction\": %.3f, "
        "\"firing_rate\": %.4f, \"tile_rows\": %d, \"best_tile_rows\": %d, "
        "\"speedup_tiled_best\": %.2f, \"max_abs_diff\": %.3g}%s\n",
        r.network.c_str(), r.density, r.dense_ms, r.planner_ms,
        r.speedup_planner(), r.sparse_routed, r.sparse_mac_fraction,
        r.firing_rate, r.tile_rows, r.best_tile_rows, r.speedup_tiled_best(),
        r.max_abs_diff, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

[[nodiscard]] bool write_json(const std::vector<Result>& results,
                              const std::string& path, bool echo_stdout) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  write_json_to(f, results);
  std::fclose(f);
  std::fprintf(g_table, "\nwrote %s\n", path.c_str());
  if (echo_stdout) write_json_to(stdout, results);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sparse_engine.json";
  bool json_stdout = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json_stdout = true;
    } else {
      out_path = argv[i];
    }
  }
  if (json_stdout) g_table = stderr;
  // DAVIS346-scale zoo geometry at half base width (the full-scale
  // base-32 dense runs take minutes per network on one core), with the
  // spiking thresholds scaled into the paper's 0.5-5% activation band.
  const en::ZooConfig scale{256, 352, 16, 5, 2.0f};
  const en::NetworkId nets[] = {en::NetworkId::kDotie,
                                en::NetworkId::kAdaptiveSpikeNet,
                                en::NetworkId::kSpikeFlowNet,
                                en::NetworkId::kFusionFlowNet};
  const double densities[] = {0.01, 0.03};
  constexpr int kReps = 3;
  constexpr int kSweepReps = 2;
  // Forced exit-row geometries for the tile sweep; 0 = tiling disabled
  // (the pre-tiling execution). Values above a chain's exit extent clamp
  // and dedup away.
  const int sweep_rows[] = {0, 8, 16, 32, 64};

  std::fprintf(g_table, "sparse engine planner benchmark (threads=%d)\n",
               evedge::core::parallel_thread_count());
  std::fprintf(g_table,
               "%-18s %8s %10s %11s %9s %7s %9s %6s %6s %7s %12s\n",
               "network", "density", "dense_ms", "planner_ms", "speedup",
               "routed", "mac_frac", "tile", "best", "best_x",
               "max_abs_diff");

  std::vector<Result> results;
  bool parity_ok = true;
  for (const auto id : nets) {
    const auto spec = en::build_network(id, scale);
    en::FunctionalNetwork net(spec, 7);
    for (const double density : densities) {
      const auto samples = eq::make_validation_set(spec, 1, 42, density);
      const auto& steps = samples[0].event_steps;
      const es::DenseTensor* image =
          samples[0].image.has_value() ? &samples[0].image.value() : nullptr;

      Result r;
      r.network = spec.name;
      r.density = density;

      net.set_execution_plan(nullptr);
      const auto dense_out = net.run(steps, image);
      r.dense_ms = time_best_ms([&] { (void)net.run(steps, image); }, kReps);

      const auto plan = en::ExecutionPlanner::calibrate(net, steps, image);
      r.sparse_routed = plan.sparse_node_count();
      r.tile_rows = headline_tile_rows(plan.tiles);
      net.set_execution_plan(&plan);
      const auto routed_out = net.run(steps, image);
      r.max_abs_diff = es::max_abs_diff(routed_out, dense_out);
      const en::ExecStats& stats = net.last_exec_stats();
      const std::size_t total_macs =
          spec.graph.total_macs() * static_cast<std::size_t>(spec.timesteps);
      r.sparse_mac_fraction =
          total_macs > 0 ? static_cast<double>(stats.dense_macs_avoided) /
                               static_cast<double>(total_macs)
                         : 0.0;
      r.planner_ms = time_best_ms([&] { (void)net.run(steps, image); }, kReps);
      r.firing_rate = net.network_firing_rate();

      // Tile sweep: same routes, forced tile geometries. Every point
      // must stay bitwise dense-identical — that is the tiling contract,
      // and the sweep doubles as its stress test at DAVIS scale.
      std::set<std::vector<std::pair<int, int>>> seen;
      seen.insert(tile_signature(plan.tiles));
      r.best_tile_rows = r.tile_rows;
      r.best_tiled_ms = r.planner_ms;
      for (const int rows : sweep_rows) {
        en::ExecutionPlan sweep_plan = plan;
        en::TileOptions topt;
        if (rows == 0) {
          topt.enable = false;
        } else {
          topt.forced_tile_rows = rows;
        }
        sweep_plan.tiles = en::build_tile_plan(spec, sweep_plan, topt);
        if (!seen.insert(tile_signature(sweep_plan.tiles)).second) continue;
        net.set_execution_plan(&sweep_plan);
        const auto sweep_out = net.run(steps, image);
        const double diff = es::max_abs_diff(sweep_out, dense_out);
        if (diff != 0.0) {
          parity_ok = false;
          std::fprintf(stderr,
                       "parity failure: %s density %.4f tile_rows %d "
                       "max_abs_diff %.3g\n",
                       r.network.c_str(), density, rows, diff);
        }
        const double ms =
            time_best_ms([&] { (void)net.run(steps, image); }, kSweepReps);
        if (ms < r.best_tiled_ms) {
          r.best_tiled_ms = ms;
          r.best_tile_rows =
              sweep_plan.tiles.enabled() ? headline_tile_rows(sweep_plan.tiles)
                                         : 0;
        }
      }
      net.set_execution_plan(nullptr);

      if (r.max_abs_diff != 0.0) parity_ok = false;
      std::fprintf(
          g_table,
          "%-18s %8.4f %10.2f %11.2f %8.2fx %7d %9.3f %6d %6d %6.2fx %12.3g\n",
          r.network.c_str(), r.density, r.dense_ms, r.planner_ms,
          r.speedup_planner(), r.sparse_routed, r.sparse_mac_fraction,
          r.tile_rows, r.best_tile_rows, r.speedup_tiled_best(),
          r.max_abs_diff);
      std::fflush(g_table);
      results.push_back(std::move(r));
    }
  }

  const bool wrote = write_json(results, out_path, json_stdout);
  if (!parity_ok) {
    std::fprintf(stderr,
                 "parity failure: planner-routed output diverged from dense "
                 "execution (see table)\n");
    return 1;
  }
  return wrote ? 0 : 1;
}
