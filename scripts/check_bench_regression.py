#!/usr/bin/env python3
"""Benchmark perf regression gate.

Compares a freshly produced benchmark JSON against the checked-in
baseline and fails (exit 1) when any record's speedup dropped by more
than the threshold. Speedup is a same-machine same-run ratio (reference
work / fast-path work), so it is largely machine-speed invariant — a
drop means the fast path itself regressed relative to the reference
work.

Six benchmark schemas are understood, auto-detected per record:

  BENCH_kernels.json / BENCH_quant.json
      records with kernel/shape/density and a single "speedup" metric
  BENCH_e2e.json
      records with density/batch and two metrics, "speedup_batched"
      and "speedup_csr"
  BENCH_sparse_engine.json
      records with network/density and a "speedup_planner" metric
      (planner-routed engine vs all-dense, same machine same run);
      records that carry "speedup_tiled_best" (the best measured tile
      geometry from the bench's forced-tile sweep) gate on it too — a
      drop means the tiled chain walker itself slowed down, independent
      of whether the cache model picked that geometry
  BENCH_serve.json
      records with network/streams and a "speedup_serve" metric
      (concurrent serving runtime vs per-stream serial dense execution
      at the same worker budget, same machine same run); paced
      closed-loop records carry "ontime_ratio" instead (fraction of
      frames completed within the wall deadline while ingress replays
      at IngressConfig::pace_speedup x real time) and gate on it the
      same way — a lower fresh ratio than baseline is a regression
  BENCH_obs.json
      records with an "obs" probe name and a single "ratio" metric —
      same-run observability-overhead ratios (e.g. serve fps with
      tracing on / off, disabled-site cost vs a clock read), gated so
      the always-on instrumentation stays effectively free

Records are keyed by (kernel, shape, density); every metric of a record
gates independently. Keys present only in the fresh run (newly added
benches) are reported but do not gate; keys missing from the fresh run
fail the gate (a silently dropped bench must not pass as "no
regression"). Thread counts must match between baseline and fresh run —
extra fast-path threads would mask real regressions.

Malformed inputs (truncated/invalid JSON, a missing required key, a
non-numeric metric) are rejected with a message naming the file, record
index and key, and exit code 2 — never a raw traceback.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.20]
"""

import argparse
import json
import sys


class BenchFormatError(Exception):
    """A benchmark JSON is malformed or missing a required key."""


def _require(record, key, path, index):
    """Fetches record[key], naming the file/record/key on failure."""
    try:
        return record[key]
    except (KeyError, TypeError):
        raise BenchFormatError(
            f"{path}: results[{index}] is missing required key "
            f"'{key}' (record: {json.dumps(record)[:200]})") from None


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise BenchFormatError(f"{path}: cannot read file: {e}") from None
    except json.JSONDecodeError as e:
        raise BenchFormatError(
            f"{path}: malformed JSON at line {e.lineno} column {e.colno}: "
            f"{e.msg}") from None
    if not isinstance(data, dict):
        raise BenchFormatError(
            f"{path}: top level must be a JSON object, got "
            f"{type(data).__name__}")
    results = data.get("results")
    if not isinstance(results, list):
        raise BenchFormatError(
            f"{path}: missing required key 'results' (or it is not a "
            f"list) — not a benchmark output file?")
    out = {}
    for i, r in enumerate(results):
        try:
            if not isinstance(r, dict):
                raise BenchFormatError(
                    f"{path}: results[{i}] must be an object, got "
                    f"{type(r).__name__}")
            if "kernel" in r:
                key = (r["kernel"], _require(r, "shape", path, i),
                       round(float(_require(r, "density", path, i)), 6))
                metrics = {"speedup": float(_require(r, "speedup", path, i))}
            elif "speedup_planner" in r:  # sparse engine schema
                key = ("sparse_engine", _require(r, "network", path, i),
                       round(float(_require(r, "density", path, i)), 6))
                metrics = {"speedup_planner": float(r["speedup_planner"])}
                if "speedup_tiled_best" in r:
                    metrics["speedup_tiled_best"] = float(
                        r["speedup_tiled_best"])
            elif "ontime_ratio" in r:  # paced closed-loop serving schema
                key = ("serve_paced", _require(r, "network", path, i),
                       float(int(_require(r, "streams", path, i))))
                metrics = {"ontime_ratio": float(r["ontime_ratio"])}
            elif "speedup_serve" in r:  # serving schema (keyed by streams)
                key = ("serve", _require(r, "network", path, i),
                       float(int(_require(r, "streams", path, i))))
                metrics = {"speedup_serve": float(r["speedup_serve"])}
            elif "obs" in r:  # observability-overhead schema
                key = ("obs", r["obs"],
                       float(int(r.get("streams", 0))))
                metrics = {"ratio": float(_require(r, "ratio", path, i))}
            else:  # e2e schema
                key = ("e2e", "batch=%d" % int(_require(r, "batch", path, i)),
                       round(float(_require(r, "density", path, i)), 6))
                metrics = {
                    "speedup_batched":
                        float(_require(r, "speedup_batched", path, i)),
                    "speedup_csr": float(_require(r, "speedup_csr", path, i)),
                }
        except (ValueError, TypeError) as e:
            raise BenchFormatError(
                f"{path}: results[{i}] has a non-numeric value where a "
                f"number is required: {e}") from None
        out[key] = metrics
    try:
        threads = int(data.get("threads", 0))
    except (ValueError, TypeError):
        raise BenchFormatError(
            f"{path}: top-level key 'threads' must be an integer, got "
            f"{data.get('threads')!r}") from None
    return out, threads


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional speedup drop")
    args = parser.parse_args()

    try:
        base, base_threads = load(args.baseline)
        fresh, fresh_threads = load(args.fresh)
    except BenchFormatError as e:
        print(f"bench gate input error: {e}", file=sys.stderr)
        return 2
    if base_threads != fresh_threads:
        print(f"thread-count mismatch: baseline ran with {base_threads} "
              f"threads, fresh run with {fresh_threads} — regenerate one "
              f"side (EVEDGE_THREADS pins the worker count)",
              file=sys.stderr)
        return 1

    failures = []
    print(f"{'kernel':<24} {'shape':<28} {'density':>8} "
          f"{'metric':<16} {'base':>8} {'fresh':>8} {'ratio':>7}")
    for key in sorted(base):
        kernel, shape, density = key
        if key not in fresh:
            failures.append(f"missing from fresh run: {key}")
            continue
        for metric in sorted(base[key]):
            b = base[key][metric]
            if metric not in fresh[key]:
                failures.append(f"missing metric {metric} for {key}")
                continue
            f = fresh[key][metric]
            ratio = f / b if b > 0 else float("inf")
            flag = "  FAIL" if ratio < 1.0 - args.threshold else ""
            print(f"{kernel:<24} {shape:<28} {density:>8.4f} "
                  f"{metric:<16} {b:>7.2f}x {f:>7.2f}x {ratio:>7.2f}{flag}")
            if ratio < 1.0 - args.threshold:
                failures.append(
                    f"{kernel} {shape} density={density} {metric}: "
                    f"{b:.2f}x -> {f:.2f}x "
                    f"({(1.0 - ratio) * 100:.0f}% drop)")
    gated = sum(len(m) for m in base.values())
    new = sorted(set(fresh) - set(base))
    for key in new:
        for metric in sorted(fresh[key]):
            print(f"{key[0]:<24} {key[1]:<28} {key[2]:>8.4f} "
                  f"{metric:<16} {'new':>8} {fresh[key][metric]:>7.2f}x")

    if failures:
        print("\nPERF REGRESSION GATE FAILED "
              f"(>{args.threshold * 100:.0f}% speedup drop):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nperf gate OK: no metric dropped more than "
          f"{args.threshold * 100:.0f}% vs baseline "
          f"({gated} gated, {len(new)} new record(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
