#include "serve/batch_collator.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace evedge::serve {

BatchCollator::BatchCollator(CollatorConfig config) : config_(config) {
  if (config_.max_batch < 1) {
    throw std::invalid_argument("BatchCollator: max_batch must be >= 1");
  }
  if (config_.max_wait_us < 0.0) {
    throw std::invalid_argument("BatchCollator: max_wait_us must be >= 0");
  }
}

bool BatchCollator::collect(FrameQueue& queue,
                            std::vector<ReadyFrame>& out,
                            int max_batch_override) {
  out.clear();
  const int max_batch =
      max_batch_override > 0 ? max_batch_override : config_.max_batch;
  std::optional<ReadyFrame> first = queue.pop();
  if (!first.has_value()) return false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<long long>(config_.max_wait_us));
  out.push_back(std::move(*first));
  while (static_cast<int>(out.size()) < max_batch) {
    std::optional<ReadyFrame> next = queue.pop_until(deadline);
    if (!next.has_value()) break;  // deadline, or closed and drained
    out.push_back(std::move(*next));
  }
  return true;
}

}  // namespace evedge::serve
