// Table 1 reproduction: summary of the evaluated networks — task, type
// and layer counts — printed from the zoo descriptors, plus the derived
// full-scale workload figures the performance model runs on.

#include <cstdio>

#include "bench_common.hpp"

namespace eb = evedge::bench;
namespace en = evedge::nn;

int main() {
  eb::print_header("Table 1: summary of networks");

  std::printf("%-20s %-16s %-9s %-22s %-12s %-12s\n", "network", "task",
              "type", "layers (paper layout)", "GMAC/inf", "Mweights");
  eb::print_rule(95);
  for (const auto id : en::table1_networks()) {
    const auto net = en::build_network(id, en::ZooConfig::full_scale());
    char layers[48];
    if (net.type_string() == "SNN-ANN") {
      std::snprintf(layers, sizeof layers, "%d (%d SNN, %d ANN)",
                    net.weight_layer_count(), net.snn_layer_count(),
                    net.ann_layer_count());
    } else {
      std::snprintf(layers, sizeof layers, "%d", net.weight_layer_count());
    }
    // Profiler-consistent accounting: spiking layers repeat per event-bin
    // timestep, ANN layers run once per inference.
    double macs = 0.0;
    for (const auto& node : net.graph.nodes()) {
      const double repeats =
          en::domain_of(node.spec.kind) == en::Domain::kSnn
              ? static_cast<double>(net.timesteps)
              : 1.0;
      macs += static_cast<double>(node.spec.macs()) * repeats;
    }
    const double gmacs = macs / 1e9;
    const double mweights =
        static_cast<double>(net.graph.total_weights()) / 1e6;
    std::printf("%-20s %-16s %-9s %-22s %-12.2f %-12.2f\n",
                net.name.c_str(), en::to_string(net.task).c_str(),
                net.type_string().c_str(), layers, gmacs, mweights);
  }
  eb::print_rule(95);
  std::printf(
      "paper Table 1: SpikeFlowNet 12 (4 SNN, 8 ANN) | Fusion-FlowNet 29 "
      "(10 SNN, 19 ANN) | Adaptive-SpikeNet 8 |\n                HALSIE 16 "
      "(3 SNN, 13 ANN) | Hidalgo-Carrio 15 | DOTIE 1\n");
  return 0;
}
