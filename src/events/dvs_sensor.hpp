#pragma once

// DVS pixel model: converts a sequence of intensity frames into an
// asynchronous event stream using the standard log-intensity threshold
// model (paper, Background section 2):
//
//   an event fires at pixel (x, y) whenever
//     | log I(t+1) - log I(t_mem) | >= theta
//   and the pixel's memory potential steps by +-theta per emitted event.
//
// Timestamps of events between two consecutive frames are linearly
// interpolated, matching ESIM-style simulators. An optional per-pixel
// refractory period suppresses events that would fire too soon after the
// previous one at the same pixel.

#include <cstdint>
#include <vector>

#include "events/event.hpp"
#include "events/event_stream.hpp"

namespace evedge::events {

/// A single grayscale intensity frame (row-major, values >= 0).
struct IntensityFrame {
  int width = 0;
  int height = 0;
  TimeUs t = 0;
  std::vector<float> intensity;  ///< size = width * height, linear intensity

  [[nodiscard]] float at(int x, int y) const {
    return intensity[static_cast<std::size_t>(y) *
                         static_cast<std::size_t>(width) +
                     static_cast<std::size_t>(x)];
  }
};

/// Tunable parameters of the DVS pixel model.
struct DvsConfig {
  double contrast_threshold = 0.18;  ///< theta, log-intensity units
  double refractory_us = 100.0;      ///< min time between events per pixel
  float log_eps = 1e-3f;             ///< added before log() for stability
};

/// Stateful DVS simulator. Feed frames in non-decreasing time order with
/// process_frame(); collected events accumulate in an internal stream.
class DvsSensor {
 public:
  DvsSensor(SensorGeometry geometry, DvsConfig config);

  /// Initializes per-pixel memory from the first frame (no events emitted),
  /// then emits events for every subsequent frame. Frame extents must match
  /// the sensor geometry and timestamps must strictly increase.
  void process_frame(const IntensityFrame& frame);

  /// Events emitted so far (time-ordered).
  [[nodiscard]] const EventStream& stream() const noexcept { return stream_; }

  /// Moves the accumulated events out, resetting the internal stream (the
  /// per-pixel memory is kept so streaming can continue).
  [[nodiscard]] EventStream take_stream();

  [[nodiscard]] const DvsConfig& config() const noexcept { return config_; }

 private:
  SensorGeometry geometry_;
  DvsConfig config_;
  bool primed_ = false;
  TimeUs last_frame_t_ = 0;
  std::vector<float> log_memory_;      ///< per-pixel memorized log intensity
  std::vector<double> last_event_t_;   ///< per-pixel last event time (us)
  EventStream stream_;
};

}  // namespace evedge::events
