#pragma once

// EventStream: an in-memory, time-ordered AER event sequence plus the
// geometry of the sensor that produced it. This is the hand-off type
// between the sensing substrate (DVS simulator / synthesizers) and the
// Ev-Edge runtime front end (E2SF).

#include <cstddef>
#include <span>
#include <vector>

#include "events/event.hpp"

namespace evedge::events {

/// Time-ordered event sequence. Invariants (checked by validate()):
///  - events are sorted by non-decreasing timestamp
///  - every event lies inside the sensor geometry
class EventStream {
 public:
  EventStream() = default;
  explicit EventStream(SensorGeometry geometry) : geometry_(geometry) {
    validate_geometry(geometry_);
  }
  EventStream(SensorGeometry geometry, std::vector<Event> events);

  [[nodiscard]] const SensorGeometry& geometry() const noexcept {
    return geometry_;
  }
  [[nodiscard]] std::span<const Event> events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// First/last timestamps; both throw std::logic_error when empty.
  [[nodiscard]] TimeUs t_begin() const;
  [[nodiscard]] TimeUs t_end() const;
  /// Duration in microseconds (0 when fewer than two events).
  [[nodiscard]] TimeUs duration() const;

  /// Appends one event; must not decrease the timestamp and must lie
  /// inside the geometry (throws std::invalid_argument otherwise).
  void push_back(const Event& e);

  /// Appends all events of `other` (same geometry required); `other`'s
  /// first timestamp must be >= our last.
  void append(const EventStream& other);

  /// Events with timestamp in [t0, t1). Binary-searched; O(log n + k).
  [[nodiscard]] std::span<const Event> slice(TimeUs t0, TimeUs t1) const;

  /// Number of events with timestamp in [t0, t1).
  [[nodiscard]] std::size_t count_in(TimeUs t0, TimeUs t1) const;

  /// Throws std::logic_error when an invariant is violated. Intended for
  /// tests and for validating externally constructed streams.
  void validate() const;

 private:
  SensorGeometry geometry_{};
  std::vector<Event> events_;
};

/// Grayscale (APS) frame timestamps emitted alongside events by DAVIS-style
/// sensors. E2SF bins events between consecutive entries (Tstart, Tend).
struct FrameClock {
  std::vector<TimeUs> timestamps;  ///< strictly increasing

  /// Uniform clock: n_frames timestamps starting at t0, spaced period_us.
  [[nodiscard]] static FrameClock uniform(TimeUs t0, TimeUs period_us,
                                          std::size_t n_frames);

  /// Uniform clock spanning the whole stream at `frame_rate_hz`
  /// (period = round(1e6 / rate), padded by one interval so the last
  /// event falls inside a closed interval). This is THE grayscale
  /// camera model shared by the pipeline simulation and the serving
  /// ingress — one construction, so both frame identically by design.
  /// Throws std::invalid_argument for an empty stream or a
  /// non-positive rate.
  [[nodiscard]] static FrameClock spanning(const EventStream& stream,
                                           double frame_rate_hz);

  /// Number of (Tstart, Tend) intervals, i.e. timestamps.size() - 1.
  [[nodiscard]] std::size_t interval_count() const noexcept {
    return timestamps.empty() ? 0 : timestamps.size() - 1;
  }
};

}  // namespace evedge::events
