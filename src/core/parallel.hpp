#pragma once

// Minimal std::thread fork-join helper for the compute kernels. The
// kernels split their outermost independent loop (output channels, active
// sites) into contiguous chunks, one per worker, so every index is
// processed exactly once and each worker writes a disjoint output slice —
// results are bitwise identical for any thread count.

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace evedge::core {

/// Worker count: EVEDGE_THREADS env override when set and positive,
/// otherwise std::thread::hardware_concurrency() (min 1).
[[nodiscard]] inline int parallel_thread_count() noexcept {
  if (const char* env = std::getenv("EVEDGE_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Runs body(i) for every i in [begin, end), split into at most
/// `max_threads` contiguous chunks (one std::thread each, the first chunk
/// on the caller). `body` must be safe to invoke concurrently for
/// distinct indices. Falls back to a serial loop for small ranges or a
/// single worker.
template <typename Body>
void parallel_for(int begin, int end, const Body& body,
                  int max_threads = parallel_thread_count()) {
  const int count = end - begin;
  if (count <= 0) return;
  const int workers = std::max(1, std::min(max_threads, count));
  if (workers == 1) {
    for (int i = begin; i < end; ++i) body(i);
    return;
  }
  const int chunk = (count + workers - 1) / workers;
  // First exception from any chunk wins and is rethrown on the caller
  // after every thread has joined (a throw must never leave joinable
  // threads behind or abort the process from a worker).
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto run_chunk = [&](int lo, int hi) noexcept {
    try {
      for (int i = lo; i < hi; ++i) body(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    const int lo = begin + w * chunk;
    const int hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&run_chunk, lo, hi] { run_chunk(lo, hi); });
  }
  run_chunk(begin, std::min(end, begin + chunk));
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace evedge::core
