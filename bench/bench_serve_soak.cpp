// Fault-injection soak for the serving runtime: a seeded FaultPlan with
// EVERY fault type enabled (worker exceptions, latency spikes, corrupt
// frames, stream stalls, stream disconnects) is run against multi-stream
// serving with the SLO deadline and the graceful-degradation ladder on.
// The process exits non-zero unless
//
//   - ServingRuntime::run completes without throwing,
//   - the per-stream frame-accounting invariant holds exactly
//     (enqueued == completed + dropped + shed + failed, cross-checked
//     against the queue's displacement counter: ServeReport::
//     accounting_ok),
//   - the same fault seed reproduces the same per-stream accounting and
//     fired-fault totals on a second run.
//
// This is the robustness gate CI runs (build-and-test and the
// ASan+UBSan job both execute it); it measures nothing — bench_serve
// owns the fault-free throughput numbers. Results go to
// BENCH_serve_soak.json for inspection.
//
// Usage: bench_serve_soak [output.json] [seed] [--json]
//
// --json: machine-readable mode — the JSON document is ALSO written to
// stdout (exactly one document) and the human report moves to stderr.
// The output file is still written.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "nn/zoo.hpp"
#include "serve/serving_runtime.hpp"

namespace ee = evedge::events;
namespace en = evedge::nn;
namespace ev = evedge::serve;

namespace {

constexpr int kStreams = 4;
constexpr int kWorkers = 2;
constexpr ee::TimeUs kDuration = 300'000;

/// Human report lands here: stdout normally, stderr under --json
/// (stdout then carries exactly one JSON document).
std::FILE* g_table = stdout;

[[nodiscard]] ee::EventStream make_stream(int h, int w, std::uint64_t seed) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{w, h};
  cfg.seed = seed;
  cfg.blob_count = 4;
  cfg.background_weight = 0.3;
  const ee::DensityProfile profile("soak", 3.2, {}, 1.2, 0.5);
  return ee::PoissonEventSynthesizer(profile, cfg).generate(0, kDuration);
}

// The deterministic per-stream quantities: ingress dispatch and
// quarantine counts depend only on the stream content and the fault
// plan's (stream, seq) sites. completed/dropped/shed are NOT compared —
// under the live degradation ladder the drop-oldest displacement is
// timing-dependent by design (the invariant still ties them together).
struct StreamAccount {
  std::size_t enqueued = 0;
  std::size_t failed = 0;

  friend bool operator==(const StreamAccount&,
                         const StreamAccount&) = default;
};

[[nodiscard]] std::vector<StreamAccount> accounts_of(
    const ev::ServeReport& report) {
  std::vector<StreamAccount> accounts;
  accounts.reserve(report.streams.size());
  for (const ev::StreamServeStats& s : report.streams) {
    accounts.push_back(StreamAccount{s.enqueued, s.failed});
  }
  return accounts;
}

void write_json_to(std::FILE* f, const ev::ServeReport& report,
                   std::uint64_t seed, bool reproduced) {
  std::fprintf(
      f,
      "{\n  \"seed\": %llu,\n  \"streams\": %d,\n  \"workers\": %d,\n"
      "  \"accounting_ok\": %s,\n  \"reproduced\": %s,\n"
      "  \"frames_completed\": %zu,\n  \"frames_dropped\": %zu,\n"
      "  \"frames_shed\": %zu,\n  \"frames_failed\": %zu,\n"
      "  \"quarantined\": %zu,\n  \"max_degrade_level\": %d,\n"
      "  \"faults\": {\"worker_exceptions\": %zu, \"latency_spikes\": %zu, "
      "\"corrupt_frames\": %zu, \"stream_stalls\": %zu, "
      "\"stream_disconnects\": %zu}\n}\n",
      static_cast<unsigned long long>(seed), kStreams, kWorkers,
      report.accounting_ok() ? "true" : "false",
      reproduced ? "true" : "false", report.frames_completed,
      report.frames_dropped, report.frames_shed, report.frames_failed,
      report.quarantined.size(), report.max_degrade_level,
      report.faults.worker_exceptions, report.faults.latency_spikes,
      report.faults.corrupt_frames, report.faults.stream_stalls,
      report.faults.stream_disconnects);
}

[[nodiscard]] bool write_json(const ev::ServeReport& report,
                              std::uint64_t seed, bool reproduced,
                              const std::string& path, bool echo_stdout) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  write_json_to(f, report, seed, reproduced);
  std::fclose(f);
  std::fprintf(g_table, "wrote %s\n", path.c_str());
  if (echo_stdout) write_json_to(stdout, report, seed, reproduced);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve_soak.json";
  std::uint64_t seed = 20240207ull;
  bool json_stdout = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_stdout = true;
    } else if (positional++ == 0) {
      out_path = arg;
    } else {
      seed = std::strtoull(arg.c_str(), nullptr, 10);
    }
  }
  if (json_stdout) g_table = stderr;

  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;

  std::vector<ee::EventStream> streams;
  streams.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    streams.push_back(make_stream(shape.h, shape.w,
                                  seed + static_cast<std::uint64_t>(s)));
  }

  ev::ServeConfig config;
  config.n_workers = kWorkers;
  config.kernel_threads = 1;
  config.queue_capacity = 16;
  config.overflow = ev::OverflowPolicy::kBlock;
  config.worker.collator.max_batch = 4;
  config.worker.max_retries = 3;
  config.worker.retry_backoff_ms = 0.5;
  // SLO + the full ladder, generous enough that well-behaved frames
  // still complete (this gates correctness, not timing).
  config.slo.deadline_ms = 5000.0;
  config.slo.degrade = true;
  config.slo.eval_interval_ms = 1.0;
  config.slo.allow_int8 = true;
  // Every fault type, scattered deterministically from the seed.
  ev::FaultPlanOptions faults;
  faults.streams = kStreams;
  faults.workers = kWorkers;
  faults.frames_per_stream_hint = 8;
  faults.batches_per_worker_hint = 4;
  faults.worker_exceptions = 3;
  faults.latency_spikes = 2;
  faults.corrupt_frames = 3;
  faults.stalls = 2;
  faults.disconnects = 1;
  faults.spike_ms = 2.0;
  faults.stall_ms = 2.0;
  config.faults = ev::FaultPlan::seeded(seed, faults);

  ev::ServingRuntime runtime(spec, 7, config);
  std::fprintf(g_table, "fault-injection soak: %d streams, %d workers, seed %llu, "
              "%zu scheduled faults\n",
              kStreams, kWorkers, static_cast<unsigned long long>(seed),
              config.faults.specs.size());

  bool ok = true;
  ev::ServeReport first;
  try {
    first = runtime.run(streams);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "SOAK FAILED: run threw: %s\n", e.what());
    return 1;
  }
  std::fprintf(g_table, "%s\n", first.describe().c_str());

  if (!first.accounting_ok()) {
    std::fprintf(stderr,
                 "SOAK FAILED: frame accounting invariant violated "
                 "(enqueued != completed + dropped + shed + failed)\n");
    ok = false;
  }
  if (first.faults.total() == 0) {
    std::fprintf(stderr,
                 "SOAK FAILED: no scheduled fault fired — the plan's "
                 "site hints miss the real dispatch space\n");
    ok = false;
  }
  if (first.frames_completed == 0) {
    std::fprintf(stderr, "SOAK FAILED: nothing completed\n");
    ok = false;
  }

  // Same seed, same streams: the per-stream accounting must reproduce.
  bool reproduced = true;
  try {
    const ev::ServeReport second = runtime.run(streams);
    if (!second.accounting_ok()) {
      std::fprintf(stderr,
                   "SOAK FAILED: second run broke the accounting "
                   "invariant\n");
      ok = false;
    }
    reproduced = accounts_of(first) == accounts_of(second) &&
                 first.faults.corrupt_frames ==
                     second.faults.corrupt_frames &&
                 first.faults.stream_stalls == second.faults.stream_stalls &&
                 first.faults.stream_disconnects ==
                     second.faults.stream_disconnects;
    if (!reproduced) {
      std::fprintf(stderr,
                   "SOAK FAILED: same seed did not reproduce the same "
                   "per-stream accounting / stream-site fault counts\n");
      ok = false;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "SOAK FAILED: second run threw: %s\n", e.what());
    return 1;
  }

  const bool wrote = write_json(first, seed, reproduced, out_path, json_stdout);
  if (ok && wrote) {
    std::fprintf(g_table, "soak OK: %zu faults fired, accounting exact, "
                "reproducible from seed %llu\n",
                first.faults.total(),
                static_cast<unsigned long long>(seed));
    return 0;
  }
  return 1;
}
