#include "nn/kernels.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace evedge::nn {

using sparse::conv_out_extent;
using sparse::validate_conv_spec;

DenseTensor conv2d(const DenseTensor& input, const DenseTensor& weights,
                   std::span<const float> bias, const Conv2dSpec& spec) {
  validate_conv_spec(spec);
  const TensorShape& is = input.shape();
  const TensorShape& ws = weights.shape();
  if (is.c != spec.in_channels) {
    throw std::invalid_argument("conv2d: input channel mismatch");
  }
  if (ws.n != spec.out_channels || ws.c != spec.in_channels ||
      ws.h != spec.kernel || ws.w != spec.kernel) {
    throw std::invalid_argument("conv2d: weight shape mismatch");
  }
  if (!bias.empty() && static_cast<int>(bias.size()) != spec.out_channels) {
    throw std::invalid_argument("conv2d: bias size mismatch");
  }
  const int out_h = conv_out_extent(is.h, spec.kernel, spec.stride,
                                    spec.padding);
  const int out_w = conv_out_extent(is.w, spec.kernel, spec.stride,
                                    spec.padding);
  DenseTensor out(TensorShape{is.n, spec.out_channels, out_h, out_w});
  for (int n = 0; n < is.n; ++n) {
    for (int oc = 0; oc < spec.out_channels; ++oc) {
      const float b =
          bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc)];
      for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
          float acc = b;
          for (int ic = 0; ic < spec.in_channels; ++ic) {
            for (int ky = 0; ky < spec.kernel; ++ky) {
              const int iy = oy * spec.stride + ky - spec.padding;
              if (iy < 0 || iy >= is.h) continue;
              for (int kx = 0; kx < spec.kernel; ++kx) {
                const int ix = ox * spec.stride + kx - spec.padding;
                if (ix < 0 || ix >= is.w) continue;
                acc += input.at(n, ic, iy, ix) * weights.at(oc, ic, ky, kx);
              }
            }
          }
          out.at(n, oc, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

int transposed_conv_out_extent(int in_extent, int kernel, int stride,
                               int padding) {
  const int out = (in_extent - 1) * stride - 2 * padding + kernel;
  if (out <= 0) {
    throw std::invalid_argument("transposed conv output extent <= 0");
  }
  return out;
}

DenseTensor transposed_conv2d(const DenseTensor& input,
                              const DenseTensor& weights,
                              std::span<const float> bias,
                              const Conv2dSpec& spec) {
  validate_conv_spec(spec);
  const TensorShape& is = input.shape();
  const TensorShape& ws = weights.shape();
  if (is.c != spec.in_channels) {
    throw std::invalid_argument("tconv2d: input channel mismatch");
  }
  if (ws.n != spec.out_channels || ws.c != spec.in_channels ||
      ws.h != spec.kernel || ws.w != spec.kernel) {
    throw std::invalid_argument("tconv2d: weight shape mismatch");
  }
  const int out_h = transposed_conv_out_extent(is.h, spec.kernel, spec.stride,
                                               spec.padding);
  const int out_w = transposed_conv_out_extent(is.w, spec.kernel, spec.stride,
                                               spec.padding);
  DenseTensor out(TensorShape{is.n, spec.out_channels, out_h, out_w});
  if (!bias.empty()) {
    if (static_cast<int>(bias.size()) != spec.out_channels) {
      throw std::invalid_argument("tconv2d: bias size mismatch");
    }
    for (int n = 0; n < is.n; ++n) {
      for (int oc = 0; oc < spec.out_channels; ++oc) {
        for (int y = 0; y < out_h; ++y) {
          for (int x = 0; x < out_w; ++x) {
            out.at(n, oc, y, x) = bias[static_cast<std::size_t>(oc)];
          }
        }
      }
    }
  }
  // Scatter formulation: each input pixel contributes a kernel-sized
  // patch into the (stride-spaced) output.
  for (int n = 0; n < is.n; ++n) {
    for (int ic = 0; ic < spec.in_channels; ++ic) {
      for (int iy = 0; iy < is.h; ++iy) {
        for (int ix = 0; ix < is.w; ++ix) {
          const float v = input.at(n, ic, iy, ix);
          if (v == 0.0f) continue;
          for (int ky = 0; ky < spec.kernel; ++ky) {
            const int oy = iy * spec.stride + ky - spec.padding;
            if (oy < 0 || oy >= out_h) continue;
            for (int kx = 0; kx < spec.kernel; ++kx) {
              const int ox = ix * spec.stride + kx - spec.padding;
              if (ox < 0 || ox >= out_w) continue;
              for (int oc = 0; oc < spec.out_channels; ++oc) {
                out.at(n, oc, oy, ox) += v * weights.at(oc, ic, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

DenseTensor fully_connected(const DenseTensor& input,
                            const DenseTensor& weights,
                            std::span<const float> bias) {
  const TensorShape& is = input.shape();
  const TensorShape& ws = weights.shape();
  const auto in_features = static_cast<std::size_t>(is.c) *
                           static_cast<std::size_t>(is.h) *
                           static_cast<std::size_t>(is.w);
  if (static_cast<std::size_t>(ws.c) != in_features || ws.h != 1 ||
      ws.w != 1) {
    throw std::invalid_argument("fully_connected: weight shape mismatch");
  }
  if (!bias.empty() && static_cast<int>(bias.size()) != ws.n) {
    throw std::invalid_argument("fully_connected: bias size mismatch");
  }
  DenseTensor out(TensorShape{is.n, ws.n, 1, 1});
  for (int n = 0; n < is.n; ++n) {
    const std::size_t base = static_cast<std::size_t>(n) * in_features;
    for (int o = 0; o < ws.n; ++o) {
      float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(o)];
      const std::size_t wbase =
          static_cast<std::size_t>(o) * in_features;
      for (std::size_t i = 0; i < in_features; ++i) {
        acc += input.data()[base + i] * weights.data()[wbase + i];
      }
      out.at(n, o, 0, 0) = acc;
    }
  }
  return out;
}

namespace {

template <typename Reduce>
DenseTensor pool_impl(const DenseTensor& input, int kernel, float init,
                      Reduce reduce, bool average) {
  if (kernel <= 0) throw std::invalid_argument("pool kernel must be > 0");
  const TensorShape& is = input.shape();
  if (is.h % kernel != 0 || is.w % kernel != 0) {
    throw std::invalid_argument("pool: extent not divisible by kernel");
  }
  const int out_h = is.h / kernel;
  const int out_w = is.w / kernel;
  DenseTensor out(TensorShape{is.n, is.c, out_h, out_w});
  for (int n = 0; n < is.n; ++n) {
    for (int c = 0; c < is.c; ++c) {
      for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
          float acc = init;
          for (int ky = 0; ky < kernel; ++ky) {
            for (int kx = 0; kx < kernel; ++kx) {
              acc = reduce(acc,
                           input.at(n, c, oy * kernel + ky, ox * kernel + kx));
            }
          }
          if (average) {
            acc /= static_cast<float>(kernel * kernel);
          }
          out.at(n, c, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

}  // namespace

DenseTensor max_pool(const DenseTensor& input, int kernel) {
  return pool_impl(
      input, kernel, -std::numeric_limits<float>::infinity(),
      [](float a, float b) { return std::max(a, b); }, false);
}

DenseTensor avg_pool(const DenseTensor& input, int kernel) {
  return pool_impl(
      input, kernel, 0.0f, [](float a, float b) { return a + b; }, true);
}

void relu_inplace(DenseTensor& t) noexcept {
  for (float& v : t.data()) v = std::max(v, 0.0f);
}

DenseTensor channel_affine(const DenseTensor& input,
                           std::span<const float> gamma,
                           std::span<const float> beta) {
  const TensorShape& is = input.shape();
  if (static_cast<int>(gamma.size()) != is.c ||
      static_cast<int>(beta.size()) != is.c) {
    throw std::invalid_argument("channel_affine: parameter size mismatch");
  }
  DenseTensor out = input;
  for (int n = 0; n < is.n; ++n) {
    for (int c = 0; c < is.c; ++c) {
      const float g = gamma[static_cast<std::size_t>(c)];
      const float b = beta[static_cast<std::size_t>(c)];
      for (int y = 0; y < is.h; ++y) {
        for (int x = 0; x < is.w; ++x) {
          out.at(n, c, y, x) = input.at(n, c, y, x) * g + b;
        }
      }
    }
  }
  return out;
}

DenseTensor concat_channels(const DenseTensor& a, const DenseTensor& b) {
  const TensorShape& as = a.shape();
  const TensorShape& bs = b.shape();
  if (as.n != bs.n || as.h != bs.h || as.w != bs.w) {
    throw std::invalid_argument("concat_channels: N/H/W mismatch");
  }
  DenseTensor out(TensorShape{as.n, as.c + bs.c, as.h, as.w});
  for (int n = 0; n < as.n; ++n) {
    for (int c = 0; c < as.c; ++c) {
      for (int y = 0; y < as.h; ++y) {
        for (int x = 0; x < as.w; ++x) {
          out.at(n, c, y, x) = a.at(n, c, y, x);
        }
      }
    }
    for (int c = 0; c < bs.c; ++c) {
      for (int y = 0; y < as.h; ++y) {
        for (int x = 0; x < as.w; ++x) {
          out.at(n, as.c + c, y, x) = b.at(n, c, y, x);
        }
      }
    }
  }
  return out;
}

DenseTensor add(const DenseTensor& a, const DenseTensor& b) {
  if (!(a.shape() == b.shape())) {
    throw std::invalid_argument("add: shape mismatch");
  }
  DenseTensor out = a;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] += b.data()[i];
  }
  return out;
}

DenseTensor upsample_nearest(const DenseTensor& input, int factor) {
  if (factor <= 0) throw std::invalid_argument("upsample factor must be > 0");
  const TensorShape& is = input.shape();
  DenseTensor out(TensorShape{is.n, is.c, is.h * factor, is.w * factor});
  for (int n = 0; n < is.n; ++n) {
    for (int c = 0; c < is.c; ++c) {
      for (int y = 0; y < is.h * factor; ++y) {
        for (int x = 0; x < is.w * factor; ++x) {
          out.at(n, c, y, x) = input.at(n, c, y / factor, x / factor);
        }
      }
    }
  }
  return out;
}

}  // namespace evedge::nn
