#include "nn/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace evedge::nn {

using sparse::conv_out_extent;

std::size_t LayerSpec::macs() const noexcept {
  switch (kind) {
    case LayerKind::kConv:
    case LayerKind::kSpikingConv:
    case LayerKind::kAdaptiveSpikingConv:
      return static_cast<std::size_t>(out_shape.h) *
             static_cast<std::size_t>(out_shape.w) *
             static_cast<std::size_t>(conv.out_channels) *
             static_cast<std::size_t>(conv.in_channels) *
             static_cast<std::size_t>(conv.kernel) *
             static_cast<std::size_t>(conv.kernel);
    case LayerKind::kTransposedConv:
      return static_cast<std::size_t>(in_shape.h) *
             static_cast<std::size_t>(in_shape.w) *
             static_cast<std::size_t>(conv.in_channels) *
             static_cast<std::size_t>(conv.out_channels) *
             static_cast<std::size_t>(conv.kernel) *
             static_cast<std::size_t>(conv.kernel);
    case LayerKind::kFullyConnected:
      return input_elements() * static_cast<std::size_t>(fc_out);
    case LayerKind::kInput:
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool:
    case LayerKind::kUpsample:
    case LayerKind::kConcat:
    case LayerKind::kAdd:
    case LayerKind::kOutput:
      return 0;
  }
  return 0;
}

std::size_t LayerSpec::weight_count() const noexcept {
  switch (kind) {
    case LayerKind::kConv:
    case LayerKind::kTransposedConv:
    case LayerKind::kSpikingConv:
    case LayerKind::kAdaptiveSpikingConv:
      return static_cast<std::size_t>(conv.out_channels) *
                 static_cast<std::size_t>(conv.in_channels) *
                 static_cast<std::size_t>(conv.kernel) *
                 static_cast<std::size_t>(conv.kernel) +
             static_cast<std::size_t>(conv.out_channels);  // + bias
    case LayerKind::kFullyConnected:
      return input_elements() * static_cast<std::size_t>(fc_out) +
             static_cast<std::size_t>(fc_out);
    default:
      return 0;
  }
}

int NetworkGraph::add_input(const std::string& name, TensorShape shape) {
  sparse::validate_shape(shape);
  LayerSpec spec;
  spec.name = name;
  spec.kind = LayerKind::kInput;
  spec.in_shape = shape;
  spec.out_shape = shape;
  nodes_.push_back(LayerNode{static_cast<int>(nodes_.size()), std::move(spec),
                             {}});
  return nodes_.back().id;
}

int NetworkGraph::add_layer(LayerSpec spec, const std::vector<int>& parents) {
  if (parents.empty()) {
    throw std::invalid_argument("add_layer: node needs at least one parent");
  }
  for (int p : parents) {
    if (p < 0 || p >= static_cast<int>(nodes_.size())) {
      throw std::invalid_argument("add_layer: unknown parent id " +
                                  std::to_string(p));
    }
  }
  const bool binary =
      spec.kind == LayerKind::kConcat || spec.kind == LayerKind::kAdd;
  if (binary && parents.size() != 2) {
    throw std::invalid_argument("add_layer: concat/add need two parents");
  }
  if (!binary && parents.size() != 1) {
    throw std::invalid_argument("add_layer: single-input node, got " +
                                std::to_string(parents.size()) + " parents");
  }
  spec.in_shape = nodes_[static_cast<std::size_t>(parents[0])].spec.out_shape;
  spec.out_shape = infer_shape(spec, parents);
  nodes_.push_back(LayerNode{static_cast<int>(nodes_.size()), std::move(spec),
                             parents});
  return nodes_.back().id;
}

TensorShape NetworkGraph::infer_shape(const LayerSpec& spec,
                                      const std::vector<int>& parents) const {
  const TensorShape in =
      nodes_[static_cast<std::size_t>(parents[0])].spec.out_shape;
  switch (spec.kind) {
    case LayerKind::kInput:
      return in;
    case LayerKind::kConv:
    case LayerKind::kSpikingConv:
    case LayerKind::kAdaptiveSpikingConv: {
      sparse::validate_conv_spec(spec.conv);
      if (in.c != spec.conv.in_channels) {
        throw std::invalid_argument("conv in_channels mismatch at '" +
                                    spec.name + "'");
      }
      return TensorShape{
          in.n, spec.conv.out_channels,
          conv_out_extent(in.h, spec.conv.kernel, spec.conv.stride,
                          spec.conv.padding),
          conv_out_extent(in.w, spec.conv.kernel, spec.conv.stride,
                          spec.conv.padding)};
    }
    case LayerKind::kTransposedConv: {
      sparse::validate_conv_spec(spec.conv);
      if (in.c != spec.conv.in_channels) {
        throw std::invalid_argument("tconv in_channels mismatch at '" +
                                    spec.name + "'");
      }
      const int oh = (in.h - 1) * spec.conv.stride - 2 * spec.conv.padding +
                     spec.conv.kernel;
      const int ow = (in.w - 1) * spec.conv.stride - 2 * spec.conv.padding +
                     spec.conv.kernel;
      if (oh <= 0 || ow <= 0) {
        throw std::invalid_argument("tconv output extent <= 0 at '" +
                                    spec.name + "'");
      }
      return TensorShape{in.n, spec.conv.out_channels, oh, ow};
    }
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool:
      if (spec.pool_kernel <= 0 || in.h % spec.pool_kernel != 0 ||
          in.w % spec.pool_kernel != 0) {
        throw std::invalid_argument("pool extent mismatch at '" + spec.name +
                                    "'");
      }
      return TensorShape{in.n, in.c, in.h / spec.pool_kernel,
                         in.w / spec.pool_kernel};
    case LayerKind::kUpsample:
      if (spec.upsample_factor <= 0) {
        throw std::invalid_argument("bad upsample factor at '" + spec.name +
                                    "'");
      }
      return TensorShape{in.n, in.c, in.h * spec.upsample_factor,
                         in.w * spec.upsample_factor};
    case LayerKind::kFullyConnected:
      if (spec.fc_out <= 0) {
        throw std::invalid_argument("fc_out must be positive at '" +
                                    spec.name + "'");
      }
      return TensorShape{in.n, spec.fc_out, 1, 1};
    case LayerKind::kConcat: {
      const TensorShape b =
          nodes_[static_cast<std::size_t>(parents[1])].spec.out_shape;
      // Spatial extents may differ by decoder rounding; consumers crop to
      // the smaller extent (the engine implements the same rule).
      return TensorShape{in.n, in.c + b.c, std::min(in.h, b.h),
                         std::min(in.w, b.w)};
    }
    case LayerKind::kAdd: {
      const TensorShape b =
          nodes_[static_cast<std::size_t>(parents[1])].spec.out_shape;
      if (in.c != b.c) {
        throw std::invalid_argument("add channel mismatch at '" + spec.name +
                                    "'");
      }
      return TensorShape{in.n, in.c, std::min(in.h, b.h),
                         std::min(in.w, b.w)};
    }
    case LayerKind::kOutput:
      return in;
  }
  throw std::logic_error("unhandled layer kind");
}

const LayerNode& NetworkGraph::node(int id) const {
  if (id < 0 || id >= static_cast<int>(nodes_.size())) {
    throw std::out_of_range("NetworkGraph::node: bad id " +
                            std::to_string(id));
  }
  return nodes_[static_cast<std::size_t>(id)];
}

std::vector<int> NetworkGraph::input_ids() const {
  std::vector<int> ids;
  for (const LayerNode& n : nodes_) {
    if (n.spec.kind == LayerKind::kInput) ids.push_back(n.id);
  }
  return ids;
}

std::vector<int> NetworkGraph::output_ids() const {
  std::vector<int> ids;
  for (const LayerNode& n : nodes_) {
    if (n.spec.kind == LayerKind::kOutput) ids.push_back(n.id);
  }
  return ids;
}

std::vector<int> NetworkGraph::sink_ids() const {
  std::unordered_set<int> consumed;
  for (const LayerNode& n : nodes_) {
    for (int p : n.parents) consumed.insert(p);
  }
  std::vector<int> sinks;
  for (const LayerNode& n : nodes_) {
    if (!consumed.contains(n.id)) sinks.push_back(n.id);
  }
  return sinks;
}

std::size_t NetworkGraph::total_macs() const noexcept {
  std::size_t total = 0;
  for (const LayerNode& n : nodes_) total += n.spec.macs();
  return total;
}

std::size_t NetworkGraph::total_weights() const noexcept {
  std::size_t total = 0;
  for (const LayerNode& n : nodes_) total += n.spec.weight_count();
  return total;
}

void NetworkGraph::validate() const {
  for (const LayerNode& n : nodes_) {
    if (n.id != &n - nodes_.data()) {
      throw std::logic_error("node id does not match position");
    }
    for (int p : n.parents) {
      if (p < 0 || p >= n.id) {
        throw std::logic_error("parent not topologically earlier at node " +
                               std::to_string(n.id));
      }
    }
    if (n.spec.kind == LayerKind::kInput && !n.parents.empty()) {
      throw std::logic_error("input node has parents");
    }
    if (n.spec.kind != LayerKind::kInput && n.parents.empty()) {
      throw std::logic_error("non-input node without parents");
    }
  }
  if (input_ids().empty()) throw std::logic_error("graph has no input");
  if (output_ids().empty()) throw std::logic_error("graph has no output");
}

std::string to_string(TaskKind task) {
  switch (task) {
    case TaskKind::kOpticalFlow: return "optical-flow";
    case TaskKind::kSegmentation: return "segmentation";
    case TaskKind::kDepth: return "depth";
    case TaskKind::kTracking: return "tracking";
  }
  return "?";
}

std::string to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "input";
    case LayerKind::kConv: return "conv";
    case LayerKind::kTransposedConv: return "tconv";
    case LayerKind::kFullyConnected: return "fc";
    case LayerKind::kMaxPool: return "maxpool";
    case LayerKind::kAvgPool: return "avgpool";
    case LayerKind::kUpsample: return "upsample";
    case LayerKind::kSpikingConv: return "spiking-conv";
    case LayerKind::kAdaptiveSpikingConv: return "adaptive-spiking-conv";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kAdd: return "add";
    case LayerKind::kOutput: return "output";
  }
  return "?";
}

int NetworkSpec::weight_layer_count() const noexcept {
  int count = 0;
  for (const LayerNode& n : graph.nodes()) {
    if (is_weight_layer(n.spec.kind)) ++count;
  }
  return count;
}

int NetworkSpec::snn_layer_count() const noexcept {
  int count = 0;
  for (const LayerNode& n : graph.nodes()) {
    if (is_weight_layer(n.spec.kind) &&
        domain_of(n.spec.kind) == Domain::kSnn) {
      ++count;
    }
  }
  return count;
}

int NetworkSpec::ann_layer_count() const noexcept {
  return weight_layer_count() - snn_layer_count();
}

std::string NetworkSpec::type_string() const {
  const int snn = snn_layer_count();
  const int ann = ann_layer_count();
  if (snn > 0 && ann > 0) return "SNN-ANN";
  return snn > 0 ? "SNN" : "ANN";
}

}  // namespace evedge::nn
