#include "sparse/coo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace evedge::sparse {

namespace {

[[nodiscard]] bool coord_less(const CooEntry& a, const CooEntry& b) noexcept {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}

void validate_extents(int height, int width) {
  if (height <= 0 || width <= 0) {
    throw std::invalid_argument("CooChannel extents must be positive: " +
                                std::to_string(height) + "x" +
                                std::to_string(width));
  }
}

}  // namespace

CooChannel::CooChannel(int height, int width)
    : height_(height), width_(width) {
  validate_extents(height, width);
}

CooChannel CooChannel::from_entries(int height, int width,
                                    std::vector<CooEntry> entries) {
  CooChannel ch(height, width);
  std::sort(entries.begin(), entries.end(), coord_less);
  ch.entries_.reserve(entries.size());
  for (const CooEntry& e : entries) {
    if (e.row < 0 || e.row >= height || e.col < 0 || e.col >= width) {
      throw std::invalid_argument("COO entry outside channel extents");
    }
    if (!ch.entries_.empty() && ch.entries_.back().row == e.row &&
        ch.entries_.back().col == e.col) {
      ch.entries_.back().value += e.value;
    } else {
      ch.entries_.push_back(e);
    }
  }
  std::erase_if(ch.entries_,
                [](const CooEntry& e) { return e.value == 0.0f; });
  return ch;
}

CooChannel CooChannel::from_sorted_entries(int height, int width,
                                           std::vector<CooEntry> entries) {
  CooChannel ch(height, width);
  ch.entries_ = std::move(entries);
  return ch;
}

double CooChannel::density() const noexcept {
  const auto total = static_cast<double>(height_) * width_;
  return total > 0.0 ? static_cast<double>(entries_.size()) / total : 0.0;
}

void CooChannel::prune_negative() noexcept {
  row_ptr_valid_ = false;
  std::erase_if(entries_, [](const CooEntry& e) { return e.value < 0.0f; });
}

void CooChannel::accumulate(std::int32_t row, std::int32_t col, float value) {
  if (row < 0 || row >= height_ || col < 0 || col >= width_) {
    throw std::out_of_range("CooChannel::accumulate outside extents");
  }
  if (value == 0.0f) return;
  row_ptr_valid_ = false;
  const CooEntry probe{row, col, 0.0f};
  auto it = std::lower_bound(entries_.begin(), entries_.end(), probe,
                             coord_less);
  if (it != entries_.end() && it->row == row && it->col == col) {
    it->value += value;
    if (it->value == 0.0f) entries_.erase(it);
  } else {
    entries_.insert(it, CooEntry{row, col, value});
  }
}

float CooChannel::at(std::int32_t row, std::int32_t col) const noexcept {
  const CooEntry probe{row, col, 0.0f};
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), probe,
                                   coord_less);
  if (it != entries_.end() && it->row == row && it->col == col) {
    return it->value;
  }
  return 0.0f;
}

const std::vector<std::int32_t>& CooChannel::row_ptr() const {
  if (!row_ptr_valid_) {
    row_ptr_.assign(static_cast<std::size_t>(height_) + 1, 0);
    for (const CooEntry& e : entries_) {
      ++row_ptr_[static_cast<std::size_t>(e.row) + 1];
    }
    for (std::size_t r = 1; r < row_ptr_.size(); ++r) {
      row_ptr_[r] += row_ptr_[r - 1];
    }
    row_ptr_valid_ = true;
  }
  return row_ptr_;
}

std::span<const CooEntry> CooChannel::row_span(std::int32_t row) const {
  if (row < 0 || row >= height_) {
    throw std::out_of_range("CooChannel::row_span outside extents");
  }
  const auto& ptr = row_ptr();
  const auto lo = static_cast<std::size_t>(ptr[static_cast<std::size_t>(row)]);
  const auto hi =
      static_cast<std::size_t>(ptr[static_cast<std::size_t>(row) + 1]);
  return std::span<const CooEntry>(entries_.data() + lo, hi - lo);
}

std::span<const CooEntry> CooChannel::rows_span(std::int32_t row0,
                                                std::int32_t row1) const {
  row0 = std::max<std::int32_t>(row0, 0);
  row1 = std::min<std::int32_t>(row1, height_);
  if (row0 >= row1) return {};
  const auto& ptr = row_ptr();
  const auto lo = static_cast<std::size_t>(ptr[static_cast<std::size_t>(row0)]);
  const auto hi =
      static_cast<std::size_t>(ptr[static_cast<std::size_t>(row1)]);
  return std::span<const CooEntry>(entries_.data() + lo, hi - lo);
}

double CooChannel::value_sum() const noexcept {
  double acc = 0.0;
  for (const CooEntry& e : entries_) acc += static_cast<double>(e.value);
  return acc;
}

void CooChannel::validate() const {
  validate_extents(height_, width_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const CooEntry& e = entries_[i];
    if (e.row < 0 || e.row >= height_ || e.col < 0 || e.col >= width_) {
      throw std::logic_error("COO entry outside extents");
    }
    if (e.value == 0.0f) throw std::logic_error("explicit zero stored");
    if (i > 0 && !coord_less(entries_[i - 1], e)) {
      throw std::logic_error("COO entries not strictly sorted");
    }
  }
}

CooChannel add(const CooChannel& a, const CooChannel& b, float scale_b) {
  if (a.height() != b.height() || a.width() != b.width()) {
    throw std::invalid_argument("CooChannel add: extent mismatch");
  }
  CooChannel out(a.height(), a.width());
  std::vector<CooEntry> merged;
  merged.reserve(a.nnz() + b.nnz());
  std::size_t i = 0;
  std::size_t j = 0;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  while (i < ea.size() || j < eb.size()) {
    if (j >= eb.size() ||
        (i < ea.size() && coord_less(ea[i], eb[j]))) {
      merged.push_back(ea[i++]);
    } else if (i >= ea.size() || coord_less(eb[j], ea[i])) {
      merged.push_back(CooEntry{eb[j].row, eb[j].col,
                                eb[j].value * scale_b});
      ++j;
    } else {
      const float v = ea[i].value + eb[j].value * scale_b;
      if (v != 0.0f) merged.push_back(CooEntry{ea[i].row, ea[i].col, v});
      ++i;
      ++j;
    }
  }
  std::erase_if(merged, [](const CooEntry& e) { return e.value == 0.0f; });
  return CooChannel::from_entries(a.height(), a.width(), std::move(merged));
}

CooChannel scale(const CooChannel& a, float factor) {
  std::vector<CooEntry> entries = a.entries();
  for (CooEntry& e : entries) e.value *= factor;
  return CooChannel::from_entries(a.height(), a.width(), std::move(entries));
}

}  // namespace evedge::sparse
