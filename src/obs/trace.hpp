#pragma once

// Lock-free always-on tracing: every serving thread owns a bounded ring
// of fixed-size trace records (spans, instants, counter samples) stamped
// with nanoseconds on a process-wide monotonic timeline. The emit path
// is wait-free and heap-free: one relaxed atomic load when tracing is
// disabled (the always-compiled-in default), and when enabled a
// steady_clock read plus one slot write into the calling thread's ring.
// Rings never wrap — a full ring counts further events as drops instead
// of overwriting history, so a trace is a prefix of the run and the
// drop counter says exactly how much is missing.
//
// Timeline contract: every timestamp is nanoseconds since trace_epoch(),
// a process-wide steady_clock instant latched on first use. The fault
// journal (serve/journal.hpp) stamps its entries from the same epoch,
// so journal records overlay exactly onto an exported trace
// (tools/evedge_trace export --journal).
//
// Ownership/visibility model: a ring is written only by its owning
// thread; the writer publishes each slot with a release store of the
// ring count, and collect() reads counts with acquire loads — a
// snapshot taken mid-run is a consistent prefix per thread. clear() and
// set_ring_capacity() are quiesce-time operations (call them between
// runs, not while instrumented threads are emitting).
//
// Names and categories must be string literals (or otherwise immortal):
// records store the pointers, never copies — that is what keeps the hot
// path free of allocation. Runtime-built names (layer names from a
// NetworkSpec) go through intern_name(), which copies them into
// process-lifetime storage once on the cold path.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace evedge::obs {

/// The process-wide trace epoch: a steady_clock instant latched the
/// first time anyone asks. Every trace timestamp (and every journal
/// t_ms) is measured from it.
[[nodiscard]] std::chrono::steady_clock::time_point trace_epoch() noexcept;

/// Nanoseconds since trace_epoch() for an arbitrary steady_clock
/// instant (0 for instants before the epoch).
[[nodiscard]] std::uint64_t to_trace_ns(
    std::chrono::steady_clock::time_point tp) noexcept;

/// Nanoseconds since trace_epoch(), now.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return to_trace_ns(std::chrono::steady_clock::now());
}

/// Copies a runtime-built string into process-lifetime storage and
/// returns its stable NUL-terminated pointer, deduplicated — the
/// immortality escape hatch for trace names that are not compile-time
/// literals (layer names, say). The returned pointer outlives every
/// collected trace; collected events therefore never dangle, whatever
/// emitted them. Mutex-guarded: cold path only (construction time, not
/// per event).
[[nodiscard]] const char* intern_name(std::string_view name);

enum class Phase : std::uint8_t {
  kSpan,     ///< [t_ns, t_ns + dur_ns] duration event
  kInstant,  ///< point event (dur_ns == 0)
  kCounter,  ///< sampled value (arg0) on a named counter track
};

/// One fixed-size trace record. Plain data; name/category/arg-key
/// pointers must outlive the tracer (string literals in practice).
struct TraceEvent {
  std::uint64_t t_ns = 0;    ///< start (span) / occurrence, since epoch
  std::uint64_t dur_ns = 0;  ///< span duration; 0 for instants/counters
  const char* cat = "";
  const char* name = "";
  const char* arg0_key = nullptr;  ///< nullptr = no arg
  const char* arg1_key = nullptr;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  std::uint32_t tid = 0;  ///< tracer-assigned thread index
  Phase phase = Phase::kSpan;
};

/// Process-wide tracer: a registry of per-thread rings behind one
/// enabled flag. All emitters are static so call sites pay nothing for
/// the singleton when disabled.
class Tracer {
 public:
  static Tracer& instance();

  /// The hot-path gate: one relaxed load. All emitters check it first.
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Capacity for rings created after the call (existing rings keep
  /// theirs). Quiesce-time only.
  void set_ring_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t ring_capacity() const noexcept;

  /// Empties every ring and zeroes drop counts. Quiesce-time only.
  void clear();

  /// Snapshot of every thread's events, stably ordered by (tid, emit
  /// order). Safe concurrently with writers: each ring contributes the
  /// prefix published at the moment of the read.
  [[nodiscard]] std::vector<TraceEvent> collect() const;

  /// Events discarded because a ring was full, across all rings.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Rings ever registered (== distinct emitting threads since start).
  [[nodiscard]] std::size_t ring_count() const;

  // ---- emitters (no-ops when disabled) ------------------------------
  static void span(const char* cat, const char* name, std::uint64_t t0_ns,
                   std::uint64_t t1_ns, const char* arg0_key = nullptr,
                   std::int64_t arg0 = 0, const char* arg1_key = nullptr,
                   std::int64_t arg1 = 0) noexcept;
  static void instant(const char* cat, const char* name,
                      const char* arg0_key = nullptr, std::int64_t arg0 = 0,
                      const char* arg1_key = nullptr,
                      std::int64_t arg1 = 0) noexcept;
  static void counter(const char* cat, const char* name,
                      std::int64_t value) noexcept;

 private:
  struct Ring {
    explicit Ring(std::size_t capacity, std::uint32_t tid)
        : slots(capacity), tid(tid) {}
    std::vector<TraceEvent> slots;
    /// Valid slots; the owning thread release-stores after each write.
    std::atomic<std::uint32_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t tid = 0;
  };

  Tracer() = default;
  [[nodiscard]] Ring& local_ring();
  void push(TraceEvent event) noexcept;

  static std::atomic<bool> enabled_;

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = 1u << 16;

  friend class ScopedSpan;
};

/// RAII span: stamps t0 at construction (when tracing is on) and emits
/// at destruction. Zero cost when tracing is off beyond the flag load.
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name) noexcept {
    if (Tracer::enabled()) {
      cat_ = cat;
      name_ = name;
      t0_ = now_ns();
      active_ = true;
    }
  }
  ~ScopedSpan() {
    if (active_) {
      Tracer::span(cat_, name_, t0_, now_ns(), arg0_key_, arg0_, arg1_key_,
                   arg1_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach args any time before destruction (no-ops when inactive).
  void arg0(const char* key, std::int64_t value) noexcept {
    arg0_key_ = key;
    arg0_ = value;
  }
  void arg1(const char* key, std::int64_t value) noexcept {
    arg1_key_ = key;
    arg1_ = value;
  }
  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  const char* arg0_key_ = nullptr;
  const char* arg1_key_ = nullptr;
  std::int64_t arg0_ = 0;
  std::int64_t arg1_ = 0;
  std::uint64_t t0_ = 0;
};

}  // namespace evedge::obs
