#pragma once

// ServeWorkerPool: the inference back half of the serving runtime. Each
// worker owns a full FunctionalNetwork clone (identical weights, private
// Workspace — the one-Workspace-per-worker contract that makes workers
// mutually invisible), its own BatchCollator and, when planning is on,
// its own density-adaptive ExecutionPlan:
//
//  - lazy warmup calibration: the worker's first collated batch doubles
//    as the planner probe (sample 0), mirroring BatchExecutor;
//  - drift re-calibration: every batch's live input density (nonzero
//    fraction of the adapted event tensor, the post-E2SF quantity the
//    planner calibrated on) is checked against the plan's calibration
//    band; when the scene density drifts outside it, the worker re-runs
//    calibration on the current batch and swaps routes in place.
//
// Per-stream state isolation: the engine resets LIF state at the start
// of every inference and gives each batch lane its own membrane tensor,
// so coalescing frames from different streams into one run_batched call
// is bitwise identical to per-stream serial execution (run_batched's
// per-sample contract; verified zoo-wide in test_serve).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/engine.hpp"
#include "nn/exec_plan.hpp"
#include "serve/batch_collator.hpp"
#include "serve/frame_queue.hpp"
#include "serve/serve_stats.hpp"

namespace evedge::serve {

struct WorkerConfig {
  /// Density-adaptive routing (bitwise-neutral, exec_plan.hpp). Off =
  /// all-dense execution.
  bool use_planner = true;
  nn::PlannerOptions planner{};
  /// Re-calibrate a worker's plan when the live input density leaves
  /// [probe/band, probe*band] (ExecutionPlan::density_in_band).
  bool recalibrate_on_drift = true;
  double recalibration_band = 4.0;
  CollatorConfig collator{};
};

/// Called once per completed frame, potentially from several worker
/// threads at once — implementations must be thread-safe. The frame's
/// result is batch lane `lane` of `batch_output` (the run_batched
/// tensor, valid only for the duration of the call — slice it out via
/// sparse::copy_sample if it must outlive the sink); `latency_us` spans
/// queue admission to inference completion.
using ResultSink = std::function<void(
    const ReadyFrame& frame, const sparse::DenseTensor& batch_output,
    int lane, double latency_us)>;

/// One serving worker. Public so tests (and single-threaded embeddings)
/// can drive process_batch directly; the pool wraps it in a thread.
class ServeWorker {
 public:
  /// Clones the prototype network (weights shared by value, state by
  /// nobody). The prototype is only read during construction.
  ServeWorker(int worker_id, const nn::FunctionalNetwork& prototype,
              WorkerConfig config);

  /// Runs one collated batch through run_batched and emits every frame's
  /// result to `sink`. Handles planner warmup/drift calibration.
  void process_batch(const std::vector<ReadyFrame>& batch,
                     const ResultSink& sink);

  /// Collation + inference loop until `queue` closes and drains.
  void serve(FrameQueue& queue, const ResultSink& sink);

  [[nodiscard]] const WorkerServeStats& stats() const noexcept {
    return stats_;
  }
  /// The worker's live plan (nullptr before warmup or with planning off).
  [[nodiscard]] const nn::ExecutionPlan* plan() const noexcept {
    return plan_ready_ ? &plan_ : nullptr;
  }

 private:
  void calibrate_from(const std::vector<sparse::DenseTensor>& steps);

  WorkerConfig config_;
  nn::FunctionalNetwork net_;
  sparse::TensorShape event_shape_;  ///< per-timestep event input (n = 1)
  bool needs_image_ = false;
  sparse::DenseTensor image_;
  std::vector<sparse::DenseTensor> steps_;  ///< reused staging tensors
  std::vector<sparse::SparseFrame> frames_;  ///< reused adaptation view
  bool plan_ready_ = false;
  nn::ExecutionPlan plan_;
  WorkerServeStats stats_;
};

class ServeWorkerPool {
 public:
  /// Builds `n_workers` clones of `prototype` (must stay alive through
  /// construction only).
  ServeWorkerPool(const nn::FunctionalNetwork& prototype, int n_workers,
                  const WorkerConfig& config);

  /// Serves `queue` on one thread per worker until it closes and drains;
  /// blocks until every worker exits. `sink` must be thread-safe.
  void run(FrameQueue& queue, const ResultSink& sink);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] const ServeWorker& worker(std::size_t i) const {
    return *workers_.at(i);
  }

 private:
  std::vector<std::unique_ptr<ServeWorker>> workers_;
};

}  // namespace evedge::serve
