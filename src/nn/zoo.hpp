#pragma once

// Network zoo: layer-accurate architecture descriptors for the networks
// the paper evaluates (Table 1, plus EV-FlowNet used in the multi-task
// configurations of section 5). Weight-layer counts and the SNN/ANN split
// match Table 1 exactly; channel widths and exact encoder/decoder wiring
// are faithful-in-spirit reconstructions of the cited architectures
// (pretrained weights are unavailable — weights are fixed-seed random,
// see DESIGN.md section 2).
//
// All builders take a ZooConfig so tests can run tiny functional
// instances while the performance model uses full-scale descriptors.

#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace evedge::nn {

/// Construction parameters for zoo networks.
struct ZooConfig {
  /// Per-timestep input extent. Full scale is 352x256 (DAVIS346's 346x260
  /// rounded to multiples of 32 so encoder/decoder extents align; the
  /// substitution is documented in DESIGN.md).
  int height = 256;
  int width = 352;
  /// Base channel width; encoder levels use base, 2*base, 4*base, ...
  int base_channels = 32;
  /// Event bins per frame interval (input representation, Background §2).
  int n_bins = 5;
  /// Multiplier on every spiking layer's firing threshold. The default
  /// random-weight stand-ins fire at 7-40% — far hotter than the 0.5-5%
  /// activation density the paper reports for trained event networks
  /// (the regime the sparse routes target). Raising the threshold puts
  /// the functional zoo into that documented operating band without
  /// touching architecture or weights (bench_sparse_engine uses this).
  float lif_threshold_scale = 1.0f;

  [[nodiscard]] static ZooConfig full_scale() { return ZooConfig{}; }
  /// Small config for fast functional tests (extents /8, channels /4).
  [[nodiscard]] static ZooConfig test_scale() {
    return ZooConfig{32, 44, 8, 5};
  }
};

/// Identifiers for the zoo networks.
enum class NetworkId : std::uint8_t {
  kSpikeFlowNet,       ///< [7] hybrid, 12 layers (4 SNN + 8 ANN)
  kFusionFlowNet,      ///< [8] hybrid, 29 layers (10 SNN + 19 ANN)
  kAdaptiveSpikeNet,   ///< [1] SNN, 8 layers
  kHalsie,             ///< [16] hybrid, 16 layers (3 SNN + 13 ANN)
  kHidalgoDepth,       ///< [11] ANN, 15 layers
  kDotie,              ///< [13] SNN, 1 layer
  kEvFlowNet,          ///< [4] ANN, 14 layers (multi-task configs only)
};

[[nodiscard]] std::string to_string(NetworkId id);

/// Builds the given network at the given scale.
[[nodiscard]] NetworkSpec build_network(NetworkId id, const ZooConfig& cfg);

/// All Table 1 networks in paper order (excludes EV-FlowNet).
[[nodiscard]] std::vector<NetworkId> table1_networks();

/// Multi-task configurations of section 5.
struct MultiTaskConfig {
  std::string name;
  std::vector<NetworkId> networks;
};
[[nodiscard]] MultiTaskConfig multi_task_all_ann();
[[nodiscard]] MultiTaskConfig multi_task_all_snn();
[[nodiscard]] MultiTaskConfig multi_task_mixed();

// Individual builders (exposed for targeted tests).
[[nodiscard]] NetworkSpec build_spikeflownet(const ZooConfig& cfg);
[[nodiscard]] NetworkSpec build_fusionflownet(const ZooConfig& cfg);
[[nodiscard]] NetworkSpec build_adaptive_spikenet(const ZooConfig& cfg);
[[nodiscard]] NetworkSpec build_halsie(const ZooConfig& cfg);
[[nodiscard]] NetworkSpec build_hidalgo_depth(const ZooConfig& cfg);
[[nodiscard]] NetworkSpec build_dotie(const ZooConfig& cfg);
[[nodiscard]] NetworkSpec build_evflownet(const ZooConfig& cfg);

}  // namespace evedge::nn
