#include "nn/exec_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/engine.hpp"

namespace evedge::nn {

using sparse::DenseTensor;

std::string to_string(Route route) {
  switch (route) {
    case Route::kDense: return "dense";
    case Route::kSubmanifold: return "submanifold";
    case Route::kCsr: return "csr";
  }
  return "?";
}

bool TilePlan::enabled() const noexcept {
  return std::any_of(chains.begin(), chains.end(),
                     [](const TileChain& c) { return c.tiles > 1; });
}

int ExecutionPlan::sparse_node_count() const noexcept {
  int count = 0;
  for (const Route r : route) {
    if (r != Route::kDense) ++count;
  }
  return count;
}

bool ExecutionPlan::density_in_band(double live_density,
                                    double band) const noexcept {
  if (probe_input_density <= 0.0 || band < 1.0) return false;
  return live_density >= probe_input_density / band &&
         live_density <= probe_input_density * band;
}

std::string ExecutionPlan::describe(const NetworkSpec& spec) const {
  std::string out = spec.name + " execution plan (probe input density " +
                    std::to_string(probe_input_density) + "):\n";
  for (const LayerNode& node : spec.graph.nodes()) {
    const auto idx = static_cast<std::size_t>(node.id);
    if (idx >= route.size() || route[idx] == Route::kDense) continue;
    const auto pidx = node.parents.empty()
                          ? output_density.size()
                          : static_cast<std::size_t>(node.parents.front());
    const double d_in = pidx < output_density.size() ? output_density[pidx]
                                                     : 1.0;
    out += "  " + std::to_string(node.id) + " " + node.spec.name + " -> " +
           to_string(route[idx]) + " (input density " + std::to_string(d_in) +
           ")\n";
  }
  return out;
}

namespace {

/// Kinds the sparse routes can execute: the conv whose synaptic input is
/// a (possibly sparse) activation map. Transposed convs and FC layers
/// always consume the dense decoder/head activations here, so they are
/// not routed.
[[nodiscard]] bool routable_kind(LayerKind kind) noexcept {
  return kind == LayerKind::kConv || kind == LayerKind::kSpikingConv ||
         kind == LayerKind::kAdaptiveSpikingConv;
}

[[nodiscard]] bool all_zero(std::span<const float> v) noexcept {
  return std::all_of(v.begin(), v.end(),
                     [](float x) { return x == 0.0f; });
}

/// True when the layer satisfies the submanifold geometry contract
/// (stride 1, output extent == input extent).
[[nodiscard]] bool submanifold_geometry_ok(const LayerSpec& ls) noexcept {
  return ls.conv.stride == 1 && ls.out_shape.h == ls.in_shape.h &&
         ls.out_shape.w == ls.in_shape.w;
}

/// The dense-vs-sparse crossover, mirroring core/inference_cost's
/// per-layer route comparison with the measured kernel cost structure:
/// dense cost is the layer's MAC count; sparse cost is the gather tap
/// reduction (taps x output channels) plus the bookkeeping that
/// dominates the kernel away from the reduction — tap enumeration
/// (~nnz x k^2), output-entry emission (~active sites x Cout) — plus
/// the representation-boundary scans.
[[nodiscard]] bool sparse_wins(const LayerSpec& ls, double d_in,
                               bool chain_head, const PlannerOptions& opt) {
  d_in = std::clamp(d_in, 0.0, 1.0);
  const double dense_macs = static_cast<double>(ls.macs());
  if (dense_macs <= 0.0) return false;
  const double in_elems = static_cast<double>(ls.input_elements());
  const double out_elems = static_cast<double>(ls.output_elements());
  // Narrow spiking convs take the dense-output scatter route (see
  // engine / scatter_current_route): cost is the scattered multiply-adds
  // plus the chain-head sparsify — no site bookkeeping, no densify (the
  // dense output write replaces the dense kernel's own). Wide spiking
  // convs fall through to the gather model below (plus its densify
  // charge, which is exactly their CSR + densify execution).
  if (domain_of(ls.kind) == Domain::kSnn && scatter_current_route(ls.conv)) {
    const double k2s = static_cast<double>(ls.conv.kernel) *
                       static_cast<double>(ls.conv.kernel) /
                       (static_cast<double>(ls.conv.stride) *
                        static_cast<double>(ls.conv.stride));
    const double scatter_macs = d_in * in_elems * k2s *
                                static_cast<double>(ls.conv.out_channels);
    double cost = opt.scatter_cost_factor * scatter_macs;
    if (chain_head) cost += opt.sparsify_cost_per_element * in_elems;
    return opt.margin * cost < dense_macs;
  }
  const double in_pixels = static_cast<double>(ls.in_shape.h) *
                           static_cast<double>(ls.in_shape.w);
  const double out_pixels = static_cast<double>(ls.out_shape.h) *
                            static_cast<double>(ls.out_shape.w);
  const double cin = static_cast<double>(ls.conv.in_channels);
  const double cout = static_cast<double>(ls.conv.out_channels);
  const double k2 = static_cast<double>(ls.conv.kernel) *
                    static_cast<double>(ls.conv.kernel);
  const double stride2 = static_cast<double>(ls.conv.stride) *
                         static_cast<double>(ls.conv.stride);
  // Tap count: each input non-zero lands on ~k^2/stride^2 output sites.
  const double nnz_in = d_in * in_elems;
  const double est_taps = nnz_in * k2 / stride2;
  const double reduce_macs = est_taps * cout;
  // Active output sites: the per-pixel union of Cin independent channels
  // at density d_in, dilated by the kernel footprint, capped at the
  // plane.
  const double union_pixels =
      (1.0 - std::pow(1.0 - d_in, cin)) * in_pixels;
  const double est_sites =
      std::min(out_pixels, union_pixels * k2 / stride2);
  // Bookkeeping: tap enumeration visits every (non-zero, kernel tap)
  // pair twice (count + fill); emission touches every (site, channel)
  // accumulator once.
  const double overhead = nnz_in * k2 + est_sites * cout;
  // Boundary scans: sparsifying the input when the parent's carrier is
  // dense (chain head), and densifying the output (charged always —
  // conservative, since the consumer's route is not known yet; spiking
  // layers always densify for the LIF update).
  double boundary = opt.densify_cost_per_element * out_elems;
  if (chain_head) boundary += opt.sparsify_cost_per_element * in_elems;
  const double sparse_cost =
      opt.margin * (opt.reduce_cost_factor * reduce_macs +
                    opt.overhead_cost_factor * overhead + boundary);
  return sparse_cost < dense_macs;
}

/// Shared planning core over a filled output_density table.
[[nodiscard]] ExecutionPlan plan_impl(const FunctionalNetwork& net,
                                      std::vector<double> output_density,
                                      double probe_input_density,
                                      const PlannerOptions& options,
                                      bool event_input_parents_only) {
  const NetworkSpec& spec = net.spec();
  const std::size_t n = spec.graph.size();
  if (output_density.size() != n) {
    throw std::invalid_argument(
        "ExecutionPlanner: density table size mismatch");
  }
  ExecutionPlan plan;
  plan.route.assign(n, Route::kDense);
  plan.output_density = std::move(output_density);
  plan.probe_input_density = probe_input_density;

  const int event_input = spec.graph.input_ids().front();
  for (const LayerNode& node : spec.graph.nodes()) {
    const auto idx = static_cast<std::size_t>(node.id);
    const LayerSpec& ls = node.spec;
    if (!routable_kind(ls.kind) || node.parents.size() != 1) continue;
    const int parent = node.parents.front();
    if (event_input_parents_only && parent != event_input) continue;
    // The CSR kernels add bias at active sites only; zero bias is what
    // makes the sparse routes numerically identical to dense execution.
    if (!all_zero(net.bias(node.id))) continue;
    const auto pidx = static_cast<std::size_t>(parent);
    const double d_in = plan.output_density[pidx];
    // Chain head: the parent's carrier is dense unless the parent is a
    // plain conv that was itself routed sparse (spiking outputs always
    // materialize densely through the LIF state).
    const bool parent_chains =
        plan.route[pidx] != Route::kDense &&
        spec.graph.node(parent).spec.kind == LayerKind::kConv;
    if (!sparse_wins(ls, d_in, /*chain_head=*/!parent_chains, options)) {
      continue;
    }
    // Narrow spiking convs were approved on the scatter-route cost model
    // and must stay kCsr so the engine's scatter dispatch (and its
    // dense-exact numerics) actually applies — kSubmanifold would run
    // the gather+densify path the approval never costed.
    const bool scatter_snn = domain_of(ls.kind) == Domain::kSnn &&
                             scatter_current_route(ls.conv);
    plan.route[idx] = options.allow_submanifold && !scatter_snn &&
                              submanifold_geometry_ok(ls)
                          ? Route::kSubmanifold
                          : Route::kCsr;
  }
  plan.tiles = build_tile_plan(spec, plan, options.tile);
  return plan;
}

}  // namespace

TilePlan build_tile_plan(const NetworkSpec& spec, const ExecutionPlan& plan,
                         const TileOptions& options) {
  TilePlan tiles;
  if (plan.route.empty()) return tiles;

  // Choose tile geometry for one closed chain and record it.
  const auto close_chain = [&](std::vector<int> nodes) {
    const LayerSpec& exit_ls =
        spec.graph.node(nodes.back()).spec;
    const int exit_h = exit_ls.out_shape.h;
    TileChain chain;
    chain.nodes = std::move(nodes);
    chain.tile_rows = std::max(exit_h, 1);
    chain.tiles = 1;
    if (options.enable && exit_h > 0) {
      if (options.forced_tile_rows > 0) {
        chain.tile_rows = std::min(options.forced_tile_rows, exit_h);
        chain.tiles = (exit_h + chain.tile_rows - 1) / chain.tile_rows;
      } else if (chain.nodes.size() >= 2) {
        // Cache-capacity model: bytes of chain activation state touched
        // per exit-layer output row, scaled by each layer's row ratio.
        // Spiking layers triple-count (dense current window + U[t-1]
        // read + U[t] write); weights (packed [tap][oc] form) are a
        // fixed per-tile charge.
        std::size_t fixed_bytes = 0;
        double row_bytes = 0.0;
        for (const int id : chain.nodes) {
          const LayerSpec& ls = spec.graph.node(id).spec;
          fixed_bytes += static_cast<std::size_t>(ls.conv.in_channels) *
                         static_cast<std::size_t>(ls.conv.kernel) *
                         static_cast<std::size_t>(ls.conv.kernel) *
                         static_cast<std::size_t>(ls.conv.out_channels) *
                         sizeof(float);
          const double planes =
              domain_of(ls.kind) == Domain::kSnn ? 3.0 : 1.0;
          row_bytes += static_cast<double>(ls.out_shape.h) /
                       static_cast<double>(exit_h) *
                       static_cast<double>(ls.out_shape.n) *
                       static_cast<double>(ls.out_shape.c) *
                       static_cast<double>(ls.out_shape.w) * sizeof(float) *
                       planes;
        }
        const double total = row_bytes * static_cast<double>(exit_h);
        const double budget = static_cast<double>(options.l2_budget_bytes);
        if (total + static_cast<double>(fixed_bytes) > budget) {
          const double avail =
              budget > static_cast<double>(fixed_bytes)
                  ? budget - static_cast<double>(fixed_bytes)
                  : budget * 0.25;
          int count = static_cast<int>(std::ceil(total / avail));
          count = std::clamp(count, 1, exit_h);
          int rows = (exit_h + count - 1) / count;
          // Halo floor: below ~8 exit rows the per-tile halo recompute
          // overwhelms the locality win.
          rows = std::max(rows, std::min(exit_h, 8));
          chain.tile_rows = rows;
          chain.tiles = (exit_h + rows - 1) / rows;
        }
      }
    }
    tiles.chains.push_back(std::move(chain));
  };

  std::vector<int> current;
  for (const LayerNode& node : spec.graph.nodes()) {
    const bool eligible = routable_kind(node.spec.kind) &&
                          node.parents.size() == 1 &&
                          plan.route_of(node.id) != Route::kDense;
    if (eligible && !current.empty() && node.id == current.back() + 1 &&
        node.parents.front() == current.back()) {
      current.push_back(node.id);
      continue;
    }
    if (!current.empty()) close_chain(std::move(current));
    current.clear();
    if (eligible) current.push_back(node.id);
  }
  if (!current.empty()) close_chain(std::move(current));
  return tiles;
}

ExecutionPlan ExecutionPlanner::plan_from_densities(
    const FunctionalNetwork& net, std::span<const double> output_density,
    double probe_input_density, const PlannerOptions& options) {
  return plan_impl(net,
                   std::vector<double>(output_density.begin(),
                                       output_density.end()),
                   probe_input_density, options,
                   /*event_input_parents_only=*/false);
}

ExecutionPlan ExecutionPlanner::calibrate(FunctionalNetwork& net,
                                          std::span<const ProbeInput> probes,
                                          const PlannerOptions& options) {
  if (probes.empty()) {
    throw std::invalid_argument("ExecutionPlanner::calibrate: no probes");
  }
  const NetworkSpec& spec = net.spec();
  const std::size_t n = spec.graph.size();
  std::vector<double> acc(n, 0.0);
  std::vector<std::size_t> hits(n, 0);

  // Scoped density hook: accumulates mean non-zero fraction per node over
  // every probe timestep, then always restores the caller's hook (the
  // hook also forces the warmup runs dense, so an already-installed
  // execution plan cannot skew its own calibration).
  FunctionalNetwork::ActivationHook previous = net.set_activation_hook(
      [&acc, &hits](int node_id, DenseTensor& activation) {
        acc[static_cast<std::size_t>(node_id)] += activation.density();
        ++hits[static_cast<std::size_t>(node_id)];
      });
  try {
    for (const ProbeInput& probe : probes) {
      (void)net.run(probe.event_steps, probe.image);
    }
  } catch (...) {
    net.set_activation_hook(std::move(previous));
    throw;
  }
  net.set_activation_hook(std::move(previous));

  std::vector<double> density(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (hits[i] > 0) density[i] = acc[i] / static_cast<double>(hits[i]);
  }
  // Input nodes never fire the hook; measure them from the probe tensors.
  const auto input_ids = spec.graph.input_ids();
  double event_acc = 0.0;
  std::size_t event_hits = 0;
  double image_acc = 0.0;
  std::size_t image_hits = 0;
  for (const ProbeInput& probe : probes) {
    for (const DenseTensor& step : probe.event_steps) {
      event_acc += step.density();
      ++event_hits;
    }
    if (probe.image != nullptr) {
      image_acc += probe.image->density();
      ++image_hits;
    }
  }
  const double event_density =
      event_hits > 0 ? event_acc / static_cast<double>(event_hits) : 0.0;
  density[static_cast<std::size_t>(input_ids.front())] = event_density;
  if (input_ids.size() > 1) {
    density[static_cast<std::size_t>(input_ids.back())] =
        image_hits > 0 ? image_acc / static_cast<double>(image_hits) : 1.0;
  }
  return plan_impl(net, std::move(density), event_density, options,
                   /*event_input_parents_only=*/false);
}

ExecutionPlan ExecutionPlanner::calibrate(
    FunctionalNetwork& net, std::span<const sparse::DenseTensor> event_steps,
    const sparse::DenseTensor* image, const PlannerOptions& options) {
  const ProbeInput probe{event_steps, image};
  return calibrate(net, std::span<const ProbeInput>(&probe, 1), options);
}

ExecutionPlan ExecutionPlanner::cold_start(const FunctionalNetwork& net,
                                           const PlannerOptions& options) {
  const NetworkSpec& spec = net.spec();
  std::vector<double> density(spec.graph.size(), 1.0);
  density[static_cast<std::size_t>(spec.graph.input_ids().front())] =
      options.cold_start_input_density;
  return plan_impl(net, std::move(density), options.cold_start_input_density,
                   options, /*event_input_parents_only=*/true);
}

}  // namespace evedge::nn
