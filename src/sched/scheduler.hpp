#pragma once

// List scheduler implementing the paper's latency estimation (§4.3.2,
// Eq. 3): one execution queue per device plus a unified-memory queue for
// the inserted data-transfer nodes; nodes are serialized within queues
// following the data-dependency partial order; then
//
//   End_T(node) = max(End_T(parents)..., CurDeviceQ_T) + Exec_T(node)
//   CriticalPathLatency = max(End_T(all nodes))
//
// The scheduler also accumulates per-PE busy time so the energy of the
// candidate falls out of the same pass.

#include <string>
#include <vector>

#include "hw/energy_model.hpp"
#include "sched/mapping.hpp"

namespace evedge::sched {

/// One scheduled operation (a layer execution or a data transfer).
struct ScheduledOp {
  int task = -1;
  int node_id = -1;      ///< graph node (for comm ops: the consumer node)
  bool is_comm = false;
  int queue = -1;        ///< PE id, or platform.pe_count() for memory queue
  double start_us = 0.0;
  double end_us = 0.0;
  Precision precision = Precision::kFp32;
};

struct ScheduleResult {
  std::vector<ScheduledOp> ops;
  double makespan_us = 0.0;
  /// Per-task critical-path latency (end time of the task's last op).
  std::vector<double> task_latency_us;
  /// Objective of Eq. 2: max over tasks.
  double max_task_latency_us = 0.0;
  /// Energy over the makespan (busy + transfers + idle).
  double energy_mj = 0.0;
};

/// Schedules the candidate. `specs` provide graph structure, `profiles`
/// the per-(node, PE, precision) execution times.
[[nodiscard]] ScheduleResult schedule(
    const std::vector<nn::NetworkSpec>& specs,
    const std::vector<hw::TaskProfile>& profiles,
    const MappingCandidate& candidate, const hw::Platform& platform);

/// Multi-line textual Gantt rendering (one row per queue) for examples
/// and debugging.
[[nodiscard]] std::string format_gantt(const ScheduleResult& result,
                                       const hw::Platform& platform,
                                       int columns = 80);

/// CSV export: task,node,is_comm,queue,start_us,end_us,precision.
void write_gantt_csv(const ScheduleResult& result, const std::string& path);

}  // namespace evedge::sched
