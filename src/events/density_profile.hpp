#pragma once

// Temporal event-density profiles. MVSEC / DENSE recordings are not
// redistributable here, so the reproduction replays their *statistics*:
// a DensityProfile maps time to a target sensor-wide event rate, and the
// PoissonEventSynthesizer (event_synth.hpp) realizes an event stream with
// that rate. Presets are shaped after the sequences the paper evaluates:
//
//  - indoor_flying1/2: drone hover-dash-hover patterns; long quiet spans
//    punctuated by large bursts (the Fig. 5 shape).
//  - outdoor_day1: continuous driving texture; high, comparatively steady
//    rate with mild traffic modulations.
//  - dense_town10: synthetic town flythrough (DENSE dataset); smooth
//    periodic rate swings.
//
// Rates are expressed per pixel per second so profiles transfer across
// sensor resolutions (tests run on small grids, benches on DAVIS346).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "events/event.hpp"

namespace evedge::events {

/// One Gaussian activity burst centered at t_center seconds.
struct Burst {
  double t_center_s = 0.0;
  double width_s = 0.2;      ///< Gaussian sigma
  double peak_rate = 8.0;    ///< added events/s/pixel at the center
};

/// Piecewise-analytic density profile:
///   rate(t) = base + sum(bursts) + sin-modulation, clamped to >= 0.
class DensityProfile {
 public:
  DensityProfile(std::string name, double base_rate_per_px,
                 std::vector<Burst> bursts, double mod_amplitude,
                 double mod_period_s);

  /// Sensor-wide expected rate at time t, events/second/pixel.
  [[nodiscard]] double rate_per_pixel(double t_s) const noexcept;

  /// rate_per_pixel integrated over [t0, t1] via midpoint rule (n steps).
  [[nodiscard]] double mean_rate_per_pixel(double t0_s, double t1_s,
                                           int steps = 256) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Burst>& bursts() const noexcept {
    return bursts_;
  }

  // --- Presets shaped after the paper's evaluation sequences. ---
  [[nodiscard]] static DensityProfile indoor_flying1();
  [[nodiscard]] static DensityProfile indoor_flying2();
  [[nodiscard]] static DensityProfile outdoor_day1();
  [[nodiscard]] static DensityProfile dense_town10();

 private:
  std::string name_;
  double base_rate_per_px_;
  std::vector<Burst> bursts_;
  double mod_amplitude_;
  double mod_period_s_;
};

}  // namespace evedge::events
