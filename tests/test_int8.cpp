// Tests for the real INT8 execution subsystem: kernel-level parity with
// the fake-quant float reference, dense/sparse int8 agreement, the
// engine's per-layer precision plan (mixed FP32/INT8 routing, batched
// bitwise parity) and the zoo-wide one-quantization-step contract.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "nn/engine.hpp"
#include "nn/kernels.hpp"
#include "nn/zoo.hpp"
#include "quant/calibrate.hpp"
#include "quant/int8_kernels.hpp"
#include "quant/qnetwork.hpp"
#include "quant/quantizer.hpp"
#include "sparse/sparse_ops.hpp"

namespace eq = evedge::quant;
namespace en = evedge::nn;
namespace es = evedge::sparse;

namespace {

es::DenseTensor random_tensor(const es::TensorShape& shape,
                              std::uint64_t seed, float range = 1.0f) {
  es::DenseTensor t(shape);
  t.fill_random(seed, range);
  return t;
}

/// Keeps roughly `density` of the elements (deterministic mask).
es::DenseTensor sparsify(es::DenseTensor t, double density) {
  const auto keep_every =
      density > 0.0 ? static_cast<std::size_t>(1.0 / density) : t.size();
  std::size_t i = 0;
  for (float& v : t.data()) {
    if (i++ % keep_every != 0) v = 0.0f;
  }
  return t;
}

/// The float fake-quant reference of one int8 conv: quantize the input
/// on the shared grid, convolve with the per-channel fake weights.
es::DenseTensor reference_conv(const es::DenseTensor& input,
                               const eq::Int8ConvWeights& w,
                               std::span<const float> bias,
                               eq::Int8Scale input_scale) {
  es::DenseTensor q;
  eq::quantize_activations_reference(input, input_scale, q);
  return en::conv2d(q, w.fake, bias, w.spec);
}

}  // namespace

// ------------------------------------------------------- weight quantizer

TEST(Int8Weights, PerChannelScalesMatchChannelRanges) {
  const es::Conv2dSpec spec{3, 4, 3, 1, 1};
  auto weights = random_tensor({4, 3, 3, 3}, 11, 0.5f);
  const auto q = eq::quantize_conv_weights(weights, spec);
  ASSERT_EQ(q.scale.size(), 4u);
  for (int oc = 0; oc < 4; ++oc) {
    const float* row = weights.raw() + oc * weights.stride_n();
    const float range = eq::max_abs(
        std::span<const float>(row, weights.stride_n()));
    EXPECT_FLOAT_EQ(q.scale[static_cast<std::size_t>(oc)], range / 127.0f);
  }
  // Canonical int8, widened (padded-stride) and packed layouts agree;
  // padding lanes are exact zeros.
  const std::size_t patch = q.patch;
  ASSERT_GE(q.padded_patch, patch);
  EXPECT_EQ(q.padded_patch % 8, 0u);
  for (std::size_t oc = 0; oc < 4; ++oc) {
    for (std::size_t r = 0; r < patch; ++r) {
      EXPECT_EQ(q.q[oc * patch + r], q.wide[oc * q.padded_patch + r]);
      EXPECT_EQ(q.wide[oc * q.padded_patch + r], q.packed[r * 4 + oc]);
    }
    for (std::size_t r = patch; r < q.padded_patch; ++r) {
      EXPECT_EQ(q.wide[oc * q.padded_patch + r], 0);
    }
  }
}

TEST(Int8Weights, PerTensorFakeMatchesFakeQuantize) {
  const es::Conv2dSpec spec{2, 3, 3, 1, 1};
  auto weights = random_tensor({3, 2, 3, 3}, 13, 0.3f);
  const auto q = eq::quantize_conv_weights(
      weights, spec, eq::WeightGranularity::kPerTensor);
  auto expected = weights;
  eq::fake_quantize(expected, eq::Precision::kInt8);
  EXPECT_EQ(es::max_abs_diff(q.fake, expected), 0.0f);
}

TEST(Int8Weights, RejectsShapeMismatchAndOversizedPatch) {
  const es::Conv2dSpec spec{2, 3, 3, 1, 1};
  EXPECT_THROW((void)eq::quantize_conv_weights(
                   random_tensor({3, 2, 5, 5}, 1), spec),
               std::invalid_argument);
  // patch = 14795 * 9 = 133155 >= 2^31 / 127^2: int32 accumulation
  // could overflow, so preparation must refuse.
  const es::Conv2dSpec big{14795, 1, 3, 1, 1};
  EXPECT_THROW((void)eq::quantize_conv_weights(
                   random_tensor({1, 14795, 3, 3}, 2, 0.01f), big),
               std::invalid_argument);
}

// ------------------------------------------------------ dense kernel parity

TEST(Int8Kernels, ConvMatchesFakeQuantReferenceAcrossShapes) {
  struct Case {
    es::TensorShape in;
    es::Conv2dSpec spec;
  };
  const Case cases[] = {
      {{2, 3, 16, 20}, {3, 8, 3, 1, 1}},
      {{1, 4, 17, 13}, {4, 6, 3, 2, 1}},
      {{1, 8, 12, 12}, {8, 5, 1, 1, 0}},   // oc not a multiple of 4
      {{2, 2, 20, 24}, {2, 16, 5, 2, 2}},
  };
  es::Workspace ws;
  int c = 0;
  for (const Case& tc : cases) {
    const auto input = random_tensor(tc.in, 100 + c, 2.0f);
    const auto weights = random_tensor(
        {tc.spec.out_channels, tc.spec.in_channels, tc.spec.kernel,
         tc.spec.kernel},
        200 + c, 0.4f);
    std::vector<float> bias(static_cast<std::size_t>(tc.spec.out_channels));
    for (std::size_t i = 0; i < bias.size(); ++i) {
      bias[i] = 0.01f * static_cast<float>(i) - 0.05f;
    }
    const auto q = eq::quantize_conv_weights(weights, tc.spec);
    const auto s_x = eq::Int8Scale::for_range(eq::max_abs(input.data()));

    const auto got = eq::int8_conv2d(input, q, bias, s_x, &ws);
    const auto want = reference_conv(input, q, bias, s_x);
    ASSERT_EQ(got.shape(), want.shape()) << "case " << c;
    // Integer accumulation is exact; the float reference only differs by
    // accumulation rounding — far below one quantization step.
    const double step = eq::output_quant_step(want);
    EXPECT_LE(es::max_abs_diff(got, want), 0.05 * step) << "case " << c;
    ++c;
  }
}

TEST(Int8Kernels, TransposedConvMatchesFakeQuantReference) {
  const es::Conv2dSpec spec{4, 3, 4, 2, 1};
  const auto input = random_tensor({2, 4, 9, 11}, 31, 1.5f);
  const auto weights = random_tensor({3, 4, 4, 4}, 32, 0.3f);
  const std::vector<float> bias{0.1f, -0.2f, 0.05f};
  const auto q = eq::quantize_conv_weights(weights, spec);
  const auto s_x = eq::Int8Scale::for_range(eq::max_abs(input.data()));

  const auto got = eq::int8_transposed_conv2d(input, q, bias, s_x);
  es::DenseTensor qin;
  eq::quantize_activations_reference(input, s_x, qin);
  const auto want = en::transposed_conv2d(qin, q.fake, bias, spec);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_LE(es::max_abs_diff(got, want),
            0.05 * eq::output_quant_step(want) + 1e-6);
}

TEST(Int8Kernels, FullyConnectedMatchesFakeQuantReference) {
  const auto input = random_tensor({2, 6, 4, 5}, 41, 1.0f);
  const auto weights = random_tensor({10, 120, 1, 1}, 42, 0.2f);
  const es::Conv2dSpec spec{120, 10, 1, 1, 0};
  const std::vector<float> bias(10, 0.02f);
  const auto q = eq::quantize_conv_weights(weights, spec);
  const auto s_x = eq::Int8Scale::for_range(eq::max_abs(input.data()));

  const auto got = eq::int8_fully_connected(input, q, bias, s_x);
  es::DenseTensor qin;
  eq::quantize_activations_reference(input, s_x, qin);
  const auto want = en::fully_connected(qin, q.fake, bias);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_LE(es::max_abs_diff(got, want),
            0.05 * eq::output_quant_step(want) + 1e-6);
}

// ----------------------------------------------------- sparse kernel parity

TEST(Int8Kernels, SubmanifoldBitMatchesDenseInt8AtActiveSites) {
  const es::Conv2dSpec spec{3, 9, 3, 1, 1};
  const auto dense_in = sparsify(random_tensor({1, 3, 24, 30}, 51), 0.05);
  const auto channels = es::dense_to_channels(dense_in);
  const auto weights = random_tensor({9, 3, 3, 3}, 52, 0.3f);
  std::vector<float> bias(9, 0.125f);
  const auto q = eq::quantize_conv_weights(weights, spec);
  const auto s_x = eq::Int8Scale::for_range(eq::max_abs(dense_in.data()));

  es::Workspace ws;
  es::ConvWork work;
  const auto got =
      eq::int8_submanifold_conv2d(channels, q, bias, s_x, &work, &ws);
  const auto dense_out = eq::int8_conv2d(dense_in, q, bias, s_x, &ws);

  ASSERT_EQ(got.size(), 9u);
  std::size_t checked = 0;
  for (std::size_t oc = 0; oc < got.size(); ++oc) {
    for (const es::CooEntry& e : got[oc].entries()) {
      // Same exact integer sum, same float requantization: bitwise equal.
      EXPECT_EQ(e.value,
                dense_out.at(0, static_cast<int>(oc), e.row, e.col));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_GT(work.sparse_macs, 0u);
  EXPECT_LT(work.sparse_macs, work.dense_macs);
}

TEST(Int8Kernels, SparseCsrBitMatchesDenseInt8AtActiveSites) {
  const es::Conv2dSpec spec{2, 8, 3, 2, 1};
  const auto dense_in = sparsify(random_tensor({1, 2, 26, 34}, 61), 0.03);
  const auto channels = es::dense_to_channels(dense_in);
  const auto weights = random_tensor({8, 2, 3, 3}, 62, 0.25f);
  const auto q = eq::quantize_conv_weights(weights, spec);
  const auto s_x = eq::Int8Scale::for_range(eq::max_abs(dense_in.data()));

  es::Workspace ws;
  const auto got = eq::int8_sparse_conv2d_csr(channels, q, {}, s_x,
                                              nullptr, &ws);
  const auto dense_out = eq::int8_conv2d(dense_in, q, {}, s_x, &ws);
  std::size_t checked = 0;
  for (std::size_t oc = 0; oc < got.size(); ++oc) {
    // CSR output channels are sorted (chainable into the float kernels).
    EXPECT_NO_THROW((void)got[oc].row_ptr());
    for (const es::CooEntry& e : got[oc].entries()) {
      EXPECT_EQ(e.value,
                dense_out.at(0, static_cast<int>(oc), e.row, e.col));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Int8Kernels, GatherScratchRestoredBetweenSparseCalls) {
  const es::Conv2dSpec spec{2, 4, 3, 1, 1};
  const auto a = es::dense_to_channels(
      sparsify(random_tensor({1, 2, 18, 18}, 71), 0.04));
  const auto b = es::dense_to_channels(
      sparsify(random_tensor({1, 2, 18, 18}, 72), 0.04));
  const auto weights = random_tensor({4, 2, 3, 3}, 73, 0.3f);
  const auto q = eq::quantize_conv_weights(weights, spec);
  const auto s_x = eq::Int8Scale{0.05f};

  es::Workspace ws;
  const auto b_fresh = eq::int8_submanifold_conv2d(b, q, {}, s_x, nullptr,
                                                   &ws);
  (void)eq::int8_submanifold_conv2d(a, q, {}, s_x, nullptr, &ws);
  const auto b_again = eq::int8_submanifold_conv2d(b, q, {}, s_x, nullptr,
                                                   &ws);
  EXPECT_EQ(es::max_abs_diff(es::channels_to_dense(b_fresh),
                             es::channels_to_dense(b_again)),
            0.0f);
}

// --------------------------------------------------------- engine plan

namespace {

eq::PrecisionMap alternating_int8(const en::NetworkSpec& spec) {
  eq::PrecisionMap map;
  int i = 0;
  for (const auto& node : spec.graph.nodes()) {
    if (en::is_weight_layer(node.spec.kind) && (i++ % 2 == 0)) {
      map[node.id] = eq::Precision::kInt8;
    }
  }
  return map;
}

}  // namespace

TEST(Int8Engine, MixedPrecisionRoutesPerLayer) {
  const auto spec =
      en::build_network(en::NetworkId::kEvFlowNet, en::ZooConfig::test_scale());
  const auto calib = eq::make_validation_set(spec, 2, 7);
  const auto eval = eq::make_validation_set(spec, 1, 77);

  eq::QuantizedNetwork mixed(spec, 5, alternating_int8(spec), calib);
  eq::QuantizedNetwork full(
      spec, 5, eq::uniform_assignment(spec, eq::Precision::kInt8), calib);

  const auto out_fp32 = mixed.run_fp32(eval[0].event_steps);
  const auto out_mixed = mixed.run(eval[0].event_steps);
  const auto out_full = full.run(eval[0].event_steps);
  // Quantizing some layers moves the output; quantizing all moves it
  // further / differently — per-layer routing is real.
  EXPECT_GT(es::max_abs_diff(out_mixed, out_fp32), 0.0f);
  EXPECT_GT(es::max_abs_diff(out_full, out_mixed), 0.0f);
}

TEST(Int8Engine, RealMatchesReferenceWithinOneStepAcrossZoo) {
  std::vector<en::NetworkId> ids = en::table1_networks();
  ids.push_back(en::NetworkId::kEvFlowNet);
  for (const auto id : ids) {
    const auto spec = en::build_network(id, en::ZooConfig::test_scale());
    const auto calib = eq::make_validation_set(spec, 2, 9);
    const auto eval = eq::make_validation_set(spec, 1, 99);
    // Opt out of the input-layer FP32 guard: this is a kernel-parity
    // contract over EVERY layer, not a deployment-policy test (and
    // DOTIE's only layer is the guarded one).
    eq::QuantizedNetwork qnet(
        spec, 7, eq::uniform_assignment(spec, eq::Precision::kInt8), calib,
        eq::WeightGranularity::kPerChannel,
        eq::QuantPlanOptions{.quantize_input_layer = true});

    const auto* image =
        eval[0].image.has_value() ? &eval[0].image.value() : nullptr;
    const auto real = qnet.run(eval[0].event_steps, image);
    const auto reference = qnet.run_reference(eval[0].event_steps, image);
    ASSERT_EQ(real.shape(), reference.shape()) << spec.name;
    const double step = eq::output_quant_step(reference);
    EXPECT_LE(es::max_abs_diff(real, reference), step + 1e-6) << spec.name;
    // And quantization is actually happening (int8 output differs from
    // FP32 — random-weight activations never land exactly on the grid).
    const auto fp32 = qnet.run_fp32(eval[0].event_steps, image);
    EXPECT_GT(es::max_abs_diff(real, fp32), 0.0f) << spec.name;
  }
}

TEST(Int8Engine, BatchedRunBitMatchesPerSample) {
  const auto spec =
      en::build_network(en::NetworkId::kEvFlowNet, en::ZooConfig::test_scale());
  const auto calib = eq::make_validation_set(spec, 2, 11);
  eq::QuantizedNetwork qnet(
      spec, 3, eq::uniform_assignment(spec, eq::Precision::kInt8), calib);

  constexpr int kBatch = 3;
  const auto samples = eq::make_validation_set(spec, kBatch, 111);
  // Stack the per-sample steps into [N, C, H, W] batch tensors.
  std::vector<es::DenseTensor> batched_steps;
  for (int t = 0; t < spec.timesteps; ++t) {
    const es::TensorShape s = samples[0].event_steps[0].shape();
    es::DenseTensor step(es::TensorShape{kBatch, s.c, s.h, s.w});
    for (int n = 0; n < kBatch; ++n) {
      const auto& src = samples[static_cast<std::size_t>(n)]
                            .event_steps[static_cast<std::size_t>(t)];
      std::copy(src.raw(), src.raw() + src.size(),
                step.raw() + static_cast<std::size_t>(n) * step.stride_n());
    }
    batched_steps.push_back(std::move(step));
  }

  const auto batched = qnet.run_batched(batched_steps);
  ASSERT_EQ(batched.shape().n, kBatch);
  for (int n = 0; n < kBatch; ++n) {
    const auto single =
        qnet.run(samples[static_cast<std::size_t>(n)].event_steps);
    const float* b = batched.raw() +
                     static_cast<std::size_t>(n) * batched.stride_n();
    const float* s = single.raw();
    for (std::size_t i = 0; i < single.size(); ++i) {
      ASSERT_EQ(b[i], s[i]) << "sample " << n << " element " << i;
    }
  }
}

TEST(Int8Engine, WorkspaceStopsGrowingOnceWarm) {
  const auto spec =
      en::build_network(en::NetworkId::kEvFlowNet, en::ZooConfig::test_scale());
  const auto calib = eq::make_validation_set(spec, 2, 13);
  eq::QuantizedNetwork qnet(
      spec, 3, eq::uniform_assignment(spec, eq::Precision::kInt8), calib);
  const auto eval = eq::make_validation_set(spec, 1, 131);
  (void)qnet.run(eval[0].event_steps);
  const std::size_t warm = qnet.network().workspace().retained_bytes();
  EXPECT_GT(warm, 0u);
  for (int i = 0; i < 3; ++i) (void)qnet.run(eval[0].event_steps);
  EXPECT_EQ(qnet.network().workspace().retained_bytes(), warm);
}

TEST(Int8Kernels, PadFreeConvIsThreadCountInvariant) {
  // padding = 0 makes every row's last pixel take the interior chunked
  // copy, and Cin*k*k = 72 (multiple of 8 before overrun room) is the
  // layout where a chunk overrun would cross into the next worker's
  // first column row — the regression this pins is that results are
  // identical for any worker count.
  const es::Conv2dSpec spec{8, 12, 3, 1, 0};
  const auto input = random_tensor({1, 8, 40, 52}, 81, 1.0f);
  const auto weights = random_tensor({12, 8, 3, 3}, 82, 0.3f);
  const auto q = eq::quantize_conv_weights(weights, spec);
  const auto s_x = eq::Int8Scale::for_range(eq::max_abs(input.data()));

  setenv("EVEDGE_THREADS", "1", 1);
  const auto serial = eq::int8_conv2d(input, q, {}, s_x);
  setenv("EVEDGE_THREADS", "4", 1);
  const auto threaded = eq::int8_conv2d(input, q, {}, s_x);
  unsetenv("EVEDGE_THREADS");
  EXPECT_EQ(es::max_abs_diff(serial, threaded), 0.0f);

  const auto want = reference_conv(input, q, {}, s_x);
  EXPECT_LE(es::max_abs_diff(serial, want),
            0.05 * eq::output_quant_step(want) + 1e-6);
}

TEST(Int8Engine, RejectedPlanLeavesExecutionModeIntact) {
  const auto spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto calib = eq::make_validation_set(spec, 2, 19);
  const auto eval = eq::make_validation_set(spec, 1, 191);
  en::FunctionalNetwork net(spec, 1);
  const auto table = eq::calibrate_activations(net, calib);
  const auto before = net.run(eval[0].event_steps);

  // A plan whose first entry is valid but whose second is not must be
  // rejected atomically — no half-installed int8 routing. (DOTIE's only
  // layer reads the 2-channel input, so opt out of the FP32 guard to
  // get a non-empty plan.)
  eq::QuantPlan plan = eq::build_quant_plan(
      net, eq::uniform_assignment(spec, eq::Precision::kInt8), table,
      /*simulate=*/false, eq::WeightGranularity::kPerChannel,
      eq::QuantPlanOptions{.quantize_input_layer = true});
  ASSERT_FALSE(plan.nodes.empty());
  eq::NodeQuantPlan bad;
  bad.node_id = spec.graph.input_ids().front();
  plan.nodes.push_back(std::move(bad));
  EXPECT_THROW(net.set_quant_plan(&plan), std::invalid_argument);

  const auto after = net.run(eval[0].event_steps);
  EXPECT_EQ(es::max_abs_diff(before, after), 0.0f);
}

TEST(Int8Engine, BuildQuantPlanRejectsUncalibratedTable) {
  const auto spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 1);
  const eq::CalibrationTable empty;
  EXPECT_THROW(
      (void)eq::build_quant_plan(
          net, eq::uniform_assignment(spec, eq::Precision::kInt8), empty,
          /*simulate=*/false, eq::WeightGranularity::kPerChannel,
          eq::QuantPlanOptions{.quantize_input_layer = true}),
      std::invalid_argument);
}

// The default plan keeps sensor-facing narrow input layers FP32 (the
// 2-channel DAVIS conv is im2col-bound in int8 — ROADMAP); the opt-out
// flag restores unguarded behavior.
TEST(Int8Engine, BuildQuantPlanKeepsNarrowInputLayerFp32ByDefault) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 1);
  const auto calib = eq::make_validation_set(spec, 2, 23);
  const auto table = eq::calibrate_activations(net, calib);
  const auto precisions =
      eq::uniform_assignment(spec, eq::Precision::kInt8);

  // The first weight layer (enc1) reads the 2-channel event input.
  int first_layer = -1;
  for (const auto& node : spec.graph.nodes()) {
    if (en::is_weight_layer(node.spec.kind)) {
      first_layer = node.id;
      break;
    }
  }
  ASSERT_GE(first_layer, 0);

  const auto guarded = eq::build_quant_plan(net, precisions, table);
  const auto unguarded = eq::build_quant_plan(
      net, precisions, table, /*simulate=*/false,
      eq::WeightGranularity::kPerChannel,
      eq::QuantPlanOptions{.quantize_input_layer = true});
  const auto has_node = [](const eq::QuantPlan& plan, int id) {
    for (const auto& nq : plan.nodes) {
      if (nq.node_id == id) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_node(guarded, first_layer));
  EXPECT_TRUE(has_node(unguarded, first_layer));
  // Everything deeper quantizes either way.
  EXPECT_EQ(guarded.nodes.size() + 1, unguarded.nodes.size());
}

TEST(Int8Engine, SetQuantPlanRejectsNonWeightNodes) {
  const auto spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 1);
  eq::QuantPlan plan;
  eq::NodeQuantPlan bad;
  bad.node_id = spec.graph.input_ids().front();  // input: no weights
  plan.nodes.push_back(std::move(bad));
  EXPECT_THROW(net.set_quant_plan(&plan), std::invalid_argument);
  // And the rejected plan leaves the engine runnable in FP32.
  const auto eval = eq::make_validation_set(spec, 1, 5);
  EXPECT_NO_THROW((void)net.run(eval[0].event_steps));
}

TEST(Int8Engine, CalibrationRecordsInputAndActivationRanges) {
  const auto spec =
      en::build_network(en::NetworkId::kEvFlowNet, en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 1);
  const auto samples = eq::make_validation_set(spec, 2, 17);
  const auto table = eq::calibrate_activations(net, samples);
  EXPECT_GT(table.range_of(spec.graph.input_ids().front()), 0.0f);
  int covered = 0;
  for (const auto& node : spec.graph.nodes()) {
    if (en::is_weight_layer(node.spec.kind) &&
        table.range_of(node.id) > 0.0f) {
      ++covered;
    }
  }
  EXPECT_GT(covered, 0);
  EXPECT_FLOAT_EQ(table.range_of(-99), 0.0f);
}
