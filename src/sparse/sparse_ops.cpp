#include "sparse/sparse_ops.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/parallel.hpp"

namespace evedge::sparse {

void validate_conv_spec(const Conv2dSpec& spec) {
  if (spec.in_channels <= 0 || spec.out_channels <= 0) {
    throw std::invalid_argument("conv channels must be positive");
  }
  if (spec.kernel <= 0 || spec.stride <= 0 || spec.padding < 0) {
    throw std::invalid_argument("conv kernel/stride/padding invalid");
  }
}

int conv_out_extent(int in_extent, int kernel, int stride, int padding) {
  const int numerator = in_extent + 2 * padding - kernel;
  if (numerator < 0) {
    throw std::invalid_argument("conv kernel larger than padded input");
  }
  return numerator / stride + 1;
}

namespace {

void validate_conv_inputs(std::span<const CooChannel> input,
                          const DenseTensor& weights,
                          std::span<const float> bias,
                          const Conv2dSpec& spec) {
  validate_conv_spec(spec);
  if (static_cast<int>(input.size()) != spec.in_channels) {
    throw std::invalid_argument(
        "sparse conv: channel count mismatch, got " +
        std::to_string(input.size()) + " expected " +
        std::to_string(spec.in_channels));
  }
  const TensorShape& ws = weights.shape();
  if (ws.n != spec.out_channels || ws.c != spec.in_channels ||
      ws.h != spec.kernel || ws.w != spec.kernel) {
    throw std::invalid_argument("sparse conv: weight shape mismatch");
  }
  if (!bias.empty() && static_cast<int>(bias.size()) != spec.out_channels) {
    throw std::invalid_argument("sparse conv: bias size mismatch");
  }
  for (std::size_t c = 1; c < input.size(); ++c) {
    if (input[c].height() != input[0].height() ||
        input[c].width() != input[0].width()) {
      throw std::invalid_argument("sparse conv: input extents differ");
    }
  }
}

/// Batched variants: every sample must individually validate and all
/// samples must share extents (one geometry per merge batch).
void validate_batch_inputs(std::span<const SparseSample> inputs,
                           const DenseTensor& weights,
                           std::span<const float> bias,
                           const Conv2dSpec& spec) {
  for (const SparseSample& sample : inputs) {
    validate_conv_inputs(sample, weights, bias, spec);
    if (sample[0].height() != inputs[0][0].height() ||
        sample[0].width() != inputs[0][0].width()) {
      throw std::invalid_argument("sparse conv batch: sample extents differ");
    }
  }
}

[[nodiscard]] std::size_t dense_mac_count(const Conv2dSpec& spec, int out_h,
                                          int out_w) {
  return static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w) *
         static_cast<std::size_t>(spec.out_channels) *
         static_cast<std::size_t>(spec.in_channels) *
         static_cast<std::size_t>(spec.kernel) *
         static_cast<std::size_t>(spec.kernel);
}

/// Default arena for callers that do not pass a Workspace: one per
/// thread, so the legacy call signatures stay allocation-free in steady
/// state without sharing mutable scratch across threads (the seed's
/// thread_local scratch design). Retention is bounded by the largest
/// activation served — Cin * plane floats plus bitmap/taps, a few MB at
/// DAVIS346 scale — unlike the dense im2col column matrix, which can
/// reach hundreds of MB and is therefore NOT retained without an
/// explicit workspace (see conv2d_gemm_into). Callers needing a release
/// path own a Workspace and call clear().
[[nodiscard]] Workspace& fallback_workspace() {
  thread_local Workspace ws;
  return ws;
}

void require_submanifold_geometry(std::span<const CooChannel> input,
                                  const Conv2dSpec& spec) {
  if (spec.stride != 1) {
    throw std::invalid_argument("submanifold conv requires stride 1");
  }
  if (conv_out_extent(input[0].height(), spec.kernel, 1, spec.padding) !=
          input[0].height() ||
      conv_out_extent(input[0].width(), spec.kernel, 1, spec.padding) !=
          input[0].width()) {
    throw std::invalid_argument(
        "submanifold conv requires same-extent output (kernel = 2*padding+1)");
  }
}

/// Input rows feeding output rows [out_row0, out_row1): the halo window,
/// clamped to the input extents.
[[nodiscard]] std::pair<int, int> halo_in_rows(const Conv2dSpec& spec,
                                               int out_row0, int out_row1,
                                               int in_h) {
  const int in0 = std::max(0, out_row0 * spec.stride - spec.padding);
  const int in1 = std::min(
      in_h, (out_row1 - 1) * spec.stride - spec.padding + spec.kernel);
  return {in0, std::max(in0, in1)};
}

/// Scatters one sample through the kernel into dense output plane(s) at
/// `o` (per-channel plane = (out_row1 - out_row0) * out_w rows holding
/// global output rows [out_row0, out_row1); bias already applied by the
/// caller). Full-plane callers pass (0, out_h); windowed callers only
/// pay for the halo-row entry slice of each channel. Returns the sparse
/// MAC count.
std::size_t scatter_sample(std::span<const CooChannel> input, const float* w,
                           std::size_t w_oc_stride, const Conv2dSpec& spec,
                           int out_h, int out_w, float* o, int out_row0,
                           int out_row1) {
  const std::size_t out_plane = static_cast<std::size_t>(out_row1 - out_row0) *
                                static_cast<std::size_t>(out_w);
  const bool windowed = out_row0 > 0 || out_row1 < out_h;
  std::size_t sparse_macs = 0;
  for (int ic = 0; ic < spec.in_channels; ++ic) {
    const CooChannel& ch = input[static_cast<std::size_t>(ic)];
    const std::size_t w_ic_base = static_cast<std::size_t>(ic) *
                                  static_cast<std::size_t>(spec.kernel) *
                                  static_cast<std::size_t>(spec.kernel);
    std::span<const CooEntry> entries = ch.entries();
    if (windowed) {
      const auto [in0, in1] =
          halo_in_rows(spec, out_row0, out_row1, ch.height());
      entries = ch.rows_span(in0, in1);
    }
    for (const CooEntry& e : entries) {
      // Scatter: output (oy, ox) sees input (r, c) through kernel tap
      // (ky, kx) iff oy*stride + ky - padding == r (same for x).
      for (int ky = 0; ky < spec.kernel; ++ky) {
        const int oy_num = e.row + spec.padding - ky;
        if (oy_num < 0 || oy_num % spec.stride != 0) continue;
        const int oy = oy_num / spec.stride;
        if (oy < out_row0 || oy >= out_row1) continue;
        for (int kx = 0; kx < spec.kernel; ++kx) {
          const int ox_num = e.col + spec.padding - kx;
          if (ox_num < 0 || ox_num % spec.stride != 0) continue;
          const int ox = ox_num / spec.stride;
          if (ox >= out_w) continue;
          const std::size_t out_idx =
              static_cast<std::size_t>(oy - out_row0) *
                  static_cast<std::size_t>(out_w) +
              static_cast<std::size_t>(ox);
          const float* wp = w + w_ic_base +
                            static_cast<std::size_t>(ky) *
                                static_cast<std::size_t>(spec.kernel) +
                            static_cast<std::size_t>(kx);
          float* op = o + out_idx;
          const float v = e.value;
          for (int oc = 0; oc < spec.out_channels; ++oc) {
            *op += *wp * v;
            op += out_plane;
            wp += w_oc_stride;
          }
          sparse_macs += static_cast<std::size_t>(spec.out_channels);
        }
      }
    }
  }
  return sparse_macs;
}

void fill_bias_planes(float* o, std::span<const float> bias, int out_channels,
                      std::size_t out_plane) {
  if (bias.empty()) return;
  for (int oc = 0; oc < out_channels; ++oc) {
    float* row = o + static_cast<std::size_t>(oc) * out_plane;
    std::fill(row, row + out_plane, bias[static_cast<std::size_t>(oc)]);
  }
}

/// Packs [oc][ic][ky][kx] weights into [tap offset][oc] layout so the
/// per-tap lane loads in the reduction are contiguous (vectorizable).
/// Shared across every sample of a batched call.
void pack_weights(const DenseTensor& weights, std::vector<float>& packed) {
  const std::size_t oc_count = static_cast<std::size_t>(weights.shape().n);
  const std::size_t patch = weights.stride_n();
  packed.resize(oc_count * patch);
  const float* w = weights.raw();
  for (std::size_t oc = 0; oc < oc_count; ++oc) {
    const float* src = w + oc * patch;
    for (std::size_t off = 0; off < patch; ++off) {
      packed[off * oc_count + oc] = src[off];
    }
  }
}

/// Reduces the per-site tap lists in `s` against every output channel,
/// producing per-channel entry vectors in site (row-major) order. Both
/// threading axes execute the identical per-site accumulation and emit
/// entries in the same order, so the result is bitwise independent of
/// the axis and the thread count. Channels are processed in blocks of 8
/// so each tap load is amortized across 8 accumulators reading one
/// contiguous packed-weight row.
constexpr int kOcBlock = 8;
constexpr std::size_t kSiteChunk = 2048;

/// Channel counts above this fall back to the channel-blocked walk (the
/// per-site accumulator array lives on the stack).
constexpr int kMaxAccum = 256;

void reduce_sites(const ConvScratch& s, const float* packed_w,
                  std::span<const float> bias, int out_channels, int out_w,
                  SubmanifoldThreading threading, int max_threads,
                  std::vector<std::vector<CooEntry>>& out_entries) {
  const std::size_t n_sites = s.sites.size();
  const int oc_blocks = (out_channels + kOcBlock - 1) / kOcBlock;
  const int site_chunks =
      static_cast<int>((n_sites + kSiteChunk - 1) / kSiteChunk);

  bool over_sites = false;
  switch (threading) {
    case SubmanifoldThreading::kOutputChannels:
      break;
    case SubmanifoldThreading::kActiveSites:
      over_sites = true;
      break;
    case SubmanifoldThreading::kAuto:
      // The site axis walks the tap stream once for ALL channels (the
      // channel axis re-walks it once per block), so prefer it whenever
      // it offers at least as many work units — or whenever the channel
      // blocks alone cannot fill the worker pool.
      over_sites =
          site_chunks >= oc_blocks || oc_blocks < max_threads;
      break;
  }
  if (out_channels > kMaxAccum) over_sites = false;

  // One output-channel block over one contiguous site range.
  const std::size_t oc_count = static_cast<std::size_t>(out_channels);
  const auto reduce_block = [&](int oc0, std::size_t s0, std::size_t s1,
                                std::vector<CooEntry>* block_out) {
    const int oc1 = std::min(out_channels, oc0 + kOcBlock);
    const int lanes = oc1 - oc0;
    float b[kOcBlock] = {};
    for (int j = 0; j < lanes; ++j) {
      b[j] = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc0 + j)];
    }
    const float* w_block = packed_w + static_cast<std::size_t>(oc0);
    for (std::size_t si = s0; si < s1; ++si) {
      float acc[kOcBlock];
      for (int j = 0; j < kOcBlock; ++j) acc[j] = b[j];
      const std::size_t t0 = s.site_ptr[si];
      const std::size_t t1 = s.site_ptr[si + 1];
      if (lanes == kOcBlock) {
        // Full block: fixed trip count over one contiguous packed-weight
        // row — vectorizes to one 8-wide FMA per tap.
        for (std::size_t t = t0; t < t1; ++t) {
          const float* w_row =
              w_block +
              static_cast<std::size_t>(s.taps[t].w_offset) * oc_count;
          const float v = s.taps[t].value;
          for (int j = 0; j < kOcBlock; ++j) acc[j] += w_row[j] * v;
        }
      } else {
        for (std::size_t t = t0; t < t1; ++t) {
          const float* w_row =
              w_block +
              static_cast<std::size_t>(s.taps[t].w_offset) * oc_count;
          const float v = s.taps[t].value;
          for (int j = 0; j < lanes; ++j) acc[j] += w_row[j] * v;
        }
      }
      const std::int32_t row = s.sites[si] / out_w;
      const std::int32_t col = s.sites[si] % out_w;
      for (int j = 0; j < lanes; ++j) {
        if (acc[j] != 0.0f) {
          block_out[j].push_back(CooEntry{row, col, acc[j]});
        }
      }
    }
  };

  if (!over_sites) {
    core::parallel_for(
        0, oc_blocks,
        [&](int blk) {
          const int oc0 = blk * kOcBlock;
          for (int j = oc0; j < std::min(out_channels, oc0 + kOcBlock); ++j) {
            out_entries[static_cast<std::size_t>(j)].reserve(n_sites);
          }
          reduce_block(oc0, 0, n_sites,
                       out_entries.data() + static_cast<std::size_t>(oc0));
        },
        max_threads);
    return;
  }

  // Active-site axis: fixed-size chunks (deterministic partitioning that
  // does not depend on the worker count) reduced independently, then
  // concatenated per channel in chunk order. Each chunk walks the tap
  // stream ONCE, accumulating every output channel against the packed
  // (L1-resident) weight rows — per-(site, channel) arithmetic and entry
  // order are identical to the channel-blocked walk.
  std::vector<std::vector<std::vector<CooEntry>>> chunk_entries(
      static_cast<std::size_t>(site_chunks));
  const std::size_t oc_n = static_cast<std::size_t>(out_channels);
  core::parallel_for(
      0, site_chunks,
      [&](int ck) {
        auto& per_oc = chunk_entries[static_cast<std::size_t>(ck)];
        per_oc.resize(oc_n);
        const std::size_t s0 = static_cast<std::size_t>(ck) * kSiteChunk;
        const std::size_t s1 = std::min(n_sites, s0 + kSiteChunk);
        for (auto& entries : per_oc) entries.reserve(s1 - s0);
        float init[kMaxAccum];
        for (std::size_t j = 0; j < oc_n; ++j) {
          init[j] = bias.empty() ? 0.0f : bias[j];
        }
        float acc[kMaxAccum];
        for (std::size_t si = s0; si < s1; ++si) {
          for (std::size_t j = 0; j < oc_n; ++j) acc[j] = init[j];
          const std::size_t t0 = s.site_ptr[si];
          const std::size_t t1 = s.site_ptr[si + 1];
          for (std::size_t t = t0; t < t1; ++t) {
            const float* w_row =
                packed_w +
                static_cast<std::size_t>(s.taps[t].w_offset) * oc_n;
            const float v = s.taps[t].value;
            std::size_t j = 0;
            for (; j + kOcBlock <= oc_n; j += kOcBlock) {
              for (int jj = 0; jj < kOcBlock; ++jj) {
                acc[j + jj] += w_row[j + jj] * v;
              }
            }
            for (; j < oc_n; ++j) acc[j] += w_row[j] * v;
          }
          const std::int32_t row = s.sites[si] / out_w;
          const std::int32_t col = s.sites[si] % out_w;
          for (std::size_t j = 0; j < oc_n; ++j) {
            if (acc[j] != 0.0f) {
              per_oc[j].push_back(CooEntry{row, col, acc[j]});
            }
          }
        }
      },
      max_threads);
  for (int oc = 0; oc < out_channels; ++oc) {
    std::size_t total = 0;
    for (const auto& per_oc : chunk_entries) {
      total += per_oc[static_cast<std::size_t>(oc)].size();
    }
    auto& dst = out_entries[static_cast<std::size_t>(oc)];
    dst.reserve(total);
    for (const auto& per_oc : chunk_entries) {
      const auto& src = per_oc[static_cast<std::size_t>(oc)];
      dst.insert(dst.end(), src.begin(), src.end());
    }
  }
}

/// Gather front half shared by the float gather kernels and the public
/// build_gather_taps entry point (no validation — callers validated).
/// Collects the sorted active output-site list (bitmap dedup), then
/// scatter-builds one shared (weight offset, value) tap list per site by
/// a count/prefix/fill pass over the input non-zeros. Work is
/// proportional to nnz_in * k^2 (the tap count), NOT to
/// sites * Cin * k^2 like a per-site gather probe — the difference is
/// what keeps multi-channel mid-density layers (deep spiking stages)
/// ahead of the dense kernels.
///
/// Tap order per site is (ic, ky, kx) ascending: the fill pass iterates
/// channels outer and each channel's entries row-major, and for a fixed
/// site ascending input positions map to ascending (ky, kx) — exactly
/// the order the scatter kernel's entry loop reaches that site, so the
/// per-site reduction stays bitwise identical to the scatter result.
GatherGeometry build_taps_impl(std::span<const CooChannel> input,
                               const Conv2dSpec& spec, bool submanifold,
                               ConvScratch& s,
                               const RowWindow* window = nullptr) {
  const int in_h = input[0].height();
  const int in_w = input[0].width();
  const int out_h = submanifold ? in_h
                                : conv_out_extent(in_h, spec.kernel,
                                                  spec.stride, spec.padding);
  const int out_w = submanifold ? in_w
                                : conv_out_extent(in_w, spec.kernel,
                                                  spec.stride, spec.padding);
  const std::size_t out_plane =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);

  // Output-row window (full plane when no window): the enumeration drops
  // scatter targets outside [o0, o1), and only the input halo rows that
  // can reach the window are walked. Within the window, site and tap
  // lists are identical to the full-plane build.
  const int o0 = window != nullptr ? std::clamp(window->out_row0, 0, out_h)
                                   : 0;
  const int o1 = window != nullptr
                     ? std::clamp(window->out_row1, o0, out_h)
                     : out_h;
  const bool windowed = o0 > 0 || o1 < out_h;
  const auto [hin0, hin1] = halo_in_rows(spec, o0, o1, in_h);

  std::uint8_t* act = s.active_buffer(out_plane);
  s.sites.clear();

  // Submanifold output sites are the union of input active sites — mark
  // them up front so the enumeration below can restrict its targets.
  // Windowed builds mark only the window rows (output rows == input rows
  // for submanifold). Strided (CSR) sites are exactly the enumeration's
  // scatter targets, so marking happens inside the single enumeration
  // pass instead.
  std::size_t nnz_in = 0;
  for (int ic = 0; ic < spec.in_channels; ++ic) {
    const CooChannel& ch = input[static_cast<std::size_t>(ic)];
    if (!submanifold) {
      if (!windowed) nnz_in += ch.nnz();
      continue;
    }
    const std::span<const CooEntry> mark_entries =
        windowed ? ch.rows_span(o0, o1) : std::span<const CooEntry>(
                                              ch.entries());
    for (const CooEntry& e : mark_entries) {
      const std::size_t idx =
          static_cast<std::size_t>(e.row) * static_cast<std::size_t>(in_w) +
          static_cast<std::size_t>(e.col);
      if (act[idx] == 0) {
        act[idx] = 1;
        s.sites.push_back(static_cast<std::int32_t>(idx));
      }
    }
    if (!windowed) nnz_in += ch.nnz();
  }
  // Row-major order keeps the output entries sorted; the rank map is the
  // inverse (flat output index -> position in the sorted site list).
  const auto sort_and_rank = [&] {
    std::sort(s.sites.begin(), s.sites.end());
    if (s.rank.size() < out_plane) s.rank.resize(out_plane);
    for (std::size_t si = 0; si < s.sites.size(); ++si) {
      s.rank[static_cast<std::size_t>(s.sites[si])] =
          static_cast<std::int32_t>(si);
    }
  };
  if (submanifold) sort_and_rank();

  // Single enumeration in (channel, entry, ky, kx) order into the
  // staging arrays; taps are then redistributed per site by a stable
  // counting scatter, whose passes are division-free linear walks.
  // Column targets are hoisted out of the ky loop so target arithmetic
  // runs once per (entry, axis offset), not per (ky, kx). tap_site
  // carries the site rank (submanifold, where ranks pre-exist) or the
  // flat output index (CSR, rank-translated after the site sort).
  s.tap_stage.clear();
  s.tap_site.clear();
  constexpr int kMaxHoist = 32;
  std::int32_t col_target[kMaxHoist];
  const bool hoist_cols = spec.kernel <= kMaxHoist;
  for (int ic = 0; ic < spec.in_channels; ++ic) {
    const std::int32_t w_ic_base = ic * spec.kernel * spec.kernel;
    const CooChannel& ch = input[static_cast<std::size_t>(ic)];
    const std::span<const CooEntry> enum_entries =
        windowed ? ch.rows_span(hin0, hin1)
                 : std::span<const CooEntry>(ch.entries());
    if (windowed) nnz_in += enum_entries.size();
    for (const CooEntry& e : enum_entries) {
      if (hoist_cols) {
        for (int kx = 0; kx < spec.kernel; ++kx) {
          const int ox_num = e.col + spec.padding - kx;
          col_target[kx] =
              (ox_num < 0 || ox_num % spec.stride != 0 ||
               ox_num / spec.stride >= out_w)
                  ? -1
                  : ox_num / spec.stride;
        }
      }
      for (int ky = 0; ky < spec.kernel; ++ky) {
        const int oy_num = e.row + spec.padding - ky;
        if (oy_num < 0 || oy_num % spec.stride != 0) continue;
        const int oy = oy_num / spec.stride;
        if (oy < o0 || oy >= o1) continue;
        const std::size_t row_base =
            static_cast<std::size_t>(oy) * static_cast<std::size_t>(out_w);
        const std::int32_t w_ky_base = w_ic_base + ky * spec.kernel;
        for (int kx = 0; kx < spec.kernel; ++kx) {
          int ox;
          if (hoist_cols) {
            ox = col_target[kx];
            if (ox < 0) continue;
          } else {
            const int ox_num = e.col + spec.padding - kx;
            if (ox_num < 0 || ox_num % spec.stride != 0) continue;
            ox = ox_num / spec.stride;
            if (ox >= out_w) continue;
          }
          const std::size_t out_idx = row_base + static_cast<std::size_t>(ox);
          if (submanifold) {
            if (act[out_idx] == 0) continue;
            s.tap_site.push_back(s.rank[out_idx]);
          } else {
            if (act[out_idx] == 0) {
              act[out_idx] = 1;
              s.sites.push_back(static_cast<std::int32_t>(out_idx));
            }
            s.tap_site.push_back(static_cast<std::int32_t>(out_idx));
          }
          s.tap_stage.push_back(GatherTap{w_ky_base + kx, e.value});
        }
      }
    }
  }
  if (!submanifold) {
    sort_and_rank();
    for (std::int32_t& ts : s.tap_site) {
      ts = s.rank[static_cast<std::size_t>(ts)];
    }
  }
  const std::size_t n_sites = s.sites.size();
  const std::size_t n_taps = s.tap_stage.size();
  s.site_ptr.assign(n_sites + 1, 0);
  for (std::size_t t = 0; t < n_taps; ++t) {
    ++s.site_ptr[static_cast<std::size_t>(s.tap_site[t]) + 1];
  }
  for (std::size_t si = 0; si < n_sites; ++si) {
    s.site_ptr[si + 1] += s.site_ptr[si];
  }
  // Exact size: the int8 backend quantizes taps.size() values.
  s.taps.resize(n_taps);
  if (s.cursor.size() < n_sites) s.cursor.resize(n_sites);
  std::copy(s.site_ptr.begin(), s.site_ptr.begin() + n_sites,
            s.cursor.begin());
  for (std::size_t t = 0; t < n_taps; ++t) {
    s.taps[s.cursor[static_cast<std::size_t>(s.tap_site[t])]++] =
        s.tap_stage[t];
  }
  return GatherGeometry{out_h, out_w, nnz_in};
}

/// Stage 4: restore the active bitmap to all-zero, touching only the
/// sites build_taps_impl marked. (The rank map needs no restore: it is
/// only read at indices the current call marked active first.)
void clear_scratch_impl(std::span<const CooChannel> input, ConvScratch& s) {
  (void)input;
  for (const std::int32_t idx : s.sites) {
    s.active[static_cast<std::size_t>(idx)] = 0;
  }
}

/// Gather-kernel core shared by submanifold_conv2d (stride-1, output
/// sites = input active sites) and sparse_conv2d_csr (strided, output
/// sites = scatter targets of the input non-zeros): build the site/tap
/// lists, reduce them against every output channel, restore the scratch.
std::vector<CooChannel> gather_conv_sample(
    std::span<const CooChannel> input, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec, bool submanifold,
    ConvScratch& s, SubmanifoldThreading threading, int max_threads,
    ConvWork* work, const float* shared_packed_w = nullptr,
    const RowWindow* window = nullptr) {
  const GatherGeometry geo =
      build_taps_impl(input, spec, submanifold, s, window);

  const std::size_t sparse_macs =
      s.taps.size() * static_cast<std::size_t>(spec.out_channels);

  const float* packed_w = shared_packed_w;
  if (packed_w == nullptr) {
    pack_weights(weights, s.packed_w);
    packed_w = s.packed_w.data();
  }
  std::vector<std::vector<CooEntry>> out_entries(
      static_cast<std::size_t>(spec.out_channels));
  reduce_sites(s, packed_w, bias, spec.out_channels, geo.out_w, threading,
               max_threads, out_entries);

  clear_scratch_impl(input, s);

  std::vector<CooChannel> out;
  out.reserve(static_cast<std::size_t>(spec.out_channels));
  for (auto& entries : out_entries) {
    // Entries were produced in site (row-major) order, unique and
    // non-zero — adopt them without the from_entries sort/dedup pass.
    out.push_back(CooChannel::from_sorted_entries(geo.out_h, geo.out_w,
                                                  std::move(entries)));
  }
  if (work != nullptr) {
    int mac_rows = geo.out_h;
    if (window != nullptr) {
      const int w0 = std::clamp(window->out_row0, 0, geo.out_h);
      mac_rows = std::clamp(window->out_row1, w0, geo.out_h) - w0;
    }
    work->dense_macs += dense_mac_count(spec, mac_rows, geo.out_w);
    work->sparse_macs += sparse_macs;
    work->nnz_in += geo.nnz_in;
  }
  return out;
}

/// Worker layout for a batched call: samples split into contiguous
/// chunks, one Workspace scratch slot per worker; the inner reduction
/// gets the leftover thread budget.
struct BatchPlan {
  int workers = 1;
  int chunk = 1;
  int inner_threads = 1;
};

[[nodiscard]] BatchPlan plan_batch(int samples) {
  BatchPlan plan;
  const int threads = core::parallel_thread_count();
  plan.workers = std::max(1, std::min(threads, samples));
  plan.chunk = (samples + plan.workers - 1) / plan.workers;
  plan.inner_threads = std::max(1, threads / plan.workers);
  return plan;
}

void accumulate_work(ConvWork* work, std::span<const ConvWork> per_sample) {
  if (work == nullptr) return;
  for (const ConvWork& w : per_sample) {
    work->dense_macs += w.dense_macs;
    work->sparse_macs += w.sparse_macs;
    work->nnz_in += w.nnz_in;
  }
}

/// Validates a caller-provided pre-packed weight span (size must match
/// the [tap][oc] transposition exactly; empty means "pack here").
[[nodiscard]] const float* check_prepacked(std::span<const float> packed,
                                           const DenseTensor& weights) {
  if (packed.empty()) return nullptr;
  const std::size_t expected =
      static_cast<std::size_t>(weights.shape().n) * weights.stride_n();
  if (packed.size() != expected) {
    throw std::invalid_argument(
        "sparse conv: packed_weights size mismatch (got " +
        std::to_string(packed.size()) + ", expected " +
        std::to_string(expected) + ")");
  }
  return packed.data();
}

/// Shared driver for the two sparse-output batched kernels.
std::vector<SparseSample> gather_conv_batch(
    std::span<const SparseSample> inputs, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec, bool submanifold,
    ConvWork* work, Workspace* workspace, SubmanifoldThreading threading,
    std::span<const float> prepacked, const RowWindow* window = nullptr) {
  if (inputs.empty()) {
    throw std::invalid_argument("sparse conv batch: empty batch");
  }
  validate_batch_inputs(inputs, weights, bias, spec);
  if (submanifold) require_submanifold_geometry(inputs[0], spec);

  Workspace& arena = workspace != nullptr ? *workspace : fallback_workspace();
  const int n = static_cast<int>(inputs.size());
  const BatchPlan plan = plan_batch(n);
  arena.reserve_slots(static_cast<std::size_t>(plan.workers));
  // Weights are packed once and shared read-only across all samples —
  // or not at all, when the caller pre-packed them (CSR chains pack each
  // layer once per run instead of once per layer invocation).
  const float* packed_w = check_prepacked(prepacked, weights);
  if (packed_w == nullptr) {
    pack_weights(weights, arena.scratch(0).packed_w);
    packed_w = arena.scratch(0).packed_w.data();
  }

  // Parallelize over WORKER indices, each owning one scratch slot and a
  // contiguous sample range — slot exclusivity holds by construction,
  // independent of how parallel_for schedules indices onto threads.
  std::vector<SparseSample> out(inputs.size());
  std::vector<ConvWork> per_sample(inputs.size());
  core::parallel_for(
      0, plan.workers,
      [&](int worker) {
        ConvScratch& scratch = arena.scratch(static_cast<std::size_t>(worker));
        const int lo = worker * plan.chunk;
        const int hi = std::min(n, lo + plan.chunk);
        for (int i = lo; i < hi; ++i) {
          out[static_cast<std::size_t>(i)] = gather_conv_sample(
              inputs[static_cast<std::size_t>(i)], weights, bias, spec,
              submanifold, scratch, threading, plan.inner_threads,
              &per_sample[static_cast<std::size_t>(i)], packed_w, window);
        }
      },
      plan.workers);
  accumulate_work(work, per_sample);
  return out;
}

}  // namespace

DenseTensor sparse_conv2d(std::span<const CooChannel> input,
                          const DenseTensor& weights,
                          std::span<const float> bias, const Conv2dSpec& spec,
                          ConvWork* work) {
  validate_conv_inputs(input, weights, bias, spec);
  const int in_h = input[0].height();
  const int in_w = input[0].width();
  const int out_h = conv_out_extent(in_h, spec.kernel, spec.stride,
                                    spec.padding);
  const int out_w = conv_out_extent(in_w, spec.kernel, spec.stride,
                                    spec.padding);

  DenseTensor out(TensorShape{1, spec.out_channels, out_h, out_w});
  const std::size_t out_plane =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
  float* o = out.raw();
  fill_bias_planes(o, bias, spec.out_channels, out_plane);

  // weights are [oc][ic][ky][kx]: fixing (ic, ky, kx) leaves a constant
  // oc-stride walk of Cin*k*k elements.
  const std::size_t sparse_macs =
      scatter_sample(input, weights.raw(), weights.stride_n(), spec, out_h,
                     out_w, o, 0, out_h);

  if (work != nullptr) {
    work->dense_macs += dense_mac_count(spec, out_h, out_w);
    work->sparse_macs += sparse_macs;
    std::size_t nnz_in = 0;
    for (const CooChannel& ch : input) nnz_in += ch.nnz();
    work->nnz_in += nnz_in;
  }
  return out;
}

namespace {

/// Shared core of sparse_conv2d_batch_into (full plane) and
/// sparse_conv2d_window_into (one output-row window): `out` is reset to
/// [N, Cout, out_row1 - out_row0, out_w], slice row 0 = global output
/// row out_row0.
void scatter_batch_into(std::span<const SparseSample> inputs,
                        const DenseTensor& weights, std::span<const float> bias,
                        const Conv2dSpec& spec, int out_row0, int out_row1,
                        DenseTensor& out, ConvWork* work) {
  if (inputs.empty()) {
    throw std::invalid_argument("sparse_conv2d_batch: empty batch");
  }
  validate_batch_inputs(inputs, weights, bias, spec);
  const int in_h = inputs[0][0].height();
  const int in_w = inputs[0][0].width();
  const int out_h = conv_out_extent(in_h, spec.kernel, spec.stride,
                                    spec.padding);
  const int out_w = conv_out_extent(in_w, spec.kernel, spec.stride,
                                    spec.padding);
  out_row0 = std::clamp(out_row0, 0, out_h);
  out_row1 = std::clamp(out_row1, out_row0, out_h);
  const int win_rows = out_row1 - out_row0;
  const int n = static_cast<int>(inputs.size());
  const bool windowed = win_rows < out_h;

  out.reset(TensorShape{n, spec.out_channels, win_rows, out_w});
  const std::size_t out_plane =
      static_cast<std::size_t>(win_rows) * static_cast<std::size_t>(out_w);
  const std::size_t out_batch = out.stride_n();
  float* o = out.raw();
  const float* w = weights.raw();
  const std::size_t w_oc_stride = weights.stride_n();

  // Each sample owns a disjoint output slice — parallel over samples.
  // (Windowed calls may build the lazy row index of an input channel;
  // samples are worker-disjoint, so each channel has one writer.)
  std::vector<ConvWork> per_sample(inputs.size());
  core::parallel_for(0, n, [&](int i) {
    const SparseSample& sample = inputs[static_cast<std::size_t>(i)];
    float* o_n = o + static_cast<std::size_t>(i) * out_batch;
    if (bias.empty()) {
      // reset() leaves the buffer unspecified — scatter needs zeros.
      std::fill(o_n, o_n + out_batch, 0.0f);
    } else {
      fill_bias_planes(o_n, bias, spec.out_channels, out_plane);
    }
    ConvWork& cw = per_sample[static_cast<std::size_t>(i)];
    cw.dense_macs = dense_mac_count(spec, win_rows, out_w);
    cw.sparse_macs = scatter_sample(sample, w, w_oc_stride, spec, out_h,
                                    out_w, o_n, out_row0, out_row1);
    if (windowed) {
      const auto [in0, in1] = halo_in_rows(spec, out_row0, out_row1, in_h);
      for (const CooChannel& ch : sample) {
        cw.nnz_in += ch.rows_span(in0, in1).size();
      }
    } else {
      for (const CooChannel& ch : sample) cw.nnz_in += ch.nnz();
    }
  });
  accumulate_work(work, per_sample);
}

}  // namespace

void sparse_conv2d_batch_into(std::span<const SparseSample> inputs,
                              const DenseTensor& weights,
                              std::span<const float> bias,
                              const Conv2dSpec& spec, DenseTensor& out,
                              ConvWork* work) {
  // Full plane: out_row1 clamps down to the computed output height.
  scatter_batch_into(inputs, weights, bias, spec, 0,
                     std::numeric_limits<int>::max(), out, work);
}

void sparse_conv2d_window_into(std::span<const SparseSample> inputs,
                               const DenseTensor& weights,
                               std::span<const float> bias,
                               const Conv2dSpec& spec, RowWindow window,
                               DenseTensor& out, ConvWork* work) {
  scatter_batch_into(inputs, weights, bias, spec, window.out_row0,
                     window.out_row1, out, work);
}

DenseTensor sparse_conv2d_batch(std::span<const SparseSample> inputs,
                                const DenseTensor& weights,
                                std::span<const float> bias,
                                const Conv2dSpec& spec, ConvWork* work) {
  DenseTensor out;
  sparse_conv2d_batch_into(inputs, weights, bias, spec, out, work);
  return out;
}

std::vector<CooChannel> submanifold_conv2d(std::span<const CooChannel> input,
                                           const DenseTensor& weights,
                                           std::span<const float> bias,
                                           const Conv2dSpec& spec,
                                           ConvWork* work, Workspace* workspace,
                                           SubmanifoldThreading threading,
                                           std::span<const float> packed_weights) {
  validate_conv_inputs(input, weights, bias, spec);
  require_submanifold_geometry(input, spec);
  Workspace& arena = workspace != nullptr ? *workspace : fallback_workspace();
  return gather_conv_sample(input, weights, bias, spec, /*submanifold=*/true,
                            arena.scratch(0), threading,
                            core::parallel_thread_count(), work,
                            check_prepacked(packed_weights, weights));
}

std::vector<CooChannel> sparse_conv2d_csr(std::span<const CooChannel> input,
                                          const DenseTensor& weights,
                                          std::span<const float> bias,
                                          const Conv2dSpec& spec,
                                          ConvWork* work, Workspace* workspace,
                                          SubmanifoldThreading threading,
                                          std::span<const float> packed_weights) {
  validate_conv_inputs(input, weights, bias, spec);
  Workspace& arena = workspace != nullptr ? *workspace : fallback_workspace();
  return gather_conv_sample(input, weights, bias, spec, /*submanifold=*/false,
                            arena.scratch(0), threading,
                            core::parallel_thread_count(), work,
                            check_prepacked(packed_weights, weights));
}

std::vector<SparseSample> submanifold_conv2d_batch(
    std::span<const SparseSample> inputs, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec, ConvWork* work,
    Workspace* workspace, SubmanifoldThreading threading,
    std::span<const float> packed_weights) {
  return gather_conv_batch(inputs, weights, bias, spec, /*submanifold=*/true,
                           work, workspace, threading, packed_weights);
}

std::vector<SparseSample> sparse_conv2d_csr_batch(
    std::span<const SparseSample> inputs, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec, ConvWork* work,
    Workspace* workspace, SubmanifoldThreading threading,
    std::span<const float> packed_weights) {
  return gather_conv_batch(inputs, weights, bias, spec, /*submanifold=*/false,
                           work, workspace, threading, packed_weights);
}

std::vector<SparseSample> submanifold_conv2d_batch_window(
    std::span<const SparseSample> inputs, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec, RowWindow window,
    ConvWork* work, Workspace* workspace, SubmanifoldThreading threading,
    std::span<const float> packed_weights) {
  return gather_conv_batch(inputs, weights, bias, spec, /*submanifold=*/true,
                           work, workspace, threading, packed_weights,
                           &window);
}

std::vector<SparseSample> sparse_conv2d_csr_batch_window(
    std::span<const SparseSample> inputs, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec, RowWindow window,
    ConvWork* work, Workspace* workspace, SubmanifoldThreading threading,
    std::span<const float> packed_weights) {
  return gather_conv_batch(inputs, weights, bias, spec, /*submanifold=*/false,
                           work, workspace, threading, packed_weights,
                           &window);
}

void pack_conv_weights(const DenseTensor& weights, std::vector<float>& packed) {
  pack_weights(weights, packed);
}

GatherGeometry build_gather_taps(std::span<const CooChannel> input,
                                 const DenseTensor& weights,
                                 std::span<const float> bias,
                                 const Conv2dSpec& spec, bool submanifold,
                                 ConvScratch& scratch,
                                 const RowWindow* window) {
  validate_conv_inputs(input, weights, bias, spec);
  if (submanifold) require_submanifold_geometry(input, spec);
  return build_taps_impl(input, spec, submanifold, scratch, window);
}

void clear_gather_scratch(std::span<const CooChannel> input,
                          ConvScratch& scratch) {
  clear_scratch_impl(input, scratch);
}

namespace {

/// Shared sparsify core: one sample slice of a [N, C, H, W] tensor into C
/// COO channels. The raw scan emits entries already sorted and unique, so
/// the channels adopt them without the from_entries sort/dedup pass.
[[nodiscard]] std::vector<CooChannel> slice_to_channels_impl(
    const DenseTensor& dense, int n) {
  const TensorShape& s = dense.shape();
  if (n < 0 || n >= s.n) {
    throw std::invalid_argument("slice_to_channels: sample out of range");
  }
  const std::size_t plane = dense.stride_c();
  const float* raw = dense.raw() + static_cast<std::size_t>(n) *
                                       dense.stride_n();
  std::vector<CooChannel> channels;
  channels.reserve(static_cast<std::size_t>(s.c));
  for (int c = 0; c < s.c; ++c) {
    const float* p = raw + static_cast<std::size_t>(c) * plane;
    // Count first so the entry vector is allocated exactly once.
    std::size_t nnz = 0;
    for (std::size_t i = 0; i < plane; ++i) {
      if (p[i] != 0.0f) ++nnz;
    }
    std::vector<CooEntry> entries;
    entries.reserve(nnz);
    for (int y = 0; y < s.h; ++y) {
      const float* row = p + static_cast<std::size_t>(y) *
                                 static_cast<std::size_t>(s.w);
      for (int x = 0; x < s.w; ++x) {
        if (row[x] != 0.0f) entries.push_back(CooEntry{y, x, row[x]});
      }
    }
    channels.push_back(CooChannel::from_sorted_entries(s.h, s.w,
                                                       std::move(entries)));
  }
  return channels;
}

}  // namespace

std::vector<CooChannel> dense_to_channels(const DenseTensor& dense,
                                          std::size_t* scanned_elements) {
  if (dense.shape().n != 1) {
    throw std::invalid_argument("dense_to_channels expects batch 1");
  }
  if (scanned_elements != nullptr) {
    *scanned_elements += dense.shape().element_count();
  }
  return slice_to_channels_impl(dense, 0);
}

SparseSample slice_to_channels(const DenseTensor& dense, int n) {
  return slice_to_channels_impl(dense, n);
}

void channels_into_slice(std::span<const CooChannel> channels,
                         DenseTensor& dense, int n) {
  const TensorShape& s = dense.shape();
  if (n < 0 || n >= s.n) {
    throw std::invalid_argument("channels_into_slice: sample out of range");
  }
  if (channels.empty() || static_cast<int>(channels.size()) != s.c ||
      channels[0].height() != s.h || channels[0].width() != s.w) {
    throw std::invalid_argument("channels_into_slice: shape mismatch");
  }
  float* slice = dense.raw() + static_cast<std::size_t>(n) * dense.stride_n();
  std::fill(slice, slice + dense.stride_n(), 0.0f);
  const std::size_t plane = dense.stride_c();
  for (std::size_t c = 0; c < channels.size(); ++c) {
    float* p = slice + c * plane;
    for (const CooEntry& e : channels[c].entries()) {
      p[static_cast<std::size_t>(e.row) * static_cast<std::size_t>(s.w) +
        static_cast<std::size_t>(e.col)] = e.value;
    }
  }
}

void relu_sample_inplace(SparseSample& sample) noexcept {
  for (CooChannel& ch : sample) ch.prune_negative();
}

double sample_density(const SparseSample& sample) noexcept {
  if (sample.empty()) return 0.0;
  std::size_t nnz = 0;
  std::size_t total = 0;
  for (const CooChannel& ch : sample) {
    nnz += ch.nnz();
    total += static_cast<std::size_t>(ch.height()) *
             static_cast<std::size_t>(ch.width());
  }
  return total > 0 ? static_cast<double>(nnz) / static_cast<double>(total)
                   : 0.0;
}

DenseTensor channels_to_dense(std::span<const CooChannel> channels) {
  if (channels.empty()) {
    throw std::invalid_argument("channels_to_dense: empty input");
  }
  const int h = channels[0].height();
  const int w = channels[0].width();
  DenseTensor out(
      TensorShape{1, static_cast<int>(channels.size()), h, w});
  for (std::size_t c = 0; c < channels.size(); ++c) {
    if (channels[c].height() != h || channels[c].width() != w) {
      throw std::invalid_argument("channels_to_dense: extent mismatch");
    }
    float* plane = out.raw() + c * out.stride_c();
    for (const CooEntry& e : channels[c].entries()) {
      plane[static_cast<std::size_t>(e.row) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(e.col)] = e.value;
    }
  }
  return out;
}

}  // namespace evedge::sparse
