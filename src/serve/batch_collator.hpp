#pragma once

// BatchCollator: deadline- and size-triggered cross-stream micro-batching
// over the shared FrameQueue. Each worker drives its own collator: the
// first frame of a batch is awaited indefinitely (no busy wait), then the
// batch keeps filling until either max_batch frames are collated or
// max_wait_us has elapsed since the first frame landed — the classic
// serving trade of a bounded latency tax for batched-kernel throughput.
// Frames from different streams coalesce freely: run_batched gives every
// batch lane its own LIF state and per-sample arithmetic, so cross-stream
// batches are bitwise identical to per-stream serial execution.

#include <cstdint>
#include <vector>

#include "serve/frame_queue.hpp"

namespace evedge::serve {

struct CollatorConfig {
  int max_batch = 8;         ///< size trigger (>= 1)
  double max_wait_us = 2000; ///< deadline trigger, from the first frame
};

class BatchCollator {
 public:
  explicit BatchCollator(CollatorConfig config);

  /// Collates the next batch into `out` (cleared first). Blocks for the
  /// first frame; returns false when the queue is closed and drained
  /// (worker shutdown), true otherwise with 1..max frames, where max is
  /// `max_batch_override` when > 0 (the degradation ladder's widened
  /// batches) and config().max_batch otherwise.
  [[nodiscard]] bool collect(FrameQueue& queue, std::vector<ReadyFrame>& out,
                             int max_batch_override = 0);

  [[nodiscard]] const CollatorConfig& config() const noexcept {
    return config_;
  }

 private:
  CollatorConfig config_;
  /// Per-frame pop timestamps of the batch being collected (tracing
  /// only) — scratch for the "collate.wait" lineage spans emitted when
  /// the batch is ready. One worker drives one collator, so no locking.
  std::vector<std::uint64_t> pop_ns_;
};

}  // namespace evedge::serve
