#pragma once

// PoissonEventSynthesizer: realizes an event stream whose temporal rate
// follows a DensityProfile and whose spatial distribution follows a set of
// moving Gaussian activity blobs over a uniform background — the synthetic
// stand-in for MVSEC/DENSE recordings (see DESIGN.md section 2).
//
// Properties the downstream experiments rely on and which tests pin down:
//  - expected event count over a window == integral of the profile rate
//    (within Poisson noise),
//  - events are time-ordered and inside the sensor geometry,
//  - spatial sparsity per short window is far below 100% (blobs cover a
//    small fraction of the pixel array),
//  - polarity is balanced to within the blob-motion asymmetry.

#include <cstdint>
#include <vector>

#include "events/density_profile.hpp"
#include "events/event_stream.hpp"

namespace evedge::events {

/// Moving Gaussian blob of event activity (center follows a Lissajous path).
struct ActivityBlob {
  double amplitude = 1.0;   ///< relative sampling weight
  double sigma_px = 6.0;    ///< spatial spread
  double fx_hz = 0.31;      ///< horizontal oscillation frequency
  double fy_hz = 0.17;      ///< vertical oscillation frequency
  double phase = 0.0;
};

struct SynthConfig {
  SensorGeometry geometry = davis346();
  int blob_count = 6;
  double background_weight = 0.15;  ///< fraction of events spread uniformly
  double step_us = 1000.0;          ///< Poisson discretization step
  std::uint64_t seed = 42;
};

/// Generates events over [t0, t0 + duration) following `profile`.
class PoissonEventSynthesizer {
 public:
  PoissonEventSynthesizer(DensityProfile profile, SynthConfig config);

  [[nodiscard]] EventStream generate(TimeUs t0, TimeUs duration_us) const;

  [[nodiscard]] const DensityProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const SynthConfig& config() const noexcept { return config_; }

 private:
  DensityProfile profile_;
  SynthConfig config_;
  std::vector<ActivityBlob> blobs_;
};

}  // namespace evedge::events
