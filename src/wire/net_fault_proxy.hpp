#pragma once

// Deterministic hostile-network simulation: NetFaultProxy decorates a
// Transport and applies a seeded NetFaultPlan to the packets flowing
// through send(). Sites are (session_id, seq) of data / end-of-stream
// packets — the wire twin of serve::FaultPlan's (stream_id, seq) sites —
// so the same seed exercises the same byte-level damage run after run.
//
// Each site fires AT MOST ONCE: with go-back-N retransmission the same
// seq crosses the proxy again after a drop, and a fault that re-fired
// on every pass would deadlock the session instead of testing its
// recovery. The fired-site claim and the counters live in a shared
// NetFaultInjector so they survive reconnects (each reconnect wraps the
// fresh Transport in a new proxy over the same injector).
//
// Fault taxonomy (what each one exercises):
//   kDrop        retransmission after ack gap / timeout
//   kCorrupt     CRC rejection + rejected_packets accounting
//   kTruncate    partial write -> framing slip -> resync on magic
//   kReorder     receiver reorder buffer + immediate gap-ack
//   kDelay       heartbeat / stall detection without data loss
//   kDisconnect  mid-stream connection loss -> reconnect + resume

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "wire/transport.hpp"

namespace evedge::wire {

enum class NetFaultType : std::uint8_t {
  kDrop,        ///< swallow the packet (proxy reports success)
  kCorrupt,     ///< flip payload bytes before forwarding
  kTruncate,    ///< forward only a prefix of the packet
  kReorder,     ///< hold the packet, send it after its successor
  kDelay,       ///< sleep delay_ms before forwarding
  kDisconnect,  ///< close the link instead of sending
};

[[nodiscard]] const char* to_string(NetFaultType type) noexcept;

/// One fault at one (session_id, seq) site.
struct NetFaultSpec {
  NetFaultType type = NetFaultType::kDrop;
  std::uint32_t session_id = 0;
  std::uint32_t seq = 0;
  double delay_ms = 0.0;  ///< kDelay only
};

/// Knobs for NetFaultPlan::seeded.
struct NetFaultPlanOptions {
  std::uint32_t session_id = 1;
  /// Upper bound (exclusive) for drawn seq sites; keep it at or below
  /// the real data-packet count so every drawn fault can fire.
  std::uint32_t packets_hint = 64;
  int drops = 0;
  int corrupts = 0;
  int truncates = 0;
  int reorders = 0;
  int delays = 0;
  int disconnects = 0;
  double delay_ms = 20.0;
};

/// Fired-fault counters (what the proxy actually did, not the plan).
struct NetFaultCounts {
  std::size_t drops = 0;
  std::size_t corrupts = 0;
  std::size_t truncates = 0;
  std::size_t reorders = 0;
  std::size_t delays = 0;
  std::size_t disconnects = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return drops + corrupts + truncates + reorders + delays + disconnects;
  }
  friend bool operator==(const NetFaultCounts&,
                         const NetFaultCounts&) = default;
};

/// A reproducible network-fault schedule. Same (seed, options) ->
/// identical plan, bit for bit. Sites are drawn without replacement, so
/// each seq suffers at most one fault type.
struct NetFaultPlan {
  std::vector<NetFaultSpec> specs;
  std::uint64_t seed = 0;

  NetFaultPlan& add(NetFaultSpec spec) {
    specs.push_back(spec);
    return *this;
  }
  [[nodiscard]] bool empty() const noexcept { return specs.empty(); }

  [[nodiscard]] static NetFaultPlan seeded(std::uint64_t seed,
                                           const NetFaultPlanOptions& options);
};

/// Immutable (session, seq) site index plus fire-once claims and fired
/// counters. Shared across reconnects; lookups are lock-free (const map
/// + per-site atomic claim flag).
class NetFaultInjector {
 public:
  explicit NetFaultInjector(NetFaultPlan plan);

  /// Claims the faults at (session_id, seq): the first caller gets the
  /// specs, every later caller (retransmission) gets an empty list.
  [[nodiscard]] std::vector<NetFaultSpec> take(std::uint32_t session_id,
                                               std::uint32_t seq);

  void record(NetFaultType type) noexcept;
  [[nodiscard]] NetFaultCounts counts() const noexcept;
  [[nodiscard]] const NetFaultPlan& plan() const noexcept { return plan_; }

 private:
  struct Site {
    std::vector<NetFaultSpec> specs;
    std::atomic<bool> fired{false};
  };

  NetFaultPlan plan_;
  std::unordered_map<std::uint64_t, Site> sites_;  // (session << 32 | seq)
  std::atomic<std::size_t> drops_{0};
  std::atomic<std::size_t> corrupts_{0};
  std::atomic<std::size_t> truncates_{0};
  std::atomic<std::size_t> reorders_{0};
  std::atomic<std::size_t> delays_{0};
  std::atomic<std::size_t> disconnects_{0};
};

/// Transport decorator applying the injector's plan to outgoing
/// packets. Expects the sender's one-packet-per-send() discipline
/// (WireSender honors it); non-packet or control traffic passes
/// through untouched. recv_some()/close() delegate to the inner
/// transport.
class NetFaultProxy : public Transport {
 public:
  NetFaultProxy(std::unique_ptr<Transport> inner,
                std::shared_ptr<NetFaultInjector> injector);

  [[nodiscard]] bool send(const void* data, std::size_t n) override;
  [[nodiscard]] std::ptrdiff_t recv_some(
      void* data, std::size_t n,
      std::chrono::milliseconds timeout) override;
  void close() override;
  [[nodiscard]] bool closed() const override;

 private:
  std::unique_ptr<Transport> inner_;
  std::shared_ptr<NetFaultInjector> injector_;
  /// kReorder stash: held packet, forwarded after the next send. Dies
  /// with the connection (ARQ recovers the loss).
  std::vector<std::uint8_t> held_;
};

}  // namespace evedge::wire
