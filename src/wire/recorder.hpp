#pragma once

// Record / replay harness for wire-protocol load generation.
//
// A recording (.evw file) is simply a valid EVWP byte stream — hello,
// data packets, end-of-stream — written verbatim. That means a
// recording can be replayed by blasting its bytes down any Transport,
// inspected with the same PacketFramer the live path uses, and decoded
// offline back into an EventStream for parity checks.
//
// StreamReplayer paces packets against the event-time axis: with
// speedup S, the packet whose (unwrapped) t_base lies T microseconds
// after the stream epoch is sent no earlier than start + T/S — 1x is
// real time, 1000x compresses an hour of sensor time into seconds,
// <= 0 blasts flat out. This is the load generator behind bench_serve's
// paced closed-loop mode.

#include <cstdint>
#include <string>
#include <vector>

#include "events/event_stream.hpp"
#include "wire/packet.hpp"
#include "wire/transport.hpp"

namespace evedge::wire {

/// Serializes `stream` to `path` as a raw wire byte stream. Throws
/// std::runtime_error on I/O failure, std::invalid_argument on
/// unencodable events.
void record_stream(const events::EventStream& stream,
                   const std::string& path,
                   std::size_t events_per_packet = 256,
                   std::uint32_t session_id = 1);

struct ReplayStats {
  std::size_t packets_sent = 0;  ///< data + end-of-stream
  std::size_t bytes_sent = 0;
  double wall_ms = 0.0;
  /// Event-time span of the recording divided by the speedup (the
  /// pacing target; wall_ms close to it means pacing held).
  double target_ms = 0.0;
};

/// Loads a recording, indexes its packets, replays or decodes it.
class StreamReplayer {
 public:
  /// Throws std::runtime_error when the file is missing, unreadable,
  /// or not a clean packet stream (any framing rejection is fatal — a
  /// recording is a trusted artifact, unlike the live wire).
  explicit StreamReplayer(const std::string& path);

  [[nodiscard]] const StreamHeader& header() const noexcept {
    return header_;
  }
  [[nodiscard]] std::size_t data_packets() const noexcept {
    return data_packets_;
  }
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return bytes_.size();
  }

  /// Decodes the recording back into an EventStream (offline parity /
  /// inspection path).
  [[nodiscard]] events::EventStream decode() const;

  /// Sends hello + every packet down `transport`, pacing data packets
  /// by event time / `speedup` (<= 0 = flat out). One-way: incoming
  /// bytes (acks from a WireReceiver peer) are drained and discarded.
  /// Returns stats; throws std::runtime_error if the transport dies.
  ReplayStats replay(Transport& transport, double speedup) const;

 private:
  struct PacketRef {
    std::size_t offset = 0;
    std::size_t length = 0;
    PacketHeader header{};
  };

  std::vector<std::uint8_t> bytes_;
  std::vector<PacketRef> packets_;  ///< in file order, hello first
  StreamHeader header_{};
  std::size_t data_packets_ = 0;
};

}  // namespace evedge::wire
