#pragma once

// End-to-end accuracy evaluation (Table 2): how much the Ev-Edge
// optimizations — DSFA merging (temporal-granularity loss) and NMP mixed
// precision (quantization noise) — move each task's metric relative to
// the unmerged FP32 reference on the same event data.
//
// Absolute metric values are anchored to the paper's Table 2 baseline
// column (pretrained weights are unavailable; see DESIGN.md section 2):
// we *measure* the degradation on the functional network and report
// baseline (+/-) measured degradation in the paper's metric units.

#include <cstdint>

#include "core/dsfa.hpp"
#include "core/e2sf.hpp"
#include "events/event_stream.hpp"
#include "nn/zoo.hpp"
#include "quant/accuracy.hpp"

namespace evedge::core {

struct E2eAccuracyResult {
  double baseline_metric = 0.0;       ///< paper Table 2 anchor
  double evedge_metric = 0.0;         ///< anchor shifted by measurement
  double measured_degradation = 0.0;  ///< metric_degradation units
  const char* metric_name = "";
  bool lower_is_better = true;
  /// Real INT8-engine cross-check (config.int8_engine_cross_check): the
  /// same pipeline executed through the calibrated int8 kernels instead
  /// of fake-quantization — the accuracy experiment running on the
  /// substrate it models.
  bool has_int8_cross_check = false;
  double evedge_metric_int8 = 0.0;
  double measured_degradation_int8 = 0.0;
};

struct E2eAccuracyConfig {
  E2sfConfig e2sf{};
  DsfaConfig dsfa{};
  bool apply_dsfa = true;
  quant::PrecisionMap precisions;  ///< empty = all FP32
  double frame_rate_hz = 30.0;
  int max_intervals = 6;  ///< evaluation windows (validation subset)
  std::uint64_t weight_seed = 7;
  /// Additionally evaluate the kInt8 layers of `precisions` through the
  /// real INT8 engine (activation scales calibrated on the reference
  /// inputs) and report the resulting metric alongside the fake-quant
  /// one.
  bool int8_engine_cross_check = false;
  /// Run the FP32 reference and the int8 cross-check through a density-
  /// adaptive nn::ExecutionPlan calibrated on the first interval (the
  /// engine's deployment configuration). Bitwise-neutral for the FP32
  /// path and one-step-neutral for int8, so the reported metrics are
  /// unchanged — this exercises the planner-routed engine in the Table-2
  /// harness. The fake-quant path keeps its activation hook and
  /// therefore always runs dense.
  bool use_execution_planner = false;
};

/// Runs the functional network on E2SF frames from `stream`, unmerged
/// FP32 (reference) vs DSFA-merged + quantized (Ev-Edge), and reports the
/// metric shift anchored to Table 2.
[[nodiscard]] E2eAccuracyResult evaluate_e2e_accuracy(
    const nn::NetworkSpec& spec, const events::EventStream& stream,
    const E2eAccuracyConfig& config);

/// Rebuilds a fixed-slot input representation from DSFA-merged buckets so
/// the network sees its expected timestep count: under cAdd the bucket
/// sum lands in the bucket's first slot (temporal coarsening), under
/// cAverage every constituent slot carries the bucket mean, and cBatch
/// keeps slots unchanged. Exposed for tests.
[[nodiscard]] std::vector<sparse::SparseFrame> reslot_merged_frames(
    const std::vector<sparse::SparseFrame>& bins, const DsfaConfig& config);

}  // namespace evedge::core
