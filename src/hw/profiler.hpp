#pragma once

// Simulated profiling pass. The paper (§4.3.2): "The individual execution
// time for each layer and the communication time between layers are
// measured on the hardware platform and recorded before the search
// process begins." This module produces those tables from the analytic
// latency model: for every mappable node of every task, the execution
// time on every (PE, precision) combination, plus per-node output volume
// for communication costing.

#include <limits>
#include <vector>

#include "hw/latency_model.hpp"
#include "hw/platform.hpp"
#include "nn/graph.hpp"

namespace evedge::hw {

/// Whether a PE can execute a layer kind at all. The DLA is a fixed-
/// function conv engine: custom ops (LIF spiking updates) and transposed
/// convolutions are not offloadable and fall back to the GPU on the real
/// platform.
[[nodiscard]] bool supports_layer(const ProcessingElement& pe,
                                  nn::LayerKind kind);

/// Profiled times for one graph node: time_us[pe][precision];
/// +inf marks unsupported combinations.
struct NodeProfile {
  int node_id = -1;
  bool mappable = false;  ///< inputs/outputs are pinned, not mapped
  std::vector<std::array<double, 3>> time_us;  ///< [pe][precision]
  std::size_t output_elements = 0;  ///< for communication volume
  nn::Domain domain = nn::Domain::kAnn;

  [[nodiscard]] double time(int pe, Precision p) const {
    return time_us[static_cast<std::size_t>(pe)]
                  [static_cast<std::size_t>(p)];
  }
  [[nodiscard]] bool supported(int pe, Precision p) const {
    return time(pe, p) < std::numeric_limits<double>::infinity();
  }
};

/// Profile of one task (network): node profiles indexed by node id.
struct TaskProfile {
  std::vector<NodeProfile> nodes;

  [[nodiscard]] const NodeProfile& node(int id) const {
    return nodes.at(static_cast<std::size_t>(id));
  }
};

/// Profiles every node of `spec` on `platform`. SNN layer times include
/// the per-inference timestep repetition (spiking layers execute once per
/// event bin). By default the recorded time is the dense route (matching
/// TensorRT profiling); when `node_densities` is given (one activation
/// density per node id, as measured on the functional network), each
/// entry records the cheaper of the dense and sparse routes at that
/// density — so a mapper consuming the profile makes decisions consistent
/// with the sparse-aware runtime.
[[nodiscard]] TaskProfile profile_task(
    const nn::NetworkSpec& spec, const Platform& platform,
    const std::vector<double>* node_densities = nullptr);

/// Profiles several concurrent tasks (one entry per task).
[[nodiscard]] std::vector<TaskProfile> profile_tasks(
    const std::vector<nn::NetworkSpec>& specs, const Platform& platform);

}  // namespace evedge::hw
