#pragma once

// Fake-quantization: values are rounded to the target precision's grid and
// immediately dequantized, so all arithmetic stays in float while the
// numerical error matches the target precision. INT8 uses symmetric
// per-tensor linear quantization (the paper: "the pretrained network is
// quantized linearly based on the layer bit-widths").

#include <span>

#include "quant/precision.hpp"
#include "sparse/tensor.hpp"

namespace evedge::quant {

/// Rounds one float to IEEE half-precision (round-to-nearest-even),
/// saturating to +-65504. Implemented with bit manipulation; exact for
/// normals and flushes half-denormals to nearest representable.
[[nodiscard]] float round_to_fp16(float v) noexcept;

/// Symmetric linear INT8 grid over [-max_abs, max_abs]:
/// q = clamp(round(v / scale), -127, 127), dequant = q * scale.
struct Int8Scale {
  float scale = 1.0f;

  /// Non-finite or non-positive ranges fall back to the unit grid
  /// (scale 1): a NaN/Inf range must not poison every quantized value.
  [[nodiscard]] static Int8Scale for_range(float max_abs) noexcept;
  /// Quantize-dequantize one value. Non-finite inputs are handled
  /// explicitly: +-Inf saturates to the grid edge, NaN maps to 0.
  [[nodiscard]] float apply(float v) const noexcept;
  /// The integer grid index of `v`: round half away from zero via the
  /// reciprocal multiply + biased truncation, saturated to +-127 (+-Inf
  /// saturates, NaN maps to 0). This IS the grid definition — the INT8
  /// kernels and the fake-quant reference both call it, so their
  /// rounding agrees bit for bit. Inline select-shaped branches: the
  /// kernels' quantization loops must vectorize.
  [[nodiscard]] int quantize(float v) const noexcept {
    float q = v * (1.0f / scale);
    q = q > 127.0f ? 127.0f : q;
    q = q < -127.0f ? -127.0f : q;
    q = q != q ? 0.0f : q;  // NaN (the only value failing q == q)
    return static_cast<int>(q + (q >= 0.0f ? 0.5f : -0.5f));
  }
};

/// Largest finite |v| in the span (0 for empty). Non-finite elements are
/// skipped: a NaN/Inf outlier must not silently poison the scale — the
/// resulting grid still covers every finite value.
[[nodiscard]] float max_abs(std::span<const float> values) noexcept;

/// Fake-quantizes every element of `values` in place to `precision`
/// (no-op for FP32). INT8 scale is computed from the span itself.
void fake_quantize(std::span<float> values, Precision precision) noexcept;

/// Fake-quantizes a tensor in place.
void fake_quantize(sparse::DenseTensor& tensor, Precision precision) noexcept;

/// Worst-case quantization step for a tensor with the given max-abs value
/// (half the INT8 bucket width; fp16 relative epsilon scaled by range).
[[nodiscard]] double quantization_step(float max_abs_value,
                                       Precision precision) noexcept;

}  // namespace evedge::quant
