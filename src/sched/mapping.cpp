#include "sched/mapping.hpp"

#include <stdexcept>
#include <string>

namespace evedge::sched {

MappingCandidate uniform_candidate(const std::vector<nn::NetworkSpec>& specs,
                                   int pe, Precision precision) {
  MappingCandidate candidate;
  candidate.tasks.reserve(specs.size());
  for (const nn::NetworkSpec& spec : specs) {
    TaskMapping mapping;
    mapping.nodes.resize(spec.graph.size());
    for (const nn::LayerNode& node : spec.graph.nodes()) {
      const bool mappable = node.spec.kind != nn::LayerKind::kInput &&
                            node.spec.kind != nn::LayerKind::kOutput;
      if (mappable) {
        mapping.nodes[static_cast<std::size_t>(node.id)] =
            NodeAssignment{pe, precision};
      }
    }
    candidate.tasks.push_back(std::move(mapping));
  }
  return candidate;
}

void validate_candidate(const MappingCandidate& candidate,
                        const std::vector<hw::TaskProfile>& profiles,
                        const hw::Platform& platform) {
  if (candidate.tasks.size() != profiles.size()) {
    throw std::invalid_argument("candidate task count mismatch");
  }
  for (std::size_t t = 0; t < profiles.size(); ++t) {
    const TaskMapping& mapping = candidate.tasks[t];
    const hw::TaskProfile& profile = profiles[t];
    if (mapping.nodes.size() != profile.nodes.size()) {
      throw std::invalid_argument("candidate node count mismatch in task " +
                                  std::to_string(t));
    }
    for (std::size_t n = 0; n < profile.nodes.size(); ++n) {
      const hw::NodeProfile& np = profile.nodes[n];
      const NodeAssignment& a = mapping.nodes[n];
      if (!np.mappable) {
        if (a.pe >= 0) {
          throw std::invalid_argument(
              "non-mappable node assigned a PE in task " + std::to_string(t));
        }
        continue;
      }
      if (a.pe < 0 || a.pe >= platform.pe_count()) {
        throw std::invalid_argument("node " + std::to_string(n) +
                                    " of task " + std::to_string(t) +
                                    " has no valid PE");
      }
      if (!np.supported(a.pe, a.precision)) {
        throw std::invalid_argument(
            "node " + std::to_string(n) + " of task " + std::to_string(t) +
            " mapped to unsupported (" + platform.pe(a.pe).name + ", " +
            quant::to_string(a.precision) + ")");
      }
    }
  }
}

}  // namespace evedge::sched
