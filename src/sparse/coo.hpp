#pragma once

// CooChannel: one sparse 2-D channel in coordinate (COO) format — sorted
// row-major coordinates with float values and no duplicates. This is the
// building block of the two-channel sparse frames E2SF emits (paper §4.1:
// "store the row indices, column indices and their corresponding
// polarities as separate channels, similar to the sparse COO format").

#include <cstdint>
#include <span>
#include <vector>

namespace evedge::sparse {

/// One non-zero entry of a sparse channel.
struct CooEntry {
  std::int32_t row = 0;
  std::int32_t col = 0;
  float value = 0.0f;

  friend bool operator==(const CooEntry&, const CooEntry&) = default;
};

/// Sparse 2-D channel. Invariants (enforced on construction/mutation):
///  - entries sorted by (row, col), strictly increasing (no duplicates)
///  - all coordinates inside [0, height) x [0, width)
///  - no explicitly stored zero values
class CooChannel {
 public:
  CooChannel() = default;
  CooChannel(int height, int width);

  /// Builds from arbitrary (possibly unsorted / duplicated) entries by
  /// sorting and accumulating duplicates; zero-sum entries are dropped.
  [[nodiscard]] static CooChannel from_entries(int height, int width,
                                               std::vector<CooEntry> entries);

  /// Adopts entries the caller guarantees to already satisfy the class
  /// invariants (sorted by (row, col), unique, in-range, non-zero) — the
  /// contract kernel outputs meet by construction. O(1): no sort, no
  /// checks; violations surface via validate().
  [[nodiscard]] static CooChannel from_sorted_entries(
      int height, int width, std::vector<CooEntry> entries);

  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] const std::vector<CooEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }
  [[nodiscard]] double density() const noexcept;

  /// Accumulates `value` at (row, col); erases the entry if it cancels to
  /// zero. O(log n + n) worst case (vector insert); intended for
  /// construction-time accumulation, not inner loops.
  void accumulate(std::int32_t row, std::int32_t col, float value);

  /// Value at (row, col); 0 when absent. O(log n).
  [[nodiscard]] float at(std::int32_t row, std::int32_t col) const noexcept;

  /// Sparse ReLU: removes all negative entries. Implicit zeros already
  /// satisfy relu(0) == 0, so afterwards the channel densifies to exactly
  /// relu() of its previous dense image. Keeps ordering; invalidates the
  /// cached row index.
  void prune_negative() noexcept;

  /// CSR-style row index: row_ptr()[r] .. row_ptr()[r+1] delimit the
  /// entries of row r inside entries(); size is height()+1 and
  /// row_ptr()[height()] == nnz(). Built lazily on first access (O(h+nnz))
  /// and cached until the next mutation; not safe to build concurrently —
  /// call once before handing the channel to parallel workers.
  [[nodiscard]] const std::vector<std::int32_t>& row_ptr() const;

  /// O(1) slice of the entries in row `row` (requires 0 <= row < height).
  [[nodiscard]] std::span<const CooEntry> row_span(std::int32_t row) const;

  /// O(1) slice of the entries in rows [row0, row1), clamped to the
  /// channel extents (empty when the clamped range is empty) — the
  /// per-tile view the windowed kernels iterate. Shares row_span's lazy
  /// row_ptr() cache and its concurrency caveat.
  [[nodiscard]] std::span<const CooEntry> rows_span(std::int32_t row0,
                                                    std::int32_t row1) const;

  /// Sum of all stored values.
  [[nodiscard]] double value_sum() const noexcept;

  /// Throws std::logic_error if an invariant is violated (test hook).
  void validate() const;

 private:
  int height_ = 0;
  int width_ = 0;
  std::vector<CooEntry> entries_;
  // Lazy CSR row index cache; row_ptr_valid_ is reset by any mutation.
  mutable std::vector<std::int32_t> row_ptr_;
  mutable bool row_ptr_valid_ = false;
};

/// c = a + scale_b * b (merge-union). Extents must match.
[[nodiscard]] CooChannel add(const CooChannel& a, const CooChannel& b,
                             float scale_b = 1.0f);

/// Elementwise scaling (entries with zero result are removed).
[[nodiscard]] CooChannel scale(const CooChannel& a, float factor);

}  // namespace evedge::sparse
