#pragma once

// FunctionalNetwork: numerically executes a NetworkSpec on the CPU.
// This is the substrate behind every accuracy experiment: quantization
// and DSFA merging perturb the inputs/weights and the resulting output
// deviation (vs. the FP32 unmerged reference) drives the task metrics.
//
// Execution model (Background §2 input representations):
//  - SNN / hybrid nets: the event bins are presented sequentially as
//    `timesteps` 2-channel frames; spiking layers keep membrane state
//    across steps; the network output is the mean over timesteps.
//  - pure ANN nets: timesteps == 1 and all bins are stacked as channels.
//  - two-input nets (Fusion-FlowNet, HALSIE) additionally take a
//    grayscale image, constant across timesteps.
//
// Execution routes (exec_plan.hpp): with an ExecutionPlan installed, each
// conv-shaped node executes kDense, kCsr or kSubmanifold. Sparse-routed
// nodes consume and produce a COO activation carrier, so consecutive
// sparse layers chain in sparse form end to end; the engine crosses
// representations (sparsify/densify) only at route boundaries. kCsr
// results are bitwise identical to dense execution (zero-bias layers);
// kSubmanifold is stored-site exact (see exec_plan.hpp).

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "nn/exec_plan.hpp"
#include "nn/graph.hpp"
#include "nn/lif.hpp"
#include "sparse/sparse_ops.hpp"
#include "sparse/workspace.hpp"

namespace evedge::quant {
// Engine-side precision plan (quant/int8_kernels.hpp); held by pointer
// only, so the int8 backend headers stay out of every nn consumer.
struct QuantPlan;
struct NodeQuantPlan;
}  // namespace evedge::quant

namespace evedge::nn {

/// Per-run telemetry of the route-dispatched executor (reset by every
/// run()/run_batched(); counters accumulate over timesteps).
struct ExecStats {
  std::size_t node_executions = 0;     ///< nodes actually executed (the
                                       ///< timestep-invariant cache skips
                                       ///< constant-image subgraphs)
  std::size_t sparse_node_runs = 0;    ///< node executions on sparse routes
  std::size_t sparsify_boundaries = 0; ///< dense -> COO carrier conversions
  std::size_t densify_boundaries = 0;  ///< COO carrier -> dense conversions
  std::size_t sparse_macs = 0;         ///< MACs the sparse kernels executed
  std::size_t dense_macs_avoided = 0;  ///< dense MACs the routes replaced
};

/// Per-node execution observer: on_node fires after every node the
/// engine actually executes (cache-skipped nodes never fire), with the
/// route the node took, the timestep, and raw steady_clock nanosecond
/// stamps bracketing the node's kernel (+ activation hook). Nodes inside
/// a tiled chain fire once per tile fragment with `tile` in
/// [0, tile_count); every other execution reports (0, 1) — so summing
/// durations is always correct, and counting executions means counting
/// tile == 0 calls. The engine holds the observer as a non-owning
/// pointer and calls it from the run thread only; implementations must
/// be noexcept and cheap — this sits inside the per-node loop. The obs
/// layer's LayerProfiler builds per-layer execution profiles on top of
/// this hook.
class ExecObserver {
 public:
  virtual ~ExecObserver() = default;
  virtual void on_node(int node_id, Route route, int timestep,
                       std::uint64_t t0_ns, std::uint64_t t1_ns, int tile,
                       int tile_count) noexcept = 0;
};

class FunctionalNetwork {
 public:
  /// Materializes weights (He-scaled uniform, deterministic in `seed`) and
  /// per-channel LIF parameters for adaptive spiking layers.
  FunctionalNetwork(NetworkSpec spec, std::uint64_t seed);

  /// Deep copy for concurrent workers: identical spec, weights, biases
  /// and LIF parameters (including any post-construction weight edits),
  /// with a fresh workspace and value buffers, and with NO activation
  /// hook, exec observer, quant plan or execution plan carried over —
  /// plans are
  /// non-owning pointers into caller state, so every clone installs its
  /// own. Clones share no mutable state with the original: running them
  /// on separate threads is safe and bitwise reproduces the original
  /// (the serve worker-pool contract; see test_serve).
  [[nodiscard]] FunctionalNetwork clone() const;

  /// Runs one inference. `event_steps` must contain spec.timesteps
  /// tensors shaped like the event input node; `image`, when the graph
  /// has a second input, must match its shape. Returns the output-node
  /// tensor averaged over timesteps.
  [[nodiscard]] sparse::DenseTensor run(
      std::span<const sparse::DenseTensor> event_steps,
      const sparse::DenseTensor* image = nullptr);

  /// Batched inference over a DSFA merge batch: every tensor in
  /// `event_steps` is [N, C, H, W] (all with the same N) and the result
  /// is the [N, ...] output tensor whose sample n is bitwise identical
  /// to run() over sample n alone — the batch dimension threads through
  /// every kernel without changing per-sample arithmetic. Spiking layers
  /// keep independent per-sample membrane state. `image`, when required,
  /// may be [1, ...] (tiled across the batch) or [N, ...].
  [[nodiscard]] sparse::DenseTensor run_batched(
      std::span<const sparse::DenseTensor> event_steps,
      const sparse::DenseTensor* image = nullptr);

  [[nodiscard]] const NetworkSpec& spec() const noexcept { return spec_; }

  /// Learned parameters of a weight node (throws for helper nodes).
  [[nodiscard]] sparse::DenseTensor& weights(int node_id);
  [[nodiscard]] const sparse::DenseTensor& weights(int node_id) const;
  [[nodiscard]] std::vector<float>& bias(int node_id);
  [[nodiscard]] const std::vector<float>& bias(int node_id) const;

  /// Hook applied to each node's activations right after it executes
  /// (used by the quantization module for fake-quant inference).
  /// Returns the previously installed hook so scoped users (e.g. the
  /// calibration pass) can restore rather than clobber it.
  using ActivationHook =
      std::function<void(int node_id, sparse::DenseTensor& activation)>;
  ActivationHook set_activation_hook(ActivationHook hook) {
    ActivationHook previous = std::move(activation_hook_);
    activation_hook_ = std::move(hook);
    return previous;
  }

  /// Per-layer precision mode: nodes named in `plan` execute through the
  /// INT8 kernels (or their float fake-quant twin when plan->simulate),
  /// every other node runs FP32 — mixed-precision networks are the
  /// normal case, since the mapper assigns precision per layer. The plan
  /// is non-owning and must outlive its installation; it snapshots
  /// weights at build time (quant::build_quant_plan), so mutating
  /// weights() afterwards requires rebuilding it. nullptr restores pure
  /// FP32 execution. Applies to run() and run_batched() alike; per-node
  /// plan entries must reference weight nodes of this graph (the whole
  /// plan is validated before any state changes). Returns the
  /// previously installed plan for scoped save/restore.
  const quant::QuantPlan* set_quant_plan(const quant::QuantPlan* plan);

  /// Per-node execution routes (exec_plan.hpp): nodes routed kCsr or
  /// kSubmanifold execute the gather sparse kernels on a COO activation
  /// carrier (the int8 sparse kernels when the node is also in the quant
  /// plan), every other node runs the dense path. The plan is non-owning
  /// and must outlive its installation; the whole plan is validated
  /// before any state changes (routes only on conv-shaped zero-bias
  /// nodes; kSubmanifold additionally requires stride-1 same-extent
  /// geometry). nullptr restores all-dense execution. While an
  /// activation hook is installed, every node runs dense (hooks observe
  /// and may mutate dense activations). Returns the previously installed
  /// plan for scoped save/restore.
  const ExecutionPlan* set_execution_plan(const ExecutionPlan* plan);
  [[nodiscard]] const ExecutionPlan* execution_plan() const noexcept {
    return exec_plan_;
  }

  /// Route/boundary telemetry of the last run() / run_batched().
  [[nodiscard]] const ExecStats& last_exec_stats() const noexcept {
    return exec_stats_;
  }

  /// Installs a per-node timing observer (nullptr uninstalls). The
  /// pointer is non-owning and must outlive its installation; when no
  /// observer is installed the per-node cost is a single null check —
  /// no clocks are read. Not carried by clone() (observers are
  /// per-thread state, like plans and hooks). Returns the previously
  /// installed observer for scoped save/restore.
  ExecObserver* set_exec_observer(ExecObserver* observer) noexcept {
    ExecObserver* previous = exec_observer_;
    exec_observer_ = observer;
    return previous;
  }
  [[nodiscard]] ExecObserver* exec_observer() const noexcept {
    return exec_observer_;
  }

  /// Mean firing rate of a spiking node measured over the last run()
  /// (0 for non-spiking nodes or before any run).
  [[nodiscard]] double mean_firing_rate(int node_id) const;

  /// Mean firing rate across all spiking nodes over the last run().
  [[nodiscard]] double network_firing_rate() const;

  /// The scratch arena threaded through every kernel this network runs
  /// (im2col columns, gather rows, ...). Exposed for observability —
  /// tests assert it stops growing once warm.
  [[nodiscard]] const sparse::Workspace& workspace() const noexcept {
    return workspace_;
  }

 private:
  void reset_spiking_state();
  /// Rebuilds spiking state at the requested batch size (no-op when it
  /// already matches).
  void ensure_lif_batch(int batch);
  [[nodiscard]] sparse::DenseTensor run_impl(
      std::span<const sparse::DenseTensor> event_steps,
      const sparse::DenseTensor* image, int batch);
  /// The active plan entry for a node (nullptr when the node runs FP32).
  [[nodiscard]] const quant::NodeQuantPlan* node_quant(
      std::size_t idx) const noexcept {
    return idx < node_quant_.size() ? node_quant_[idx] : nullptr;
  }
  /// Executes one conv-shaped node through the plan entry: the int8
  /// kernel, or — in simulate mode — the float kernel over the
  /// fake-quantized operands (identical quantization decisions).
  void run_quant_conv(const quant::NodeQuantPlan& nq,
                      const sparse::DenseTensor& input,
                      std::span<const float> bias,
                      sparse::DenseTensor& out);
  void run_quant_tconv(const quant::NodeQuantPlan& nq,
                       const sparse::DenseTensor& input,
                       std::span<const float> bias,
                       sparse::DenseTensor& out);
  [[nodiscard]] sparse::DenseTensor run_quant_fc(
      const quant::NodeQuantPlan& nq, const sparse::DenseTensor& input,
      std::span<const float> bias);

  // --- Route-dispatched execution (exec_plan.hpp) -----------------------
  /// The route a node actually takes this run: the plan's route, demoted
  /// to kDense while an activation hook is installed or for quant
  /// simulate-mode nodes (the fake-quant twin is a dense oracle).
  [[nodiscard]] Route effective_route(std::size_t idx) const noexcept;
  /// Packs [tap][oc] weight rows for every sparse-routed FP32 node into
  /// the workspace's per-node slots (once per run).
  void prepare_packed_weights();
  /// Dense view of a node's output, densifying the COO carrier on first
  /// access (cached for the rest of the timestep).
  [[nodiscard]] const sparse::DenseTensor& dense_value(int node_id);
  /// COO carrier view of a node's output, sparsifying the dense tensor
  /// on first access (cached for the rest of the timestep).
  [[nodiscard]] const std::vector<sparse::SparseSample>& sparse_value(
      int node_id);
  /// Executes one conv-shaped node on a sparse route into its COO
  /// carrier (float gather kernels, or the int8 ones when planned).
  void run_sparse_conv(const LayerNode& node, std::size_t idx, Route route);
  /// Densifies per-sample channels into `out` ([N, C, H, W]).
  void densify_samples(const std::vector<sparse::SparseSample>& samples,
                       sparse::DenseTensor& out);

  // --- Tiled chain execution (exec_plan.hpp TilePlan) -------------------
  /// Precomputed per-tile row geometry of one chain layer: OWNED output
  /// rows (each global row owned by exactly one tile) and the WINDOW
  /// rows actually computed (owned plus the halo later layers need),
  /// indexed by tile.
  struct ChainLayerWindows {
    std::vector<int> own0, own1, win0, win1;
  };
  /// One installed TileChain, compiled against this graph: member node
  /// ids, per-layer tile windows (halo growth resolved backward through
  /// the chain's kernel extents and strides at install time), and the
  /// per-layer owned-entry accumulators the walker commits into
  /// (buffers reused across timesteps and runs).
  struct ChainExec {
    std::vector<int> nodes;
    int tiles = 1;
    std::vector<ChainLayerWindows> layers;
    int done_step = -1;  ///< timestep this chain last ran (reset per run)
    std::vector<std::vector<std::vector<std::vector<sparse::CooEntry>>>>
        acc;  ///< [layer][sample][channel] committed entries
  };
  /// True when every chain member keeps its sparse route this run (any
  /// demoted member — quant simulate, hook — runs the chain untiled).
  [[nodiscard]] bool chain_routes_active(
      const ChainExec& chain) const noexcept;
  /// Executes one timestep of `chain` tile by tile: each exit-row band
  /// is pushed through every chain layer (windowed kernels, banded LIF
  /// stepping) before the next band starts; owned output rows are
  /// committed per layer and published as the nodes' COO carriers.
  /// Bitwise identical to the untiled per-node execution of the same
  /// nodes for every tile geometry.
  void run_tiled_chain(ChainExec& chain, int timestep);

  NetworkSpec spec_;
  std::vector<sparse::DenseTensor> weights_;   // per node (empty if none)
  std::vector<std::vector<float>> biases_;     // per node
  std::vector<std::vector<float>> channel_leak_;       // adaptive LIF
  std::vector<std::vector<float>> channel_threshold_;  // adaptive LIF
  std::vector<LifState> lif_;                  // per node (spiking only)
  std::vector<bool> is_spiking_;
  // Nodes whose value cannot change across timesteps (the constant
  // image input and every stateless node fed only by such nodes);
  // run_impl computes them once per run instead of once per timestep.
  std::vector<std::uint8_t> time_invariant_;
  ActivationHook activation_hook_;
  // Steady-state buffers: per-node activations, the spiking-conv synaptic
  // current staging tensor and the kernel scratch arena are all reused
  // across run() calls (and across the samples of a batched run).
  sparse::Workspace workspace_;
  std::vector<sparse::DenseTensor> values_;
  sparse::DenseTensor conv_scratch_;
  sparse::DenseTensor image_batch_;
  // Per-layer precision plan: non-owning pointer plus a per-node index,
  // and a staging tensor for the simulate path's quantized input copies.
  const quant::QuantPlan* quant_plan_ = nullptr;
  std::vector<const quant::NodeQuantPlan*> node_quant_;
  sparse::DenseTensor quant_staging_;
  // Execution routes: non-owning plan pointer, flattened per-node route
  // table, per-node COO activation carriers (persistent across runs, like
  // values_) and the per-timestep representation-validity flags.
  const ExecutionPlan* exec_plan_ = nullptr;
  std::vector<Route> node_route_;
  std::vector<std::vector<sparse::SparseSample>> sparse_values_;
  std::vector<std::uint8_t> dense_valid_;
  std::vector<std::uint8_t> sparse_valid_;
  // Tiled chains compiled from the plan's TilePlan at install time, plus
  // the node -> chain index (-1 outside every chain).
  std::vector<ChainExec> tile_chains_;
  std::vector<int> chain_of_node_;
  // Spiking nodes whose spikes feed a sparse-routed consumer this run
  // emit COO directly (LifState::step_sparse) instead of a dense spike
  // tensor the consumer would immediately re-scan; `spike_staging_` is
  // the reused emission buffer.
  std::vector<std::uint8_t> spike_sparse_emit_;
  SpikeCoo spike_staging_;
  ExecStats exec_stats_;
  ExecObserver* exec_observer_ = nullptr;
};

/// Center-crops `t` spatially to (h, w); h/w must not exceed the extents.
[[nodiscard]] sparse::DenseTensor center_crop(const sparse::DenseTensor& t,
                                              int h, int w);

}  // namespace evedge::nn
