// Observability test suite: the lock-free trace ring's bounded
// never-wrap/drop contract (including concurrent writers — the TSan CI
// job runs this file), Chrome trace export/import round trips, the
// log-scale histogram's percentile error bound against serve's exact
// LatencyReservoir, Prometheus text round trips, the per-layer
// execution profiler against the engine's own execution counters and
// hw's analytic tables, the journal/trace shared-clock contract, and
// end-to-end traced serving (local streams and the wire loopback path).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_executor.hpp"
#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "hw/platform.hpp"
#include "nn/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "serve/journal.hpp"
#include "serve/serving_runtime.hpp"
#include "wire/session.hpp"
#include "wire/transport.hpp"

namespace ec = evedge::core;
namespace ee = evedge::events;
namespace eh = evedge::hw;
namespace en = evedge::nn;
namespace eo = evedge::obs;
namespace es = evedge::sparse;
namespace ev = evedge::serve;
namespace ew = evedge::wire;

using namespace std::chrono_literals;

namespace {

std::string temp_path(const std::string& tag) {
  return "/tmp/evedge_obs_" + tag + "_" + std::to_string(::getpid());
}

ee::EventStream matched_stream(int h, int w, ee::TimeUs duration,
                               std::uint64_t seed) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{w, h};
  cfg.seed = seed;
  cfg.blob_count = 3;
  ee::DensityProfile profile("obs-test", 40.0, {}, 10.0, 0.4);
  return ee::PoissonEventSynthesizer(profile, cfg).generate(0, duration);
}

/// Quiesce-time tracer reset shared by the tracer tests: capacity for
/// rings created from here on, empty rings, tracing on.
void reset_tracer(std::size_t capacity) {
  eo::Tracer::set_enabled(false);
  eo::Tracer::instance().set_ring_capacity(capacity);
  eo::Tracer::instance().clear();
  eo::Tracer::set_enabled(true);
}

}  // namespace

// ------------------------------------------------------------ trace ring

TEST(TraceRing, BoundedRingDropsInsteadOfWrapping) {
  reset_tracer(8);
  // Fresh thread -> fresh ring at the capacity just installed (existing
  // rings keep theirs).
  std::thread emitter([] {
    for (int i = 0; i < 20; ++i) {
      eo::Tracer::instant("test", "wrap", "i", i);
    }
  });
  emitter.join();
  eo::Tracer::set_enabled(false);

  const std::vector<eo::TraceEvent> events = eo::Tracer::instance().collect();
  std::vector<std::int64_t> args;
  for (const eo::TraceEvent& e : events) {
    if (std::string(e.name) == "wrap") args.push_back(e.arg0);
  }
  // The ring holds the run PREFIX: the first 8 events, never a rotated
  // window, and the 12 overflow events are counted as drops.
  ASSERT_EQ(args.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(args[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(eo::Tracer::instance().dropped(), 12u);
  eo::Tracer::instance().clear();
}

TEST(TraceRing, ConcurrentWritersLoseNothingUnaccounted) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  reset_tracer(1u << 10);  // small enough that drops actually occur

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        eo::Tracer::instant("test", "mt", "thread", t, "i", i);
        eo::Tracer::span("test", "mt.span", eo::now_ns(), eo::now_ns(),
                         "thread", t);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  eo::Tracer::set_enabled(false);

  const std::vector<eo::TraceEvent> events = eo::Tracer::instance().collect();
  std::size_t ours = 0;
  std::map<std::uint32_t, std::uint64_t> last_ts;
  for (const eo::TraceEvent& e : events) {
    const std::string name(e.name);
    if (name != "mt" && name != "mt.span") continue;
    ++ours;
    // Per-ring emit order is publication order: timestamps never go
    // backwards within one tid.
    const auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) EXPECT_GE(e.t_ns, it->second);
    last_ts[e.tid] = e.t_ns;
  }
  // Collected + dropped accounts for every emit; nothing vanishes.
  EXPECT_EQ(ours + eo::Tracer::instance().dropped(),
            static_cast<std::size_t>(kThreads) * kPerThread * 2);
  EXPECT_GE(last_ts.size(), static_cast<std::size_t>(kThreads));
  eo::Tracer::instance().clear();
}

TEST(TraceRing, DisabledEmitsNothing) {
  eo::Tracer::set_enabled(false);
  eo::Tracer::instance().clear();
  eo::Tracer::instant("test", "off");
  eo::Tracer::span("test", "off", 0, 10);
  eo::Tracer::counter("test", "off", 42);
  {
    const eo::ScopedSpan span("test", "off.scoped");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(eo::Tracer::instance().collect().empty());
  EXPECT_EQ(eo::Tracer::instance().dropped(), 0u);
}

TEST(TraceIo, ChromeExportRoundTrips) {
  reset_tracer(1u << 10);
  std::thread emitter([] {
    eo::Tracer::span("cat_a", "span_one", 1000, 3500, "stream", 3, "seq", 9);
    eo::Tracer::instant("cat_b", "instant \"quoted\"", "k", -1);
    eo::Tracer::counter("cat_c", "depth", 17);
  });
  emitter.join();
  eo::Tracer::set_enabled(false);

  const std::string path = temp_path("trace_roundtrip") + ".json";
  const std::vector<eo::TraceEvent> events = eo::Tracer::instance().collect();
  ASSERT_EQ(events.size(), 3u);
  std::string error;
  ASSERT_TRUE(eo::write_chrome_trace_file(path, events, &error)) << error;

  const std::vector<eo::ParsedEvent> parsed = eo::read_chrome_trace(path);
  ASSERT_EQ(parsed.size(), 3u);
  std::map<std::string, const eo::ParsedEvent*> by_name;
  for (const eo::ParsedEvent& e : parsed) by_name[e.name] = &e;

  ASSERT_TRUE(by_name.count("span_one"));
  const eo::ParsedEvent& span = *by_name["span_one"];
  EXPECT_EQ(span.ph, 'X');
  EXPECT_DOUBLE_EQ(span.ts_us, 1.0);       // 1000 ns
  EXPECT_DOUBLE_EQ(span.dur_us, 2.5);      // 2500 ns
  EXPECT_EQ(span.cat, "cat_a");
  EXPECT_NE(span.args_json.find("\"stream\""), std::string::npos);
  EXPECT_NE(span.args_json.find("9"), std::string::npos);

  ASSERT_TRUE(by_name.count("instant \"quoted\""));  // escape round trip
  EXPECT_EQ(by_name["instant \"quoted\""]->ph, 'i');
  ASSERT_TRUE(by_name.count("depth"));
  EXPECT_EQ(by_name["depth"]->ph, 'C');

  eo::Tracer::instance().clear();
  std::remove(path.c_str());
}

// ------------------------------------------------------------- histogram

TEST(Metrics, HistogramBucketsAndPercentileBound) {
  eo::Histogram::Options options;
  options.min = 10.0;
  options.growth = 2.0;
  options.buckets = 10;
  eo::Histogram h(options);

  h.observe(5.0);     // <= min -> bucket 0
  h.observe(10.0);    // == min -> bucket 0
  h.observe(11.0);    // (10, 20] -> bucket 1
  h.observe(20.0);    // (10, 20] -> bucket 1
  h.observe(21.0);    // (20, 40] -> bucket 2
  h.observe(1e9);     // beyond the top bound -> last bucket
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 2u);
  EXPECT_EQ(h.bucket_value(2), 1u);
  EXPECT_EQ(h.bucket_value(9), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_upper(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(1), 20.0);
  EXPECT_TRUE(std::isinf(h.bucket_upper(9)));

  // percentile() answers the holding bucket's upper bound: p50 of the
  // six samples (rank 3) lands in bucket 1.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 20.0);
  EXPECT_TRUE(std::isinf(h.percentile(1.0)));
  EXPECT_DOUBLE_EQ(eo::Histogram(options).percentile(0.5), 0.0);
}

TEST(Metrics, HistogramAgreesWithReservoirWithinOneBucket) {
  // The contract the header documents: the histogram percentile equals
  // the exact (nearest-rank reservoir) percentile to within one bucket
  // width — i.e. exact < answer <= exact * growth for in-range samples.
  eo::Histogram::Options options;
  options.min = 50.0;
  options.growth = 1.5;
  options.buckets = 40;
  eo::Histogram h(options);
  ev::LatencyReservoir reservoir;

  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 5000; ++i) {
    // xorshift64* in [100, ~50100) us — inside the histogram's range.
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const double v =
        100.0 + static_cast<double>((state * 0x2545f4914f6cdd1dull) %
                                    50'000'000ull) /
                    1e3;
    h.observe(v);
    reservoir.add(v);
  }
  for (const double q : {0.50, 0.95, 0.99}) {
    const double exact = reservoir.percentile_us(q);
    const double binned = h.percentile(q);
    EXPECT_GE(binned, exact) << "q=" << q;
    EXPECT_LE(binned, exact * options.growth) << "q=" << q;
  }
}

TEST(Metrics, PrometheusTextRoundTrips) {
  eo::MetricsRegistry registry;  // private registry: values are exact
  eo::Counter& frames = registry.counter("frames_total", "frames served");
  eo::Gauge& depth = registry.gauge("queue_depth");
  eo::Histogram::Options options;
  options.min = 10.0;
  options.growth = 2.0;
  options.buckets = 4;
  eo::Histogram& lat = registry.histogram("latency_us", options);
  frames.add(41);
  frames.add();
  depth.set(7.5);
  lat.observe(5.0);
  lat.observe(15.0);
  lat.observe(1e6);

  // Re-registration returns the same metric; a kind clash throws.
  EXPECT_EQ(&registry.counter("frames_total"), &frames);
  EXPECT_THROW((void)registry.gauge("frames_total"), std::invalid_argument);
  EXPECT_EQ(registry.size(), 3u);

  // Tiny exposition-format reader: "name value" samples, `le` labels
  // kept as part of the name.
  std::map<std::string, double> samples;
  const std::string text = registry.prometheus_text();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }

  EXPECT_DOUBLE_EQ(samples.at("frames_total"), 42.0);
  EXPECT_DOUBLE_EQ(samples.at("queue_depth"), 7.5);
  EXPECT_DOUBLE_EQ(samples.at("latency_us_count"), 3.0);
  EXPECT_DOUBLE_EQ(samples.at("latency_us_sum"), 5.0 + 15.0 + 1e6);
  // Cumulative buckets: le=10 holds 1, le=20 holds 2, +Inf holds all 3.
  EXPECT_DOUBLE_EQ(samples.at("latency_us_bucket{le=\"10\"}"), 1.0);
  EXPECT_DOUBLE_EQ(samples.at("latency_us_bucket{le=\"20\"}"), 2.0);
  EXPECT_DOUBLE_EQ(samples.at("latency_us_bucket{le=\"+Inf\"}"), 3.0);
  EXPECT_NE(text.find("# HELP frames_total frames served"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_us histogram"), std::string::npos);

  // JSON snapshot carries the same totals.
  const std::string json = registry.json_text();
  EXPECT_NE(json.find("\"frames_total\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
}

// ------------------------------------------------------- labeled metrics

TEST(LabeledMetrics, LabelSetCanonicalizesAndInternsStably) {
  // Construction order does not matter: sets sort by key, equal sets
  // intern to the same stable id.
  const eo::LabelSet a{{"stream", "3"}, {"route", "csr"}};
  const eo::LabelSet b{{"route", "csr"}, {"stream", "3"}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.key(), b.key());
  EXPECT_EQ(a.prometheus(), "{route=\"csr\",stream=\"3\"}");
  EXPECT_EQ(eo::intern_labels(a), eo::intern_labels(b));

  const eo::LabelSet c{{"route", "dense"}, {"stream", "3"}};
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.key(), c.key());
  EXPECT_NE(eo::intern_labels(a), eo::intern_labels(c));

  // Duplicated key: the first value wins, deterministically.
  const eo::LabelSet dup{{"k", "first"}, {"k", "second"}};
  ASSERT_EQ(dup.pairs().size(), 1u);
  EXPECT_EQ(dup.pairs().front().second, "first");

  EXPECT_TRUE(eo::LabelSet{}.empty());
  EXPECT_EQ(eo::LabelSet{}.prometheus(), "");
  // The histogram `le` label is appended inside the braces.
  EXPECT_EQ(a.prometheus({{"le", "10"}}),
            "{route=\"csr\",stream=\"3\",le=\"10\"}");
}

TEST(LabeledMetrics, PrometheusAndJsonRoundTripLabeledSeries) {
  eo::MetricsRegistry registry;
  eo::LabeledCounter& frames =
      registry.labeled_counter("frames_total", "frames by stream");
  frames.at({{"stream", "0"}, {"outcome", "completed"}}).add(7);
  frames.at({{"stream", "1"}, {"outcome", "completed"}}).add(2);
  frames.at({{"stream", "1"}, {"outcome", "shed"}}).add();
  eo::LabeledGauge& burn = registry.labeled_gauge("burn_rate");
  burn.at({{"stream", "0"}}).set(1.25);
  eo::Histogram::Options options;
  options.min = 10.0;
  options.growth = 2.0;
  options.buckets = 4;
  eo::LabeledHistogram& lat =
      registry.labeled_histogram("lat_us", options, "latency by stream");
  lat.at({{"stream", "0"}}).observe(5.0);
  lat.at({{"stream", "0"}}).observe(15.0);

  // Re-registration returns the same family; kind clashes throw (both
  // labeled-vs-labeled and labeled-vs-plain).
  EXPECT_EQ(&registry.labeled_counter("frames_total"), &frames);
  EXPECT_THROW((void)registry.labeled_gauge("frames_total"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.counter("frames_total"),
               std::invalid_argument);

  std::map<std::string, double> samples;
  const std::string text = registry.prometheus_text();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }

  EXPECT_DOUBLE_EQ(
      samples.at("frames_total{outcome=\"completed\",stream=\"0\"}"), 7.0);
  EXPECT_DOUBLE_EQ(
      samples.at("frames_total{outcome=\"completed\",stream=\"1\"}"), 2.0);
  EXPECT_DOUBLE_EQ(samples.at("frames_total{outcome=\"shed\",stream=\"1\"}"),
                   1.0);
  EXPECT_DOUBLE_EQ(samples.at("burn_rate{stream=\"0\"}"), 1.25);
  // Labeled histogram: full conformance — cumulative buckets with `le`
  // appended to the series labels, plus per-series _sum/_count.
  EXPECT_DOUBLE_EQ(samples.at("lat_us_bucket{stream=\"0\",le=\"10\"}"), 1.0);
  EXPECT_DOUBLE_EQ(samples.at("lat_us_bucket{stream=\"0\",le=\"+Inf\"}"),
                   2.0);
  EXPECT_DOUBLE_EQ(samples.at("lat_us_sum{stream=\"0\"}"), 20.0);
  EXPECT_DOUBLE_EQ(samples.at("lat_us_count{stream=\"0\"}"), 2.0);
  // No overflow yet: the dropped-series lane stays out of the scrape.
  EXPECT_EQ(text.find("frames_total_dropped_series"), std::string::npos);
  EXPECT_NE(text.find("# HELP frames_total frames by stream"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);

  const std::string json = registry.json_text();
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_series\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\": \"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"stream\": \"1\""), std::string::npos);
}

TEST(LabeledMetrics, ExpositionEscapesLabelValuesAndHelp) {
  EXPECT_EQ(eo::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(eo::prometheus_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(eo::prometheus_escape_help("say \"hi\"\nback\\slash"),
            "say \"hi\"\\nback\\\\slash");

  eo::MetricsRegistry registry;
  registry.counter("plain_total", "line one\nline two");
  registry.labeled_counter("hostile_total")
      .at({{"path", "C:\\tmp\n\"x\""}})
      .add();
  const std::string text = registry.prometheus_text();
  // HELP newline escaped -> the exposition stays one line per sample.
  EXPECT_NE(text.find("# HELP plain_total line one\\nline two"),
            std::string::npos);
  EXPECT_NE(
      text.find("hostile_total{path=\"C:\\\\tmp\\n\\\"x\\\"\"} 1"),
      std::string::npos);
}

TEST(LabeledMetrics, CardinalityCapNeverDropsAccounting) {
  constexpr std::size_t kCap = 4;
  constexpr int kDistinct = 10;
  eo::MetricsRegistry registry;
  eo::LabeledCounter& family =
      registry.labeled_counter("capped_total", "", kCap);

  std::uint64_t expected = 0;
  for (int i = 0; i < kDistinct; ++i) {
    const auto n = static_cast<std::uint64_t>(i + 1);
    family.at({{"stream", std::to_string(i)}}).add(n);
    expected += n;
  }
  // Exactly kCap live series; every over-cap request routed (and
  // counted) to the overflow series, so nothing vanished.
  EXPECT_EQ(family.series_count(), kCap);
  EXPECT_EQ(family.dropped(),
            static_cast<std::uint64_t>(kDistinct - kCap));
  std::uint64_t total = 0;
  bool saw_overflow = false;
  for (const auto* s : family.series()) {
    total += s->metric->value();
    if (!s->labels.pairs().empty() &&
        s->labels.pairs().front().first == "overflow") {
      saw_overflow = true;
    }
  }
  EXPECT_EQ(total, expected);
  EXPECT_TRUE(saw_overflow);

  // Existing series stay addressable at the cap; only new label sets
  // route to overflow.
  family.at({{"stream", "0"}}).add();
  EXPECT_EQ(family.dropped(),
            static_cast<std::uint64_t>(kDistinct - kCap));

  // The scrape surfaces the loss: a dropped-series counter appears
  // once overflow happened, alongside the overflow series itself.
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("capped_total_dropped_series 6"), std::string::npos);
  EXPECT_NE(text.find("capped_total{overflow=\"true\"}"),
            std::string::npos);
}

TEST(LabeledMetrics, ConcurrentFirstTouchIsExact) {
  // Many threads race to first-touch the same 16 label sets (the TSan
  // CI job runs this): every add must land, exactly 16 series exist,
  // and equal label sets resolve to the same series object.
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  constexpr int kSets = 16;
  eo::MetricsRegistry registry;
  eo::LabeledCounter& family = registry.labeled_counter("race_total");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&family, t] {
      for (int i = 0; i < kIters; ++i) {
        const int set = (t + i) % kSets;
        family.at({{"stream", std::to_string(set)}}).add();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(family.series_count(), static_cast<std::size_t>(kSets));
  EXPECT_EQ(family.dropped(), 0u);
  std::uint64_t total = 0;
  for (const auto* s : family.series()) total += s->metric->value();
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIters);
  for (int set = 0; set < kSets; ++set) {
    const eo::LabelSet labels{{"stream", std::to_string(set)}};
    EXPECT_EQ(&family.at(labels), &family.at(labels));
    EXPECT_EQ(family.at(labels).value(),
              static_cast<std::uint64_t>(kThreads) * kIters / kSets);
  }
}

TEST(Metrics, SnapshotterWritesAtomicSnapshots) {
  eo::MetricsRegistry registry;
  eo::Counter& ticks = registry.counter("ticks_total");
  eo::Gauge& live = registry.gauge("live_value");
  const std::string prom = temp_path("snap") + ".prom";
  const std::string json = temp_path("snap") + ".json";

  eo::Snapshotter snapshotter(registry, 5.0, prom, json);
  int sampled = 0;
  snapshotter.set_sample_hook([&] {
    ++sampled;
    live.set(static_cast<double>(sampled));
  });
  ticks.add(3);
  snapshotter.start();
  std::this_thread::sleep_for(30ms);
  snapshotter.stop();  // joins, then writes the final snapshot

  EXPECT_GE(snapshotter.snapshots_written(), 1u);
  EXPECT_GE(sampled, 1);
  std::string text;
  {
    std::FILE* f = std::fopen(prom.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    text.assign(buf, n);
    std::fclose(f);
  }
  EXPECT_NE(text.find("ticks_total 3"), std::string::npos);
  // The final (post-stop) snapshot saw the last sample-hook refresh.
  EXPECT_NE(text.find("live_value"), std::string::npos);
  std::remove(prom.c_str());
  std::remove(json.c_str());
}

// ------------------------------------------------------- layer profiler

TEST(LayerProfiler, CountsEveryExecutedNode) {
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kDotie, en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 7);
  eo::LayerProfiler profiler(spec);
  EXPECT_EQ(net.set_exec_observer(&profiler), nullptr);

  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  const ee::EventStream stream =
      matched_stream(shape.h, shape.w, 150'000, 11);
  const std::vector<es::SparseFrame> frames =
      ev::ServingRuntime::ingest(stream, ev::IngressConfig{});
  ASSERT_FALSE(frames.empty());

  const bool needs_image = spec.graph.input_ids().size() > 1;
  const es::DenseTensor image =
      needs_image ? ec::make_reference_image(spec) : es::DenseTensor{};
  std::vector<es::DenseTensor> steps;
  std::vector<es::SparseFrame> one(1);
  one.front() = frames.front();
  ec::frames_to_event_steps(one, shape, spec.timesteps, steps);
  (void)net.run_batched(steps, needs_image ? &image : nullptr);

  // The observer fires exactly once per executed node — cache-skipped
  // nodes fire neither the engine counter nor the hook.
  EXPECT_EQ(profiler.observed(), net.last_exec_stats().node_executions);
  ASSERT_GT(profiler.observed(), 0u);

  const std::vector<eo::NodeRouteProfile> rows = profiler.snapshot();
  ASSERT_FALSE(rows.empty());
  std::uint64_t runs = 0;
  for (const eo::NodeRouteProfile& row : rows) {
    EXPECT_GE(row.max_ns, 0u);
    EXPECT_FALSE(row.name.empty());
    runs += row.runs;
  }
  EXPECT_EQ(runs, profiler.observed());

  profiler.reset();
  EXPECT_EQ(profiler.observed(), 0u);
  net.set_exec_observer(nullptr);
}

TEST(LayerProfiler, CrossCheckAgainstAnalyticTables) {
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kDotie, en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 7);
  eo::LayerProfiler profiler(spec);
  net.set_exec_observer(&profiler);

  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  const bool needs_image = spec.graph.input_ids().size() > 1;
  const es::DenseTensor image =
      needs_image ? ec::make_reference_image(spec) : es::DenseTensor{};
  const ee::EventStream stream =
      matched_stream(shape.h, shape.w, 150'000, 13);
  const std::vector<es::SparseFrame> frames =
      ev::ServingRuntime::ingest(stream, ev::IngressConfig{});
  ASSERT_FALSE(frames.empty());
  std::vector<es::DenseTensor> steps;
  std::vector<es::SparseFrame> one(1);
  std::uint64_t inferences = 0;
  for (const es::SparseFrame& frame : frames) {
    one.front() = frame;
    ec::frames_to_event_steps(one, shape, spec.timesteps, steps);
    (void)net.run_batched(steps, needs_image ? &image : nullptr);
    ++inferences;
  }
  net.set_exec_observer(nullptr);

  const eh::Platform platform = eh::xavier_agx();
  const eo::ProfileCrossCheckReport report = eo::cross_check_profiles(
      spec, profiler.snapshot(), platform, inferences);
  EXPECT_EQ(report.network, spec.name);
  EXPECT_EQ(report.inferences, inferences);
  ASSERT_FALSE(report.rows.empty());
  bool any_measured = false;
  bool any_analytic = false;
  for (const eo::ProfileCrossCheckRow& row : report.rows) {
    if (row.measured_us > 0.0) any_measured = true;
    if (row.analytic_us > 0.0) {
      any_analytic = true;
      if (row.measured_us > 0.0) EXPECT_GT(row.ratio, 0.0);
    }
  }
  EXPECT_TRUE(any_measured);
  EXPECT_TRUE(any_analytic);
  EXPECT_NE(report.text().find(spec.name), std::string::npos);
}

// ------------------------------------------------------- shared timeline

TEST(Journal, SharesTheTraceEpoch) {
  const std::string path = temp_path("journal");
  const double before_ms = static_cast<double>(eo::now_ns()) / 1e6;
  {
    ev::FaultJournal journal(path);
    journal.append("run", "phase=start");
  }
  const double after_ms = static_cast<double>(eo::now_ns()) / 1e6;

  const auto entries = ev::FaultJournal::read(path);
  ASSERT_EQ(entries.size(), 1u);
  // Journal t_ms is measured from obs::trace_epoch() — the same zero
  // the tracer stamps against — so it brackets between two now_ns()
  // reads with no clock translation.
  EXPECT_GE(entries.front().t_ms, before_ms);
  EXPECT_LE(entries.front().t_ms, after_ms);
  std::remove(path.c_str());
}

TEST(Journal, OverlayRebasesOntoTraceTimeline) {
  // The `evedge_trace export --journal` overlay: t_ms becomes ts_us by
  // unit conversion alone (the epoch is already shared), entries become
  // instant events, and the free-form detail is JSON-escaped.
  std::vector<ev::FaultJournal::Entry> entries;
  entries.push_back({12.5, "quarantine", "stream=0 seq=3"});
  entries.push_back({99.125, "degrade", "level=2 \"why\"=watermark"});

  const std::vector<eo::ParsedEvent> overlay = ev::journal_overlay(entries);
  ASSERT_EQ(overlay.size(), 2u);
  EXPECT_EQ(overlay[0].ph, 'i');
  EXPECT_DOUBLE_EQ(overlay[0].ts_us, 12'500.0);
  EXPECT_EQ(overlay[0].cat, "journal");
  EXPECT_EQ(overlay[0].name, "quarantine");
  EXPECT_EQ(overlay[0].args_json, "{\"detail\": \"stream=0 seq=3\"}");
  EXPECT_DOUBLE_EQ(overlay[1].ts_us, 99'125.0);
  // Quotes in the detail survive as valid JSON.
  EXPECT_NE(overlay[1].args_json.find("\\\"why\\\""), std::string::npos);
}

TEST(Journal, OverlayToleratesTornTail) {
  // A crash mid-append leaves a torn final line; the reader must keep
  // every complete entry and the overlay must carry exactly those.
  const std::string path = temp_path("journal_torn");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("10.000\trun\tphase=start\n", f);
    std::fputs("20.500\tinject\tstream=1 seq=4 action=stall\n", f);
    std::fputs("31.2\tquaran", f);  // torn: no tab2, no newline
    std::fclose(f);
  }
  const auto entries = ev::FaultJournal::read(path);
  ASSERT_EQ(entries.size(), 2u);
  const std::vector<eo::ParsedEvent> overlay = ev::journal_overlay(entries);
  ASSERT_EQ(overlay.size(), 2u);
  EXPECT_DOUBLE_EQ(overlay[0].ts_us, 10'000.0);
  EXPECT_DOUBLE_EQ(overlay[1].ts_us, 20'500.0);
  EXPECT_EQ(overlay[1].name, "inject");
  std::remove(path.c_str());
}

// -------------------------------------------------- end-to-end serving

TEST(ServeObservability, TracedRunExportsTimelineAndMetrics) {
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;

  const std::string trace_path = temp_path("serve_trace") + ".json";
  ev::ServeConfig config;
  config.n_workers = 2;
  config.queue_capacity = 32;
  config.overflow = ev::OverflowPolicy::kBlock;
  config.obs.trace = true;
  config.obs.trace_nodes = true;
  config.obs.metrics = true;
  config.obs.layer_profiles = true;
  config.obs.trace_path = trace_path;
  ev::ServingRuntime runtime(spec, 7, config);

  std::vector<ee::EventStream> streams;
  for (int s = 0; s < 2; ++s) {
    streams.push_back(matched_stream(
        shape.h, shape.w, 150'000, 21 + static_cast<std::uint64_t>(s)));
  }
  const std::uint64_t completed_before =
      eo::MetricsRegistry::global()
          .counter("evedge_frames_completed_total")
          .value();
  const ev::ServeReport report = runtime.run(streams);

  EXPECT_TRUE(report.accounting_ok());
  ASSERT_GT(report.frames_completed, 0u);
  // Tracing is off again after the run (ScopedTracing closed it).
  EXPECT_FALSE(eo::Tracer::enabled());

  // The exported timeline covers every pipeline stage.
  const std::vector<eo::ParsedEvent> events =
      eo::read_chrome_trace(trace_path);
  ASSERT_FALSE(events.empty());
  std::set<std::string> cats;
  std::size_t inference_spans = 0;
  std::size_t node_spans = 0;
  for (const eo::ParsedEvent& e : events) {
    cats.insert(e.cat);
    if (e.cat == "worker" && e.name == "inference") ++inference_spans;
    if (e.cat == "node") ++node_spans;
  }
  EXPECT_TRUE(cats.count("ingress"));
  EXPECT_TRUE(cats.count("queue"));
  EXPECT_TRUE(cats.count("worker"));
  EXPECT_TRUE(cats.count("serve"));  // frames.completed counter track
  EXPECT_GT(inference_spans, 0u);
  // trace_nodes: per-node sub-spans, many per inference.
  EXPECT_GT(node_spans, inference_spans);

  // Live metrics advanced by exactly this run's completions (the global
  // registry accumulates across runs, so compare the delta).
  const std::uint64_t completed_after =
      eo::MetricsRegistry::global()
          .counter("evedge_frames_completed_total")
          .value();
  EXPECT_EQ(completed_after - completed_before, report.frames_completed);

  // Layer profiles: every worker that ran frames contributed rows whose
  // run totals line up with per-node execution.
  ASSERT_FALSE(report.layer_profiles.empty());
  std::uint64_t profiled_runs = 0;
  for (const ev::WorkerLayerProfile& wp : report.layer_profiles) {
    for (const eo::NodeRouteProfile& row : wp.nodes) profiled_runs += row.runs;
  }
  EXPECT_GT(profiled_runs, 0u);

  // Per-stream labeled series advanced alongside the report, and the
  // per-worker layer means were exported as evedge_layer_ns series with
  // node/route/worker labels.
  eo::MetricsRegistry& global = eo::MetricsRegistry::global();
  eo::LabeledCounter& stream_frames =
      global.labeled_counter("evedge_stream_frames_total");
  std::uint64_t labeled_completed = 0;
  for (std::size_t s = 0; s < report.streams.size(); ++s) {
    labeled_completed += stream_frames
                             .at({{"stream", std::to_string(s)},
                                  {"outcome", "completed"}})
                             .value();
  }
  EXPECT_GE(labeled_completed, report.frames_completed);
  EXPECT_GT(global.labeled_gauge("evedge_layer_ns").series_count(), 0u);
  const std::string prom = global.prometheus_text();
  const std::size_t layer_pos = prom.find("evedge_layer_ns{");
  ASSERT_NE(layer_pos, std::string::npos);
  const std::string layer_line =
      prom.substr(layer_pos, prom.find('\n', layer_pos) - layer_pos);
  EXPECT_NE(layer_line.find("node="), std::string::npos);
  EXPECT_NE(layer_line.find("route="), std::string::npos);
  EXPECT_NE(layer_line.find("worker="), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST(ServeObservability, FrameLineageReconstructsJourney) {
  // One frame's journey must be reconstructable from its (stream, seq)
  // lineage args alone, and the hop durations must tile the measured
  // enqueue -> inference-complete latency: queue.wait + collate.wait +
  // frame.inference covers the wall up to the (untraced) batch handoff,
  // so the sum lands within one latency-histogram bucket of the wall.
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;

  const std::string trace_path = temp_path("lineage_trace") + ".json";
  ev::ServeConfig config;
  config.n_workers = 2;
  config.queue_capacity = 32;
  config.overflow = ev::OverflowPolicy::kBlock;
  config.obs.trace = true;
  config.obs.trace_path = trace_path;
  config.obs.trace_ring_capacity = 1u << 16;
  ev::ServingRuntime runtime(spec, 7, config);

  std::vector<ee::EventStream> streams;
  streams.push_back(matched_stream(shape.h, shape.w, 150'000, 51));
  streams.push_back(matched_stream(shape.h, shape.w, 150'000, 52));
  const ev::ServeReport report = runtime.run(streams);
  ASSERT_TRUE(report.accounting_ok());
  ASSERT_GT(report.frames_completed, 0u);

  const std::vector<eo::ParsedEvent> events =
      eo::read_chrome_trace(trace_path);
  ASSERT_FALSE(events.empty());

  std::size_t checked = 0;
  for (std::int64_t stream = 0; stream < 2; ++stream) {
    const std::vector<eo::LineageHop> hops =
        eo::frame_lineage(events, stream, 0);
    ASSERT_FALSE(hops.empty()) << "stream " << stream;
    const auto find = [&](const char* cat,
                          const char* name) -> const eo::LineageHop* {
      for (const eo::LineageHop& h : hops) {
        if (h.cat == cat && h.name == name) return &h;
      }
      return nullptr;
    };
    const eo::LineageHop* dispatch = find("ingress", "frame.dispatch");
    const eo::LineageHop* queue_wait = find("queue", "queue.wait");
    const eo::LineageHop* collate = find("queue", "collate.wait");
    const eo::LineageHop* inference = find("worker", "frame.inference");
    const eo::LineageHop* capture = find("serve", "frame.capture");
    ASSERT_NE(dispatch, nullptr);
    ASSERT_NE(queue_wait, nullptr);
    ASSERT_NE(collate, nullptr);
    ASSERT_NE(inference, nullptr);
    ASSERT_NE(capture, nullptr);
    EXPECT_EQ(dispatch->ph, 'i');

    // Hops are ordered and contiguous on one timeline: dispatch <=
    // enqueue, pop continues where the queue wait ended, inference ends
    // past the collate window, capture follows inference.
    EXPECT_LE(dispatch->ts_us, queue_wait->ts_us + 1e-3);
    EXPECT_GE(collate->ts_us + 1e-3, queue_wait->ts_us + queue_wait->dur_us);
    EXPECT_GE(inference->ts_us + inference->dur_us,
              collate->ts_us + collate->dur_us);
    EXPECT_GE(capture->ts_us + 1e-3, inference->ts_us);

    // The tiling contract, in latency-histogram bucket units (the same
    // default options evedge_stream_latency_us uses).
    const double hop_sum_us =
        queue_wait->dur_us + collate->dur_us + inference->dur_us;
    const double wall_us =
        inference->ts_us + inference->dur_us - queue_wait->ts_us;
    EXPECT_LE(hop_sum_us, wall_us + 1e-3);
    const eo::Histogram h{eo::Histogram::Options{}};
    EXPECT_LE(std::abs(h.bucket_index(wall_us) - h.bucket_index(hop_sum_us)),
              1);
    ++checked;
  }
  EXPECT_EQ(checked, 2u);
  std::remove(trace_path.c_str());
}

TEST(ServeObservability, BurnRateAccountsSloExtremes) {
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  std::vector<ee::EventStream> streams;
  streams.push_back(matched_stream(shape.h, shape.w, 150'000, 61));

  ev::ServeConfig config;
  config.n_workers = 1;
  config.queue_capacity = 64;
  config.overflow = ev::OverflowPolicy::kBlock;
  config.obs.metrics = true;

  // A deadline nothing can miss: every completion is in-SLO, the error
  // budget is untouched, the burn gauge reads zero.
  config.slo.deadline_ms = 60'000.0;
  {
    ev::ServingRuntime runtime(spec, 7, config);
    const ev::ServeReport report = runtime.run(streams);
    ASSERT_TRUE(report.accounting_ok());
    ASSERT_GT(report.frames_completed, 0u);
    const ev::StreamServeStats& s = report.streams.front();
    EXPECT_EQ(s.slo_good, report.frames_completed);
    EXPECT_EQ(s.slo_bad, 0u);
    EXPECT_DOUBLE_EQ(s.burn_rate, 0.0);
    EXPECT_NE(report.describe().find("burn rate 0.00"), std::string::npos);
  }

  // A deadline nothing can meet: every frame is shed, the whole window
  // is bad, and burn = bad_fraction / (1 - burn_good_target) saturates
  // at 1/0.01 = 100x the error budget.
  config.slo.deadline_ms = 0.0001;
  {
    ev::ServingRuntime runtime(spec, 7, config);
    const ev::ServeReport report = runtime.run(streams);
    ASSERT_TRUE(report.accounting_ok());
    const ev::StreamServeStats& s = report.streams.front();
    ASSERT_GT(s.slo_bad, 0u);
    EXPECT_GT(s.burn_rate, 1.0);  // burning through the budget
    if (s.slo_good == 0) {
      EXPECT_DOUBLE_EQ(s.burn_rate,
                       1.0 / (1.0 - config.slo.burn_good_target));
    }
    // The labeled gauge carries the same final rolling value the report
    // hands back.
    const double gauge = eo::MetricsRegistry::global()
                             .labeled_gauge("evedge_slo_burn_rate")
                             .at({{"stream", "0"}})
                             .value();
    EXPECT_DOUBLE_EQ(gauge, s.burn_rate);
  }
}

TEST(ServeObservability, WireServingTracesAndCountsSessionHealth) {
  const en::ZooConfig scale{32, 32, 8, 4, 2.0f};
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, scale);

  const std::string trace_path = temp_path("wire_trace") + ".json";
  ev::ServeConfig config;
  config.n_workers = 1;
  config.queue_capacity = 64;
  config.obs.trace = true;
  config.obs.trace_path = trace_path;
  ev::ServingRuntime runtime(spec, 7, config);

  const ee::EventStream stream = matched_stream(32, 32, 150'000, 31);
  ew::TcpListener listener;
  ew::TcpListener* l = &listener;
  const ev::TransportAcceptor acceptor =
      [l](std::chrono::milliseconds timeout) { return l->accept(timeout); };
  const std::uint16_t port = listener.port();
  std::thread tx([&] {
    ew::WireSenderConfig cfg;
    cfg.events_per_packet = 128;
    ew::WireSender sender(stream, cfg, [port] {
      return ew::TcpTransport::connect(port, 2000ms);
    });
    (void)sender.run();
  });

  const ev::ServeReport report =
      runtime.run_wire(std::span<const ev::TransportAcceptor>(&acceptor, 1));
  tx.join();

  EXPECT_TRUE(report.accounting_ok());
  EXPECT_GT(report.frames_completed, 0u);
  // Clean loopback session: the health lanes exist and read zero (they
  // are observability, not part of the accounting partition).
  ASSERT_EQ(report.streams.size(), 1u);
  EXPECT_EQ(report.streams.front().wire_rewinds, 0u);
  EXPECT_EQ(report.streams.front().wire_resyncs, 0u);
  EXPECT_EQ(report.streams.front().wire_reconnects, 0u);

  const std::vector<eo::ParsedEvent> events =
      eo::read_chrome_trace(trace_path);
  ASSERT_FALSE(events.empty());
  bool saw_ingress = false;
  for (const eo::ParsedEvent& e : events) {
    if (e.cat == "ingress") saw_ingress = true;
  }
  EXPECT_TRUE(saw_ingress);
  std::remove(trace_path.c_str());
}

TEST(ServeObservability, ObsOffLeavesReportShapeUnchanged) {
  // Everything defaults off: no trace events, no layer profiles, and
  // the accounting invariant untouched — the "free when off" contract.
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  ev::ServeConfig config;
  config.n_workers = 1;
  EXPECT_FALSE(config.obs.any());
  ev::ServingRuntime runtime(spec, 7, config);

  std::vector<ee::EventStream> streams;
  streams.push_back(matched_stream(shape.h, shape.w, 100'000, 41));
  eo::Tracer::instance().clear();
  const ev::ServeReport report = runtime.run(streams);
  EXPECT_TRUE(report.accounting_ok());
  EXPECT_TRUE(report.layer_profiles.empty());
  EXPECT_TRUE(eo::Tracer::instance().collect().empty());
}
