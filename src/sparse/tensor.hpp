#pragma once

// DenseTensor: a minimal NCHW float tensor used as the dense counterpart
// of sparse frames — the functional substrate for the network zoo and the
// reference implementation the sparse kernels are validated against.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace evedge::sparse {

/// NCHW shape. n = batch, c = channels, h = rows, w = columns.
struct TensorShape {
  int n = 1;
  int c = 1;
  int h = 1;
  int w = 1;

  [[nodiscard]] constexpr std::size_t element_count() const noexcept {
    return static_cast<std::size_t>(n) * static_cast<std::size_t>(c) *
           static_cast<std::size_t>(h) * static_cast<std::size_t>(w);
  }
  friend bool operator==(const TensorShape&, const TensorShape&) = default;
};

/// Throws std::invalid_argument unless all extents are positive.
void validate_shape(const TensorShape& shape);

/// Row-major NCHW dense float tensor with value semantics.
class DenseTensor {
 public:
  DenseTensor() = default;
  explicit DenseTensor(TensorShape shape, float fill = 0.0f);

  [[nodiscard]] const TensorShape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] float& at(int n, int c, int y, int x);
  [[nodiscard]] float at(int n, int c, int y, int x) const;

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  /// Unchecked raw storage pointer (hot-path kernels; callers own the
  /// bounds reasoning — tests should keep using the checked at()).
  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  /// Row-major NCHW strides, in elements.
  [[nodiscard]] std::size_t stride_y() const noexcept {
    return static_cast<std::size_t>(shape_.w);
  }
  [[nodiscard]] std::size_t stride_c() const noexcept {
    return static_cast<std::size_t>(shape_.h) *
           static_cast<std::size_t>(shape_.w);
  }
  [[nodiscard]] std::size_t stride_n() const noexcept {
    return static_cast<std::size_t>(shape_.c) * stride_c();
  }

  /// Unchecked flat offset of (n, c, y, x).
  [[nodiscard]] std::size_t offset(int n, int c, int y, int x) const noexcept {
    return static_cast<std::size_t>(n) * stride_n() +
           static_cast<std::size_t>(c) * stride_c() +
           static_cast<std::size_t>(y) * stride_y() +
           static_cast<std::size_t>(x);
  }

  /// Re-shapes in place, reusing the existing allocation when capacity
  /// allows (the engine's output-buffer recycling hook). Element values
  /// are unspecified afterwards — callers must write every element.
  void reset(TensorShape shape);

  /// Deterministic uniform [-range, range) fill from `seed`.
  void fill_random(std::uint64_t seed, float range = 1.0f);

  /// Number of non-zero elements (|v| > tol).
  [[nodiscard]] std::size_t count_nonzero(float tol = 0.0f) const noexcept;

  /// Fraction of non-zero elements in [0, 1].
  [[nodiscard]] double density(float tol = 0.0f) const noexcept;

 private:
  TensorShape shape_{};
  std::vector<float> data_;
};

/// Copies batch lane `n` of `src` into `out` as a [1, C, H, W] tensor
/// (reusing `out`'s allocation when possible).
void copy_sample(const DenseTensor& src, int n, DenseTensor& out);

/// Largest absolute elementwise difference; shapes must match.
[[nodiscard]] float max_abs_diff(const DenseTensor& a, const DenseTensor& b);

/// Mean absolute elementwise difference; shapes must match.
[[nodiscard]] double mean_abs_diff(const DenseTensor& a,
                                   const DenseTensor& b);

/// Relative L2 error ||a-b|| / max(||b||, eps); shapes must match.
[[nodiscard]] double relative_l2_error(const DenseTensor& a,
                                       const DenseTensor& b,
                                       double eps = 1e-12);

}  // namespace evedge::sparse
