#include "serve/frame_queue.hpp"

#include <stdexcept>
#include <utility>

namespace evedge::serve {

FrameQueue::FrameQueue(std::size_t capacity, OverflowPolicy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity_ == 0) {
    throw std::invalid_argument("FrameQueue: capacity must be > 0");
  }
}

std::optional<ReadyFrame> FrameQueue::push(ReadyFrame frame) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Wake when a slot frees, the queue closes, or the policy stops being
  // kBlock (a mid-run switch to kDropOldest releases backpressure).
  not_full_.wait(lock, [&] {
    return policy_ != OverflowPolicy::kBlock ||
           queue_.size() < capacity_ || closed_;
  });
  if (closed_) return frame;  // never accepted; caller owns it
  std::optional<ReadyFrame> displaced;
  if (queue_.size() >= capacity_) {  // kDropOldest
    displaced = std::move(queue_.front());
    queue_.pop_front();
    ++dropped_;
  }
  if (frame.enqueue_tp == std::chrono::steady_clock::time_point{}) {
    frame.enqueue_tp = std::chrono::steady_clock::now();
  }
  queue_.push_back(std::move(frame));
  peak_depth_ = std::max(peak_depth_, queue_.size());
  depth_sum_ += queue_.size();
  ++depth_samples_;
  lock.unlock();
  not_empty_.notify_one();
  return displaced;
}

void FrameQueue::requeue(ReadyFrame frame) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Deliberately no capacity or closed check: retry frames are the
    // oldest in-flight work and the requeuing worker keeps consuming,
    // so admission is always safe and loss-free.
    queue_.push_front(std::move(frame));
    peak_depth_ = std::max(peak_depth_, queue_.size());
    ++requeued_;
  }
  not_empty_.notify_one();
}

std::optional<ReadyFrame> FrameQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  ReadyFrame frame = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return frame;
}

std::optional<ReadyFrame> FrameQueue::pop_until(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!not_empty_.wait_until(lock, deadline, [&] {
        return !queue_.empty() || closed_;
      })) {
    return std::nullopt;  // deadline hit
  }
  if (queue_.empty()) return std::nullopt;  // closed and drained
  ReadyFrame frame = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return frame;
}

void FrameQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

OverflowPolicy FrameQueue::policy() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return policy_;
}

void FrameQueue::set_policy(OverflowPolicy policy) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    policy_ = policy;
  }
  // Producers blocked under kBlock re-evaluate against the new policy.
  not_full_.notify_all();
}

std::size_t FrameQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool FrameQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t FrameQueue::peak_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return peak_depth_;
}

double FrameQueue::mean_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return depth_samples_ > 0 ? static_cast<double>(depth_sum_) /
                                  static_cast<double>(depth_samples_)
                            : 0.0;
}

std::size_t FrameQueue::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::size_t FrameQueue::requeued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return requeued_;
}

}  // namespace evedge::serve
