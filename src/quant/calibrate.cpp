#include "quant/calibrate.hpp"

#include <algorithm>
#include <stdexcept>

#include "quant/quantizer.hpp"

namespace evedge::quant {

using sparse::DenseTensor;

namespace {

/// Installs an activation hook for one scope and always restores the
/// caller's previous hook — the calibration hook captures stack
/// locals, so it must not outlive a throw, and a caller's own hook
/// must not be clobbered.
class HookGuard {
 public:
  HookGuard(nn::FunctionalNetwork& net,
            nn::FunctionalNetwork::ActivationHook hook)
      : net_(net), previous_(net.set_activation_hook(std::move(hook))) {}
  ~HookGuard() { net_.set_activation_hook(std::move(previous_)); }
  HookGuard(const HookGuard&) = delete;
  HookGuard& operator=(const HookGuard&) = delete;

 private:
  nn::FunctionalNetwork& net_;
  nn::FunctionalNetwork::ActivationHook previous_;
};

}  // namespace

CalibrationTable calibrate_activations(
    nn::FunctionalNetwork& net, std::span<const ValidationSample> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("calibrate_activations: no samples");
  }
  CalibrationTable table;

  // Input-node ranges come straight from the calibration tensors (the
  // activation hook only fires for compute nodes).
  const auto input_ids = net.spec().graph.input_ids();
  for (const ValidationSample& s : samples) {
    float& event_range = table.output_max_abs[input_ids.front()];
    for (const DenseTensor& step : s.event_steps) {
      event_range = std::max(event_range, max_abs(step.data()));
    }
    if (input_ids.size() > 1 && s.image.has_value()) {
      float& image_range = table.output_max_abs[input_ids.back()];
      image_range = std::max(image_range, max_abs(s.image->data()));
    }
  }

  const HookGuard guard(
      net, [&table](int node_id, DenseTensor& activation) {
        float& range = table.output_max_abs[node_id];
        range = std::max(range, max_abs(activation.data()));
      });
  for (const ValidationSample& s : samples) {
    (void)net.run(s.event_steps,
                  s.image.has_value() ? &s.image.value() : nullptr);
  }
  return table;
}

namespace {

/// The sensor-facing layers the default plan keeps FP32: conv-shaped
/// nodes reading a narrow (<= 2 channel) input node — the DAVIS 2-channel
/// event layer and the 1-channel grayscale image layer, whose int8 cost
/// is dominated by the im2col transform rather than the dot kernel.
[[nodiscard]] bool is_narrow_input_layer(const nn::NetworkGraph& graph,
                                         const nn::LayerNode& node) {
  if (node.spec.kind == nn::LayerKind::kFullyConnected ||
      node.parents.empty()) {
    return false;
  }
  const nn::LayerNode& parent = graph.node(node.parents.front());
  return parent.spec.kind == nn::LayerKind::kInput &&
         node.spec.conv.in_channels <= 2;
}

}  // namespace

QuantPlan build_quant_plan(const nn::FunctionalNetwork& net,
                           const PrecisionMap& precisions,
                           const CalibrationTable& calibration, bool simulate,
                           WeightGranularity granularity,
                           const QuantPlanOptions& options) {
  QuantPlan plan;
  plan.simulate = simulate;
  for (const nn::LayerNode& node : net.spec().graph.nodes()) {
    const auto it = precisions.find(node.id);
    if (it == precisions.end() || it->second != Precision::kInt8) continue;
    if (!nn::is_weight_layer(node.spec.kind)) continue;
    if (!options.quantize_input_layer &&
        is_narrow_input_layer(net.spec().graph, node)) {
      continue;
    }

    NodeQuantPlan nq;
    nq.node_id = node.id;
    // An input range the calibration never observed is a usage error
    // (stale/foreign table) — scale 1.0 would silently crush typical
    // [-1, 1] activations to {-1, 0, 1}. A recorded range of zero is
    // fine: an all-zero input quantizes exactly under any scale.
    const int parent = node.parents.front();
    if (!calibration.output_max_abs.contains(parent)) {
      throw std::invalid_argument(
          "build_quant_plan: no calibrated activation range for the input "
          "of node " +
          std::to_string(node.id) +
          " — run calibrate_activations on this network first");
    }
    nq.input_scale = Int8Scale::for_range(calibration.range_of(parent));
    Conv2dSpec spec = node.spec.conv;
    if (node.spec.kind == nn::LayerKind::kFullyConnected) {
      spec = Conv2dSpec{static_cast<int>(node.spec.input_elements()),
                        node.spec.fc_out, 1, 1, 0};
    }
    nq.weights = quantize_conv_weights(net.weights(node.id), spec,
                                       granularity);
    plan.nodes.push_back(std::move(nq));
  }
  return plan;
}

}  // namespace evedge::quant
