#include "serve/stream_ingress.hpp"

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evedge::serve {

namespace {

/// Drives one stream through E2SF + DSFA, invoking `sink(frame)` for
/// every dispatched merged frame in dispatch order. `raw_frames` counts
/// the E2SF bins pushed into DSFA.
template <typename Sink>
void ingest(const events::EventStream& stream, const IngressConfig& config,
            core::DynamicSparseFrameAggregator& dsfa,
            std::size_t& raw_frames, const Sink& sink) {
  // One shared clock construction with simulate_pipeline: serving and
  // the simulation frame identically by design, not by copy.
  const events::FrameClock clock =
      events::FrameClock::spanning(stream, config.frame_rate_hz);
  const core::Event2SparseFrame e2sf(stream.geometry(), config.e2sf);
  const auto drain = [&] {
    while (auto batch = dsfa.take_ready_batch()) {
      for (sparse::SparseFrame& frame : batch->frames) {
        if (!sink(std::move(frame))) return false;
      }
    }
    return true;
  };
  for (std::size_t i = 0; i < clock.interval_count(); ++i) {
    const events::TimeUs t0 = clock.timestamps[i];
    const events::TimeUs t1 = clock.timestamps[i + 1];
    {
      // Span covers conversion + DSFA merge only; the queue push (which
      // may block) happens in drain() outside it.
      const obs::ScopedSpan span("ingress", "e2sf.interval");
      for (sparse::SparseFrame& frame :
           e2sf.convert(stream.slice(t0, t1), t0, t1)) {
        ++raw_frames;
        dsfa.push(std::move(frame));
      }
    }
    if (!drain()) return;
  }
  dsfa.dispatch_available();
  (void)drain();
}

[[nodiscard]] FrameFault channel_fault(const sparse::CooChannel& channel,
                                       int height, int width) noexcept {
  for (const sparse::CooEntry& e : channel.entries()) {
    if (e.row < 0 || e.row >= height || e.col < 0 || e.col >= width) {
      return FrameFault::kOutOfBoundsCoordinate;
    }
    if (!std::isfinite(e.value)) return FrameFault::kNonFiniteValue;
  }
  return FrameFault::kNone;
}

}  // namespace

FrameFault frame_fault_of(const sparse::SparseFrame& frame, int height,
                          int width) noexcept {
  if (frame.height() != height || frame.width() != width) {
    return FrameFault::kGeometryMismatch;
  }
  if (frame.t_end < frame.t_start) return FrameFault::kBadTiming;
  if (const FrameFault f = channel_fault(frame.positive(), height, width);
      f != FrameFault::kNone) {
    return f;
  }
  return channel_fault(frame.negative(), height, width);
}

StreamIngress::StreamIngress(int stream_id,
                             const events::EventStream& stream,
                             IngressConfig config, FrameQueue& queue)
    : stream_id_(stream_id),
      stream_(stream),
      config_(std::move(config)),
      queue_(queue) {
  stats_.stream_id = stream_id;
}

void StreamIngress::mark_failed(std::string reason) {
  stats_.ingress_failed = true;
  if (stats_.failure_reason.empty()) {
    stats_.failure_reason = std::move(reason);
  }
}

void StreamIngress::run() {
  core::DynamicSparseFrameAggregator dsfa(config_.dsfa);
  const auto wall_start = std::chrono::steady_clock::now();
  const int height = stream_.geometry().height;
  const int width = stream_.geometry().width;
  double density_sum = 0.0;
  std::int64_t seq = 0;

  ingest(stream_, config_, dsfa, stats_.raw_frames,
         [&](sparse::SparseFrame frame) {
           if (config_.pace_speedup > 0.0) {
             // Sensor-faithful arrival: the merged frame exists once its
             // last bin closes (t_end), replayed at pace_speedup x.
             const auto arrival =
                 wall_start + std::chrono::microseconds(static_cast<long long>(
                                  static_cast<double>(frame.t_end -
                                                      stream_.t_begin()) /
                                  config_.pace_speedup));
             std::this_thread::sleep_until(arrival);
           }
           // Injected stream-site faults at this exact (stream, seq).
           if (faults_ != nullptr) {
             const auto journal_fire = [&](const char* action) {
               if (journal_ == nullptr) return;
               journal_->append(
                   "inject", "stream=" + std::to_string(stream_id_) +
                                 " seq=" + std::to_string(seq) +
                                 " action=" + action);
             };
             for (const FaultSpec& spec :
                  faults_->at_stream(stream_id_, seq)) {
               switch (spec.type) {
                 case FaultType::kStreamStall:
                   faults_->record(FaultType::kStreamStall);
                   journal_fire("stall");
                   obs::Tracer::instant("fault", "fault.stream_stall",
                                        "stream", stream_id_, "seq", seq);
                   std::this_thread::sleep_for(
                       std::chrono::duration<double, std::milli>(
                           spec.delay_ms));
                   break;
                 case FaultType::kStreamDisconnect:
                   faults_->record(FaultType::kStreamDisconnect);
                   journal_fire("disconnect");
                   obs::Tracer::instant("fault", "fault.stream_disconnect",
                                        "stream", stream_id_, "seq", seq);
                   mark_failed("injected stream disconnect");
                   return false;  // stop ingesting; stream dies here
                 case FaultType::kCorruptFrame:
                   faults_->record(FaultType::kCorruptFrame);
                   journal_fire("corrupt");
                   obs::Tracer::instant("fault", "fault.corrupt_frame",
                                        "stream", stream_id_, "seq", seq);
                   FaultInjector::corrupt(spec, frame);
                   break;
                 default:
                   break;  // worker-site faults never land here
               }
             }
           }
           density_sum += frame.density();
           // Admission gate: quarantine malformed frames here, where
           // the defect can still be attributed to its (stream, seq).
           if (config_.validate_frames) {
             const FrameFault fault = frame_fault_of(frame, height, width);
             if (fault != FrameFault::kNone) {
               quarantined_.push_back(
                   QuarantinedFrame{stream_id_, seq, fault, 0});
               if (journal_ != nullptr) {
                 journal_->append(
                     "quarantine",
                     "stream=" + std::to_string(stream_id_) +
                         " seq=" + std::to_string(seq) +
                         " fault=" + to_string(fault) +
                         " action=ingress-reject");
               }
               ++stats_.enqueued;
               ++stats_.failed;
               if (dispatch_counter_ != nullptr) dispatch_counter_->add();
               ++seq;  // the seq is consumed: downstream keys stay aligned
               return true;
             }
           }
           ReadyFrame ready;
           ready.stream_id = stream_id_;
           ready.seq = seq;
           ready.frame = std::move(frame);
           ready.ingress_density = dsfa.recent_density();
           obs::Tracer::instant("ingress", "frame.dispatch", "stream",
                                stream_id_, "seq", seq);
           std::optional<ReadyFrame> rejected = queue_.push(std::move(ready));
           if (rejected.has_value() && rejected->stream_id == stream_id_ &&
               rejected->seq == seq) {
             // Identity match = the queue closed and never accepted this
             // frame (a kDropOldest displacement would return an OLDER
             // frame — possibly ours, but with a smaller seq).
             return false;
           }
           // Under kDropOldest a displaced frame may belong to any
           // stream; the runtime reconciles per-stream drops as the
           // enqueued - completed - shed - failed residual once the
           // queue drains.
           ++seq;
           ++stats_.enqueued;
           if (dispatch_counter_ != nullptr) dispatch_counter_->add();
           return true;
         });

  stats_.completed = 0;  // filled in by the runtime from worker results
  if (stats_.enqueued > 0) {
    stats_.mean_frame_density =
        density_sum / static_cast<double>(stats_.enqueued);
  }
  stats_.last_ingress_density = dsfa.recent_density();
}

std::vector<sparse::SparseFrame> StreamIngress::collect_frames(
    const events::EventStream& stream, const IngressConfig& config) {
  core::DynamicSparseFrameAggregator dsfa(config.dsfa);
  std::vector<sparse::SparseFrame> frames;
  std::size_t raw = 0;
  ingest(stream, config, dsfa, raw, [&](sparse::SparseFrame frame) {
    frames.push_back(std::move(frame));
    return true;
  });
  return frames;
}

}  // namespace evedge::serve
