#include "core/dsfa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evedge::core {

DynamicSparseFrameAggregator::DynamicSparseFrameAggregator(DsfaConfig config)
    : config_(config) {
  if (config_.event_buffer_size == 0) {
    throw std::invalid_argument("DSFA: event buffer size must be > 0");
  }
  if (config_.merge_bucket_capacity == 0) {
    throw std::invalid_argument("DSFA: merge bucket capacity must be > 0");
  }
  if (config_.max_time_delay_us < 0.0) {
    throw std::invalid_argument("DSFA: MtTh must be >= 0");
  }
  if (config_.max_density_change < 0.0) {
    throw std::invalid_argument("DSFA: MdTh must be >= 0");
  }
  if (config_.inference_queue_capacity == 0) {
    throw std::invalid_argument("DSFA: inference queue capacity must be > 0");
  }
  if (config_.density_ema_alpha <= 0.0 || config_.density_ema_alpha > 1.0) {
    throw std::invalid_argument("DSFA: density EMA alpha must be in (0, 1]");
  }
}

double DynamicSparseFrameAggregator::density_drift(
    double reference, double eps) const noexcept {
  if (stats_.frames_in == 0) return 0.0;
  return std::abs(recent_density_ - reference) / std::max(reference, eps);
}

std::size_t DynamicSparseFrameAggregator::buffered_frames() const noexcept {
  std::size_t n = 0;
  for (const MergeBucket& b : buckets_) n += b.frames.size();
  return n;
}

void DynamicSparseFrameAggregator::push(SparseFrame frame) {
  recent_density_ = stats_.frames_in == 0
                        ? frame.density()
                        : recent_density_ +
                              config_.density_ema_alpha *
                                  (frame.density() - recent_density_);
  ++stats_.frames_in;

  if (config_.merge_mode == MergeMode::kBatch) {
    // cBatch: every generated frame opens its own merge bucket.
    MergeBucket bucket;
    bucket.frames.push_back(std::move(frame));
    bucket.full = true;
    buckets_.push_back(std::move(bucket));
  } else {
    // Greedy placement into the earliest available bucket subject to the
    // MtTh / MdTh conditions; failing buckets are closed (FULL).
    bool placed = false;
    for (MergeBucket& bucket : buckets_) {
      if (!bucket.available(config_.merge_bucket_capacity)) continue;
      const SparseFrame& earliest = bucket.frames.front();
      const double delay_us =
          static_cast<double>(frame.t_start - earliest.t_start);
      if (delay_us > config_.max_time_delay_us) {
        bucket.full = true;
        ++stats_.time_threshold_closures;
        continue;
      }
      const SparseFrame merged =
          bucket.frames.size() == 1
              ? earliest
              : sparse::merge_frames(bucket.frames, MergeMode::kAdd);
      if (sparse::density_change(frame, merged) >
          config_.max_density_change) {
        bucket.full = true;
        ++stats_.density_threshold_closures;
        continue;
      }
      bucket.frames.push_back(std::move(frame));
      if (bucket.frames.size() >= config_.merge_bucket_capacity) {
        bucket.full = true;
        ++stats_.capacity_closures;
      }
      placed = true;
      break;
    }
    if (!placed) {
      MergeBucket bucket;
      bucket.frames.push_back(std::move(frame));
      bucket.full = bucket.frames.size() >= config_.merge_bucket_capacity;
      buckets_.push_back(std::move(bucket));
    }
  }

  if (buffered_frames() >= config_.event_buffer_size) {
    dispatch_all_buckets();
  }
}

void DynamicSparseFrameAggregator::dispatch_available() {
  dispatch_all_buckets();
}

void DynamicSparseFrameAggregator::dispatch_all_buckets() {
  if (buckets_.empty()) return;
  MergedBatch batch;
  batch.frames.reserve(buckets_.size());
  for (MergeBucket& bucket : buckets_) {
    if (bucket.frames.empty()) continue;
    if (config_.merge_mode == MergeMode::kBatch ||
        bucket.frames.size() == 1) {
      batch.frames.push_back(std::move(bucket.frames.front()));
    } else {
      batch.frames.push_back(
          sparse::merge_frames(bucket.frames, config_.merge_mode));
    }
    ++stats_.buckets_dispatched;
  }
  buckets_.clear();
  if (batch.empty()) return;

  // Forward to the inference queue, discarding the earliest entry on
  // overflow (paper: "the earliest sparse frames in each queue is
  // discarded").
  if (inference_queue_.size() >= config_.inference_queue_capacity) {
    stats_.frames_discarded += inference_queue_.front().frames.size();
    inference_queue_.pop_front();
  }
  inference_queue_.push_back(std::move(batch));
  ++stats_.batches_dispatched;
}

std::optional<MergedBatch>
DynamicSparseFrameAggregator::take_ready_batch() {
  if (inference_queue_.empty()) return std::nullopt;
  MergedBatch batch = std::move(inference_queue_.front());
  inference_queue_.pop_front();
  return batch;
}

}  // namespace evedge::core
