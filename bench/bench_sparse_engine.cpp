// End-to-end planner benchmark: FunctionalNetwork::run() all-dense vs
// with a density-adaptive ExecutionPlan (calibrated per input density) on
// the spiking zoo networks at DAVIS346 scale (260x346 rounded to the
// 256x352 zoo geometry, base 16 channels to keep the single-core CI run
// bounded). The networks run at lif_threshold_scale = 2, which puts the
// random-weight zoo into the 0.5-5% spiking-activation band the paper
// reports for trained event networks (the regime the sparse routes
// target; the default random-weight stand-ins fire at 7-40%). The
// planner routes the sparse-input/spiking layers through the CSR gather
// kernels and chains consecutive sparse layers in COO form; the dense
// decoders stay dense, so the end-to-end speedup is the Amdahl-limited,
// honest number.
//
// Doubles as a parity smoke test: planner-routed output must be bitwise
// identical to dense output (max_abs_diff == 0) — the bench exits
// non-zero otherwise. Results go to BENCH_sparse_engine.json and are
// gated in CI by scripts/check_bench_regression.py.
//
// Usage: bench_sparse_engine [output.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "nn/engine.hpp"
#include "nn/exec_plan.hpp"
#include "nn/zoo.hpp"
#include "quant/accuracy.hpp"
#include "sparse/tensor.hpp"

namespace en = evedge::nn;
namespace es = evedge::sparse;
namespace eq = evedge::quant;
using evedge::bench::time_best_ms;

namespace {

struct Result {
  std::string network;
  double density = 0.0;
  double dense_ms = 0.0;
  double planner_ms = 0.0;
  int sparse_routed = 0;         ///< sparse-routed nodes in the plan
  double max_abs_diff = 0.0;     ///< planner vs dense (must be 0)
  double sparse_mac_fraction = 0.0;  ///< dense MACs replaced / total
  double firing_rate = 0.0;      ///< mean spiking rate over the run

  [[nodiscard]] double speedup_planner() const {
    return planner_ms > 0.0 ? dense_ms / planner_ms : 0.0;
  }
};

[[nodiscard]] bool write_json(const std::vector<Result>& results,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"threads\": %d,\n  \"scale\": "
               "\"256x352 base16 (DAVIS346 zoo geometry), "
               "lif_threshold_scale=2\",\n"
               "  \"results\": [\n",
               evedge::core::parallel_thread_count());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"network\": \"%s\", \"density\": %.4f, \"dense_ms\": %.4f, "
        "\"planner_ms\": %.4f, \"speedup_planner\": %.2f, "
        "\"sparse_routed\": %d, \"sparse_mac_fraction\": %.3f, "
        "\"firing_rate\": %.4f, \"max_abs_diff\": %.3g}%s\n",
        r.network.c_str(), r.density, r.dense_ms, r.planner_ms,
        r.speedup_planner(), r.sparse_routed, r.sparse_mac_fraction,
        r.firing_rate, r.max_abs_diff, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sparse_engine.json";
  // DAVIS346-scale zoo geometry at half base width (the full-scale
  // base-32 dense runs take minutes per network on one core), with the
  // spiking thresholds scaled into the paper's 0.5-5% activation band.
  const en::ZooConfig scale{256, 352, 16, 5, 2.0f};
  const en::NetworkId nets[] = {en::NetworkId::kDotie,
                                en::NetworkId::kAdaptiveSpikeNet,
                                en::NetworkId::kSpikeFlowNet,
                                en::NetworkId::kFusionFlowNet};
  const double densities[] = {0.01, 0.03};
  constexpr int kReps = 3;

  std::printf("sparse engine planner benchmark (threads=%d)\n",
              evedge::core::parallel_thread_count());
  std::printf("%-18s %8s %10s %11s %9s %7s %9s %7s %12s\n", "network",
              "density", "dense_ms", "planner_ms", "speedup", "routed",
              "mac_frac", "rate", "max_abs_diff");

  std::vector<Result> results;
  bool parity_ok = true;
  for (const auto id : nets) {
    const auto spec = en::build_network(id, scale);
    en::FunctionalNetwork net(spec, 7);
    for (const double density : densities) {
      const auto samples = eq::make_validation_set(spec, 1, 42, density);
      const auto& steps = samples[0].event_steps;
      const es::DenseTensor* image =
          samples[0].image.has_value() ? &samples[0].image.value() : nullptr;

      Result r;
      r.network = spec.name;
      r.density = density;

      net.set_execution_plan(nullptr);
      const auto dense_out = net.run(steps, image);
      r.dense_ms = time_best_ms([&] { (void)net.run(steps, image); }, kReps);

      const auto plan = en::ExecutionPlanner::calibrate(net, steps, image);
      r.sparse_routed = plan.sparse_node_count();
      net.set_execution_plan(&plan);
      const auto routed_out = net.run(steps, image);
      r.max_abs_diff = es::max_abs_diff(routed_out, dense_out);
      const en::ExecStats& stats = net.last_exec_stats();
      const std::size_t total_macs =
          spec.graph.total_macs() * static_cast<std::size_t>(spec.timesteps);
      r.sparse_mac_fraction =
          total_macs > 0 ? static_cast<double>(stats.dense_macs_avoided) /
                               static_cast<double>(total_macs)
                         : 0.0;
      r.planner_ms = time_best_ms([&] { (void)net.run(steps, image); }, kReps);
      r.firing_rate = net.network_firing_rate();
      net.set_execution_plan(nullptr);

      if (r.max_abs_diff != 0.0) parity_ok = false;
      std::printf("%-18s %8.4f %10.2f %11.2f %8.2fx %7d %9.3f %7.4f %12.3g\n",
                  r.network.c_str(), r.density, r.dense_ms, r.planner_ms,
                  r.speedup_planner(), r.sparse_routed, r.sparse_mac_fraction,
                  r.firing_rate, r.max_abs_diff);
      std::fflush(stdout);
      results.push_back(std::move(r));
    }
  }

  const bool wrote = write_json(results, out_path);
  if (!parity_ok) {
    std::fprintf(stderr,
                 "parity failure: planner-routed output diverged from dense "
                 "execution (see table)\n");
    return 1;
  }
  return wrote ? 0 : 1;
}
