// evedge_wire: command-line front end for the EVWP recorder/replayer
// load harness. Four subcommands cover the runbook in README.md:
//
//   record  <out.evw>   synthesize an event stream and record it
//   inspect <file.evw>  print header / packet / event statistics
//   replay  <file.evw> --port P [--speedup X]
//                       connect to a receiver and replay, paced by
//                       event time / X (1 = real time, 1000 compresses
//                       an hour to seconds, 0 = flat out)
//   recv    --port P [--out copy.evw]
//                       listen, accept one session, run the hardened
//                       receiver, optionally re-record what arrived
//
// A loopback round trip (`recv` in one terminal, `replay` in another,
// then `inspect` both files) demonstrates the lossless wire path; point
// `replay` at a NetFaultProxy-fronted port to rehearse hostile links.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "events/density_profile.hpp"
#include "events/event_stream.hpp"
#include "events/event_synth.hpp"
#include "wire/recorder.hpp"
#include "wire/session.hpp"
#include "wire/transport.hpp"

namespace ee = evedge::events;
namespace ew = evedge::wire;

using namespace std::chrono_literals;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  evedge_wire record  <out.evw> [--duration-us N] [--seed S]\n"
      "                      [--width W] [--height H] [--rate R]\n"
      "                      [--events-per-packet N]\n"
      "  evedge_wire inspect <file.evw>\n"
      "  evedge_wire replay  <file.evw> --port P [--speedup X]\n"
      "  evedge_wire recv    --port P [--out copy.evw]\n");
  return 2;
}

/// Pulls `--flag value` pairs out of argv; returns fallback when absent.
double flag_of(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

const char* str_flag_of(int argc, char** argv, const char* flag,
                        const char* fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

int cmd_record(int argc, char** argv) {
  if (argc < 1 || argv[0][0] == '-') return usage();
  const std::string path = argv[0];
  const auto duration = static_cast<ee::TimeUs>(
      flag_of(argc, argv, "--duration-us", 1'000'000.0));
  const auto seed =
      static_cast<std::uint64_t>(flag_of(argc, argv, "--seed", 42.0));
  const int width = static_cast<int>(flag_of(argc, argv, "--width", 128.0));
  const int height =
      static_cast<int>(flag_of(argc, argv, "--height", 96.0));
  const double rate = flag_of(argc, argv, "--rate", 3.0);
  const auto per_packet = static_cast<std::size_t>(
      flag_of(argc, argv, "--events-per-packet", 256.0));

  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{width, height};
  cfg.seed = seed;
  const ee::DensityProfile profile("wire-cli", rate, {}, 1.2, 0.5);
  const ee::EventStream stream =
      ee::PoissonEventSynthesizer(profile, cfg).generate(0, duration);

  ew::record_stream(stream, path, per_packet);
  const ew::StreamReplayer replayer(path);
  std::printf("recorded %zu events (%dx%d, %lld us) to %s: "
              "%zu data packets, %zu bytes\n",
              stream.size(), width, height,
              static_cast<long long>(duration), path.c_str(),
              replayer.data_packets(), replayer.total_bytes());
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 1) return usage();
  const ew::StreamReplayer replayer(argv[0]);
  const ew::StreamHeader& h = replayer.header();
  const ee::EventStream decoded = replayer.decode();
  std::printf("%s:\n  geometry   %ux%u\n  epoch      %lld us\n"
              "  t_end      %lld us\n  span       %.3f s\n"
              "  packets    %zu data (+ hello, end-of-stream)\n"
              "  bytes      %zu\n  events     %zu\n",
              argv[0], h.width, h.height,
              static_cast<long long>(h.epoch_us),
              static_cast<long long>(h.t_end_us),
              static_cast<double>(h.t_end_us - h.epoch_us) / 1e6,
              replayer.data_packets(), replayer.total_bytes(),
              decoded.size());
  return 0;
}

int cmd_replay(int argc, char** argv) {
  if (argc < 1 || argv[0][0] == '-') return usage();
  const auto port =
      static_cast<std::uint16_t>(flag_of(argc, argv, "--port", 0.0));
  const double speedup = flag_of(argc, argv, "--speedup", 1.0);
  if (port == 0) return usage();

  const ew::StreamReplayer replayer(argv[0]);
  auto transport = ew::TcpTransport::connect(port, 5000ms);
  if (!transport) {
    std::fprintf(stderr, "cannot connect to 127.0.0.1:%u\n", port);
    return 1;
  }
  const ew::ReplayStats stats = replayer.replay(*transport, speedup);
  transport->close();
  std::printf("replayed %zu packets (%zu bytes) at %.1fx: "
              "%.1f ms wall vs %.1f ms target\n",
              stats.packets_sent, stats.bytes_sent, speedup,
              stats.wall_ms, stats.target_ms);
  return 0;
}

int cmd_recv(int argc, char** argv) {
  const auto port =
      static_cast<std::uint16_t>(flag_of(argc, argv, "--port", 0.0));
  const char* out = str_flag_of(argc, argv, "--out", nullptr);
  if (port == 0) return usage();

  ee::SensorGeometry geometry{1, 1};
  std::vector<ee::Event> received;
  std::size_t rejections = 0;
  ew::WireSink sink;
  sink.hello = [&](const ew::StreamHeader& h) {
    geometry = ee::SensorGeometry{h.width, h.height};
    std::printf("hello: %ux%u, epoch %lld us\n", h.width, h.height,
                static_cast<long long>(h.epoch_us));
  };
  sink.events = [&](std::span<const ee::Event> batch, std::uint32_t) {
    received.insert(received.end(), batch.begin(), batch.end());
  };
  sink.rejected = [&](ew::PacketError) { ++rejections; };

  ew::WireReceiver receiver({}, std::move(sink));
  ew::TcpListener listener(port);
  std::printf("listening on 127.0.0.1:%u\n", listener.port());
  ew::ServeOutcome outcome = ew::ServeOutcome::kStalled;
  while (true) {
    auto transport = listener.accept(30'000ms);
    if (!transport) break;
    outcome = receiver.serve(*transport);
    transport->close();
    if (outcome == ew::ServeOutcome::kEndOfStream) break;
    std::printf("session ended (%s), waiting for reconnect...\n",
                ew::to_string(outcome));
  }
  receiver.finish();

  const ew::WireRecvStats& s = receiver.stats();
  std::printf("outcome %s: %zu events, %zu/%zu packets accepted, "
              "%zu rejected, %zu duplicates, %zu resumes, "
              "accounting %s\n",
              ew::to_string(outcome), received.size(),
              s.packets_accepted, s.packets_seen, s.rejected_packets,
              s.duplicate_packets, s.resumes_served,
              s.accounting_ok() ? "ok" : "BROKEN");
  if (rejections != s.rejected_packets) {
    std::fprintf(stderr, "rejection sink disagrees with stats\n");
    return 1;
  }
  if (out != nullptr && outcome == ew::ServeOutcome::kEndOfStream) {
    ew::record_stream(ee::EventStream(geometry, std::move(received)), out);
    std::printf("re-recorded received stream to %s\n", out);
  }
  return outcome == ew::ServeOutcome::kEndOfStream ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "record") return cmd_record(argc - 2, argv + 2);
    if (cmd == "inspect") return cmd_inspect(argc - 2, argv + 2);
    if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
    if (cmd == "recv") return cmd_recv(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "evedge_wire %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
