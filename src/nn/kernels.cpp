#include "nn/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.hpp"

namespace evedge::nn {

using sparse::conv_out_extent;
using sparse::validate_conv_spec;

namespace {

void validate_conv_inputs(const DenseTensor& input, const DenseTensor& weights,
                          std::span<const float> bias, const Conv2dSpec& spec,
                          const char* who) {
  validate_conv_spec(spec);
  if (input.shape().c != spec.in_channels) {
    throw std::invalid_argument(std::string(who) +
                                ": input channel mismatch");
  }
  const TensorShape& ws = weights.shape();
  if (ws.n != spec.out_channels || ws.c != spec.in_channels ||
      ws.h != spec.kernel || ws.w != spec.kernel) {
    throw std::invalid_argument(std::string(who) + ": weight shape mismatch");
  }
  if (!bias.empty() && static_cast<int>(bias.size()) != spec.out_channels) {
    throw std::invalid_argument(std::string(who) + ": bias size mismatch");
  }
}

/// First output index whose tap lands inside the input:
/// o * stride + k - padding >= 0.
[[nodiscard]] int first_valid_out(int k, int stride, int padding) noexcept {
  return padding > k ? (padding - k + stride - 1) / stride : 0;
}

/// Last output index whose tap lands inside an extent of `in`:
/// o * stride + k - padding <= in - 1 (may be < 0 when no tap fits).
[[nodiscard]] int last_valid_out(int in, int k, int stride,
                                 int padding) noexcept {
  const int num = in - 1 + padding - k;
  return num < 0 ? -1 : num / stride;
}

}  // namespace

bool conv2d_uses_gemm(const TensorShape& input,
                      const Conv2dSpec& spec) noexcept {
  if (spec.in_channels <= 0 || spec.out_channels <= 0 || spec.kernel <= 0 ||
      spec.stride <= 0 || spec.padding < 0) {
    return false;  // conv2d itself rejects the spec with a real error
  }
  const int out_h =
      (input.h + 2 * spec.padding - spec.kernel) / spec.stride + 1;
  const int out_w =
      (input.w + 2 * spec.padding - spec.kernel) / spec.stride + 1;
  if (out_h <= 0 || out_w <= 0) return false;
  const auto k2 = static_cast<std::size_t>(spec.kernel) *
                  static_cast<std::size_t>(spec.kernel);
  const std::size_t patch = static_cast<std::size_t>(spec.in_channels) * k2;
  const std::size_t pixels =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
  const std::size_t macs =
      patch * pixels * static_cast<std::size_t>(spec.out_channels);
  // Below ~256K MACs the im2col materialization dominates; above ~512MB
  // the column matrix would thrash, so fall back to the direct path.
  return macs >= (std::size_t{1} << 18) &&
         patch * pixels <= (std::size_t{1} << 27);
}

namespace {

/// Shared entry bookkeeping for the _into paths: validates, shapes `out`
/// (reusing its buffer) and rejects aliasing.
void prepare_out(const DenseTensor& input, const DenseTensor& weights,
                 std::span<const float> bias, const Conv2dSpec& spec,
                 DenseTensor& out, int& out_h, int& out_w) {
  validate_conv_inputs(input, weights, bias, spec, "conv2d");
  if (&out == &input || &out == &weights) {
    throw std::invalid_argument("conv2d_into: out must not alias an input");
  }
  const TensorShape& is = input.shape();
  out_h = conv_out_extent(is.h, spec.kernel, spec.stride, spec.padding);
  out_w = conv_out_extent(is.w, spec.kernel, spec.stride, spec.padding);
  out.reset(TensorShape{is.n, spec.out_channels, out_h, out_w});
}

void conv2d_direct_into(const DenseTensor& input, const DenseTensor& weights,
                        std::span<const float> bias, const Conv2dSpec& spec,
                        DenseTensor& out) {
  int out_h = 0;
  int out_w = 0;
  prepare_out(input, weights, bias, spec, out, out_h, out_w);
  const TensorShape& is = input.shape();

  const float* in = input.raw();
  const float* w = weights.raw();
  float* o = out.raw();
  const std::size_t in_plane = input.stride_c();
  const std::size_t in_batch = input.stride_n();
  const std::size_t out_plane =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
  const std::size_t out_batch =
      static_cast<std::size_t>(spec.out_channels) * out_plane;
  const std::size_t w_oc = weights.stride_n();

  for (int n = 0; n < is.n; ++n) {
    const float* in_n = in + static_cast<std::size_t>(n) * in_batch;
    float* out_n = o + static_cast<std::size_t>(n) * out_batch;
    core::parallel_for(0, spec.out_channels, [&](int oc) {
      const float b = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc)];
      const float* w_base = w + static_cast<std::size_t>(oc) * w_oc;
      float* out_row = out_n + static_cast<std::size_t>(oc) * out_plane;
      for (int oy = 0; oy < out_h; ++oy) {
        const int iy0 = oy * spec.stride - spec.padding;
        for (int ox = 0; ox < out_w; ++ox) {
          const int ix0 = ox * spec.stride - spec.padding;
          float acc = b;
          const float* wp = w_base;
          for (int ic = 0; ic < spec.in_channels; ++ic) {
            const float* in_c = in_n + static_cast<std::size_t>(ic) * in_plane;
            for (int ky = 0; ky < spec.kernel; ++ky) {
              const int iy = iy0 + ky;
              if (iy < 0 || iy >= is.h) {
                wp += spec.kernel;
                continue;
              }
              const float* in_row =
                  in_c + static_cast<std::size_t>(iy) *
                             static_cast<std::size_t>(is.w);
              for (int kx = 0; kx < spec.kernel; ++kx) {
                const int ix = ix0 + kx;
                if (ix < 0 || ix >= is.w) continue;
                acc += in_row[ix] * wp[kx];
              }
              wp += spec.kernel;
            }
          }
          out_row[static_cast<std::size_t>(oy) *
                      static_cast<std::size_t>(out_w) +
                  static_cast<std::size_t>(ox)] = acc;
        }
      }
    });
  }
}

/// Unrolls one input image into the [patch x pixels] column matrix:
/// row (ic*k + ky)*k + kx holds the input value each output pixel sees
/// through that kernel tap (0 where the tap falls outside the input).
void im2col(const float* in_n, const TensorShape& is, const Conv2dSpec& spec,
            int out_h, int out_w, float* col) {
  const std::size_t pixels =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
  const std::size_t in_plane = static_cast<std::size_t>(is.h) *
                               static_cast<std::size_t>(is.w);
  std::size_t r = 0;
  for (int ic = 0; ic < spec.in_channels; ++ic) {
    const float* in_c = in_n + static_cast<std::size_t>(ic) * in_plane;
    for (int ky = 0; ky < spec.kernel; ++ky) {
      const int oy_lo = first_valid_out(ky, spec.stride, spec.padding);
      const int oy_hi = std::min(
          out_h - 1, last_valid_out(is.h, ky, spec.stride, spec.padding));
      for (int kx = 0; kx < spec.kernel; ++kx, ++r) {
        float* dst = col + r * pixels;
        const int ox_lo = first_valid_out(kx, spec.stride, spec.padding);
        const int ox_hi = std::min(
            out_w - 1, last_valid_out(is.w, kx, spec.stride, spec.padding));
        for (int oy = 0; oy < out_h; ++oy) {
          float* dst_row = dst + static_cast<std::size_t>(oy) *
                                     static_cast<std::size_t>(out_w);
          if (oy < oy_lo || oy > oy_hi || ox_lo > ox_hi) {
            std::fill(dst_row, dst_row + out_w, 0.0f);
            continue;
          }
          const int iy = oy * spec.stride + ky - spec.padding;
          const float* src_row = in_c + static_cast<std::size_t>(iy) *
                                            static_cast<std::size_t>(is.w);
          std::fill(dst_row, dst_row + ox_lo, 0.0f);
          if (spec.stride == 1) {
            std::memcpy(dst_row + ox_lo, src_row + ox_lo + kx - spec.padding,
                        static_cast<std::size_t>(ox_hi - ox_lo + 1) *
                            sizeof(float));
          } else {
            for (int ox = ox_lo; ox <= ox_hi; ++ox) {
              dst_row[ox] = src_row[ox * spec.stride + kx - spec.padding];
            }
          }
          std::fill(dst_row + ox_hi + 1, dst_row + out_w, 0.0f);
        }
      }
    }
  }
}

void conv2d_gemm_into(const DenseTensor& input, const DenseTensor& weights,
                      std::span<const float> bias, const Conv2dSpec& spec,
                      DenseTensor& out, sparse::Workspace* workspace) {
  int out_h = 0;
  int out_w = 0;
  prepare_out(input, weights, bias, spec, out, out_h, out_w);
  const TensorShape& is = input.shape();

  const std::size_t patch = static_cast<std::size_t>(spec.in_channels) *
                            static_cast<std::size_t>(spec.kernel) *
                            static_cast<std::size_t>(spec.kernel);
  const std::size_t pixels =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
  // With a workspace the column matrix is arena-owned and reused across
  // calls; without one it stays a per-call allocation (the column matrix
  // can reach hundreds of MB for large shapes — retaining it behind a
  // hidden thread_local would pin that for the thread's lifetime).
  std::vector<float> local_col;
  float* col_data;
  if (workspace != nullptr) {
    col_data = workspace->scratch(0).col_buffer(patch * pixels);
  } else {
    local_col.resize(patch * pixels);
    col_data = local_col.data();
  }

  const float* w = weights.raw();  // [Cout x patch], rows contiguous
  float* o = out.raw();
  const std::size_t out_batch =
      static_cast<std::size_t>(spec.out_channels) * pixels;

  // Register/L1 blocking: kOcBlock output rows share each column-matrix
  // read; kPixBlock keeps the accumulator tile resident.
  constexpr int kOcBlock = 4;
  constexpr std::size_t kPixBlock = 1024;

  for (int n = 0; n < is.n; ++n) {
    im2col(input.raw() + static_cast<std::size_t>(n) * input.stride_n(), is,
           spec, out_h, out_w, col_data);
    float* out_n = o + static_cast<std::size_t>(n) * out_batch;
    const int oc_blocks =
        (spec.out_channels + kOcBlock - 1) / kOcBlock;
    core::parallel_for(0, oc_blocks, [&](int blk) {
      const int oc0 = blk * kOcBlock;
      const int oc1 = std::min(spec.out_channels, oc0 + kOcBlock);
      float acc[kOcBlock][kPixBlock];
      for (std::size_t p0 = 0; p0 < pixels; p0 += kPixBlock) {
        const std::size_t plen = std::min(kPixBlock, pixels - p0);
        for (int oc = oc0; oc < oc1; ++oc) {
          const float b =
              bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc)];
          std::fill(acc[oc - oc0], acc[oc - oc0] + plen, b);
        }
        for (std::size_t r = 0; r < patch; ++r) {
          const float* col_row = col_data + r * pixels + p0;
          for (int oc = oc0; oc < oc1; ++oc) {
            const float wv = w[static_cast<std::size_t>(oc) * patch + r];
            float* a = acc[oc - oc0];
            for (std::size_t p = 0; p < plen; ++p) a[p] += wv * col_row[p];
          }
        }
        for (int oc = oc0; oc < oc1; ++oc) {
          std::memcpy(out_n + static_cast<std::size_t>(oc) * pixels + p0,
                      acc[oc - oc0], plen * sizeof(float));
        }
      }
    });
  }
}

}  // namespace

DenseTensor conv2d_direct(const DenseTensor& input, const DenseTensor& weights,
                          std::span<const float> bias,
                          const Conv2dSpec& spec) {
  DenseTensor out;
  conv2d_direct_into(input, weights, bias, spec, out);
  return out;
}

DenseTensor conv2d_gemm(const DenseTensor& input, const DenseTensor& weights,
                        std::span<const float> bias, const Conv2dSpec& spec,
                        sparse::Workspace* workspace) {
  DenseTensor out;
  conv2d_gemm_into(input, weights, bias, spec, out, workspace);
  return out;
}

void conv2d_into(const DenseTensor& input, const DenseTensor& weights,
                 std::span<const float> bias, const Conv2dSpec& spec,
                 DenseTensor& out, sparse::Workspace* workspace) {
  // Both paths validate on entry; no need to validate twice here.
  if (conv2d_uses_gemm(input.shape(), spec)) {
    conv2d_gemm_into(input, weights, bias, spec, out, workspace);
  } else {
    conv2d_direct_into(input, weights, bias, spec, out);
  }
}

DenseTensor conv2d(const DenseTensor& input, const DenseTensor& weights,
                   std::span<const float> bias, const Conv2dSpec& spec,
                   sparse::Workspace* workspace) {
  DenseTensor out;
  conv2d_into(input, weights, bias, spec, out, workspace);
  return out;
}

int transposed_conv_out_extent(int in_extent, int kernel, int stride,
                               int padding) {
  const int out = (in_extent - 1) * stride - 2 * padding + kernel;
  if (out <= 0) {
    throw std::invalid_argument("transposed conv output extent <= 0");
  }
  return out;
}

DenseTensor transposed_conv2d(const DenseTensor& input,
                              const DenseTensor& weights,
                              std::span<const float> bias,
                              const Conv2dSpec& spec) {
  validate_conv_inputs(input, weights, bias, spec, "tconv2d");
  const TensorShape& is = input.shape();
  const int out_h = transposed_conv_out_extent(is.h, spec.kernel, spec.stride,
                                               spec.padding);
  const int out_w = transposed_conv_out_extent(is.w, spec.kernel, spec.stride,
                                               spec.padding);
  DenseTensor out(TensorShape{is.n, spec.out_channels, out_h, out_w});

  const float* in = input.raw();
  const float* w = weights.raw();
  float* o = out.raw();
  const std::size_t in_plane = input.stride_c();
  const std::size_t in_batch = input.stride_n();
  const std::size_t out_plane =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
  const std::size_t out_batch =
      static_cast<std::size_t>(spec.out_channels) * out_plane;
  const std::size_t w_oc = weights.stride_n();
  const std::size_t w_ic = weights.stride_c();

  for (int n = 0; n < is.n; ++n) {
    const float* in_n = in + static_cast<std::size_t>(n) * in_batch;
    float* out_n = o + static_cast<std::size_t>(n) * out_batch;
    // Each worker owns a slice of output channels, so the scatter into
    // out_plane rows never races across threads.
    core::parallel_for(0, spec.out_channels, [&](int oc) {
      float* out_c = out_n + static_cast<std::size_t>(oc) * out_plane;
      const float b = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc)];
      std::fill(out_c, out_c + out_plane, b);
      const float* w_base = w + static_cast<std::size_t>(oc) * w_oc;
      for (int ic = 0; ic < spec.in_channels; ++ic) {
        const float* in_c = in_n + static_cast<std::size_t>(ic) * in_plane;
        const float* w_k = w_base + static_cast<std::size_t>(ic) * w_ic;
        for (int iy = 0; iy < is.h; ++iy) {
          const float* in_row = in_c + static_cast<std::size_t>(iy) *
                                           static_cast<std::size_t>(is.w);
          for (int ix = 0; ix < is.w; ++ix) {
            const float v = in_row[ix];
            if (v == 0.0f) continue;
            for (int ky = 0; ky < spec.kernel; ++ky) {
              const int oy = iy * spec.stride + ky - spec.padding;
              if (oy < 0 || oy >= out_h) continue;
              float* out_row = out_c + static_cast<std::size_t>(oy) *
                                           static_cast<std::size_t>(out_w);
              const float* w_row =
                  w_k + static_cast<std::size_t>(ky) *
                            static_cast<std::size_t>(spec.kernel);
              for (int kx = 0; kx < spec.kernel; ++kx) {
                const int ox = ix * spec.stride + kx - spec.padding;
                if (ox < 0 || ox >= out_w) continue;
                out_row[ox] += v * w_row[kx];
              }
            }
          }
        }
      }
    });
  }
  return out;
}

DenseTensor fully_connected(const DenseTensor& input,
                            const DenseTensor& weights,
                            std::span<const float> bias) {
  const TensorShape& is = input.shape();
  const TensorShape& ws = weights.shape();
  const auto in_features = static_cast<std::size_t>(is.c) *
                           static_cast<std::size_t>(is.h) *
                           static_cast<std::size_t>(is.w);
  if (static_cast<std::size_t>(ws.c) != in_features || ws.h != 1 ||
      ws.w != 1) {
    throw std::invalid_argument("fully_connected: weight shape mismatch");
  }
  if (!bias.empty() && static_cast<int>(bias.size()) != ws.n) {
    throw std::invalid_argument("fully_connected: bias size mismatch");
  }
  DenseTensor out(TensorShape{is.n, ws.n, 1, 1});
  const float* in = input.raw();
  const float* w = weights.raw();
  float* o = out.raw();
  for (int n = 0; n < is.n; ++n) {
    const float* in_n = in + static_cast<std::size_t>(n) * in_features;
    float* out_n = o + static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(ws.n);
    core::parallel_for(0, ws.n, [&](int oc) {
      const float* w_row = w + static_cast<std::size_t>(oc) * in_features;
      float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc)];
      for (std::size_t i = 0; i < in_features; ++i) {
        acc += in_n[i] * w_row[i];
      }
      out_n[oc] = acc;
    });
  }
  return out;
}

namespace {

template <typename Reduce>
DenseTensor pool_impl(const DenseTensor& input, int kernel, float init,
                      Reduce reduce, bool average) {
  if (kernel <= 0) throw std::invalid_argument("pool kernel must be > 0");
  const TensorShape& is = input.shape();
  if (is.h % kernel != 0 || is.w % kernel != 0) {
    throw std::invalid_argument("pool: extent not divisible by kernel");
  }
  const int out_h = is.h / kernel;
  const int out_w = is.w / kernel;
  DenseTensor out(TensorShape{is.n, is.c, out_h, out_w});
  const float* in = input.raw();
  float* o = out.raw();
  const std::size_t in_plane = input.stride_c();
  const std::size_t out_plane =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  const int planes = is.n * is.c;
  for (int p = 0; p < planes; ++p) {
    const float* in_p = in + static_cast<std::size_t>(p) * in_plane;
    float* out_p = o + static_cast<std::size_t>(p) * out_plane;
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        float acc = init;
        for (int ky = 0; ky < kernel; ++ky) {
          const float* in_row =
              in_p + static_cast<std::size_t>(oy * kernel + ky) *
                         static_cast<std::size_t>(is.w) +
              static_cast<std::size_t>(ox * kernel);
          for (int kx = 0; kx < kernel; ++kx) {
            acc = reduce(acc, in_row[kx]);
          }
        }
        if (average) acc *= inv;
        out_p[static_cast<std::size_t>(oy) * static_cast<std::size_t>(out_w) +
              static_cast<std::size_t>(ox)] = acc;
      }
    }
  }
  return out;
}

}  // namespace

DenseTensor max_pool(const DenseTensor& input, int kernel) {
  return pool_impl(
      input, kernel, -std::numeric_limits<float>::infinity(),
      [](float a, float b) { return std::max(a, b); }, false);
}

DenseTensor avg_pool(const DenseTensor& input, int kernel) {
  return pool_impl(
      input, kernel, 0.0f, [](float a, float b) { return a + b; }, true);
}

void relu_inplace(DenseTensor& t) noexcept {
  for (float& v : t.data()) v = std::max(v, 0.0f);
}

DenseTensor channel_affine(const DenseTensor& input,
                           std::span<const float> gamma,
                           std::span<const float> beta) {
  const TensorShape& is = input.shape();
  if (static_cast<int>(gamma.size()) != is.c ||
      static_cast<int>(beta.size()) != is.c) {
    throw std::invalid_argument("channel_affine: parameter size mismatch");
  }
  DenseTensor out(is);
  const float* in = input.raw();
  float* o = out.raw();
  const std::size_t plane = input.stride_c();
  for (int n = 0; n < is.n; ++n) {
    for (int c = 0; c < is.c; ++c) {
      const float g = gamma[static_cast<std::size_t>(c)];
      const float b = beta[static_cast<std::size_t>(c)];
      const std::size_t base =
          (static_cast<std::size_t>(n) * static_cast<std::size_t>(is.c) +
           static_cast<std::size_t>(c)) *
          plane;
      const float* src = in + base;
      float* dst = o + base;
      for (std::size_t i = 0; i < plane; ++i) dst[i] = src[i] * g + b;
    }
  }
  return out;
}

DenseTensor concat_channels(const DenseTensor& a, const DenseTensor& b) {
  const TensorShape& as = a.shape();
  const TensorShape& bs = b.shape();
  if (as.n != bs.n || as.h != bs.h || as.w != bs.w) {
    throw std::invalid_argument("concat_channels: N/H/W mismatch");
  }
  DenseTensor out(TensorShape{as.n, as.c + bs.c, as.h, as.w});
  const std::size_t a_block = a.stride_n();
  const std::size_t b_block = b.stride_n();
  float* o = out.raw();
  for (int n = 0; n < as.n; ++n) {
    float* dst = o + static_cast<std::size_t>(n) * (a_block + b_block);
    std::memcpy(dst, a.raw() + static_cast<std::size_t>(n) * a_block,
                a_block * sizeof(float));
    std::memcpy(dst + a_block, b.raw() + static_cast<std::size_t>(n) * b_block,
                b_block * sizeof(float));
  }
  return out;
}

DenseTensor add(const DenseTensor& a, const DenseTensor& b) {
  if (!(a.shape() == b.shape())) {
    throw std::invalid_argument("add: shape mismatch");
  }
  DenseTensor out = a;
  float* o = out.raw();
  const float* rb = b.raw();
  const std::size_t size = out.size();
  for (std::size_t i = 0; i < size; ++i) o[i] += rb[i];
  return out;
}

DenseTensor upsample_nearest(const DenseTensor& input, int factor) {
  if (factor <= 0) throw std::invalid_argument("upsample factor must be > 0");
  const TensorShape& is = input.shape();
  DenseTensor out(TensorShape{is.n, is.c, is.h * factor, is.w * factor});
  const float* in = input.raw();
  float* o = out.raw();
  const std::size_t in_plane = input.stride_c();
  const std::size_t out_w = static_cast<std::size_t>(is.w) *
                            static_cast<std::size_t>(factor);
  const std::size_t out_plane = static_cast<std::size_t>(is.h) *
                                static_cast<std::size_t>(factor) * out_w;
  const int planes = is.n * is.c;
  for (int p = 0; p < planes; ++p) {
    const float* in_p = in + static_cast<std::size_t>(p) * in_plane;
    float* out_p = o + static_cast<std::size_t>(p) * out_plane;
    for (int y = 0; y < is.h; ++y) {
      const float* src = in_p + static_cast<std::size_t>(y) *
                                    static_cast<std::size_t>(is.w);
      // Expand one input row, then replicate it `factor` times.
      float* first = out_p + static_cast<std::size_t>(y) *
                                 static_cast<std::size_t>(factor) * out_w;
      for (int x = 0; x < is.w; ++x) {
        const float v = src[x];
        float* dst = first + static_cast<std::size_t>(x) *
                                 static_cast<std::size_t>(factor);
        for (int f = 0; f < factor; ++f) dst[f] = v;
      }
      for (int f = 1; f < factor; ++f) {
        std::memcpy(first + static_cast<std::size_t>(f) * out_w, first,
                    out_w * sizeof(float));
      }
    }
  }
  return out;
}

}  // namespace evedge::nn
