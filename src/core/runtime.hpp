#pragma once

// EvEdgeRuntime: the user-facing facade assembling the whole framework
// (Fig. 4). Construction performs the offline phase — workload profiling
// and the NMP mapping search; process() then runs the online pipeline
// (E2SF -> DSFA -> mapped inference) over an event stream.
//
// Two network scales are involved (DESIGN.md section 2): performance
// modeling uses full-scale layer descriptors, while accuracy sensitivity
// is probed on a reduced-scale functional instance of the *same* graph
// (node ids are identical across scales by construction).

#include <cstdint>

#include "core/pipeline.hpp"
#include "mapper/baselines.hpp"
#include "mapper/nmp.hpp"
#include "nn/zoo.hpp"
#include "serve/serving_runtime.hpp"

namespace evedge::core {

struct EvEdgeOptions {
  nn::ZooConfig perf_scale = nn::ZooConfig::full_scale();
  nn::ZooConfig accuracy_scale = nn::ZooConfig::test_scale();
  E2sfConfig e2sf{};
  DsfaConfig dsfa{};
  mapper::NmpConfig nmp{};
  double frame_rate_hz = 30.0;
  int validation_samples = 4;        ///< functional accuracy probes
  std::size_t sensitivity_subset = 2;  ///< samples per sensitivity probe
  std::uint64_t seed = 7;
};

class EvEdgeRuntime {
 public:
  /// Offline phase: builds the network at both scales, profiles it on
  /// the platform, calibrates the accuracy surrogate and runs the NMP
  /// search for the single-task mapping.
  EvEdgeRuntime(nn::NetworkId network, hw::Platform platform,
                EvEdgeOptions options);

  /// Online phase: full Ev-Edge pipeline (E2SF + DSFA + NMP mapping).
  [[nodiscard]] PipelineStats process(
      const events::EventStream& stream) const;

  /// All-GPU FP32 dense baseline over the same stream (the Fig. 8
  /// reference point).
  [[nodiscard]] PipelineStats process_all_gpu_baseline(
      const events::EventStream& stream) const;

  /// Concurrent multi-stream serving runtime over this task's network at
  /// the functional (accuracy) scale, preconfigured with the runtime's
  /// E2SF/DSFA/frame-clock settings — `config`'s ingress block is
  /// overwritten with them so serving and process() agree on framing.
  /// Call run() on the result with any number of live streams.
  [[nodiscard]] serve::ServingRuntime make_server(
      serve::ServeConfig config = {}) const;

  [[nodiscard]] const nn::NetworkSpec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] const sched::TaskMapping& mapping() const noexcept {
    return mapping_;
  }
  [[nodiscard]] const mapper::NmpResult& nmp_result() const noexcept {
    return nmp_result_;
  }
  [[nodiscard]] const hw::Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] const ActivationDensityProfile& activation_densities()
      const noexcept {
    return densities_;
  }
  [[nodiscard]] const EvEdgeOptions& options() const noexcept {
    return options_;
  }

 private:
  EvEdgeOptions options_;
  nn::NetworkId network_;
  hw::Platform platform_;
  nn::NetworkSpec spec_;           ///< perf-scale descriptors
  ActivationDensityProfile densities_;
  mapper::NmpResult nmp_result_;
  sched::TaskMapping mapping_;
};

}  // namespace evedge::core
