#include "quant/qnetwork.hpp"

#include "quant/quantizer.hpp"

namespace evedge::quant {

using sparse::DenseTensor;

double output_quant_step(const DenseTensor& reference) {
  return static_cast<double>(max_abs(reference.data())) / 127.0;
}

QuantizedNetwork::QuantizedNetwork(
    nn::NetworkSpec spec, std::uint64_t seed, PrecisionMap precisions,
    std::span<const ValidationSample> calibration,
    WeightGranularity granularity, const QuantPlanOptions& plan_options)
    : net_(std::move(spec), seed), precisions_(std::move(precisions)) {
  calibration_ = calibrate_activations(net_, calibration);
  real_ = build_quant_plan(net_, precisions_, calibration_,
                           /*simulate=*/false, granularity, plan_options);
  simulated_ = build_quant_plan(net_, precisions_, calibration_,
                                /*simulate=*/true, granularity, plan_options);
}

const nn::ExecutionPlan& QuantizedNetwork::plan_execution(
    std::span<const sparse::DenseTensor> probe_steps,
    const sparse::DenseTensor* probe_image,
    const nn::PlannerOptions& options) {
  net_.set_execution_plan(nullptr);
  exec_plan_ =
      nn::ExecutionPlanner::calibrate(net_, probe_steps, probe_image, options);
  net_.set_execution_plan(&exec_plan_);
  exec_plan_active_ = true;
  return exec_plan_;
}

void QuantizedNetwork::clear_execution_plan() {
  net_.set_execution_plan(nullptr);
  exec_plan_active_ = false;
}

namespace {

/// Installs a plan for the duration of one call and restores whatever
/// plan the caller had active (always, including on throw).
class PlanGuard {
 public:
  PlanGuard(nn::FunctionalNetwork& net, const QuantPlan* plan)
      : net_(net), previous_(net.set_quant_plan(plan)) {}
  ~PlanGuard() { net_.set_quant_plan(previous_); }
  PlanGuard(const PlanGuard&) = delete;
  PlanGuard& operator=(const PlanGuard&) = delete;

 private:
  nn::FunctionalNetwork& net_;
  const QuantPlan* previous_;
};

}  // namespace

DenseTensor QuantizedNetwork::run(std::span<const DenseTensor> event_steps,
                                  const DenseTensor* image) {
  const PlanGuard guard(net_, &real_);
  return net_.run(event_steps, image);
}

DenseTensor QuantizedNetwork::run_batched(
    std::span<const DenseTensor> event_steps, const DenseTensor* image) {
  const PlanGuard guard(net_, &real_);
  return net_.run_batched(event_steps, image);
}

DenseTensor QuantizedNetwork::run_reference(
    std::span<const DenseTensor> event_steps, const DenseTensor* image) {
  const PlanGuard guard(net_, &simulated_);
  return net_.run(event_steps, image);
}

DenseTensor QuantizedNetwork::run_fp32(
    std::span<const DenseTensor> event_steps, const DenseTensor* image) {
  const PlanGuard guard(net_, nullptr);
  return net_.run(event_steps, image);
}

}  // namespace evedge::quant
