// Kernel micro-benchmark: times the seed reference kernels
// (sparse::reference) against the rewritten fast paths on identical
// inputs — dense conv2d (direct + GEMM), sparse_conv2d and
// submanifold_conv2d at DAVIS346-scale shapes across event densities —
// and writes machine-readable results to BENCH_kernels.json so the perf
// trajectory is tracked from PR 1 onward. Parity (max abs diff vs the
// reference) is reported alongside every timing.
//
// Usage: bench_kernels [output.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "nn/kernels.hpp"
#include "sparse/reference.hpp"
#include "sparse/sparse_ops.hpp"
#include "sparse/tensor.hpp"

namespace es = evedge::sparse;
namespace en = evedge::nn;
using evedge::bench::time_best_ms;

namespace {

struct Result {
  std::string kernel;
  std::string shape;
  double density = 1.0;
  double ref_ms = 0.0;
  double fast_ms = 0.0;
  double max_abs_diff = 0.0;

  [[nodiscard]] double speedup() const {
    return fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
  }
};

std::vector<es::CooChannel> random_channels(int channels, int h, int w,
                                            double density,
                                            std::uint64_t seed) {
  es::DenseTensor dense(es::TensorShape{1, channels, h, w});
  dense.fill_random(seed);
  // Keep roughly `density` of the elements, deterministically.
  const auto keep_every =
      density > 0.0 ? static_cast<std::size_t>(1.0 / density) : dense.size();
  std::size_t i = 0;
  for (float& v : dense.data()) {
    if (i++ % keep_every != 0) v = 0.0f;
  }
  return es::dense_to_channels(dense);
}

Result bench_dense_conv(const std::string& label, const es::TensorShape& in,
                        int out_channels, int kernel, int stride, int padding,
                        int ref_reps, int fast_reps) {
  const es::Conv2dSpec spec{in.c, out_channels, kernel, stride, padding};
  es::DenseTensor input(in);
  input.fill_random(11);
  es::DenseTensor weights(
      es::TensorShape{out_channels, in.c, kernel, kernel});
  weights.fill_random(12, 0.2f);
  std::vector<float> bias(static_cast<std::size_t>(out_channels), 0.05f);

  Result r;
  r.kernel = std::string("conv2d_") +
             (en::conv2d_uses_gemm(in, spec) ? "gemm" : "direct");
  r.shape = label;
  r.ref_ms = time_best_ms(
      [&] { (void)es::reference::conv2d(input, weights, bias, spec); },
      ref_reps);
  r.fast_ms = time_best_ms([&] { (void)en::conv2d(input, weights, bias, spec); },
                      fast_reps);
  r.max_abs_diff = es::max_abs_diff(
      en::conv2d(input, weights, bias, spec),
      es::reference::conv2d(input, weights, bias, spec));
  return r;
}

Result bench_sparse_conv(const std::string& label, int h, int w,
                         int in_channels, int out_channels, int kernel,
                         int stride, int padding, double density,
                         int ref_reps, int fast_reps) {
  const es::Conv2dSpec spec{in_channels, out_channels, kernel, stride,
                            padding};
  const auto input = random_channels(in_channels, h, w, density, 21);
  es::DenseTensor weights(
      es::TensorShape{out_channels, in_channels, kernel, kernel});
  weights.fill_random(22, 0.2f);
  std::vector<float> bias(static_cast<std::size_t>(out_channels), 0.05f);

  Result r;
  r.kernel = "sparse_conv2d";
  r.shape = label;
  r.density = density;
  r.ref_ms = time_best_ms(
      [&] { (void)es::reference::sparse_conv2d(input, weights, bias, spec); },
      ref_reps);
  r.fast_ms = time_best_ms(
      [&] { (void)es::sparse_conv2d(input, weights, bias, spec); },
      fast_reps);
  r.max_abs_diff =
      es::max_abs_diff(es::sparse_conv2d(input, weights, bias, spec),
                       es::reference::sparse_conv2d(input, weights, bias,
                                                    spec));
  return r;
}

Result bench_submanifold(const std::string& label, int h, int w,
                         int in_channels, int out_channels, int kernel,
                         double density, int ref_reps, int fast_reps) {
  const es::Conv2dSpec spec{in_channels, out_channels, kernel, 1,
                            (kernel - 1) / 2};
  const auto input = random_channels(in_channels, h, w, density, 31);
  es::DenseTensor weights(
      es::TensorShape{out_channels, in_channels, kernel, kernel});
  weights.fill_random(32, 0.2f);

  Result r;
  r.kernel = "submanifold_conv2d";
  r.shape = label;
  r.density = density;
  r.ref_ms = time_best_ms(
      [&] { (void)es::reference::submanifold_conv2d(input, weights, {}, spec); },
      ref_reps);
  r.fast_ms = time_best_ms(
      [&] { (void)es::submanifold_conv2d(input, weights, {}, spec); },
      fast_reps);
  r.max_abs_diff = es::max_abs_diff(
      es::channels_to_dense(es::submanifold_conv2d(input, weights, {}, spec)),
      es::channels_to_dense(
          es::reference::submanifold_conv2d(input, weights, {}, spec)));
  return r;
}

/// Forces one threading axis of the submanifold reduction (the kAuto
/// heuristic picks per shape; CI's multi-core runs show the axis split).
Result bench_submanifold_axis(const std::string& label, int h, int w,
                              int in_channels, int out_channels, int kernel,
                              double density, es::SubmanifoldThreading mode,
                              int ref_reps, int fast_reps) {
  const es::Conv2dSpec spec{in_channels, out_channels, kernel, 1,
                            (kernel - 1) / 2};
  const auto input = random_channels(in_channels, h, w, density, 31);
  es::DenseTensor weights(
      es::TensorShape{out_channels, in_channels, kernel, kernel});
  weights.fill_random(32, 0.2f);
  es::Workspace ws;

  Result r;
  r.kernel = mode == es::SubmanifoldThreading::kActiveSites
                 ? "submanifold_sites"
                 : "submanifold_oc";
  r.shape = label;
  r.density = density;
  r.ref_ms = time_best_ms(
      [&] { (void)es::reference::submanifold_conv2d(input, weights, {}, spec); },
      ref_reps);
  r.fast_ms = time_best_ms(
      [&] {
        (void)es::submanifold_conv2d(input, weights, {}, spec, nullptr, &ws,
                                     mode);
      },
      fast_reps);
  r.max_abs_diff = es::max_abs_diff(
      es::channels_to_dense(es::submanifold_conv2d(input, weights, {}, spec,
                                                   nullptr, &ws, mode)),
      es::channels_to_dense(
          es::reference::submanifold_conv2d(input, weights, {}, spec)));
  return r;
}

/// CSR-output strided sparse conv vs the seed path a sparse consumer
/// needs: dense-output scatter followed by the dense_to_channels
/// re-encode (the round-trip CSR chaining removes).
Result bench_sparse_csr(const std::string& label, int h, int w,
                        int in_channels, int out_channels, int kernel,
                        int stride, int padding, double density, int ref_reps,
                        int fast_reps) {
  const es::Conv2dSpec spec{in_channels, out_channels, kernel, stride,
                            padding};
  const auto input = random_channels(in_channels, h, w, density, 21);
  es::DenseTensor weights(
      es::TensorShape{out_channels, in_channels, kernel, kernel});
  weights.fill_random(22, 0.2f);
  es::Workspace ws;

  Result r;
  r.kernel = "sparse_conv2d_csr";
  r.shape = label;
  r.density = density;
  r.ref_ms = time_best_ms(
      [&] {
        (void)es::dense_to_channels(
            es::reference::sparse_conv2d(input, weights, {}, spec));
      },
      ref_reps);
  r.fast_ms = time_best_ms(
      [&] { (void)es::sparse_conv2d_csr(input, weights, {}, spec, nullptr,
                                        &ws); },
      fast_reps);
  r.max_abs_diff = es::max_abs_diff(
      es::channels_to_dense(
          es::sparse_conv2d_csr(input, weights, {}, spec, nullptr, &ws)),
      es::reference::sparse_conv2d(input, weights, {}, spec));
  return r;
}

[[nodiscard]] bool write_json(const std::vector<Result>& results,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"threads\": %d,\n  \"results\": [\n",
               evedge::core::parallel_thread_count());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"shape\": \"%s\", "
                 "\"density\": %.4f, \"ref_ms\": %.4f, \"fast_ms\": %.4f, "
                 "\"speedup\": %.2f, \"max_abs_diff\": %.3g}%s\n",
                 r.kernel.c_str(), r.shape.c_str(), r.density, r.ref_ms,
                 r.fast_ms, r.speedup(), r.max_abs_diff,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  std::vector<Result> results;

  std::printf("kernel benchmark (threads=%d)\n",
              evedge::core::parallel_thread_count());
  std::printf("%-22s %-26s %8s %10s %10s %9s %12s\n", "kernel", "shape",
              "density", "ref_ms", "fast_ms", "speedup", "max_diff");

  const auto report = [&](Result r) {
    std::printf("%-22s %-26s %8.4f %10.3f %10.3f %8.1fx %12.3g\n",
                r.kernel.c_str(), r.shape.c_str(), r.density, r.ref_ms,
                r.fast_ms, r.speedup(), r.max_abs_diff);
    std::fflush(stdout);
    results.push_back(std::move(r));
  };

  // --- Dense conv at zoo bench_scale() shapes (64x88 base, 16 channels)
  // and at DAVIS346 input scale (2-channel event frame -> first layer).
  report(bench_dense_conv("16x64x88 -> 32 k3s1",
                          es::TensorShape{1, 16, 64, 88}, 32, 3, 1, 1, 3, 9));
  report(bench_dense_conv("32x32x44 -> 64 k3s2",
                          es::TensorShape{1, 32, 32, 44}, 64, 3, 2, 1, 3, 9));
  report(bench_dense_conv("2x260x346 -> 16 k3s1",
                          es::TensorShape{1, 2, 260, 346}, 16, 3, 1, 1, 3, 9));
  report(bench_dense_conv("16x16x22 -> 32 k1s1 (direct)",
                          es::TensorShape{1, 16, 16, 22}, 32, 1, 1, 0, 5, 15));

  // --- Sparse scatter conv at DAVIS346 scale across densities.
  for (const double d : {0.005, 0.01, 0.02, 0.05}) {
    report(bench_sparse_conv("2x260x346 -> 16 k3s2", 260, 346, 2, 16, 3, 2, 1,
                             d, 3, 9));
  }

  // --- Submanifold conv at DAVIS346 scale across realistic densities.
  for (const double d : {0.005, 0.01, 0.02, 0.05}) {
    report(bench_submanifold("2x260x346 -> 16 k3", 260, 346, 2, 16, 3, d, 3,
                             9));
  }

  // --- CSR-output strided sparse conv (the densify-free chain link).
  for (const double d : {0.005, 0.02, 0.05}) {
    report(bench_sparse_csr("2x260x346 -> 16 k3s2", 260, 346, 2, 16, 3, 2, 1,
                            d, 3, 9));
  }

  // --- Submanifold threading axes on a wide-channel mid-pyramid shape
  // (the per-shape kAuto choice; identical results, different split).
  for (const auto mode : {es::SubmanifoldThreading::kOutputChannels,
                          es::SubmanifoldThreading::kActiveSites}) {
    report(bench_submanifold_axis("16x130x173 -> 32 k3", 130, 173, 16, 32, 3,
                                  0.02, mode, 3, 9));
  }

  const bool wrote = write_json(results, out_path);

  // Exit non-zero if any fast path diverged from the reference: the bench
  // doubles as a cheap numerical smoke test in CI.
  for (const Result& r : results) {
    if (r.max_abs_diff > 1e-3) {
      std::fprintf(stderr, "parity failure: %s %s diff=%g\n",
                   r.kernel.c_str(), r.shape.c_str(), r.max_abs_diff);
      return 1;
    }
  }
  return wrote ? 0 : 1;
}
