#pragma once

// Serving telemetry: per-stream latency/throughput/drop accounting and
// the aggregate report the ServingRuntime hands back after a run. The
// quantities mirror what a production inference server exports — tail
// latency percentiles per stream, aggregate frames/s, queue depth, drop
// and failure counters, degradation transitions — so the bench harness
// and tests read one structure.
//
// Frame accounting is a hard contract: for every stream,
//
//   enqueued == completed + dropped + shed + failed
//
// where `enqueued` counts every merged frame the ingress dispatched,
// `dropped` the frames displaced by the drop-oldest policy, `shed` the
// frames discarded because their SLO deadline had already passed before
// inference, and `failed` the frames quarantined (corrupt at ingress or
// worker retry budget exhausted). ServeReport::accounting_ok() verifies
// it, and the fault-injection soak (bench_serve_soak, test_serve) gates
// on it.
//
// Streams ingested over the wire (wire_ingress) extend the contract
// with a packet-level partition feeding the frame ledger from below:
//
//   wire_packets_seen == wire_packets_accepted + rejected_packets
//                        + duplicate_packets
//
// where `seen` counts every framed data/end-of-stream packet plus every
// framing rejection on that stream's byte feed, `rejected_packets` the
// truncated / CRC-failed / malformed packets quarantined by the
// receive path, and `duplicate_packets` the retransmission overlap the
// ARQ layer absorbed. All four lanes are zero for in-process ingress.

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/profile.hpp"

namespace evedge::serve {

/// Why a frame left the pipeline without producing a result. The first
/// group is detected by ingress validation (frame_fault_of), the second
/// by the serving back half.
enum class FrameFault : std::uint8_t {
  kNone = 0,
  kGeometryMismatch,       ///< frame extents differ from the stream sensor
  kOutOfBoundsCoordinate,  ///< COO entry outside [0,H) x [0,W)
  kNonFiniteValue,         ///< NaN/Inf stored value
  kBadTiming,              ///< t_end < t_start (non-monotonic bin clock)
  kDeadlineExceeded,       ///< SLO-stale: shed before inference
  kRetriesExhausted,       ///< worker retry budget spent
};

[[nodiscard]] const char* to_string(FrameFault fault) noexcept;

/// Shed faults count in the `shed` bucket; every other non-kNone fault
/// counts in `failed` (quarantine).
[[nodiscard]] constexpr bool is_shed_fault(FrameFault fault) noexcept {
  return fault == FrameFault::kDeadlineExceeded;
}

/// One quarantined frame: it was dispatched (counted in `enqueued`) but
/// never produced a result, and the reason is recorded instead of
/// killing the run.
struct QuarantinedFrame {
  int stream_id = -1;
  std::int64_t seq = -1;
  FrameFault fault = FrameFault::kNone;
  int attempts = 0;  ///< inference attempts consumed before quarantine
};

/// One step of the graceful-degradation ladder (see degrade.hpp).
struct DegradationTransition {
  double t_ms = 0.0;  ///< since run start
  int from = 0;
  int to = 0;
  std::size_t queue_depth = 0;  ///< depth sample that drove the step
  /// Rolling completion p99 at the transition (0 when the latency
  /// trigger is off) — tells a latency-driven step from a queue-driven
  /// one.
  double p99_ms = 0.0;
};

/// Injected-fault counters (fault.hpp); all zero when no FaultPlan is
/// installed.
struct FaultInjectionCounts {
  std::size_t worker_exceptions = 0;
  std::size_t latency_spikes = 0;
  std::size_t corrupt_frames = 0;
  std::size_t stream_stalls = 0;
  std::size_t stream_disconnects = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return worker_exceptions + latency_spikes + corrupt_frames +
           stream_stalls + stream_disconnects;
  }
};

/// Latency sample reservoir (microseconds). Percentiles are computed on
/// demand over a sorted copy; serving runs are bounded (thousands of
/// frames), so keeping every sample exact beats a sketch here.
class LatencyReservoir {
 public:
  void add(double latency_us) { samples_us_.push_back(latency_us); }
  void merge(const LatencyReservoir& other);

  [[nodiscard]] std::size_t count() const noexcept {
    return samples_us_.size();
  }
  [[nodiscard]] double mean_us() const noexcept;
  [[nodiscard]] double max_us() const noexcept;
  /// Interpolation-free percentile (nearest-rank on the sorted samples);
  /// q in [0, 1]. 0 when empty.
  [[nodiscard]] double percentile_us(double q) const;
  /// Fraction of samples <= `us` (the SLO on-time ratio); 0 when empty.
  [[nodiscard]] double fraction_below_us(double us) const noexcept;

 private:
  std::vector<double> samples_us_;
};

/// Thread-safe rolling window over the most recent latency samples —
/// the live probe behind the latency-driven degradation trigger.
/// Workers add() from the completion path; the monitor thread reads
/// percentile_us() each tick. Unlike LatencyReservoir this forgets:
/// the window holds the last `capacity` samples only, so a recovered
/// system's p99 actually comes back down.
class RollingLatency {
 public:
  explicit RollingLatency(std::size_t capacity = 256)
      : ring_(capacity > 0 ? capacity : 1) {}

  void add(double latency_us) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ring_[next_] = latency_us;
    next_ = (next_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
  }

  [[nodiscard]] std::size_t count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  /// Nearest-rank percentile over the current window; 0 when empty.
  [[nodiscard]] double percentile_us(double q) const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> ring_;
  std::size_t size_ = 0;
  std::size_t next_ = 0;
};

/// Rolling good/bad event window behind the per-stream SLO burn rate.
/// Every frame outcome is one event: good when it completed within the
/// deadline, bad when it missed it, was shed, or failed. burn_rate() is
/// the window's bad fraction divided by the error budget
/// (1 - good_target) — the standard multiplicative burn reading: 1.0
/// consumes the budget exactly, above it the budget exhausts early.
/// Not internally synchronized; the runtime updates it under the
/// result-sink mutex.
class BurnRateWindow {
 public:
  explicit BurnRateWindow(std::size_t capacity = 256,
                          double good_target = 0.99)
      : ring_(capacity > 0 ? capacity : 1),
        budget_(good_target < 1.0 ? 1.0 - good_target : 0.0) {}

  void add(bool good) {
    if (size_ == ring_.size()) {
      window_bad_ -= ring_[next_];
    } else {
      ++size_;
    }
    ring_[next_] = good ? 0 : 1;
    window_bad_ += ring_[next_];
    next_ = (next_ + 1) % ring_.size();
    if (good) {
      ++total_good_;
    } else {
      ++total_bad_;
    }
  }

  [[nodiscard]] std::size_t good() const noexcept { return total_good_; }
  [[nodiscard]] std::size_t bad() const noexcept { return total_bad_; }

  /// Bad fraction over the current window; 0 when empty.
  [[nodiscard]] double bad_fraction() const noexcept {
    return size_ == 0 ? 0.0
                      : static_cast<double>(window_bad_) /
                            static_cast<double>(size_);
  }

  /// bad_fraction() / (1 - good_target). With a zero error budget any
  /// bad event reads as infinite burn; that is represented as the bad
  /// count itself scaled arbitrarily high (1e9) to stay finite.
  [[nodiscard]] double burn_rate() const noexcept {
    const double bad = bad_fraction();
    if (budget_ <= 0.0) return bad > 0.0 ? 1e9 : 0.0;
    return bad / budget_;
  }

 private:
  std::vector<std::uint8_t> ring_;
  double budget_;
  std::size_t size_ = 0;
  std::size_t next_ = 0;
  std::size_t window_bad_ = 0;
  std::size_t total_good_ = 0;
  std::size_t total_bad_ = 0;
};

/// Per-stream serving statistics.
struct StreamServeStats {
  int stream_id = -1;
  std::size_t raw_frames = 0;   ///< E2SF bins pushed into DSFA
  std::size_t enqueued = 0;     ///< merged frames dispatched by ingress
  std::size_t dropped = 0;      ///< frames displaced by drop-oldest
  std::size_t shed = 0;         ///< SLO-stale frames shed before inference
  std::size_t failed = 0;       ///< quarantined (corrupt / retries spent)
  std::size_t completed = 0;    ///< frames through inference
  bool ingress_failed = false;  ///< the ingress thread died mid-stream
  std::string failure_reason;   ///< first ingress failure (empty otherwise)
  double mean_frame_density = 0.0;  ///< mean merged-frame spatial density
  double last_ingress_density = 0.0;  ///< DSFA recent_density() at stream end
  LatencyReservoir latency;     ///< enqueue -> inference completion

  // SLO burn-rate accounting (all zero unless SloConfig::deadline_ms >
  // 0 for the run; see BurnRateWindow). slo_good/slo_bad are run
  // totals, burn_rate the rolling-window value at end of run —
  // deliberately NOT part of accounting_ok(): they grade outcomes the
  // frame ledger already conserves.
  std::size_t slo_good = 0;  ///< completions within the deadline
  std::size_t slo_bad = 0;   ///< deadline misses + shed + failed
  double burn_rate = 0.0;    ///< final rolling-window burn rate

  // Wire-ingress packet lanes (all zero for in-process ingress; see the
  // packet-partition contract at the top of this header).
  std::size_t wire_packets_seen = 0;
  std::size_t wire_packets_accepted = 0;
  std::size_t rejected_packets = 0;   ///< truncated / CRC / malformed
  std::size_t duplicate_packets = 0;  ///< ARQ retransmission overlap
  std::size_t wire_resumes = 0;       ///< reconnect resume handshakes
  // Wire session-health lanes (observability only — deliberately NOT
  // part of accounting_ok(): they describe link quality, not frame
  // conservation). Retransmission pressure shows up receiver-side as
  // duplicate_packets (the overlap) and wire_rewinds (distinct go-back-N
  // rewinds observed as the data seq jumping backwards).
  std::size_t wire_heartbeats = 0;  ///< keepalives seen while peer idles
  std::size_t wire_rewinds = 0;     ///< sender rewinds observed (ARQ)
  std::size_t wire_resyncs = 0;     ///< framing resyncs (kBadMagic skips)
  std::size_t wire_reconnects = 0;  ///< transports re-accepted mid-stream

  /// The per-stream accounting invariants: the frame ledger, and — for
  /// wire streams — the packet partition beneath it.
  [[nodiscard]] bool accounting_ok() const noexcept {
    return enqueued == completed + dropped + shed + failed &&
           wire_packets_seen == wire_packets_accepted + rejected_packets +
                                    duplicate_packets;
  }
};

/// Per-worker serving statistics.
struct WorkerServeStats {
  int worker_id = -1;
  std::size_t batches = 0;         ///< batches completed
  std::size_t batch_attempts = 0;  ///< batches started (incl. failed ones)
  std::size_t samples = 0;
  double busy_ms = 0.0;          ///< wall time inside run_batched
  std::size_t calibrations = 0;  ///< planner warmup calibrations (0 or 1)
  std::size_t recalibrations = 0;  ///< density-drift plan refreshes
  std::size_t failures = 0;        ///< batches aborted by an exception
  std::size_t restarts = 0;        ///< fresh-clone restarts after a failure
  std::size_t frames_retried = 0;  ///< frames re-enqueued after a failure
  std::size_t frames_shed = 0;     ///< SLO-stale frames this worker shed
  std::size_t int8_batches = 0;    ///< batches served at the int8 rung
  int plan_sparse_nodes = 0;     ///< sparse-routed nodes of the live plan
  double plan_probe_density = 0.0;  ///< live plan's calibration density

  [[nodiscard]] double mean_batch() const noexcept {
    return batches > 0
               ? static_cast<double>(samples) / static_cast<double>(batches)
               : 0.0;
  }
};

/// Per-layer execution profile of one worker (ObsConfig::layer_profiles):
/// the LayerProfiler snapshot taken after the worker's thread joined.
struct WorkerLayerProfile {
  int worker_id = -1;
  std::vector<obs::NodeRouteProfile> nodes;
};

/// Aggregate report of one ServingRuntime::run().
struct ServeReport {
  double wall_ms = 0.0;          ///< ingress start -> last worker exit
  std::size_t frames_completed = 0;
  std::size_t frames_dropped = 0;
  std::size_t frames_shed = 0;
  std::size_t frames_failed = 0;
  std::size_t queue_peak_depth = 0;
  double queue_mean_depth = 0.0;
  /// Aggregate wire-ingress lanes (sums of the per-stream lanes).
  std::size_t rejected_packets = 0;
  std::size_t duplicate_packets = 0;
  std::size_t wire_resumes = 0;
  std::size_t wire_heartbeats = 0;
  std::size_t wire_rewinds = 0;
  std::size_t wire_resyncs = 0;
  std::size_t wire_reconnects = 0;
  std::vector<StreamServeStats> streams;
  std::vector<WorkerServeStats> workers;
  /// Per-worker per-layer execution profiles (empty unless
  /// ObsConfig::layer_profiles was on for the run).
  std::vector<WorkerLayerProfile> layer_profiles;
  /// Every quarantined frame, in discovery order (ingress first, then
  /// worker-side, interleaved by completion time).
  std::vector<QuarantinedFrame> quarantined;
  /// Degradation-ladder activity (empty when SLO degradation is off).
  std::vector<DegradationTransition> degradation;
  std::array<double, 4> ms_at_degrade_level{};  ///< wall ms per level 0-3
  int max_degrade_level = 0;
  FaultInjectionCounts faults;
  /// Set during report assembly: false if any stream's residual went
  /// negative or the per-stream drop residuals disagree with the
  /// queue-level displacement counter (an accounting bug, not a fault).
  bool accounting_valid = true;

  /// The frame-accounting contract, over every stream.
  [[nodiscard]] bool accounting_ok() const noexcept {
    if (!accounting_valid) return false;
    for (const StreamServeStats& s : streams) {
      if (!s.accounting_ok()) return false;
    }
    return true;
  }

  /// Aggregate throughput in completed frames per second.
  [[nodiscard]] double frames_per_second() const noexcept {
    return wall_ms > 0.0
               ? static_cast<double>(frames_completed) / (wall_ms / 1e3)
               : 0.0;
  }
  /// Latency percentile pooled over every stream's reservoir.
  [[nodiscard]] double percentile_us(double q) const;
  /// Fraction of pooled completion latencies <= `us` (on-time ratio
  /// against a wall deadline; the paced closed-loop bench gates on it).
  [[nodiscard]] double fraction_below_us(double us) const;
  [[nodiscard]] std::size_t total_batches() const noexcept;
  [[nodiscard]] double mean_batch() const noexcept;

  /// Human-readable multi-line summary (bench/debug output).
  [[nodiscard]] std::string describe() const;
};

}  // namespace evedge::serve
