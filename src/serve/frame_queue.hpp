#pragma once

// FrameQueue: the bounded, lock-guarded hand-off between per-stream
// ingress stages and the inference worker pool. Multi-producer (one
// ingress thread per stream), multi-consumer (each worker collates from
// it). Two overflow policies:
//
//   kBlock      push() blocks until a slot frees — lossless backpressure
//               that throttles ingress to inference speed (the parity
//               configuration: every frame is served, serving output is
//               bitwise identical to per-stream serial execution).
//   kDropOldest push() displaces the oldest queued frame and returns it
//               so the producer can account the drop per stream — the
//               latency-bounded configuration (the freshest data wins,
//               mirroring DSFA's own inference-queue discard rule).
//
// The policy can be switched mid-run (set_policy — the degradation
// ladder's rung 1); switching to kDropOldest wakes producers blocked
// under kBlock. close() wakes every blocked producer and consumer;
// consumers drain the remaining frames and then observe end-of-stream.
// requeue() is the supervision path: a worker returning the unprocessed
// frames of a failed batch pushes them to the FRONT (they are the
// oldest in-flight work), bypassing both the capacity bound and the
// closed flag — the requeuing worker itself is still draining, so the
// frames cannot strand.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "sparse/sparse_frame.hpp"

namespace evedge::serve {

/// One merged frame ready for inference, with its provenance and the
/// timing/telemetry the collator and stats need.
struct ReadyFrame {
  int stream_id = -1;
  std::int64_t seq = -1;  ///< per-stream dispatch index (0, 1, ...)
  sparse::SparseFrame frame;
  /// DSFA's recent-density EMA at dispatch time (the drift signal).
  double ingress_density = 0.0;
  /// First queue admission; preserved across requeues so SLO age and
  /// reported latency span the frame's whole time in the system.
  std::chrono::steady_clock::time_point enqueue_tp{};
  int attempts = 0;  ///< failed inference attempts so far (retry budget)
};

enum class OverflowPolicy : std::uint8_t { kBlock, kDropOldest };

class FrameQueue {
 public:
  FrameQueue(std::size_t capacity, OverflowPolicy policy);

  /// Enqueues one frame (stamps enqueue_tp unless already set). Under
  /// kBlock, blocks while the queue is full. Returns std::nullopt once
  /// pushed; the frame itself if the queue closed first (the caller
  /// owns frames the queue never accepted — compare (stream_id, seq) to
  /// tell a rejection from a kDropOldest displacement); or the
  /// displaced oldest frame when a full queue ran kDropOldest.
  [[nodiscard]] std::optional<ReadyFrame> push(ReadyFrame frame);

  /// Returns a failed batch's frame to the FRONT of the queue for
  /// retry. Never blocks, never displaces, ignores the capacity bound
  /// and the closed flag (see the class comment for why that is safe).
  void requeue(ReadyFrame frame);

  /// Blocks until a frame is available or the queue is closed and
  /// drained (std::nullopt = end of stream).
  [[nodiscard]] std::optional<ReadyFrame> pop();

  /// Like pop(), but gives up at `deadline` (std::nullopt = no frame by
  /// then, or closed and drained). The collator's follow-up pops.
  [[nodiscard]] std::optional<ReadyFrame> pop_until(
      std::chrono::steady_clock::time_point deadline);

  /// Marks end of input: blocked producers return their frames, blocked
  /// consumers drain what is queued and then see end-of-stream.
  void close();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] OverflowPolicy policy() const;
  /// Switches the overflow policy mid-run; kBlock -> kDropOldest wakes
  /// every producer blocked on a full queue (their frames are admitted
  /// under the new policy).
  void set_policy(OverflowPolicy policy);
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] bool closed() const;

  /// Depth telemetry, sampled at every push: high-water mark and mean.
  [[nodiscard]] std::size_t peak_depth() const;
  [[nodiscard]] double mean_depth() const;
  /// Total frames displaced by kDropOldest.
  [[nodiscard]] std::size_t dropped() const;
  /// Total frames returned for retry via requeue().
  [[nodiscard]] std::size_t requeued() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<ReadyFrame> queue_;
  OverflowPolicy policy_;  ///< guarded by mutex_ (set_policy)
  bool closed_ = false;
  std::size_t peak_depth_ = 0;
  std::size_t depth_samples_ = 0;
  std::size_t depth_sum_ = 0;
  std::size_t dropped_ = 0;
  std::size_t requeued_ = 0;
};

}  // namespace evedge::serve
