#include "sparse/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

namespace evedge::sparse {

void validate_shape(const TensorShape& shape) {
  if (shape.n <= 0 || shape.c <= 0 || shape.h <= 0 || shape.w <= 0) {
    throw std::invalid_argument(
        "tensor shape extents must be positive: [" + std::to_string(shape.n) +
        "," + std::to_string(shape.c) + "," + std::to_string(shape.h) + "," +
        std::to_string(shape.w) + "]");
  }
}

DenseTensor::DenseTensor(TensorShape shape, float fill) : shape_(shape) {
  validate_shape(shape_);
  data_.assign(shape_.element_count(), fill);
}

namespace {

[[nodiscard]] std::size_t flat_index(const TensorShape& s, int n, int c,
                                     int y, int x) {
  if (n < 0 || n >= s.n || c < 0 || c >= s.c || y < 0 || y >= s.h || x < 0 ||
      x >= s.w) {
    throw std::out_of_range("DenseTensor::at index out of range");
  }
  return ((static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
           static_cast<std::size_t>(c)) *
              static_cast<std::size_t>(s.h) +
          static_cast<std::size_t>(y)) *
             static_cast<std::size_t>(s.w) +
         static_cast<std::size_t>(x);
}

}  // namespace

float& DenseTensor::at(int n, int c, int y, int x) {
  return data_[flat_index(shape_, n, c, y, x)];
}

float DenseTensor::at(int n, int c, int y, int x) const {
  return data_[flat_index(shape_, n, c, y, x)];
}

void DenseTensor::reset(TensorShape shape) {
  validate_shape(shape);
  shape_ = shape;
  data_.resize(shape_.element_count());
}

void DenseTensor::fill_random(std::uint64_t seed, float range) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-range, range);
  for (float& v : data_) v = dist(rng);
}

std::size_t DenseTensor::count_nonzero(float tol) const noexcept {
  std::size_t count = 0;
  for (float v : data_) {
    if (std::abs(v) > tol) ++count;
  }
  return count;
}

double DenseTensor::density(float tol) const noexcept {
  return data_.empty() ? 0.0
                       : static_cast<double>(count_nonzero(tol)) /
                             static_cast<double>(data_.size());
}

namespace {

void require_same_shape(const DenseTensor& a, const DenseTensor& b) {
  if (!(a.shape() == b.shape())) {
    throw std::invalid_argument("tensor shape mismatch");
  }
}

}  // namespace

void copy_sample(const DenseTensor& src, int n, DenseTensor& out) {
  const TensorShape& s = src.shape();
  if (n < 0 || n >= s.n) {
    throw std::invalid_argument("copy_sample: lane out of range");
  }
  out.reset(TensorShape{1, s.c, s.h, s.w});
  const std::size_t block = src.stride_n();
  const float* from = src.raw() + static_cast<std::size_t>(n) * block;
  std::copy(from, from + block, out.raw());
}

float max_abs_diff(const DenseTensor& a, const DenseTensor& b) {
  require_same_shape(a, b);
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

double mean_abs_diff(const DenseTensor& a, const DenseTensor& b) {
  require_same_shape(a, b);
  if (a.size() == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::abs(static_cast<double>(a.data()[i]) -
                    static_cast<double>(b.data()[i]));
  }
  return acc / static_cast<double>(a.size());
}

double relative_l2_error(const DenseTensor& a, const DenseTensor& b,
                         double eps) {
  require_same_shape(a, b);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) -
                     static_cast<double>(b.data()[i]);
    num += d * d;
    den += static_cast<double>(b.data()[i]) *
           static_cast<double>(b.data()[i]);
  }
  return std::sqrt(num) / std::max(std::sqrt(den), eps);
}

}  // namespace evedge::sparse
