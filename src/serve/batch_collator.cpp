#include "serve/batch_collator.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace evedge::serve {

namespace {

/// One "queue.wait" span per popped frame: enqueue_tp -> now, the
/// queue-residency lane of the trace timeline.
void trace_queue_wait(const ReadyFrame& frame) {
  if (!obs::Tracer::enabled()) return;
  obs::Tracer::span("queue", "queue.wait",
                    obs::to_trace_ns(frame.enqueue_tp), obs::now_ns(),
                    "stream", frame.stream_id, "seq", frame.seq);
}

}  // namespace

BatchCollator::BatchCollator(CollatorConfig config) : config_(config) {
  if (config_.max_batch < 1) {
    throw std::invalid_argument("BatchCollator: max_batch must be >= 1");
  }
  if (config_.max_wait_us < 0.0) {
    throw std::invalid_argument("BatchCollator: max_wait_us must be >= 0");
  }
}

bool BatchCollator::collect(FrameQueue& queue,
                            std::vector<ReadyFrame>& out,
                            int max_batch_override) {
  out.clear();
  const int max_batch =
      max_batch_override > 0 ? max_batch_override : config_.max_batch;
  std::optional<ReadyFrame> first = queue.pop();
  if (!first.has_value()) return false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<long long>(config_.max_wait_us));
  trace_queue_wait(*first);
  out.push_back(std::move(*first));
  while (static_cast<int>(out.size()) < max_batch) {
    std::optional<ReadyFrame> next = queue.pop_until(deadline);
    if (!next.has_value()) break;  // deadline, or closed and drained
    trace_queue_wait(*next);
    out.push_back(std::move(*next));
  }
  return true;
}

}  // namespace evedge::serve
