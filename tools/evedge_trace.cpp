// evedge_trace: offline companion for the obs tracer's Chrome trace
// exports. Works on the line-oriented JSON write_chrome_trace produces
// (and ServingRuntime emits via ObsConfig::trace_path).
//
//   evedge_trace summarize <trace.json>
//       Per-(cat, name) table: span counts + total/mean/max duration,
//       instant counts, final counter values, per-thread event counts.
//
//   evedge_trace top <trace.json> [N]
//       The N spans with the largest individual duration (default 20).
//
//   evedge_trace diff <a.json> <b.json>
//       Per-(cat, name) total-duration and count delta between two
//       traces of the same workload — the "what got slower" view.
//
//   evedge_trace export <in.json> <out.json> [--journal <journal.log>]
//       Re-emits a normalized trace; with --journal, overlays the fault
//       journal's entries as instant events on the same timeline (the
//       journal's t_ms and the trace's ts share obs::trace_epoch(), so
//       the overlay needs no clock translation).
//
//   evedge_trace lineage <trace.json> <stream> <seq>
//       Reconstructs one frame's journey through the pipeline from its
//       lineage events (every hop carries "stream"/"seq" args): the hop
//       table in time order, then the per-stage latency breakdown
//       (queue wait, collate wait, inference, capture) and the
//       dispatch-to-inference-end wall time. Exit 1 when the trace has
//       no events for that (stream, seq).
//
// Exit status: 0 on success, 1 on usage / I/O errors.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_io.hpp"
#include "serve/journal.hpp"

namespace obs = evedge::obs;
namespace serve = evedge::serve;

namespace {

struct SpanAgg {
  std::size_t spans = 0;
  std::size_t instants = 0;
  double total_us = 0.0;
  double max_us = 0.0;
  double last_counter = 0.0;
  bool has_counter = false;
};

using Key = std::pair<std::string, std::string>;  // (cat, name)

[[nodiscard]] std::map<Key, SpanAgg> aggregate(
    const std::vector<obs::ParsedEvent>& events) {
  std::map<Key, SpanAgg> agg;
  for (const obs::ParsedEvent& e : events) {
    SpanAgg& a = agg[Key{e.cat, e.name}];
    switch (e.ph) {
      case 'X':
        ++a.spans;
        a.total_us += e.dur_us;
        a.max_us = std::max(a.max_us, e.dur_us);
        break;
      case 'i':
        ++a.instants;
        break;
      case 'C': {
        // The exporter writes counters as {"value": N}; recover N for
        // the "final value" column (best-effort: skip on mismatch).
        const std::size_t colon = e.args_json.find(':');
        if (colon != std::string::npos) {
          a.last_counter =
              std::strtod(e.args_json.c_str() + colon + 1, nullptr);
          a.has_counter = true;
        }
        break;
      }
      default:
        break;
    }
  }
  return agg;
}

int cmd_summarize(const std::string& path) {
  const std::vector<obs::ParsedEvent> events = obs::read_chrome_trace(path);
  if (events.empty()) {
    std::printf("%s: no events\n", path.c_str());
    return 0;
  }
  double t_min = events.front().ts_us, t_max = 0.0;
  std::map<int, std::size_t> per_thread;
  for (const obs::ParsedEvent& e : events) {
    t_min = std::min(t_min, e.ts_us);
    t_max = std::max(t_max, e.ts_us + e.dur_us);
    ++per_thread[e.tid];
  }
  std::printf("%s: %zu events, %zu threads, span %.3f ms\n", path.c_str(),
              events.size(), per_thread.size(), (t_max - t_min) / 1e3);
  std::printf("%-10s %-24s %8s %8s %12s %10s %10s\n", "cat", "name",
              "spans", "inst", "total_ms", "mean_us", "max_us");
  for (const auto& [key, a] : aggregate(events)) {
    if (a.has_counter) {
      std::printf("%-10s %-24s %8s %8s %12s %10s counter=%.0f\n",
                  key.first.c_str(), key.second.c_str(), "-", "-", "-", "-",
                  a.last_counter);
      continue;
    }
    const double mean_us =
        a.spans > 0 ? a.total_us / static_cast<double>(a.spans) : 0.0;
    std::printf("%-10s %-24s %8zu %8zu %12.3f %10.2f %10.2f\n",
                key.first.c_str(), key.second.c_str(), a.spans, a.instants,
                a.total_us / 1e3, mean_us, a.max_us);
  }
  std::printf("threads:");
  for (const auto& [tid, n] : per_thread) {
    std::printf(" tid%d=%zu", tid, n);
  }
  std::printf("\n");
  return 0;
}

int cmd_top(const std::string& path, int n) {
  std::vector<obs::ParsedEvent> events = obs::read_chrome_trace(path);
  std::erase_if(events,
                [](const obs::ParsedEvent& e) { return e.ph != 'X'; });
  std::sort(events.begin(), events.end(),
            [](const obs::ParsedEvent& a, const obs::ParsedEvent& b) {
              return a.dur_us > b.dur_us;
            });
  if (static_cast<int>(events.size()) > n) {
    events.resize(static_cast<std::size_t>(n));
  }
  std::printf("%-10s %-24s %5s %14s %12s\n", "cat", "name", "tid", "ts_ms",
              "dur_us");
  for (const obs::ParsedEvent& e : events) {
    std::printf("%-10s %-24s %5d %14.3f %12.2f\n", e.cat.c_str(),
                e.name.c_str(), e.tid, e.ts_us / 1e3, e.dur_us);
  }
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const std::map<Key, SpanAgg> a = aggregate(obs::read_chrome_trace(path_a));
  const std::map<Key, SpanAgg> b = aggregate(obs::read_chrome_trace(path_b));
  std::map<Key, std::pair<SpanAgg, SpanAgg>> joined;
  for (const auto& [key, agg] : a) joined[key].first = agg;
  for (const auto& [key, agg] : b) joined[key].second = agg;
  std::printf("%-10s %-24s %12s %12s %12s %9s\n", "cat", "name",
              "a_total_ms", "b_total_ms", "delta_ms", "count");
  for (const auto& [key, pair] : joined) {
    const SpanAgg& ja = pair.first;
    const SpanAgg& jb = pair.second;
    if (ja.has_counter || jb.has_counter) continue;
    std::printf("%-10s %-24s %12.3f %12.3f %+12.3f %4zu->%zu\n",
                key.first.c_str(), key.second.c_str(), ja.total_us / 1e3,
                jb.total_us / 1e3, (jb.total_us - ja.total_us) / 1e3,
                ja.spans + ja.instants, jb.spans + jb.instants);
  }
  return 0;
}

int cmd_export(const std::string& in_path, const std::string& out_path,
               const std::string& journal_path) {
  std::vector<obs::ParsedEvent> events = obs::read_chrome_trace(in_path);
  if (!journal_path.empty()) {
    std::vector<obs::ParsedEvent> overlay =
        serve::journal_overlay(serve::FaultJournal::read(journal_path));
    events.insert(events.end(), std::make_move_iterator(overlay.begin()),
                  std::make_move_iterator(overlay.end()));
  }
  std::sort(events.begin(), events.end(),
            [](const obs::ParsedEvent& a, const obs::ParsedEvent& b) {
              return a.ts_us < b.ts_us;
            });
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  obs::write_parsed_trace(out, events);
  std::printf("wrote %s (%zu events%s)\n", out_path.c_str(), events.size(),
              journal_path.empty() ? "" : ", journal overlaid");
  return 0;
}

int cmd_lineage(const std::string& path, std::int64_t stream,
                std::int64_t seq) {
  const std::vector<obs::ParsedEvent> events = obs::read_chrome_trace(path);
  const std::vector<obs::LineageHop> hops =
      obs::frame_lineage(events, stream, seq);
  if (hops.empty()) {
    std::fprintf(stderr, "no lineage events for stream=%lld seq=%lld\n",
                 static_cast<long long>(stream),
                 static_cast<long long>(seq));
    return 1;
  }
  std::printf("frame stream=%lld seq=%lld: %zu hops\n",
              static_cast<long long>(stream), static_cast<long long>(seq),
              hops.size());
  std::printf("%-10s %-24s %3s %5s %14s %12s\n", "cat", "name", "ph",
              "tid", "ts_ms", "dur_us");
  for (const obs::LineageHop& h : hops) {
    std::printf("%-10s %-24s %3c %5d %14.3f %12.2f\n", h.cat.c_str(),
                h.name.c_str(), h.ph, h.tid, h.ts_us / 1e3, h.dur_us);
  }
  // Per-stage breakdown: each lineage stage appears at most once per
  // frame, so the first matching hop is the frame's hop.
  const auto stage = [&](const char* cat,
                         const char* name) -> const obs::LineageHop* {
    for (const obs::LineageHop& h : hops) {
      if (h.cat == cat && h.name == name) return &h;
    }
    return nullptr;
  };
  const obs::LineageHop* queue_wait = stage("queue", "queue.wait");
  const obs::LineageHop* collate = stage("queue", "collate.wait");
  const obs::LineageHop* inference = stage("worker", "frame.inference");
  const obs::LineageHop* capture = stage("serve", "frame.capture");
  std::printf("breakdown:\n");
  const auto row = [](const char* label, const obs::LineageHop* h) {
    if (h != nullptr) {
      std::printf("  %-14s %12.2f us\n", label, h->dur_us);
    } else {
      std::printf("  %-14s %12s\n", label, "-");
    }
  };
  row("queue wait", queue_wait);
  row("collate wait", collate);
  row("inference", inference);
  row("capture", capture);
  if (queue_wait != nullptr && inference != nullptr) {
    // Same-clock end-to-end measure: enqueue (queue.wait start) to
    // inference completion — the latency the runtime reports.
    std::printf("  %-14s %12.2f us\n", "wall",
                inference->ts_us + inference->dur_us - queue_wait->ts_us);
  }
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  evedge_trace summarize <trace.json>\n"
      "  evedge_trace top <trace.json> [N]\n"
      "  evedge_trace diff <a.json> <b.json>\n"
      "  evedge_trace export <in.json> <out.json> "
      "[--journal <journal.log>]\n"
      "  evedge_trace lineage <trace.json> <stream> <seq>\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "summarize") {
      return cmd_summarize(argv[2]);
    }
    if (cmd == "top") {
      const int n = argc > 3 ? std::atoi(argv[3]) : 20;
      return cmd_top(argv[2], n > 0 ? n : 20);
    }
    if (cmd == "diff" && argc >= 4) {
      return cmd_diff(argv[2], argv[3]);
    }
    if (cmd == "export" && argc >= 4) {
      std::string journal;
      for (int i = 4; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--journal") journal = argv[i + 1];
      }
      return cmd_export(argv[2], argv[3], journal);
    }
    if (cmd == "lineage" && argc >= 5) {
      return cmd_lineage(argv[2], std::atoll(argv[3]), std::atoll(argv[4]));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "evedge_trace: %s\n", e.what());
    return 1;
  }
  return usage();
}
