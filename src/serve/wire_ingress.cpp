#include "serve/wire_ingress.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evedge::serve {

WireStreamIngress::WireStreamIngress(int stream_id, IngressConfig config,
                                     WireIngressConfig wire_config,
                                     FrameQueue& queue,
                                     TransportAcceptor acceptor)
    : stream_id_(stream_id),
      config_(std::move(config)),
      wire_config_(std::move(wire_config)),
      queue_(queue),
      acceptor_(std::move(acceptor)) {
  stats_.stream_id = stream_id;
}

void WireStreamIngress::mark_failed(std::string reason) {
  stats_.ingress_failed = true;
  if (stats_.failure_reason.empty()) {
    stats_.failure_reason = std::move(reason);
  }
}

void WireStreamIngress::on_hello(const wire::StreamHeader& header) {
  header_ = header;
  e2sf_.emplace(events::SensorGeometry{header.width, header.height},
                config_.e2sf);
  dsfa_.emplace(config_.dsfa);
  if (header.data_packets > 0) {
    // Rebuild the exact offline grid: FrameClock::spanning(stream, rate)
    // is uniform(t_begin, round(1e6/rate), (t_end - t_begin)/period + 2)
    // and hello carries the full 64-bit t_begin (epoch) and t_end.
    const auto period = static_cast<events::TimeUs>(
        std::llround(1e6 / config_.frame_rate_hz));
    const auto n_frames = static_cast<std::size_t>(
                              (header.t_end_us - header.epoch_us) /
                              period) +
                          2;
    clock_ = events::FrameClock::uniform(header.epoch_us, period, n_frames);
    have_grid_ = true;
  }
}

bool WireStreamIngress::dispatch(sparse::SparseFrame frame) {
  density_sum_ += frame.density();
  if (config_.validate_frames) {
    const FrameFault fault =
        frame_fault_of(frame, header_.height, header_.width);
    if (fault != FrameFault::kNone) {
      quarantined_.push_back(QuarantinedFrame{stream_id_, seq_, fault, 0});
      if (journal_ != nullptr) {
        journal_->append("quarantine",
                         "stream=" + std::to_string(stream_id_) +
                             " seq=" + std::to_string(seq_) +
                             " fault=" + to_string(fault) +
                             " action=wire-ingress-reject");
      }
      ++stats_.enqueued;
      ++stats_.failed;
      if (dispatch_counter_ != nullptr) dispatch_counter_->add();
      ++seq_;  // seq consumed: (stream, seq) keys stay aligned
      return true;
    }
  }
  ReadyFrame ready;
  ready.stream_id = stream_id_;
  ready.seq = seq_;
  ready.frame = std::move(frame);
  ready.ingress_density = dsfa_->recent_density();
  obs::Tracer::instant("ingress", "frame.dispatch", "stream", stream_id_,
                       "seq", seq_);
  std::optional<ReadyFrame> rejected = queue_.push(std::move(ready));
  if (rejected.has_value() && rejected->stream_id == stream_id_ &&
      rejected->seq == seq_) {
    // Identity match = the queue closed and never accepted this frame
    // (see StreamIngress::run for the drop-oldest distinction). Stop
    // receiving: close the live transport so the session unblocks.
    abort_ = true;
    if (current_ != nullptr) current_->close();
    return false;
  }
  ++seq_;
  ++stats_.enqueued;
  if (dispatch_counter_ != nullptr) dispatch_counter_->add();
  return true;
}

bool WireStreamIngress::drain_dsfa() {
  while (auto batch = dsfa_->take_ready_batch()) {
    for (sparse::SparseFrame& frame : batch->frames) {
      if (!dispatch(std::move(frame))) return false;
    }
  }
  return true;
}

void WireStreamIngress::process_intervals(bool flush) {
  if (!have_grid_ || abort_) return;
  while (next_interval_ < clock_.interval_count()) {
    const events::TimeUs t0 = clock_.timestamps[next_interval_];
    const events::TimeUs t1 = clock_.timestamps[next_interval_ + 1];
    // An interval is provably complete once a received event sits at or
    // beyond its right edge (events arrive time-ordered). Without that
    // proof only a flush (end-of-stream) may close it.
    if (!flush && (buffered_.empty() || buffered_.back().t < t1)) break;
    const auto split = std::lower_bound(
        buffered_.begin(), buffered_.end(), t1,
        [](const events::Event& e, events::TimeUs t) { return e.t < t; });
    const std::span<const events::Event> window(
        buffered_.data(),
        static_cast<std::size_t>(split - buffered_.begin()));
    for (sparse::SparseFrame& frame : e2sf_->convert(window, t0, t1)) {
      ++stats_.raw_frames;
      dsfa_->push(std::move(frame));
    }
    buffered_.erase(buffered_.begin(), split);
    ++next_interval_;
    if (!drain_dsfa()) return;
  }
}

void WireStreamIngress::on_events(std::span<const events::Event> batch) {
  if (abort_) return;
  buffered_.insert(buffered_.end(), batch.begin(), batch.end());
  process_intervals(/*flush=*/false);
}

void WireStreamIngress::run() {
  wire::WireSink sink;
  sink.hello = [this](const wire::StreamHeader& h) { on_hello(h); };
  sink.events = [this](std::span<const events::Event> batch,
                       std::uint32_t) { on_events(batch); };
  sink.rejected = [this](wire::PacketError error) {
    if (journal_ != nullptr) {
      journal_->append("wire-reject",
                       "stream=" + std::to_string(stream_id_) +
                           " fault=" + wire::to_string(error) +
                           " action=quarantine-packet");
    }
  };
  wire::WireReceiver receiver(wire_config_.receiver, std::move(sink));

  int losses = 0;
  std::size_t accepted_transports = 0;
  while (!receiver.eos() && !abort_) {
    std::unique_ptr<wire::Transport> transport =
        acceptor_(wire_config_.accept_timeout);
    if (!transport) {
      if (++losses > wire_config_.max_session_losses) {
        mark_failed("wire: no connection");
        break;
      }
      continue;
    }
    // Every transport accepted beyond the first is a mid-stream
    // reconnect (the session state carried across the gap).
    if (accepted_transports++ > 0) {
      ++stats_.wire_reconnects;
      obs::Tracer::instant("wire", "wire.reaccept", "stream", stream_id_);
    }
    current_ = transport.get();
    const wire::ServeOutcome outcome = receiver.serve(*transport);
    if (outcome == wire::ServeOutcome::kEndOfStream && !abort_) {
      receiver.linger(*transport);  // let the peer consume the last ack
    }
    current_ = nullptr;
    transport->close();
    if (outcome == wire::ServeOutcome::kEndOfStream || abort_) break;
    // Peer closed or stalled: await the sender's reconnect. The session
    // state (next seq, unwrapper, pending buffer) carries across, so a
    // resumed sender loses nothing that was acked.
    if (++losses > wire_config_.max_session_losses) {
      mark_failed(std::string("wire: session lost (") +
                  wire::to_string(outcome) + ")");
      break;
    }
  }
  receiver.finish();
  wire_stats_ = receiver.stats();

  if (receiver.eos() && !abort_) {
    process_intervals(/*flush=*/true);
    if (!abort_ && dsfa_.has_value()) {
      dsfa_->dispatch_available();
      (void)drain_dsfa();
    }
  }

  stats_.wire_packets_seen = wire_stats_.packets_seen;
  stats_.wire_packets_accepted = wire_stats_.packets_accepted;
  stats_.rejected_packets = wire_stats_.rejected_packets;
  stats_.duplicate_packets = wire_stats_.duplicate_packets;
  stats_.wire_resumes = wire_stats_.resumes_served;
  stats_.wire_heartbeats = wire_stats_.heartbeats_seen;
  stats_.wire_rewinds = wire_stats_.rewinds_seen;
  stats_.wire_resyncs = wire_stats_.resyncs;
  stats_.completed = 0;  // filled in by the runtime from worker results
  if (stats_.enqueued > 0) {
    stats_.mean_frame_density =
        density_sum_ / static_cast<double>(stats_.enqueued);
  }
  if (dsfa_.has_value()) {
    stats_.last_ingress_density = dsfa_->recent_density();
  }
}

}  // namespace evedge::serve
