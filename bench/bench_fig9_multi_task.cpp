// Figure 9 reproduction: multi-task latency speedups of the Network
// Mapper over the round-robin baselines, for the paper's three
// configurations — all-ANN {EV-FlowNet, HidalgoDepth}, all-SNN {DOTIE,
// Adaptive-SpikeNet} and mixed {Fusion-FlowNet, HALSIE, DOTIE,
// HidalgoDepth} — plus the full-precision variant Ev-Edge-NMP-FP.
//
// Paper bands: NMP is 1.43x-1.81x faster than RR-Network, 1.24x-1.41x
// faster than RR-Layer, and NMP-FP is 1.05x-1.22x slower than NMP.

#include <cstdio>

#include "bench_common.hpp"
#include "core/batch_executor.hpp"
#include "core/pipeline.hpp"
#include "events/density_profile.hpp"
#include "hw/profiler.hpp"
#include "mapper/baselines.hpp"
#include "mapper/nmp.hpp"
#include "quant/accuracy.hpp"
#include "sched/scheduler.hpp"

namespace eb = evedge::bench;
namespace ec = evedge::core;
namespace ee = evedge::events;
namespace eh = evedge::hw;
namespace em = evedge::mapper;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace ss = evedge::sched;

namespace {

struct ConfigResult {
  double nmp_us = 0.0;
  double nmp_fp_us = 0.0;
  double rr_net_us = 0.0;
  double rr_layer_us = 0.0;
};

ConfigResult evaluate_config(const en::MultiTaskConfig& config,
                             const eh::Platform& platform) {
  std::vector<en::NetworkSpec> specs;
  std::vector<eq::SensitivityModel> sensitivities;
  for (const auto id : config.networks) {
    specs.push_back(en::build_network(id, en::ZooConfig::full_scale()));
  }
  const auto profiles = eh::profile_tasks(specs, platform);

  // Accuracy surrogates calibrated on reduced-scale functional twins
  // (node ids match across scales).
  sensitivities.reserve(config.networks.size());
  std::vector<eq::AccuracyEvaluator> evaluators;
  evaluators.reserve(config.networks.size());
  for (const auto id : config.networks) {
    const auto small = en::build_network(id, en::ZooConfig::test_scale());
    evaluators.emplace_back(small, 7,
                            eq::make_validation_set(small, 3, 21));
    sensitivities.emplace_back(evaluators.back(), 2);
  }
  em::AccuracyFn accuracy = [&sensitivities](
                                int task, const ss::TaskMapping& mapping) {
    eq::PrecisionMap precisions;
    for (std::size_t n = 0; n < mapping.nodes.size(); ++n) {
      if (mapping.nodes[n].pe >= 0) {
        precisions[static_cast<int>(n)] = mapping.nodes[n].precision;
      }
    }
    return sensitivities[static_cast<std::size_t>(task)].predict(
        precisions);
  };

  em::NmpConfig nmp_cfg;
  nmp_cfg.population = 32;
  nmp_cfg.generations = 48;
  nmp_cfg.accuracy_threshold = 0.05;
  nmp_cfg.seed = 17;

  em::NetworkMapper nmp(specs, profiles, platform, accuracy, nmp_cfg);
  auto nmp_fp_cfg = nmp_cfg;
  nmp_fp_cfg.allow_reduced_precision = false;
  em::NetworkMapper nmp_fp(specs, profiles, platform, accuracy, nmp_fp_cfg);

  ConfigResult result;
  result.nmp_us = nmp.run().best_schedule.max_task_latency_us;
  result.nmp_fp_us = nmp_fp.run().best_schedule.max_task_latency_us;
  result.rr_net_us =
      ss::schedule(specs, profiles,
                   em::rr_network_candidate(specs, profiles, platform),
                   platform)
          .max_task_latency_us;
  result.rr_layer_us =
      ss::schedule(specs, profiles,
                   em::rr_layer_candidate(specs, profiles, platform),
                   platform)
          .max_task_latency_us;
  return result;
}

}  // namespace

int main() {
  eb::print_header("Figure 9: multi-task mapping, speedup over baselines");
  const auto platform = eh::xavier_agx();

  std::printf("%-16s %-12s %-12s %-12s %-12s %-10s\n", "config",
              "vs RR-Net", "vs RR-Layer", "NMP-FP/NMP", "NMP [ms]",
              "RRNet[ms]");
  eb::print_rule(80);

  for (const auto& config : {en::multi_task_all_ann(),
                             en::multi_task_all_snn(),
                             en::multi_task_mixed()}) {
    const ConfigResult r = evaluate_config(config, platform);
    std::printf("%-16s %-12.2f %-12.2f %-12.2f %-12.2f %-10.2f\n",
                config.name.c_str(), r.rr_net_us / r.nmp_us,
                r.rr_layer_us / r.nmp_us, r.nmp_fp_us / r.nmp_us,
                r.nmp_us / 1000.0, r.rr_net_us / 1000.0);
  }
  eb::print_rule(80);
  std::printf(
      "paper: NMP 1.43x-1.81x over RR-Network, 1.24x-1.41x over RR-Layer; "
      "NMP-FP 1.05x-1.22x slower than NMP.\n");

  // --- Real batched execution: each mixed-config network pushes its
  // DSFA-dispatched merge batches through FunctionalNetwork::run_batched
  // (reduced-scale functional twin), so the multi-task harness exercises
  // the live batched kernel path, not only the analytic cost model.
  eb::print_header(
      "mixed config: dispatched batches on the real batched engine");
  std::printf("%-20s %-9s %-9s %-10s %-12s\n", "network", "batches",
              "batch", "ms/batch", "wall[ms]");
  eb::print_rule(64);
  for (const auto id : en::multi_task_mixed().networks) {
    const auto spec = en::build_network(id, en::ZooConfig::test_scale());
    en::FunctionalNetwork fnet(spec, 7);
    ec::BatchExecutor executor(fnet);
    // Dispatched batches route density-adaptively (plan calibrated on
    // the first batch; outputs stay bitwise identical to dense).
    executor.enable_execution_planner();
    const auto stream = eb::make_matched_stream(
        spec, ee::DensityProfile::indoor_flying2(), 1'000'000, 5);
    const auto densities = ec::measure_activation_densities(spec, 7);
    const auto mapping =
        ss::uniform_candidate({spec}, platform.first_pe(eh::PeKind::kGpu),
                              eq::Precision::kFp32)
            .tasks.front();
    ec::PipelineConfig cfg;
    cfg.executor = &executor;
    const auto stats = ec::simulate_pipeline(stream, spec, mapping, platform,
                                             densities, cfg);
    std::printf("%-20s %-9zu %-9.2f %-10.3f %-12.1f\n", spec.name.c_str(),
                stats.functional_batches, executor.stats().mean_batch(),
                executor.stats().mean_ms_per_batch(),
                stats.functional_wall_ms);
  }
  eb::print_rule(64);
  return 0;
}
