// Figure 1 reproduction: average percentage of events in an event frame
// and the number of operations expended for processing those events —
// Adaptive-SpikeNet on an MVSEC indoor_flying1-like sequence.
//
// The paper's point: event frames are mostly empty, yet dense fixed-size
// GEMMs spend the full MAC budget regardless; the useful (event-driven)
// fraction of the first-layer operations tracks the frame fill ratio.

#include <cstdio>

#include "bench_common.hpp"
#include "core/e2sf.hpp"
#include "events/stats.hpp"
#include "sparse/sparse_ops.hpp"

namespace eb = evedge::bench;
namespace ec = evedge::core;
namespace ee = evedge::events;
namespace en = evedge::nn;
namespace es = evedge::sparse;

int main() {
  eb::print_header(
      "Figure 1: event-frame fill ratio and expended operations "
      "(Adaptive-SpikeNet, indoor_flying1-like)");

  const auto stream = eb::make_davis_stream(
      ee::DensityProfile::indoor_flying1(), 4'000'000);
  const auto spec = en::build_network(en::NetworkId::kAdaptiveSpikeNet,
                                      en::ZooConfig::full_scale());

  // First spiking conv of Adaptive-SpikeNet at full scale.
  const auto& first = spec.graph.node(1).spec;
  es::DenseTensor weights(es::TensorShape{first.conv.out_channels,
                                          first.conv.in_channels,
                                          first.conv.kernel,
                                          first.conv.kernel});
  weights.fill_random(7);

  const ec::Event2SparseFrame e2sf(stream.geometry(),
                                   ec::E2sfConfig{spec.n_bins});
  const auto clock = ee::FrameClock::uniform(
      0, 33'333, 1 + static_cast<std::size_t>(stream.duration() / 33'333));
  const auto intervals = e2sf.convert_stream(stream, clock);

  std::printf("%-8s %-12s %-16s %-16s %-10s\n", "frame", "fill-%",
              "dense-MACs", "event-MACs", "useful-%");
  eb::print_rule();

  double fill_sum = 0.0;
  double useful_sum = 0.0;
  std::size_t frames = 0;
  std::size_t printed = 0;
  for (const auto& bins : intervals) {
    for (const auto& frame : bins) {
      es::ConvWork work;
      std::vector<es::CooChannel> channels{frame.positive(),
                                           frame.negative()};
      (void)es::sparse_conv2d(channels, weights, {}, first.conv, &work);
      const double fill = frame.pixel_fill_ratio() * 100.0;
      const double useful =
          work.dense_macs > 0
              ? 100.0 * static_cast<double>(work.sparse_macs) /
                    static_cast<double>(work.dense_macs)
              : 0.0;
      fill_sum += fill;
      useful_sum += useful;
      ++frames;
      if (printed < 20) {  // sample rows; summary below covers the rest
        std::printf("%-8zu %-12.3f %-16zu %-16zu %-10.3f\n", frames, fill,
                    work.dense_macs, work.sparse_macs, useful);
        ++printed;
      }
    }
  }
  eb::print_rule();
  std::printf(
      "frames analysed: %zu | mean fill: %.3f%% | mean useful ops: %.3f%%\n",
      frames, fill_sum / static_cast<double>(frames),
      useful_sum / static_cast<double>(frames));
  std::printf(
      "paper's Fig. 1 shape: events occupy only a few %% of each frame "
      "while dense execution always spends 100%% of the MACs.\n");
  return 0;
}
