#pragma once

// StreamIngress: the per-stream front half of the online pipeline
// (Fig. 4), run concurrently for N cameras. Each instance walks one
// EventStream on its own thread: grayscale-clock intervals are sliced
// and E2SF-binned, the resulting sparse frames staged through a
// per-stream DSFA, and every dispatched merged frame enqueued into the
// shared FrameQueue as a ReadyFrame carrying the stream id, per-stream
// dispatch index, and DSFA's live density signal (the planner-drift
// input downstream).
//
// Robustness: each dispatched frame is validated before admission
// (frame_fault_of) — malformed frames (out-of-range COO coordinates,
// non-finite values, inverted bin timing, geometry mismatch) are
// quarantined with a typed FrameFault instead of flowing downstream to
// index kernels out of range. A quarantined frame still consumes its
// seq and counts as enqueued + failed, so (stream, seq) keys and the
// accounting invariant survive. An attached FaultInjector can corrupt,
// stall, or disconnect the stream at exact (stream, seq) sites; a
// disconnect (injected or a real ingress-thread exception, which the
// runtime routes to mark_failed) fails only this stream.
//
// Ingest order is deterministic per stream — collect_frames() runs the
// identical E2SF+DSFA pipeline without a queue, faults, or validation,
// so (stream_id, seq) keys line up exactly between concurrent serving
// and per-stream serial execution.

#include <cstdint>
#include <string>
#include <vector>

#include "core/dsfa.hpp"
#include "core/e2sf.hpp"
#include "events/event_stream.hpp"
#include "serve/fault.hpp"
#include "serve/frame_queue.hpp"
#include "serve/journal.hpp"
#include "serve/serve_stats.hpp"

namespace evedge::obs {
class Counter;
}  // namespace evedge::obs

namespace evedge::serve {

struct IngressConfig {
  core::E2sfConfig e2sf{};
  core::DsfaConfig dsfa{};
  double frame_rate_hz = 30.0;  ///< grayscale (APS) frame clock
  /// Real-time pacing: 0 = open loop (push as fast as produced —
  /// saturation benchmarking); otherwise the stream is replayed at
  /// `pace_speedup` x real time (1 = sensor-faithful arrival times).
  double pace_speedup = 0.0;
  /// Validate every dispatched frame (frame_fault_of) and quarantine
  /// malformed ones. Costs one pass over the frame's entries.
  bool validate_frames = true;
};

/// Structural validity check for one frame against the stream geometry:
/// kNone when well-formed, otherwise the first defect found (geometry
/// mismatch, out-of-range coordinate, non-finite value, t_end <
/// t_start). This is the ingress admission gate; downstream kernels
/// index COO coordinates unchecked and rely on it.
[[nodiscard]] FrameFault frame_fault_of(const sparse::SparseFrame& frame,
                                        int height, int width) noexcept;

/// The runtime's view of one stream producer: run() on a dedicated
/// thread until the stream ends, per-stream accounting afterwards.
/// Implemented by StreamIngress (in-process EventStream walk) and
/// WireStreamIngress (network receive path) — ServingRuntime drives
/// both through this interface, so the queue/worker/report machinery
/// is written once.
class IngressBase {
 public:
  virtual ~IngressBase() = default;

  /// Runs the stream to completion (single-shot, dedicated thread).
  virtual void run() = 0;

  /// Marks this stream failed; the runtime calls it when the ingress
  /// thread dies on an exception.
  virtual void mark_failed(std::string reason) = 0;

  /// Per-stream accounting, valid after run() returns.
  [[nodiscard]] virtual const StreamServeStats& stats() const noexcept = 0;

  /// Frames this ingress quarantined, in seq order; valid after run().
  [[nodiscard]] virtual const std::vector<QuarantinedFrame>& quarantined()
      const noexcept = 0;
};

class StreamIngress final : public IngressBase {
 public:
  /// The stream and queue must outlive the ingress. `stream_id` tags
  /// every enqueued frame.
  StreamIngress(int stream_id, const events::EventStream& stream,
                IngressConfig config, FrameQueue& queue);

  /// Attaches a fault injector (nullptr detaches); must be called
  /// before run(). The injector must outlive the ingress.
  void attach_faults(FaultInjector* injector) noexcept {
    faults_ = injector;
  }

  /// Attaches the crash-consistent fault journal (nullptr detaches);
  /// fired faults and quarantines at this ingress are appended as
  /// (site, fault, action) entries. Must outlive the ingress.
  void attach_journal(FaultJournal* journal) noexcept {
    journal_ = journal;
  }

  /// Attaches this stream's labeled enqueue counter (nullptr detaches);
  /// bumped once per dispatched frame, mirroring stats().enqueued. The
  /// runtime resolves the series up front, so the hot path is one null
  /// check plus one atomic add. Must outlive the ingress.
  void attach_dispatch_counter(obs::Counter* counter) noexcept {
    dispatch_counter_ = counter;
  }

  /// Runs the stream to completion (call on a dedicated thread): E2SF ->
  /// DSFA -> queue. Returns when every dispatched frame was enqueued (or
  /// the queue closed early, or an injected disconnect fired).
  /// Single-shot.
  void run() override;

  /// Marks this stream failed (stats().ingress_failed + reason). The
  /// runtime calls this when the ingress thread dies on an exception;
  /// injected disconnects call it from inside run().
  void mark_failed(std::string reason) override;

  /// Per-stream accounting, valid after run() returns.
  [[nodiscard]] const StreamServeStats& stats() const noexcept override {
    return stats_;
  }
  /// Frames this ingress quarantined (validation failures), in seq
  /// order; valid after run() returns.
  [[nodiscard]] const std::vector<QuarantinedFrame>& quarantined()
      const noexcept override {
    return quarantined_;
  }

  /// The merged frames this stream dispatches, in dispatch order — the
  /// same E2SF+DSFA pipeline run offline (no queue, no threads, no
  /// faults). Serial baselines and parity checks consume this; element
  /// i corresponds to ReadyFrame seq i.
  [[nodiscard]] static std::vector<sparse::SparseFrame> collect_frames(
      const events::EventStream& stream, const IngressConfig& config);

 private:
  int stream_id_;
  const events::EventStream& stream_;
  IngressConfig config_;
  FrameQueue& queue_;
  FaultInjector* faults_ = nullptr;
  FaultJournal* journal_ = nullptr;
  obs::Counter* dispatch_counter_ = nullptr;
  StreamServeStats stats_;
  std::vector<QuarantinedFrame> quarantined_;
};

}  // namespace evedge::serve
