// Table 2 reproduction: task accuracy of the baseline vs Ev-Edge (DSFA
// merging + NMP mixed precision) for every network. Pretrained weights
// are unavailable, so absolute values are anchored to the paper's
// baseline column and shifted by the degradation *measured* on the
// functional networks (DESIGN.md section 2): the merged + quantized
// pipeline output is compared against the FP32 unmerged reference on the
// same synthetic event stream.

#include <cstdio>

#include "bench_common.hpp"
#include "core/e2e_accuracy.hpp"
#include "core/runtime.hpp"
#include "events/density_profile.hpp"

namespace eb = evedge::bench;
namespace ec = evedge::core;
namespace ee = evedge::events;
namespace en = evedge::nn;
namespace eq = evedge::quant;

int main() {
  eb::print_header(
      "Table 2: accuracy for single-task execution (baseline vs Ev-Edge)");
  // "Ev-Edge" models quantization with fake-quant; "Ev-Edge(i8)" runs the
  // same per-layer precisions through the real calibrated INT8 engine —
  // the cross-check that the modelled substrate and the executing one
  // agree.
  std::printf("%-20s %-12s %-10s %-10s %-12s %-12s %s\n", "network",
              "metric", "baseline", "Ev-Edge", "Ev-Edge(i8)", "paper",
              "direction");
  eb::print_rule(96);

  // Paper's Ev-Edge column for the reference line.
  const auto paper_evedge = [](const std::string& name) {
    if (name == "SpikeFlowNet") return 0.96;
    if (name == "Fusion-FlowNet") return 0.79;
    if (name == "Adaptive-SpikeNet") return 1.36;
    if (name == "HALSIE") return 64.18;
    if (name == "HidalgoDepth") return 0.63;
    return 0.82;  // DOTIE
  };

  for (const auto id : en::table1_networks()) {
    // NMP-searched per-layer precisions (accuracy-scale twin).
    ec::EvEdgeOptions options;
    options.nmp.population = 20;
    options.nmp.generations = 20;
    options.nmp.accuracy_threshold = 0.02;
    options.nmp.seed = 3;
    const ec::EvEdgeRuntime runtime(id, evedge::hw::xavier_agx(), options);

    eq::PrecisionMap precisions;
    const auto& mapping = runtime.mapping();
    for (std::size_t n = 0; n < mapping.nodes.size(); ++n) {
      if (mapping.nodes[n].pe >= 0) {
        precisions[static_cast<int>(n)] = mapping.nodes[n].precision;
      }
    }

    // Functional end-to-end accuracy at the reduced scale on a matched
    // synthetic stream.
    const auto spec = en::build_network(id, en::ZooConfig::test_scale());
    const auto stream = eb::make_matched_stream(
        spec, ee::DensityProfile::indoor_flying1(), 800'000, 33);

    ec::E2eAccuracyConfig cfg;
    cfg.apply_dsfa = spec.task != en::TaskKind::kSegmentation;
    cfg.dsfa.merge_bucket_capacity = 2;
    // Flow tasks merge with cAverage (per-timestep scale preserved);
    // cAdd's temporal coarsening is too destructive for fully-spiking
    // flow networks (paper: cMode is chosen per task).
    if (spec.task == en::TaskKind::kOpticalFlow ||
        spec.task == en::TaskKind::kDepth) {
      cfg.dsfa.merge_mode = evedge::sparse::MergeMode::kAverage;
    }
    cfg.precisions = precisions;
    cfg.max_intervals = 4;
    cfg.int8_engine_cross_check = true;
    // Route the FP32 reference and the int8 cross-check through the
    // density-adaptive engine (metric-neutral; exercises the planner on
    // the Table-2 substrate).
    cfg.use_execution_planner = true;
    const auto result = ec::evaluate_e2e_accuracy(spec, stream, cfg);

    std::printf("%-20s %-12s %-10.2f %-10.2f %-12.2f %-12.2f %s\n",
                spec.name.c_str(), result.metric_name,
                result.baseline_metric, result.evedge_metric,
                result.evedge_metric_int8, paper_evedge(spec.name),
                result.lower_is_better ? "lower=better" : "higher=better");
  }
  eb::print_rule(96);
  std::printf(
      "baseline column is the paper's anchor; the Ev-Edge column shifts "
      "it by the degradation measured on the functional pipeline "
      "(fake-quant); Ev-Edge(i8) re-measures it with the real INT8 "
      "engine executing the same per-layer precisions.\n");
  return 0;
}
