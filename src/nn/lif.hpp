#pragma once

// Leaky Integrate-and-Fire neuron dynamics for the SNN layers of the zoo.
//
// Standard LIF update per timestep (soft reset):
//   U[t] = leak * U[t-1] + I[t]
//   S[t] = (U[t] >= v_th) ? 1 : 0
//   U[t] = U[t] - S[t] * v_th
//
// Adaptive-SpikeNet [1] learns per-channel neuronal dynamics; we model
// that as per-channel leak and threshold vectors (fixed-seed initialized
// in the zoo, standing in for learned values).

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/tensor.hpp"

namespace evedge::nn {

using sparse::DenseTensor;
using sparse::TensorShape;

/// Spike coordinates emitted by the sparse LIF stepping paths, indexed
/// [sample][channel]; every entry's value is exactly 1.0f, so adopting
/// them as CooChannels densifies to exactly the spike tensor step()
/// would have returned.
using SpikeCoo = std::vector<std::vector<std::vector<sparse::CooEntry>>>;

/// Shared (layer-wide) LIF parameters.
struct LifParams {
  float leak = 0.85f;        ///< membrane decay per timestep, in (0, 1]
  float v_threshold = 1.0f;  ///< firing threshold, > 0
  bool soft_reset = true;    ///< subtract threshold (true) or reset to 0
};

void validate_lif(const LifParams& params);

/// Stateful LIF population over a fixed activation shape.
class LifState {
 public:
  LifState() = default;
  /// Per-channel leak/threshold vectors must be empty (use shared params)
  /// or have exactly `shape.c` entries (adaptive variant).
  LifState(TensorShape shape, LifParams params,
           std::vector<float> channel_leak = {},
           std::vector<float> channel_threshold = {});

  /// Advances one timestep with synaptic input `current`; returns the
  /// binary spike tensor (values 0 or 1).
  [[nodiscard]] DenseTensor step(const DenseTensor& current);

  /// Sparse-output twin of step(): advances one full timestep and emits
  /// spike coordinates into `spikes_out` (cleared and resized to
  /// [n][c]) instead of materializing the dense spike tensor — the
  /// chain-head sparsify scan the engine otherwise pays per spiking
  /// node. Membrane updates, spike decisions and firing counters are
  /// bitwise/exactly identical to step()'s.
  void step_sparse(const DenseTensor& current, SpikeCoo& spikes_out);

  // --- Tiled stepping (engine chain walker) --------------------------
  // One timestep is split into row bands: begin_step() once, then
  // step_rows() for every band (bands' OWNED rows must partition
  // [0, shape().h) exactly once per timestep; halo rows may be
  // recomputed read-only by several bands), then end_step() once.
  // U[t-1] stays intact in membrane_ for the whole timestep (halo rows
  // of later tiles re-read it), owned rows write U[t] into the back
  // buffer, and end_step() swaps — so per-element arithmetic is
  // identical to step() no matter how the plane is banded.

  /// Prepares the back membrane buffer for a banded timestep.
  void begin_step();

  /// Processes window rows [win_row0, win_row0 + current.shape().h) of
  /// the plane from the dense current window (`current` row 0 = global
  /// row win_row0). Spike entries for ALL window rows are appended to
  /// `spikes_out[n][c]` (resized if needed, never cleared); membrane
  /// commits and firing counters apply to rows [own_row0, own_row1)
  /// only.
  void step_rows(const DenseTensor& current, int win_row0, int own_row0,
                 int own_row1, SpikeCoo& spikes_out);

  /// Publishes the banded timestep (buffer swap, step counter).
  void end_step();

  /// Zeroes the membrane potential (new input sequence).
  void reset() noexcept;

  [[nodiscard]] const DenseTensor& membrane() const noexcept {
    return membrane_;
  }
  [[nodiscard]] const TensorShape& shape() const noexcept { return shape_; }

  /// Spikes emitted / sites over all steps since the last reset().
  [[nodiscard]] double mean_firing_rate() const noexcept;

 private:
  TensorShape shape_{};
  LifParams params_{};
  std::vector<float> channel_leak_;
  std::vector<float> channel_threshold_;
  DenseTensor membrane_;
  DenseTensor membrane_next_;  ///< back buffer for banded timesteps
  std::uint64_t steps_ = 0;
  std::uint64_t spikes_ = 0;
};

}  // namespace evedge::nn
