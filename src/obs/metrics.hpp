#pragma once

// Live metrics: atomic counters, gauges and fixed-bucket log-scale
// histograms behind a named registry, with Prometheus text-exposition
// and JSON snapshots — the mid-run view of the quantities ServeReport
// only hands back after a run. Updates are lock-free (one atomic RMW
// per observation); registration and snapshotting take the registry
// mutex, so callers cache the returned references and keep the hot path
// name-lookup-free.
//
// Labeled families add the per-stream dimension: a LabeledCounter/
// LabeledGauge/LabeledHistogram is one registry entry fanning out into
// series keyed by LabelSet (sorted key/value pairs, interned to a
// stable id). Series creation is a cold path (family mutex); the
// returned references are stable, so serving code resolves its
// per-stream series up front and the hot path stays one atomic RMW.
// Cardinality is hard-capped per family: past max_series distinct
// label sets, at() routes to the {overflow="true"} series and bumps
// the family's dropped-series counter — sums over all series
// (overflow included) stay complete, and memory never grows unbounded.
//
// Histogram buckets are logarithmic with a fixed count: bucket i spans
// (min * growth^(i-1), min * growth^i], bucket 0 additionally absorbs
// everything below min and the last bucket everything above the top
// bound. percentile() answers with the upper bound of the bucket
// holding the requested rank, so it agrees with an exact reservoir
// percentile to within one bucket width (test_obs pins that contract
// against serve's LatencyReservoir).
//
// Prometheus exposition follows the text format: counters as
// `name_total`, gauges verbatim, histograms as cumulative `name_bucket`
// series with `le` labels plus `_sum`/`_count`; label values and HELP
// text are escaped per the spec (backslash, quote, newline).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace evedge::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  struct Options {
    double min = 100.0;    ///< upper bound of bucket 0
    double growth = 2.0;   ///< per-bucket bound multiplier (> 1)
    int buckets = 24;      ///< fixed bucket count (>= 2)
  };

  explicit Histogram(Options options);

  /// Lock-free: one fetch_add on the bucket, plus count/sum updates.
  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int bucket_count() const noexcept {
    return static_cast<int>(buckets_.size());
  }
  /// Upper bound of bucket i (+inf for the last).
  [[nodiscard]] double bucket_upper(int i) const noexcept;
  [[nodiscard]] std::uint64_t bucket_value(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// Index of the bucket a value lands in — exposed so tests (and the
  /// lineage breakdown check) can reason in bucket units.
  [[nodiscard]] int bucket_index(double v) const noexcept;

  /// Upper bound of the bucket containing the q-th rank (nearest-rank
  /// over bucket counts); 0 when empty. Within one bucket width of an
  /// exact percentile by construction.
  [[nodiscard]] double percentile(double q) const noexcept;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  std::deque<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A sorted, key-unique set of label (name, value) pairs — the identity
/// of one series inside a labeled family. Construction sorts by key
/// (first value wins on a duplicated key), so equal sets compare equal
/// regardless of construction order. Label names must be valid
/// Prometheus identifiers; values are arbitrary and escaped at
/// exposition.
class LabelSet {
 public:
  using Pair = std::pair<std::string, std::string>;

  LabelSet() = default;
  LabelSet(std::initializer_list<Pair> pairs);
  explicit LabelSet(std::vector<Pair> pairs);

  [[nodiscard]] const std::vector<Pair>& pairs() const noexcept {
    return pairs_;
  }
  [[nodiscard]] bool empty() const noexcept { return pairs_.empty(); }

  /// Canonical `{k1="v1",k2="v2"}` rendering with text-format escaping
  /// of values; "" for the empty set. `extra` pairs are appended inside
  /// the braces (the histogram `le` label).
  [[nodiscard]] std::string prometheus(
      const std::vector<Pair>& extra = {}) const;

  /// Canonical flat encoding (unprintable separators) — the interning
  /// and family-lookup key.
  [[nodiscard]] std::string key() const;

  [[nodiscard]] bool operator==(const LabelSet& other) const noexcept {
    return pairs_ == other.pairs_;
  }

 private:
  std::vector<Pair> pairs_;
};

/// Process-wide label-set interner: equal sets map to the same dense
/// stable id, first touch assigns the next. Cold path (mutex) — each
/// family stamps its series with the id once at creation.
[[nodiscard]] std::uint32_t intern_labels(const LabelSet& labels);

/// Prometheus text-format escaping for label values: backslash, double
/// quote, and newline become \\, \" and \n.
[[nodiscard]] std::string prometheus_escape_label(const std::string& v);

/// Prometheus text-format escaping for HELP text: backslash and newline
/// become \\ and \n (quotes are legal in help).
[[nodiscard]] std::string prometheus_escape_help(const std::string& v);

namespace detail {

/// One (name, labels)-keyed family: the shared machinery behind
/// LabeledCounter/LabeledGauge/LabeledHistogram. Series are created on
/// first at() (family mutex — callers cache the reference) and are
/// never removed, so returned references stay valid for the family's
/// lifetime. Past `max_series` distinct label sets, at() returns the
/// {overflow="true"} series (which does not count against the cap) and
/// dropped() counts each routed request, so per-family totals summed
/// over every exposed series — overflow included — equal the updates
/// actually applied.
template <class Metric>
class LabeledFamily {
 public:
  struct Series {
    LabelSet labels;
    std::uint32_t label_id = 0;
    std::unique_ptr<Metric> metric;
  };

  LabeledFamily(const LabeledFamily&) = delete;
  LabeledFamily& operator=(const LabeledFamily&) = delete;

  /// The series for `labels`, created on first touch. Thread-safe;
  /// cache the reference off the hot path.
  Metric& at(const LabelSet& labels) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::string k = labels.key();
    if (auto it = index_.find(k); it != index_.end()) {
      return *series_[it->second].metric;
    }
    if (live_ < max_series_) {
      ++live_;
      return emplace_locked(labels, k);
    }
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return overflow_locked();
  }

  /// Live series created within the cap (the overflow series, if
  /// touched, is extra).
  [[nodiscard]] std::size_t series_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return live_;
  }
  /// Label-set requests routed to the overflow series because the cap
  /// was reached.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t max_series() const noexcept {
    return max_series_;
  }

  /// Stable pointers to every series in first-touch order (overflow
  /// included once touched). Series are never removed, so the pointers
  /// outlive the call; concurrently created series may not appear.
  [[nodiscard]] std::vector<const Series*> series() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const Series*> out;
    out.reserve(series_.size());
    for (const Series& s : series_) out.push_back(&s);
    return out;
  }

 protected:
  LabeledFamily(std::size_t max_series,
                std::function<std::unique_ptr<Metric>()> make)
      : max_series_(max_series == 0 ? 1 : max_series),
        make_(std::move(make)) {}
  ~LabeledFamily() = default;

 private:
  Metric& emplace_locked(const LabelSet& labels, const std::string& key) {
    index_.emplace(key, series_.size());
    series_.push_back(Series{labels, intern_labels(labels), make_()});
    return *series_.back().metric;
  }

  Metric& overflow_locked() {
    if (overflow_ == nullptr) {
      const LabelSet labels{{"overflow", "true"}};
      overflow_ = &emplace_locked(labels, labels.key());
    }
    return *overflow_;
  }

  std::size_t max_series_;
  std::function<std::unique_ptr<Metric>()> make_;
  mutable std::mutex mutex_;
  std::deque<Series> series_;
  std::unordered_map<std::string, std::size_t> index_;
  std::size_t live_ = 0;
  Metric* overflow_ = nullptr;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace detail

class LabeledCounter final : public detail::LabeledFamily<Counter> {
 public:
  explicit LabeledCounter(std::size_t max_series)
      : LabeledFamily(max_series,
                      [] { return std::make_unique<Counter>(); }) {}
};

class LabeledGauge final : public detail::LabeledFamily<Gauge> {
 public:
  explicit LabeledGauge(std::size_t max_series)
      : LabeledFamily(max_series, [] { return std::make_unique<Gauge>(); }) {}
};

class LabeledHistogram final : public detail::LabeledFamily<Histogram> {
 public:
  LabeledHistogram(Histogram::Options options, std::size_t max_series)
      : LabeledFamily(max_series,
                      [options] { return std::make_unique<Histogram>(options); }),
        options_(options) {}

  [[nodiscard]] const Histogram::Options& options() const noexcept {
    return options_;
  }

 private:
  Histogram::Options options_;
};

/// Named metric registry. References returned by counter()/gauge()/
/// histogram() and the labeled_* families are stable for the registry's
/// lifetime (entries are never removed); re-registering a name returns
/// the existing metric. Registering a name under a different kind (or
/// labeled vs plain) throws.
class MetricsRegistry {
 public:
  /// Cardinality cap a labeled family gets when none is passed.
  static constexpr std::size_t kDefaultMaxSeries = 256;

  /// The process-wide registry serving instrumentation publishes to.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, Histogram::Options options,
                       const std::string& help = "");

  LabeledCounter& labeled_counter(const std::string& name,
                                  const std::string& help = "",
                                  std::size_t max_series = kDefaultMaxSeries);
  LabeledGauge& labeled_gauge(const std::string& name,
                              const std::string& help = "",
                              std::size_t max_series = kDefaultMaxSeries);
  LabeledHistogram& labeled_histogram(
      const std::string& name, Histogram::Options options,
      const std::string& help = "",
      std::size_t max_series = kDefaultMaxSeries);

  /// Prometheus text exposition (HELP/TYPE + samples; labeled families
  /// fan out into one sample per series, plus a `<name>_dropped_series`
  /// counter once a family has overflowed its cap).
  [[nodiscard]] std::string prometheus_text() const;
  /// The same snapshot as a JSON object keyed by metric name; labeled
  /// families render as {"series": [...], "dropped_series": N}.
  [[nodiscard]] std::string json_text() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    enum class Kind : std::uint8_t {
      kCounter,
      kGauge,
      kHistogram,
      kLabeledCounter,
      kLabeledGauge,
      kLabeledHistogram
    } kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<LabeledCounter> labeled_counter;
    std::unique_ptr<LabeledGauge> labeled_gauge;
    std::unique_ptr<LabeledHistogram> labeled_histogram;
  };

  [[nodiscard]] Entry* find(const std::string& name);
  Entry& emplace(const std::string& name, const std::string& help,
                 Entry::Kind kind);

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
};

/// Periodic snapshot thread: every `interval_ms`, runs the (optional)
/// sample hook — the place to refresh gauges from live state — then
/// writes the registry's Prometheus text (and, when a JSON path is
/// given, the JSON snapshot) via write-to-temp + rename, so a scraper
/// never reads a torn file. start()/stop() bracket the thread; the
/// destructor stops it.
class Snapshotter {
 public:
  Snapshotter(MetricsRegistry& registry, double interval_ms,
              std::string prometheus_path, std::string json_path = {});
  ~Snapshotter();
  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  void set_sample_hook(std::function<void()> hook) {
    sample_hook_ = std::move(hook);
  }
  void start();
  void stop();
  [[nodiscard]] std::size_t snapshots_written() const noexcept {
    return snapshots_.load(std::memory_order_relaxed);
  }
  /// Takes one snapshot immediately (also called per tick).
  void snapshot_now();

 private:
  MetricsRegistry& registry_;
  double interval_ms_;
  std::string prometheus_path_;
  std::string json_path_;
  std::function<void()> sample_hook_;
  std::atomic<std::size_t> snapshots_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace evedge::obs
