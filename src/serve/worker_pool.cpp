#include "serve/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/batch_executor.hpp"
#include "obs/trace.hpp"

namespace evedge::serve {

using sparse::DenseTensor;
using sparse::TensorShape;

namespace {

/// Batch-1 probe copies of sample 0 (the planner calibrates on batch-1
/// inputs; DSFA merges within a density band, so one sample's densities
/// represent the batch — the BatchExecutor warmup convention).
[[nodiscard]] std::vector<DenseTensor> probe_of_sample0(
    const std::vector<DenseTensor>& steps) {
  std::vector<DenseTensor> probe(steps.size());
  for (std::size_t t = 0; t < steps.size(); ++t) {
    sparse::copy_sample(steps[t], 0, probe[t]);
  }
  return probe;
}

}  // namespace

ServeWorker::ServeWorker(int worker_id,
                         const nn::FunctionalNetwork& prototype,
                         WorkerConfig config)
    : config_(std::move(config)),
      prototype_(&prototype),
      net_(prototype.clone()) {
  if (config_.recalibration_band < 1.0) {
    throw std::invalid_argument(
        "ServeWorker: recalibration band must be >= 1");
  }
  if (config_.max_retries < 0) {
    throw std::invalid_argument("ServeWorker: max_retries must be >= 0");
  }
  const nn::NetworkSpec& spec = net_.spec();
  const auto input_ids = spec.graph.input_ids();
  event_shape_ = spec.graph.node(input_ids.front()).spec.out_shape;
  needs_image_ = input_ids.size() > 1;
  if (needs_image_) image_ = core::make_reference_image(spec);
  stats_.worker_id = worker_id;
  if (config_.profile_layers || config_.trace_nodes) {
    profiler_ =
        std::make_unique<obs::LayerProfiler>(spec, config_.trace_nodes);
    net_.set_exec_observer(profiler_.get());
  }
}

void ServeWorker::calibrate_from(const std::vector<DenseTensor>& steps) {
  const std::vector<DenseTensor> probe = probe_of_sample0(steps);
  // Calibration runs dense warmup probes through a hook; uninstall the
  // live plan first so the swap is atomic from the engine's view.
  net_.set_execution_plan(nullptr);
  plan_ = nn::ExecutionPlanner::calibrate(
      net_, probe, needs_image_ ? &image_ : nullptr, config_.planner);
  net_.set_execution_plan(&plan_);
  plan_ready_ = true;
  stats_.plan_sparse_nodes = plan_.sparse_node_count();
  stats_.plan_probe_density = plan_.probe_input_density;
}

void ServeWorker::apply_precision_rung(bool want_int8) {
  if (want_int8 && !quant_installed_) {
    if (!quant_ready_) {
      // Lazy rung-3 calibration: the current batch's sample 0 is the
      // calibration set — the same "the live traffic is the probe"
      // convention the planner warmup uses.
      quant::ValidationSample sample;
      sample.event_steps = probe_of_sample0(steps_);
      if (needs_image_) sample.image = image_;
      const nn::ExecutionPlan* prev = net_.set_execution_plan(nullptr);
      const quant::CalibrationTable table = quant::calibrate_activations(
          net_, std::span<const quant::ValidationSample>(&sample, 1));
      quant_plan_ = quant::build_quant_plan(
          net_, quant::uniform_assignment(net_.spec(),
                                          quant::Precision::kInt8),
          table);
      net_.set_execution_plan(prev);
      quant_ready_ = true;
    }
    net_.set_quant_plan(&quant_plan_);
    quant_installed_ = true;
  } else if (!want_int8 && quant_installed_) {
    // Stepping off rung 3 restores FP32 exactly — the cached plan stays
    // for the next escalation.
    net_.set_quant_plan(nullptr);
    quant_installed_ = false;
  }
}

void ServeWorker::process_batch(const std::vector<ReadyFrame>& batch,
                                const ResultSink& sink) {
  if (batch.empty()) {
    throw std::invalid_argument("ServeWorker: empty batch");
  }
  // Lineage anchor: per-frame inference spans start here, before batch
  // prep (tensor adaptation, planner recalibration, precision rung) —
  // all of it is work the frame waits on.
  const std::uint64_t entry_ns =
      obs::Tracer::enabled() ? obs::now_ns() : 0;
  emit_progress_ = 0;
  const nn::NetworkSpec& spec = net_.spec();
  frames_.clear();
  frames_.reserve(batch.size());
  for (const ReadyFrame& ready : batch) frames_.push_back(ready.frame);
  core::frames_to_event_steps(frames_, event_shape_, spec.timesteps, steps_);

  if (config_.use_planner) {
    if (!plan_ready_) {
      calibrate_from(steps_);
      ++stats_.calibrations;
    } else if (config_.recalibrate_on_drift) {
      // The live density signal: nonzero fraction of the adapted event
      // tensor, the same post-E2SF quantity calibrate() recorded as
      // probe_input_density (DSFA's recent_density() EMA rides along in
      // ReadyFrame::ingress_density for sensor-scale telemetry).
      const double live_density = steps_.front().density();
      if (!plan_.density_in_band(live_density,
                                 config_.recalibration_band)) {
        calibrate_from(steps_);
        ++stats_.recalibrations;
      }
    }
  }
  apply_precision_rung(want_int8_);

  const auto t0 = std::chrono::steady_clock::now();
  const DenseTensor out =
      net_.run_batched(steps_, needs_image_ ? &image_ : nullptr);
  const auto t1 = std::chrono::steady_clock::now();
  obs::Tracer::span("worker", "inference", obs::to_trace_ns(t0),
                    obs::to_trace_ns(t1), "worker", stats_.worker_id,
                    "batch", static_cast<std::int64_t>(batch.size()));
  stats_.busy_ms +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  ++stats_.batches;
  stats_.samples += batch.size();
  if (quant_installed_) ++stats_.int8_batches;

  // One "frame.inference" lineage span per lane (batch-entry -> t1,
  // with (stream, seq) args) alongside the batch-level span above: the
  // per-frame view sums with queue.wait/collate.wait to the frame's
  // measured enqueue -> completion latency.
  if (entry_ns != 0) {
    for (const ReadyFrame& ready : batch) {
      obs::Tracer::span("worker", "frame.inference", entry_ns,
                        obs::to_trace_ns(t1), "stream", ready.stream_id,
                        "seq", ready.seq);
    }
  }

  for (std::size_t n = 0; n < batch.size(); ++n) {
    const double latency_us =
        std::chrono::duration<double, std::micro>(
            t1 - batch[n].enqueue_tp).count();
    sink(batch[n], out, static_cast<int>(n), latency_us);
    ++emit_progress_;
  }
}

void ServeWorker::serve(FrameQueue& queue, const ResultSink& sink) {
  BatchCollator collator(config_.collator);
  std::vector<ReadyFrame> batch;
  while (collator.collect(queue, batch)) {
    process_batch(batch, sink);
  }
}

std::size_t ServeWorker::shed_stale(std::vector<ReadyFrame>& batch,
                                    const ServeHooks& hooks) {
  const auto now = std::chrono::steady_clock::now();
  std::size_t keep = 0;
  std::size_t shed = 0;
  for (std::size_t n = 0; n < batch.size(); ++n) {
    const double age_ms = std::chrono::duration<double, std::milli>(
                              now - batch[n].enqueue_tp)
                              .count();
    if (age_ms > hooks.slo.deadline_ms) {
      ++shed;
      obs::Tracer::instant("serve", "frame.shed", "stream",
                           batch[n].stream_id, "seq", batch[n].seq);
      if (hooks.failure) {
        hooks.failure(QuarantinedFrame{batch[n].stream_id, batch[n].seq,
                                       FrameFault::kDeadlineExceeded,
                                       batch[n].attempts});
      }
    } else {
      if (keep != n) batch[keep] = std::move(batch[n]);
      ++keep;
    }
  }
  batch.resize(keep);
  return shed;
}

void ServeWorker::restart() {
  net_ = prototype_->clone();
  // clone() carries no observer — re-attach the profiler so per-layer
  // accounting continues across the restart.
  if (profiler_ != nullptr) net_.set_exec_observer(profiler_.get());
  plan_ready_ = false;
  quant_ready_ = false;
  quant_installed_ = false;
  ++stats_.restarts;
  obs::Tracer::instant("serve", "worker.restart", "worker",
                       stats_.worker_id);
}

void ServeWorker::recover_from_failure(FrameQueue& queue,
                                       std::vector<ReadyFrame>& batch,
                                       const ServeHooks& hooks) {
  // Frames before emit_progress_ already reached the result sink; only
  // the unemitted tail is in flight. Requeue in reverse index order so
  // push_front reconstructs the original order at the queue head.
  for (std::size_t n = batch.size(); n > emit_progress_; --n) {
    ReadyFrame& frame = batch[n - 1];
    ++frame.attempts;
    if (frame.attempts > config_.max_retries) {
      if (hooks.failure) {
        hooks.failure(QuarantinedFrame{frame.stream_id, frame.seq,
                                       FrameFault::kRetriesExhausted,
                                       frame.attempts});
      }
    } else {
      ++stats_.frames_retried;
      obs::Tracer::instant("serve", "frame.retry", "stream",
                           frame.stream_id, "seq", frame.seq);
      queue.requeue(std::move(frame));
    }
  }
  restart();
  ++consecutive_failures_;
  if (config_.retry_backoff_ms > 0.0) {
    const double doublings =
        std::min(static_cast<double>(consecutive_failures_ - 1), 20.0);
    const double backoff_ms =
        std::min(config_.retry_backoff_ms * std::pow(2.0, doublings),
                 config_.retry_backoff_max_ms);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

void ServeWorker::serve(FrameQueue& queue, const ServeHooks& hooks) {
  BatchCollator collator(config_.collator);
  std::vector<ReadyFrame> batch;
  for (;;) {
    const int level =
        hooks.degrade != nullptr ? hooks.degrade->level() : kDegradeNormal;
    // Rung 2: widen the collation window to amortize more kernel work
    // per launch while the queue is backed up.
    const int widen =
        level >= kDegradeWideBatch
            ? config_.collator.max_batch *
                  std::max(1, hooks.slo.batch_widen_factor)
            : 0;
    if (!collator.collect(queue, batch, widen)) break;

    if (hooks.slo.deadline_ms > 0.0) {
      stats_.frames_shed += shed_stale(batch, hooks);
      if (batch.empty()) continue;  // entire batch was stale
    }

    const std::int64_t this_batch = batch_seq_++;
    ++stats_.batch_attempts;
    want_int8_ = level >= kDegradeInt8 && hooks.slo.allow_int8;
    emit_progress_ = 0;
    try {
      if (hooks.faults != nullptr) {
        for (const FaultSpec& spec :
             hooks.faults->at_worker(stats_.worker_id, this_batch)) {
          if (spec.type == FaultType::kLatencySpike) {
            hooks.faults->record(FaultType::kLatencySpike);
            obs::Tracer::instant("fault", "fault.latency_spike", "worker",
                                 stats_.worker_id);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(spec.delay_ms));
          } else if (spec.type == FaultType::kWorkerException) {
            hooks.faults->record(FaultType::kWorkerException);
            obs::Tracer::instant("fault", "fault.worker_exception",
                                 "worker", stats_.worker_id);
            throw FaultInjectionError(
                "injected worker exception (worker " +
                std::to_string(stats_.worker_id) + ", batch " +
                std::to_string(this_batch) + ")");
          }
        }
      }
      process_batch(batch, hooks.result);
      consecutive_failures_ = 0;
    } catch (...) {
      // Anything a batch throws — injected or real — is survivable:
      // the frames go back (or to quarantine), the network is rebuilt
      // from the prototype, and the loop continues.
      ++stats_.failures;
      recover_from_failure(queue, batch, hooks);
    }
  }
}

ServeWorkerPool::ServeWorkerPool(const nn::FunctionalNetwork& prototype,
                                 int n_workers,
                                 const WorkerConfig& config) {
  const int count = std::max(1, n_workers);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<ServeWorker>(i, prototype, config));
  }
}

template <typename ServeFn>
void ServeWorkerPool::run_threads(FrameQueue& queue,
                                  const ServeFn& serve_one) {
  // A throw on a worker thread must not std::terminate the process:
  // the first exception wins, the queue is closed so every sibling
  // drains out, and the error is rethrown on the joining thread
  // (mirroring core::parallel_for's contract). Under supervision only
  // unrecoverable errors reach this layer.
  std::exception_ptr error;
  std::mutex error_mutex;
  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (const std::unique_ptr<ServeWorker>& worker : workers_) {
    threads.emplace_back([&queue, &serve_one, &error, &error_mutex,
                          w = worker.get()] {
      try {
        serve_one(*w);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        queue.close();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

void ServeWorkerPool::run(FrameQueue& queue, const ResultSink& sink) {
  run_threads(queue, [&queue, &sink](ServeWorker& w) {
    w.serve(queue, sink);
  });
}

void ServeWorkerPool::run(FrameQueue& queue, const ServeHooks& hooks) {
  run_threads(queue, [&queue, &hooks](ServeWorker& w) {
    w.serve(queue, hooks);
  });
}

}  // namespace evedge::serve
