#include "nn/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

#include "nn/kernels.hpp"
#include "quant/int8_kernels.hpp"

namespace evedge::nn {

using sparse::DenseTensor;
using sparse::TensorShape;

namespace {

/// He-style init range: sqrt(2 / fan_in), clipped to a sane interval.
[[nodiscard]] float he_range(std::size_t fan_in) {
  const double r = std::sqrt(
      2.0 / static_cast<double>(std::max<std::size_t>(fan_in, 1)));
  return static_cast<float>(std::min(0.6, std::max(0.02, r)));
}

/// Raw steady_clock nanoseconds for ExecObserver stamps (the obs layer
/// rebases them onto its trace epoch).
[[nodiscard]] std::uint64_t exec_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shared validity check for weight-node access (const and non-const).
void require_weight_node(const std::vector<DenseTensor>& weights,
                         int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(weights.size()) ||
      weights[static_cast<std::size_t>(node_id)].size() == 0) {
    throw std::invalid_argument("node " + std::to_string(node_id) +
                                " has no weights");
  }
}

}  // namespace

DenseTensor center_crop(const DenseTensor& t, int h, int w) {
  const TensorShape& s = t.shape();
  if (h > s.h || w > s.w) {
    throw std::invalid_argument("center_crop: target larger than source");
  }
  if (h == s.h && w == s.w) return t;
  const int oy = (s.h - h) / 2;
  const int ox = (s.w - w) / 2;
  DenseTensor out(TensorShape{s.n, s.c, h, w});
  for (int n = 0; n < s.n; ++n) {
    for (int c = 0; c < s.c; ++c) {
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          out.at(n, c, y, x) = t.at(n, c, y + oy, x + ox);
        }
      }
    }
  }
  return out;
}

FunctionalNetwork::FunctionalNetwork(NetworkSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)) {
  spec_.graph.validate();
  const auto n = spec_.graph.size();
  weights_.resize(n);
  biases_.resize(n);
  channel_leak_.resize(n);
  channel_threshold_.resize(n);
  lif_.resize(n);
  is_spiking_.assign(n, false);
  time_invariant_.assign(n, 0);

  std::mt19937_64 rng(seed);
  for (const LayerNode& node : spec_.graph.nodes()) {
    const LayerSpec& ls = node.spec;
    const auto idx = static_cast<std::size_t>(node.id);
    switch (ls.kind) {
      case LayerKind::kConv:
      case LayerKind::kTransposedConv:
      case LayerKind::kSpikingConv:
      case LayerKind::kAdaptiveSpikingConv: {
        weights_[idx] = DenseTensor(TensorShape{ls.conv.out_channels,
                                                ls.conv.in_channels,
                                                ls.conv.kernel,
                                                ls.conv.kernel});
        const auto fan_in = static_cast<std::size_t>(ls.conv.in_channels) *
                            static_cast<std::size_t>(ls.conv.kernel) *
                            static_cast<std::size_t>(ls.conv.kernel);
        weights_[idx].fill_random(rng(), he_range(fan_in));
        biases_[idx].assign(static_cast<std::size_t>(ls.conv.out_channels),
                            0.0f);
        break;
      }
      case LayerKind::kFullyConnected: {
        const auto in_features = ls.input_elements();
        weights_[idx] = DenseTensor(
            TensorShape{ls.fc_out, static_cast<int>(in_features), 1, 1});
        weights_[idx].fill_random(rng(), he_range(in_features));
        biases_[idx].assign(static_cast<std::size_t>(ls.fc_out), 0.0f);
        break;
      }
      default:
        break;
    }
    if (ls.kind == LayerKind::kInput) {
      // The event input changes every timestep; any further inputs (the
      // grayscale image) are constant across the presentation.
      time_invariant_[idx] = node.id != spec_.graph.input_ids().front();
    } else {
      // Stateless nodes fed only by constant inputs compute the same
      // value at every timestep — run_impl caches them after t == 0.
      bool invariant = !node.parents.empty();
      for (const int parent : node.parents) {
        invariant = invariant &&
                    time_invariant_[static_cast<std::size_t>(parent)] != 0;
      }
      time_invariant_[idx] =
          invariant && domain_of(ls.kind) == Domain::kAnn;
    }
    if (ls.kind == LayerKind::kSpikingConv ||
        ls.kind == LayerKind::kAdaptiveSpikingConv) {
      is_spiking_[idx] = true;
      if (ls.kind == LayerKind::kAdaptiveSpikingConv) {
        // Stand-in for learned per-channel dynamics: deterministic
        // per-channel leak/threshold spread around the shared values.
        std::uniform_real_distribution<float> leak_d(0.7f, 0.97f);
        std::uniform_real_distribution<float> vth_d(0.6f * ls.lif.v_threshold,
                                                    1.4f * ls.lif.v_threshold);
        for (int c = 0; c < ls.conv.out_channels; ++c) {
          channel_leak_[idx].push_back(leak_d(rng));
          channel_threshold_[idx].push_back(vth_d(rng));
        }
      }
      lif_[idx] = LifState(ls.out_shape, ls.lif, channel_leak_[idx],
                           channel_threshold_[idx]);
    }
  }
}

FunctionalNetwork FunctionalNetwork::clone() const {
  // Rebuild from the spec (cheapest way to get every derived table
  // right), then overwrite the learned state with the live values so
  // post-construction weight edits travel with the clone.
  FunctionalNetwork copy(spec_, 0);
  copy.weights_ = weights_;
  copy.biases_ = biases_;
  copy.channel_leak_ = channel_leak_;
  copy.channel_threshold_ = channel_threshold_;
  copy.lif_ = lif_;
  return copy;
}

DenseTensor& FunctionalNetwork::weights(int node_id) {
  require_weight_node(weights_, node_id);
  return weights_[static_cast<std::size_t>(node_id)];
}

const DenseTensor& FunctionalNetwork::weights(int node_id) const {
  require_weight_node(weights_, node_id);
  return weights_[static_cast<std::size_t>(node_id)];
}

std::vector<float>& FunctionalNetwork::bias(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(biases_.size())) {
    throw std::invalid_argument("bad node id");
  }
  return biases_[static_cast<std::size_t>(node_id)];
}

const std::vector<float>& FunctionalNetwork::bias(int node_id) const {
  if (node_id < 0 || node_id >= static_cast<int>(biases_.size())) {
    throw std::invalid_argument("bad node id");
  }
  return biases_[static_cast<std::size_t>(node_id)];
}

const quant::QuantPlan* FunctionalNetwork::set_quant_plan(
    const quant::QuantPlan* plan) {
  // Validate the whole plan before mutating any state: a rejected plan
  // must leave the previous execution mode fully intact.
  if (plan != nullptr) {
    for (const quant::NodeQuantPlan& nq : plan->nodes) {
      if (nq.node_id < 0 ||
          nq.node_id >= static_cast<int>(spec_.graph.size()) ||
          !is_weight_layer(spec_.graph.node(nq.node_id).spec.kind)) {
        throw std::invalid_argument("set_quant_plan: node " +
                                    std::to_string(nq.node_id) +
                                    " is not a weight layer of this graph");
      }
    }
  }
  const quant::QuantPlan* previous = quant_plan_;
  quant_plan_ = plan;
  node_quant_.assign(spec_.graph.size(), nullptr);
  if (plan != nullptr) {
    for (const quant::NodeQuantPlan& nq : plan->nodes) {
      node_quant_[static_cast<std::size_t>(nq.node_id)] = &nq;
    }
  }
  return previous;
}

const ExecutionPlan* FunctionalNetwork::set_execution_plan(
    const ExecutionPlan* plan) {
  // Validate the whole plan before mutating any state (atomic install,
  // mirroring set_quant_plan).
  if (plan != nullptr && !plan->route.empty()) {
    if (plan->route.size() != spec_.graph.size()) {
      throw std::invalid_argument(
          "set_execution_plan: route table size mismatch");
    }
    for (std::size_t i = 0; i < plan->route.size(); ++i) {
      const Route r = plan->route[i];
      if (r == Route::kDense) continue;
      const LayerNode& node = spec_.graph.node(static_cast<int>(i));
      const LayerSpec& ls = node.spec;
      if ((ls.kind != LayerKind::kConv && ls.kind != LayerKind::kSpikingConv &&
           ls.kind != LayerKind::kAdaptiveSpikingConv) ||
          node.parents.size() != 1) {
        throw std::invalid_argument("set_execution_plan: node " +
                                    std::to_string(i) +
                                    " cannot take a sparse route");
      }
      // The sparse kernels add bias at active sites only; a non-zero
      // bias would diverge from dense execution at inactive sites.
      for (const float b : biases_[i]) {
        if (b != 0.0f) {
          throw std::invalid_argument(
              "set_execution_plan: sparse route on node " +
              std::to_string(i) + " requires zero bias");
        }
      }
      if (r == Route::kSubmanifold &&
          (ls.conv.stride != 1 || ls.out_shape.h != ls.in_shape.h ||
           ls.out_shape.w != ls.in_shape.w)) {
        throw std::invalid_argument(
            "set_execution_plan: submanifold route on node " +
            std::to_string(i) + " needs stride-1 same-extent geometry");
      }
    }
  }
  // Validate the tile plan against the graph and the route table before
  // any state changes (same atomic-install contract).
  if (plan != nullptr) {
    std::vector<std::uint8_t> in_chain(spec_.graph.size(), 0);
    for (const TileChain& tc : plan->tiles.chains) {
      if (tc.nodes.empty()) {
        throw std::invalid_argument("set_execution_plan: empty tile chain");
      }
      for (std::size_t k = 0; k < tc.nodes.size(); ++k) {
        const int id = tc.nodes[k];
        if (id < 0 || id >= static_cast<int>(spec_.graph.size()) ||
            plan->route_of(id) == Route::kDense) {
          throw std::invalid_argument(
              "set_execution_plan: tile chain node " + std::to_string(id) +
              " is not sparse-routed");
        }
        if (in_chain[static_cast<std::size_t>(id)]++ != 0) {
          throw std::invalid_argument(
              "set_execution_plan: node " + std::to_string(id) +
              " appears in two tile chains");
        }
        const LayerNode& node = spec_.graph.node(id);
        if (k > 0 && (id != tc.nodes[k - 1] + 1 ||
                      node.parents.size() != 1 ||
                      node.parents.front() != tc.nodes[k - 1])) {
          throw std::invalid_argument(
              "set_execution_plan: tile chain is not a consecutive "
              "parent-linked run at node " +
              std::to_string(id));
        }
      }
      const int exit_h =
          spec_.graph.node(tc.nodes.back()).spec.out_shape.h;
      if (tc.tile_rows < 1 || tc.tile_rows > exit_h ||
          tc.tiles != (exit_h + tc.tile_rows - 1) / tc.tile_rows) {
        throw std::invalid_argument(
            "set_execution_plan: inconsistent tile geometry on chain at "
            "node " +
            std::to_string(tc.nodes.front()));
      }
    }
  }
  const ExecutionPlan* previous = exec_plan_;
  exec_plan_ = plan;
  node_route_.assign(spec_.graph.size(), Route::kDense);
  if (plan != nullptr) {
    for (std::size_t i = 0;
         i < std::min(plan->route.size(), node_route_.size()); ++i) {
      node_route_[i] = plan->route[i];
    }
  }
  // Compile the tile chains: resolve every layer's per-tile OWNED band
  // (exit layer: tile_rows bands; interior layers: proportional bands —
  // any exact partition preserves bitwise parity) and its WINDOW, grown
  // backward so each layer's window covers the input halo of the next
  // layer's window. Chains with tiles == 1 still compile (the walker
  // skips them), keeping the install path uniform.
  tile_chains_.clear();
  chain_of_node_.assign(spec_.graph.size(), -1);
  if (plan != nullptr) {
    for (const TileChain& tc : plan->tiles.chains) {
      ChainExec chain;
      chain.nodes = tc.nodes;
      chain.tiles = tc.tiles;
      const std::size_t depth = tc.nodes.size();
      chain.layers.resize(depth);
      const int exit_h =
          spec_.graph.node(tc.nodes.back()).spec.out_shape.h;
      for (int t = 0; t < tc.tiles; ++t) {
        // Exit layer: window == owned band.
        {
          ChainLayerWindows& lw = chain.layers[depth - 1];
          const int o0 = t * tc.tile_rows;
          const int o1 = std::min(exit_h, o0 + tc.tile_rows);
          lw.own0.push_back(o0);
          lw.own1.push_back(o1);
          lw.win0.push_back(o0);
          lw.win1.push_back(o1);
        }
        for (std::size_t j = depth - 1; j-- > 0;) {
          const LayerSpec& next_ls =
              spec_.graph.node(tc.nodes[j + 1]).spec;
          const ChainLayerWindows& next = chain.layers[j + 1];
          const int h =
              spec_.graph.node(tc.nodes[j]).spec.out_shape.h;
          const int o0 = static_cast<int>(
              static_cast<std::int64_t>(h) * t / tc.tiles);
          const int o1 = static_cast<int>(
              static_cast<std::int64_t>(h) * (t + 1) / tc.tiles);
          const int in0 = std::clamp(
              next.win0.back() * next_ls.conv.stride - next_ls.conv.padding,
              0, h);
          const int in1 = std::clamp(
              (next.win1.back() - 1) * next_ls.conv.stride -
                  next_ls.conv.padding + next_ls.conv.kernel,
              0, h);
          ChainLayerWindows& lw = chain.layers[j];
          lw.own0.push_back(o0);
          lw.own1.push_back(o1);
          lw.win0.push_back(std::min(o0, in0));
          lw.win1.push_back(std::max(o1, in1));
        }
      }
      for (const int id : chain.nodes) {
        chain_of_node_[static_cast<std::size_t>(id)] =
            static_cast<int>(tile_chains_.size());
      }
      tile_chains_.push_back(std::move(chain));
    }
  }
  return previous;
}

Route FunctionalNetwork::effective_route(std::size_t idx) const noexcept {
  // Hooks observe (and may mutate) dense activations of every node, so
  // any installed hook forces dense execution for the whole run.
  if (exec_plan_ == nullptr || activation_hook_) return Route::kDense;
  const Route r =
      idx < node_route_.size() ? node_route_[idx] : Route::kDense;
  if (r == Route::kDense) return r;
  // Simulate-mode quant nodes run the float fake-quant oracle, which is
  // defined over dense tensors.
  const quant::NodeQuantPlan* nq = node_quant(idx);
  if (nq != nullptr && quant_plan_->simulate) return Route::kDense;
  return r;
}

void FunctionalNetwork::prepare_packed_weights() {
  if (exec_plan_ == nullptr || activation_hook_) return;
  for (std::size_t i = 0; i < node_route_.size(); ++i) {
    if (effective_route(i) == Route::kDense) continue;
    // Quantized nodes reduce against the plan's own packed int8 rows;
    // narrow FP32 spiking kCsr nodes scatter against the raw weight
    // layout.
    if (node_quant(i) != nullptr) continue;
    if (is_spiking_[i] && node_route_[i] == Route::kCsr &&
        scatter_current_route(
            spec_.graph.node(static_cast<int>(i)).spec.conv)) {
      continue;
    }
    sparse::pack_conv_weights(weights_[i],
                              workspace_.packed_slot(static_cast<int>(i)));
  }
}

void FunctionalNetwork::densify_samples(
    const std::vector<sparse::SparseSample>& samples,
    sparse::DenseTensor& out) {
  const sparse::SparseSample& first = samples.front();
  out.reset(TensorShape{static_cast<int>(samples.size()),
                        static_cast<int>(first.size()), first[0].height(),
                        first[0].width()});
  for (std::size_t n = 0; n < samples.size(); ++n) {
    sparse::channels_into_slice(samples[n], out, static_cast<int>(n));
  }
}

namespace {

/// Span of the entries with row in [row0, row1) inside a row-major
/// sorted entry list (the owned-band commit of the tiled chain walker).
[[nodiscard]] std::span<const sparse::CooEntry> owned_entries(
    const std::vector<sparse::CooEntry>& entries, int row0, int row1) {
  const auto row_less = [](const sparse::CooEntry& e, int r) {
    return e.row < r;
  };
  const auto lo =
      std::lower_bound(entries.begin(), entries.end(), row0, row_less);
  const auto hi = std::lower_bound(lo, entries.end(), row1, row_less);
  return {entries.data() + (lo - entries.begin()),
          static_cast<std::size_t>(hi - lo)};
}

}  // namespace

bool FunctionalNetwork::chain_routes_active(
    const ChainExec& chain) const noexcept {
  if (chain.tiles <= 1) return false;
  for (const int id : chain.nodes) {
    if (effective_route(static_cast<std::size_t>(id)) == Route::kDense) {
      return false;
    }
  }
  return true;
}

void FunctionalNetwork::run_tiled_chain(ChainExec& chain, int timestep) {
  const std::size_t depth = chain.nodes.size();
  sparse::TileScratch& ts = workspace_.tile_scratch(0);
  const int head_parent =
      spec_.graph.node(chain.nodes.front()).parents.front();
  const std::vector<sparse::SparseSample>& chain_input =
      sparse_value(head_parent);
  const std::size_t batch = chain_input.size();

  // Per-member prologue: clear the owned-entry accumulators, open the
  // banded LIF timestep, and count the execution ONCE per node (tiles
  // are fragments of one logical node execution).
  chain.acc.resize(depth);
  for (std::size_t j = 0; j < depth; ++j) {
    const auto idx = static_cast<std::size_t>(chain.nodes[j]);
    const int channels =
        spec_.graph.node(chain.nodes[j]).spec.out_shape.c;
    auto& acc_j = chain.acc[j];
    acc_j.resize(batch);
    for (auto& per_sample : acc_j) {
      per_sample.resize(static_cast<std::size_t>(channels));
      for (auto& entries : per_sample) entries.clear();
    }
    if (is_spiking_[idx]) lif_[idx].begin_step();
    ++exec_stats_.node_executions;
    ++exec_stats_.sparse_node_runs;
  }

  for (int tile = 0; tile < chain.tiles; ++tile) {
    const std::vector<sparse::SparseSample>* input = &chain_input;
    for (std::size_t j = 0; j < depth; ++j) {
      const int node_id = chain.nodes[j];
      const auto idx = static_cast<std::size_t>(node_id);
      const LayerSpec& ls = spec_.graph.node(node_id).spec;
      const ChainLayerWindows& lw = chain.layers[j];
      const sparse::RowWindow window{lw.win0[tile], lw.win1[tile]};
      const int own0 = lw.own0[tile];
      const int own1 = lw.own1[tile];
      std::uint64_t obs_t0 = 0;
      if (exec_observer_ != nullptr) obs_t0 = exec_now_ns();
      const Route route = node_route_[idx];
      const quant::NodeQuantPlan* nq = node_quant(idx);
      std::vector<sparse::SparseSample>& out_carrier = ts.carriers[j % 2];
      sparse::ConvWork work;
      if (is_spiking_[idx]) {
        // Synaptic current over the window rows, then the banded LIF
        // step: the same current -> spike arithmetic as the untiled
        // spiking dispatch, restricted to the tile's rows.
        if (nq == nullptr && route == Route::kCsr &&
            scatter_current_route(ls.conv)) {
          sparse::sparse_conv2d_window_into(*input, weights_[idx],
                                            biases_[idx], ls.conv, window,
                                            ts.current_window, &work);
        } else {
          std::vector<sparse::SparseSample> current;
          if (nq != nullptr) {
            current.resize(batch);
            for (std::size_t n = 0; n < batch; ++n) {
              current[n] =
                  route == Route::kSubmanifold
                      ? quant::int8_submanifold_conv2d(
                            (*input)[n], nq->weights, biases_[idx],
                            nq->input_scale, &work, &workspace_, &window)
                      : quant::int8_sparse_conv2d_csr(
                            (*input)[n], nq->weights, biases_[idx],
                            nq->input_scale, &work, &workspace_, &window);
            }
          } else {
            const std::vector<float>& packed =
                workspace_.packed_slot(static_cast<int>(idx));
            current =
                route == Route::kSubmanifold
                    ? sparse::submanifold_conv2d_batch_window(
                          *input, weights_[idx], biases_[idx], ls.conv,
                          window, &work, &workspace_,
                          sparse::SubmanifoldThreading::kAuto, packed)
                    : sparse::sparse_conv2d_csr_batch_window(
                          *input, weights_[idx], biases_[idx], ls.conv,
                          window, &work, &workspace_,
                          sparse::SubmanifoldThreading::kAuto, packed);
          }
          // Densify the window (zero fill == the zero-bias dense fill
          // sparse routes require, so this matches the untiled densify).
          const int rows = window.out_row1 - window.out_row0;
          ts.current_window.reset(TensorShape{static_cast<int>(batch),
                                              ls.out_shape.c, rows,
                                              ls.out_shape.w});
          std::fill(ts.current_window.data().begin(),
                    ts.current_window.data().end(), 0.0f);
          for (std::size_t n = 0; n < batch; ++n) {
            for (int c = 0; c < ls.out_shape.c; ++c) {
              for (const sparse::CooEntry& e :
                   current[n][static_cast<std::size_t>(c)].entries()) {
                ts.current_window.at(static_cast<int>(n), c,
                                     e.row - window.out_row0, e.col) =
                    e.value;
              }
            }
          }
        }
        if (ts.spike_entries.size() < batch) {
          ts.spike_entries.resize(batch);
        }
        for (auto& per_sample : ts.spike_entries) {
          for (auto& entries : per_sample) entries.clear();
        }
        lif_[idx].step_rows(ts.current_window, window.out_row0, own0, own1,
                            ts.spike_entries);
        out_carrier.resize(batch);
        for (std::size_t n = 0; n < batch; ++n) {
          auto& sample = out_carrier[n];
          sample.resize(static_cast<std::size_t>(ls.out_shape.c));
          for (int c = 0; c < ls.out_shape.c; ++c) {
            const auto& entries =
                ts.spike_entries[n][static_cast<std::size_t>(c)];
            const auto owned = owned_entries(entries, own0, own1);
            auto& acc = chain.acc[j][n][static_cast<std::size_t>(c)];
            acc.insert(acc.end(), owned.begin(), owned.end());
            sample[static_cast<std::size_t>(c)] =
                sparse::CooChannel::from_sorted_entries(
                    ls.out_shape.h, ls.out_shape.w,
                    std::vector<sparse::CooEntry>(entries.begin(),
                                                  entries.end()));
          }
        }
      } else {
        if (nq != nullptr) {
          out_carrier.resize(batch);
          for (std::size_t n = 0; n < batch; ++n) {
            out_carrier[n] =
                route == Route::kSubmanifold
                    ? quant::int8_submanifold_conv2d(
                          (*input)[n], nq->weights, biases_[idx],
                          nq->input_scale, &work, &workspace_, &window)
                    : quant::int8_sparse_conv2d_csr(
                          (*input)[n], nq->weights, biases_[idx],
                          nq->input_scale, &work, &workspace_, &window);
          }
        } else {
          const std::vector<float>& packed =
              workspace_.packed_slot(static_cast<int>(idx));
          out_carrier =
              route == Route::kSubmanifold
                  ? sparse::submanifold_conv2d_batch_window(
                        *input, weights_[idx], biases_[idx], ls.conv,
                        window, &work, &workspace_,
                        sparse::SubmanifoldThreading::kAuto, packed)
                  : sparse::sparse_conv2d_csr_batch_window(
                        *input, weights_[idx], biases_[idx], ls.conv,
                        window, &work, &workspace_,
                        sparse::SubmanifoldThreading::kAuto, packed);
        }
        if (ls.relu_after) {
          for (sparse::SparseSample& sample : out_carrier) {
            sparse::relu_sample_inplace(sample);
          }
        }
        for (std::size_t n = 0; n < batch; ++n) {
          for (int c = 0; c < ls.out_shape.c; ++c) {
            const auto owned = owned_entries(
                out_carrier[n][static_cast<std::size_t>(c)].entries(), own0,
                own1);
            auto& acc = chain.acc[j][n][static_cast<std::size_t>(c)];
            acc.insert(acc.end(), owned.begin(), owned.end());
          }
        }
      }
      exec_stats_.sparse_macs += work.sparse_macs;
      exec_stats_.dense_macs_avoided += work.dense_macs;
      if (exec_observer_ != nullptr) {
        exec_observer_->on_node(node_id, route, timestep, obs_t0,
                                exec_now_ns(), tile, chain.tiles);
      }
      input = &out_carrier;
    }
  }

  // Publish: the committed owned bands concatenate in tile order, so
  // each channel's entry list is row-major sorted by construction and
  // adopts O(1); spiking members publish the banded timestep.
  for (std::size_t j = 0; j < depth; ++j) {
    const auto idx = static_cast<std::size_t>(chain.nodes[j]);
    const LayerSpec& ls = spec_.graph.node(chain.nodes[j]).spec;
    if (is_spiking_[idx]) lif_[idx].end_step();
    auto& out_samples = sparse_values_[idx];
    out_samples.resize(batch);
    for (std::size_t n = 0; n < batch; ++n) {
      auto& sample = out_samples[n];
      sample.resize(static_cast<std::size_t>(ls.out_shape.c));
      for (int c = 0; c < ls.out_shape.c; ++c) {
        auto& entries = chain.acc[j][n][static_cast<std::size_t>(c)];
        sample[static_cast<std::size_t>(c)] =
            sparse::CooChannel::from_sorted_entries(
                ls.out_shape.h, ls.out_shape.w, std::move(entries));
        entries = {};
      }
    }
    sparse_valid_[idx] = 1;
    dense_valid_[idx] = 0;
  }
}

const DenseTensor& FunctionalNetwork::dense_value(int node_id) {
  const auto idx = static_cast<std::size_t>(node_id);
  if (!dense_valid_[idx]) {
    if (!sparse_valid_[idx]) {
      throw std::logic_error("dense_value: node " + std::to_string(node_id) +
                             " has no value this timestep");
    }
    densify_samples(sparse_values_[idx], values_[idx]);
    dense_valid_[idx] = 1;
    ++exec_stats_.densify_boundaries;
  }
  return values_[idx];
}

const std::vector<sparse::SparseSample>& FunctionalNetwork::sparse_value(
    int node_id) {
  const auto idx = static_cast<std::size_t>(node_id);
  if (!sparse_valid_[idx]) {
    const DenseTensor& dense = dense_value(node_id);
    auto& samples = sparse_values_[idx];
    samples.resize(static_cast<std::size_t>(dense.shape().n));
    for (int n = 0; n < dense.shape().n; ++n) {
      samples[static_cast<std::size_t>(n)] =
          sparse::slice_to_channels(dense, n);
    }
    sparse_valid_[idx] = 1;
    ++exec_stats_.sparsify_boundaries;
  }
  return sparse_values_[idx];
}

void FunctionalNetwork::run_sparse_conv(const LayerNode& node,
                                        std::size_t idx, Route route) {
  const LayerSpec& ls = node.spec;
  const std::vector<sparse::SparseSample>& input =
      sparse_value(node.parents.front());
  auto& out = sparse_values_[idx];
  sparse::ConvWork work;
  if (const quant::NodeQuantPlan* nq = node_quant(idx)) {
    // Real int8 gather kernels, sample by sample (the inner reduction
    // threads itself); the quant plan carries the packed int8 rows.
    out.resize(input.size());
    for (std::size_t n = 0; n < input.size(); ++n) {
      out[n] = route == Route::kSubmanifold
                   ? quant::int8_submanifold_conv2d(
                         input[n], nq->weights, biases_[idx],
                         nq->input_scale, &work, &workspace_)
                   : quant::int8_sparse_conv2d_csr(
                         input[n], nq->weights, biases_[idx],
                         nq->input_scale, &work, &workspace_);
    }
  } else {
    const std::vector<float>& packed =
        workspace_.packed_slot(static_cast<int>(idx));
    out = route == Route::kSubmanifold
              ? sparse::submanifold_conv2d_batch(
                    input, weights_[idx], biases_[idx], ls.conv, &work,
                    &workspace_, sparse::SubmanifoldThreading::kAuto, packed)
              : sparse::sparse_conv2d_csr_batch(
                    input, weights_[idx], biases_[idx], ls.conv, &work,
                    &workspace_, sparse::SubmanifoldThreading::kAuto, packed);
  }
  sparse_valid_[idx] = 1;
  dense_valid_[idx] = 0;
  ++exec_stats_.sparse_node_runs;
  exec_stats_.sparse_macs += work.sparse_macs;
  exec_stats_.dense_macs_avoided += work.dense_macs;
}

void FunctionalNetwork::run_quant_conv(const quant::NodeQuantPlan& nq,
                                       const DenseTensor& input,
                                       std::span<const float> bias,
                                       DenseTensor& out) {
  if (quant_plan_->simulate) {
    quant::quantize_activations_reference(input, nq.input_scale,
                                          quant_staging_);
    conv2d_into(quant_staging_, nq.weights.fake, bias, nq.weights.spec, out,
                &workspace_);
    return;
  }
  quant::int8_conv2d_into(input, nq.weights, bias, nq.input_scale, out,
                          &workspace_);
}

void FunctionalNetwork::run_quant_tconv(const quant::NodeQuantPlan& nq,
                                        const DenseTensor& input,
                                        std::span<const float> bias,
                                        DenseTensor& out) {
  if (quant_plan_->simulate) {
    quant::quantize_activations_reference(input, nq.input_scale,
                                          quant_staging_);
    out = transposed_conv2d(quant_staging_, nq.weights.fake, bias,
                            nq.weights.spec);
    return;
  }
  quant::int8_transposed_conv2d_into(input, nq.weights, bias, nq.input_scale,
                                     out, &workspace_);
}

DenseTensor FunctionalNetwork::run_quant_fc(const quant::NodeQuantPlan& nq,
                                            const DenseTensor& input,
                                            std::span<const float> bias) {
  if (quant_plan_->simulate) {
    quant::quantize_activations_reference(input, nq.input_scale,
                                          quant_staging_);
    return fully_connected(quant_staging_, nq.weights.fake, bias);
  }
  return quant::int8_fully_connected(input, nq.weights, bias, nq.input_scale,
                                     &workspace_);
}

void FunctionalNetwork::reset_spiking_state() {
  for (std::size_t i = 0; i < lif_.size(); ++i) {
    if (is_spiking_[i]) lif_[i].reset();
  }
}

void FunctionalNetwork::ensure_lif_batch(int batch) {
  for (const LayerNode& node : spec_.graph.nodes()) {
    const auto idx = static_cast<std::size_t>(node.id);
    if (!is_spiking_[idx] || lif_[idx].shape().n == batch) continue;
    const LayerSpec& ls = node.spec;
    // Independent per-sample membranes: the LIF update is elementwise,
    // so batching the state shape is all per-sample isolation needs.
    lif_[idx] = LifState(
        TensorShape{batch, ls.out_shape.c, ls.out_shape.h, ls.out_shape.w},
        ls.lif, channel_leak_[idx], channel_threshold_[idx]);
  }
}

DenseTensor FunctionalNetwork::run(std::span<const DenseTensor> event_steps,
                                   const DenseTensor* image) {
  return run_impl(event_steps, image, 1);
}

DenseTensor FunctionalNetwork::run_batched(
    std::span<const DenseTensor> event_steps, const DenseTensor* image) {
  if (event_steps.empty()) {
    throw std::invalid_argument("run_batched: no event steps");
  }
  const int batch = event_steps[0].shape().n;
  for (const DenseTensor& step : event_steps) {
    if (step.shape().n != batch) {
      throw std::invalid_argument("run_batched: inconsistent batch sizes");
    }
  }
  if (image != nullptr && image->shape().n == 1 && batch > 1) {
    // Tile the (batch-invariant) image across the batch once.
    const TensorShape& is = image->shape();
    image_batch_.reset(TensorShape{batch, is.c, is.h, is.w});
    const std::size_t block = image->stride_n();
    for (int n = 0; n < batch; ++n) {
      std::copy(image->raw(), image->raw() + block,
                image_batch_.raw() + static_cast<std::size_t>(n) * block);
    }
    image = &image_batch_;
  }
  return run_impl(event_steps, image, batch);
}

DenseTensor FunctionalNetwork::run_impl(
    std::span<const DenseTensor> event_steps, const DenseTensor* image,
    int batch) {
  const std::vector<int> inputs = spec_.graph.input_ids();
  const std::vector<int> outputs = spec_.graph.output_ids();
  if (static_cast<int>(event_steps.size()) != spec_.timesteps) {
    throw std::invalid_argument(
        "run: expected " + std::to_string(spec_.timesteps) +
        " timestep inputs, got " + std::to_string(event_steps.size()));
  }
  if (inputs.size() > 1 && image == nullptr) {
    throw std::invalid_argument("run: network requires an image input");
  }
  ensure_lif_batch(batch);
  reset_spiking_state();

  DenseTensor accumulated;
  const std::size_t n_nodes = spec_.graph.size();
  values_.resize(n_nodes);
  sparse_values_.resize(n_nodes);
  std::vector<DenseTensor>& values = values_;
  exec_stats_ = ExecStats{};
  prepare_packed_weights();
  for (ChainExec& chain : tile_chains_) chain.done_step = -1;
  // Spiking nodes feeding a sparse-routed consumer this run emit their
  // spikes as COO directly (step_sparse), skipping the consumer's
  // chain-head slice_to_channels re-scan of a spike tensor that was just
  // written. Dense consumers (skip connections) densify lazily — spikes
  // are exactly 1.0f, so both representations are bitwise identical.
  spike_sparse_emit_.assign(n_nodes, 0);
  if (exec_plan_ != nullptr && !activation_hook_) {
    for (const LayerNode& node : spec_.graph.nodes()) {
      if (node.parents.size() != 1 ||
          effective_route(static_cast<std::size_t>(node.id)) ==
              Route::kDense) {
        continue;
      }
      const auto pidx = static_cast<std::size_t>(node.parents.front());
      if (is_spiking_[pidx]) spike_sparse_emit_[pidx] = 1;
    }
  }

  // Timestep-invariant caching: stateless nodes fed only by the constant
  // image input compute identical values every timestep (e.g. the whole
  // Fusion-FlowNet / HALSIE image encoder), so after t == 0 they are
  // skipped and their cached value reused — bitwise identical to
  // recomputation. Hooks observe (and may mutate) every node at every
  // timestep, so an installed hook disables the cache.
  const bool cache_invariant = !activation_hook_;

  for (int t = 0; t < spec_.timesteps; ++t) {
    const DenseTensor& step = event_steps[static_cast<std::size_t>(t)];
    // Every non-cached node recomputes this timestep; neither
    // representation of the previous step's activations is valid any
    // more.
    if (t == 0 || !cache_invariant) {
      dense_valid_.assign(n_nodes, 0);
      sparse_valid_.assign(n_nodes, 0);
    } else {
      for (std::size_t i = 0; i < n_nodes; ++i) {
        if (!time_invariant_[i]) {
          dense_valid_[i] = 0;
          sparse_valid_[i] = 0;
        }
      }
    }
    for (const LayerNode& node : spec_.graph.nodes()) {
      const LayerSpec& ls = node.spec;
      const auto idx = static_cast<std::size_t>(node.id);
      if (t > 0 && cache_invariant && time_invariant_[idx] &&
          (dense_valid_[idx] || sparse_valid_[idx])) {
        continue;  // cached from t == 0
      }
      // Tiled chain dispatch: the chain head pulls every member through
      // the tile walk in one shot; members then skip their slot in the
      // node loop. A chain whose routes are demoted this run (or whose
      // geometry is the degenerate 1 tile) falls through to the normal
      // untiled per-node execution below.
      if (!chain_of_node_.empty() && chain_of_node_[idx] >= 0) {
        ChainExec& chain =
            tile_chains_[static_cast<std::size_t>(chain_of_node_[idx])];
        if (chain.done_step == t) continue;
        if (node.id == chain.nodes.front() && chain_routes_active(chain)) {
          run_tiled_chain(chain, t);
          chain.done_step = t;
          continue;
        }
      }
      ++exec_stats_.node_executions;
      std::uint64_t obs_t0 = 0;
      if (exec_observer_ != nullptr) obs_t0 = exec_now_ns();
      // Dense node outputs land in the persistent per-node buffer, so
      // steady state reuses the previous call's allocations; sparse
      // routes fill the per-node COO carrier instead and densify lazily
      // at route boundaries (dense_value).
      DenseTensor& out = values[idx];
      switch (ls.kind) {
        case LayerKind::kInput: {
          const bool is_event_input = node.id == inputs.front();
          const DenseTensor& src = is_event_input ? step : *image;
          const TensorShape& ss = src.shape();
          if (ss.n != batch || ss.c != ls.out_shape.c ||
              ss.h != ls.out_shape.h || ss.w != ls.out_shape.w) {
            throw std::invalid_argument("run: input shape mismatch at '" +
                                        ls.name + "'");
          }
          out = src;
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kConv: {
          const Route route = effective_route(idx);
          if (route != Route::kDense) {
            run_sparse_conv(node, idx, route);
            if (ls.relu_after) {
              // Sparse ReLU: dropping negative entries leaves exactly
              // relu() of the dense image (implicit zeros are fixpoints).
              for (sparse::SparseSample& sample : sparse_values_[idx]) {
                sparse::relu_sample_inplace(sample);
              }
            }
            break;
          }
          const DenseTensor& src = dense_value(node.parents[0]);
          if (const auto* nq = node_quant(idx)) {
            run_quant_conv(*nq, src, biases_[idx], out);
          } else {
            conv2d_into(src, weights_[idx], biases_[idx], ls.conv, out,
                        &workspace_);
          }
          if (ls.relu_after) relu_inplace(out);
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kTransposedConv: {
          const DenseTensor& src = dense_value(node.parents[0]);
          if (const auto* nq = node_quant(idx)) {
            run_quant_tconv(*nq, src, biases_[idx], out);
          } else {
            out = transposed_conv2d(src, weights_[idx], biases_[idx],
                                    ls.conv);
          }
          if (ls.relu_after) relu_inplace(out);
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kSpikingConv:
        case LayerKind::kAdaptiveSpikingConv: {
          // The synaptic-current conv routes dense or sparse; the LIF
          // update stays float over the dense current (membrane state is
          // dense by nature), so the spike output is always dense.
          const Route route = effective_route(idx);
          if (route == Route::kCsr && node_quant(idx) == nullptr &&
              scatter_current_route(ls.conv)) {
            // The LIF consumer needs dense current, so narrow layers
            // scatter straight into the staging tensor — same arithmetic
            // as CSR + densify (bitwise, incl. the implicit zero-bias
            // fill), minus the COO materialization and the per-site
            // bookkeeping. Wide layers keep the vectorized gather
            // reduction below.
            sparse::ConvWork work;
            sparse::sparse_conv2d_batch_into(
                sparse_value(node.parents.front()), weights_[idx],
                biases_[idx], ls.conv, conv_scratch_, &work);
            ++exec_stats_.sparse_node_runs;
            exec_stats_.sparse_macs += work.sparse_macs;
            exec_stats_.dense_macs_avoided += work.dense_macs;
          } else if (route != Route::kDense) {
            run_sparse_conv(node, idx, route);
            densify_samples(sparse_values_[idx], conv_scratch_);
            ++exec_stats_.densify_boundaries;
            // The carrier held the pre-LIF current, not this node's
            // output — invalidate it before the spikes land in `out`.
            sparse_valid_[idx] = 0;
          } else if (const auto* nq = node_quant(idx)) {
            run_quant_conv(*nq, dense_value(node.parents[0]), biases_[idx],
                           conv_scratch_);
          } else {
            conv2d_into(dense_value(node.parents[0]), weights_[idx],
                        biases_[idx], ls.conv, conv_scratch_, &workspace_);
          }
          if (spike_sparse_emit_[idx]) {
            lif_[idx].step_sparse(conv_scratch_, spike_staging_);
            const TensorShape& os = lif_[idx].shape();
            auto& samples = sparse_values_[idx];
            samples.resize(static_cast<std::size_t>(os.n));
            for (int n = 0; n < os.n; ++n) {
              auto& sample = samples[static_cast<std::size_t>(n)];
              sample.resize(static_cast<std::size_t>(os.c));
              for (int c = 0; c < os.c; ++c) {
                sample[static_cast<std::size_t>(c)] =
                    sparse::CooChannel::from_sorted_entries(
                        os.h, os.w,
                        std::move(
                            spike_staging_[static_cast<std::size_t>(n)]
                                          [static_cast<std::size_t>(c)]));
              }
            }
            sparse_valid_[idx] = 1;
            dense_valid_[idx] = 0;
          } else {
            out = lif_[idx].step(conv_scratch_);
            dense_valid_[idx] = 1;
          }
          break;
        }
        case LayerKind::kFullyConnected: {
          const DenseTensor& src = dense_value(node.parents[0]);
          if (const auto* nq = node_quant(idx)) {
            out = run_quant_fc(*nq, src, biases_[idx]);
          } else {
            out = fully_connected(src, weights_[idx], biases_[idx]);
          }
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kMaxPool:
          out = max_pool(dense_value(node.parents[0]), ls.pool_kernel);
          dense_valid_[idx] = 1;
          break;
        case LayerKind::kAvgPool:
          out = avg_pool(dense_value(node.parents[0]), ls.pool_kernel);
          dense_valid_[idx] = 1;
          break;
        case LayerKind::kUpsample:
          out = upsample_nearest(dense_value(node.parents[0]),
                                 ls.upsample_factor);
          dense_valid_[idx] = 1;
          break;
        case LayerKind::kConcat: {
          const DenseTensor& a = dense_value(node.parents[0]);
          const DenseTensor& b = dense_value(node.parents[1]);
          const int h = std::min(a.shape().h, b.shape().h);
          const int w = std::min(a.shape().w, b.shape().w);
          out = concat_channels(center_crop(a, h, w), center_crop(b, h, w));
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kAdd: {
          const DenseTensor& a = dense_value(node.parents[0]);
          const DenseTensor& b = dense_value(node.parents[1]);
          const int h = std::min(a.shape().h, b.shape().h);
          const int w = std::min(a.shape().w, b.shape().w);
          out = add(center_crop(a, h, w), center_crop(b, h, w));
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kOutput:
          out = dense_value(node.parents[0]);
          dense_valid_[idx] = 1;
          break;
      }
      if (activation_hook_ && ls.kind != LayerKind::kInput &&
          ls.kind != LayerKind::kOutput) {
        activation_hook_(node.id, out);
      }
      if (exec_observer_ != nullptr) {
        exec_observer_->on_node(node.id, effective_route(idx), t, obs_t0,
                                exec_now_ns(), 0, 1);
      }
    }

    const DenseTensor& step_out =
        values[static_cast<std::size_t>(outputs.front())];
    if (t == 0) {
      accumulated = step_out;
    } else {
      accumulated = add(accumulated, step_out);
    }
  }

  if (spec_.timesteps > 1) {
    const float inv = 1.0f / static_cast<float>(spec_.timesteps);
    for (float& v : accumulated.data()) v *= inv;
  }
  return accumulated;
}

double FunctionalNetwork::mean_firing_rate(int node_id) const {
  if (node_id < 0 || node_id >= static_cast<int>(lif_.size())) return 0.0;
  const auto idx = static_cast<std::size_t>(node_id);
  return is_spiking_[idx] ? lif_[idx].mean_firing_rate() : 0.0;
}

double FunctionalNetwork::network_firing_rate() const {
  double acc = 0.0;
  int count = 0;
  for (std::size_t i = 0; i < lif_.size(); ++i) {
    if (is_spiking_[i]) {
      acc += lif_[i].mean_firing_rate();
      ++count;
    }
  }
  return count > 0 ? acc / count : 0.0;
}

}  // namespace evedge::nn
