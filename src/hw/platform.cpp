#include "hw/platform.hpp"

#include <stdexcept>

namespace evedge::hw {

std::string to_string(PeKind kind) {
  switch (kind) {
    case PeKind::kCpu: return "CPU";
    case PeKind::kGpu: return "GPU";
    case PeKind::kDla: return "DLA";
  }
  return "?";
}

const ProcessingElement& Platform::pe(int id) const {
  if (id < 0 || id >= static_cast<int>(pes.size())) {
    throw std::out_of_range("Platform::pe: bad id " + std::to_string(id));
  }
  return pes[static_cast<std::size_t>(id)];
}

int Platform::first_pe(PeKind kind) const {
  for (const ProcessingElement& p : pes) {
    if (p.kind == kind) return p.id;
  }
  throw std::invalid_argument("platform has no PE of kind " +
                              to_string(kind));
}

void Platform::validate() const {
  if (pes.empty()) throw std::logic_error("platform has no PEs");
  for (std::size_t i = 0; i < pes.size(); ++i) {
    const ProcessingElement& p = pes[i];
    if (p.id != static_cast<int>(i)) {
      throw std::logic_error("PE ids must be dense and ordered");
    }
    bool any = false;
    for (double peak : p.peak_macs_per_s) {
      if (peak < 0.0) throw std::logic_error("negative peak rate");
      any = any || peak > 0.0;
    }
    if (!any) throw std::logic_error("PE supports no precision: " + p.name);
    if (p.dense_efficiency <= 0.0 || p.dense_efficiency > 1.0) {
      throw std::logic_error("dense_efficiency out of (0,1]");
    }
    if (p.spiking_efficiency <= 0.0 || p.spiking_efficiency > 1.0) {
      throw std::logic_error("spiking_efficiency out of (0,1]");
    }
    if (p.mem_bandwidth_bytes_per_us <= 0.0) {
      throw std::logic_error("PE bandwidth must be positive");
    }
  }
  if (unified_mem_bandwidth_bytes_per_us <= 0.0) {
    throw std::logic_error("unified memory bandwidth must be positive");
  }
}

Platform xavier_agx() {
  Platform p;
  p.name = "Jetson Xavier AGX (MAXN)";
  // LPDDR4x: 137 GB/s theoretical; ~85 GB/s effective for copies.
  p.unified_mem_bandwidth_bytes_per_us = 85'000.0;
  p.transfer_sync_overhead_us = 12.0;

  // --- Carmel CPU complex (8 cores, NEON). Treated as one PE the mapper
  // can assign layers to; low throughput but free of launch latency and
  // good at branchy spiking updates. FP16 executes at FP32 rate (no
  // vector fp16 advantage in this generation); INT8 uses dot-product ops.
  ProcessingElement cpu;
  cpu.id = 0;
  cpu.name = "carmel-cpu";
  cpu.kind = PeKind::kCpu;
  cpu.peak_macs_per_s = {32e9, 32e9, 64e9};  // FP32, FP16, INT8
  cpu.dense_efficiency = 0.70;
  cpu.spiking_efficiency = 0.80;
  cpu.launch_overhead_us = 6.0;
  cpu.mem_bandwidth_bytes_per_us = 25'000.0;
  cpu.supports_sparse = true;
  cpu.sparse_overhead = 2.0;  // scalar gather-scatter, still index-bound
  cpu.active_power_w = {10.0, 10.0, 9.0};
  cpu.idle_power_w = 1.0;
  p.pes.push_back(cpu);

  // --- Volta iGPU: 512 CUDA cores + 64 tensor cores. Peak rates are
  // *sustained* figures for real convolution workloads (TensorRT-style),
  // not datasheet tensor-core peaks: measured batch-1 FP16 and INT8
  // advantages on Volta-class integrated GPUs are ~1.25x and ~1.4x over
  // FP32 — far below theoretical tensor-core ratios, because real event-
  // vision layers are partly memory/launch bound.
  ProcessingElement gpu;
  gpu.id = 1;
  gpu.name = "volta-gpu";
  gpu.kind = PeKind::kGpu;
  gpu.peak_macs_per_s = {0.7e12, 0.875e12, 0.98e12};
  gpu.dense_efficiency = 0.45;
  gpu.spiking_efficiency = 0.30;  // LIF state updates starve tensor cores
  gpu.launch_overhead_us = 30.0;
  gpu.mem_bandwidth_bytes_per_us = 85'000.0;
  gpu.supports_sparse = true;
  gpu.sparse_overhead = 3.0;  // gather-scatter vs cuDNN dense
  gpu.active_power_w = {18.0, 15.5, 13.5};
  gpu.idle_power_w = 1.5;
  p.pes.push_back(gpu);

  // --- Two DLA engines: fixed-function conv accelerators. FP16/INT8
  // only, no sparse route, higher submit latency, very low power.
  for (int i = 0; i < 2; ++i) {
    ProcessingElement dla;
    dla.id = 2 + i;
    dla.name = "dla" + std::to_string(i);
    dla.kind = PeKind::kDla;
    dla.peak_macs_per_s = {0.0, 0.45e12, 0.6e12};
    dla.dense_efficiency = 0.60;
    dla.spiking_efficiency = 0.20;  // LIF falls back to emulated path
    dla.launch_overhead_us = 55.0;
    dla.mem_bandwidth_bytes_per_us = 35'000.0;
    dla.supports_sparse = false;
    dla.active_power_w = {0.0, 4.0, 3.2};  // incl. DRAM traffic share
    dla.idle_power_w = 0.3;
    p.pes.push_back(dla);
  }
  p.validate();
  return p;
}

double transfer_time_us(const Platform& platform, int from_pe, int to_pe,
                        double bytes) {
  if (from_pe == to_pe) return 0.0;
  (void)platform.pe(from_pe);  // bounds check
  (void)platform.pe(to_pe);
  if (bytes <= 0.0) return platform.transfer_sync_overhead_us;
  return platform.transfer_sync_overhead_us +
         bytes / platform.unified_mem_bandwidth_bytes_per_us;
}

}  // namespace evedge::hw
