#pragma once

// Dynamic Sparse Frame Aggregator (DSFA, paper §4.2, Fig. 6).
//
// Sparse frames from E2SF are staged in an event buffer partitioned into
// merge buckets of capacity MBsize. An incoming frame Evf_k goes into the
// earliest AVL bucket provided (i) its delay w.r.t. the bucket's earliest
// frame is within MtTh and (ii) the relative change between its spatial
// density and the bucket's merged density is below MdTh; otherwise the
// bucket is marked FULL and the next bucket is tried (cBatch opens a new
// bucket per frame). When the buffer occupancy exceeds EBufsize — or the
// hardware goes idle — buckets are combined per cMode, pushed to the
// per-task inference queue (discarding the oldest entry when full) and
// concatenated into a batched merged-sparse-frame representation.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sparse/sparse_frame.hpp"

namespace evedge::core {

using sparse::MergeMode;
using sparse::SparseFrame;

struct DsfaConfig {
  std::size_t event_buffer_size = 8;     ///< EBufsize, in frames
  std::size_t merge_bucket_capacity = 4; ///< MBsize, frames per bucket
  MergeMode merge_mode = MergeMode::kAdd;  ///< cMode
  double max_time_delay_us = 40'000.0;   ///< MtTh
  double max_density_change = 0.75;      ///< MdTh (relative change)
  std::size_t inference_queue_capacity = 4;
  /// Smoothing factor of the recent-density tracker (recent_density()):
  /// weight of the newest frame's spatial density in the running EMA.
  double density_ema_alpha = 0.25;
};

/// One dispatched batch: each element is a combined merge bucket; the
/// batch is what gets concatenated into the network's input.
struct MergedBatch {
  std::vector<SparseFrame> frames;

  [[nodiscard]] bool empty() const noexcept { return frames.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return frames.size(); }
};

/// Aggregation statistics for the ablation benches.
struct DsfaStats {
  std::size_t frames_in = 0;
  std::size_t buckets_dispatched = 0;
  std::size_t batches_dispatched = 0;
  /// Merged frames dropped from a full inference queue (oldest-first).
  std::size_t frames_discarded = 0;
  std::size_t time_threshold_closures = 0;
  std::size_t density_threshold_closures = 0;
  std::size_t capacity_closures = 0;

  /// Mean source frames merged per dispatched bucket.
  [[nodiscard]] double mean_merge_factor() const noexcept {
    return buckets_dispatched > 0
               ? static_cast<double>(frames_in) /
                     static_cast<double>(buckets_dispatched)
               : 0.0;
  }
};

class DynamicSparseFrameAggregator {
 public:
  explicit DynamicSparseFrameAggregator(DsfaConfig config);

  /// Stages one sparse frame (time-ordered arrivals required). May
  /// trigger an internal dispatch when the event buffer overflows; any
  /// dispatched batch is retrievable through take_ready_batch().
  void push(SparseFrame frame);

  /// Hardware-idle hook (paper: "if the hardware platform becomes
  /// available before the event buffer reaches full capacity, we dispatch
  /// the available merge buckets"). Combines whatever is staged.
  void dispatch_available();

  /// Pops the oldest ready batch from the inference queue, if any.
  [[nodiscard]] std::optional<MergedBatch> take_ready_batch();

  /// Frames currently staged in the event buffer (all buckets).
  [[nodiscard]] std::size_t buffered_frames() const noexcept;

  /// Exponential moving average of the spatial density of pushed frames
  /// (density_ema_alpha weights the newest; 0 before the first push).
  /// This is the live input-density signal the DSFA merge policy already
  /// tracks per frame, exposed so downstream consumers (the serving
  /// runtime's planner-drift recalibration, ingress telemetry) can react
  /// to scene-level density changes without re-scanning frames.
  [[nodiscard]] double recent_density() const noexcept {
    return recent_density_;
  }

  /// Relative drift of recent_density() against `reference`:
  /// |recent - reference| / max(reference, eps). 0 before any push.
  [[nodiscard]] double density_drift(double reference,
                                     double eps = 1e-9) const noexcept;

  [[nodiscard]] const DsfaStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DsfaConfig& config() const noexcept { return config_; }

 private:
  struct MergeBucket {
    std::vector<SparseFrame> frames;
    bool full = false;

    [[nodiscard]] bool available(std::size_t capacity) const noexcept {
      return !full && frames.size() < capacity;
    }
  };

  void dispatch_all_buckets();

  DsfaConfig config_;
  std::vector<MergeBucket> buckets_;
  std::deque<MergedBatch> inference_queue_;
  DsfaStats stats_;
  double recent_density_ = 0.0;
};

}  // namespace evedge::core
