#include "events/event_synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

namespace evedge::events {

namespace {

constexpr double kUsPerSecond = 1e6;

struct BlobCenter {
  double x, y;
};

[[nodiscard]] BlobCenter blob_center(const ActivityBlob& blob,
                                     const SensorGeometry& g, double t_s) {
  // Lissajous path keeps blobs inside the array with margins of one sigma.
  const double mx = std::max(1.0, blob.sigma_px);
  const double my = std::max(1.0, blob.sigma_px);
  const double ax = (static_cast<double>(g.width) - 2.0 * mx) / 2.0;
  const double ay = (static_cast<double>(g.height) - 2.0 * my) / 2.0;
  const double cx = static_cast<double>(g.width) / 2.0 +
                    ax * std::sin(2.0 * std::numbers::pi * blob.fx_hz * t_s +
                                  blob.phase);
  const double cy = static_cast<double>(g.height) / 2.0 +
                    ay * std::sin(2.0 * std::numbers::pi * blob.fy_hz * t_s +
                                  0.5 * blob.phase);
  return {cx, cy};
}

}  // namespace

PoissonEventSynthesizer::PoissonEventSynthesizer(DensityProfile profile,
                                                 SynthConfig config)
    : profile_(std::move(profile)), config_(config) {
  validate_geometry(config_.geometry);
  if (config_.blob_count <= 0) {
    throw std::invalid_argument("blob_count must be > 0");
  }
  if (config_.background_weight < 0.0 || config_.background_weight > 1.0) {
    throw std::invalid_argument("background_weight must be in [0,1]");
  }
  if (config_.step_us <= 0.0) {
    throw std::invalid_argument("step_us must be > 0");
  }
  std::mt19937_64 rng(config_.seed);
  std::uniform_real_distribution<double> amp(0.5, 1.5);
  std::uniform_real_distribution<double> sigma(3.0, 9.0);
  std::uniform_real_distribution<double> freq(0.08, 0.45);
  std::uniform_real_distribution<double> phase(0.0, 2.0 * std::numbers::pi);
  for (int b = 0; b < config_.blob_count; ++b) {
    blobs_.push_back(ActivityBlob{amp(rng), sigma(rng), freq(rng), freq(rng),
                                  phase(rng)});
  }
}

EventStream PoissonEventSynthesizer::generate(TimeUs t0,
                                              TimeUs duration_us) const {
  if (duration_us <= 0) {
    throw std::invalid_argument("generate: duration must be > 0");
  }
  const SensorGeometry& g = config_.geometry;
  std::mt19937_64 rng(config_.seed ^ 0x9e3779b97f4a7c15ULL);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);

  double blob_weight_total = 0.0;
  for (const ActivityBlob& b : blobs_) blob_weight_total += b.amplitude;

  EventStream stream(g);
  const double t_begin_s = static_cast<double>(t0) / kUsPerSecond;
  const auto n_steps = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(duration_us) / config_.step_us));

  std::vector<Event> step_events;
  for (std::int64_t s = 0; s < n_steps; ++s) {
    const double step_start_us =
        static_cast<double>(t0) + static_cast<double>(s) * config_.step_us;
    const double step_len_us = std::min(
        config_.step_us,
        static_cast<double>(t0 + duration_us) - step_start_us);
    const double t_mid_s =
        (step_start_us + 0.5 * step_len_us) / kUsPerSecond;

    const double rate_px = profile_.rate_per_pixel(t_mid_s);
    const double lambda = rate_px *
                          static_cast<double>(g.pixel_count()) *
                          (step_len_us / kUsPerSecond);
    if (lambda <= 0.0) continue;
    std::poisson_distribution<std::int64_t> pois(lambda);
    const std::int64_t count = pois(rng);

    step_events.clear();
    step_events.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      int x = 0;
      int y = 0;
      bool from_blob = unit(rng) >= config_.background_weight;
      double motion_dir = 1.0;
      if (from_blob) {
        // Pick a blob proportionally to amplitude, sample a Gaussian
        // offset, reject-and-retry (bounded) when outside the array.
        double pick = unit(rng) * blob_weight_total;
        std::size_t bi = 0;
        for (; bi + 1 < blobs_.size(); ++bi) {
          if (pick < blobs_[bi].amplitude) break;
          pick -= blobs_[bi].amplitude;
        }
        const ActivityBlob& blob = blobs_[bi];
        const BlobCenter c = blob_center(blob, g, t_mid_s - t_begin_s);
        bool placed = false;
        for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
          const double dx = gauss(rng) * blob.sigma_px;
          const double dy = gauss(rng) * blob.sigma_px;
          const int cx = static_cast<int>(std::lround(c.x + dx));
          const int cy = static_cast<int>(std::lround(c.y + dy));
          if (g.contains(cx, cy)) {
            x = cx;
            y = cy;
            // Leading edge of the moving blob fires positive events,
            // trailing edge negative (DVS on/off structure).
            motion_dir = dx * std::cos(2.0 * std::numbers::pi * blob.fx_hz *
                                       (t_mid_s - t_begin_s));
            placed = true;
          }
        }
        if (!placed) from_blob = false;
      }
      if (!from_blob) {
        x = static_cast<int>(unit(rng) * static_cast<double>(g.width));
        y = static_cast<int>(unit(rng) * static_cast<double>(g.height));
        x = std::min(x, g.width - 1);
        y = std::min(y, g.height - 1);
        motion_dir = unit(rng) - 0.5;
      }
      const double tu = step_start_us + unit(rng) * step_len_us;
      step_events.push_back(Event{
          static_cast<std::uint16_t>(x), static_cast<std::uint16_t>(y),
          static_cast<TimeUs>(std::llround(tu)),
          motion_dir >= 0 ? Polarity::kPositive : Polarity::kNegative});
    }
    std::sort(step_events.begin(), step_events.end(),
              [](const Event& a, const Event& b) { return a.t < b.t; });
    // Clamp any boundary rounding into the step so global order holds.
    for (Event& e : step_events) {
      e.t = std::max<TimeUs>(
          e.t, stream.empty() ? t0 : stream.events().back().t);
      stream.push_back(e);
    }
  }
  return stream;
}

}  // namespace evedge::events
