#include "wire/recorder.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>
#include <thread>

namespace evedge::wire {

void record_stream(const events::EventStream& stream,
                   const std::string& path,
                   std::size_t events_per_packet,
                   std::uint32_t session_id) {
  const std::size_t per_packet =
      std::min(events_per_packet, kMaxEventsPerPacket);
  const auto& events = stream.events();

  StreamHeader header;
  header.width = static_cast<std::uint16_t>(stream.geometry().width);
  header.height = static_cast<std::uint16_t>(stream.geometry().height);
  header.epoch_us = events.empty() ? 0 : events.front().t;
  header.t_end_us = events.empty() ? 0 : events.back().t;
  header.data_packets = static_cast<std::uint32_t>(
      (events.size() + per_packet - 1) / per_packet);

  std::vector<std::uint8_t> bytes;
  encode_hello(session_id, header, bytes);
  std::uint32_t seq = 0;
  for (std::size_t i = 0; i < events.size(); i += per_packet) {
    const std::size_t n = std::min(per_packet, events.size() - i);
    encode_data(session_id, seq++,
                std::span<const events::Event>(events.data() + i, n),
                bytes);
  }
  encode_eos(session_id, seq, header.t_end_us, bytes);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("record_stream: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("record_stream: short write to " + path);
  }
}

StreamReplayer::StreamReplayer(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("StreamReplayer: cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  bytes_.resize(static_cast<std::size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes_.data()), size)) {
    throw std::runtime_error("StreamReplayer: short read from " + path);
  }

  PacketFramer framer;
  framer.feed(bytes_.data(), bytes_.size());
  std::size_t offset = 0;
  bool have_hello = false;
  bool have_eos = false;
  while (auto framed = framer.next()) {
    if (framed->error != PacketError::kNone) {
      throw std::runtime_error(
          std::string("StreamReplayer: corrupt recording (") +
          to_string(framed->error) + ") in " + path);
    }
    const std::size_t length =
        kHeaderBytes + framed->payload.size();
    packets_.push_back({offset, length, framed->header});
    offset += length;
    switch (framed->header.type) {
      case PacketType::kHello:
        if (!decode_hello(framed->payload, header_)) {
          throw std::runtime_error(
              "StreamReplayer: malformed hello in " + path);
        }
        have_hello = true;
        break;
      case PacketType::kData:
        ++data_packets_;
        break;
      case PacketType::kEndOfStream:
        have_eos = true;
        break;
      default:
        break;
    }
  }
  if (!have_hello || !have_eos || framer.buffered() != 0) {
    throw std::runtime_error(
        "StreamReplayer: incomplete recording in " + path);
  }
}

events::EventStream StreamReplayer::decode() const {
  std::vector<events::Event> events;
  TimestampUnwrapper unwrapper(header_.epoch_us);
  std::int64_t min_t = header_.epoch_us;
  for (const PacketRef& ref : packets_) {
    if (ref.header.type != PacketType::kData || ref.header.event_count == 0) {
      continue;
    }
    const std::int64_t base = unwrapper.unwrap(ref.header.t_base);
    const PacketError err = decode_events(
        std::span<const std::uint8_t>(bytes_.data() + ref.offset +
                                          kHeaderBytes,
                                      ref.length - kHeaderBytes),
        ref.header.event_count, base, min_t, header_.width,
        header_.height, events);
    if (err != PacketError::kNone) {
      throw std::runtime_error(
          std::string("StreamReplayer::decode: ") + to_string(err));
    }
    min_t = events.back().t;
    unwrapper.advance(min_t);
  }
  return events::EventStream(
      events::SensorGeometry{header_.width, header_.height},
      std::move(events));
}

ReplayStats StreamReplayer::replay(Transport& transport,
                                   double speedup) const {
  using Clock = std::chrono::steady_clock;
  ReplayStats stats;
  const auto start = Clock::now();
  TimestampUnwrapper unwrapper(header_.epoch_us);
  std::uint8_t drain[1024];
  for (const PacketRef& ref : packets_) {
    const bool timed = ref.header.type == PacketType::kData &&
                       ref.header.event_count > 0;
    if (timed && speedup > 0.0) {
      const std::int64_t t = unwrapper.unwrap(ref.header.t_base);
      const double offset_us =
          static_cast<double>(t - header_.epoch_us) / speedup;
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(
                      static_cast<std::int64_t>(offset_us)));
    } else if (timed) {
      (void)unwrapper.unwrap(ref.header.t_base);
    }
    if (!transport.send(bytes_.data() + ref.offset, ref.length)) {
      throw std::runtime_error("StreamReplayer::replay: transport died");
    }
    if (ref.header.type != PacketType::kHello) {
      ++stats.packets_sent;
    }
    stats.bytes_sent += ref.length;
    // Keep the reverse direction drained so peer acks can't fill a
    // bounded transport and deadlock a one-way replay.
    while (transport.recv_some(drain, sizeof drain,
                               std::chrono::milliseconds(0)) > 0) {
    }
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      Clock::now() - start)
                      .count();
  stats.target_ms =
      speedup > 0.0
          ? static_cast<double>(header_.t_end_us - header_.epoch_us) /
                (speedup * 1000.0)
          : 0.0;
  return stats;
}

}  // namespace evedge::wire
