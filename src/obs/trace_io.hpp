#pragma once

// Chrome trace_event ("catapult") JSON I/O for the obs tracer: the
// exporter writes the format chrome://tracing and Perfetto open
// directly, one event object per line inside the traceEvents array —
// which is also what keeps the importer honest: read_chrome_trace is a
// line-oriented parser of exactly the shape this exporter (and the
// evedge_trace CLI) produce, not a general JSON parser.
//
// Mapping: spans -> "ph":"X" complete events (ts/dur in microseconds,
// fractional — nanosecond resolution survives), instants -> "ph":"i"
// with thread scope, counters -> "ph":"C". Thread ids are the tracer's
// ring indices; pid is fixed (single process).

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace evedge::obs {

/// Writes `events` as a complete Chrome trace JSON document.
void write_chrome_trace(std::ostream& os,
                        std::span<const TraceEvent> events);

/// File convenience; returns false (and fills *error) on I/O failure.
bool write_chrome_trace_file(const std::string& path,
                             std::span<const TraceEvent> events,
                             std::string* error = nullptr);

/// One event as re-read from an exported trace. `args_json` is the raw
/// args object text ("{...}") when present, empty otherwise.
struct ParsedEvent {
  char ph = 'X';  ///< 'X' span, 'i' instant, 'C' counter
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  std::string cat;
  std::string name;
  std::string args_json;
};

/// Reads a trace produced by write_chrome_trace (or the evedge_trace
/// CLI). Unrecognized lines are skipped; throws std::runtime_error only
/// when the file cannot be opened.
[[nodiscard]] std::vector<ParsedEvent> read_chrome_trace(
    const std::string& path);

/// Writes parsed events back out as a Chrome trace document (the CLI's
/// export / overlay path). args_json is emitted verbatim.
void write_parsed_trace(std::ostream& os,
                        std::span<const ParsedEvent> events);

/// JSON string escaping for names/details embedded in trace documents.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Extracts an integer arg (`"key":N`) from a parsed event's args
/// object. Returns false when the key is absent or non-numeric.
[[nodiscard]] bool event_arg(const ParsedEvent& e, const std::string& key,
                             std::int64_t* out);

/// One hop of a frame's reconstructed journey: a trace event whose args
/// carried the frame's (stream, seq) lineage context.
struct LineageHop {
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  std::string cat;
  std::string name;
};

/// Filters a parsed trace down to the events carrying the given
/// (stream, seq) lineage args, ordered by start time — one frame's
/// journey through ingress -> queue -> collator -> worker -> capture,
/// the reconstruction behind `evedge_trace lineage`.
[[nodiscard]] std::vector<LineageHop> frame_lineage(
    std::span<const ParsedEvent> events, std::int64_t stream,
    std::int64_t seq);

}  // namespace evedge::obs
