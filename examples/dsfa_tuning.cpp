// DSFA tuning walkthrough: how to pick MBsize / MtTh / MdTh for a task
// (paper §4.2: "both MtTh and MdTh needs to be tuned for each task
// individually"). Sweeps the thresholds on a bursty stream and prints
// the latency / temporal-fidelity tradeoff so a deployment can pick its
// operating point.
//
// Build & run:  ./build/examples/dsfa_tuning

#include <cstdio>

#include "core/inference_cost.hpp"
#include "core/pipeline.hpp"
#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "hw/platform.hpp"
#include "nn/zoo.hpp"
#include "sched/mapping.hpp"

using namespace evedge;

int main() {
  const auto platform = hw::xavier_agx();
  const auto spec =
      nn::build_network(nn::NetworkId::kAdaptiveSpikeNet,
                        nn::ZooConfig::full_scale());
  const auto densities = core::measure_activation_densities(
      nn::build_network(nn::NetworkId::kAdaptiveSpikeNet,
                        nn::ZooConfig::test_scale()),
      7);
  const auto mapping =
      sched::uniform_candidate({spec}, platform.first_pe(hw::PeKind::kGpu),
                               quant::Precision::kFp32)
          .tasks.front();

  events::SynthConfig synth;
  synth.geometry = events::davis346();
  synth.seed = 27;
  const auto stream = events::PoissonEventSynthesizer(
                          events::DensityProfile::indoor_flying2(), synth)
                          .generate(0, 4'000'000);

  std::printf(
      "Tuning DSFA for Adaptive-SpikeNet on a bursty stream.\n"
      "Pick the smallest MBsize/loosest thresholds that still meet your\n"
      "latency budget; temporal fidelity (staleness) degrades as merging\n"
      "gets more aggressive.\n\n");
  std::printf("%-8s %-10s %-14s %-14s %-8s %-8s\n", "MBsize", "MtTh[ms]",
              "latency[us]", "staleness[us]", "merge", "drops");
  for (int i = 0; i < 60; ++i) std::putchar('-');
  std::putchar('\n');

  for (const std::size_t mbsize : {1u, 2u, 4u}) {
    for (const double mtth_ms : {5.0, 20.0, 80.0}) {
      core::PipelineConfig cfg;
      cfg.use_e2sf = true;
      cfg.use_dsfa = true;
      cfg.frame_rate_hz = 30.0;
      cfg.dsfa.merge_bucket_capacity = mbsize;
      cfg.dsfa.event_buffer_size = 2 * mbsize;
      cfg.dsfa.max_time_delay_us = mtth_ms * 1000.0;
      const auto stats = core::simulate_pipeline(
          stream, spec, mapping, platform, densities, cfg);
      std::printf("%-8zu %-10.0f %-14.0f %-14.0f %-8.2f %-8zu\n", mbsize,
                  mtth_ms, stats.mean_latency_us, stats.mean_staleness_us,
                  stats.dsfa.mean_merge_factor(), stats.frames_dropped);
    }
  }
  std::printf(
      "\nrule of thumb: start with MBsize=2, MtTh ~ one frame interval, "
      "MdTh ~ 0.5; loosen until the latency target is met.\n");
  return 0;
}
