#pragma once

// Workspace: a reusable scratch arena for the compute kernels. Every
// per-call std::vector the hot paths used to allocate (im2col column
// matrices, active-site bitmaps and rank maps, tap lists) is
// owned here instead, so steady-state inference performs no scratch
// allocations: buffers grow monotonically to the high-water mark of the
// shapes they have served and are reused across layers, samples and
// run() calls. FunctionalNetwork owns one Workspace (nn::Workspace is an
// alias); batched kernels draw one ConvScratch slot per concurrent
// sample so workers never share mutable scratch.
//
// Thread-safety contract: a Workspace (and each ConvScratch slot) may be
// used by one thread at a time. Batched kernels that parallelize over
// samples must reserve slots up front via scratch(slot) — growing the
// pool is not concurrency-safe — and hand each worker its own slot.

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/tensor.hpp"

namespace evedge::sparse {

/// One non-zero input tap seen by an active output site: the offset into
/// one output channel's [Cin, k, k] weight block plus the input value.
/// Built once per sample, then reduced against every output channel.
struct GatherTap {
  std::int32_t w_offset = 0;
  float value = 0.0f;
};

/// Scratch for one kernel invocation on one sample. The `active` bitmap
/// is kept all-zero between uses (kernels restore the indices they
/// touched), so reuse costs nothing when the active set is sparse.
struct ConvScratch {
  std::vector<float> col;              ///< im2col column matrix
  std::vector<std::uint8_t> active;    ///< active-site bitmap
  std::vector<std::int32_t> sites;     ///< sorted active flat indices
  std::vector<GatherTap> taps;         ///< per-site tap lists
  std::vector<std::size_t> site_ptr;   ///< CSR-style index into taps
  /// Flat output index -> position in `sites` (the scatter-built tap
  /// construction's inverse map). Only entries for the current call's
  /// active sites are written, so it needs no clearing between calls.
  std::vector<std::int32_t> rank;
  std::vector<std::size_t> cursor;     ///< per-site fill cursor (taps build)
  // Single-pass tap staging: taps in enumeration order plus their site
  // rank, redistributed into per-site CSR order by a stable counting
  // scatter (no second enumeration pass).
  std::vector<GatherTap> tap_stage;
  std::vector<std::int32_t> tap_site;
  std::vector<float> packed_w;         ///< weights transposed [tap][oc]

  // INT8 engine scratch: quantized values live in the int8 grid
  // [-127, 127] but are stored widened to int16 so the reduction loops
  // vectorize to widening multiply-adds on commodity SIMD.
  std::vector<std::int16_t> qin;       ///< quantized input activations
  std::vector<std::int16_t> qcol;      ///< transposed int8 column matrix
  std::vector<std::int16_t> qtaps;     ///< quantized per-site tap values
  std::vector<std::int32_t> iacc;      ///< int32 accumulation planes

  /// Grows `col` to at least `size` elements and returns its data.
  [[nodiscard]] float* col_buffer(std::size_t size);
  /// Grows `active` to at least `size` zeroed flags.
  [[nodiscard]] std::uint8_t* active_buffer(std::size_t size);
  /// Grows `qin` to at least `size` elements and returns its data.
  [[nodiscard]] std::int16_t* qin_buffer(std::size_t size);
  /// Grows `qcol` to at least `size` elements and returns its data.
  [[nodiscard]] std::int16_t* qcol_buffer(std::size_t size);
  /// Grows `iacc` to at least `size` elements and returns its data.
  [[nodiscard]] std::int32_t* iacc_buffer(std::size_t size);
};

/// Scratch for the engine's tiled chain walker: the ping/pong COO window
/// carriers handed between consecutive chain layers, the dense current
/// window spiking layers integrate from, and the spike-emission staging.
/// All of it is sized to one tile's working set — that bound is the
/// whole point of tiling — and reused across tiles, layers, timesteps
/// and runs. Same one-thread-at-a-time contract as ConvScratch.
struct TileScratch {
  /// Per-sample window carriers; layer j reads carriers[(j+1) % 2] and
  /// writes carriers[j % 2] (layer 0 reads the chain input instead).
  std::array<std::vector<std::vector<CooChannel>>, 2> carriers;
  DenseTensor current_window;  ///< [N, C, win_rows, W] spiking current
  /// Spike staging for the windowed LIF pass, [sample][channel].
  std::vector<std::vector<std::vector<CooEntry>>> spike_entries;
};

/// Arena of ConvScratch slots shared across layers and inference calls.
class Workspace {
 public:
  /// Scratch slot `i` (slot 0 is the single-sample default). References
  /// are stable across later growth. Growing the pool mutates the
  /// workspace — reserve all needed slots before spawning workers.
  [[nodiscard]] ConvScratch& scratch(std::size_t slot = 0);

  /// Ensures slots [0, count) exist (pre-sizing hook for batched calls).
  void reserve_slots(std::size_t count);

  /// Keyed packed-weight slot for chained sparse execution: the engine
  /// packs each sparse-routed layer's [tap][oc] weight rows once per run
  /// under its node id and hands the span to every kernel invocation of
  /// that layer (timesteps, samples), instead of re-packing per call.
  /// References are stable until clear(). Same thread-safety contract as
  /// scratch(): grow all needed keys before spawning workers.
  [[nodiscard]] std::vector<float>& packed_slot(int key);

  [[nodiscard]] std::size_t slot_count() const noexcept {
    return pool_.size();
  }

  /// Tile scratch slot `i` (one per concurrently walked chain; the
  /// serial engine uses slot 0). Same stability/growth contract as
  /// scratch().
  [[nodiscard]] TileScratch& tile_scratch(std::size_t slot = 0);

  /// Total bytes currently retained across all slots (observability /
  /// tests; the arena never shrinks on its own).
  [[nodiscard]] std::size_t retained_bytes() const noexcept;

  /// Releases every buffer (memory-pressure hook; the next calls regrow).
  void clear() noexcept;

 private:
  // deque: slot references must survive pool growth.
  std::deque<ConvScratch> pool_;
  std::deque<TileScratch> tile_pool_;
  // node-keyed packed-weight chains (unordered_map: stable references).
  std::unordered_map<int, std::vector<float>> packed_slots_;
};

}  // namespace evedge::sparse

namespace evedge::nn {
/// The engine-facing name: FunctionalNetwork owns an nn::Workspace and
/// threads it through every kernel it invokes.
using Workspace = sparse::Workspace;
using sparse::ConvScratch;
}  // namespace evedge::nn
