#include "wire/session.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/trace.hpp"

namespace evedge::wire {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kRecvChunk = 4096;

}  // namespace

const char* to_string(ServeOutcome outcome) noexcept {
  switch (outcome) {
    case ServeOutcome::kEndOfStream: return "end-of-stream";
    case ServeOutcome::kPeerClosed: return "peer-closed";
    case ServeOutcome::kStalled: return "stalled";
  }
  return "?";
}

// ------------------------------------------------------------- sender

WireSender::WireSender(const events::EventStream& stream,
                       WireSenderConfig config, TransportFactory factory)
    : config_(std::move(config)), factory_(std::move(factory)) {
  const std::size_t per_packet =
      std::min(config_.events_per_packet, kMaxEventsPerPacket);
  const auto& events = stream.events();
  StreamHeader header;
  header.width = static_cast<std::uint16_t>(stream.geometry().width);
  header.height = static_cast<std::uint16_t>(stream.geometry().height);
  header.epoch_us = events.empty() ? 0 : events.front().t;
  header.t_end_us = events.empty() ? 0 : events.back().t;

  std::uint32_t seq = 0;
  for (std::size_t i = 0; i < events.size(); i += per_packet) {
    const std::size_t n = std::min(per_packet, events.size() - i);
    std::vector<std::uint8_t> bytes;
    encode_data(config_.session_id, seq++,
                std::span<const events::Event>(events.data() + i, n),
                bytes);
    packets_.push_back(std::move(bytes));
  }
  header.data_packets = seq;
  std::vector<std::uint8_t> eos;
  encode_eos(config_.session_id, seq, header.t_end_us, eos);
  packets_.push_back(std::move(eos));
  encode_hello(config_.session_id, header, hello_);
}

bool WireSender::serve_connection(Transport& transport,
                                  WireSendStats& stats) {
  // Handshake: hello (idempotent) then resume; the receiver answers
  // with a cumulative ack telling us where to pick up.
  if (!transport.send(hello_.data(), hello_.size())) return false;
  {
    std::vector<std::uint8_t> resume;
    encode_resume(config_.session_id,
                  sent_high_ == 0 ? kNoneAcked : sent_high_ - 1, resume);
    if (!transport.send(resume.data(), resume.size())) return false;
  }

  PacketFramer framer;  // per-connection: a reconnect frames clean
  std::uint8_t rbuf[kRecvChunk];
  const auto consume_acks = [&](std::size_t n) {
    framer.feed(rbuf, n);
    bool any = false;
    while (auto framed = framer.next()) {
      if (framed->error != PacketError::kNone ||
          framed->header.type != PacketType::kAck) {
        continue;
      }
      std::uint32_t acked = kNoneAcked;
      if (!decode_u32_payload(framed->payload, acked)) continue;
      ++stats.acks_received;
      any = true;
      const std::uint32_t new_base = acked == kNoneAcked ? 0 : acked + 1;
      if (new_base > base_) {
        base_ = new_base;
        if (next_send_ < base_) next_send_ = base_;
      }
    }
    return any;
  };

  const auto resume_deadline = Clock::now() + config_.resume_timeout;
  bool resumed = false;
  while (!resumed) {
    if (Clock::now() >= resume_deadline) return false;
    const std::ptrdiff_t n =
        transport.recv_some(rbuf, sizeof rbuf,
                            std::chrono::milliseconds(5));
    if (n < 0) return false;
    if (n > 0 && consume_acks(static_cast<std::size_t>(n))) resumed = true;
  }
  next_send_ = base_;

  const auto give_up_after =
      std::max(config_.resume_timeout, 10 * config_.rto);
  auto last_ack_rx = Clock::now();
  auto last_progress = last_ack_rx;  // base_ advance, not mere ack receipt
  auto last_rewind = last_ack_rx;
  auto last_send = last_ack_rx;
  int dup_acks = 0;  // cumulative acks since the base last moved

  while (base_ < packets_.size()) {
    // Fill the window.
    bool sent_any = false;
    while (next_send_ < packets_.size() &&
           next_send_ - base_ < config_.window) {
      const auto& bytes = packets_[next_send_];
      if (!transport.send(bytes.data(), bytes.size())) return false;
      if (next_send_ < sent_high_) {
        ++stats.retransmits;
      } else {
        ++stats.data_packets;
        sent_high_ = next_send_ + 1;
      }
      ++next_send_;
      sent_any = true;
      last_send = Clock::now();
    }

    const std::ptrdiff_t n = transport.recv_some(
        rbuf, sizeof rbuf,
        sent_any ? std::chrono::milliseconds(0)
                 : std::chrono::milliseconds(5));
    if (n < 0) return false;
    const std::uint32_t base_before = base_;
    if (n > 0 && consume_acks(static_cast<std::size_t>(n))) {
      last_ack_rx = Clock::now();
      if (base_ > base_before) {
        last_progress = last_ack_rx;
        dup_acks = 0;
      } else {
        ++dup_acks;  // receiver re-acked behind us: it is missing data
      }
    }

    const auto now = Clock::now();
    if (now - last_ack_rx > give_up_after) return false;
    // Retransmit when the *base* stalls, not when acks stop arriving:
    // heartbeat-elicited duplicate acks keep the link chatty while the
    // receiver is stuck on a gap, so an ack-receipt timer never fires.
    // Duplicate cumulative acks are the gap signal itself — rewind fast
    // on a burst of them, and on the rto as the quiet-link backstop.
    const bool rto_fired =
        now - std::max(last_progress, last_rewind) > config_.rto;
    const bool dup_fired =
        dup_acks >= 3 && now - last_rewind > config_.rto / 4;
    if (base_ < packets_.size() && next_send_ > base_ &&
        (rto_fired || dup_fired)) {
      if (dup_fired) {
        obs::Tracer::instant("wire", "wire.fast_rewind", "base",
                             static_cast<std::int64_t>(base_));
      } else {
        obs::Tracer::instant("wire", "wire.rewind", "base",
                             static_cast<std::int64_t>(base_));
      }
      next_send_ = base_;  // go-back-N: rewind to the unacked base
      last_rewind = now;
      dup_acks = 0;
    }
    if (now - last_send > config_.heartbeat_interval) {
      std::vector<std::uint8_t> hb;
      encode_heartbeat(config_.session_id,
                       sent_high_ == 0 ? kNoneAcked : sent_high_ - 1, 0,
                       hb);
      if (!transport.send(hb.data(), hb.size())) return false;
      ++stats.heartbeats;
      last_send = now;
    }
  }
  return true;
}

WireSendStats WireSender::run() {
  WireSendStats stats;
  int failures = 0;
  bool first = true;
  while (base_ < packets_.size()) {
    std::unique_ptr<Transport> transport = factory_();
    if (!transport) {
      if (++failures > config_.max_reconnects) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    if (!first) {
      ++stats.reconnects;
      obs::Tracer::instant("wire", "wire.reconnect", "base",
                           static_cast<std::int64_t>(base_));
    }
    first = false;
    const std::uint32_t before = base_;
    const bool done = serve_connection(*transport, stats);
    transport->close();
    if (done) {
      stats.completed = true;
      break;
    }
    // A connection that advanced the ack base made progress; only
    // consecutive no-progress attempts burn the reconnect budget.
    failures = base_ > before ? 0 : failures + 1;
    if (failures > config_.max_reconnects) break;
  }
  return stats;
}

// ----------------------------------------------------------- receiver

WireReceiver::WireReceiver(WireReceiverConfig config, WireSink sink)
    : config_(std::move(config)), sink_(std::move(sink)) {}

void WireReceiver::send_ack(Transport& transport) {
  std::vector<std::uint8_t> ack;
  encode_ack(session_id_for_ack_,
             next_expected_ == 0 ? kNoneAcked : next_expected_ - 1, ack);
  // Best effort: if the link is dying the next recv notices.
  (void)transport.send(ack.data(), ack.size());
  ++stats_.acks_sent;
  since_ack_ = 0;
}

void WireReceiver::accept_in_order(const PacketHeader& header,
                                   std::span<const std::uint8_t> payload) {
  if (header.type == PacketType::kEndOfStream) {
    ++stats_.packets_accepted;
    ++next_expected_;
    eos_ = true;
    if (sink_.eos) sink_.eos(stream_header_.t_end_us);
    return;
  }
  if (header.event_count == 0) {
    // Zero-length data packet: legal, consumes its seq, moves nothing —
    // in particular it must NOT touch the timestamp unwrapper (its
    // t_base is unspecified).
    ++stats_.packets_accepted;
    ++next_expected_;
    return;
  }
  const std::int64_t base = unwrapper_->unwrap(header.t_base);
  decode_scratch_.clear();
  const PacketError err = decode_events(
      payload, header.event_count, base, min_t_us_, stream_header_.width,
      stream_header_.height, decode_scratch_);
  if (err != PacketError::kNone) {
    // CRC passed but the content is invalid: the sender encoded bad
    // data, so a retransmission would be byte-identical. Quarantine the
    // packet and advance — stalling would livelock the session.
    ++stats_.rejected_packets;
    ++next_expected_;
    if (sink_.rejected) sink_.rejected(err);
    return;
  }
  ++stats_.packets_accepted;
  ++next_expected_;
  min_t_us_ = decode_scratch_.back().t;
  unwrapper_->advance(min_t_us_);
  if (sink_.events) {
    sink_.events(std::span<const events::Event>(decode_scratch_),
                 header.seq);
  }
}

void WireReceiver::drain_reorder_buffer() {
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_expected_;
       it = pending_.erase(it)) {
    accept_in_order(it->second.first,
                    std::span<const std::uint8_t>(it->second.second));
  }
}

void WireReceiver::flush_orphans() {
  for ([[maybe_unused]] auto& [seq, packet] : pending_) {
    ++stats_.rejected_packets;
    if (sink_.rejected) sink_.rejected(PacketError::kUnresolvedGap);
  }
  pending_.clear();
}

void WireReceiver::handle(const Framed& framed, Transport& transport) {
  if (framed.error != PacketError::kNone) {
    ++stats_.packets_seen;
    ++stats_.rejected_packets;
    if (framed.error == PacketError::kBadMagic) {
      // The framer skipped garbage to find the next magic — a byte-level
      // resynchronization, the health signal behind kBadMagic.
      ++stats_.resyncs;
      obs::Tracer::instant("wire", "wire.resync");
    }
    if (sink_.rejected) sink_.rejected(framed.error);
    return;
  }
  const PacketHeader& header = framed.header;
  switch (header.type) {
    case PacketType::kHello: {
      ++stats_.control_packets;
      if (have_hello_) return;  // idempotent across reconnects
      StreamHeader sh;
      if (!decode_hello(framed.payload, sh)) return;
      stream_header_ = sh;
      session_id_for_ack_ = header.session_id;
      unwrapper_ = std::make_unique<TimestampUnwrapper>(sh.epoch_us);
      min_t_us_ = sh.epoch_us;
      have_hello_ = true;
      if (sink_.hello) sink_.hello(sh);
      return;
    }
    case PacketType::kHeartbeat:
      ++stats_.control_packets;
      ++stats_.heartbeats_seen;
      // The echoed high seq reveals a tail gap while the sender idles;
      // a fresh ack resets its retransmit clock either way.
      if (header.seq != kNoneAcked && header.seq + 1 > next_expected_) {
        send_ack(transport);
      }
      return;
    case PacketType::kAck:
      ++stats_.control_packets;  // not receiver-bound traffic; ignore
      return;
    case PacketType::kResume:
      ++stats_.control_packets;
      ++stats_.resumes_served;
      send_ack(transport);
      return;
    case PacketType::kData:
    case PacketType::kEndOfStream:
      break;
  }

  ++stats_.packets_seen;
  // Rewind probe: go-back-N redelivery starts with a data seq below the
  // previously seen one. One backwards transition == one sender rewind
  // (the redelivered run then climbs again).
  if (static_cast<std::int64_t>(header.seq) < prev_data_seq_) {
    ++stats_.rewinds_seen;
    obs::Tracer::instant("wire", "wire.rewind_seen", "seq",
                         static_cast<std::int64_t>(header.seq));
  }
  prev_data_seq_ = static_cast<std::int64_t>(header.seq);
  if (!have_hello_) {
    // Data before hello: nothing to decode against. Reject without
    // consuming the seq — the sender's rewind redelivers it after the
    // hello lands.
    ++stats_.rejected_packets;
    if (sink_.rejected) sink_.rejected(PacketError::kUnresolvedGap);
    return;
  }
  if (header.seq < next_expected_ || pending_.count(header.seq) != 0) {
    ++stats_.duplicate_packets;
    // The sender clearly rewound behind us — re-ack so it fast-forwards.
    send_ack(transport);
    return;
  }
  if (header.seq == next_expected_) {
    accept_in_order(header, framed.payload);
    drain_reorder_buffer();
    ++since_ack_;
    if (eos_ || since_ack_ >= config_.ack_interval) send_ack(transport);
    return;
  }
  // Out of order: buffer inside the window, ack the gap immediately.
  if (header.seq - next_expected_ <= config_.reorder_window &&
      pending_.size() < config_.reorder_window) {
    pending_.emplace(
        header.seq,
        std::make_pair(header,
                       std::vector<std::uint8_t>(framed.payload.begin(),
                                                 framed.payload.end())));
    ++stats_.reordered_buffered;
    send_ack(transport);
    return;
  }
  ++stats_.rejected_packets;  // beyond the window: discard, ARQ recovers
  if (sink_.rejected) sink_.rejected(PacketError::kUnresolvedGap);
  send_ack(transport);
}

ServeOutcome WireReceiver::serve(Transport& transport) {
  framer_.reset();  // new byte stream: frame from a clean slate
  auto last_activity = Clock::now();
  std::uint8_t rbuf[kRecvChunk];
  while (!eos_) {
    const std::ptrdiff_t n =
        transport.recv_some(rbuf, sizeof rbuf, config_.read_timeout);
    if (n < 0) return ServeOutcome::kPeerClosed;
    if (n == 0) {
      if (Clock::now() - last_activity > config_.stall_timeout) {
        return ServeOutcome::kStalled;
      }
      continue;
    }
    last_activity = Clock::now();
    framer_.feed(rbuf, static_cast<std::size_t>(n));
    while (auto framed = framer_.next()) handle(*framed, transport);
  }
  flush_orphans();  // eos accepted: any stragglers are orphans
  return ServeOutcome::kEndOfStream;
}

void WireReceiver::linger(Transport& transport) {
  const auto deadline = Clock::now() + config_.linger_timeout;
  std::uint8_t rbuf[kRecvChunk];
  while (Clock::now() < deadline) {
    const std::ptrdiff_t n =
        transport.recv_some(rbuf, sizeof rbuf, config_.read_timeout);
    if (n < 0) return;  // peer closed: it consumed the final ack
    if (n == 0) continue;
    framer_.feed(rbuf, static_cast<std::size_t>(n));
    while (auto framed = framer_.next()) handle(*framed, transport);
  }
}

}  // namespace evedge::wire
