#pragma once

// Post-training calibration for the INT8 engine (paper §4.3 context:
// TensorRT-style deployment quantizes activations with static scales
// derived from representative data). calibrate_activations runs the
// network in FP32 over a calibration set and records each node's
// output range; build_quant_plan turns a mapper PrecisionMap plus those
// ranges into the prepared QuantPlan FunctionalNetwork executes.

#include <cstdint>
#include <span>
#include <unordered_map>

#include "nn/engine.hpp"
#include "quant/accuracy.hpp"
#include "quant/int8_kernels.hpp"
#include "quant/precision.hpp"

namespace evedge::quant {

/// Per-node activation ranges observed on FP32 runs. Keys are node ids;
/// values are the max finite |v| of that node's output over the
/// calibration set (input nodes included — their range is measured from
/// the calibration tensors themselves).
struct CalibrationTable {
  std::unordered_map<int, float> output_max_abs;

  /// Recorded range of a node's output (0 when never observed).
  [[nodiscard]] float range_of(int node_id) const noexcept {
    const auto it = output_max_abs.find(node_id);
    return it != output_max_abs.end() ? it->second : 0.0f;
  }
};

/// Runs `net` in FP32 over `samples` (which must match the network's
/// input representation, e.g. from make_validation_set) and records
/// every node's output range. Temporarily replaces the activation hook.
[[nodiscard]] CalibrationTable calibrate_activations(
    nn::FunctionalNetwork& net, std::span<const ValidationSample> samples);

/// Plan-construction policy knobs.
struct QuantPlanOptions {
  /// Opt-out of the sensor-facing guard below: when true, input layers
  /// quantize like any other layer (accuracy studies, kernel parity
  /// tests). The default keeps them FP32 — the 2-channel DAVIS input
  /// conv is im2col-transform-bound in int8 (~0.6x of FP32,
  /// BENCH_quant.json / ROADMAP), so quantizing it costs speed for
  /// nothing.
  bool quantize_input_layer = false;
};

/// Prepares a QuantPlan from a per-node precision assignment: every
/// weight node mapped to kInt8 gets per-output-channel quantized weights
/// (snapshotted from the network's current weights) and an input
/// activation scale derived from its parent's calibrated range. Throws
/// when a needed input range was never observed (stale or foreign
/// calibration table). kFp32 and kFp16 assignments are ignored (fp16 is
/// storage-only modelling — see quantizer.hpp; a real fp16 path is a
/// roadmap follow-on). Conv layers fed directly by a narrow (<= 2
/// channel) input node stay FP32 unless options.quantize_input_layer is
/// set (see QuantPlanOptions).
[[nodiscard]] QuantPlan build_quant_plan(
    const nn::FunctionalNetwork& net, const PrecisionMap& precisions,
    const CalibrationTable& calibration, bool simulate = false,
    WeightGranularity granularity = WeightGranularity::kPerChannel,
    const QuantPlanOptions& options = {});

}  // namespace evedge::quant
