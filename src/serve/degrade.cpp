#include "serve/degrade.hpp"

#include <algorithm>
#include <stdexcept>

namespace evedge::serve {

DegradationController::DegradationController(const SloConfig& slo,
                                             FrameQueue& queue,
                                             DegradationState& state)
    : slo_(slo), queue_(queue), state_(state),
      base_policy_(queue.policy()) {
  if (slo_.high_watermark <= slo_.low_watermark) {
    throw std::invalid_argument(
        "DegradationController: high watermark must exceed low watermark");
  }
  if (slo_.enter_intervals < 1 || slo_.exit_intervals < 1) {
    throw std::invalid_argument(
        "DegradationController: hysteresis intervals must be >= 1");
  }
  if (slo_.batch_widen_factor < 1) {
    throw std::invalid_argument(
        "DegradationController: batch_widen_factor must be >= 1");
  }
}

void DegradationController::sample(double t_ms) {
  const std::size_t depth = queue_.depth();
  const double fill =
      static_cast<double>(depth) / static_cast<double>(queue_.capacity());
  // Latency trigger: active only with a probe attached AND a positive
  // threshold AND at least a few samples in the window (a single slow
  // warmup frame must not trip the ladder).
  const bool latency_on =
      latency_probe_ != nullptr && slo_.latency_high_ms > 0.0 &&
      latency_probe_->count() >= 4;
  const double p99_ms =
      latency_on ? latency_probe_->percentile_us(0.99) / 1e3 : 0.0;
  const double latency_low = slo_.latency_low_ms > 0.0
                                 ? slo_.latency_low_ms
                                 : slo_.latency_high_ms / 2.0;

  const bool high =
      fill >= slo_.high_watermark ||
      (latency_on && p99_ms >= slo_.latency_high_ms);
  const bool low = fill <= slo_.low_watermark &&
                   (!latency_on || p99_ms <= latency_low);
  if (high) {
    ++above_;
    below_ = 0;
  } else if (low) {
    ++below_;
    above_ = 0;
  } else {
    // Between the thresholds: hold the level, reset both streaks (a
    // streak must be contiguous to count as "sustained").
    above_ = 0;
    below_ = 0;
  }

  const int level = state_.level();
  if (above_ >= slo_.enter_intervals && level < slo_.max_level()) {
    move_to(t_ms, level + 1, depth, p99_ms);
    above_ = 0;
  } else if (below_ >= slo_.exit_intervals && level > kDegradeNormal) {
    move_to(t_ms, level - 1, depth, p99_ms);
    below_ = 0;
  }
}

void DegradationController::finish(double t_ms) {
  const int level = std::clamp(state_.level(), 0, 3);
  ms_at_level_[static_cast<std::size_t>(level)] +=
      std::max(0.0, t_ms - last_t_ms_);
  last_t_ms_ = t_ms;
}

void DegradationController::move_to(double t_ms, int next,
                                    std::size_t depth, double p99_ms) {
  const int level = state_.level();
  ms_at_level_[static_cast<std::size_t>(std::clamp(level, 0, 3))] +=
      std::max(0.0, t_ms - last_t_ms_);
  last_t_ms_ = t_ms;
  transitions_.push_back(
      DegradationTransition{t_ms, level, next, depth, p99_ms});
  state_.set_level(next);
  if (on_transition_) on_transition_(transitions_.back());
  max_level_reached_ = std::max(max_level_reached_, next);
  // Queue-policy side effect of rung 1: kDropOldest while degraded at
  // all, the configured baseline back at level 0. set_policy wakes any
  // producer blocked under kBlock so backpressure releases immediately.
  if (next >= kDegradeDropOldest && slo_.allow_drop_oldest) {
    queue_.set_policy(OverflowPolicy::kDropOldest);
  } else if (next == kDegradeNormal) {
    queue_.set_policy(base_policy_);
  }
}

}  // namespace evedge::serve
