#pragma once

// StreamIngress: the per-stream front half of the online pipeline
// (Fig. 4), run concurrently for N cameras. Each instance walks one
// EventStream on its own thread: grayscale-clock intervals are sliced
// and E2SF-binned, the resulting sparse frames staged through a
// per-stream DSFA, and every dispatched merged frame enqueued into the
// shared FrameQueue as a ReadyFrame carrying the stream id, per-stream
// dispatch index, and DSFA's live density signal (the planner-drift
// input downstream).
//
// Ingest order is deterministic per stream — collect_frames() runs the
// identical E2SF+DSFA pipeline without a queue, and the serial baseline
// and parity tests consume its output, so (stream_id, seq) keys line up
// exactly between concurrent serving and per-stream serial execution.

#include <cstdint>
#include <vector>

#include "core/dsfa.hpp"
#include "core/e2sf.hpp"
#include "events/event_stream.hpp"
#include "serve/frame_queue.hpp"
#include "serve/serve_stats.hpp"

namespace evedge::serve {

struct IngressConfig {
  core::E2sfConfig e2sf{};
  core::DsfaConfig dsfa{};
  double frame_rate_hz = 30.0;  ///< grayscale (APS) frame clock
  /// Real-time pacing: 0 = open loop (push as fast as produced —
  /// saturation benchmarking); otherwise the stream is replayed at
  /// `pace_speedup` x real time (1 = sensor-faithful arrival times).
  double pace_speedup = 0.0;
};

class StreamIngress {
 public:
  /// The stream and queue must outlive the ingress. `stream_id` tags
  /// every enqueued frame.
  StreamIngress(int stream_id, const events::EventStream& stream,
                IngressConfig config, FrameQueue& queue);

  /// Runs the stream to completion (call on a dedicated thread): E2SF ->
  /// DSFA -> queue. Returns when every dispatched frame was enqueued (or
  /// the queue closed early). Single-shot.
  void run();

  /// Per-stream accounting, valid after run() returns.
  [[nodiscard]] const StreamServeStats& stats() const noexcept {
    return stats_;
  }

  /// The merged frames this stream dispatches, in dispatch order — the
  /// same E2SF+DSFA pipeline run offline (no queue, no threads). Serial
  /// baselines and parity checks consume this; element i corresponds to
  /// ReadyFrame seq i.
  [[nodiscard]] static std::vector<sparse::SparseFrame> collect_frames(
      const events::EventStream& stream, const IngressConfig& config);

 private:
  int stream_id_;
  const events::EventStream& stream_;
  IngressConfig config_;
  FrameQueue& queue_;
  StreamServeStats stats_;
};

}  // namespace evedge::serve
