// Hostile-network soak for the wire ingress path: each stream is
// recorded to disk, decoded back through the replay harness (recorder
// round-trip in the loop), then served over a real loopback TCP session
// through a NetFaultProxy whose seeded plan enables EVERY network fault
// type — drops, corruption, truncation, reordering, delays, and a
// mid-stream disconnect with reconnect-resume. The process exits
// non-zero unless
//
//   - every sender completes (end-of-stream acked despite the faults),
//   - the extended accounting invariant holds exactly: the frame ledger
//     (enqueued == completed + dropped + shed + failed) AND the packet
//     partition (seen == accepted + rejected + duplicates) per stream,
//   - every scheduled fault type actually fired,
//   - reconnect-resume lost zero acked frames: every (stream, seq)
//     output is bitwise identical to serial in-process execution of the
//     same frames (run_serial),
//   - the same fault seed reproduces the same per-stream frame ledger
//     and fired-fault totals on a second run.
//
// This is the wire-hardening gate CI runs (build-and-test and the
// ASan+UBSan job both execute it); bench_serve owns the fault-free
// throughput numbers. Results go to BENCH_wire_soak.json.
//
// Usage: bench_wire_soak [output.json] [seed]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "nn/zoo.hpp"
#include "serve/serving_runtime.hpp"
#include "sparse/tensor.hpp"
#include "wire/net_fault_proxy.hpp"
#include "wire/recorder.hpp"
#include "wire/session.hpp"
#include "wire/transport.hpp"

namespace ee = evedge::events;
namespace en = evedge::nn;
namespace es = evedge::sparse;
namespace ev = evedge::serve;
namespace ew = evedge::wire;

using namespace std::chrono_literals;

namespace {

constexpr int kStreams = 2;
constexpr int kWorkers = 2;
constexpr ee::TimeUs kDuration = 300'000;

[[nodiscard]] ee::EventStream make_stream(int h, int w, std::uint64_t seed) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{w, h};
  cfg.seed = seed;
  cfg.blob_count = 4;
  cfg.background_weight = 0.3;
  const ee::DensityProfile profile("wire-soak", 3.2, {}, 1.2, 0.5);
  return ee::PoissonEventSynthesizer(profile, cfg).generate(0, kDuration);
}

/// The deterministic per-stream ledger: the fault plan only delays or
/// retransmits — ARQ means nothing is lost — so the dispatch and
/// completion counts must be identical run to run. Rejected/duplicate
/// packet counts are NOT compared: how many bytes a truncation mangles
/// before the rewind depends on heartbeat interleaving on the byte
/// stream (the partition invariant still ties them together).
struct StreamAccount {
  std::size_t enqueued = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;

  friend bool operator==(const StreamAccount&,
                         const StreamAccount&) = default;
};

struct SoakRun {
  ev::ServeReport report;
  std::vector<ew::WireSendStats> senders;
  ew::NetFaultCounts faults;
};

[[nodiscard]] std::vector<StreamAccount> accounts_of(
    const ev::ServeReport& report) {
  std::vector<StreamAccount> accounts;
  accounts.reserve(report.streams.size());
  for (const ev::StreamServeStats& s : report.streams) {
    accounts.push_back(StreamAccount{s.enqueued, s.completed, s.failed});
  }
  return accounts;
}

/// One full soak pass: every stream gets its own listener, fault
/// injector (all six types, seeded from `seed` + stream id), and ARQ
/// sender thread serving the decoded recording.
[[nodiscard]] SoakRun run_soak(
    ev::ServingRuntime& runtime,
    const std::vector<ee::EventStream>& streams, std::uint64_t seed) {
  std::vector<std::unique_ptr<ew::TcpListener>> listeners;
  std::vector<ev::TransportAcceptor> acceptors;
  for (int s = 0; s < kStreams; ++s) {
    listeners.push_back(std::make_unique<ew::TcpListener>());
    ew::TcpListener* l = listeners.back().get();
    acceptors.push_back([l](std::chrono::milliseconds timeout) {
      return l->accept(timeout);
    });
  }

  std::vector<std::shared_ptr<ew::NetFaultInjector>> injectors;
  std::vector<std::thread> senders;
  std::vector<ew::WireSendStats> send_stats(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    const auto& stream = streams[static_cast<std::size_t>(s)];
    // Pack ~32 data packets regardless of the synthesized event count
    // so every seeded fault site (seq < 16) is guaranteed to exist.
    const std::size_t per_packet = std::min(
        ew::kMaxEventsPerPacket,
        std::max<std::size_t>(1, stream.events().size() / 32));

    ew::NetFaultPlanOptions opts;
    opts.session_id = static_cast<std::uint32_t>(s + 1);
    opts.packets_hint = 16;
    opts.drops = 2;
    opts.corrupts = 2;
    opts.truncates = 2;
    opts.reorders = 2;
    opts.delays = 2;
    opts.delay_ms = 5.0;
    opts.disconnects = 1;
    injectors.push_back(std::make_shared<ew::NetFaultInjector>(
        ew::NetFaultPlan::seeded(seed + static_cast<std::uint64_t>(s),
                                 opts)));

    const std::uint16_t port = listeners[static_cast<std::size_t>(s)]->port();
    const auto injector = injectors.back();
    senders.emplace_back([&stream, &send_stats, s, port, per_packet,
                          injector] {
      ew::WireSenderConfig cfg;
      cfg.session_id = static_cast<std::uint32_t>(s + 1);
      cfg.events_per_packet = per_packet;
      ew::WireSender sender(
          stream, cfg, [port, injector]() -> std::unique_ptr<ew::Transport> {
            auto inner = ew::TcpTransport::connect(port, 2000ms);
            if (!inner) return nullptr;
            return std::make_unique<ew::NetFaultProxy>(std::move(inner),
                                                       injector);
          });
      send_stats[static_cast<std::size_t>(s)] = sender.run();
    });
  }

  SoakRun run;
  run.report = runtime.run_wire(acceptors);
  for (std::thread& t : senders) t.join();
  run.senders = std::move(send_stats);
  for (const auto& injector : injectors) {
    const ew::NetFaultCounts c = injector->counts();
    run.faults.drops += c.drops;
    run.faults.corrupts += c.corrupts;
    run.faults.truncates += c.truncates;
    run.faults.reorders += c.reorders;
    run.faults.delays += c.delays;
    run.faults.disconnects += c.disconnects;
  }
  return run;
}

[[nodiscard]] bool write_json(const SoakRun& run, std::uint64_t seed,
                              bool reproduced, bool parity_ok,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::size_t reconnects = 0;
  std::size_t retransmits = 0;
  for (const ew::WireSendStats& s : run.senders) {
    reconnects += s.reconnects;
    retransmits += s.retransmits;
  }
  std::fprintf(
      f,
      "{\n  \"seed\": %llu,\n  \"streams\": %d,\n  \"workers\": %d,\n"
      "  \"accounting_ok\": %s,\n  \"parity_ok\": %s,\n"
      "  \"reproduced\": %s,\n"
      "  \"frames_completed\": %zu,\n  \"frames_failed\": %zu,\n"
      "  \"rejected_packets\": %zu,\n  \"duplicate_packets\": %zu,\n"
      "  \"wire_resumes\": %zu,\n  \"sender_reconnects\": %zu,\n"
      "  \"sender_retransmits\": %zu,\n"
      "  \"faults\": {\"drops\": %zu, \"corrupts\": %zu, "
      "\"truncates\": %zu, \"reorders\": %zu, \"delays\": %zu, "
      "\"disconnects\": %zu}\n}\n",
      static_cast<unsigned long long>(seed), kStreams, kWorkers,
      run.report.accounting_ok() ? "true" : "false",
      parity_ok ? "true" : "false", reproduced ? "true" : "false",
      run.report.frames_completed, run.report.frames_failed,
      run.report.rejected_packets, run.report.duplicate_packets,
      run.report.wire_resumes, reconnects, retransmits, run.faults.drops,
      run.faults.corrupts, run.faults.truncates, run.faults.reorders,
      run.faults.delays, run.faults.disconnects);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_wire_soak.json";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20240808ull;

  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;

  // Record each synthesized stream to disk and serve the DECODED
  // recording, so the recorder/replayer round-trip is inside the gated
  // loop, not just unit-tested.
  std::vector<ee::EventStream> streams;
  streams.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    const ee::EventStream synth = make_stream(
        shape.h, shape.w, seed + 100 + static_cast<std::uint64_t>(s));
    const std::string rec_path =
        out_path + ".stream" + std::to_string(s) + ".evw";
    try {
      ew::record_stream(synth, rec_path);
      const ew::StreamReplayer replayer(rec_path);
      streams.push_back(replayer.decode());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "SOAK FAILED: record/replay round trip: %s\n",
                   e.what());
      return 1;
    }
    std::remove(rec_path.c_str());
    if (streams.back().events().size() != synth.events().size()) {
      std::fprintf(stderr,
                   "SOAK FAILED: recording of stream %d decoded to %zu "
                   "events, expected %zu\n",
                   s, streams.back().events().size(),
                   synth.events().size());
      return 1;
    }
  }

  ev::ServeConfig config;
  config.n_workers = kWorkers;
  config.kernel_threads = 1;
  config.queue_capacity = 64;
  config.overflow = ev::OverflowPolicy::kBlock;
  config.worker.collator.max_batch = 4;
  config.capture_outputs = true;
  ev::ServingRuntime runtime(spec, 7, config);

  std::printf("wire soak: %d streams over loopback TCP, %d workers, "
              "seed %llu, all six network fault types per stream\n",
              kStreams, kWorkers, static_cast<unsigned long long>(seed));

  bool ok = true;
  SoakRun first;
  try {
    first = run_soak(runtime, streams, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "SOAK FAILED: run_wire threw: %s\n", e.what());
    return 1;
  }
  std::printf("%s", first.report.describe().c_str());

  for (int s = 0; s < kStreams; ++s) {
    if (!first.senders[static_cast<std::size_t>(s)].completed) {
      std::fprintf(stderr,
                   "SOAK FAILED: sender %d did not complete (end-of-"
                   "stream never acked)\n", s);
      ok = false;
    }
  }
  if (!first.report.accounting_ok()) {
    std::fprintf(stderr,
                 "SOAK FAILED: extended accounting invariant violated "
                 "(frame ledger or packet partition inexact)\n");
    ok = false;
  }
  if (first.faults.drops == 0 || first.faults.corrupts == 0 ||
      first.faults.truncates == 0 || first.faults.reorders == 0 ||
      first.faults.delays == 0 || first.faults.disconnects == 0) {
    std::fprintf(stderr,
                 "SOAK FAILED: not every network fault type fired "
                 "(drops %zu, corrupts %zu, truncates %zu, reorders %zu, "
                 "delays %zu, disconnects %zu)\n",
                 first.faults.drops, first.faults.corrupts,
                 first.faults.truncates, first.faults.reorders,
                 first.faults.delays, first.faults.disconnects);
    ok = false;
  }
  if (first.report.rejected_packets == 0) {
    std::fprintf(stderr,
                 "SOAK FAILED: corruption/truncation fired but nothing "
                 "landed in the rejected_packets lane\n");
    ok = false;
  }

  // Zero acked frames lost, bitwise: ARQ + resume must deliver every
  // frame, identical to serial in-process execution.
  bool parity_ok = true;
  std::vector<std::vector<es::SparseFrame>> frames;
  std::size_t expected = 0;
  for (const ee::EventStream& stream : streams) {
    frames.push_back(ev::ServingRuntime::ingest(stream, config.ingress));
    expected += frames.back().size();
  }
  if (first.report.frames_completed != expected) {
    std::fprintf(stderr,
                 "SOAK FAILED: %zu frames completed, expected %zu — "
                 "frames were lost despite ARQ + resume\n",
                 first.report.frames_completed, expected);
    parity_ok = false;
  } else {
    const auto serial = runtime.run_serial(frames, true);
    for (int s = 0; s < kStreams && parity_ok; ++s) {
      const auto& per_stream = frames[static_cast<std::size_t>(s)];
      for (std::size_t i = 0; i < per_stream.size(); ++i) {
        const es::DenseTensor* served =
            runtime.output(s, static_cast<std::int64_t>(i));
        if (served == nullptr ||
            es::max_abs_diff(
                *served,
                serial.outputs[static_cast<std::size_t>(s)][i]) != 0.0f) {
          std::fprintf(stderr,
                       "SOAK FAILED: stream %d seq %zu diverges from "
                       "run_serial%s\n",
                       s, i, served == nullptr ? " (missing)" : "");
          parity_ok = false;
          break;
        }
      }
    }
  }
  ok = ok && parity_ok;

  // Same seed, same streams: the frame ledger and the fired-fault
  // totals must reproduce exactly.
  bool reproduced = true;
  try {
    const SoakRun second = run_soak(runtime, streams, seed);
    if (!second.report.accounting_ok()) {
      std::fprintf(stderr,
                   "SOAK FAILED: second run broke the accounting "
                   "invariant\n");
      ok = false;
    }
    reproduced =
        accounts_of(first.report) == accounts_of(second.report) &&
        first.faults.drops == second.faults.drops &&
        first.faults.corrupts == second.faults.corrupts &&
        first.faults.truncates == second.faults.truncates &&
        first.faults.reorders == second.faults.reorders &&
        first.faults.delays == second.faults.delays &&
        first.faults.disconnects == second.faults.disconnects;
    if (!reproduced) {
      std::fprintf(stderr,
                   "SOAK FAILED: same seed did not reproduce the same "
                   "per-stream ledger / fault totals\n");
      ok = false;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "SOAK FAILED: second run threw: %s\n", e.what());
    return 1;
  }

  const bool wrote = write_json(first, seed, reproduced, parity_ok, out_path);
  if (ok && wrote) {
    std::printf("wire soak OK: all six fault types fired, accounting "
                "exact, bitwise parity with run_serial, reproducible "
                "from seed %llu\n",
                static_cast<unsigned long long>(seed));
    return 0;
  }
  return 1;
}
