#pragma once

// Task metrics in the units the paper reports (Table 2): average endpoint
// error (AEE) for optical flow, mean IoU for segmentation/tracking and
// average relative error for depth. Each metric compares a network output
// against a reference output of the same shape.

#include "nn/graph.hpp"
#include "sparse/tensor.hpp"

namespace evedge::quant {

/// Average endpoint error between two [*, 2, H, W] flow fields:
/// mean over pixels of || (u,v) - (u_ref, v_ref) ||_2.
[[nodiscard]] double average_endpoint_error(const sparse::DenseTensor& flow,
                                            const sparse::DenseTensor& ref);

/// Mean intersection-over-union between per-pixel argmax maps of two
/// [*, C, H, W] class-score tensors (C >= 2), averaged over classes that
/// appear in either map.
[[nodiscard]] double mean_iou(const sparse::DenseTensor& scores,
                              const sparse::DenseTensor& ref);

/// Mean absolute relative depth error between [*, 1, H, W] depth maps:
/// mean(|d - d_ref| / max(|d_ref|, eps)).
[[nodiscard]] double mean_depth_error(const sparse::DenseTensor& depth,
                                      const sparse::DenseTensor& ref,
                                      double eps = 1e-3);

/// IoU of thresholded objectness maps ([*, 1, H, W]); the DOTIE tracking
/// metric. Sites above `threshold` count as object.
[[nodiscard]] double objectness_iou(const sparse::DenseTensor& map,
                                    const sparse::DenseTensor& ref,
                                    float threshold = 0.25f);

/// Task-metric *degradation* of `output` w.r.t. `reference`, expressed so
/// that larger is always worse (paper Eq. 2's ||A_base - A_search||):
///  - flow:  AEE(output, reference)              [pixels]
///  - seg:   1 - mIoU(output, reference)         [fraction]
///  - depth: mean relative error                 [fraction]
///  - track: 1 - IoU                             [fraction]
[[nodiscard]] double metric_degradation(nn::TaskKind task,
                                        const sparse::DenseTensor& output,
                                        const sparse::DenseTensor& reference);

/// Paper Table 2 baseline metric value for anchoring reports.
struct PaperBaseline {
  double value = 0.0;
  bool lower_is_better = true;
  const char* metric_name = "";
};

[[nodiscard]] PaperBaseline paper_baseline(nn::TaskKind task,
                                           const std::string& network_name);

}  // namespace evedge::quant
