#pragma once

// The Ev-Edge event-native wire protocol (EVWP): a compact binary AER
// packet format for streaming event-camera data over lossy transports.
//
// Every packet is a fixed 24-byte little-endian header plus a
// type-dependent payload:
//
//   offset size field
//   0      4    magic "EVWP"
//   4      1    version (1)
//   5      1    type (hello / data / end-of-stream / heartbeat / ack /
//               resume)
//   6      2    event_count (data packets; 0 otherwise)
//   8      4    session_id
//   12     4    seq (data/end-of-stream packets consume consecutive
//               sequence numbers starting at 0; see session.hpp)
//   16     4    t_base (low 32 bits of the packet reference timestamp,
//               microseconds — the wire carries 32-bit wrapping time)
//   20     4    crc (CRC-32 over header bytes [0, 20) ++ payload)
//
// Data payload packs one event in 8 bytes:
//
//   u16 x | u16 (polarity << 15 | y) | u32 dt
//
// where dt is the microsecond offset from the packet's (unwrapped)
// t_base; offsets are non-decreasing within a packet. Timestamps on the
// wire are 32-bit and wrap every ~71.6 minutes; the receiver unwraps
// them onto the monotone 64-bit timeline via TimestampUnwrapper, seeded
// by the hello packet's full 64-bit epoch. The end-of-stream packet is
// an explicit marker (consuming the final sequence number) so a clean
// stream end is distinguishable from a dead peer.
//
// PacketFramer turns a raw byte stream into packets, resynchronizing on
// the magic after garbage, truncated packets or CRC failures — a
// hostile byte stream yields a deterministic sequence of rejected
// packets, never a crash or a stuck framer. Decoded views are
// zero-copy: payload spans point into the framer's buffer.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "events/event.hpp"

namespace evedge::wire {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
inline constexpr std::size_t kEventBytes = 8;
/// Data packets carry at most this many events (bounds the framing
/// buffer and the damage any one lost packet can do).
inline constexpr std::size_t kMaxEventsPerPacket = 512;
/// Ack sentinel: nothing received yet.
inline constexpr std::uint32_t kNoneAcked = 0xFFFFFFFFu;

enum class PacketType : std::uint8_t {
  kHello = 0,        ///< stream header: geometry + 64-bit epoch
  kData = 1,         ///< packed events
  kEndOfStream = 2,  ///< explicit clean end marker (consumes a seq)
  kHeartbeat = 3,    ///< keep-alive while the sender is idle/pacing
  kAck = 4,          ///< receiver -> sender cumulative acknowledgement
  kResume = 5,       ///< sender -> receiver reconnect handshake
};

[[nodiscard]] const char* to_string(PacketType type) noexcept;

/// Why the framer/decoder rejected a packet (or a stretch of bytes).
enum class PacketError : std::uint8_t {
  kNone = 0,
  kBadMagic,        ///< garbage bytes skipped while resynchronizing
  kBadVersion,      ///< unknown protocol version
  kBadType,         ///< unknown packet type
  kBadLength,       ///< event_count exceeds kMaxEventsPerPacket
  kBadCrc,          ///< CRC-32 mismatch (corruption or framing slip)
  kMalformedEvents, ///< payload events out of geometry / non-monotone
  kUnresolvedGap,   ///< buffered out-of-order packet orphaned at stream end
};

[[nodiscard]] const char* to_string(PacketError error) noexcept;

struct PacketHeader {
  std::uint8_t version = kWireVersion;
  PacketType type = PacketType::kData;
  std::uint16_t event_count = 0;
  std::uint32_t session_id = 0;
  std::uint32_t seq = 0;
  std::uint32_t t_base = 0;
};

/// Hello payload: everything the receiver needs to rebuild the exact
/// offline framing grid (FrameClock::spanning) and to seed timestamp
/// unwrapping. 24 bytes on the wire.
struct StreamHeader {
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  std::int64_t epoch_us = 0;  ///< full 64-bit timestamp of the first event
  std::int64_t t_end_us = 0;  ///< full 64-bit timestamp of the last event
  std::uint32_t data_packets = 0;  ///< total data packets (0 = unknown/live)

  friend bool operator==(const StreamHeader&,
                         const StreamHeader&) = default;
};

/// One framed packet: when `error` is kNone the header and payload view
/// are valid (payload points into the framer's buffer — valid until the
/// next feed()); otherwise this records a rejection.
struct Framed {
  PacketError error = PacketError::kNone;
  PacketHeader header{};
  std::span<const std::uint8_t> payload{};
};

// ----------------------------------------------------------- encoding

/// Appends a hello packet to `out`.
void encode_hello(std::uint32_t session_id, const StreamHeader& header,
                  std::vector<std::uint8_t>& out);

/// Appends a data packet holding `events` (size <= kMaxEventsPerPacket,
/// non-decreasing timestamps spanning < 2^32 us, y < 2^15 — throws
/// std::invalid_argument otherwise). t_base is the first event's
/// timestamp truncated to 32 bits.
void encode_data(std::uint32_t session_id, std::uint32_t seq,
                 std::span<const events::Event> events,
                 std::vector<std::uint8_t>& out);

/// Appends an end-of-stream marker consuming `seq`.
void encode_eos(std::uint32_t session_id, std::uint32_t seq,
                std::int64_t t_end_us, std::vector<std::uint8_t>& out);

/// Appends a heartbeat (does not consume a seq; `last_seq` echoes the
/// highest data/eos seq sent so far, kNoneAcked when none).
void encode_heartbeat(std::uint32_t session_id, std::uint32_t last_seq,
                      std::int64_t last_t_us,
                      std::vector<std::uint8_t>& out);

/// Appends a cumulative ack: every data/eos seq <= `acked` was received
/// (kNoneAcked = nothing yet).
void encode_ack(std::uint32_t session_id, std::uint32_t acked,
                std::vector<std::uint8_t>& out);

/// Appends a resume handshake: the sender reconnected and will
/// retransmit from wherever the receiver's answering ack points.
void encode_resume(std::uint32_t session_id, std::uint32_t last_sent,
                   std::vector<std::uint8_t>& out);

// ----------------------------------------------------------- decoding

/// Parses a hello payload (returns false on a size mismatch).
[[nodiscard]] bool decode_hello(std::span<const std::uint8_t> payload,
                                StreamHeader& out);

/// Parses the u32 of an ack/resume payload (returns false on size
/// mismatch).
[[nodiscard]] bool decode_u32_payload(std::span<const std::uint8_t> payload,
                                      std::uint32_t& out);

/// Decodes a data payload into `out` (appended). `base_us` is the
/// packet's unwrapped 64-bit t_base; events must be non-decreasing,
/// start at or after `min_t_us`, and lie inside width x height —
/// returns kMalformedEvents (appending nothing) otherwise.
[[nodiscard]] PacketError decode_events(
    std::span<const std::uint8_t> payload, std::uint16_t event_count,
    std::int64_t base_us, std::int64_t min_t_us, std::uint16_t width,
    std::uint16_t height, std::vector<events::Event>& out);

/// Unwraps 32-bit wire timestamps onto the monotone 64-bit timeline.
/// Forward-only: each unwrapped value is the smallest t >= the previous
/// one whose low 32 bits match the wire value, so reference points must
/// be < 2^32 us (~71.6 min) apart — trivially true for consecutive AER
/// packets.
class TimestampUnwrapper {
 public:
  explicit TimestampUnwrapper(std::int64_t epoch_us) noexcept
      : last_(epoch_us) {}

  [[nodiscard]] std::int64_t unwrap(std::uint32_t wire) noexcept {
    const std::uint32_t delta =
        wire - static_cast<std::uint32_t>(last_);
    last_ += static_cast<std::int64_t>(delta);
    return last_;
  }

  /// Advances the timeline anchor past decoded event times.
  void advance(std::int64_t t_us) noexcept {
    if (t_us > last_) last_ = t_us;
  }

  [[nodiscard]] std::int64_t last() const noexcept { return last_; }

 private:
  std::int64_t last_;
};

/// Streaming packet framer: feed() raw bytes, next() framed packets.
/// Tolerates arbitrary garbage: unknown bytes, truncated packets and
/// CRC failures surface as Framed rejections while the framer
/// resynchronizes on the next magic. next() returns std::nullopt when
/// more bytes are needed.
class PacketFramer {
 public:
  void feed(const void* data, std::size_t n);

  [[nodiscard]] std::optional<Framed> next();

  /// Drops buffered bytes (a reconnect starts framing clean).
  void reset() noexcept;

  /// Bytes currently buffered but not yet consumed.
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - pos_;
  }

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
};

}  // namespace evedge::wire
