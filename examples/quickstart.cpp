// Quickstart: the complete Ev-Edge flow in ~40 lines.
//
//  1. synthesize an MVSEC-like event stream,
//  2. construct the runtime for a network (offline phase: profiling +
//     NMP mapping search run in the constructor),
//  3. process the stream (online phase: E2SF -> DSFA -> mapped
//     inference) and compare against the all-GPU dense baseline.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/runtime.hpp"
#include "events/density_profile.hpp"
#include "events/event_synth.hpp"

using namespace evedge;

int main() {
  // --- 1. A two-second indoor-flying-like event stream on a DAVIS346.
  events::SynthConfig synth;
  synth.geometry = events::davis346();
  synth.seed = 42;
  const events::EventStream stream =
      events::PoissonEventSynthesizer(
          events::DensityProfile::indoor_flying1(), synth)
          .generate(0, 2'000'000);
  std::printf("stream: %zu events over %.2f s\n", stream.size(),
              static_cast<double>(stream.duration()) / 1e6);

  // --- 2. Offline phase: build the runtime for SpikeFlowNet on a
  //        simulated Jetson Xavier AGX.
  core::EvEdgeOptions options;
  options.frame_rate_hz = 10.0;
  options.nmp.population = 16;
  options.nmp.generations = 12;
  const core::EvEdgeRuntime runtime(nn::NetworkId::kSpikeFlowNet,
                                    hw::xavier_agx(), options);
  std::printf("network: %s (%d layers: %d SNN + %d ANN)\n",
              runtime.spec().name.c_str(),
              runtime.spec().weight_layer_count(),
              runtime.spec().snn_layer_count(),
              runtime.spec().ann_layer_count());

  // --- 3. Online phase: Ev-Edge vs the all-GPU dense baseline.
  const core::PipelineStats evedge = runtime.process(stream);
  const core::PipelineStats baseline =
      runtime.process_all_gpu_baseline(stream);

  std::printf(
      "\n%-22s %14s %14s\n", "", "all-GPU dense", "Ev-Edge");
  std::printf("%-22s %11.0f us %11.0f us\n", "service / frame",
              baseline.mean_service_per_frame_us,
              evedge.mean_service_per_frame_us);
  std::printf("%-22s %11.0f us %11.0f us\n", "end-to-end latency",
              baseline.mean_latency_us, evedge.mean_latency_us);
  std::printf("%-22s %11.2f mJ %11.2f mJ\n", "energy / inference",
              baseline.energy_per_inference_mj(),
              evedge.energy_per_inference_mj());
  std::printf("\nspeedup: %.2fx latency, %.2fx energy per inference\n",
              baseline.mean_service_per_frame_us /
                  evedge.mean_service_per_frame_us,
              baseline.energy_per_inference_mj() /
                  evedge.energy_per_inference_mj());
  return 0;
}
