// Concurrent serving benchmark: aggregate throughput and tail latency of
// the multi-stream serving runtime (cross-stream micro-batching, planner
// routing, worker pool) against per-stream serial execution of the SAME
// merged frames at 1/4/8/16 streams, in the paper's 0.5-5% event-density
// band. Both sides spend the same worker budget W:
//
//   serial_dense    per-stream serial batch-1, all-dense kernels, the
//                   W threads spent INSIDE the kernels (fork-join per
//                   layer) — the repo's pre-serving status quo.
//   serial_planned  the same serial loop with the density-adaptive
//                   planner on (the strongest serial baseline).
//   serve           the serving runtime: W single-threaded workers
//                   coalescing frames across streams into batched
//                   planner-routed run_batched calls.
//
// speedup_serve (gated in CI) is serve vs serial_dense; speedup_planned
// (serve vs serial_planned) isolates what concurrency + micro-batching
// add on top of the PR-4 planner. Doubles as the serving parity smoke
// test: every (stream, seq) output must be bitwise identical to the
// serial per-stream result (drop policy disabled) — exits non-zero
// otherwise. Results go to BENCH_serve.json.
//
// Usage: bench_serve [output.json] [--json]
//
// --json: machine-readable mode — the JSON document is ALSO written to
// stdout (exactly one document, parse with any JSON reader) and the
// human tables move to stderr. The output file is still written.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "nn/zoo.hpp"
#include "serve/serving_runtime.hpp"
#include "sparse/tensor.hpp"

namespace ee = evedge::events;
namespace en = evedge::nn;
namespace es = evedge::sparse;
namespace ev = evedge::serve;

namespace {

/// Worker budget both sides spend (recorded as "threads" in the JSON;
/// constant so the regression gate compares like with like anywhere).
constexpr int kWorkers = 2;

/// Human tables land here: stdout normally, stderr under --json (stdout
/// then carries exactly one JSON document).
std::FILE* g_table = stdout;

struct Result {
  std::string network;
  int streams = 0;
  std::size_t frames = 0;
  double density = 0.0;        ///< mean merged-frame spatial density
  double serial_dense_fps = 0.0;
  double serial_planned_fps = 0.0;
  double serve_fps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
  double max_abs_diff = 0.0;   ///< serve vs serial per-stream (must be 0)

  [[nodiscard]] double speedup_serve() const {
    return serial_dense_fps > 0.0 ? serve_fps / serial_dense_fps : 0.0;
  }
  [[nodiscard]] double speedup_planned() const {
    return serial_planned_fps > 0.0 ? serve_fps / serial_planned_fps : 0.0;
  }
};

/// Paced closed-loop run: ingress replays each stream at
/// IngressConfig::pace_speedup x real time (sensor-faithful arrival
/// spacing) instead of open-loop saturation, so the steady-state
/// completion latency measures service time + queueing under the
/// OFFERED load, not under backpressure. ontime_ratio is the fraction
/// of frames completing within kPacedDeadlineMs of admission — the
/// closed-loop SLO metric the regression gate tracks.
constexpr double kPaceSpeedup = 2.0;
constexpr double kPacedDeadlineMs = 50.0;

struct PacedResult {
  std::string network;
  int streams = 0;
  std::size_t frames = 0;
  double serve_fps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double ontime_ratio = 0.0;
  double wall_ms = 0.0;
  double target_ms = 0.0;  ///< stream span / pace_speedup (ideal wall)
};

/// Stream at network-input geometry whose E2SF/DSFA output lands in the
/// paper's 0.5-5% merged-frame density band (rate tuned empirically for
/// the 30 Hz clock and default DSFA merge depth).
[[nodiscard]] ee::EventStream make_stream(int h, int w, ee::TimeUs duration,
                                          std::uint64_t seed) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{w, h};
  cfg.seed = seed;
  cfg.blob_count = 4;
  cfg.background_weight = 0.3;
  const ee::DensityProfile profile("serve-band", 3.2, {}, 1.2, 0.5);
  return ee::PoissonEventSynthesizer(profile, cfg).generate(0, duration);
}

void write_json_to(std::FILE* f, const std::vector<Result>& results,
                   const std::vector<PacedResult>& paced) {
  std::fprintf(f,
               "{\n  \"threads\": %d,\n  \"scale\": "
               "\"96x128 base16, lif_threshold_scale=2, worker budget %d, "
               "collator batch 8\",\n  \"results\": [\n",
               kWorkers, kWorkers);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"network\": \"%s\", \"streams\": %d, \"frames\": %zu, "
        "\"density\": %.4f, \"serial_dense_fps\": %.2f, "
        "\"serial_planned_fps\": %.2f, \"serve_fps\": %.2f, "
        "\"speedup_serve\": %.2f, \"speedup_planned\": %.2f, "
        "\"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f, "
        "\"mean_batch\": %.2f, \"max_abs_diff\": %.3g}%s\n",
        r.network.c_str(), r.streams, r.frames, r.density,
        r.serial_dense_fps, r.serial_planned_fps, r.serve_fps,
        r.speedup_serve(), r.speedup_planned(), r.p50_ms, r.p95_ms,
        r.p99_ms, r.mean_batch, r.max_abs_diff,
        i + 1 < results.size() || !paced.empty() ? "," : "");
  }
  for (std::size_t i = 0; i < paced.size(); ++i) {
    const PacedResult& r = paced[i];
    std::fprintf(
        f,
        "    {\"mode\": \"paced\", \"network\": \"%s\", \"streams\": %d, "
        "\"frames\": %zu, \"pace_speedup\": %.1f, \"deadline_ms\": %.1f, "
        "\"serve_fps\": %.2f, \"p50_ms\": %.2f, \"p99_ms\": %.2f, "
        "\"ontime_ratio\": %.4f, \"wall_ms\": %.1f, "
        "\"target_ms\": %.1f}%s\n",
        r.network.c_str(), r.streams, r.frames, kPaceSpeedup,
        kPacedDeadlineMs, r.serve_fps, r.p50_ms, r.p99_ms, r.ontime_ratio,
        r.wall_ms, r.target_ms, i + 1 < paced.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

[[nodiscard]] bool write_json(const std::vector<Result>& results,
                              const std::vector<PacedResult>& paced,
                              const std::string& path, bool echo_stdout) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  write_json_to(f, results, paced);
  std::fclose(f);
  std::fprintf(g_table, "\nwrote %s\n", path.c_str());
  if (echo_stdout) write_json_to(stdout, results, paced);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  bool json_stdout = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json_stdout = true;
    } else {
      out_path = argv[i];
    }
  }
  if (json_stdout) g_table = stderr;
  // Mid scale in the paper's spiking band (see bench_sparse_engine):
  // large enough that the planner's sparse routes engage, small enough
  // for a bounded CI run at 16 streams.
  const en::ZooConfig scale{96, 128, 16, 5, 2.0f};
  const en::NetworkId nets[] = {en::NetworkId::kDotie,
                                en::NetworkId::kAdaptiveSpikeNet};
  const int stream_counts[] = {1, 4, 8, 16};
  constexpr ee::TimeUs kDuration = 250'000;  // ~7 merged frames per stream

  std::fprintf(g_table, "serving runtime benchmark (worker budget %d)\n", kWorkers);
  std::fprintf(g_table, "%-18s %7s %7s %8s %9s %9s %9s %8s %8s %7s %7s %12s\n",
              "network", "streams", "frames", "density", "dense_fps",
              "plan_fps", "serve_fps", "speedup", "vs_plan", "p95_ms",
              "batch", "max_abs_diff");

  std::vector<Result> results;
  bool parity_ok = true;
  for (const en::NetworkId id : nets) {
    const en::NetworkSpec spec = en::build_network(id, scale);
    const auto shape =
        spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;

    ev::ServeConfig config;
    config.n_workers = kWorkers;
    config.kernel_threads = 1;  // budget goes to stream-level workers
    config.queue_capacity = 64;
    config.overflow = ev::OverflowPolicy::kBlock;  // lossless: parity run
    config.worker.collator.max_batch = 8;
    config.worker.collator.max_wait_us = 3000;
    // Timed runtime serves without output capture (the capture copy is
    // accounting, not serving work); the parity runtime re-serves the
    // same streams capturing every output for the bitwise check. Both
    // share the weight seed, so their networks are identical.
    ev::ServingRuntime runtime(spec, 7, config);
    config.capture_outputs = true;
    ev::ServingRuntime parity_runtime(spec, 7, config);

    for (const int n_streams : stream_counts) {
      std::vector<ee::EventStream> streams;
      std::vector<std::vector<es::SparseFrame>> frames;
      Result r;
      r.network = spec.name;
      r.streams = n_streams;
      for (int s = 0; s < n_streams; ++s) {
        streams.push_back(make_stream(
            shape.h, shape.w, kDuration,
            100 + static_cast<std::uint64_t>(s)));
        frames.push_back(
            ev::ServingRuntime::ingest(streams.back(), config.ingress));
        r.frames += frames.back().size();
        for (const es::SparseFrame& frame : frames.back()) {
          r.density += frame.density();
        }
      }
      r.density /= static_cast<double>(r.frames);

      // Per-stream serial baselines at the same thread budget: the W
      // threads go INTO the kernels here, into the worker pool below.
      const int prev = evedge::core::set_parallel_threads(kWorkers);
      const auto serial_dense = runtime.run_serial(frames, false);
      const auto serial_planned = runtime.run_serial(frames, true);
      evedge::core::set_parallel_threads(prev);
      r.serial_dense_fps = serial_dense.frames_per_second();
      r.serial_planned_fps = serial_planned.frames_per_second();

      const ev::ServeReport report = runtime.run(streams);
      r.serve_fps = report.frames_per_second();
      r.p50_ms = report.percentile_us(0.50) / 1e3;
      r.p95_ms = report.percentile_us(0.95) / 1e3;
      r.p99_ms = report.percentile_us(0.99) / 1e3;
      r.mean_batch = report.mean_batch();

      // Parity: every (stream, seq) must bit-match the serial result.
      const ev::ServeReport parity_report = parity_runtime.run(streams);
      for (std::size_t s = 0; s < frames.size(); ++s) {
        for (std::size_t i = 0; i < frames[s].size(); ++i) {
          const es::DenseTensor* served = parity_runtime.output(
              static_cast<int>(s), static_cast<std::int64_t>(i));
          if (served == nullptr) {
            r.max_abs_diff = 1e30;  // lost frame under the block policy
            continue;
          }
          r.max_abs_diff = std::max(
              r.max_abs_diff,
              static_cast<double>(es::max_abs_diff(
                  *served, serial_planned.outputs[s][i])));
        }
      }
      if (r.max_abs_diff != 0.0 || report.frames_completed != r.frames ||
          parity_report.frames_completed != r.frames) {
        parity_ok = false;
      }

      std::fprintf(g_table, 
          "%-18s %7d %7zu %8.4f %9.1f %9.1f %9.1f %7.2fx %7.2fx %7.1f "
          "%7.2f %12.3g\n",
          r.network.c_str(), r.streams, r.frames, r.density,
          r.serial_dense_fps, r.serial_planned_fps, r.serve_fps,
          r.speedup_serve(), r.speedup_planned(), r.p95_ms, r.mean_batch,
          r.max_abs_diff);
      std::fflush(g_table);
      results.push_back(std::move(r));
    }
  }

  // Paced closed-loop runs: the same serving stack, but ingress honors
  // IngressConfig::pace_speedup — frames arrive on the sensor clock
  // compressed kPaceSpeedup x, and the steady-state question becomes
  // "does every frame complete within the wall deadline", not "how
  // fast can the pipeline drain". Gated via ontime_ratio.
  std::vector<PacedResult> paced;
  std::fprintf(g_table, "\npaced closed-loop (pace %.0fx, deadline %.0f ms)\n",
              kPaceSpeedup, kPacedDeadlineMs);
  std::fprintf(g_table, "%-18s %7s %7s %9s %7s %7s %8s %8s %9s\n", "network",
              "streams", "frames", "serve_fps", "p50_ms", "p99_ms",
              "ontime", "wall_ms", "target_ms");
  // Only the fast network: a net whose single-frame service time
  // already exceeds the deadline pins ontime_ratio at 0.0 — a baseline
  // that gates nothing. Throughput coverage for the heavy nets lives in
  // the speedup_serve records above.
  for (const en::NetworkId id : {en::NetworkId::kDotie}) {
    const en::NetworkSpec spec = en::build_network(id, scale);
    const auto shape =
        spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;

    ev::ServeConfig config;
    config.n_workers = kWorkers;
    config.kernel_threads = 1;
    config.queue_capacity = 64;
    config.overflow = ev::OverflowPolicy::kBlock;
    config.worker.collator.max_batch = 8;
    // Paced arrivals are sparse in time: don't hold a lane open waiting
    // for cross-stream companions much longer than the service time.
    config.worker.collator.max_wait_us = 3000;
    config.ingress.pace_speedup = kPaceSpeedup;
    ev::ServingRuntime runtime(spec, 7, config);

    for (const int n_streams : {4, 8}) {
      std::vector<ee::EventStream> streams;
      PacedResult r;
      r.network = spec.name;
      r.streams = n_streams;
      for (int s = 0; s < n_streams; ++s) {
        streams.push_back(make_stream(shape.h, shape.w, kDuration,
                                      100 + static_cast<std::uint64_t>(s)));
      }
      const ev::ServeReport report = runtime.run(streams);
      r.frames = report.frames_completed;
      r.serve_fps = report.frames_per_second();
      r.p50_ms = report.percentile_us(0.50) / 1e3;
      r.p99_ms = report.percentile_us(0.99) / 1e3;
      r.ontime_ratio = report.fraction_below_us(kPacedDeadlineMs * 1e3);
      r.wall_ms = report.wall_ms;
      r.target_ms =
          static_cast<double>(kDuration) / 1e3 / kPaceSpeedup;
      if (!report.accounting_ok()) parity_ok = false;
      std::fprintf(g_table, "%-18s %7d %7zu %9.1f %7.2f %7.2f %8.4f %8.1f %9.1f\n",
                  r.network.c_str(), r.streams, r.frames, r.serve_fps,
                  r.p50_ms, r.p99_ms, r.ontime_ratio, r.wall_ms,
                  r.target_ms);
      std::fflush(g_table);
      paced.push_back(std::move(r));
    }
  }

  const bool wrote = write_json(results, paced, out_path, json_stdout);
  if (!parity_ok) {
    std::fprintf(stderr,
                 "parity failure: serving output diverged from per-stream "
                 "serial execution (see table)\n");
    return 1;
  }
  return wrote ? 0 : 1;
}
