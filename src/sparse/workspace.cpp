#include "sparse/workspace.hpp"

namespace evedge::sparse {

float* ConvScratch::col_buffer(std::size_t size) {
  if (col.size() < size) col.resize(size);
  return col.data();
}

std::uint8_t* ConvScratch::active_buffer(std::size_t size) {
  if (active.size() < size) active.resize(size, 0);
  return active.data();
}

std::int16_t* ConvScratch::qin_buffer(std::size_t size) {
  if (qin.size() < size) qin.resize(size);
  return qin.data();
}

std::int16_t* ConvScratch::qcol_buffer(std::size_t size) {
  if (qcol.size() < size) qcol.resize(size);
  return qcol.data();
}

std::int32_t* ConvScratch::iacc_buffer(std::size_t size) {
  if (iacc.size() < size) iacc.resize(size);
  return iacc.data();
}

ConvScratch& Workspace::scratch(std::size_t slot) {
  reserve_slots(slot + 1);
  return pool_[slot];
}

void Workspace::reserve_slots(std::size_t count) {
  while (pool_.size() < count) pool_.emplace_back();
}

std::vector<float>& Workspace::packed_slot(int key) {
  return packed_slots_[key];
}

TileScratch& Workspace::tile_scratch(std::size_t slot) {
  while (tile_pool_.size() < slot + 1) tile_pool_.emplace_back();
  return tile_pool_[slot];
}

std::size_t Workspace::retained_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& [key, packed] : packed_slots_) {
    bytes += packed.capacity() * sizeof(float);
  }
  for (const ConvScratch& s : pool_) {
    bytes += s.col.capacity() * sizeof(float);
    bytes += s.active.capacity() * sizeof(std::uint8_t);
    bytes += s.sites.capacity() * sizeof(std::int32_t);
    bytes += s.taps.capacity() * sizeof(GatherTap);
    bytes += s.site_ptr.capacity() * sizeof(std::size_t);
    bytes += s.rank.capacity() * sizeof(std::int32_t);
    bytes += s.cursor.capacity() * sizeof(std::size_t);
    bytes += s.tap_stage.capacity() * sizeof(GatherTap);
    bytes += s.tap_site.capacity() * sizeof(std::int32_t);
    bytes += s.packed_w.capacity() * sizeof(float);
    bytes += s.qin.capacity() * sizeof(std::int16_t);
    bytes += s.qcol.capacity() * sizeof(std::int16_t);
    bytes += s.qtaps.capacity() * sizeof(std::int16_t);
    bytes += s.iacc.capacity() * sizeof(std::int32_t);
  }
  for (const TileScratch& t : tile_pool_) {
    for (const auto& carrier : t.carriers) {
      for (const auto& sample : carrier) {
        for (const CooChannel& ch : sample) {
          bytes += ch.entries().capacity() * sizeof(CooEntry);
        }
      }
    }
    bytes += t.current_window.data().size() * sizeof(float);
    for (const auto& sample : t.spike_entries) {
      for (const auto& entries : sample) {
        bytes += entries.capacity() * sizeof(CooEntry);
      }
    }
  }
  return bytes;
}

void Workspace::clear() noexcept {
  pool_.clear();
  tile_pool_.clear();
  packed_slots_.clear();
}

}  // namespace evedge::sparse
