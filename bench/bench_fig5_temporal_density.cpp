// Figure 5 reproduction: temporal event density of an indoor_flying2-like
// segment — the bursty arrival pattern that motivates DSFA's adaptive
// merging (static frame construction backlogs during the spikes).

#include <cstdio>

#include "bench_common.hpp"
#include "events/stats.hpp"

namespace eb = evedge::bench;
namespace ee = evedge::events;

int main() {
  eb::print_header(
      "Figure 5: temporal event density, indoor_flying2-like segment");

  const auto stream = eb::make_davis_stream(
      ee::DensityProfile::indoor_flying2(), 9'000'000, 11);
  const auto trace = ee::temporal_density_trace(stream, 100'000);
  const auto summary = ee::summarize(trace);

  std::printf("%-10s %-14s %s\n", "t [s]", "events/s", "");
  eb::print_rule();
  for (std::size_t i = 0; i < trace.size(); i += 2) {  // every 0.2 s
    const auto& w = trace[i];
    std::printf("%-10.1f %-14.0f %s\n",
                static_cast<double>(w.window_start) / 1e6,
                w.events_per_second,
                eb::bar(w.events_per_second, summary.peak_rate, 48).c_str());
  }
  eb::print_rule();
  std::printf(
      "mean rate: %.0f ev/s | peak rate: %.0f ev/s | peak/mean: %.2fx | "
      "CV: %.2f\n",
      summary.mean_rate, summary.peak_rate,
      summary.peak_rate / summary.mean_rate,
      summary.coefficient_of_variation);
  std::printf(
      "paper's Fig. 5 shape: quiet cruising separated by multi-x bursts "
      "during aggressive maneuvers.\n");
  return 0;
}
