#include "wire/net_fault_proxy.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <random>
#include <stdexcept>
#include <thread>

#include "wire/packet.hpp"

namespace evedge::wire {

namespace {

constexpr std::uint64_t site_key(std::uint32_t session_id,
                                 std::uint32_t seq) noexcept {
  return (static_cast<std::uint64_t>(session_id) << 32) | seq;
}

}  // namespace

const char* to_string(NetFaultType type) noexcept {
  switch (type) {
    case NetFaultType::kDrop: return "drop";
    case NetFaultType::kCorrupt: return "corrupt";
    case NetFaultType::kTruncate: return "truncate";
    case NetFaultType::kReorder: return "reorder";
    case NetFaultType::kDelay: return "delay";
    case NetFaultType::kDisconnect: return "disconnect";
  }
  return "?";
}

NetFaultPlan NetFaultPlan::seeded(std::uint64_t seed,
                                  const NetFaultPlanOptions& options) {
  const int total = options.drops + options.corrupts + options.truncates +
                    options.reorders + options.delays + options.disconnects;
  if (total > static_cast<int>(options.packets_hint)) {
    throw std::invalid_argument(
        "NetFaultPlan::seeded: more faults than packet sites");
  }
  NetFaultPlan plan;
  plan.seed = seed;
  std::mt19937_64 rng(seed);
  // Draw sites without replacement: shuffle the seq space once and
  // carve it into per-type slices, so each seq suffers at most one
  // fault and the plan is a pure function of (seed, options).
  std::vector<std::uint32_t> seqs(options.packets_hint);
  std::iota(seqs.begin(), seqs.end(), 0u);
  std::shuffle(seqs.begin(), seqs.end(), rng);
  std::size_t cursor = 0;
  const auto emit = [&](NetFaultType type, int count, double delay_ms) {
    for (int i = 0; i < count; ++i) {
      plan.add({type, options.session_id, seqs[cursor++], delay_ms});
    }
  };
  emit(NetFaultType::kDrop, options.drops, 0.0);
  emit(NetFaultType::kCorrupt, options.corrupts, 0.0);
  emit(NetFaultType::kTruncate, options.truncates, 0.0);
  emit(NetFaultType::kReorder, options.reorders, 0.0);
  emit(NetFaultType::kDelay, options.delays, options.delay_ms);
  emit(NetFaultType::kDisconnect, options.disconnects, 0.0);
  return plan;
}

NetFaultInjector::NetFaultInjector(NetFaultPlan plan)
    : plan_(std::move(plan)) {
  for (const NetFaultSpec& spec : plan_.specs) {
    sites_[site_key(spec.session_id, spec.seq)].specs.push_back(spec);
  }
}

std::vector<NetFaultSpec> NetFaultInjector::take(std::uint32_t session_id,
                                                 std::uint32_t seq) {
  const auto it = sites_.find(site_key(session_id, seq));
  if (it == sites_.end()) return {};
  if (it->second.fired.exchange(true, std::memory_order_acq_rel)) return {};
  return it->second.specs;
}

void NetFaultInjector::record(NetFaultType type) noexcept {
  switch (type) {
    case NetFaultType::kDrop: drops_.fetch_add(1); break;
    case NetFaultType::kCorrupt: corrupts_.fetch_add(1); break;
    case NetFaultType::kTruncate: truncates_.fetch_add(1); break;
    case NetFaultType::kReorder: reorders_.fetch_add(1); break;
    case NetFaultType::kDelay: delays_.fetch_add(1); break;
    case NetFaultType::kDisconnect: disconnects_.fetch_add(1); break;
  }
}

NetFaultCounts NetFaultInjector::counts() const noexcept {
  NetFaultCounts c;
  c.drops = drops_.load();
  c.corrupts = corrupts_.load();
  c.truncates = truncates_.load();
  c.reorders = reorders_.load();
  c.delays = delays_.load();
  c.disconnects = disconnects_.load();
  return c;
}

NetFaultProxy::NetFaultProxy(std::unique_ptr<Transport> inner,
                             std::shared_ptr<NetFaultInjector> injector)
    : inner_(std::move(inner)), injector_(std::move(injector)) {}

bool NetFaultProxy::send(const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  // Only whole data / end-of-stream packets are fault sites; anything
  // else (hello, heartbeats, acks, resume) passes through so the
  // session control plane stays analyzable.
  bool at_site = false;
  std::uint32_t session_id = 0;
  std::uint32_t seq = 0;
  if (n >= kHeaderBytes && std::memcmp(bytes, "EVWP", 4) == 0) {
    const auto type = static_cast<PacketType>(bytes[5]);
    if (type == PacketType::kData || type == PacketType::kEndOfStream) {
      std::memcpy(&session_id, bytes + 8, 4);
      std::memcpy(&seq, bytes + 12, 4);
      at_site = true;
    }
  }

  std::vector<std::uint8_t> held;
  held.swap(held_);  // a previously reordered packet goes out after this one

  bool forward = true;
  std::vector<std::uint8_t> mutated;
  std::size_t send_len = n;
  if (at_site) {
    for (const NetFaultSpec& spec : injector_->take(session_id, seq)) {
      injector_->record(spec.type);
      switch (spec.type) {
        case NetFaultType::kDrop:
          forward = false;
          break;
        case NetFaultType::kCorrupt:
          // Flip one payload byte (or the CRC itself for header-only
          // packets) — always CRC-detectable, never a valid packet.
          mutated.assign(bytes, bytes + n);
          mutated[n > kHeaderBytes ? kHeaderBytes : 20] ^= 0xA5u;
          break;
        case NetFaultType::kTruncate:
          send_len = n / 2;  // partial write mid-packet
          break;
        case NetFaultType::kReorder:
          held_.assign(bytes, bytes + n);
          forward = false;
          break;
        case NetFaultType::kDelay:
          std::this_thread::sleep_for(std::chrono::duration<double,
                                                            std::milli>(
              spec.delay_ms));
          break;
        case NetFaultType::kDisconnect:
          inner_->close();
          return false;
      }
    }
  }

  bool ok = true;
  if (forward) {
    const std::uint8_t* out = mutated.empty() ? bytes : mutated.data();
    ok = inner_->send(out, mutated.empty() ? send_len : mutated.size());
  }
  if (ok && !held.empty()) ok = inner_->send(held.data(), held.size());
  return ok;
}

std::ptrdiff_t NetFaultProxy::recv_some(void* data, std::size_t n,
                                        std::chrono::milliseconds timeout) {
  return inner_->recv_some(data, n, timeout);
}

void NetFaultProxy::close() { inner_->close(); }

bool NetFaultProxy::closed() const { return inner_->closed(); }

}  // namespace evedge::wire
