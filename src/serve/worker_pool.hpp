#pragma once

// ServeWorkerPool: the inference back half of the serving runtime. Each
// worker owns a full FunctionalNetwork clone (identical weights, private
// Workspace — the one-Workspace-per-worker contract that makes workers
// mutually invisible), its own BatchCollator and, when planning is on,
// its own density-adaptive ExecutionPlan:
//
//  - lazy warmup calibration: the worker's first collated batch doubles
//    as the planner probe (sample 0), mirroring BatchExecutor;
//  - drift re-calibration: every batch's live input density (nonzero
//    fraction of the adapted event tensor, the post-E2SF quantity the
//    planner calibrated on) is checked against the plan's calibration
//    band; when the scene density drifts outside it, the worker re-runs
//    calibration on the current batch and swaps routes in place.
//
// Supervision (the hooks-based serve path): a batch that throws does
// not kill the worker thread. The worker restarts itself on a fresh
// prototype clone, returns the batch's unemitted frames to the queue
// front with an incremented attempt count, and sleeps an exponential
// backoff before collating again. Frames whose attempt count exceeds
// the retry budget are quarantined through the failure hook instead of
// retried, so a deterministic poison frame cannot live-lock the pool.
// The degradation ladder (degrade.hpp) is read per batch: rung 2 widens
// collated batches, rung 3 serves on a lazily calibrated uniform-int8
// QuantPlan; stepping back down restores FP32 bitwise.
//
// Per-stream state isolation: the engine resets LIF state at the start
// of every inference and gives each batch lane its own membrane tensor,
// so coalescing frames from different streams into one run_batched call
// is bitwise identical to per-stream serial execution (run_batched's
// per-sample contract; verified zoo-wide in test_serve).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/engine.hpp"
#include "nn/exec_plan.hpp"
#include "obs/profile.hpp"
#include "quant/calibrate.hpp"
#include "serve/batch_collator.hpp"
#include "serve/degrade.hpp"
#include "serve/fault.hpp"
#include "serve/frame_queue.hpp"
#include "serve/serve_stats.hpp"

namespace evedge::serve {

struct WorkerConfig {
  /// Density-adaptive routing (bitwise-neutral, exec_plan.hpp). Off =
  /// all-dense execution.
  bool use_planner = true;
  nn::PlannerOptions planner{};
  /// Re-calibrate a worker's plan when the live input density leaves
  /// [probe/band, probe*band] (ExecutionPlan::density_in_band).
  bool recalibrate_on_drift = true;
  double recalibration_band = 4.0;
  CollatorConfig collator{};
  /// Supervision retry budget: a frame whose batch failed is retried at
  /// most this many times before quarantine (attempts > max_retries).
  int max_retries = 2;
  /// Exponential backoff after a batch failure: base * 2^(consecutive
  /// failures - 1), capped at the max. Keeps a crash-looping worker
  /// from burning its core while siblings drain the queue.
  double retry_backoff_ms = 1.0;
  double retry_backoff_max_ms = 50.0;
  /// Per-layer wall-time profiling via the engine's ExecObserver hook
  /// (obs::LayerProfiler); snapshots land in ServeReport::layer_profiles.
  bool profile_layers = false;
  /// Additionally mirror every node execution as a per-node trace
  /// sub-span (implies the profiler is installed; spans only emit while
  /// the tracer is enabled).
  bool trace_nodes = false;
};

/// Called once per completed frame, potentially from several worker
/// threads at once — implementations must be thread-safe. The frame's
/// result is batch lane `lane` of `batch_output` (the run_batched
/// tensor, valid only for the duration of the call — slice it out via
/// sparse::copy_sample if it must outlive the sink); `latency_us` spans
/// queue admission to inference completion.
using ResultSink = std::function<void(
    const ReadyFrame& frame, const sparse::DenseTensor& batch_output,
    int lane, double latency_us)>;

/// Called once per frame that leaves the pipeline without a result
/// (shed past its deadline, or retries exhausted). Thread-safe like
/// ResultSink.
using FailureSink = std::function<void(const QuarantinedFrame&)>;

/// Everything the supervised serve loop plugs into. `result` is
/// required; the rest are optional (nullptr / empty = feature off).
struct ServeHooks {
  ResultSink result;
  FailureSink failure;
  FaultInjector* faults = nullptr;       ///< worker-site fault injection
  DegradationState* degrade = nullptr;   ///< live ladder level (read-only)
  SloConfig slo{};                       ///< deadline + ladder knobs
};

/// One serving worker. Public so tests (and single-threaded embeddings)
/// can drive process_batch directly; the pool wraps it in a thread.
class ServeWorker {
 public:
  /// Clones the prototype network. The prototype must outlive the
  /// worker's serving (restarts clone it again after a batch failure).
  ServeWorker(int worker_id, const nn::FunctionalNetwork& prototype,
              WorkerConfig config);

  /// Runs one collated batch through run_batched and emits every frame's
  /// result to `sink`. Handles planner warmup/drift calibration. Throws
  /// propagate to the caller (the supervised serve loop catches them).
  void process_batch(const std::vector<ReadyFrame>& batch,
                     const ResultSink& sink);

  /// Unsupervised collation + inference loop until `queue` closes and
  /// drains; the first exception aborts the worker (legacy path, kept
  /// for direct embedding and tests).
  void serve(FrameQueue& queue, const ResultSink& sink);

  /// Supervised loop: SLO shedding, fault injection, per-batch failure
  /// recovery with restart/retry/backoff, degradation-ladder response.
  /// Never throws for a batch failure; only unrecoverable errors (e.g.
  /// failing to clone a fresh network) escape.
  void serve(FrameQueue& queue, const ServeHooks& hooks);

  /// Replaces the network with a fresh prototype clone and forgets the
  /// execution plan and the installed quant plan (both are rebuilt
  /// lazily). The supervision path after a batch failure.
  void restart();

  [[nodiscard]] const WorkerServeStats& stats() const noexcept {
    return stats_;
  }
  /// The worker's live plan (nullptr before warmup or with planning off).
  [[nodiscard]] const nn::ExecutionPlan* plan() const noexcept {
    return plan_ready_ ? &plan_ : nullptr;
  }
  /// Whether the int8 degradation rung is currently installed.
  [[nodiscard]] bool int8_active() const noexcept {
    return quant_installed_;
  }
  /// The worker's layer profiler (nullptr unless profile_layers /
  /// trace_nodes). Snapshot only after the worker thread joined.
  [[nodiscard]] const obs::LayerProfiler* profiler() const noexcept {
    return profiler_.get();
  }

 private:
  void calibrate_from(const std::vector<sparse::DenseTensor>& steps);
  void apply_precision_rung(bool want_int8);
  /// Shed frames older than the deadline out of `batch` via the failure
  /// hook; returns the number shed.
  std::size_t shed_stale(std::vector<ReadyFrame>& batch,
                         const ServeHooks& hooks);
  /// Failure path: requeue or quarantine every unemitted frame of the
  /// failed batch, restart, back off.
  void recover_from_failure(FrameQueue& queue,
                            std::vector<ReadyFrame>& batch,
                            const ServeHooks& hooks);

  WorkerConfig config_;
  const nn::FunctionalNetwork* prototype_;
  nn::FunctionalNetwork net_;
  sparse::TensorShape event_shape_;  ///< per-timestep event input (n = 1)
  bool needs_image_ = false;
  sparse::DenseTensor image_;
  std::vector<sparse::DenseTensor> steps_;  ///< reused staging tensors
  std::vector<sparse::SparseFrame> frames_;  ///< reused adaptation view
  bool plan_ready_ = false;
  nn::ExecutionPlan plan_;
  // Int8 rung state: the plan is calibrated lazily from the first batch
  // served at rung 3 and cached; install/uninstall tracks the ladder.
  bool quant_ready_ = false;
  bool quant_installed_ = false;
  bool want_int8_ = false;  ///< ladder rung requested for the next batch
  quant::QuantPlan quant_plan_;
  std::int64_t batch_seq_ = 0;     ///< local batch attempt index
  std::size_t emit_progress_ = 0;  ///< lanes emitted of the current batch
  int consecutive_failures_ = 0;
  WorkerServeStats stats_;
  /// Owned per-layer profiler, re-installed on every restart() clone.
  std::unique_ptr<obs::LayerProfiler> profiler_;
};

class ServeWorkerPool {
 public:
  /// Builds `n_workers` clones of `prototype`. The prototype must stay
  /// alive through run() — supervised workers re-clone it on restart.
  ServeWorkerPool(const nn::FunctionalNetwork& prototype, int n_workers,
                  const WorkerConfig& config);

  /// Serves `queue` on one thread per worker until it closes and drains;
  /// blocks until every worker exits. `sink` must be thread-safe.
  /// Unsupervised: a worker exception closes the queue and rethrows.
  void run(FrameQueue& queue, const ResultSink& sink);

  /// Supervised serving (ServeWorker::serve(queue, hooks) per thread).
  /// Batch failures are absorbed by the workers; only unrecoverable
  /// errors close the queue and rethrow after all joins.
  void run(FrameQueue& queue, const ServeHooks& hooks);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] const ServeWorker& worker(std::size_t i) const {
    return *workers_.at(i);
  }

 private:
  template <typename ServeFn>
  void run_threads(FrameQueue& queue, const ServeFn& serve_one);

  std::vector<std::unique_ptr<ServeWorker>> workers_;
};

}  // namespace evedge::serve
