#include "events/scene.hpp"

#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

namespace evedge::events {

namespace {

constexpr double kUsPerSecond = 1e6;

[[nodiscard]] FlowField uniform_flow(const SensorGeometry& g, double vx,
                                     double vy) {
  FlowField f;
  f.width = g.width;
  f.height = g.height;
  const auto n = static_cast<std::size_t>(g.pixel_count());
  f.vx.assign(n, static_cast<float>(vx));
  f.vy.assign(n, static_cast<float>(vy));
  return f;
}

[[nodiscard]] IntensityFrame blank_frame(const SensorGeometry& g, TimeUs t,
                                         double value) {
  IntensityFrame frame;
  frame.width = g.width;
  frame.height = g.height;
  frame.t = t;
  frame.intensity.assign(static_cast<std::size_t>(g.pixel_count()),
                         static_cast<float>(value));
  return frame;
}

}  // namespace

TexturedTranslationScene::TexturedTranslationScene(const Params& params)
    : params_(params) {
  validate_geometry(params_.geometry);
  if (params_.harmonics <= 0) {
    throw std::invalid_argument("harmonics must be > 0");
  }
  std::mt19937_64 rng(params_.seed);
  std::uniform_real_distribution<double> freq(0.03, 0.22);
  std::uniform_real_distribution<double> phase(0.0,
                                               2.0 * std::numbers::pi);
  for (int h = 0; h < params_.harmonics; ++h) {
    harmonics_.push_back(Harmonic{freq(rng), freq(rng), phase(rng),
                                  params_.contrast /
                                      static_cast<double>(params_.harmonics)});
  }
}

IntensityFrame TexturedTranslationScene::render(TimeUs t) const {
  const double ts = static_cast<double>(t) / kUsPerSecond;
  const double ox = params_.vx_px_per_s * ts;
  const double oy = params_.vy_px_per_s * ts;
  IntensityFrame frame =
      blank_frame(params_.geometry, t, params_.base_intensity);
  const int w = params_.geometry.width;
  const int h = params_.geometry.height;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double v = params_.base_intensity;
      for (const Harmonic& hm : harmonics_) {
        v += hm.amplitude *
             std::sin(2.0 * std::numbers::pi *
                          (hm.fx * (static_cast<double>(x) - ox) +
                           hm.fy * (static_cast<double>(y) - oy)) +
                      hm.phase);
      }
      frame.intensity[static_cast<std::size_t>(y) *
                          static_cast<std::size_t>(w) +
                      static_cast<std::size_t>(x)] =
          static_cast<float>(std::max(0.01, v));
    }
  }
  return frame;
}

FlowField TexturedTranslationScene::ground_truth_flow(TimeUs) const {
  return uniform_flow(params_.geometry, params_.vx_px_per_s,
                      params_.vy_px_per_s);
}

MovingBarScene::MovingBarScene(const Params& params) : params_(params) {
  validate_geometry(params_.geometry);
  if (params_.bar_width_px <= 0) {
    throw std::invalid_argument("bar_width_px must be > 0");
  }
}

IntensityFrame MovingBarScene::render(TimeUs t) const {
  const double ts = static_cast<double>(t) / kUsPerSecond;
  const int w = params_.geometry.width;
  const int h = params_.geometry.height;
  // The bar wraps around so arbitrarily long sequences stay active.
  const double x0 =
      std::fmod(params_.speed_px_per_s * ts, static_cast<double>(w));
  IntensityFrame frame = blank_frame(params_.geometry, t, params_.background);
  for (int y = 0; y < h; ++y) {
    for (int dx = 0; dx < params_.bar_width_px; ++dx) {
      const int x =
          (static_cast<int>(std::floor(x0)) + dx) % w;
      frame.intensity[static_cast<std::size_t>(y) *
                          static_cast<std::size_t>(w) +
                      static_cast<std::size_t>(x)] =
          static_cast<float>(params_.foreground);
    }
  }
  return frame;
}

FlowField MovingBarScene::ground_truth_flow(TimeUs) const {
  return uniform_flow(params_.geometry, params_.speed_px_per_s, 0.0);
}

DriftingDotsScene::DriftingDotsScene(const Params& params) : params_(params) {
  validate_geometry(params_.geometry);
  if (params_.dot_count <= 0) {
    throw std::invalid_argument("dot_count must be > 0");
  }
  std::mt19937_64 rng(params_.seed);
  std::uniform_real_distribution<double> ux(
      0.0, static_cast<double>(params_.geometry.width));
  std::uniform_real_distribution<double> uy(
      0.0, static_cast<double>(params_.geometry.height));
  for (int i = 0; i < params_.dot_count; ++i) {
    dot_x0_.push_back(ux(rng));
    dot_y0_.push_back(uy(rng));
  }
}

IntensityFrame DriftingDotsScene::render(TimeUs t) const {
  const double ts = static_cast<double>(t) / kUsPerSecond;
  const int w = params_.geometry.width;
  const int h = params_.geometry.height;
  IntensityFrame frame = blank_frame(params_.geometry, t, params_.background);
  const double r2 = params_.dot_radius_px * params_.dot_radius_px;
  for (std::size_t d = 0; d < dot_x0_.size(); ++d) {
    // Dots wrap around the sensor to keep activity stationary over time.
    double cx = std::fmod(dot_x0_[d] + params_.vx_px_per_s * ts,
                          static_cast<double>(w));
    double cy = std::fmod(dot_y0_[d] + params_.vy_px_per_s * ts,
                          static_cast<double>(h));
    if (cx < 0) cx += static_cast<double>(w);
    if (cy < 0) cy += static_cast<double>(h);
    const int xmin = std::max(0, static_cast<int>(cx - params_.dot_radius_px) - 1);
    const int xmax = std::min(w - 1, static_cast<int>(cx + params_.dot_radius_px) + 1);
    const int ymin = std::max(0, static_cast<int>(cy - params_.dot_radius_px) - 1);
    const int ymax = std::min(h - 1, static_cast<int>(cy + params_.dot_radius_px) + 1);
    for (int y = ymin; y <= ymax; ++y) {
      for (int x = xmin; x <= xmax; ++x) {
        const double ddx = static_cast<double>(x) - cx;
        const double ddy = static_cast<double>(y) - cy;
        if (ddx * ddx + ddy * ddy <= r2) {
          frame.intensity[static_cast<std::size_t>(y) *
                              static_cast<std::size_t>(w) +
                          static_cast<std::size_t>(x)] =
              static_cast<float>(params_.foreground);
        }
      }
    }
  }
  return frame;
}

FlowField DriftingDotsScene::ground_truth_flow(TimeUs) const {
  return uniform_flow(params_.geometry, params_.vx_px_per_s,
                      params_.vy_px_per_s);
}

EventStream simulate_dvs(const Scene& scene, TimeUs t0, TimeUs duration_us,
                         double fps_sim, const DvsConfig& dvs_config) {
  if (duration_us <= 0) {
    throw std::invalid_argument("simulate_dvs: duration must be > 0");
  }
  if (fps_sim <= 0.0) {
    throw std::invalid_argument("simulate_dvs: fps_sim must be > 0");
  }
  DvsSensor sensor(scene.geometry(), dvs_config);
  const double period_us = kUsPerSecond / fps_sim;
  const auto n_frames =
      static_cast<std::int64_t>(static_cast<double>(duration_us) / period_us) +
      1;
  for (std::int64_t i = 0; i <= n_frames; ++i) {
    const auto t = t0 + static_cast<TimeUs>(std::llround(
                            static_cast<double>(i) * period_us));
    sensor.process_frame(scene.render(t));
  }
  return sensor.take_stream();
}

}  // namespace evedge::events
