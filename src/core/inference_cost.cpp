#include "core/inference_cost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "quant/accuracy.hpp"
#include "sched/scheduler.hpp"

namespace evedge::core {

ActivationDensityProfile measure_activation_densities(
    const nn::NetworkSpec& spec, std::uint64_t weight_seed,
    double input_fill, std::uint64_t input_seed) {
  nn::FunctionalNetwork net(spec, weight_seed);
  ActivationDensityProfile profile;
  profile.measured_input_density = input_fill;
  profile.density.assign(spec.graph.size(), 1.0);

  // Accumulate mean density per node over all timesteps via the hook.
  std::vector<double> acc(spec.graph.size(), 0.0);
  std::vector<int> hits(spec.graph.size(), 0);
  net.set_activation_hook([&](int node_id, sparse::DenseTensor& t) {
    acc[static_cast<std::size_t>(node_id)] += t.density();
    ++hits[static_cast<std::size_t>(node_id)];
  });

  const auto samples =
      quant::make_validation_set(spec, 1, input_seed, input_fill);
  const auto& s = samples.front();
  (void)net.run(s.event_steps,
                s.image.has_value() ? &s.image.value() : nullptr);

  for (std::size_t i = 0; i < acc.size(); ++i) {
    if (hits[i] > 0) profile.density[i] = acc[i] / hits[i];
  }
  // Trained-network ReLU activations stay roughly half dense regardless
  // of input sparsity; random-weight probes on sparse inputs under-
  // predict that, so ANN (non-spiking) nodes are floored at 0.4. Spiking
  // nodes keep the measured firing rate - their sparsity is the real
  // phenomenon the paper exploits.
  for (const auto& node : spec.graph.nodes()) {
    if (node.spec.kind == nn::LayerKind::kInput) continue;
    if (nn::domain_of(node.spec.kind) == nn::Domain::kAnn) {
      auto& d = profile.density[static_cast<std::size_t>(node.id)];
      d = std::max(d, 0.4);
    }
  }
  // The event input carries the probe density; any further inputs are
  // dense grayscale images.
  const auto input_ids = spec.graph.input_ids();
  for (std::size_t i = 0; i < input_ids.size(); ++i) {
    profile.density[static_cast<std::size_t>(input_ids[i])] =
        i == 0 ? input_fill : 1.0;
  }
  return profile;
}

nn::ExecutionPlan seed_execution_plan(const nn::FunctionalNetwork& net,
                                      const ActivationDensityProfile& profile,
                                      const nn::PlannerOptions& options) {
  return nn::ExecutionPlanner::plan_from_densities(
      net, profile.density, profile.measured_input_density, options);
}

InferenceCost estimate_inference(const nn::NetworkSpec& spec,
                                 const sched::TaskMapping& mapping,
                                 const hw::Platform& platform,
                                 const ActivationDensityProfile& densities,
                                 double input_density,
                                 const InferenceCostOptions& options) {
  if (mapping.nodes.size() != spec.graph.size()) {
    throw std::invalid_argument("estimate_inference: mapping size mismatch");
  }
  if (densities.density.size() != spec.graph.size()) {
    throw std::invalid_argument("estimate_inference: density size mismatch");
  }
  if (input_density < 0.0 || input_density > 1.0) {
    throw std::invalid_argument("estimate_inference: bad input density");
  }
  if (options.batch < 1) {
    throw std::invalid_argument("estimate_inference: batch must be >= 1");
  }

  // Raw-event readers scale fully with the live input density; deeper
  // activation densities respond sub-linearly (damped square-root, a
  // smooth stand-in for spike-rate saturation) around the measured probe.
  const double ratio =
      densities.measured_input_density > 0.0
          ? input_density / densities.measured_input_density
          : 1.0;
  const double deep_scale = std::clamp(std::sqrt(ratio), 0.6, 1.8);
  std::vector<bool> reads_input(spec.graph.size(), false);
  for (const int id : spec.graph.input_ids()) {
    reads_input[static_cast<std::size_t>(id)] = true;
  }

  // Per-node execution times at the assigned (PE, precision), density-
  // and batch-aware; the candidate latency then comes from the same
  // Eq. 3 list scheduler the mapper uses, so parallel branches (e.g.
  // HALSIE's event + image encoders on different PEs) overlap exactly as
  // they would on the platform.
  hw::TaskProfile profile;
  profile.nodes.resize(spec.graph.size());
  InferenceCost cost;
  hw::EnergyAccumulator energy(platform);

  for (const nn::LayerNode& node : spec.graph.nodes()) {
    const auto nid = static_cast<std::size_t>(node.id);
    hw::NodeProfile& np = profile.nodes[nid];
    np.node_id = node.id;
    np.mappable = node.spec.kind != nn::LayerKind::kInput &&
                  node.spec.kind != nn::LayerKind::kOutput;
    np.output_elements = node.spec.output_elements() *
                         static_cast<std::size_t>(options.batch);
    np.domain = nn::domain_of(node.spec.kind);
    np.time_us.assign(platform.pes.size(),
                      {std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity()});

    const sched::NodeAssignment& a = mapping.nodes[nid];
    if (a.pe < 0) {
      for (auto& row : np.time_us) row = {0.0, 0.0, 0.0};
      continue;
    }
    const hw::ProcessingElement& pe = platform.pe(a.pe);

    hw::LayerWorkload workload = hw::LayerWorkload::from_layer(node.spec);
    // Density of this node's *input* = density of its first parent's
    // output, scaled by the live-to-probe ratio (full for raw-event
    // readers, damped deeper in the network).
    double in_density = 1.0;
    if (!node.parents.empty()) {
      const auto pid = static_cast<std::size_t>(node.parents.front());
      const double scale = reads_input[pid] ? ratio : deep_scale;
      in_density = std::clamp(densities.density[pid] * scale, 0.0, 1.0);
    }
    workload.input_density = in_density;

    const int repeats =
        np.domain == nn::Domain::kSnn ? spec.timesteps : 1;

    hw::Route route = hw::Route::kDense;
    if (options.use_sparse_routes && pe.supports_sparse) {
      route = hw::best_route(pe, a.precision, workload);
    }
    double t = static_cast<double>(repeats) *
               hw::layer_latency_us(pe, a.precision, workload, route,
                                    options.batch);
    if (route == hw::Route::kSparse && options.charge_encode_overhead) {
      // Dense pipeline that wants sparse kernels must first encode its
      // dense activations to COO — per repeat and per batch element.
      t += static_cast<double>(repeats) * options.batch *
           hw::encode_to_sparse_us(pe, workload.input_elements, a.precision);
    }
    np.time_us[static_cast<std::size_t>(a.pe)]
              [static_cast<std::size_t>(a.precision)] = t;
    energy.add_busy(a.pe, a.precision, t);
  }

  sched::MappingCandidate candidate;
  candidate.tasks.push_back(mapping);
  const sched::ScheduleResult schedule =
      sched::schedule({spec}, {profile}, candidate, platform);
  cost.latency_us = schedule.max_task_latency_us;
  for (const sched::ScheduledOp& op : schedule.ops) {
    if (op.is_comm) {
      // Transfer energy: volume reconstructed from the op duration.
      const double bytes =
          std::max(0.0, (op.end_us - op.start_us) -
                            platform.transfer_sync_overhead_us) *
          platform.unified_mem_bandwidth_bytes_per_us;
      energy.add_transfer(bytes);
    }
  }
  cost.busy_energy_mj = energy.busy_mj() + energy.transfer_mj();
  return cost;
}

}  // namespace evedge::core
