#include "events/event_stream.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace evedge::events {

namespace {

[[nodiscard]] bool time_less(const Event& e, TimeUs t) noexcept {
  return e.t < t;
}

}  // namespace

EventStream::EventStream(SensorGeometry geometry, std::vector<Event> events)
    : geometry_(geometry), events_(std::move(events)) {
  validate_geometry(geometry_);
  validate();
}

TimeUs EventStream::t_begin() const {
  if (events_.empty()) throw std::logic_error("t_begin() on empty stream");
  return events_.front().t;
}

TimeUs EventStream::t_end() const {
  if (events_.empty()) throw std::logic_error("t_end() on empty stream");
  return events_.back().t;
}

TimeUs EventStream::duration() const {
  return events_.size() < 2 ? 0 : events_.back().t - events_.front().t;
}

void EventStream::push_back(const Event& e) {
  if (!geometry_.contains(e.x, e.y)) {
    throw std::invalid_argument("event (" + std::to_string(e.x) + "," +
                                std::to_string(e.y) +
                                ") outside sensor geometry");
  }
  if (!events_.empty() && e.t < events_.back().t) {
    throw std::invalid_argument("event timestamp decreases: " +
                                std::to_string(e.t) + " < " +
                                std::to_string(events_.back().t));
  }
  events_.push_back(e);
}

void EventStream::append(const EventStream& other) {
  if (!(other.geometry_ == geometry_)) {
    throw std::invalid_argument("append: geometry mismatch");
  }
  if (!events_.empty() && !other.events_.empty() &&
      other.events_.front().t < events_.back().t) {
    throw std::invalid_argument("append: other stream starts in the past");
  }
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

std::span<const Event> EventStream::slice(TimeUs t0, TimeUs t1) const {
  if (t1 < t0) throw std::invalid_argument("slice: t1 < t0");
  const auto first =
      std::lower_bound(events_.begin(), events_.end(), t0, time_less);
  const auto last =
      std::lower_bound(first, events_.end(), t1, time_less);
  return {std::to_address(first),
          static_cast<std::size_t>(std::distance(first, last))};
}

std::size_t EventStream::count_in(TimeUs t0, TimeUs t1) const {
  return slice(t0, t1).size();
}

void EventStream::validate() const {
  TimeUs prev = events_.empty() ? 0 : events_.front().t;
  for (const Event& e : events_) {
    if (!geometry_.contains(e.x, e.y)) {
      throw std::logic_error("event outside geometry at t=" +
                             std::to_string(e.t));
    }
    if (e.t < prev) {
      throw std::logic_error("events not time-ordered at t=" +
                             std::to_string(e.t));
    }
    prev = e.t;
  }
}

FrameClock FrameClock::uniform(TimeUs t0, TimeUs period_us,
                               std::size_t n_frames) {
  if (period_us <= 0) {
    throw std::invalid_argument("FrameClock::uniform: period must be > 0");
  }
  FrameClock clock;
  clock.timestamps.reserve(n_frames);
  for (std::size_t i = 0; i < n_frames; ++i) {
    clock.timestamps.push_back(t0 +
                               static_cast<TimeUs>(i) * period_us);
  }
  return clock;
}

FrameClock FrameClock::spanning(const EventStream& stream,
                                double frame_rate_hz) {
  if (stream.empty()) {
    throw std::invalid_argument("FrameClock::spanning: empty event stream");
  }
  if (frame_rate_hz <= 0.0) {
    throw std::invalid_argument("FrameClock::spanning: bad frame rate");
  }
  const auto period_us =
      static_cast<TimeUs>(std::llround(1e6 / frame_rate_hz));
  const auto n_frames = static_cast<std::size_t>(
      (stream.t_end() - stream.t_begin()) / period_us) + 2;
  return uniform(stream.t_begin(), period_us, n_frames);
}

}  // namespace evedge::events
