// Density-adaptive execution planner + route-dispatched engine tests:
// zoo-wide bitwise parity of planner-routed run()/run_batched() against
// dense execution, CSR chain boundary accounting, submanifold stored-site
// semantics, density telemetry agreement (hook, firing rate, thread
// counts), plan validation atomicity, int8 composition and the
// cost-model cold-start bridge.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "core/batch_executor.hpp"
#include "core/inference_cost.hpp"
#include "nn/engine.hpp"
#include "nn/exec_plan.hpp"
#include "nn/zoo.hpp"
#include "quant/accuracy.hpp"
#include "quant/qnetwork.hpp"
#include "sparse/sparse_frame.hpp"
#include "sparse/sparse_ops.hpp"

namespace en = evedge::nn;
namespace es = evedge::sparse;
namespace eq = evedge::quant;
namespace ec = evedge::core;

namespace {

struct Probe {
  std::vector<es::DenseTensor> steps;
  es::DenseTensor image;
  bool has_image = false;

  [[nodiscard]] const es::DenseTensor* image_ptr() const {
    return has_image ? &image : nullptr;
  }
};

/// Sparse event-like inputs matching the network's representation.
[[nodiscard]] Probe make_probe(const en::NetworkSpec& spec,
                               std::uint64_t seed, double fill = 0.02) {
  auto samples = eq::make_validation_set(spec, 1, seed, fill);
  Probe probe;
  probe.steps = std::move(samples[0].event_steps);
  if (samples[0].image.has_value()) {
    probe.image = std::move(*samples[0].image);
    probe.has_image = true;
  }
  return probe;
}

/// A small all-conv chain: sparse input -> three zero-bias convs (the
/// middle one strided), the canonical CSR-chain shape.
[[nodiscard]] en::NetworkSpec chain_spec() {
  en::NetworkSpec net;
  net.name = "chain3";
  net.n_bins = 1;
  net.timesteps = 1;
  en::NetworkGraph& g = net.graph;
  const int in = g.add_input("events", en::TensorShape{1, 2, 32, 44});
  en::LayerSpec c1;
  c1.name = "c1";
  c1.kind = en::LayerKind::kConv;
  c1.conv = es::Conv2dSpec{2, 8, 3, 1, 1};
  const int n1 = g.add_layer(c1, {in});
  en::LayerSpec c2 = c1;
  c2.name = "c2";
  c2.conv = es::Conv2dSpec{8, 8, 3, 2, 1};
  const int n2 = g.add_layer(c2, {n1});
  en::LayerSpec c3 = c1;
  c3.name = "c3";
  c3.conv = es::Conv2dSpec{8, 8, 3, 1, 1};
  const int n3 = g.add_layer(c3, {n2});
  en::LayerSpec out;
  out.name = "out";
  out.kind = en::LayerKind::kOutput;
  g.add_layer(out, {n3});
  g.validate();
  return net;
}

[[nodiscard]] en::ExecutionPlan all_csr_plan(const en::NetworkSpec& spec,
                                             std::vector<int> nodes) {
  en::ExecutionPlan plan;
  plan.route.assign(spec.graph.size(), en::Route::kDense);
  plan.output_density.assign(spec.graph.size(), 1.0);
  for (const int id : nodes) {
    plan.route[static_cast<std::size_t>(id)] = en::Route::kCsr;
  }
  return plan;
}

/// Rebuilds `plan`'s TilePlan with a forced exit-row size (clamped per
/// chain), leaving the routes untouched.
[[nodiscard]] en::ExecutionPlan with_forced_tiles(const en::NetworkSpec& spec,
                                                  en::ExecutionPlan plan,
                                                  int rows) {
  en::TileOptions topt;
  topt.forced_tile_rows = rows;
  plan.tiles = en::build_tile_plan(spec, plan, topt);
  return plan;
}

/// A three-deep spiking chain (middle conv strided): the shape the tile
/// walker streams, with LIF state carried across tile boundaries.
[[nodiscard]] en::NetworkSpec spiking_chain_spec() {
  en::NetworkSpec net;
  net.name = "schain3";
  net.n_bins = 1;
  net.timesteps = 3;
  en::NetworkGraph& g = net.graph;
  const int in = g.add_input("events", en::TensorShape{1, 2, 32, 44});
  en::LayerSpec s1;
  s1.name = "s1";
  s1.kind = en::LayerKind::kSpikingConv;
  s1.conv = es::Conv2dSpec{2, 8, 3, 1, 1};
  const int n1 = g.add_layer(s1, {in});
  en::LayerSpec s2 = s1;
  s2.name = "s2";
  s2.conv = es::Conv2dSpec{8, 8, 3, 2, 1};
  const int n2 = g.add_layer(s2, {n1});
  en::LayerSpec s3 = s1;
  s3.name = "s3";
  s3.conv = es::Conv2dSpec{8, 8, 3, 1, 1};
  const int n3 = g.add_layer(s3, {n2});
  en::LayerSpec out;
  out.name = "out";
  out.kind = en::LayerKind::kOutput;
  g.add_layer(out, {n3});
  g.validate();
  return net;
}

}  // namespace

// ------------------------------------------------- zoo-wide bitwise parity

class PlannerParity : public ::testing::TestWithParam<en::NetworkId> {};

// Planner-routed run() must be bitwise identical to all-dense execution
// for every zoo network (kCsr preserves dense numerics exactly on the
// engine's zero-bias layers).
TEST_P(PlannerParity, RunMatchesDenseBitwise) {
  const auto spec = en::build_network(GetParam(), en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 7);
  const auto probe = make_probe(spec, 11);

  const auto dense_out = net.run(probe.steps, probe.image_ptr());
  const auto plan =
      en::ExecutionPlanner::calibrate(net, probe.steps, probe.image_ptr());
  net.set_execution_plan(&plan);
  const auto routed_out = net.run(probe.steps, probe.image_ptr());

  ASSERT_EQ(routed_out.shape(), dense_out.shape());
  EXPECT_EQ(es::max_abs_diff(routed_out, dense_out), 0.0f) << spec.name;
  net.set_execution_plan(nullptr);
}

// Batched planner-routed execution matches per-sample dense execution
// bitwise (the batched sparse kernels are bitwise batch-1 consistent).
TEST_P(PlannerParity, BatchedRunMatchesDenseBitwise) {
  const auto spec = en::build_network(GetParam(), en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 7);
  constexpr int kBatch = 3;

  // One shared grayscale image across the batch (run_batched tiles it).
  std::vector<Probe> probes;
  std::vector<es::DenseTensor> expected;
  for (int n = 0; n < kBatch; ++n) {
    probes.push_back(make_probe(spec, 20 + static_cast<std::uint64_t>(n)));
    expected.push_back(net.run(probes.back().steps, probes[0].image_ptr()));
  }

  std::vector<es::DenseTensor> batched_steps;
  for (int t = 0; t < spec.timesteps; ++t) {
    const auto& s = probes[0].steps[static_cast<std::size_t>(t)].shape();
    es::DenseTensor step(es::TensorShape{kBatch, s.c, s.h, s.w});
    for (int n = 0; n < kBatch; ++n) {
      const auto& src =
          probes[static_cast<std::size_t>(n)].steps[static_cast<std::size_t>(t)];
      std::copy(src.raw(), src.raw() + src.size(),
                step.raw() + static_cast<std::size_t>(n) * step.stride_n());
    }
    batched_steps.push_back(std::move(step));
  }

  const auto plan = en::ExecutionPlanner::calibrate(net, probes[0].steps,
                                                    probes[0].image_ptr());
  net.set_execution_plan(&plan);
  const auto out = net.run_batched(batched_steps, probes[0].image_ptr());
  ASSERT_EQ(out.shape().n, kBatch);
  for (int n = 0; n < kBatch; ++n) {
    const auto& ref = expected[static_cast<std::size_t>(n)];
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(out.data()[static_cast<std::size_t>(n) * out.stride_n() + i],
                ref.data()[i])
          << spec.name << " sample " << n << " element " << i;
    }
  }
  net.set_execution_plan(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, PlannerParity,
    ::testing::Values(en::NetworkId::kSpikeFlowNet,
                      en::NetworkId::kFusionFlowNet,
                      en::NetworkId::kAdaptiveSpikeNet, en::NetworkId::kHalsie,
                      en::NetworkId::kHidalgoDepth, en::NetworkId::kDotie,
                      en::NetworkId::kEvFlowNet),
    [](const ::testing::TestParamInfo<en::NetworkId>& param_info) {
      auto name = en::to_string(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// The planner actually routes layers sparse on the spiking networks (the
// whole point) and leaves the dense-activation ANN image branches alone.
TEST(ExecutionPlanner, RoutesSparseLayersOnSpikingNets) {
  for (const auto id :
       {en::NetworkId::kDotie, en::NetworkId::kSpikeFlowNet,
        en::NetworkId::kAdaptiveSpikeNet}) {
    const auto spec = en::build_network(id, en::ZooConfig::test_scale());
    en::FunctionalNetwork net(spec, 7);
    const auto probe = make_probe(spec, 31, 0.01);
    const auto plan =
        en::ExecutionPlanner::calibrate(net, probe.steps, probe.image_ptr());
    EXPECT_GT(plan.sparse_node_count(), 0) << en::to_string(id);
    // And the engine reports sparse work when running it.
    net.set_execution_plan(&plan);
    (void)net.run(probe.steps, probe.image_ptr());
    EXPECT_GT(net.last_exec_stats().sparse_node_runs, 0u) << en::to_string(id);
    EXPECT_GT(net.last_exec_stats().dense_macs_avoided,
              net.last_exec_stats().sparse_macs)
        << en::to_string(id);
    net.set_execution_plan(nullptr);
  }
}

// ------------------------------------------------------- fused CSR chains

// Consecutive kCsr layers exchange the COO carrier directly: one
// sparsify at the chain head, one densify at the output boundary, no
// conversions in between — and the result still bit-matches dense.
TEST(ExecutionPlan, CsrChainCrossesBoundariesOnlyAtEnds) {
  const auto spec = chain_spec();
  en::FunctionalNetwork net(spec, 5);
  const auto probe = make_probe(spec, 41, 0.02);
  const auto dense_out = net.run(probe.steps);

  const auto plan = all_csr_plan(spec, {1, 2, 3});
  net.set_execution_plan(&plan);
  const auto routed_out = net.run(probe.steps);
  EXPECT_EQ(es::max_abs_diff(routed_out, dense_out), 0.0f);

  const en::ExecStats& stats = net.last_exec_stats();
  EXPECT_EQ(stats.sparse_node_runs, 3u);
  EXPECT_EQ(stats.sparsify_boundaries, 1u);  // event input only
  EXPECT_EQ(stats.densify_boundaries, 1u);   // output node only
  net.set_execution_plan(nullptr);
}

// ------------------------------------------------- submanifold semantics

// kSubmanifold restricts outputs to the input active union: stored sites
// carry exactly the dense values, halo sites are dropped to zero.
TEST(ExecutionPlan, SubmanifoldRouteIsStoredSiteExact) {
  en::NetworkSpec spec;
  spec.name = "subm1";
  spec.n_bins = 1;
  spec.timesteps = 1;
  en::LayerSpec conv;
  conv.name = "c";
  conv.kind = en::LayerKind::kConv;
  conv.conv = es::Conv2dSpec{2, 6, 3, 1, 1};
  conv.relu_after = false;
  const int in = spec.graph.add_input("events", en::TensorShape{1, 2, 24, 30});
  const int c = spec.graph.add_layer(conv, {in});
  en::LayerSpec out;
  out.name = "out";
  out.kind = en::LayerKind::kOutput;
  spec.graph.add_layer(out, {c});
  spec.graph.validate();

  en::FunctionalNetwork net(spec, 3);
  const auto probe = make_probe(spec, 51, 0.03);
  const auto dense_out = net.run(probe.steps);

  en::ExecutionPlan plan = all_csr_plan(spec, {});
  plan.route[static_cast<std::size_t>(c)] = en::Route::kSubmanifold;
  net.set_execution_plan(&plan);
  const auto routed_out = net.run(probe.steps);
  net.set_execution_plan(nullptr);

  // Active union over both input channels.
  std::set<std::pair<int, int>> active;
  const auto& step = probe.steps[0];
  for (int ch = 0; ch < 2; ++ch) {
    for (int y = 0; y < step.shape().h; ++y) {
      for (int x = 0; x < step.shape().w; ++x) {
        if (step.at(0, ch, y, x) != 0.0f) active.insert({y, x});
      }
    }
  }
  ASSERT_FALSE(active.empty());
  std::size_t halo_dropped = 0;
  for (int oc = 0; oc < 6; ++oc) {
    for (int y = 0; y < routed_out.shape().h; ++y) {
      for (int x = 0; x < routed_out.shape().w; ++x) {
        if (active.contains({y, x})) {
          EXPECT_EQ(routed_out.at(0, oc, y, x), dense_out.at(0, oc, y, x));
        } else {
          EXPECT_EQ(routed_out.at(0, oc, y, x), 0.0f);
          if (dense_out.at(0, oc, y, x) != 0.0f) ++halo_dropped;
        }
      }
    }
  }
  // The semantic difference is real: dense populated halo sites.
  EXPECT_GT(halo_dropped, 0u);
}

// The planner only emits kSubmanifold when explicitly allowed — and
// never for narrow spiking convs, whose approval used the scatter-route
// cost model (they stay kCsr so the engine's scatter dispatch applies).
TEST(ExecutionPlanner, SubmanifoldRequiresOptIn) {
  // A stride-1 ANN conv on the sparse event input: submanifold-eligible.
  en::NetworkSpec spec;
  spec.name = "subm-opt-in";
  spec.n_bins = 1;
  spec.timesteps = 1;
  en::LayerSpec conv;
  conv.name = "c";
  conv.kind = en::LayerKind::kConv;
  conv.conv = es::Conv2dSpec{2, 8, 3, 1, 1};
  const int in = spec.graph.add_input("events", en::TensorShape{1, 2, 32, 44});
  const int c = spec.graph.add_layer(conv, {in});
  en::LayerSpec out;
  out.name = "out";
  out.kind = en::LayerKind::kOutput;
  spec.graph.add_layer(out, {c});
  spec.graph.validate();

  en::FunctionalNetwork net(spec, 7);
  const auto probe = make_probe(spec, 61, 0.01);
  const auto exact =
      en::ExecutionPlanner::calibrate(net, probe.steps, nullptr);
  for (const en::Route r : exact.route) {
    EXPECT_NE(r, en::Route::kSubmanifold);
  }
  EXPECT_EQ(exact.route_of(c), en::Route::kCsr);
  en::PlannerOptions opts;
  opts.allow_submanifold = true;
  const auto lossy =
      en::ExecutionPlanner::calibrate(net, probe.steps, nullptr, opts);
  EXPECT_EQ(lossy.route_of(c), en::Route::kSubmanifold);

  // Narrow spiking convs keep kCsr even with the opt-in (DOTIE's
  // isolate layer is k5 s1 p2, out_channels 1 — scatter-route costed).
  const auto dotie = en::build_network(en::NetworkId::kDotie,
                                      en::ZooConfig::test_scale());
  en::FunctionalNetwork dotie_net(dotie, 7);
  const auto dotie_probe = make_probe(dotie, 63, 0.01);
  const auto dotie_plan = en::ExecutionPlanner::calibrate(
      dotie_net, dotie_probe.steps, nullptr, opts);
  for (const en::Route r : dotie_plan.route) {
    EXPECT_NE(r, en::Route::kSubmanifold);
  }
  EXPECT_GT(dotie_plan.sparse_node_count(), 0);
}

// --------------------------------------------------- density telemetry

// Planner density estimates must agree with densities computed directly
// from the activations, and with the LIF firing rate on spiking nodes —
// at any thread count.
TEST(ExecutionPlanner, DensityTelemetryMatchesDirectMeasurement) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 7);
  const auto probe = make_probe(spec, 71, 0.02);

  // Direct measurement: mean per-node density over timesteps via a hook.
  std::vector<double> acc(spec.graph.size(), 0.0);
  std::vector<int> hits(spec.graph.size(), 0);
  net.set_activation_hook([&](int id, es::DenseTensor& t) {
    acc[static_cast<std::size_t>(id)] += t.density();
    ++hits[static_cast<std::size_t>(id)];
  });
  (void)net.run(probe.steps);
  net.set_activation_hook(nullptr);

  const auto plan = en::ExecutionPlanner::calibrate(net, probe.steps);
  ASSERT_EQ(plan.output_density.size(), spec.graph.size());
  for (const auto& node : spec.graph.nodes()) {
    const auto idx = static_cast<std::size_t>(node.id);
    if (hits[idx] > 0) {
      EXPECT_NEAR(plan.output_density[idx], acc[idx] / hits[idx], 1e-12)
          << node.spec.name;
    }
    if (node.spec.kind == en::LayerKind::kSpikingConv) {
      // calibrate()'s last probe run left the firing counters in place.
      EXPECT_NEAR(plan.output_density[idx], net.mean_firing_rate(node.id),
                  1e-9)
          << node.spec.name;
    }
  }
  // The event-input density is the probe's own fill.
  double input_acc = 0.0;
  for (const auto& step : probe.steps) input_acc += step.density();
  EXPECT_NEAR(plan.probe_input_density,
              input_acc / static_cast<double>(probe.steps.size()), 1e-12);

  // Thread-count invariance: the engine is bitwise thread-invariant, so
  // the telemetry must be too.
  const char* saved = std::getenv("EVEDGE_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";
  ASSERT_EQ(setenv("EVEDGE_THREADS", "1", 1), 0);
  const auto plan1 = en::ExecutionPlanner::calibrate(net, probe.steps);
  ASSERT_EQ(setenv("EVEDGE_THREADS", "3", 1), 0);
  const auto plan3 = en::ExecutionPlanner::calibrate(net, probe.steps);
  if (saved != nullptr) {
    setenv("EVEDGE_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("EVEDGE_THREADS");
  }
  EXPECT_EQ(plan1.output_density, plan3.output_density);
  EXPECT_EQ(plan1.route, plan3.route);
}

// ---------------------------------------------------- plan validation

TEST(ExecutionPlan, SetPlanValidatesAtomically) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 7);
  const auto probe = make_probe(spec, 81);
  const auto before = net.run(probe.steps);

  // Route on a non-conv node (the output) is rejected.
  en::ExecutionPlan bad = all_csr_plan(spec, {});
  bad.route.back() = en::Route::kCsr;
  EXPECT_THROW(net.set_execution_plan(&bad), std::invalid_argument);

  // Submanifold on a strided encoder layer is rejected.
  en::ExecutionPlan strided = all_csr_plan(spec, {});
  strided.route[1] = en::Route::kSubmanifold;  // enc1: stride 2
  EXPECT_THROW(net.set_execution_plan(&strided), std::invalid_argument);

  // Sparse route on a node with non-zero bias is rejected.
  en::ExecutionPlan biased = all_csr_plan(spec, {1});
  net.bias(1).assign(net.bias(1).size(), 0.25f);
  EXPECT_THROW(net.set_execution_plan(&biased), std::invalid_argument);
  net.bias(1).assign(net.bias(1).size(), 0.0f);

  // Size mismatch is rejected.
  en::ExecutionPlan short_plan;
  short_plan.route.assign(2, en::Route::kDense);
  EXPECT_THROW(net.set_execution_plan(&short_plan), std::invalid_argument);

  // All rejections left dense execution fully intact.
  const auto after = net.run(probe.steps);
  EXPECT_EQ(es::max_abs_diff(before, after), 0.0f);
  EXPECT_EQ(net.execution_plan(), nullptr);
}

// An installed activation hook forces dense execution (hooks observe and
// mutate dense activations), without uninstalling the plan.
TEST(ExecutionPlan, ActivationHookForcesDenseExecution) {
  const auto spec = chain_spec();
  en::FunctionalNetwork net(spec, 5);
  const auto probe = make_probe(spec, 91, 0.02);
  const auto plan = all_csr_plan(spec, {1, 2, 3});
  net.set_execution_plan(&plan);

  int hook_calls = 0;
  net.set_activation_hook(
      [&hook_calls](int, es::DenseTensor&) { ++hook_calls; });
  (void)net.run(probe.steps);
  EXPECT_GT(hook_calls, 0);
  EXPECT_EQ(net.last_exec_stats().sparse_node_runs, 0u);
  net.set_activation_hook(nullptr);

  (void)net.run(probe.steps);
  EXPECT_EQ(net.last_exec_stats().sparse_node_runs, 3u);
  net.set_execution_plan(nullptr);
}

// ----------------------------------------------------- int8 composition

// Sparse routes compose with the quant plan: planner-routed int8
// execution bit-matches dense int8 execution and stays within one
// quantization step of the fake-quant reference.
TEST(ExecutionPlan, ComposesWithQuantPlan) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  const auto calib = eq::make_validation_set(spec, 2, 9, 0.02);
  const auto eval = eq::make_validation_set(spec, 1, 99, 0.02);
  eq::QuantizedNetwork qnet(
      spec, 7, eq::uniform_assignment(spec, eq::Precision::kInt8), calib);

  const auto dense_int8 = qnet.run(eval[0].event_steps);
  const auto reference = qnet.run_reference(eval[0].event_steps);

  const auto& plan = qnet.plan_execution(eval[0].event_steps);
  EXPECT_GT(plan.sparse_node_count(), 0);
  EXPECT_TRUE(qnet.has_execution_plan());
  const auto routed_int8 = qnet.run(eval[0].event_steps);

  ASSERT_EQ(routed_int8.shape(), dense_int8.shape());
  EXPECT_EQ(es::max_abs_diff(routed_int8, dense_int8), 0.0f);
  const double step = eq::output_quant_step(reference);
  EXPECT_LE(es::max_abs_diff(routed_int8, reference), step + 1e-6);
  // Sparse int8 kernels genuinely executed.
  (void)qnet.run(eval[0].event_steps);
  EXPECT_GT(qnet.network().last_exec_stats().sparse_node_runs, 0u);
  qnet.clear_execution_plan();
  EXPECT_FALSE(qnet.has_execution_plan());
}

// -------------------------------------------------- cold start + bridge

TEST(ExecutionPlanner, ColdStartRoutesOnlyEventInputLayers) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 7);
  const auto plan = en::ExecutionPlanner::cold_start(net);
  const int event_input = spec.graph.input_ids().front();
  int routed = 0;
  for (const auto& node : spec.graph.nodes()) {
    const auto idx = static_cast<std::size_t>(node.id);
    if (plan.route[idx] == en::Route::kDense) continue;
    ++routed;
    ASSERT_EQ(node.parents.size(), 1u);
    EXPECT_EQ(node.parents.front(), event_input) << node.spec.name;
  }
  EXPECT_GT(routed, 0);
  // Installable and bitwise neutral.
  const auto probe = make_probe(spec, 13, 0.02);
  const auto dense_out = net.run(probe.steps);
  net.set_execution_plan(&plan);
  EXPECT_EQ(es::max_abs_diff(net.run(probe.steps), dense_out), 0.0f);
  net.set_execution_plan(nullptr);
}

TEST(ExecutionPlanner, CostModelSeedBridgesToPlan) {
  const auto spec = en::build_network(en::NetworkId::kAdaptiveSpikeNet,
                                      en::ZooConfig::test_scale());
  const auto profile = ec::measure_activation_densities(spec, 7, 0.02);
  en::FunctionalNetwork net(spec, 7);
  const auto plan = ec::seed_execution_plan(net, profile);
  EXPECT_GT(plan.sparse_node_count(), 0);
  const auto probe = make_probe(spec, 17, 0.02);
  const auto dense_out = net.run(probe.steps);
  net.set_execution_plan(&plan);
  EXPECT_EQ(es::max_abs_diff(net.run(probe.steps), dense_out), 0.0f);
  net.set_execution_plan(nullptr);
}

// ----------------------------------------------- batch executor planner

TEST(BatchExecutor, PlannerPathMatchesDenseExecution) {
  const auto spec = en::build_network(en::NetworkId::kDotie,
                                      en::ZooConfig::test_scale());
  const auto& shape = spec.graph.node(0).spec.out_shape;

  // Two merged frames with a few events each.
  std::vector<es::SparseFrame> frames;
  for (int n = 0; n < 2; ++n) {
    es::SparseFrame frame(shape.h, shape.w);
    for (int i = 0; i < 40; ++i) {
      es::CooChannel& ch = i % 2 == 0 ? frame.positive() : frame.negative();
      ch.accumulate((i * 7 + n) % shape.h, (i * 13 + 3 * n) % shape.w, 1.0f);
    }
    frames.push_back(std::move(frame));
  }

  en::FunctionalNetwork dense_net(spec, 7);
  ec::BatchExecutor dense_exec(dense_net);
  const auto dense_out = dense_exec.execute(frames);

  en::FunctionalNetwork planned_net(spec, 7);
  es::DenseTensor planned_out;
  {
    ec::BatchExecutor planned_exec(planned_net);
    planned_exec.enable_execution_planner();
    planned_out = planned_exec.execute(frames);
    EXPECT_NE(planned_exec.execution_plan(), nullptr);
    EXPECT_GT(planned_exec.execution_plan()->sparse_node_count(), 0);
    // Plan uninstalls with the executor.
  }
  EXPECT_EQ(planned_net.execution_plan(), nullptr);
  EXPECT_EQ(es::max_abs_diff(planned_out, dense_out), 0.0f);
}

// ------------------------------------- timestep-invariant caching

// The constant-image subgraph (e.g. HALSIE's image encoder) computes the
// same values every timestep: the engine runs it once per inference and
// reuses the cached activations, bitwise identically — and an installed
// hook (which must observe every node at every timestep) disables the
// cache.
TEST(Engine, TimeInvariantImageBranchIsCachedAcrossTimesteps) {
  const auto spec =
      en::build_network(en::NetworkId::kHalsie, en::ZooConfig::test_scale());
  ASSERT_GT(spec.timesteps, 1);
  en::FunctionalNetwork net(spec, 7);
  const auto probe = make_probe(spec, 101);

  const auto cached = net.run(probe.steps, probe.image_ptr());
  const std::size_t cached_execs = net.last_exec_stats().node_executions;

  // A no-op hook forces the uncached schedule: every node, every step.
  net.set_activation_hook([](int, es::DenseTensor&) {});
  const auto uncached = net.run(probe.steps, probe.image_ptr());
  const std::size_t full_execs = net.last_exec_stats().node_executions;
  net.set_activation_hook(nullptr);

  EXPECT_EQ(full_execs,
            spec.graph.size() * static_cast<std::size_t>(spec.timesteps));
  EXPECT_LT(cached_execs, full_execs);
  EXPECT_EQ(es::max_abs_diff(cached, uncached), 0.0f);
}

// Event-driven single-input networks have nothing to cache.
TEST(Engine, NoInvariantCachingWithoutConstantInputs) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 7);
  const auto probe = make_probe(spec, 103);
  (void)net.run(probe.steps);
  EXPECT_EQ(net.last_exec_stats().node_executions,
            spec.graph.size() * static_cast<std::size_t>(spec.timesteps));
}

// ------------------------------------------- chain boundary primitives

TEST(SparseBoundaries, SliceRoundTripAndReluAndDensity) {
  es::DenseTensor batch(es::TensorShape{2, 3, 6, 7});
  batch.fill_random(23);
  std::size_t i = 0;
  for (float& v : batch.data()) {
    if (i++ % 5 != 0) v = 0.0f;
  }
  for (int n = 0; n < 2; ++n) {
    auto sample = es::slice_to_channels(batch, n);
    ASSERT_EQ(sample.size(), 3u);
    // Density telemetry agrees with the dense slice.
    double slice_density = 0.0;
    for (int c = 0; c < 3; ++c) {
      for (int y = 0; y < 6; ++y) {
        for (int x = 0; x < 7; ++x) {
          if (batch.at(n, c, y, x) != 0.0f) slice_density += 1.0;
        }
      }
    }
    slice_density /= 3.0 * 6.0 * 7.0;
    EXPECT_NEAR(es::sample_density(sample), slice_density, 1e-12);
    // Round trip into a fresh tensor slice reproduces the original.
    es::DenseTensor back(es::TensorShape{2, 3, 6, 7}, 42.0f);
    es::channels_into_slice(sample, back, n);
    for (int c = 0; c < 3; ++c) {
      for (int y = 0; y < 6; ++y) {
        for (int x = 0; x < 7; ++x) {
          EXPECT_EQ(back.at(n, c, y, x), batch.at(n, c, y, x));
        }
      }
    }
    // Sparse ReLU == dense ReLU.
    es::relu_sample_inplace(sample);
    for (const auto& ch : sample) {
      for (const auto& e : ch.entries()) {
        EXPECT_GT(e.value, 0.0f);
      }
      EXPECT_NO_THROW(ch.validate());
    }
  }
  EXPECT_THROW((void)es::slice_to_channels(batch, 2), std::invalid_argument);
  const auto sample = es::slice_to_channels(batch, 0);
  es::DenseTensor wrong(es::TensorShape{2, 3, 5, 7});
  EXPECT_THROW(es::channels_into_slice(sample, wrong, 0),
               std::invalid_argument);
}

// Pre-packed weights produce bitwise-identical kernel output and reject
// mismatched packings.
TEST(SparseBoundaries, PrePackedWeightsMatchAndValidate) {
  const es::Conv2dSpec spec{3, 10, 3, 1, 1};
  es::DenseTensor in(es::TensorShape{1, 3, 20, 24});
  in.fill_random(29);
  std::size_t i = 0;
  for (float& v : in.data()) {
    if (i++ % 20 != 0) v = 0.0f;
  }
  es::DenseTensor w(es::TensorShape{10, 3, 3, 3});
  w.fill_random(31, 0.4f);
  const auto channels = es::dense_to_channels(in);

  std::vector<float> packed;
  es::pack_conv_weights(w, packed);
  es::Workspace ws;
  const auto plain = es::submanifold_conv2d(channels, w, {}, spec, nullptr,
                                            &ws);
  const auto prepacked = es::submanifold_conv2d(
      channels, w, {}, spec, nullptr, &ws,
      es::SubmanifoldThreading::kAuto, packed);
  ASSERT_EQ(plain.size(), prepacked.size());
  for (std::size_t c = 0; c < plain.size(); ++c) {
    EXPECT_EQ(plain[c].entries(), prepacked[c].entries());
  }
  std::vector<float> wrong(packed.begin(), packed.end() - 1);
  EXPECT_THROW((void)es::submanifold_conv2d(
                   channels, w, {}, spec, nullptr, &ws,
                   es::SubmanifoldThreading::kAuto, wrong),
               std::invalid_argument);
}

// ------------------------------------------------ streaming tile dataflow

class TiledParity : public ::testing::TestWithParam<en::NetworkId> {};

// Tiled execution of the planner's sparse chains is bitwise identical to
// untiled (and hence to dense) for every tile geometry — including
// pathological 1-row tiles (maximum halo traffic) and the degenerate
// full-frame tile (which must collapse back to the untiled walker).
TEST_P(TiledParity, ForcedTileSizesMatchDenseBitwise) {
  const auto spec = en::build_network(GetParam(), en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 7);
  const auto probe = make_probe(spec, 211, 0.02);

  const auto dense_out = net.run(probe.steps, probe.image_ptr());
  const auto base =
      en::ExecutionPlanner::calibrate(net, probe.steps, probe.image_ptr());
  net.set_execution_plan(&base);
  (void)net.run(probe.steps, probe.image_ptr());
  const std::size_t untiled_execs = net.last_exec_stats().node_executions;

  // 1 = pathological row tiles, 3 = non-dividing interior boundaries,
  // 1 << 20 clamps to the chain exit extent = degenerate single tile.
  for (const int rows : {1, 3, 1 << 20}) {
    const auto tiled = with_forced_tiles(spec, base, rows);
    net.set_execution_plan(&tiled);
    const auto out = net.run(probe.steps, probe.image_ptr());
    EXPECT_EQ(es::max_abs_diff(out, dense_out), 0.0f)
        << spec.name << " tile_rows=" << rows;
    // Tile fragments count as one logical execution: the schedule-level
    // stats are geometry-invariant.
    EXPECT_EQ(net.last_exec_stats().node_executions, untiled_execs)
        << spec.name << " tile_rows=" << rows;
    net.set_execution_plan(nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, TiledParity,
    ::testing::Values(en::NetworkId::kSpikeFlowNet,
                      en::NetworkId::kFusionFlowNet,
                      en::NetworkId::kAdaptiveSpikeNet, en::NetworkId::kDotie,
                      en::NetworkId::kEvFlowNet),
    [](const ::testing::TestParamInfo<en::NetworkId>& param_info) {
      auto name = en::to_string(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// Halo windows across a strided boundary: every tile size on the
// stride-2 chain must reproduce dense bitwise. Strides make the
// owned-row maps non-trivial (output row o needs input rows
// [o*s - p, o*s - p + k)), so off-by-ones show up here first.
TEST(TilePlan, HaloCorrectAcrossStrideBoundaries) {
  const auto spec = chain_spec();  // c2 has stride 2: exit plane 16 rows
  en::FunctionalNetwork net(spec, 5);
  const auto probe = make_probe(spec, 221, 0.03);
  const auto dense_out = net.run(probe.steps);

  const auto base = all_csr_plan(spec, {1, 2, 3});
  for (const int rows : {1, 2, 3, 5, 7, 16}) {
    const auto tiled = with_forced_tiles(spec, base, rows);
    ASSERT_EQ(tiled.tiles.chains.size(), 1u);
    EXPECT_EQ(tiled.tiles.chains[0].tiles, (16 + rows - 1) / rows);
    net.set_execution_plan(&tiled);
    const auto out = net.run(probe.steps);
    EXPECT_EQ(es::max_abs_diff(out, dense_out), 0.0f) << "tile_rows=" << rows;
    net.set_execution_plan(nullptr);
  }
}

// Spiking chains tile too: LIF membrane state is double-buffered per
// timestep, so halo rows recomputed by neighbouring tiles never corrupt
// the owned-row integration — bitwise, at every geometry.
TEST(TilePlan, SpikingChainTilesBitwise) {
  const auto spec = spiking_chain_spec();
  en::FunctionalNetwork net(spec, 5);
  const auto probe = make_probe(spec, 223, 0.05);
  const auto dense_out = net.run(probe.steps);

  const auto base = all_csr_plan(spec, {1, 2, 3});
  for (const int rows : {1, 4, 6}) {
    const auto tiled = with_forced_tiles(spec, base, rows);
    ASSERT_TRUE(tiled.tiles.enabled());
    net.set_execution_plan(&tiled);
    const auto out = net.run(probe.steps);
    EXPECT_EQ(es::max_abs_diff(out, dense_out), 0.0f) << "tile_rows=" << rows;
    net.set_execution_plan(nullptr);
  }
}

// The degenerate single-tile plan takes the untiled per-node path and
// reports identical boundary accounting.
TEST(TilePlan, DegenerateSingleTileIsUntiled) {
  const auto spec = chain_spec();
  en::FunctionalNetwork net(spec, 5);
  const auto probe = make_probe(spec, 227, 0.02);

  const auto base = all_csr_plan(spec, {1, 2, 3});
  net.set_execution_plan(&base);
  const auto untiled_out = net.run(probe.steps);
  const auto untiled = net.last_exec_stats();

  const auto degenerate = with_forced_tiles(spec, base, 1 << 20);
  EXPECT_FALSE(degenerate.tiles.enabled());
  net.set_execution_plan(&degenerate);
  const auto out = net.run(probe.steps);
  const auto stats = net.last_exec_stats();
  net.set_execution_plan(nullptr);

  EXPECT_EQ(es::max_abs_diff(out, untiled_out), 0.0f);
  EXPECT_EQ(stats.sparse_node_runs, untiled.sparse_node_runs);
  EXPECT_EQ(stats.sparsify_boundaries, untiled.sparsify_boundaries);
  EXPECT_EQ(stats.densify_boundaries, untiled.densify_boundaries);
  EXPECT_EQ(stats.sparse_macs, untiled.sparse_macs);
}

// The cache-capacity model tiles multi-layer chains once the working set
// exceeds the budget — and never a lone layer (no reuse to create).
TEST(TilePlan, CapacityModelTilesLongChainsUnderTinyBudget) {
  const auto spec = chain_spec();
  en::FunctionalNetwork net(spec, 5);
  const auto probe = make_probe(spec, 231, 0.02);
  const auto dense_out = net.run(probe.steps);

  en::TileOptions tiny;
  tiny.l2_budget_bytes = 1u << 12;  // 4 KiB: everything overflows
  auto plan = all_csr_plan(spec, {1, 2, 3});
  plan.tiles = en::build_tile_plan(spec, plan, tiny);
  ASSERT_TRUE(plan.tiles.enabled());
  for (const en::TileChain& chain : plan.tiles.chains) {
    if (chain.tiles > 1) EXPECT_GE(chain.nodes.size(), 2u);
  }
  net.set_execution_plan(&plan);
  EXPECT_EQ(es::max_abs_diff(net.run(probe.steps), dense_out), 0.0f);
  net.set_execution_plan(nullptr);

  // A lone sparse layer never auto-tiles: there is no cross-layer reuse
  // for tiling to create, however tight the budget.
  const auto lone = all_csr_plan(spec, {1});
  EXPECT_FALSE(en::build_tile_plan(spec, lone, tiny).enabled());

  // Disabling tiling yields the all-degenerate plan regardless of budget.
  en::TileOptions off;
  off.l2_budget_bytes = 1;
  off.enable = false;
  EXPECT_FALSE(en::build_tile_plan(spec, plan, off).enabled());
}

// Malformed tile plans are rejected atomically, before any engine state
// changes — same contract as route validation.
TEST(TilePlan, SetPlanValidatesTileChains) {
  const auto spec = chain_spec();
  en::FunctionalNetwork net(spec, 5);
  const auto probe = make_probe(spec, 233, 0.02);
  const auto before = net.run(probe.steps);

  const auto base = all_csr_plan(spec, {1, 2, 3});

  // A dense-routed member cannot be tiled.
  en::ExecutionPlan dense_member = base;
  dense_member.route[2] = en::Route::kDense;
  dense_member.tiles.chains.push_back(en::TileChain{{1, 2, 3}, 4, 4});
  EXPECT_THROW(net.set_execution_plan(&dense_member), std::invalid_argument);

  // Geometry must be consistent: tiles == ceil(exit_rows / tile_rows).
  en::ExecutionPlan bad_geom = base;
  bad_geom.tiles.chains.push_back(en::TileChain{{1, 2, 3}, 4, 3});
  EXPECT_THROW(net.set_execution_plan(&bad_geom), std::invalid_argument);

  // Chains cannot overlap.
  en::ExecutionPlan overlap = base;
  overlap.tiles.chains.push_back(en::TileChain{{1, 2}, 16, 1});
  overlap.tiles.chains.push_back(en::TileChain{{2, 3}, 8, 1});
  EXPECT_THROW(net.set_execution_plan(&overlap), std::invalid_argument);

  // Members must be consecutive parent-linked nodes.
  en::ExecutionPlan gap = base;
  gap.tiles.chains.push_back(en::TileChain{{1, 3}, 8, 2});
  EXPECT_THROW(net.set_execution_plan(&gap), std::invalid_argument);

  // Node ids must be in range.
  en::ExecutionPlan range = base;
  range.tiles.chains.push_back(en::TileChain{{99}, 1, 1});
  EXPECT_THROW(net.set_execution_plan(&range), std::invalid_argument);

  // All rejections left execution fully intact.
  EXPECT_EQ(net.execution_plan(), nullptr);
  EXPECT_EQ(es::max_abs_diff(net.run(probe.steps), before), 0.0f);
}

// Tiled int8 execution: bitwise identical to dense int8, and within one
// quantization step of the fake-quant reference — tiling composes with
// the quant plan without adding numeric drift.
TEST(TilePlan, TiledInt8WithinOneQuantStep) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  const auto calib = eq::make_validation_set(spec, 2, 9, 0.02);
  const auto eval = eq::make_validation_set(spec, 1, 99, 0.02);
  eq::QuantizedNetwork qnet(
      spec, 7, eq::uniform_assignment(spec, eq::Precision::kInt8), calib);

  const auto dense_int8 = qnet.run(eval[0].event_steps);
  const auto reference = qnet.run_reference(eval[0].event_steps);

  const auto tiled =
      with_forced_tiles(spec, qnet.plan_execution(eval[0].event_steps), 2);
  ASSERT_TRUE(tiled.tiles.enabled());
  qnet.network().set_execution_plan(&tiled);
  const auto routed_int8 = qnet.run(eval[0].event_steps);
  qnet.network().set_execution_plan(nullptr);
  qnet.clear_execution_plan();

  ASSERT_EQ(routed_int8.shape(), dense_int8.shape());
  EXPECT_EQ(es::max_abs_diff(routed_int8, dense_int8), 0.0f);
  const double step = eq::output_quant_step(reference);
  EXPECT_LE(es::max_abs_diff(routed_int8, reference), step + 1e-6);
}

// ------------------------------------------- sparse spike emission

// Spiking layers whose consumers run sparse emit spikes directly as COO:
// the only sparsify boundary left in an all-sparse spiking chain is the
// event input itself (one per timestep), with output unchanged.
TEST(Engine, SpikingChainEmitsSparseSpikes) {
  const auto spec = spiking_chain_spec();
  en::FunctionalNetwork net(spec, 5);
  const auto probe = make_probe(spec, 241, 0.05);
  const auto dense_out = net.run(probe.steps);

  const auto plan = all_csr_plan(spec, {1, 2, 3});
  net.set_execution_plan(&plan);
  const auto routed_out = net.run(probe.steps);
  const en::ExecStats& stats = net.last_exec_stats();
  net.set_execution_plan(nullptr);

  EXPECT_EQ(es::max_abs_diff(routed_out, dense_out), 0.0f);
  const auto steps = static_cast<std::size_t>(spec.timesteps);
  // s1/s2 emit COO to their sparse consumers; the tail s3 sees a dense
  // consumer (the output node) and keeps dense spikes — so the chain
  // crosses the representation boundary only at the event input.
  EXPECT_EQ(stats.sparsify_boundaries, steps);
  EXPECT_EQ(stats.densify_boundaries, 0u);
}
