#include "core/e2e_accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/kernels.hpp"
#include "quant/calibrate.hpp"
#include "quant/quantizer.hpp"

namespace evedge::core {

using sparse::DenseTensor;
using sparse::SparseFrame;

std::vector<SparseFrame> reslot_merged_frames(
    const std::vector<SparseFrame>& bins, const DsfaConfig& config) {
  // Replay the DSFA bucketing on this interval's bins in isolation: a
  // buffer large enough to hold them all, one dispatch at the end.
  DsfaConfig local = config;
  local.event_buffer_size = bins.size() + 1;
  local.inference_queue_capacity = bins.size() + 1;
  DynamicSparseFrameAggregator dsfa(local);
  for (const SparseFrame& bin : bins) dsfa.push(bin);
  dsfa.dispatch_available();

  std::vector<SparseFrame> slots;
  for (const SparseFrame& bin : bins) {
    SparseFrame empty(bin.height(), bin.width());
    empty.t_start = bin.t_start;
    empty.t_end = bin.t_end;
    empty.bin_index = bin.bin_index;
    slots.push_back(std::move(empty));
  }

  while (auto batch = dsfa.take_ready_batch()) {
    for (const SparseFrame& merged : batch->frames) {
      // Constituent slots: bins fully inside the merged time span
      // (bucket constituents are contiguous in time).
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < bins.size(); ++i) {
        if (bins[i].t_start >= merged.t_start &&
            bins[i].t_end <= merged.t_end) {
          members.push_back(i);
        }
      }
      if (members.empty()) continue;
      switch (config.merge_mode) {
        case sparse::MergeMode::kAdd: {
          // Temporal coarsening: the whole bucket lands in its first slot.
          SparseFrame f = merged;
          f.bin_index = bins[members.front()].bin_index;
          slots[members.front()] = std::move(f);
          break;
        }
        case sparse::MergeMode::kAverage:
          for (const std::size_t m : members) {
            SparseFrame f = merged;
            f.bin_index = bins[m].bin_index;
            slots[m] = std::move(f);
          }
          break;
        case sparse::MergeMode::kBatch:
          for (const std::size_t m : members) slots[m] = bins[m];
          break;
      }
    }
  }
  return slots;
}

namespace {

/// Builds the network input for one interval from per-bin sparse frames:
/// SNN/hybrid nets take one 2-channel tensor per timestep; pure ANN nets
/// (timesteps == 1) take all bins stacked as channels.
[[nodiscard]] std::vector<DenseTensor> to_network_input(
    const nn::NetworkSpec& spec, const std::vector<SparseFrame>& bins) {
  std::vector<DenseTensor> steps;
  if (spec.timesteps > 1) {
    if (static_cast<int>(bins.size()) != spec.timesteps) {
      throw std::invalid_argument("bin count != timesteps");
    }
    for (const SparseFrame& bin : bins) steps.push_back(bin.to_dense());
    return steps;
  }
  // Stack bins as channels: [1, 2 * n_bins, H, W].
  const int h = bins.front().height();
  const int w = bins.front().width();
  DenseTensor stacked(sparse::TensorShape{
      1, 2 * static_cast<int>(bins.size()), h, w});
  for (std::size_t b = 0; b < bins.size(); ++b) {
    const DenseTensor d = bins[b].to_dense();
    for (int c = 0; c < 2; ++c) {
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          stacked.at(0, static_cast<int>(2 * b) + c, y, x) =
              d.at(0, c, y, x);
        }
      }
    }
  }
  steps.push_back(std::move(stacked));
  return steps;
}

}  // namespace

E2eAccuracyResult evaluate_e2e_accuracy(const nn::NetworkSpec& spec,
                                        const events::EventStream& stream,
                                        const E2eAccuracyConfig& config) {
  if (config.max_intervals <= 0) {
    throw std::invalid_argument("max_intervals must be > 0");
  }
  // The network's event input extent must match the sensor geometry.
  const auto input_shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  if (input_shape.h != stream.geometry().height ||
      input_shape.w != stream.geometry().width) {
    throw std::invalid_argument(
        "network input extent does not match stream geometry");
  }

  E2sfConfig e2sf_cfg = config.e2sf;
  e2sf_cfg.n_bins = spec.n_bins;  // input representation is the network's
  const Event2SparseFrame e2sf(stream.geometry(), e2sf_cfg);

  const auto period_us = static_cast<events::TimeUs>(
      std::llround(1e6 / config.frame_rate_hz));
  const auto available = static_cast<std::size_t>(
      (stream.t_end() - stream.t_begin()) / period_us);
  const std::size_t n_intervals = std::min(
      static_cast<std::size_t>(config.max_intervals), available);
  if (n_intervals == 0) {
    throw std::invalid_argument("stream shorter than one frame interval");
  }
  const events::FrameClock clock = events::FrameClock::uniform(
      stream.t_begin(), period_us, n_intervals + 1);
  const auto intervals = e2sf.convert_stream(stream, clock);

  // Declared before the network so an installed pointer never dangles
  // inside this scope.
  nn::ExecutionPlan exec_plan;
  nn::FunctionalNetwork net(spec, config.weight_seed);
  const bool needs_image = spec.graph.input_ids().size() > 1;
  DenseTensor image;
  if (needs_image) {
    image = DenseTensor(
        spec.graph.node(spec.graph.input_ids().back()).spec.out_shape);
    image.fill_random(1234, 0.5f);
    for (float& v : image.data()) v = std::abs(v);
  }

  // Pristine weights for restoration after the quantized runs.
  std::vector<int> weight_nodes;
  std::vector<DenseTensor> pristine;
  for (const auto& node : spec.graph.nodes()) {
    if (nn::is_weight_layer(node.spec.kind)) {
      weight_nodes.push_back(node.id);
      pristine.push_back(net.weights(node.id));
    }
  }

  if (config.use_execution_planner) {
    // Warmup-calibrate the density-adaptive routes on the first
    // interval's unmerged frames (the FP32 reference inputs) and leave
    // the plan installed: the reference and int8 runs below route
    // through the sparse kernels, while the fake-quant run's activation
    // hook keeps itself dense.
    const auto probe_steps = to_network_input(spec, intervals.front());
    exec_plan = nn::ExecutionPlanner::calibrate(
        net, probe_steps, needs_image ? &image : nullptr);
    net.set_execution_plan(&exec_plan);
  }

  double degradation_sum = 0.0;
  // Scale-free deviation for magnitude-dependent outputs: cosine
  // dissimilarity between the output fields (random-weight outputs have
  // arbitrary magnitude, so raw AEE units do not transfer to the paper's
  // metric scale).
  const auto cosine_dissimilarity = [](const DenseTensor& a,
                                       const DenseTensor& b) {
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      dot += static_cast<double>(a.data()[i]) *
             static_cast<double>(b.data()[i]);
      na += static_cast<double>(a.data()[i]) *
            static_cast<double>(a.data()[i]);
      nb += static_cast<double>(b.data()[i]) *
            static_cast<double>(b.data()[i]);
    }
    const double denom = std::sqrt(na) * std::sqrt(nb);
    if (denom <= 1e-12) return 0.0;
    return std::max(0.0, 1.0 - dot / denom);
  };
  const auto deviation = [&](const DenseTensor& out, const DenseTensor& ref) {
    switch (spec.task) {
      case nn::TaskKind::kOpticalFlow:
      case nn::TaskKind::kDepth:
        // Dense regression maps: scale-free deviation (per-pixel
        // relative error explodes on the near-zero reference values a
        // random-weight net emits).
        return cosine_dissimilarity(out, ref);
      default:
        return quant::metric_degradation(spec.task, out, ref);
    }
  };

  // Real-engine cross-check: calibrate activation scales and prepare
  // the int8 plan for the kInt8 layers of the precision map before the
  // evaluation loop (the fake-quant path below stays authoritative for
  // the headline metric). Calibration runs on the DSFA-merged inputs —
  // the inputs the int8 engine actually executes: cAdd merging sums
  // bins into slots whose magnitudes exceed the unmerged maxima, and a
  // scale calibrated on unmerged inputs would saturate exactly the
  // busiest slots.
  quant::QuantPlan int8_plan;
  // Converted merged inputs, kept (cross-check only) for reuse as the
  // evaluation loop's merged steps.
  std::vector<quant::ValidationSample> samples;
  if (config.int8_engine_cross_check) {
    for (const auto& bins : intervals) {
      const auto merged_bins =
          config.apply_dsfa ? reslot_merged_frames(bins, config.dsfa) : bins;
      quant::ValidationSample s;
      s.event_steps = to_network_input(spec, merged_bins);
      if (needs_image) s.image = image;
      samples.push_back(std::move(s));
    }
    const quant::CalibrationTable table =
        quant::calibrate_activations(net, samples);
    // The cross-check compares substrates on the SAME precision
    // assignment as the fake-quant path, which has no input-layer
    // guard — so opt out of it here (the guard is an engine speed
    // policy, not an accuracy statement).
    int8_plan = quant::build_quant_plan(
        net, config.precisions, table, /*simulate=*/false,
        quant::WeightGranularity::kPerChannel,
        quant::QuantPlanOptions{.quantize_input_layer = true});
  }

  double degradation_int8_sum = 0.0;
  for (std::size_t iv = 0; iv < intervals.size(); ++iv) {
    const auto& bins = intervals[iv];
    // Reference: unmerged, FP32.
    const auto ref_steps = to_network_input(spec, bins);
    const DenseTensor ref =
        net.run(ref_steps, needs_image ? &image : nullptr);

    // Ev-Edge: DSFA-merged slots, quantized per the precision map. The
    // cross-check path already converted them for calibration — reuse
    // instead of re-running the reslot + conversion.
    std::vector<DenseTensor> merged_local;
    if (!config.int8_engine_cross_check) {
      const auto merged_bins =
          config.apply_dsfa ? reslot_merged_frames(bins, config.dsfa) : bins;
      merged_local = to_network_input(spec, merged_bins);
    }
    const std::vector<DenseTensor>& merged_steps =
        config.int8_engine_cross_check ? samples[iv].event_steps
                                       : merged_local;

    for (std::size_t i = 0; i < weight_nodes.size(); ++i) {
      const auto it = config.precisions.find(weight_nodes[i]);
      if (it != config.precisions.end() &&
          it->second != quant::Precision::kFp32) {
        quant::fake_quantize(net.weights(weight_nodes[i]), it->second);
      }
    }
    net.set_activation_hook(
        [&config](int node_id, DenseTensor& activation) {
          const auto it = config.precisions.find(node_id);
          if (it != config.precisions.end() &&
              it->second != quant::Precision::kFp32) {
            quant::fake_quantize(activation, it->second);
          }
        });
    const DenseTensor out =
        net.run(merged_steps, needs_image ? &image : nullptr);
    net.set_activation_hook(nullptr);
    for (std::size_t i = 0; i < weight_nodes.size(); ++i) {
      net.weights(weight_nodes[i]) = pristine[i];
    }
    degradation_sum += deviation(out, ref);

    if (config.int8_engine_cross_check) {
      // Same merged inputs through the real int8 kernels (weights stay
      // pristine — the plan snapshots its own quantized copies).
      net.set_quant_plan(&int8_plan);
      const DenseTensor out_int8 =
          net.run(merged_steps, needs_image ? &image : nullptr);
      net.set_quant_plan(nullptr);
      degradation_int8_sum += deviation(out_int8, ref);
    }
  }
  const double degradation =
      degradation_sum / static_cast<double>(intervals.size());

  const quant::PaperBaseline anchor =
      quant::paper_baseline(spec.task, spec.name);
  E2eAccuracyResult result;
  result.baseline_metric = anchor.value;
  result.metric_name = anchor.metric_name;
  result.lower_is_better = anchor.lower_is_better;
  result.measured_degradation = degradation;
  if (anchor.lower_is_better) {
    // Error metrics: the measured degradation is a relative fraction
    // (flow normalized above; depth error is relative by definition),
    // so it scales the anchor multiplicatively.
    result.evedge_metric = anchor.value * (1.0 + degradation);
  } else {
    // Quality metrics (mIoU): degradation is a fraction lost.
    result.evedge_metric = anchor.value * (1.0 - degradation);
  }
  if (config.int8_engine_cross_check) {
    result.has_int8_cross_check = true;
    const double d8 =
        degradation_int8_sum / static_cast<double>(intervals.size());
    result.measured_degradation_int8 = d8;
    result.evedge_metric_int8 = anchor.lower_is_better
                                    ? anchor.value * (1.0 + d8)
                                    : anchor.value * (1.0 - d8);
  }
  return result;
}

}  // namespace evedge::core
