#include "nn/zoo.hpp"

#include <stdexcept>

namespace evedge::nn {

namespace {

[[nodiscard]] LayerSpec conv(const std::string& name, int in, int out, int k,
                             int s, int p, bool relu = true) {
  LayerSpec spec;
  spec.name = name;
  spec.kind = LayerKind::kConv;
  spec.conv = Conv2dSpec{in, out, k, s, p};
  spec.relu_after = relu;
  return spec;
}

[[nodiscard]] LayerSpec sconv(const ZooConfig& cfg, const std::string& name,
                              int in, int out, int k, int s, int p) {
  LayerSpec spec;
  spec.name = name;
  spec.kind = LayerKind::kSpikingConv;
  spec.conv = Conv2dSpec{in, out, k, s, p};
  spec.lif = LifParams{0.85f, 0.22f * cfg.lif_threshold_scale, true};
  return spec;
}

[[nodiscard]] LayerSpec asconv(const ZooConfig& cfg, const std::string& name,
                               int in, int out, int k, int s, int p) {
  LayerSpec spec = sconv(cfg, name, in, out, k, s, p);
  spec.kind = LayerKind::kAdaptiveSpikingConv;
  return spec;
}

[[nodiscard]] LayerSpec tconv(const std::string& name, int in, int out) {
  LayerSpec spec;
  spec.name = name;
  spec.kind = LayerKind::kTransposedConv;
  spec.conv = Conv2dSpec{in, out, 4, 2, 1};
  spec.relu_after = true;
  return spec;
}

[[nodiscard]] LayerSpec helper(const std::string& name, LayerKind kind) {
  LayerSpec spec;
  spec.name = name;
  spec.kind = kind;
  return spec;
}

void validate_zoo_config(const ZooConfig& cfg) {
  if (cfg.height < 16 || cfg.width < 16) {
    throw std::invalid_argument("zoo: input extent too small (< 16)");
  }
  if (cfg.base_channels < 2) {
    throw std::invalid_argument("zoo: base_channels must be >= 2");
  }
  if (cfg.n_bins <= 0) {
    throw std::invalid_argument("zoo: n_bins must be > 0");
  }
  if (!(cfg.lif_threshold_scale > 0.0f)) {
    throw std::invalid_argument("zoo: lif_threshold_scale must be > 0");
  }
}

}  // namespace

std::string to_string(NetworkId id) {
  switch (id) {
    case NetworkId::kSpikeFlowNet: return "SpikeFlowNet";
    case NetworkId::kFusionFlowNet: return "Fusion-FlowNet";
    case NetworkId::kAdaptiveSpikeNet: return "Adaptive-SpikeNet";
    case NetworkId::kHalsie: return "HALSIE";
    case NetworkId::kHidalgoDepth: return "HidalgoDepth";
    case NetworkId::kDotie: return "DOTIE";
    case NetworkId::kEvFlowNet: return "EV-FlowNet";
  }
  return "?";
}

NetworkSpec build_spikeflownet(const ZooConfig& cfg) {
  validate_zoo_config(cfg);
  const int B = cfg.base_channels;
  NetworkSpec net;
  net.name = "SpikeFlowNet";
  net.task = TaskKind::kOpticalFlow;
  net.n_bins = cfg.n_bins;
  net.timesteps = cfg.n_bins;  // sequential event-bin presentation
  NetworkGraph& g = net.graph;

  const int in = g.add_input("events", TensorShape{1, 2, cfg.height,
                                                   cfg.width});
  // Spiking encoder (4 SNN layers).
  const int e1 = g.add_layer(sconv(cfg, "enc1", 2, B, 3, 2, 1), {in});
  const int e2 = g.add_layer(sconv(cfg, "enc2", B, 2 * B, 3, 2, 1), {e1});
  const int e3 = g.add_layer(sconv(cfg, "enc3", 2 * B, 4 * B, 3, 2, 1), {e2});
  const int e4 = g.add_layer(sconv(cfg, "enc4", 4 * B, 8 * B, 3, 2, 1), {e3});
  // ANN residual bottleneck (2).
  const int r1 = g.add_layer(conv("res1", 8 * B, 8 * B, 3, 1, 1), {e4});
  const int r2 = g.add_layer(conv("res2", 8 * B, 8 * B, 3, 1, 1), {r1});
  // ANN decoder with encoder skips (4 transposed convs).
  const int d4 = g.add_layer(tconv("dec4", 8 * B, 4 * B), {r2});
  const int c4 = g.add_layer(helper("skip4", LayerKind::kConcat), {d4, e3});
  const int d3 = g.add_layer(tconv("dec3", 8 * B, 2 * B), {c4});
  const int c3 = g.add_layer(helper("skip3", LayerKind::kConcat), {d3, e2});
  const int d2 = g.add_layer(tconv("dec2", 4 * B, B), {c3});
  const int c2 = g.add_layer(helper("skip2", LayerKind::kConcat), {d2, e1});
  const int d1 = g.add_layer(tconv("dec1", 2 * B, B), {c2});
  // Flow head (2).
  const int h1 = g.add_layer(conv("flow1", B, 16, 3, 1, 1), {d1});
  const int h2 = g.add_layer(conv("flow2", 16, 2, 1, 1, 0, false), {h1});
  g.add_layer(helper("flow", LayerKind::kOutput), {h2});
  g.validate();
  return net;
}

NetworkSpec build_evflownet(const ZooConfig& cfg) {
  validate_zoo_config(cfg);
  const int B = cfg.base_channels;
  NetworkSpec net;
  net.name = "EV-FlowNet";
  net.task = TaskKind::kOpticalFlow;
  net.n_bins = cfg.n_bins;
  net.timesteps = 1;  // bins stacked as channels (single presentation)
  NetworkGraph& g = net.graph;

  const int in = g.add_input(
      "events", TensorShape{1, 2 * cfg.n_bins, cfg.height, cfg.width});
  const int e1 = g.add_layer(conv("enc1", 2 * cfg.n_bins, B, 3, 2, 1), {in});
  const int e2 = g.add_layer(conv("enc2", B, 2 * B, 3, 2, 1), {e1});
  const int e3 = g.add_layer(conv("enc3", 2 * B, 4 * B, 3, 2, 1), {e2});
  const int e4 = g.add_layer(conv("enc4", 4 * B, 8 * B, 3, 2, 1), {e3});
  // Two residual blocks (4 convs + add nodes).
  const int r1a = g.add_layer(conv("res1a", 8 * B, 8 * B, 3, 1, 1), {e4});
  const int r1b =
      g.add_layer(conv("res1b", 8 * B, 8 * B, 3, 1, 1, false), {r1a});
  const int r1 = g.add_layer(helper("res1", LayerKind::kAdd), {r1b, e4});
  const int r2a = g.add_layer(conv("res2a", 8 * B, 8 * B, 3, 1, 1), {r1});
  const int r2b =
      g.add_layer(conv("res2b", 8 * B, 8 * B, 3, 1, 1, false), {r2a});
  const int r2 = g.add_layer(helper("res2", LayerKind::kAdd), {r2b, r1});
  // Decoder with skips.
  const int d4 = g.add_layer(tconv("dec4", 8 * B, 4 * B), {r2});
  const int c4 = g.add_layer(helper("skip4", LayerKind::kConcat), {d4, e3});
  const int d3 = g.add_layer(tconv("dec3", 8 * B, 2 * B), {c4});
  const int c3 = g.add_layer(helper("skip3", LayerKind::kConcat), {d3, e2});
  const int d2 = g.add_layer(tconv("dec2", 4 * B, B), {c3});
  const int c2 = g.add_layer(helper("skip2", LayerKind::kConcat), {d2, e1});
  const int d1 = g.add_layer(tconv("dec1", 2 * B, B), {c2});
  const int h1 = g.add_layer(conv("flow1", B, 16, 3, 1, 1), {d1});
  const int h2 = g.add_layer(conv("flow2", 16, 2, 1, 1, 0, false), {h1});
  g.add_layer(helper("flow", LayerKind::kOutput), {h2});
  g.validate();
  return net;
}

NetworkSpec build_adaptive_spikenet(const ZooConfig& cfg) {
  validate_zoo_config(cfg);
  const int B = cfg.base_channels;
  NetworkSpec net;
  net.name = "Adaptive-SpikeNet";
  net.task = TaskKind::kOpticalFlow;
  net.n_bins = cfg.n_bins;
  net.timesteps = cfg.n_bins;
  NetworkGraph& g = net.graph;

  const int in = g.add_input("events", TensorShape{1, 2, cfg.height,
                                                   cfg.width});
  const int e1 = g.add_layer(asconv(cfg, "enc1", 2, B, 3, 2, 1), {in});
  const int e2 = g.add_layer(asconv(cfg, "enc2", B, 2 * B, 3, 2, 1), {e1});
  const int e3 = g.add_layer(asconv(cfg, "enc3", 2 * B, 4 * B, 3, 2, 1), {e2});
  const int e4 = g.add_layer(asconv(cfg, "enc4", 4 * B, 8 * B, 3, 2, 1), {e3});
  const int r1 = g.add_layer(asconv(cfg, "res1", 8 * B, 8 * B, 3, 1, 1), {e4});
  const int r2 = g.add_layer(asconv(cfg, "res2", 8 * B, 8 * B, 3, 1, 1), {r1});
  const int u1 = g.add_layer(helper("up1", LayerKind::kUpsample), {r2});
  const int d1 = g.add_layer(asconv(cfg, "dec1", 8 * B, B, 3, 1, 1), {u1});
  const int u2 = g.add_layer(helper("up2", LayerKind::kUpsample), {d1});
  const int d2 = g.add_layer(asconv(cfg, "dec2", B, 2, 3, 1, 1), {u2});
  // Flow is decoded from spike rates at quarter resolution, then
  // upsampled to full resolution (non-weight helper).
  LayerSpec up = helper("up4x", LayerKind::kUpsample);
  up.upsample_factor = 4;
  const int u3 = g.add_layer(up, {d2});
  g.add_layer(helper("flow", LayerKind::kOutput), {u3});
  g.validate();
  return net;
}

NetworkSpec build_fusionflownet(const ZooConfig& cfg) {
  validate_zoo_config(cfg);
  const int B = cfg.base_channels;
  NetworkSpec net;
  net.name = "Fusion-FlowNet";
  net.task = TaskKind::kOpticalFlow;
  net.n_bins = cfg.n_bins;
  net.timesteps = cfg.n_bins;
  NetworkGraph& g = net.graph;

  const int ev = g.add_input("events", TensorShape{1, 2, cfg.height,
                                                   cfg.width});
  const int im = g.add_input("image", TensorShape{1, 1, cfg.height,
                                                  cfg.width});
  // Spiking event encoder: 4 levels x 2 convs + 2 bottleneck = 10 SNN.
  const int s1a = g.add_layer(sconv(cfg, "ev1a", 2, B, 3, 1, 1), {ev});
  const int s1b = g.add_layer(sconv(cfg, "ev1b", B, B, 3, 2, 1), {s1a});
  const int s2a = g.add_layer(sconv(cfg, "ev2a", B, 2 * B, 3, 1, 1), {s1b});
  const int s2b = g.add_layer(sconv(cfg, "ev2b", 2 * B, 2 * B, 3, 2, 1), {s2a});
  const int s3a = g.add_layer(sconv(cfg, "ev3a", 2 * B, 4 * B, 3, 1, 1), {s2b});
  const int s3b = g.add_layer(sconv(cfg, "ev3b", 4 * B, 4 * B, 3, 2, 1), {s3a});
  const int s4a = g.add_layer(sconv(cfg, "ev4a", 4 * B, 8 * B, 3, 1, 1), {s3b});
  const int s4b = g.add_layer(sconv(cfg, "ev4b", 8 * B, 8 * B, 3, 2, 1), {s4a});
  const int sb1 = g.add_layer(sconv(cfg, "evb1", 8 * B, 8 * B, 3, 1, 1), {s4b});
  const int sb2 = g.add_layer(sconv(cfg, "evb2", 8 * B, 8 * B, 3, 1, 1), {sb1});
  // ANN image encoder: 9 convs.
  const int i1 = g.add_layer(conv("im1", 1, B, 3, 2, 1), {im});
  const int i2 = g.add_layer(conv("im2", B, 2 * B, 3, 2, 1), {i1});
  const int i3 = g.add_layer(conv("im3", 2 * B, 4 * B, 3, 2, 1), {i2});
  const int i4 = g.add_layer(conv("im4", 4 * B, 8 * B, 3, 2, 1), {i3});
  const int i5 = g.add_layer(conv("im5", 8 * B, 8 * B, 3, 1, 1), {i4});
  const int i6 = g.add_layer(conv("im6", 8 * B, 8 * B, 3, 1, 1), {i5});
  const int i7 = g.add_layer(conv("im7", 8 * B, 8 * B, 3, 1, 1), {i6});
  const int i8 = g.add_layer(conv("im8", 8 * B, 8 * B, 3, 1, 1), {i7});
  const int i9 = g.add_layer(conv("im9", 8 * B, 8 * B, 3, 1, 1), {i8});
  // Fused ANN decoder: 10 convs.
  const int fuse =
      g.add_layer(helper("fuse", LayerKind::kConcat), {sb2, i9});
  const int f1 = g.add_layer(conv("fuse1", 16 * B, 8 * B, 3, 1, 1), {fuse});
  const int d4 = g.add_layer(tconv("dec4", 8 * B, 4 * B), {f1});
  const int c4 = g.add_layer(helper("skip4", LayerKind::kConcat), {d4, s3b});
  const int f2 = g.add_layer(conv("fuse2", 8 * B, 4 * B, 3, 1, 1), {c4});
  const int d3 = g.add_layer(tconv("dec3", 4 * B, 2 * B), {f2});
  const int c3 = g.add_layer(helper("skip3", LayerKind::kConcat), {d3, s2b});
  const int f3 = g.add_layer(conv("fuse3", 4 * B, 2 * B, 3, 1, 1), {c3});
  const int d2 = g.add_layer(tconv("dec2", 2 * B, B), {f3});
  const int c2 = g.add_layer(helper("skip2", LayerKind::kConcat), {d2, s1b});
  const int f4 = g.add_layer(conv("fuse4", 2 * B, B, 3, 1, 1), {c2});
  const int d1 = g.add_layer(tconv("dec1", B, B), {f4});
  const int h1 = g.add_layer(conv("flow1", B, 16, 3, 1, 1), {d1});
  const int h2 = g.add_layer(conv("flow2", 16, 2, 1, 1, 0, false), {h1});
  g.add_layer(helper("flow", LayerKind::kOutput), {h2});
  g.validate();
  return net;
}

NetworkSpec build_halsie(const ZooConfig& cfg) {
  validate_zoo_config(cfg);
  const int B = cfg.base_channels;
  constexpr int kClasses = 6;  // MVSEC-style driving classes
  NetworkSpec net;
  net.name = "HALSIE";
  net.task = TaskKind::kSegmentation;
  net.n_bins = cfg.n_bins;
  net.timesteps = cfg.n_bins;
  NetworkGraph& g = net.graph;

  const int ev = g.add_input("events", TensorShape{1, 2, cfg.height,
                                                   cfg.width});
  const int im = g.add_input("image", TensorShape{1, 1, cfg.height,
                                                  cfg.width});
  // Spiking event branch: 3 SNN convs.
  const int s1 = g.add_layer(sconv(cfg, "ev1", 2, B, 3, 2, 1), {ev});
  const int s2 = g.add_layer(sconv(cfg, "ev2", B, 2 * B, 3, 2, 1), {s1});
  const int s3 = g.add_layer(sconv(cfg, "ev3", 2 * B, 4 * B, 3, 2, 1), {s2});
  // ANN image branch: 5 convs.
  const int i1 = g.add_layer(conv("im1", 1, B, 3, 2, 1), {im});
  const int i2 = g.add_layer(conv("im2", B, 2 * B, 3, 2, 1), {i1});
  const int i3 = g.add_layer(conv("im3", 2 * B, 4 * B, 3, 2, 1), {i2});
  const int i4 = g.add_layer(conv("im4", 4 * B, 4 * B, 3, 1, 1), {i3});
  const int i5 = g.add_layer(conv("im5", 4 * B, 4 * B, 3, 1, 1), {i4});
  // Fused ANN decoder: 8 convs.
  const int fuse = g.add_layer(helper("fuse", LayerKind::kConcat), {s3, i5});
  const int f1 = g.add_layer(conv("fuse1", 8 * B, 4 * B, 3, 1, 1), {fuse});
  const int f2 = g.add_layer(conv("fuse2", 4 * B, 4 * B, 3, 1, 1), {f1});
  const int d3 = g.add_layer(tconv("dec3", 4 * B, 2 * B), {f2});
  const int f3 = g.add_layer(conv("fuse3", 2 * B, 2 * B, 3, 1, 1), {d3});
  const int d2 = g.add_layer(tconv("dec2", 2 * B, B), {f3});
  const int f4 = g.add_layer(conv("fuse4", B, B, 3, 1, 1), {d2});
  const int d1 = g.add_layer(tconv("dec1", B, B), {f4});
  const int h1 =
      g.add_layer(conv("seg", B, kClasses, 1, 1, 0, false), {d1});
  g.add_layer(helper("segmentation", LayerKind::kOutput), {h1});
  g.validate();
  return net;
}

NetworkSpec build_hidalgo_depth(const ZooConfig& cfg) {
  validate_zoo_config(cfg);
  const int B = cfg.base_channels;
  NetworkSpec net;
  net.name = "HidalgoDepth";
  net.task = TaskKind::kDepth;
  net.n_bins = cfg.n_bins;
  net.timesteps = 1;  // voxel-grid bins stacked as channels
  NetworkGraph& g = net.graph;

  const int in = g.add_input(
      "events", TensorShape{1, 2 * cfg.n_bins, cfg.height, cfg.width});
  const int e1 = g.add_layer(conv("enc1", 2 * cfg.n_bins, B, 3, 2, 1), {in});
  const int e2 = g.add_layer(conv("enc2", B, 2 * B, 3, 2, 1), {e1});
  const int e3 = g.add_layer(conv("enc3", 2 * B, 4 * B, 3, 2, 1), {e2});
  const int e4 = g.add_layer(conv("enc4", 4 * B, 8 * B, 3, 2, 1), {e3});
  const int e5 = g.add_layer(conv("enc5", 8 * B, 8 * B, 3, 1, 1), {e4});
  const int e6 = g.add_layer(conv("enc6", 8 * B, 8 * B, 3, 1, 1), {e5});
  const int r1 = g.add_layer(conv("res1", 8 * B, 8 * B, 3, 1, 1), {e6});
  const int r2 = g.add_layer(conv("res2", 8 * B, 8 * B, 3, 1, 1), {r1});
  const int d4 = g.add_layer(tconv("dec4", 8 * B, 4 * B), {r2});
  const int c4 = g.add_layer(helper("skip4", LayerKind::kConcat), {d4, e3});
  const int d3 = g.add_layer(tconv("dec3", 8 * B, 2 * B), {c4});
  const int c3 = g.add_layer(helper("skip3", LayerKind::kConcat), {d3, e2});
  const int d2 = g.add_layer(tconv("dec2", 4 * B, B), {c3});
  const int c2 = g.add_layer(helper("skip2", LayerKind::kConcat), {d2, e1});
  const int d1 = g.add_layer(tconv("dec1", 2 * B, B), {c2});
  const int f1 = g.add_layer(conv("refine1", B, B, 3, 1, 1), {d1});
  const int f2 = g.add_layer(conv("refine2", B, 16, 3, 1, 1), {f1});
  const int h1 = g.add_layer(conv("depth", 16, 1, 1, 1, 0, false), {f2});
  g.add_layer(helper("depth-out", LayerKind::kOutput), {h1});
  g.validate();
  return net;
}

NetworkSpec build_dotie(const ZooConfig& cfg) {
  validate_zoo_config(cfg);
  NetworkSpec net;
  net.name = "DOTIE";
  net.task = TaskKind::kTracking;
  net.n_bins = cfg.n_bins;
  net.timesteps = cfg.n_bins;
  NetworkGraph& g = net.graph;

  const int in = g.add_input("events", TensorShape{1, 2, cfg.height,
                                                   cfg.width});
  // Single spiking layer acting as a temporal-isolation filter: slow
  // objects fail to integrate to threshold, fast objects spike.
  const int s1 = g.add_layer(sconv(cfg, "isolate", 2, 1, 5, 1, 2), {in});
  g.add_layer(helper("objectness", LayerKind::kOutput), {s1});
  g.validate();
  return net;
}

NetworkSpec build_network(NetworkId id, const ZooConfig& cfg) {
  switch (id) {
    case NetworkId::kSpikeFlowNet: return build_spikeflownet(cfg);
    case NetworkId::kFusionFlowNet: return build_fusionflownet(cfg);
    case NetworkId::kAdaptiveSpikeNet: return build_adaptive_spikenet(cfg);
    case NetworkId::kHalsie: return build_halsie(cfg);
    case NetworkId::kHidalgoDepth: return build_hidalgo_depth(cfg);
    case NetworkId::kDotie: return build_dotie(cfg);
    case NetworkId::kEvFlowNet: return build_evflownet(cfg);
  }
  throw std::invalid_argument("unknown network id");
}

std::vector<NetworkId> table1_networks() {
  return {NetworkId::kSpikeFlowNet,     NetworkId::kFusionFlowNet,
          NetworkId::kAdaptiveSpikeNet, NetworkId::kHalsie,
          NetworkId::kHidalgoDepth,     NetworkId::kDotie};
}

MultiTaskConfig multi_task_all_ann() {
  return MultiTaskConfig{"all-ANN",
                         {NetworkId::kEvFlowNet, NetworkId::kHidalgoDepth}};
}

MultiTaskConfig multi_task_all_snn() {
  return MultiTaskConfig{"all-SNN",
                         {NetworkId::kDotie, NetworkId::kAdaptiveSpikeNet}};
}

MultiTaskConfig multi_task_mixed() {
  return MultiTaskConfig{
      "mixed SNN-ANN",
      {NetworkId::kFusionFlowNet, NetworkId::kHalsie, NetworkId::kDotie,
       NetworkId::kHidalgoDepth}};
}

}  // namespace evedge::nn
