// Frame-construction ablation (paper §4.2 motivation): "Existing
// approaches either construct event frames by statically counting events
// or sampling events at a fixed rate without considering the hardware
// processing capabilities ... resulting in a backlog of event frames
// during periods of high activity."
//
// Three framing strategies feed the *identical* runtime over the same
// bursty stream:
//  - fixed-count accumulation  (a frame every N events),
//  - fixed-time accumulation   (a frame every T microseconds),
//  - E2SF + DSFA               (hardware-aware adaptive merging).

#include <cstdio>

#include "bench_common.hpp"
#include "core/e2sf.hpp"
#include "core/pipeline.hpp"
#include "events/density_profile.hpp"
#include "sched/mapping.hpp"

namespace eb = evedge::bench;
namespace ec = evedge::core;
namespace ee = evedge::events;
namespace eh = evedge::hw;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace ss = evedge::sched;

int main() {
  eb::print_header(
      "Framing ablation: static count / static time / DSFA "
      "(SpikeFlowNet, bursty indoor_flying2-like stream)");

  const auto platform = eh::xavier_agx();
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::full_scale());
  const auto densities = ec::measure_activation_densities(
      en::build_network(en::NetworkId::kSpikeFlowNet, eb::bench_scale()), 7);
  const auto mapping =
      ss::uniform_candidate({spec}, platform.first_pe(eh::PeKind::kGpu),
                            eq::Precision::kFp32)
          .tasks.front();
  const auto stream = eb::make_davis_stream(
      ee::DensityProfile::indoor_flying2(), 4'000'000, 21);

  // Match mean frame rates: the stream averages ~`mean_rate` events/s;
  // both static policies are tuned to ~150 frames/s at the mean so only
  // their *burst* behaviour differs.
  const double mean_rate = static_cast<double>(stream.size()) /
                           (static_cast<double>(stream.duration()) / 1e6);
  const auto count_frames =
      ec::accumulate_by_count(stream,
                              static_cast<std::size_t>(mean_rate / 150.0));
  const auto time_frames = ec::accumulate_by_time(stream, 6'666);

  ec::PipelineConfig cfg;
  cfg.use_e2sf = true;
  cfg.use_dsfa = false;
  const auto count_stats = ec::simulate_frame_pipeline(
      count_frames, spec, mapping, platform, densities, cfg);
  const auto time_stats = ec::simulate_frame_pipeline(
      time_frames, spec, mapping, platform, densities, cfg);

  auto dsfa_cfg = cfg;
  dsfa_cfg.use_dsfa = true;
  dsfa_cfg.frame_rate_hz = 30.0;  // 30 Hz x 5 bins = 150 frames/s
  const auto dsfa_stats = ec::simulate_pipeline(
      stream, spec, mapping, platform, densities, dsfa_cfg);

  std::printf("%-22s %-10s %-14s %-12s %-10s %-8s\n", "framing", "frames",
              "latency[us]", "p95[us]", "dropped", "merge");
  eb::print_rule(80);
  std::printf("%-22s %-10zu %-14.0f %-12.0f %-10zu %-8s\n",
              "static event count", count_stats.frames_generated,
              count_stats.mean_latency_us, count_stats.p95_latency_us,
              count_stats.frames_dropped, "-");
  std::printf("%-22s %-10zu %-14.0f %-12.0f %-10zu %-8s\n",
              "static fixed time", time_stats.frames_generated,
              time_stats.mean_latency_us, time_stats.p95_latency_us,
              time_stats.frames_dropped, "-");
  std::printf("%-22s %-10zu %-14.0f %-12.0f %-10zu %-8.2f\n",
              "E2SF + DSFA", dsfa_stats.frames_generated,
              dsfa_stats.mean_latency_us, dsfa_stats.p95_latency_us,
              dsfa_stats.frames_dropped,
              dsfa_stats.dsfa.mean_merge_factor());
  eb::print_rule(80);
  std::printf(
      "expected shape: both static policies backlog (high p95, drops) "
      "during bursts; DSFA absorbs them by merging.\n");
  return 0;
}
