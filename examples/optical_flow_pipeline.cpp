// Optical-flow scenario: the full sensing-to-inference data path on a
// physically simulated scene.
//
//  - a textured scene translates with known ground-truth velocity;
//  - the DVS pixel model (log-intensity threshold) emits events;
//  - E2SF bins them into two-channel sparse frames (Eq. 1);
//  - DSFA stages/merges the frames;
//  - the functional SpikeFlowNet consumes them, and we report the data
//    path statistics plus the end-to-end accuracy evaluation harness.
//
// Build & run:  ./build/examples/optical_flow_pipeline

#include <cstdio>

#include "core/dsfa.hpp"
#include "core/e2e_accuracy.hpp"
#include "core/e2sf.hpp"
#include "events/scene.hpp"
#include "nn/engine.hpp"
#include "nn/zoo.hpp"

using namespace evedge;

int main() {
  // --- Scene + DVS sensor: 60 px/s horizontal drift on a 44x32 array.
  events::TexturedTranslationScene::Params scene_params;
  scene_params.geometry = events::SensorGeometry{44, 32};
  scene_params.vx_px_per_s = 60.0;
  scene_params.vy_px_per_s = -15.0;
  const events::TexturedTranslationScene scene(scene_params);
  const events::EventStream stream = events::simulate_dvs(
      scene, 0, 600'000, 2000.0, events::DvsConfig{});
  std::printf("DVS produced %zu events (%.1f kev/s); ground-truth flow "
              "(%.0f, %.0f) px/s\n",
              stream.size(),
              static_cast<double>(stream.size()) /
                  (static_cast<double>(stream.duration()) / 1e3),
              scene_params.vx_px_per_s, scene_params.vy_px_per_s);

  // --- E2SF: one frame interval -> 5 sparse bins.
  const core::Event2SparseFrame e2sf(stream.geometry(),
                                     core::E2sfConfig{5});
  const auto bins = e2sf.convert(stream.slice(0, 100'000), 0, 100'000);
  std::printf("\nE2SF bins (interval 0-100 ms):\n");
  for (const auto& bin : bins) {
    std::printf("  bin %lld: %6lld events, %5zu nnz, fill %.2f%%\n",
                static_cast<long long>(bin.bin_index),
                static_cast<long long>(bin.source_events), bin.nnz(),
                bin.pixel_fill_ratio() * 100.0);
  }

  // --- DSFA staging on the same bins.
  core::DsfaConfig dsfa_cfg;
  dsfa_cfg.merge_bucket_capacity = 2;
  core::DynamicSparseFrameAggregator dsfa(dsfa_cfg);
  for (const auto& bin : bins) dsfa.push(bin);
  dsfa.dispatch_available();
  while (auto batch = dsfa.take_ready_batch()) {
    std::printf("DSFA batch: %zu merged buckets (mean merge %.2f)\n",
                batch->size(), dsfa.stats().mean_merge_factor());
  }

  // --- Functional inference on the binned events.
  auto zoo_cfg = nn::ZooConfig::test_scale();
  zoo_cfg.height = 32;
  zoo_cfg.width = 44;
  const auto spec = nn::build_network(nn::NetworkId::kSpikeFlowNet, zoo_cfg);
  nn::FunctionalNetwork net(spec, 7);
  std::vector<sparse::DenseTensor> steps;
  for (const auto& bin : bins) steps.push_back(bin.to_dense());
  const auto flow = net.run(steps);
  std::printf("\nSpikeFlowNet output: flow field [%d x %d x %d], spiking "
              "activity %.1f%%\n",
              flow.shape().c, flow.shape().h, flow.shape().w,
              net.network_firing_rate() * 100.0);

  // --- End-to-end accuracy harness: DSFA merging vs unmerged reference.
  core::E2eAccuracyConfig acc_cfg;
  acc_cfg.apply_dsfa = true;
  acc_cfg.dsfa = dsfa_cfg;
  acc_cfg.dsfa.merge_mode = sparse::MergeMode::kAverage;
  acc_cfg.max_intervals = 3;
  const auto acc = core::evaluate_e2e_accuracy(spec, stream, acc_cfg);
  std::printf(
      "accuracy (Table 2 style): baseline %s %.2f -> Ev-Edge %.2f "
      "(measured degradation %.4f)\n",
      acc.metric_name, acc.baseline_metric, acc.evedge_metric,
      acc.measured_degradation);
  return 0;
}
