#pragma once

// Energy accounting over a schedule: busy energy (PE active power at the
// executing precision x time) plus idle energy (idle power x remaining
// makespan). Substitute for the paper's Tegrastats measurements.

#include <array>
#include <vector>

#include "hw/platform.hpp"

namespace evedge::hw {

class EnergyAccumulator {
 public:
  explicit EnergyAccumulator(const Platform& platform);

  /// Records `duration_us` of busy time on `pe_id` at `precision`.
  void add_busy(int pe_id, Precision precision, double duration_us);

  /// Records a unified-memory transfer of `bytes` (charged at a fixed
  /// energy cost per byte for DRAM traffic).
  void add_transfer(double bytes);

  /// Total energy in millijoules for a run spanning `makespan_us`:
  /// busy + transfer + per-PE idle power over the non-busy remainder.
  [[nodiscard]] double total_mj(double makespan_us) const;

  [[nodiscard]] double busy_mj() const noexcept { return busy_mj_; }
  [[nodiscard]] double transfer_mj() const noexcept { return transfer_mj_; }
  [[nodiscard]] double busy_us(int pe_id) const;

 private:
  const Platform* platform_;
  std::vector<double> busy_us_per_pe_;
  double busy_mj_ = 0.0;
  double transfer_mj_ = 0.0;
};

/// DRAM transfer energy: ~120 pJ/byte for LPDDR4x class memory.
inline constexpr double kTransferEnergyPjPerByte = 120.0;

}  // namespace evedge::hw
