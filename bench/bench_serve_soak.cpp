// Fault-injection soak for the serving runtime: a seeded FaultPlan with
// EVERY fault type enabled (worker exceptions, latency spikes, corrupt
// frames, stream stalls, stream disconnects) is run against multi-stream
// serving with the SLO deadline and the graceful-degradation ladder on.
// The process exits non-zero unless
//
//   - ServingRuntime::run completes without throwing,
//   - the per-stream frame-accounting invariant holds exactly
//     (enqueued == completed + dropped + shed + failed, cross-checked
//     against the queue's displacement counter: ServeReport::
//     accounting_ok),
//   - the same fault seed reproduces the same per-stream accounting and
//     fired-fault totals on a second run.
//
// This is the robustness gate CI runs (build-and-test and the
// ASan+UBSan job both execute it); it measures nothing — bench_serve
// owns the fault-free throughput numbers. Results go to
// BENCH_serve_soak.json for inspection.
//
// Usage: bench_serve_soak [output.json] [seed]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "nn/zoo.hpp"
#include "serve/serving_runtime.hpp"

namespace ee = evedge::events;
namespace en = evedge::nn;
namespace ev = evedge::serve;

namespace {

constexpr int kStreams = 4;
constexpr int kWorkers = 2;
constexpr ee::TimeUs kDuration = 300'000;

[[nodiscard]] ee::EventStream make_stream(int h, int w, std::uint64_t seed) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{w, h};
  cfg.seed = seed;
  cfg.blob_count = 4;
  cfg.background_weight = 0.3;
  const ee::DensityProfile profile("soak", 3.2, {}, 1.2, 0.5);
  return ee::PoissonEventSynthesizer(profile, cfg).generate(0, kDuration);
}

// The deterministic per-stream quantities: ingress dispatch and
// quarantine counts depend only on the stream content and the fault
// plan's (stream, seq) sites. completed/dropped/shed are NOT compared —
// under the live degradation ladder the drop-oldest displacement is
// timing-dependent by design (the invariant still ties them together).
struct StreamAccount {
  std::size_t enqueued = 0;
  std::size_t failed = 0;

  friend bool operator==(const StreamAccount&,
                         const StreamAccount&) = default;
};

[[nodiscard]] std::vector<StreamAccount> accounts_of(
    const ev::ServeReport& report) {
  std::vector<StreamAccount> accounts;
  accounts.reserve(report.streams.size());
  for (const ev::StreamServeStats& s : report.streams) {
    accounts.push_back(StreamAccount{s.enqueued, s.failed});
  }
  return accounts;
}

[[nodiscard]] bool write_json(const ev::ServeReport& report,
                              std::uint64_t seed, bool reproduced,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(
      f,
      "{\n  \"seed\": %llu,\n  \"streams\": %d,\n  \"workers\": %d,\n"
      "  \"accounting_ok\": %s,\n  \"reproduced\": %s,\n"
      "  \"frames_completed\": %zu,\n  \"frames_dropped\": %zu,\n"
      "  \"frames_shed\": %zu,\n  \"frames_failed\": %zu,\n"
      "  \"quarantined\": %zu,\n  \"max_degrade_level\": %d,\n"
      "  \"faults\": {\"worker_exceptions\": %zu, \"latency_spikes\": %zu, "
      "\"corrupt_frames\": %zu, \"stream_stalls\": %zu, "
      "\"stream_disconnects\": %zu}\n}\n",
      static_cast<unsigned long long>(seed), kStreams, kWorkers,
      report.accounting_ok() ? "true" : "false",
      reproduced ? "true" : "false", report.frames_completed,
      report.frames_dropped, report.frames_shed, report.frames_failed,
      report.quarantined.size(), report.max_degrade_level,
      report.faults.worker_exceptions, report.faults.latency_spikes,
      report.faults.corrupt_frames, report.faults.stream_stalls,
      report.faults.stream_disconnects);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_serve_soak.json";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20240207ull;

  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;

  std::vector<ee::EventStream> streams;
  streams.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    streams.push_back(make_stream(shape.h, shape.w,
                                  seed + static_cast<std::uint64_t>(s)));
  }

  ev::ServeConfig config;
  config.n_workers = kWorkers;
  config.kernel_threads = 1;
  config.queue_capacity = 16;
  config.overflow = ev::OverflowPolicy::kBlock;
  config.worker.collator.max_batch = 4;
  config.worker.max_retries = 3;
  config.worker.retry_backoff_ms = 0.5;
  // SLO + the full ladder, generous enough that well-behaved frames
  // still complete (this gates correctness, not timing).
  config.slo.deadline_ms = 5000.0;
  config.slo.degrade = true;
  config.slo.eval_interval_ms = 1.0;
  config.slo.allow_int8 = true;
  // Every fault type, scattered deterministically from the seed.
  ev::FaultPlanOptions faults;
  faults.streams = kStreams;
  faults.workers = kWorkers;
  faults.frames_per_stream_hint = 8;
  faults.batches_per_worker_hint = 4;
  faults.worker_exceptions = 3;
  faults.latency_spikes = 2;
  faults.corrupt_frames = 3;
  faults.stalls = 2;
  faults.disconnects = 1;
  faults.spike_ms = 2.0;
  faults.stall_ms = 2.0;
  config.faults = ev::FaultPlan::seeded(seed, faults);

  ev::ServingRuntime runtime(spec, 7, config);
  std::printf("fault-injection soak: %d streams, %d workers, seed %llu, "
              "%zu scheduled faults\n",
              kStreams, kWorkers, static_cast<unsigned long long>(seed),
              config.faults.specs.size());

  bool ok = true;
  ev::ServeReport first;
  try {
    first = runtime.run(streams);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "SOAK FAILED: run threw: %s\n", e.what());
    return 1;
  }
  std::printf("%s\n", first.describe().c_str());

  if (!first.accounting_ok()) {
    std::fprintf(stderr,
                 "SOAK FAILED: frame accounting invariant violated "
                 "(enqueued != completed + dropped + shed + failed)\n");
    ok = false;
  }
  if (first.faults.total() == 0) {
    std::fprintf(stderr,
                 "SOAK FAILED: no scheduled fault fired — the plan's "
                 "site hints miss the real dispatch space\n");
    ok = false;
  }
  if (first.frames_completed == 0) {
    std::fprintf(stderr, "SOAK FAILED: nothing completed\n");
    ok = false;
  }

  // Same seed, same streams: the per-stream accounting must reproduce.
  bool reproduced = true;
  try {
    const ev::ServeReport second = runtime.run(streams);
    if (!second.accounting_ok()) {
      std::fprintf(stderr,
                   "SOAK FAILED: second run broke the accounting "
                   "invariant\n");
      ok = false;
    }
    reproduced = accounts_of(first) == accounts_of(second) &&
                 first.faults.corrupt_frames ==
                     second.faults.corrupt_frames &&
                 first.faults.stream_stalls == second.faults.stream_stalls &&
                 first.faults.stream_disconnects ==
                     second.faults.stream_disconnects;
    if (!reproduced) {
      std::fprintf(stderr,
                   "SOAK FAILED: same seed did not reproduce the same "
                   "per-stream accounting / stream-site fault counts\n");
      ok = false;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "SOAK FAILED: second run threw: %s\n", e.what());
    return 1;
  }

  const bool wrote = write_json(first, seed, reproduced, out_path);
  if (ok && wrote) {
    std::printf("soak OK: %zu faults fired, accounting exact, "
                "reproducible from seed %llu\n",
                first.faults.total(),
                static_cast<unsigned long long>(seed));
    return 0;
  }
  return 1;
}
