#pragma once

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-packet
// integrity check of the wire protocol. Software table implementation;
// the wire packets are small (<= ~4 KiB) and the serving hot path is
// inference, not framing, so a slice-by-1 table is plenty.

#include <cstddef>
#include <cstdint>

namespace evedge::wire {

/// CRC-32 of `n` bytes. `seed` chains partial computations:
/// crc32(b, crc32(a)) == crc32(a ++ b).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace evedge::wire
