#pragma once

// Minimal std::thread fork-join helper for the compute kernels. The
// kernels split their outermost independent loop (output channels, active
// sites) into contiguous chunks, one per worker, so every index is
// processed exactly once and each worker writes a disjoint output slice —
// results are bitwise identical for any thread count.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace evedge::core {

/// Upper bound accepted from EVEDGE_THREADS / set_parallel_threads —
/// generous for any real machine while rejecting garbage like "1e9".
inline constexpr int kMaxParallelThreads = 1024;

/// Strictly parses a thread-count override string: the whole string must
/// be a decimal integer in [1, kMaxParallelThreads]. Returns 0 for
/// anything else (empty, non-numeric, trailing junk, zero, negative,
/// out of range) so callers fall back to hardware_concurrency() instead
/// of inheriting atoi's silent-garbage/UB behavior on malformed input.
[[nodiscard]] inline int parse_thread_override(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return 0;
  if (n < 1 || n > kMaxParallelThreads) return 0;
  return static_cast<int>(n);
}

/// Process-wide programmatic thread override (0 = none). Checked before
/// the EVEDGE_THREADS env var, and thread-safe unlike setenv(): the
/// serving runtime pins per-worker kernel threading through this.
[[nodiscard]] inline std::atomic<int>& parallel_thread_override() noexcept {
  static std::atomic<int> override_count{0};
  return override_count;
}

/// Installs a process-wide worker-count override (clamped into
/// [1, kMaxParallelThreads]; pass 0 to remove). Returns the previous
/// value so scoped users can restore it.
inline int set_parallel_threads(int count) noexcept {
  const int clamped =
      count <= 0 ? 0 : std::min(count, kMaxParallelThreads);
  return parallel_thread_override().exchange(clamped,
                                             std::memory_order_relaxed);
}

/// Worker count resolution order: set_parallel_threads() override, then
/// a valid EVEDGE_THREADS env value, then hardware_concurrency() (min 1).
/// Malformed env values (non-numeric, zero, negative, out of range) are
/// ignored rather than producing a garbage thread count.
[[nodiscard]] inline int parallel_thread_count() noexcept {
  const int forced =
      parallel_thread_override().load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  if (const char* env = std::getenv("EVEDGE_THREADS")) {
    const int n = parse_thread_override(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Runs body(i) for every i in [begin, end), split into at most
/// `max_threads` contiguous chunks (one std::thread each, the first chunk
/// on the caller). `body` must be safe to invoke concurrently for
/// distinct indices. Falls back to a serial loop for small ranges or a
/// single worker.
template <typename Body>
void parallel_for(int begin, int end, const Body& body,
                  int max_threads = parallel_thread_count()) {
  const int count = end - begin;
  if (count <= 0) return;
  const int workers = std::max(1, std::min(max_threads, count));
  if (workers == 1) {
    for (int i = begin; i < end; ++i) body(i);
    return;
  }
  const int chunk = (count + workers - 1) / workers;
  // First exception from any chunk wins and is rethrown on the caller
  // after every thread has joined (a throw must never leave joinable
  // threads behind or abort the process from a worker).
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto run_chunk = [&](int lo, int hi) noexcept {
    try {
      for (int i = lo; i < hi; ++i) body(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    const int lo = begin + w * chunk;
    const int hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&run_chunk, lo, hi] { run_chunk(lo, hi); });
  }
  run_chunk(begin, std::min(end, begin + chunk));
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace evedge::core
