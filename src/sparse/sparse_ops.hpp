#pragma once

// Sparse compute kernels: gather-scatter sparse convolution and the
// submanifold variant of Graham et al. [6] that the paper's E2SF feeds.
// Dense reference convolutions live in evedge::nn; tests cross-validate
// the two implementations on random inputs.

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/tensor.hpp"

namespace evedge::sparse {

/// Geometry of a 2-D convolution (square kernel).
struct Conv2dSpec {
  int in_channels = 1;
  int out_channels = 1;
  int kernel = 3;
  int stride = 1;
  int padding = 1;
};

void validate_conv_spec(const Conv2dSpec& spec);

/// Output spatial extent of a convolution over an h x w input.
[[nodiscard]] int conv_out_extent(int in_extent, int kernel, int stride,
                                  int padding);

/// Work accounting for one convolution application.
struct ConvWork {
  std::size_t dense_macs = 0;   ///< MACs a dense kernel would execute
  std::size_t sparse_macs = 0;  ///< MACs the sparse kernel executed
  std::size_t nnz_in = 0;       ///< input non-zeros
};

/// Sparse convolution: scatter each input non-zero through the kernel into
/// a dense output [1, out_channels, out_h, out_w].
/// `weights` is [out_channels, in_channels, k, k]; `bias` is per output
/// channel (empty = no bias). `work`, when non-null, accumulates counters.
[[nodiscard]] DenseTensor sparse_conv2d(std::span<const CooChannel> input,
                                        const DenseTensor& weights,
                                        std::span<const float> bias,
                                        const Conv2dSpec& spec,
                                        ConvWork* work = nullptr);

/// Submanifold sparse convolution (stride 1 only): output non-zeros are
/// restricted to the union of input active sites, preventing dilation of
/// the active set across layers. Returns out_channels sparse channels.
[[nodiscard]] std::vector<CooChannel> submanifold_conv2d(
    std::span<const CooChannel> input, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec,
    ConvWork* work = nullptr);

/// Dense [1, C, H, W] tensor -> C sparse channels (the encode step whose
/// cost E2SF eliminates). `scanned_elements`, when non-null, receives the
/// number of dense elements visited (the encode cost driver).
[[nodiscard]] std::vector<CooChannel> dense_to_channels(
    const DenseTensor& dense, std::size_t* scanned_elements = nullptr);

/// C sparse channels -> dense [1, C, H, W].
[[nodiscard]] DenseTensor channels_to_dense(
    std::span<const CooChannel> channels);

}  // namespace evedge::sparse
