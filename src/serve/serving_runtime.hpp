#pragma once

// ServingRuntime: the concurrent multi-stream serving subsystem — N
// independent event streams (cameras) flow through per-stream E2SF/DSFA
// ingress stages into a bounded FrameQueue, and a pool of inference
// workers coalesces ready frames ACROSS streams into batched,
// planner-routed FunctionalNetwork::run_batched calls:
//
//   stream 0 --> StreamIngress ---.
//   stream 1 --> StreamIngress ---+--> FrameQueue --> ServeWorkerPool
//   stream N --> StreamIngress ---'     (bounded,      (BatchCollator +
//                                        block/drop)    net clone each)
//
// Determinism contract: with the drop policy disabled (kBlock), every
// (stream, seq) output is bitwise identical to per-stream serial batch-1
// execution of the same frames (run_serial) — cross-stream batches give
// each lane private LIF state and per-sample arithmetic, and the planner
// routes are bitwise-neutral. Batch composition, worker count and thread
// interleaving affect only latency, never values. Under fault injection
// the contract narrows to the unaffected frames: a corrupt / stalled /
// crashed (stream, seq) is quarantined, retried, or dropped, but every
// frame that does complete is still bitwise identical to run_serial.
//
// Fault tolerance (this layer's contract): run() does not throw for
// worker-batch failures (supervised restart + retry + quarantine),
// ingress-thread failures (only that stream is marked failed; the rest
// run to completion), malformed frames (ingress validation quarantines
// them), or SLO-stale frames (shed). Per stream the report satisfies
//   enqueued == completed + dropped + shed + failed
// and ServeReport::accounting_ok() checks it — the hard invariant the
// fault-injection soak gates on.

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "events/event_stream.hpp"
#include "nn/engine.hpp"
#include "serve/degrade.hpp"
#include "serve/fault.hpp"
#include "serve/journal.hpp"
#include "serve/serve_stats.hpp"
#include "serve/stream_ingress.hpp"
#include "serve/wire_ingress.hpp"
#include "serve/worker_pool.hpp"

namespace evedge::serve {

/// Observability switches for one run: all off by default, in which
/// case the only cost left in the pipeline is the tracer's disabled
/// check (one relaxed load per instrumentation site) and a null-pointer
/// test per engine node.
struct ObsConfig {
  /// Enable the lock-free tracer for the run: serve_ingresses clears
  /// the rings, enables on entry, disables on exit, and — when
  /// trace_path is non-empty — exports the Chrome trace JSON there.
  bool trace = false;
  /// Also emit a per-node sub-span for every engine node execution
  /// (needs trace; implies the layer profiler is installed).
  bool trace_nodes = false;
  /// Publish live counters/gauges/histograms to the global
  /// MetricsRegistry during the run.
  bool metrics = false;
  /// Install a LayerProfiler per worker; snapshots land in
  /// ServeReport::layer_profiles.
  bool layer_profiles = false;
  /// Per-thread trace ring capacity installed at run start.
  std::size_t trace_ring_capacity = 1u << 16;
  /// When > 0 (and metrics is on): snapshot cadence of the Prometheus /
  /// JSON exposition files below.
  double snapshot_interval_ms = 0.0;
  std::string snapshot_prom_path{};
  std::string snapshot_json_path{};
  /// Chrome trace JSON export target ("" = keep events in the rings;
  /// collect via obs::Tracer::instance().collect()).
  std::string trace_path{};

  [[nodiscard]] bool any() const noexcept {
    return trace || trace_nodes || metrics || layer_profiles;
  }
};

struct ServeConfig {
  IngressConfig ingress{};
  WorkerConfig worker{};
  std::size_t queue_capacity = 32;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  int n_workers = 2;
  /// Per-frame deadline + graceful-degradation ladder (degrade.hpp).
  /// Defaults: no deadline, ladder off — serving behaves exactly like
  /// the fault-free PR 5 runtime.
  SloConfig slo{};
  /// Deterministic fault schedule (fault.hpp); empty = no injection.
  FaultPlan faults{};
  /// Kernel-level threads per worker, installed process-wide for the
  /// duration of run() via core::set_parallel_threads (0 = leave the
  /// ambient setting). Default 1: under concurrent serving the thread
  /// budget is spent on stream-level parallelism (workers), not on
  /// per-kernel fork-join whose spawn/join tax recurs every layer.
  int kernel_threads = 1;
  /// Record every (stream, seq) output for parity checks / consumers
  /// (costs one output-tensor copy per frame).
  bool capture_outputs = false;
  /// Crash-consistent fault journal: when non-empty, every fired fault,
  /// quarantine, rejected wire packet, and degradation transition is
  /// appended (fsync'd per line) to this file during the run. Empty =
  /// journaling off.
  std::string journal_path{};
  /// Always-on observability layer (tracing / metrics / layer profiles);
  /// everything defaults off.
  ObsConfig obs{};
};

class ServingRuntime {
 public:
  /// Builds the prototype network (weights deterministic in `seed`);
  /// workers clone it at run() time.
  ServingRuntime(nn::NetworkSpec spec, std::uint64_t seed,
                 ServeConfig config);

  /// Serves every stream to completion: one ingress thread per stream,
  /// config.n_workers inference workers. Returns the aggregate report
  /// (also retrievable via last_report()). Captured outputs, when
  /// enabled, are valid until the next run().
  ServeReport run(std::span<const events::EventStream> streams);

  /// Serves N wire sessions to completion: one WireStreamIngress per
  /// acceptor, each accepting (and re-accepting after disconnects) the
  /// receive side of a hardened wire session, sharing the same queue /
  /// worker / degradation machinery as run(). The report additionally
  /// carries the packet-partition lanes (rejected_packets etc.), and
  /// accounting_ok() checks both invariants.
  ServeReport run_wire(std::span<const TransportAcceptor> acceptors,
                       const WireIngressConfig& wire_config = {});

  /// Captured output of (stream, seq); nullptr when not captured.
  [[nodiscard]] const sparse::DenseTensor* output(int stream_id,
                                                  std::int64_t seq) const;

  [[nodiscard]] const ServeReport& last_report() const noexcept {
    return report_;
  }
  [[nodiscard]] const ServeConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const nn::NetworkSpec& spec() const noexcept {
    return spec_;
  }

  /// Per-stream serial reference: the same frames executed batch-1 in
  /// dispatch order, stream after stream, on a single network clone —
  /// the baseline concurrent serving is measured (and bit-checked)
  /// against. Runs with the ambient kernel-thread setting (callers pin
  /// core::set_parallel_threads to compare at equal budgets).
  struct SerialResult {
    /// outputs[stream][seq], matching StreamIngress::collect_frames.
    std::vector<std::vector<sparse::DenseTensor>> outputs;
    std::size_t frames = 0;
    double wall_ms = 0.0;

    [[nodiscard]] double frames_per_second() const noexcept {
      return wall_ms > 0.0
                 ? static_cast<double>(frames) / (wall_ms / 1e3)
                 : 0.0;
    }
  };
  /// `use_planner` mirrors WorkerConfig::use_planner (lazy warmup
  /// calibration on the first frame, drift re-calibration per frame).
  [[nodiscard]] SerialResult run_serial(
      std::span<const std::vector<sparse::SparseFrame>> frames_per_stream,
      bool use_planner) const;

  /// Offline ingest of one stream (see StreamIngress::collect_frames).
  [[nodiscard]] static std::vector<sparse::SparseFrame> ingest(
      const events::EventStream& stream, const IngressConfig& config) {
    return StreamIngress::collect_frames(stream, config);
  }

 private:
  /// The shared serving body behind run() and run_wire(): drives the
  /// given ingresses (one thread each) against the queue and worker
  /// pool, runs the monitor/degradation machinery, and assembles
  /// report_. `injector` may be null (no stream/worker fault plan);
  /// `journal` may be null (journaling off).
  ServeReport serve_ingresses(std::span<IngressBase* const> ingresses,
                              FrameQueue& queue, FaultInjector* injector,
                              FaultJournal* journal);

  nn::NetworkSpec spec_;
  nn::FunctionalNetwork prototype_;
  ServeConfig config_;
  ServeReport report_;
  std::unordered_map<std::uint64_t, sparse::DenseTensor> captured_;
};

}  // namespace evedge::serve
