#pragma once

// Mapping candidate representation (paper §4.3.1, Fig. 7a): every mappable
// node of every concurrently-executing task is assigned one processing
// element and one precision. Data-transfer (communication) nodes are
// inserted by the scheduler wherever a producer/consumer pair crosses PEs.

#include <vector>

#include "hw/platform.hpp"
#include "hw/profiler.hpp"
#include "nn/graph.hpp"
#include "quant/precision.hpp"

namespace evedge::sched {

using quant::Precision;

/// Assignment of one graph node. pe < 0 marks non-mappable nodes
/// (inputs/outputs), which are pinned and carry no cost of their own.
struct NodeAssignment {
  int pe = -1;
  Precision precision = Precision::kFp32;

  friend bool operator==(const NodeAssignment&,
                         const NodeAssignment&) = default;
};

/// Assignments for one task, indexed by graph node id.
struct TaskMapping {
  std::vector<NodeAssignment> nodes;

  friend bool operator==(const TaskMapping&, const TaskMapping&) = default;
};

/// A full multi-task mapping candidate.
struct MappingCandidate {
  std::vector<TaskMapping> tasks;

  friend bool operator==(const MappingCandidate&,
                         const MappingCandidate&) = default;
};

/// Builds a candidate assigning every mappable node of every task to
/// `pe` at `precision` (the all-GPU baseline when pe = GPU, FP32).
[[nodiscard]] MappingCandidate uniform_candidate(
    const std::vector<nn::NetworkSpec>& specs, int pe, Precision precision);

/// Throws std::invalid_argument when the candidate shape does not match
/// the tasks, assigns an unsupported (PE, precision) pair, or leaves a
/// mappable node unassigned.
void validate_candidate(const MappingCandidate& candidate,
                        const std::vector<hw::TaskProfile>& profiles,
                        const hw::Platform& platform);

}  // namespace evedge::sched
