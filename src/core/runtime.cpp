#include "core/runtime.hpp"

#include "hw/profiler.hpp"
#include "quant/accuracy.hpp"

namespace evedge::core {

EvEdgeRuntime::EvEdgeRuntime(nn::NetworkId network, hw::Platform platform,
                             EvEdgeOptions options)
    : options_(std::move(options)),
      network_(network),
      platform_(std::move(platform)),
      spec_(nn::build_network(network, options_.perf_scale)) {
  platform_.validate();

  // --- Accuracy surrogate on the reduced-scale functional instance.
  const nn::NetworkSpec accuracy_spec =
      nn::build_network(network, options_.accuracy_scale);

  // --- Activation densities for sparse-aware profiling and the runtime
  // cost model (measured once on the functional instance; node ids match
  // the perf-scale graph).
  densities_ = measure_activation_densities(accuracy_spec, options_.seed);

  // --- Offline profiling (the TensorRT-profile substitute), sparse-aware
  // so the mapping search sees the same route economics as the runtime.
  std::vector<nn::NetworkSpec> specs{spec_};
  std::vector<hw::TaskProfile> profiles{
      hw::profile_task(spec_, platform_, &densities_.density)};
  quant::AccuracyEvaluator evaluator(
      accuracy_spec, options_.seed,
      quant::make_validation_set(accuracy_spec, options_.validation_samples,
                                 options_.seed + 1));
  const quant::SensitivityModel sensitivity(evaluator,
                                            options_.sensitivity_subset);

  // --- NMP search (single task).
  mapper::AccuracyFn accuracy_fn =
      [&sensitivity](int, const sched::TaskMapping& mapping) {
        quant::PrecisionMap precisions;
        for (std::size_t n = 0; n < mapping.nodes.size(); ++n) {
          if (mapping.nodes[n].pe >= 0) {
            precisions[static_cast<int>(n)] = mapping.nodes[n].precision;
          }
        }
        return sensitivity.predict(precisions);
      };
  mapper::NetworkMapper nmp(specs, profiles, platform_,
                            std::move(accuracy_fn), options_.nmp);
  nmp_result_ = nmp.run();
  mapping_ = nmp_result_.best.tasks.front();
}

PipelineStats EvEdgeRuntime::process(
    const events::EventStream& stream) const {
  PipelineConfig config;
  config.e2sf = options_.e2sf;
  config.dsfa = options_.dsfa;
  config.use_e2sf = true;
  config.use_dsfa = true;
  config.frame_rate_hz = options_.frame_rate_hz;
  return simulate_pipeline(stream, spec_, mapping_, platform_, densities_,
                           config);
}

serve::ServingRuntime EvEdgeRuntime::make_server(
    serve::ServeConfig config) const {
  config.ingress.e2sf = options_.e2sf;
  config.ingress.dsfa = options_.dsfa;
  config.ingress.frame_rate_hz = options_.frame_rate_hz;
  return serve::ServingRuntime(
      nn::build_network(network_, options_.accuracy_scale), options_.seed,
      std::move(config));
}

PipelineStats EvEdgeRuntime::process_all_gpu_baseline(
    const events::EventStream& stream) const {
  const sched::MappingCandidate baseline = sched::uniform_candidate(
      {spec_}, platform_.first_pe(hw::PeKind::kGpu),
      quant::Precision::kFp32);
  PipelineConfig config;
  config.e2sf = options_.e2sf;
  config.use_e2sf = false;
  config.use_dsfa = false;
  config.frame_rate_hz = options_.frame_rate_hz;
  return simulate_pipeline(stream, spec_, baseline.tasks.front(), platform_,
                           densities_, config);
}

}  // namespace evedge::core
