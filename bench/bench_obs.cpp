// Observability overhead gate: proves the always-on instrumentation is
// effectively free when tracing is off, and bounded when on. There is
// no uninstrumented binary to compare against (the instrumentation IS
// always compiled in), so the 2% tracing-off budget is gated
// analytically from two same-run measurements:
//
//   disabled-site cost   ns per emitter call with tracing off (one
//                        relaxed atomic load) — microbenched directly
//   events per frame     trace events one served frame emits, counted
//                        from a tracing-on run of the same workload
//
//   overhead  =  events_per_frame x ns_per_site / frame_time   < 2%
//
// plus the direct measurement: serve fps with full observability on
// (tracing + per-node spans + metrics) over fps with everything off.
//
// CI gates the machine-invariant same-run ratios (BENCH_obs.json,
// "obs" schema in check_bench_regression.py):
//
//   disabled_site   steady_clock read cost / disabled-site cost — the
//                   site must stay an order cheaper than a clock read
//   labeled_site    steady_clock read cost / disabled labeled-metric
//                   site cost (one cached-pointer null check) — labeled
//                   instrumentation must stay cheaper than a clock read
//   serve_off       serve fps (obs off) / per-stream serial planned fps
//                   — instrumented serving must keep its concurrency win
//   serve_on        serve fps (full obs on) / serve fps (obs off) —
//                   the price of turning everything on
//
// Usage: bench_obs [output.json] [--json]
//
// --json: machine-readable mode — the JSON document is ALSO written to
// stdout (exactly one document, parse with any JSON reader) and the
// human tables move to stderr. The output file is still written.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "nn/zoo.hpp"
#include "obs/trace.hpp"
#include "serve/serving_runtime.hpp"

namespace ee = evedge::events;
namespace en = evedge::nn;
namespace es = evedge::sparse;
namespace ev = evedge::serve;
namespace obs = evedge::obs;

namespace {

constexpr int kWorkers = 2;
constexpr int kStreams = 4;
constexpr ee::TimeUs kDuration = 1'000'000;
constexpr double kOffBudgetPct = 2.0;  ///< tracing-off overhead ceiling

/// Labeled-metric sites a served frame crosses when metrics are OFF:
/// the ingress dispatch counter plus the sink's per-stream completed
/// counter, latency histogram, and burn gauge — each a cached-pointer
/// null check. 8 is deliberately ~2x the real count, so the gate holds
/// margin for future sites.
constexpr double kLabeledSitesPerFrame = 8.0;

/// Human tables land here: stdout normally, stderr under --json (stdout
/// then carries exactly one JSON document).
std::FILE* g_table = stdout;

[[nodiscard]] ee::EventStream make_stream(int h, int w, std::uint64_t seed) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{w, h};
  cfg.seed = seed;
  cfg.blob_count = 4;
  cfg.background_weight = 0.3;
  const ee::DensityProfile profile("obs-band", 3.2, {}, 1.2, 0.5);
  return ee::PoissonEventSynthesizer(profile, cfg).generate(0, kDuration);
}

/// ns per call of a disabled emitter (the hot-path cost every
/// instrumentation site pays when tracing is off). Arguments vary per
/// iteration so the loop cannot fold.
[[nodiscard]] double disabled_site_ns(std::size_t iters) {
  obs::Tracer::set_enabled(false);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    obs::Tracer::instant("bench", "disabled", "i",
                         static_cast<std::int64_t>(i));
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

/// Keeps the clock-read loop from being optimized away.
volatile std::uint64_t g_clock_sink = 0;

/// The disabled labeled-metric site: the runtime resolves each series
/// up front and hands the hot path a pointer that is null when metrics
/// are off, so a site costs one load + branch. The pointer is volatile
/// so every iteration performs the real load.
evedge::obs::Counter* volatile g_labeled_series = nullptr;
volatile std::uint64_t g_site_sink = 0;

/// ns per disabled labeled-metric site (null cached-series pointer
/// check — see StreamIngress::attach_dispatch_counter).
[[nodiscard]] double labeled_site_ns(std::size_t iters) {
  std::uint64_t live = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    evedge::obs::Counter* series = g_labeled_series;
    if (series != nullptr) {
      series->add();
    } else {
      live += i;  // keep the not-taken branch from folding away
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  g_site_sink = live;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

/// ns per steady_clock::now() — the natural yardstick: a disabled site
/// must cost well under one clock read (an enabled span pays two).
[[nodiscard]] double clock_read_ns(std::size_t iters) {
  std::uint64_t acc = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    acc += static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
  const auto t1 = std::chrono::steady_clock::now();
  g_clock_sink = acc;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

struct ObsRecord {
  std::string probe;
  std::string network;
  int streams = 0;
  double ratio = 0.0;
  std::string detail;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_obs.json";
  bool json_stdout = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json_stdout = true;
    } else {
      out_path = argv[i];
    }
  }
  if (json_stdout) g_table = stderr;
  std::vector<ObsRecord> records;
  bool ok = true;

  // --- Probe 1: the disabled hot paths. ------------------------------
  constexpr std::size_t kIters = 1u << 22;
  (void)disabled_site_ns(kIters / 16);  // warmup
  const double site_ns = disabled_site_ns(kIters);
  const double clock_ns = clock_read_ns(kIters / 4);
  const double site_vs_clock = site_ns > 0.0 ? clock_ns / site_ns : 1e9;
  std::fprintf(g_table,
               "disabled site: %.2f ns/call, steady_clock read: %.2f ns "
               "(site is %.1fx cheaper)\n",
               site_ns, clock_ns, site_vs_clock);
  records.push_back(ObsRecord{
      "disabled_site", "", 0, site_vs_clock,
      "clock_ns / disabled_site_ns, both same-run microbenches"});

  (void)labeled_site_ns(kIters / 16);  // warmup
  const double lsite_ns = labeled_site_ns(kIters);
  const double lsite_vs_clock = lsite_ns > 0.0 ? clock_ns / lsite_ns : 1e9;
  std::fprintf(g_table,
               "labeled site: %.2f ns/call (null series-pointer check, "
               "%.1fx cheaper than a clock read)\n",
               lsite_ns, lsite_vs_clock);
  records.push_back(ObsRecord{
      "labeled_site", "", 0, lsite_vs_clock,
      "clock_ns / labeled_site_ns, both same-run microbenches"});

  // --- Probe 2/3: serving with observability off vs fully on. --------
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kDotie, en::ZooConfig{96, 128, 16, 5, 2.0f});
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;

  ev::ServeConfig config;
  config.n_workers = kWorkers;
  config.kernel_threads = 1;
  config.queue_capacity = 64;
  config.overflow = ev::OverflowPolicy::kBlock;
  config.worker.collator.max_batch = 8;
  config.worker.collator.max_wait_us = 3000;

  std::vector<ee::EventStream> streams;
  std::vector<std::vector<es::SparseFrame>> frames;
  std::size_t total_frames = 0;
  for (int s = 0; s < kStreams; ++s) {
    streams.push_back(make_stream(shape.h, shape.w,
                                  100 + static_cast<std::uint64_t>(s)));
    frames.push_back(
        ev::ServingRuntime::ingest(streams.back(), config.ingress));
    total_frames += frames.back().size();
  }

  ev::ServingRuntime runtime_off(spec, 7, config);
  ev::ServeConfig config_on = config;
  config_on.obs.trace = true;
  config_on.obs.trace_nodes = true;
  config_on.obs.metrics = true;
  config_on.obs.layer_profiles = true;
  config_on.obs.trace_ring_capacity = 1u << 17;  // count, don't drop
  ev::ServingRuntime runtime_on(spec, 7, config_on);

  // Serial reference (planner on, same worker budget inside kernels):
  // the denominator that makes serve_off machine-invariant.
  const auto serial = runtime_off.run_serial(frames, true);
  (void)runtime_off.run(streams);  // warmup both paths
  const ev::ServeReport off = runtime_off.run(streams);
  const ev::ServeReport on = runtime_on.run(streams);
  const std::vector<obs::TraceEvent> events =
      obs::Tracer::instance().collect();
  const std::uint64_t dropped = obs::Tracer::instance().dropped();

  const double fps_serial = serial.frames_per_second();
  const double fps_off = off.frames_per_second();
  const double fps_on = on.frames_per_second();
  const double serve_off_ratio =
      fps_serial > 0.0 ? fps_off / fps_serial : 0.0;
  const double serve_on_ratio = fps_off > 0.0 ? fps_on / fps_off : 0.0;
  std::fprintf(g_table,
               "serve: serial %.1f fps, obs-off %.1f fps, obs-on %.1f fps "
               "(on/off %.3f)\n",
               fps_serial, fps_off, fps_on, serve_on_ratio);
  records.push_back(ObsRecord{"serve_off", spec.name, kStreams,
                              serve_off_ratio,
                              "serve fps (obs off) / serial planned fps"});
  records.push_back(ObsRecord{"serve_on", spec.name, kStreams,
                              serve_on_ratio,
                              "serve fps (full obs) / serve fps (obs off)"});

  // --- The analytic tracing-off gate. --------------------------------
  const double events_per_frame =
      on.frames_completed > 0
          ? static_cast<double>(events.size() + dropped) /
                static_cast<double>(on.frames_completed)
          : 0.0;
  const double frame_time_ns =
      fps_off > 0.0 ? 1e9 / fps_off : 1e18;
  const double off_overhead_pct =
      100.0 * events_per_frame * site_ns / frame_time_ns;
  std::fprintf(
      g_table,
      "events/frame %.1f (%zu events, %llu dropped), frame time "
      "%.2f ms -> tracing-off overhead %.4f%% (budget %.1f%%)\n",
      events_per_frame, events.size(),
      static_cast<unsigned long long>(dropped), frame_time_ns / 1e6,
      off_overhead_pct, kOffBudgetPct);
  if (off_overhead_pct >= kOffBudgetPct) {
    std::fprintf(stderr,
                 "OBS GATE FAILED: disabled instrumentation costs "
                 "%.3f%% of a frame (budget %.1f%%)\n",
                 off_overhead_pct, kOffBudgetPct);
    ok = false;
  }
  const double labeled_off_pct =
      100.0 * kLabeledSitesPerFrame * lsite_ns / frame_time_ns;
  std::fprintf(g_table,
               "labeled sites/frame %.0f x %.2f ns -> metrics-off "
               "overhead %.4f%% (budget %.1f%%)\n",
               kLabeledSitesPerFrame, lsite_ns, labeled_off_pct,
               kOffBudgetPct);
  if (labeled_off_pct >= kOffBudgetPct) {
    std::fprintf(stderr,
                 "OBS GATE FAILED: disabled labeled metrics cost "
                 "%.3f%% of a frame (budget %.1f%%)\n",
                 labeled_off_pct, kOffBudgetPct);
    ok = false;
  }
  if (on.frames_completed != total_frames ||
      off.frames_completed != total_frames) {
    std::fprintf(stderr,
                 "OBS GATE FAILED: frame loss under kBlock (off %zu, on "
                 "%zu, expected %zu)\n",
                 off.frames_completed, on.frames_completed, total_frames);
    ok = false;
  }
  if (events.empty()) {
    std::fprintf(stderr, "OBS GATE FAILED: tracing-on run emitted no "
                         "events\n");
    ok = false;
  }
  if (on.layer_profiles.empty()) {
    std::fprintf(stderr, "OBS GATE FAILED: layer profiles missing from "
                         "the obs-on report\n");
    ok = false;
  }

  const auto write_json_to = [&](std::FILE* f) {
    std::fprintf(f,
                 "{\n  \"threads\": %d,\n  \"scale\": \"96x128 base16, "
                 "%d streams, worker budget %d\",\n"
                 "  \"disabled_site_ns\": %.3f,\n"
                 "  \"labeled_site_ns\": %.3f,\n"
                 "  \"events_per_frame\": %.2f,\n"
                 "  \"tracing_off_overhead_pct\": %.5f,\n"
                 "  \"labeled_off_overhead_pct\": %.5f,\n"
                 "  \"results\": [\n",
                 kWorkers, kStreams, kWorkers, site_ns, lsite_ns,
                 events_per_frame, off_overhead_pct, labeled_off_pct);
    for (std::size_t i = 0; i < records.size(); ++i) {
      const ObsRecord& r = records[i];
      std::fprintf(
          f,
          "    {\"obs\": \"%s\", \"network\": \"%s\", "
          "\"streams\": %d, \"ratio\": %.4f, \"detail\": \"%s\"}%s\n",
          r.probe.c_str(), r.network.c_str(), r.streams, r.ratio,
          r.detail.c_str(), i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
  };
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  write_json_to(f);
  std::fclose(f);
  std::fprintf(g_table, "wrote %s\n", out_path.c_str());
  if (json_stdout) write_json_to(stdout);
  return ok ? 0 : 1;
}
