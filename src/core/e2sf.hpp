#pragma once

// Event2Sparse Frame converter (E2SF, paper §4.1, Eq. 1): bins the raw
// AER stream between two grayscale-frame timestamps into nB event bins
//
//   biS  = (Tend - Tstart) / nB
//   EBk  = floor((tk - Tstart) / biS)
//
// accumulating positive and negative polarities separately per pixel and
// emitting each bin directly as a two-channel COO sparse frame — without
// materializing the dense intermediate event frame.
//
// The static accumulation baselines of §4.2 (fixed event count / fixed
// time interval, as in [7, 8]) and the dense-frame construction the paper
// measures against live here too.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "events/event_stream.hpp"
#include "sparse/sparse_frame.hpp"
#include "sparse/tensor.hpp"

namespace evedge::core {

struct E2sfConfig {
  int n_bins = 5;  ///< event bins per (Tstart, Tend) frame interval
};

/// Typed rejection of a malformed event in a conversion window — an
/// out-of-geometry coordinate, a timestamp running backwards, or an
/// event outside the declared [t_start, t_end) interval. EventStream
/// enforces these invariants at construction, but convert() also
/// accepts raw spans (live drivers, replay files), so the converter
/// validates rather than indexing out of range downstream. Carries
/// which event offended so callers can attribute the fault.
class MalformedEventError : public std::invalid_argument {
 public:
  enum class Kind {
    kOutOfBounds,             ///< (x, y) outside the sensor geometry
    kNonMonotonicTimestamp,   ///< t decreased relative to the previous event
    kOutsideInterval,         ///< t outside [t_start, t_end)
  };

  MalformedEventError(Kind kind, std::size_t event_index,
                      const std::string& what)
      : std::invalid_argument(what), kind_(kind),
        event_index_(event_index) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  /// Offset of the offending event within the convert() window.
  [[nodiscard]] std::size_t event_index() const noexcept {
    return event_index_;
  }

 private:
  Kind kind_;
  std::size_t event_index_;
};

/// Converts raw events to sparse frames per Eq. 1.
class Event2SparseFrame {
 public:
  Event2SparseFrame(events::SensorGeometry geometry, E2sfConfig config);

  /// Bins the events of one frame interval [t_start, t_end); the events
  /// span must already be restricted to that window (see
  /// EventStream::slice). Returns exactly n_bins frames (possibly empty),
  /// each carrying its bin timing metadata.
  [[nodiscard]] std::vector<sparse::SparseFrame> convert(
      std::span<const events::Event> window, events::TimeUs t_start,
      events::TimeUs t_end) const;

  /// Converts every (Tstart, Tend) interval of the frame clock; outer
  /// index = interval, inner = bin.
  [[nodiscard]] std::vector<std::vector<sparse::SparseFrame>> convert_stream(
      const events::EventStream& stream,
      const events::FrameClock& clock) const;

  [[nodiscard]] const E2sfConfig& config() const noexcept { return config_; }

 private:
  events::SensorGeometry geometry_;
  E2sfConfig config_;
};

/// Dense event-frame construction (the representation E2SF bypasses):
/// one [1, 2, H, W] tensor per bin, same binning as Eq. 1. The returned
/// tensors are what the all-GPU baseline feeds its fixed-size GEMMs.
[[nodiscard]] std::vector<sparse::DenseTensor> dense_event_frames(
    const events::SensorGeometry& geometry,
    std::span<const events::Event> window, events::TimeUs t_start,
    events::TimeUs t_end, int n_bins);

/// Static accumulation baseline: a new frame every `count` events
/// (paper §4.2: "statically counting events").
[[nodiscard]] std::vector<sparse::SparseFrame> accumulate_by_count(
    const events::EventStream& stream, std::size_t count);

/// Static accumulation baseline: a new frame every `window_us`
/// (paper §4.2: "sampling events at a fixed rate").
[[nodiscard]] std::vector<sparse::SparseFrame> accumulate_by_time(
    const events::EventStream& stream, events::TimeUs window_us);

}  // namespace evedge::core
