#include "events/density_profile.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace evedge::events {

DensityProfile::DensityProfile(std::string name, double base_rate_per_px,
                               std::vector<Burst> bursts,
                               double mod_amplitude, double mod_period_s)
    : name_(std::move(name)),
      base_rate_per_px_(base_rate_per_px),
      bursts_(std::move(bursts)),
      mod_amplitude_(mod_amplitude),
      mod_period_s_(mod_period_s) {
  if (base_rate_per_px_ < 0.0) {
    throw std::invalid_argument("base rate must be >= 0");
  }
  if (mod_period_s_ <= 0.0) {
    throw std::invalid_argument("modulation period must be > 0");
  }
}

double DensityProfile::rate_per_pixel(double t_s) const noexcept {
  double rate = base_rate_per_px_;
  for (const Burst& b : bursts_) {
    const double z = (t_s - b.t_center_s) / b.width_s;
    rate += b.peak_rate * std::exp(-0.5 * z * z);
  }
  rate += mod_amplitude_ *
          std::sin(2.0 * std::numbers::pi * t_s / mod_period_s_);
  return rate < 0.0 ? 0.0 : rate;
}

double DensityProfile::mean_rate_per_pixel(double t0_s, double t1_s,
                                           int steps) const {
  if (t1_s <= t0_s) throw std::invalid_argument("mean rate: t1 <= t0");
  if (steps <= 0) throw std::invalid_argument("mean rate: steps <= 0");
  const double dt = (t1_s - t0_s) / steps;
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    acc += rate_per_pixel(t0_s + (static_cast<double>(i) + 0.5) * dt);
  }
  return acc / steps;
}

// Preset magnitudes follow published MVSEC statistics: indoor_flying
// averages a few events/s/pixel with ~5x bursts during fast maneuvers;
// outdoor driving runs hotter and steadier; DENSE town sequences swing
// smoothly with camera orbit.

DensityProfile DensityProfile::indoor_flying1() {
  return DensityProfile(
      "indoor_flying1", 1.1,
      {Burst{1.2, 0.25, 5.5}, Burst{2.9, 0.18, 8.0}, Burst{4.4, 0.30, 4.0},
       Burst{6.1, 0.15, 9.5}, Burst{7.8, 0.22, 6.5}},
      0.25, 3.7);
}

DensityProfile DensityProfile::indoor_flying2() {
  return DensityProfile(
      "indoor_flying2", 1.4,
      {Burst{0.8, 0.20, 7.0}, Burst{2.2, 0.35, 3.5}, Burst{3.1, 0.12, 11.0},
       Burst{4.9, 0.25, 5.0}, Burst{6.6, 0.18, 8.5}, Burst{8.3, 0.28, 4.5}},
      0.35, 2.9);
}

DensityProfile DensityProfile::outdoor_day1() {
  return DensityProfile(
      "outdoor_day1", 4.2,
      {Burst{2.5, 0.6, 2.0}, Burst{6.0, 0.8, 1.5}},
      0.8, 5.3);
}

DensityProfile DensityProfile::dense_town10() {
  return DensityProfile("dense_town10", 2.6, {}, 1.6, 4.1);
}

}  // namespace evedge::events
