#pragma once

// CooChannel: one sparse 2-D channel in coordinate (COO) format — sorted
// row-major coordinates with float values and no duplicates. This is the
// building block of the two-channel sparse frames E2SF emits (paper §4.1:
// "store the row indices, column indices and their corresponding
// polarities as separate channels, similar to the sparse COO format").

#include <cstdint>
#include <vector>

namespace evedge::sparse {

/// One non-zero entry of a sparse channel.
struct CooEntry {
  std::int32_t row = 0;
  std::int32_t col = 0;
  float value = 0.0f;

  friend bool operator==(const CooEntry&, const CooEntry&) = default;
};

/// Sparse 2-D channel. Invariants (enforced on construction/mutation):
///  - entries sorted by (row, col), strictly increasing (no duplicates)
///  - all coordinates inside [0, height) x [0, width)
///  - no explicitly stored zero values
class CooChannel {
 public:
  CooChannel() = default;
  CooChannel(int height, int width);

  /// Builds from arbitrary (possibly unsorted / duplicated) entries by
  /// sorting and accumulating duplicates; zero-sum entries are dropped.
  [[nodiscard]] static CooChannel from_entries(int height, int width,
                                               std::vector<CooEntry> entries);

  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] const std::vector<CooEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }
  [[nodiscard]] double density() const noexcept;

  /// Accumulates `value` at (row, col); erases the entry if it cancels to
  /// zero. O(log n + n) worst case (vector insert); intended for
  /// construction-time accumulation, not inner loops.
  void accumulate(std::int32_t row, std::int32_t col, float value);

  /// Value at (row, col); 0 when absent. O(log n).
  [[nodiscard]] float at(std::int32_t row, std::int32_t col) const noexcept;

  /// Sum of all stored values.
  [[nodiscard]] double value_sum() const noexcept;

  /// Throws std::logic_error if an invariant is violated (test hook).
  void validate() const;

 private:
  int height_ = 0;
  int width_ = 0;
  std::vector<CooEntry> entries_;
};

/// c = a + scale_b * b (merge-union). Extents must match.
[[nodiscard]] CooChannel add(const CooChannel& a, const CooChannel& b,
                             float scale_b = 1.0f);

/// Elementwise scaling (entries with zero result are removed).
[[nodiscard]] CooChannel scale(const CooChannel& a, float factor);

}  // namespace evedge::sparse
