#pragma once

// Scheduling baselines the paper compares NMP against (§6):
//  - RR-Network: coarse round-robin — each whole network is pinned to one
//    processing element, networks distributed cyclically.
//  - RR-Layer: fine round-robin — consecutive layers distributed
//    cyclically over the processing elements.
//  - Random search: candidates sampled uniformly every generation with
//    the same evaluation budget as the evolutionary search (Fig. 10b).

#include "mapper/nmp.hpp"

namespace evedge::mapper {

/// Widest precision the PE supports (FP32 where available, else FP16).
[[nodiscard]] quant::Precision widest_precision(
    const hw::ProcessingElement& pe);

/// PE ids ordered by dense capability (fastest first): the round-robin
/// baselines cycle through this order so the strongest engines are used
/// before the CPU.
[[nodiscard]] std::vector<int> capability_order(const hw::Platform& platform);

/// RR-Network candidate: network i runs entirely on PE (i mod #PEs), at
/// that PE's widest supported precision.
[[nodiscard]] MappingCandidate rr_network_candidate(
    const std::vector<nn::NetworkSpec>& specs,
    const std::vector<hw::TaskProfile>& profiles,
    const hw::Platform& platform);

/// RR-Layer candidate: mappable layers (in task order, then topological
/// order) cycle over the PEs, each at the PE's widest precision.
[[nodiscard]] MappingCandidate rr_layer_candidate(
    const std::vector<nn::NetworkSpec>& specs,
    const std::vector<hw::TaskProfile>& profiles,
    const hw::Platform& platform);

struct RandomSearchResult {
  MappingCandidate best;
  double best_fitness = 0.0;
  std::vector<GenerationRecord> history;  ///< best-so-far per generation
  std::size_t fitness_evaluations = 0;
};

/// Random search with the same per-generation candidate budget as the
/// mapper's EA; `mapper` supplies candidate sampling and fitness.
[[nodiscard]] RandomSearchResult random_search(const NetworkMapper& mapper,
                                               int population,
                                               int generations,
                                               std::uint64_t seed);

}  // namespace evedge::mapper
