#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "core/batch_executor.hpp"

namespace evedge::core {

namespace {

struct LatencyAccumulator {
  std::vector<double> samples;
  double staleness_sum = 0.0;
  double density_sum = 0.0;

  void add_bucket(double completion_us, const sparse::SparseFrame& frame) {
    samples.push_back(completion_us - static_cast<double>(frame.t_end));
    staleness_sum += completion_us - static_cast<double>(frame.t_start);
    density_sum += frame.density();
  }
};

}  // namespace

PipelineStats simulate_pipeline(const events::EventStream& stream,
                                const nn::NetworkSpec& spec,
                                const sched::TaskMapping& mapping,
                                const hw::Platform& platform,
                                const ActivationDensityProfile& densities,
                                const PipelineConfig& config) {
  if (stream.empty()) {
    throw std::invalid_argument("simulate_pipeline: empty event stream");
  }
  if (config.frame_rate_hz <= 0.0) {
    throw std::invalid_argument("simulate_pipeline: bad frame rate");
  }

  // Grayscale frame clock spanning the stream (shared with the serving
  // ingress, so process() and serving frame identically).
  const events::FrameClock clock =
      events::FrameClock::spanning(stream, config.frame_rate_hz);

  const Event2SparseFrame e2sf(stream.geometry(), config.e2sf);
  const auto intervals = e2sf.convert_stream(stream, clock);
  std::vector<sparse::SparseFrame> frames;
  for (const auto& interval : intervals) {
    for (const sparse::SparseFrame& frame : interval) {
      frames.push_back(frame);
    }
  }
  return simulate_frame_pipeline(frames, spec, mapping, platform, densities,
                                 config);
}

PipelineStats simulate_frame_pipeline(
    const std::vector<sparse::SparseFrame>& input_frames,
    const nn::NetworkSpec& spec, const sched::TaskMapping& mapping,
    const hw::Platform& platform, const ActivationDensityProfile& densities,
    const PipelineConfig& config) {
  if (input_frames.empty()) {
    throw std::invalid_argument("simulate_frame_pipeline: no frames");
  }
  InferenceCostOptions cost_options;
  cost_options.use_sparse_routes = config.use_e2sf;
  cost_options.charge_encode_overhead = config.charge_encode_overhead;

  PipelineStats stats;
  LatencyAccumulator acc;
  double device_free_us = 0.0;
  double busy_energy_mj = 0.0;

  DynamicSparseFrameAggregator dsfa(config.dsfa);
  // Bounded FIFO for the non-DSFA variants (the DSFA variants bound
  // theirs inside the aggregator's inference queue). Real runtimes drop
  // stale inputs rather than letting the backlog grow without limit.
  std::deque<sparse::SparseFrame> plain_queue;
  const std::size_t plain_capacity = config.dsfa.inference_queue_capacity;

  const auto run_batch = [&](std::vector<sparse::SparseFrame>&& frames) {
    if (frames.empty()) return;
    if (config.executor != nullptr) {
      // Real batched execution of the dispatched merge batch; the
      // executor owns the bookkeeping (one wall-time definition:
      // run_batched only) and the pipeline accumulates its deltas.
      const BatchExecutorStats before = config.executor->stats();
      (void)config.executor->execute(frames);
      const BatchExecutorStats& after = config.executor->stats();
      stats.functional_batches += after.batches - before.batches;
      stats.functional_samples += after.samples - before.samples;
      stats.functional_wall_ms += after.wall_ms - before.wall_ms;
    }
    double density = 0.0;
    double newest_arrival = 0.0;
    for (const sparse::SparseFrame& f : frames) {
      density += f.density();
      newest_arrival =
          std::max(newest_arrival, static_cast<double>(f.t_end));
    }
    density /= static_cast<double>(frames.size());
    cost_options.batch = static_cast<int>(frames.size());
    const InferenceCost cost = estimate_inference(
        spec, mapping, platform, densities, std::clamp(density, 0.0, 1.0),
        cost_options);
    const double start = std::max(device_free_us, newest_arrival);
    const double end = start + cost.latency_us;
    device_free_us = end;
    busy_energy_mj += cost.busy_energy_mj;
    stats.device_busy_us += cost.latency_us;
    ++stats.inferences;
    stats.mean_batch += static_cast<double>(frames.size());
    stats.buckets_completed += frames.size();
    for (const sparse::SparseFrame& f : frames) {
      stats.source_frames_completed +=
          static_cast<std::size_t>(f.merged_count);
      acc.add_bucket(end, f);
    }
  };

  // Runs DSFA-ready batches that the device can accept by time `now`
  // (or all of them when `flush` is set at end of stream).
  const auto service_dsfa = [&](double now_us, bool flush) {
    while (device_free_us <= now_us || flush) {
      auto batch = dsfa.take_ready_batch();
      if (!batch.has_value()) break;
      run_batch(std::move(batch->frames));
    }
  };

  // Runs plain-queue entries the device can accept by `now`.
  const auto service_plain = [&](double now_us, bool flush) {
    while (!plain_queue.empty() && (device_free_us <= now_us || flush)) {
      std::vector<sparse::SparseFrame> single;
      single.push_back(std::move(plain_queue.front()));
      plain_queue.pop_front();
      run_batch(std::move(single));
    }
  };

  for (const sparse::SparseFrame& frame : input_frames) {
    const double arrival = static_cast<double>(frame.t_end);
    ++stats.frames_generated;

    if (!config.use_dsfa) {
      service_plain(arrival, false);
      if (plain_queue.empty() && device_free_us <= arrival) {
        std::vector<sparse::SparseFrame> single{frame};
        run_batch(std::move(single));
      } else {
        if (plain_queue.size() >= plain_capacity) {
          plain_queue.pop_front();  // drop the stalest frame
          ++stats.frames_dropped;
        }
        plain_queue.push_back(frame);
      }
      continue;
    }

    // DSFA path: serve whatever the device finished first, then stage
    // the new frame (possibly triggering a buffer-overflow dispatch).
    service_dsfa(arrival, false);
    dsfa.push(frame);
    // Idle dispatch (paper: "if the hardware platform becomes
    // available before the event buffer reaches full capacity, we
    // dispatch the available merge buckets"). Under load the device is
    // busy here, so frames accumulate and merge instead.
    if (config.idle_dispatch && device_free_us <= arrival &&
        dsfa.buffered_frames() > 0) {
      dsfa.dispatch_available();
    }
    service_dsfa(arrival, false);
  }

  // End of stream: flush everything still staged or queued.
  if (config.use_dsfa) {
    dsfa.dispatch_available();
    service_dsfa(device_free_us, true);
    stats.dsfa = dsfa.stats();
    stats.frames_dropped += dsfa.stats().frames_discarded;
  } else {
    service_plain(device_free_us, true);
  }

  // --- Aggregate statistics.
  const double data_span_us =
      static_cast<double>(input_frames.back().t_end -
                          input_frames.front().t_start);
  stats.sim_span_us = std::max(device_free_us, data_span_us);
  stats.busy_energy_mj = busy_energy_mj;
  double idle_mj = 0.0;
  for (const hw::ProcessingElement& pe : platform.pes) {
    idle_mj += pe.idle_power_w * stats.sim_span_us / 1000.0;
  }
  stats.total_energy_mj = busy_energy_mj + idle_mj;

  if (!acc.samples.empty()) {
    std::sort(acc.samples.begin(), acc.samples.end());
    double sum = 0.0;
    for (double s : acc.samples) sum += s;
    const auto n = static_cast<double>(acc.samples.size());
    stats.mean_latency_us = sum / n;
    stats.max_latency_us = acc.samples.back();
    stats.p95_latency_us =
        acc.samples[static_cast<std::size_t>(0.95 * (n - 1))];
    stats.mean_staleness_us = acc.staleness_sum / n;
    stats.mean_input_density = acc.density_sum / n;
  }
  if (stats.inferences > 0) {
    stats.mean_batch /= static_cast<double>(stats.inferences);
  }
  if (stats.source_frames_completed > 0) {
    stats.mean_service_per_frame_us =
        stats.device_busy_us /
        static_cast<double>(stats.source_frames_completed);
  }
  return stats;
}

}  // namespace evedge::core
