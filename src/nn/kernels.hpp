#pragma once

// Dense functional kernels (single-threaded CPU reference, NCHW). These
// are the numerical ground truth of the repository: the sparse kernels,
// the quantized paths and the end-to-end accuracy experiments are all
// validated against them.

#include <span>

#include "sparse/sparse_ops.hpp"
#include "sparse/tensor.hpp"
#include "sparse/workspace.hpp"

namespace evedge::nn {

using sparse::Conv2dSpec;
using sparse::DenseTensor;
using sparse::TensorShape;

/// Dense 2-D convolution. input [N, Cin, H, W], weights
/// [Cout, Cin, k, k], bias per out channel (empty = none).
/// Dispatches between a flat-index direct path and an im2col + blocked
/// GEMM path (large shapes); both are numerically equivalent to the seed
/// reference loop nest (sparse::reference::conv2d) and threaded over
/// output channels via core::parallel_for. `workspace`, when non-null,
/// supplies the im2col scratch (slot 0, reused across calls); without
/// one the column matrix is a per-call allocation — it can reach
/// hundreds of MB for large shapes, so it is never silently retained.
[[nodiscard]] DenseTensor conv2d(const DenseTensor& input,
                                 const DenseTensor& weights,
                                 std::span<const float> bias,
                                 const Conv2dSpec& spec,
                                 Workspace* workspace = nullptr);

/// Allocation-free steady-state variant: writes the result into `out`,
/// reusing its buffer when capacity allows (out must not alias input).
void conv2d_into(const DenseTensor& input, const DenseTensor& weights,
                 std::span<const float> bias, const Conv2dSpec& spec,
                 DenseTensor& out, Workspace* workspace = nullptr);

/// Forces the flat-index direct path (exposed for parity tests/bench).
[[nodiscard]] DenseTensor conv2d_direct(const DenseTensor& input,
                                        const DenseTensor& weights,
                                        std::span<const float> bias,
                                        const Conv2dSpec& spec);

/// Forces the im2col + blocked-GEMM path (exposed for parity tests/bench).
[[nodiscard]] DenseTensor conv2d_gemm(const DenseTensor& input,
                                      const DenseTensor& weights,
                                      std::span<const float> bias,
                                      const Conv2dSpec& spec,
                                      Workspace* workspace = nullptr);

/// True when conv2d would take the GEMM path for this input/spec.
[[nodiscard]] bool conv2d_uses_gemm(const TensorShape& input,
                                    const Conv2dSpec& spec) noexcept;

/// Transposed convolution (a.k.a. deconvolution) used by decoder stages.
/// Output extent: (in - 1) * stride - 2 * padding + kernel.
[[nodiscard]] DenseTensor transposed_conv2d(const DenseTensor& input,
                                            const DenseTensor& weights,
                                            std::span<const float> bias,
                                            const Conv2dSpec& spec);

[[nodiscard]] int transposed_conv_out_extent(int in_extent, int kernel,
                                             int stride, int padding);

/// Fully connected layer over flattened input. weights [out, in] stored
/// as a [out, in, 1, 1] tensor.
[[nodiscard]] DenseTensor fully_connected(const DenseTensor& input,
                                          const DenseTensor& weights,
                                          std::span<const float> bias);

/// 2x2 (or kxk) max pooling with stride = kernel.
[[nodiscard]] DenseTensor max_pool(const DenseTensor& input, int kernel);

/// kxk average pooling with stride = kernel.
[[nodiscard]] DenseTensor avg_pool(const DenseTensor& input, int kernel);

/// In-place ReLU.
void relu_inplace(DenseTensor& t) noexcept;

/// Per-channel affine normalization: y = x * gamma[c] + beta[c]
/// (inference-mode batchnorm with folded statistics).
[[nodiscard]] DenseTensor channel_affine(const DenseTensor& input,
                                         std::span<const float> gamma,
                                         std::span<const float> beta);

/// Channel-wise concatenation of two tensors with equal N/H/W.
[[nodiscard]] DenseTensor concat_channels(const DenseTensor& a,
                                          const DenseTensor& b);

/// Elementwise sum of two equal-shaped tensors.
[[nodiscard]] DenseTensor add(const DenseTensor& a, const DenseTensor& b);

/// Nearest-neighbour upsampling by integer factor.
[[nodiscard]] DenseTensor upsample_nearest(const DenseTensor& input,
                                           int factor);

}  // namespace evedge::nn
