#pragma once

// Sequence-numbered wire sessions: a go-back-N ARQ layer that makes the
// EVWP packet stream lossless over hostile transports.
//
//   WireSender    pre-encodes the stream into seq-numbered packets
//                 (hello + data... + end-of-stream), sends inside a
//                 bounded window, retransmits from the cumulative-ack
//                 base on timeout, heartbeats while idle, and — when
//                 the link dies — reconnects through its
//                 TransportFactory and resumes from the receiver's
//                 answering ack (zero acked frames retransmitted
//                 blindly, zero unacked frames lost).
//   WireReceiver  frames bytes (PacketFramer), accepts data packets
//                 exactly once in seq order through a bounded reorder
//                 buffer, quarantines rejected packets into counters
//                 instead of dying, unwraps 32-bit wire timestamps onto
//                 the 64-bit timeline, sends cumulative acks (every
//                 ack_interval packets, immediately on a gap, and in
//                 answer to resume handshakes), and detects stalled
//                 peers via read timeouts + heartbeat silence.
//
// Accounting partition (checked by the serve layer):
//   packets_seen == packets_accepted + rejected_packets
//                   + duplicate_packets
// where `seen` counts framed data/end-of-stream packets plus framing
// rejections; control packets (hello, heartbeat, ack, resume) are
// tallied separately. The partition is exact once the reorder buffer
// has drained (end of session — orphaned buffered packets are flushed
// as kUnresolvedGap rejections).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "events/event_stream.hpp"
#include "wire/packet.hpp"
#include "wire/transport.hpp"

namespace evedge::wire {

// ------------------------------------------------------------- sender

using TransportFactory = std::function<std::unique_ptr<Transport>()>;

struct WireSenderConfig {
  std::uint32_t session_id = 1;
  /// Events per data packet (<= kMaxEventsPerPacket).
  std::size_t events_per_packet = 256;
  /// Max unacked data packets in flight (go-back-N window). Keep at or
  /// below the receiver's reorder window so buffered out-of-order
  /// packets are never discarded in a fault-free exchange.
  std::size_t window = 32;
  /// Retransmit from the window base after this long without an ack.
  std::chrono::milliseconds rto{40};
  /// Heartbeat cadence while idle (window full / all sent).
  std::chrono::milliseconds heartbeat_interval{15};
  /// Patience for the resume handshake's answering ack.
  std::chrono::milliseconds resume_timeout{500};
  /// Consecutive failed reconnect attempts before giving up.
  int max_reconnects = 10;
};

struct WireSendStats {
  std::size_t data_packets = 0;  ///< first transmissions (incl. eos)
  std::size_t retransmits = 0;   ///< go-back-N rewound packet sends
  std::size_t heartbeats = 0;
  std::size_t acks_received = 0;
  std::size_t reconnects = 0;
  bool completed = false;  ///< every packet through end-of-stream acked
};

/// Reliable sender for one EventStream. run() blocks until the
/// receiver has acked the end-of-stream marker (completed = true) or
/// reconnection is exhausted (completed = false).
class WireSender {
 public:
  WireSender(const events::EventStream& stream, WireSenderConfig config,
             TransportFactory factory);

  [[nodiscard]] WireSendStats run();

  /// Data packets the stream encodes to (excluding end-of-stream).
  [[nodiscard]] std::uint32_t data_packet_count() const noexcept {
    return static_cast<std::uint32_t>(packets_.size()) - 1;
  }

 private:
  /// Serves one connection; true once everything is acked.
  bool serve_connection(Transport& transport, WireSendStats& stats);

  WireSenderConfig config_;
  TransportFactory factory_;
  std::vector<std::uint8_t> hello_;
  /// packets_[seq] = encoded bytes; the last entry is end-of-stream.
  std::vector<std::vector<std::uint8_t>> packets_;
  std::uint32_t base_ = 0;       ///< lowest unacked seq
  std::uint32_t next_send_ = 0;  ///< next seq to (re)transmit
  std::uint32_t sent_high_ = 0;  ///< highest seq ever sent + 1
};

// ----------------------------------------------------------- receiver

struct WireReceiverConfig {
  /// Per-recv_some read timeout (the poll granularity).
  std::chrono::milliseconds read_timeout{5};
  /// No bytes at all (not even heartbeats) for this long -> stalled.
  std::chrono::milliseconds stall_timeout{1000};
  /// Out-of-order packets buffered while awaiting the gap fill.
  std::size_t reorder_window = 64;
  /// Cumulative ack cadence (also sent immediately on gaps / resume /
  /// end-of-stream).
  std::size_t ack_interval = 8;
  /// Post-end-of-stream grace (linger()): how long to keep the link
  /// open for the peer to consume the final ack before closing.
  std::chrono::milliseconds linger_timeout{250};
};

struct WireRecvStats {
  std::size_t packets_seen = 0;
  std::size_t packets_accepted = 0;
  std::size_t rejected_packets = 0;
  std::size_t duplicate_packets = 0;
  std::size_t control_packets = 0;  ///< hello / heartbeat / ack / resume
  std::size_t reordered_buffered = 0;
  std::size_t acks_sent = 0;
  std::size_t resumes_served = 0;
  std::size_t heartbeats_seen = 0;
  // Session-health observables (outside the accounting partition): the
  // receiver cannot see the sender's retransmit counter directly, but a
  // go-back-N rewind is visible as the data seq jumping backwards, and
  // a framing resynchronization as a kBadMagic rejection.
  std::size_t rewinds_seen = 0;  ///< data seq went backwards (ARQ rewind)
  std::size_t resyncs = 0;       ///< kBadMagic framing resynchronizations

  [[nodiscard]] bool accounting_ok() const noexcept {
    return packets_seen ==
           packets_accepted + rejected_packets + duplicate_packets;
  }
};

/// Where accepted traffic goes. Callbacks run on the serve() caller's
/// thread, strictly in stream order, exactly once per seq.
struct WireSink {
  std::function<void(const StreamHeader&)> hello;
  std::function<void(std::span<const events::Event>, std::uint32_t seq)>
      events;
  std::function<void(std::int64_t t_end_us)> eos;
  std::function<void(PacketError)> rejected;
};

enum class ServeOutcome : std::uint8_t {
  kEndOfStream,  ///< clean end-of-stream accepted and acked
  kPeerClosed,   ///< transport EOF / closed; caller may await reconnect
  kStalled,      ///< stall_timeout of total silence
};

[[nodiscard]] const char* to_string(ServeOutcome outcome) noexcept;

class WireReceiver {
 public:
  WireReceiver(WireReceiverConfig config, WireSink sink);

  /// Pumps one connection until end-of-stream, link death, or stall.
  /// Call again with the replacement transport after a reconnect — the
  /// session state (next seq, unwrapper, stats) carries across.
  [[nodiscard]] ServeOutcome serve(Transport& transport);

  /// Post-end-of-stream grace: the final cumulative ack may still be
  /// unread by the peer when the caller closes — and an abrupt close of
  /// a TCP socket with unread inbound bytes (the sender's heartbeats)
  /// RSTs the connection, discarding that ack in flight. Keeps the link
  /// open, draining and answering traffic, until the peer closes (the
  /// completed sender closes first) or `linger_timeout` elapses.
  void linger(Transport& transport);

  [[nodiscard]] const WireRecvStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] bool eos() const noexcept { return eos_; }
  [[nodiscard]] std::uint32_t next_expected() const noexcept {
    return next_expected_;
  }

  /// Closes the accounting partition when the caller abandons the
  /// session before end-of-stream: orphaned reorder-buffer entries are
  /// flushed as kUnresolvedGap rejections. Idempotent; serve() calls
  /// it automatically on a clean end-of-stream.
  void finish() { flush_orphans(); }

 private:
  void handle(const Framed& framed, Transport& transport);
  void accept_in_order(const PacketHeader& header,
                       std::span<const std::uint8_t> payload);
  void drain_reorder_buffer();
  void send_ack(Transport& transport);
  void flush_orphans();

  WireReceiverConfig config_;
  WireSink sink_;
  PacketFramer framer_;
  WireRecvStats stats_;

  bool have_hello_ = false;
  StreamHeader stream_header_{};
  std::uint32_t session_id_for_ack_ = 0;
  std::unique_ptr<TimestampUnwrapper> unwrapper_;
  std::int64_t min_t_us_ = 0;

  std::uint32_t next_expected_ = 0;
  std::int64_t prev_data_seq_ = -1;  ///< last data seq seen (rewind probe)
  std::size_t since_ack_ = 0;
  bool eos_ = false;
  /// seq -> (header, payload copy) awaiting the gap fill.
  std::map<std::uint32_t,
           std::pair<PacketHeader, std::vector<std::uint8_t>>>
      pending_;
  std::vector<events::Event> decode_scratch_;
};

}  // namespace evedge::wire
