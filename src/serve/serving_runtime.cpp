#include "serve/serving_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "core/batch_executor.hpp"
#include "core/parallel.hpp"
#include "nn/exec_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"

namespace evedge::serve {

using sparse::DenseTensor;

namespace {

[[nodiscard]] std::uint64_t capture_key(int stream_id,
                                        std::int64_t seq) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(stream_id))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(seq));
}

/// Brackets one run's tracing: installs the ring capacity, clears stale
/// events, enables on construction; disables and (optionally) exports
/// the Chrome trace on destruction — exception-safe, so a failing run
/// still leaves the tracer off and the partial trace on disk.
class ScopedTracing {
 public:
  explicit ScopedTracing(const ObsConfig& obs_config)
      : active_(obs_config.trace || obs_config.trace_nodes),
        trace_path_(obs_config.trace_path) {
    if (!active_) return;
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.set_ring_capacity(obs_config.trace_ring_capacity);
    tracer.clear();
    obs::Tracer::set_enabled(true);
  }
  ~ScopedTracing() {
    if (!active_) return;
    obs::Tracer::set_enabled(false);
    if (!trace_path_.empty()) {
      const std::vector<obs::TraceEvent> events =
          obs::Tracer::instance().collect();
      (void)obs::write_chrome_trace_file(trace_path_, events);
    }
  }
  ScopedTracing(const ScopedTracing&) = delete;
  ScopedTracing& operator=(const ScopedTracing&) = delete;

 private:
  bool active_;
  std::string trace_path_;
};

/// Restores the previous process-wide kernel-thread override on exit.
class ScopedKernelThreads {
 public:
  explicit ScopedKernelThreads(int count)
      : active_(count > 0),
        previous_(active_ ? core::set_parallel_threads(count) : 0) {}
  ~ScopedKernelThreads() {
    if (active_) core::set_parallel_threads(previous_);
  }
  ScopedKernelThreads(const ScopedKernelThreads&) = delete;
  ScopedKernelThreads& operator=(const ScopedKernelThreads&) = delete;

 private:
  bool active_;
  int previous_;
};

}  // namespace

ServingRuntime::ServingRuntime(nn::NetworkSpec spec, std::uint64_t seed,
                               ServeConfig config)
    : spec_(spec), prototype_(std::move(spec), seed),
      config_(std::move(config)) {
  if (config_.n_workers < 1) {
    throw std::invalid_argument("ServingRuntime: need >= 1 worker");
  }
  // The obs switches that live inside the workers propagate into the
  // worker config here, so every pool built from config_.worker (and
  // every restart clone) carries them.
  if (config_.obs.layer_profiles) config_.worker.profile_layers = true;
  if (config_.obs.trace_nodes) config_.worker.trace_nodes = true;
}

ServeReport ServingRuntime::run(
    std::span<const events::EventStream> streams) {
  if (streams.empty()) {
    throw std::invalid_argument("ServingRuntime: no streams");
  }
  // Surface per-stream problems here, not as a thread-side abort.
  for (const events::EventStream& stream : streams) {
    if (stream.empty()) {
      throw std::invalid_argument("ServingRuntime: empty event stream");
    }
  }
  std::optional<FaultJournal> journal;
  if (!config_.journal_path.empty()) {
    journal.emplace(config_.journal_path);
  }

  FrameQueue queue(config_.queue_capacity, config_.overflow);
  const bool inject = !config_.faults.empty();
  FaultInjector injector(config_.faults);
  std::vector<StreamIngress> ingresses;
  ingresses.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    ingresses.emplace_back(static_cast<int>(i), streams[i],
                           config_.ingress, queue);
    if (inject) ingresses.back().attach_faults(&injector);
    if (journal.has_value()) ingresses.back().attach_journal(&*journal);
  }
  if (config_.obs.metrics) {
    // Per-stream dispatch counters, resolved here where the concrete
    // ingress type is known; the ingress hot path pays one null check
    // when metrics are off.
    obs::LabeledCounter& enq =
        obs::MetricsRegistry::global().labeled_counter(
            "evedge_stream_frames_enqueued_total",
            "Merged frames dispatched by ingress, per stream");
    for (std::size_t i = 0; i < ingresses.size(); ++i) {
      ingresses[i].attach_dispatch_counter(
          &enq.at(obs::LabelSet{{"stream", std::to_string(i)}}));
    }
  }
  std::vector<IngressBase*> bases;
  bases.reserve(ingresses.size());
  for (StreamIngress& ingress : ingresses) bases.push_back(&ingress);
  return serve_ingresses(bases, queue, inject ? &injector : nullptr,
                         journal.has_value() ? &*journal : nullptr);
}

ServeReport ServingRuntime::run_wire(
    std::span<const TransportAcceptor> acceptors,
    const WireIngressConfig& wire_config) {
  if (acceptors.empty()) {
    throw std::invalid_argument("ServingRuntime: no wire acceptors");
  }
  std::optional<FaultJournal> journal;
  if (!config_.journal_path.empty()) {
    journal.emplace(config_.journal_path);
  }

  FrameQueue queue(config_.queue_capacity, config_.overflow);
  std::vector<WireStreamIngress> ingresses;
  ingresses.reserve(acceptors.size());
  for (std::size_t i = 0; i < acceptors.size(); ++i) {
    ingresses.emplace_back(static_cast<int>(i), config_.ingress,
                           wire_config, queue, acceptors[i]);
    if (journal.has_value()) ingresses.back().attach_journal(&*journal);
  }
  if (config_.obs.metrics) {
    obs::LabeledCounter& enq =
        obs::MetricsRegistry::global().labeled_counter(
            "evedge_stream_frames_enqueued_total",
            "Merged frames dispatched by ingress, per stream");
    for (std::size_t i = 0; i < ingresses.size(); ++i) {
      ingresses[i].attach_dispatch_counter(
          &enq.at(obs::LabelSet{{"stream", std::to_string(i)}}));
    }
  }
  std::vector<IngressBase*> bases;
  bases.reserve(ingresses.size());
  for (WireStreamIngress& ingress : ingresses) bases.push_back(&ingress);
  // Network faults are injected at the transport layer (NetFaultProxy),
  // not through the stream/worker FaultInjector — no injector here.
  return serve_ingresses(bases, queue, nullptr,
                         journal.has_value() ? &*journal : nullptr);
}

ServeReport ServingRuntime::serve_ingresses(
    std::span<IngressBase* const> ingresses, FrameQueue& queue,
    FaultInjector* injector, FaultJournal* journal) {
  report_ = ServeReport{};
  captured_.clear();

  const ObsConfig& obs_config = config_.obs;
  const ScopedTracing tracing_guard(obs_config);
  const bool tracing = obs_config.trace || obs_config.trace_nodes;

  // Live metrics: registration happens once up front; the hot paths
  // below use the cached pointers (nullptr = metrics off).
  obs::Counter* m_completed = nullptr;
  obs::Counter* m_shed = nullptr;
  obs::Counter* m_failed = nullptr;
  obs::Histogram* m_latency = nullptr;
  obs::Gauge* g_queue_depth = nullptr;
  obs::Gauge* g_degrade_level = nullptr;
  obs::Gauge* g_queue_dropped = nullptr;
  // Per-stream labeled series, indexed by stream id. Series creation is
  // the cold path (family mutex); the sinks below touch these cached
  // pointers only, so the metrics-off cost stays one null check.
  std::vector<obs::Counter*> m_s_completed;
  std::vector<obs::Counter*> m_s_shed;
  std::vector<obs::Counter*> m_s_failed;
  std::vector<obs::Histogram*> m_s_latency;
  std::vector<obs::Gauge*> g_burn;
  if (obs_config.metrics) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    m_completed = &registry.counter("evedge_frames_completed_total",
                                    "Frames through inference");
    m_shed = &registry.counter("evedge_frames_shed_total",
                               "SLO-stale frames shed before inference");
    m_failed = &registry.counter("evedge_frames_failed_total",
                                 "Frames quarantined");
    m_latency = &registry.histogram(
        "evedge_completion_latency_us", obs::Histogram::Options{},
        "Enqueue-to-completion latency (us)");
    g_queue_depth = &registry.gauge("evedge_queue_depth",
                                    "Live frame queue depth");
    g_degrade_level = &registry.gauge("evedge_degrade_level",
                                      "Current degradation ladder level");
    g_queue_dropped = &registry.gauge(
        "evedge_queue_dropped", "Frames displaced by drop-oldest so far");
    obs::LabeledCounter& frames = registry.labeled_counter(
        "evedge_stream_frames_total",
        "Frame outcomes by stream and outcome class");
    obs::LabeledHistogram& latency = registry.labeled_histogram(
        "evedge_stream_latency_us", obs::Histogram::Options{},
        "Enqueue-to-completion latency (us), per stream");
    obs::LabeledGauge& burn_rate = registry.labeled_gauge(
        "evedge_slo_burn_rate",
        "Rolling SLO burn rate per stream (1.0 = error budget consumed "
        "exactly)");
    for (std::size_t i = 0; i < ingresses.size(); ++i) {
      const std::string id = std::to_string(i);
      m_s_completed.push_back(
          &frames.at({{"stream", id}, {"outcome", "completed"}}));
      m_s_shed.push_back(&frames.at({{"stream", id}, {"outcome", "shed"}}));
      m_s_failed.push_back(
          &frames.at({{"stream", id}, {"outcome", "failed"}}));
      m_s_latency.push_back(&latency.at({{"stream", id}}));
      g_burn.push_back(&burn_rate.at({{"stream", id}}));
    }
  }
  std::atomic<std::int64_t> completed_total{0};

  // Per-stream SLO burn-rate windows (good = completed within the
  // deadline; bad = missed it, shed, or worker-failed), updated under
  // the sink mutex. Armed whenever a deadline is configured.
  const bool slo_burn = config_.slo.deadline_ms > 0.0;
  std::vector<BurnRateWindow> burn;
  if (slo_burn) {
    burn.resize(ingresses.size(),
                BurnRateWindow(config_.slo.burn_window,
                               config_.slo.burn_good_target));
  }

  // Completion-side accounting, shared by every worker thread.
  std::mutex sink_mutex;
  std::vector<StreamServeStats> completion(ingresses.size());
  std::vector<QuarantinedFrame> worker_quarantine;
  const bool capture = config_.capture_outputs;
  // Rolling completion-latency probe: only materialized when the
  // latency-driven degradation trigger is armed (it is the only
  // consumer and costs a mutex op per completion).
  std::optional<RollingLatency> latency_probe;
  if (config_.slo.degrade && config_.slo.latency_high_ms > 0.0) {
    latency_probe.emplace(config_.slo.latency_window);
  }
  const ResultSink sink = [&](const ReadyFrame& frame,
                              const DenseTensor& batch_output, int lane,
                              double latency_us) {
    // Lineage: the "frame.capture" hop covers the result hand-off —
    // output copy, metric updates, and the locked accounting below.
    const std::uint64_t cap0 =
        obs::Tracer::enabled() ? obs::now_ns() : 0;
    // The output copy happens outside the lock (each (stream, seq) key
    // is produced exactly once, so only the shared accounting and the
    // map mutation need the mutex).
    DenseTensor output;
    if (capture) sparse::copy_sample(batch_output, lane, output);
    if (latency_probe.has_value()) latency_probe->add(latency_us);
    const auto si = static_cast<std::size_t>(frame.stream_id);
    if (m_completed != nullptr) {
      m_completed->add();
      m_latency->observe(latency_us);
      m_s_completed[si]->add();
      m_s_latency[si]->observe(latency_us);
    }
    obs::Tracer::counter(
        "serve", "frames.completed",
        completed_total.fetch_add(1, std::memory_order_relaxed) + 1);
    double burn_now = -1.0;
    {
      const std::lock_guard<std::mutex> lock(sink_mutex);
      StreamServeStats& s = completion[si];
      ++s.completed;
      s.latency.add(latency_us);
      if (slo_burn) {
        const bool good = latency_us <= config_.slo.deadline_ms * 1e3;
        burn[si].add(good);
        if (good) {
          ++s.slo_good;
        } else {
          ++s.slo_bad;
        }
        burn_now = burn[si].burn_rate();
      }
      if (capture) {
        captured_[capture_key(frame.stream_id, frame.seq)] =
            std::move(output);
      }
    }
    if (burn_now >= 0.0 && !g_burn.empty()) g_burn[si]->set(burn_now);
    if (cap0 != 0) {
      obs::Tracer::span("serve", "frame.capture", cap0, obs::now_ns(),
                        "stream", frame.stream_id, "seq", frame.seq);
    }
  };
  const FailureSink failure = [&](const QuarantinedFrame& q) {
    if (journal != nullptr) {
      journal->append("quarantine",
                      "stream=" + std::to_string(q.stream_id) +
                          " seq=" + std::to_string(q.seq) +
                          " fault=" + to_string(q.fault) +
                          " action=" +
                          (is_shed_fault(q.fault) ? "shed" : "worker-reject"));
    }
    const auto si = static_cast<std::size_t>(q.stream_id);
    if (is_shed_fault(q.fault)) {
      if (m_shed != nullptr) {
        m_shed->add();
        m_s_shed[si]->add();
      }
    } else {
      if (m_failed != nullptr) {
        m_failed->add();
        m_s_failed[si]->add();
      }
      obs::Tracer::instant("serve", "frame.quarantine", "stream",
                           q.stream_id, "seq", q.seq);
    }
    double burn_now = -1.0;
    {
      const std::lock_guard<std::mutex> lock(sink_mutex);
      StreamServeStats& s = completion[si];
      if (is_shed_fault(q.fault)) {
        ++s.shed;
      } else {
        ++s.failed;
      }
      if (slo_burn) {
        burn[si].add(false);
        ++s.slo_bad;
        burn_now = burn[si].burn_rate();
      }
      worker_quarantine.push_back(q);
    }
    if (burn_now >= 0.0 && !g_burn.empty()) g_burn[si]->set(burn_now);
  };

  ServeWorkerPool pool(prototype_, config_.n_workers, config_.worker);
  const ScopedKernelThreads kernel_guard(config_.kernel_threads);

  ServeHooks hooks;
  hooks.result = sink;
  hooks.failure = failure;
  hooks.faults = injector;
  hooks.slo = config_.slo;
  DegradationState degrade_state;
  std::optional<DegradationController> controller;
  if (config_.slo.degrade) {
    controller.emplace(config_.slo, queue, degrade_state);
    hooks.degrade = &degrade_state;
    if (latency_probe.has_value()) {
      controller->set_latency_probe(&*latency_probe);
    }
    if (journal != nullptr || tracing || obs_config.metrics) {
      controller->set_transition_hook(
          [journal, g_degrade_level](const DegradationTransition& t) {
            if (journal != nullptr) {
              journal->append(
                  "degrade",
                  "from=" + std::to_string(t.from) +
                      " to=" + std::to_string(t.to) +
                      " depth=" + std::to_string(t.queue_depth) +
                      " p99_ms=" + std::to_string(t.p99_ms) +
                      " action=level-change");
            }
            obs::Tracer::instant("serve", "degrade", "from", t.from, "to",
                                 t.to);
            if (g_degrade_level != nullptr) {
              g_degrade_level->set(static_cast<double>(t.to));
            }
          });
    }
  }

  // Periodic metrics exposition: the snapshotter samples the live
  // gauges and rewrites the Prometheus / JSON files on its own thread
  // for the duration of the run.
  std::optional<obs::Snapshotter> snapshotter;
  if (obs_config.metrics && obs_config.snapshot_interval_ms > 0.0 &&
      (!obs_config.snapshot_prom_path.empty() ||
       !obs_config.snapshot_json_path.empty())) {
    snapshotter.emplace(obs::MetricsRegistry::global(),
                        obs_config.snapshot_interval_ms,
                        obs_config.snapshot_prom_path,
                        obs_config.snapshot_json_path);
    snapshotter->set_sample_hook([&queue, &degrade_state, g_queue_depth,
                                  g_degrade_level, g_queue_dropped,
                                  armed = controller.has_value()] {
      if (g_queue_depth != nullptr) {
        g_queue_depth->set(static_cast<double>(queue.depth()));
      }
      if (g_queue_dropped != nullptr) {
        g_queue_dropped->set(static_cast<double>(queue.dropped()));
      }
      if (armed && g_degrade_level != nullptr) {
        g_degrade_level->set(static_cast<double>(degrade_state.level()));
      }
    });
    snapshotter->start();
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const auto since_start_ms = [&wall_start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - wall_start)
        .count();
  };

  // Overload monitor: samples queue fill on its own thread and walks
  // the degradation ladder (hysteresis in the controller).
  std::mutex monitor_mutex;
  std::condition_variable monitor_cv;
  bool monitor_stop = false;
  std::thread monitor;
  if (controller.has_value()) {
    monitor = std::thread([&] {
      const auto interval = std::chrono::duration<double, std::milli>(
          std::max(0.1, config_.slo.eval_interval_ms));
      std::unique_lock<std::mutex> lock(monitor_mutex);
      while (!monitor_stop) {
        if (monitor_cv.wait_for(lock, interval,
                                [&] { return monitor_stop; })) {
          break;
        }
        lock.unlock();
        controller->sample(since_start_ms());
        lock.lock();
      }
    });
  }

  // Ingress threads: a thrown exception fails ONLY that stream — the
  // ingress is marked failed, its already-enqueued frames still serve,
  // and every other stream runs to completion.
  std::vector<std::thread> ingress_threads;
  ingress_threads.reserve(ingresses.size());
  for (IngressBase* ingress : ingresses) {
    ingress_threads.emplace_back([ingress] {
      try {
        ingress->run();
      } catch (const std::exception& e) {
        ingress->mark_failed(e.what());
      } catch (...) {
        ingress->mark_failed("unknown ingress failure");
      }
    });
  }
  // Close the queue once every producer finished; the workers drain the
  // remainder and exit. (A dead worker pool closes the queue itself,
  // which releases any producer blocked on push.)
  std::thread closer([&] {
    for (std::thread& t : ingress_threads) t.join();
    queue.close();
  });
  // Supervision absorbs batch failures inside the workers; anything
  // escaping the pool is unrecoverable and is rethrown after all joins.
  std::exception_ptr pool_error;
  try {
    pool.run(queue, hooks);
  } catch (...) {
    pool_error = std::current_exception();
  }
  closer.join();
  if (monitor.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(monitor_mutex);
      monitor_stop = true;
    }
    monitor_cv.notify_all();
    monitor.join();
  }
  if (pool_error) std::rethrow_exception(pool_error);
  const auto wall_end = std::chrono::steady_clock::now();
  if (controller.has_value()) {
    controller->finish(std::chrono::duration<double, std::milli>(
                           wall_end - wall_start)
                           .count());
  }
  if (snapshotter.has_value()) snapshotter->stop();

  // --- Assemble the report.
  report_.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  report_.queue_peak_depth = queue.peak_depth();
  report_.queue_mean_depth = queue.mean_depth();
  report_.streams.reserve(ingresses.size());
  std::size_t residual_drops = 0;
  for (std::size_t i = 0; i < ingresses.size(); ++i) {
    StreamServeStats s = ingresses[i]->stats();
    const StreamServeStats& done = completion[i];
    s.completed = done.completed;
    s.shed = done.shed;
    s.failed += done.failed;  // ingress quarantine + worker quarantine
    s.latency = done.latency;
    s.slo_good = done.slo_good;
    s.slo_bad = done.slo_bad;
    if (i < burn.size()) s.burn_rate = burn[i].burn_rate();
    // Per-stream drops reconcile as the residual once the queue drained:
    // every enqueued frame was served, shed, quarantined, or displaced
    // by drop-oldest. A negative residual is an accounting bug (frames
    // appearing from nowhere) and is flagged, never wrapped.
    const std::size_t accounted = s.completed + s.shed + s.failed;
    if (s.enqueued >= accounted) {
      s.dropped = s.enqueued - accounted;
    } else {
      s.dropped = 0;
      report_.accounting_valid = false;
    }
    residual_drops += s.dropped;
    report_.frames_completed += s.completed;
    report_.frames_dropped += s.dropped;
    report_.frames_shed += s.shed;
    report_.frames_failed += s.failed;
    report_.rejected_packets += s.rejected_packets;
    report_.duplicate_packets += s.duplicate_packets;
    report_.wire_resumes += s.wire_resumes;
    for (const QuarantinedFrame& q : ingresses[i]->quarantined()) {
      report_.quarantined.push_back(q);
    }
    report_.streams.push_back(std::move(s));
  }
  // Cross-check the residual against the queue's own displacement
  // counter: they must agree exactly, or the invariant is vacuous.
  if (residual_drops != queue.dropped()) {
    report_.accounting_valid = false;
  }
  report_.quarantined.insert(report_.quarantined.end(),
                             worker_quarantine.begin(),
                             worker_quarantine.end());
  report_.workers.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    report_.workers.push_back(pool.worker(i).stats());
  }
  if (config_.worker.profile_layers || config_.worker.trace_nodes) {
    // Re-export the per-layer means as labeled gauges so per-node
    // timing reaches Prometheus, not just ServeReport. The family gets
    // a wider cap than the default: nodes x routes x workers.
    obs::LabeledGauge* layer_gauge = nullptr;
    if (obs_config.metrics) {
      layer_gauge = &obs::MetricsRegistry::global().labeled_gauge(
          "evedge_layer_ns",
          "Mean per-node execution wall time (ns) by route and worker",
          1024);
    }
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const obs::LayerProfiler* prof = pool.worker(i).profiler();
      if (prof == nullptr) continue;
      std::vector<obs::NodeRouteProfile> nodes = prof->snapshot();
      if (layer_gauge != nullptr) {
        for (const obs::NodeRouteProfile& row : nodes) {
          const double mean_ns =
              row.runs == 0 ? 0.0
                            : static_cast<double>(row.total_ns) /
                                  static_cast<double>(row.runs);
          layer_gauge
              ->at({{"node", row.name},
                    {"route", nn::to_string(row.route)},
                    {"worker", std::to_string(i)}})
              .set(mean_ns);
        }
      }
      report_.layer_profiles.push_back(
          WorkerLayerProfile{static_cast<int>(i), std::move(nodes)});
    }
  }
  if (controller.has_value()) {
    report_.degradation = controller->transitions();
    report_.ms_at_degrade_level = controller->ms_at_level();
    report_.max_degrade_level = controller->max_level_reached();
  }
  if (injector != nullptr) report_.faults = injector->counts();
  return report_;
}

const DenseTensor* ServingRuntime::output(int stream_id,
                                          std::int64_t seq) const {
  const auto it = captured_.find(capture_key(stream_id, seq));
  return it != captured_.end() ? &it->second : nullptr;
}

ServingRuntime::SerialResult ServingRuntime::run_serial(
    std::span<const std::vector<sparse::SparseFrame>> frames_per_stream,
    bool use_planner) const {
  const nn::NetworkSpec& spec = prototype_.spec();
  nn::FunctionalNetwork net = prototype_.clone();
  const sparse::TensorShape event_shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  const bool needs_image = spec.graph.input_ids().size() > 1;
  const DenseTensor image =
      needs_image ? core::make_reference_image(spec) : DenseTensor{};

  SerialResult result;
  result.outputs.resize(frames_per_stream.size());
  nn::ExecutionPlan plan;
  bool plan_ready = false;
  std::vector<DenseTensor> steps;
  std::vector<sparse::SparseFrame> one(1);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < frames_per_stream.size(); ++s) {
    result.outputs[s].reserve(frames_per_stream[s].size());
    for (const sparse::SparseFrame& frame : frames_per_stream[s]) {
      one.front() = frame;
      core::frames_to_event_steps(one, event_shape, spec.timesteps, steps);
      if (use_planner) {
        const bool stale =
            plan_ready &&
            config_.worker.recalibrate_on_drift &&
            !plan.density_in_band(steps.front().density(),
                                  config_.worker.recalibration_band);
        if (!plan_ready || stale) {
          net.set_execution_plan(nullptr);
          plan = nn::ExecutionPlanner::calibrate(
              net, steps, needs_image ? &image : nullptr,
              config_.worker.planner);
          net.set_execution_plan(&plan);
          plan_ready = true;
        }
      }
      result.outputs[s].push_back(
          net.run_batched(steps, needs_image ? &image : nullptr));
      ++result.frames;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return result;
}

}  // namespace evedge::serve
