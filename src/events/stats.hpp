#pragma once

// Event-stream statistics backing Figures 1, 3 and 5 of the paper:
// temporal density traces and per-window spatial fill ratios.

#include <cstddef>
#include <vector>

#include "events/event_stream.hpp"

namespace evedge::events {

/// One sample of a temporal density trace (Fig. 5).
struct DensitySample {
  TimeUs window_start = 0;
  TimeUs window_end = 0;
  std::size_t event_count = 0;
  double events_per_second = 0.0;
};

/// Counts events in consecutive windows of `window_us` across the stream.
[[nodiscard]] std::vector<DensitySample> temporal_density_trace(
    const EventStream& stream, TimeUs window_us);

/// Fraction of pixels that receive at least one event in [t0, t1) —
/// the "% events in an event frame" quantity of Figures 1 and 3.
[[nodiscard]] double frame_fill_ratio(const EventStream& stream, TimeUs t0,
                                      TimeUs t1);

/// Mean fill ratio over all (Tstart, Tend) intervals of a frame clock,
/// each interval subdivided into n_bins event bins (the per-network input
/// representation of Fig. 3).
[[nodiscard]] double mean_bin_fill_ratio(const EventStream& stream,
                                         const FrameClock& clock, int n_bins);

/// Summary statistics over a density trace.
struct DensitySummary {
  double mean_rate = 0.0;  ///< events/s
  double peak_rate = 0.0;  ///< events/s
  double coefficient_of_variation = 0.0;  ///< stddev / mean (burstiness)
};

[[nodiscard]] DensitySummary summarize(
    const std::vector<DensitySample>& trace);

}  // namespace evedge::events
